#!/usr/bin/env python3
"""Fail if docs/OPERATIONS.md drifts from the declared metric set.

The single source of truth for metric names is the X-macro list in
src/obs/metric_names.h. This script extracts every declared
"bursthist_*" name from that list and every "bursthist_*" token from
docs/OPERATIONS.md, and exits nonzero if either side has a name the
other lacks. Run from anywhere:

    python3 tools/check_metrics_docs.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
HEADER = REPO / "src" / "obs" / "metric_names.h"
DOC = REPO / "docs" / "OPERATIONS.md"

# Non-metric identifiers that legitimately appear in the runbook.
DOC_ALLOWLIST = {"bursthist_cli"}


def declared_metrics(header_text: str) -> set:
    """Names from the BURSTHIST_METRIC_LIST X-macro declarations."""
    # Every declared name is a quoted string literal starting with
    # "bursthist_". Help strings never contain that prefix, so a plain
    # literal scan over the macro block is exact.
    macro = re.search(
        r"#define BURSTHIST_METRIC_LIST\(M\)(.*?)// clang-format on",
        header_text,
        re.S,
    )
    if macro is None:
        sys.exit(f"error: BURSTHIST_METRIC_LIST not found in {HEADER}")
    return set(re.findall(r'"(bursthist_[a-z0-9_]+)"', macro.group(1)))


def documented_metrics(doc_text: str) -> set:
    return set(re.findall(r"\b(bursthist_[a-z0-9_]+)\b", doc_text)) - DOC_ALLOWLIST


def main() -> int:
    declared = declared_metrics(HEADER.read_text())
    documented = documented_metrics(DOC.read_text())
    if not declared:
        print(f"error: no metrics declared in {HEADER}", file=sys.stderr)
        return 1

    missing = sorted(declared - documented)
    unknown = sorted(documented - declared)
    for name in missing:
        print(f"UNDOCUMENTED: {name} is declared in {HEADER.name} "
              f"but missing from {DOC.name}", file=sys.stderr)
    for name in unknown:
        print(f"STALE: {name} appears in {DOC.name} but is not declared "
              f"in {HEADER.name}", file=sys.stderr)
    if missing or unknown:
        print(f"\nmetrics docs drift: {len(missing)} undocumented, "
              f"{len(unknown)} stale. Update docs/OPERATIONS.md and/or "
              f"src/obs/metric_names.h.", file=sys.stderr)
        return 1
    print(f"OK: {len(declared)} metrics declared, all documented, "
          f"no stale names.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
