#!/usr/bin/env python3
"""Docs-drift lint: fail if the docs drift from the code they describe.

Three checks, each against a single source of truth in the tree:

  1. Metrics   — every "bursthist_*" name declared in the X-macro list
                 src/obs/metric_names.h appears in docs/OPERATIONS.md,
                 and OPERATIONS.md names no metric that is not declared.
  2. Subsystems — every directory under src/ appears (as "src/<name>")
                 in docs/ARCHITECTURE.md, and ARCHITECTURE.md names no
                 src/ directory that does not exist.
  3. CLI        — every wire verb parsed by src/server/wire.cc and
                 every bursthist_cli subcommand listed in its Usage()
                 appears in README.md.

Run from anywhere:

    python3 tools/check_metrics_docs.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
METRICS_HEADER = REPO / "src" / "obs" / "metric_names.h"
OPERATIONS = REPO / "docs" / "OPERATIONS.md"
ARCHITECTURE = REPO / "docs" / "ARCHITECTURE.md"
README = REPO / "README.md"
WIRE_CC = REPO / "src" / "server" / "wire.cc"
CLI_MAIN = REPO / "examples" / "bursthist_cli.cpp"
SRC = REPO / "src"

# Non-metric identifiers that legitimately appear in the runbook.
DOC_ALLOWLIST = {"bursthist_cli"}

failures = []


def fail(msg: str) -> None:
    failures.append(msg)
    print(msg, file=sys.stderr)


def declared_metrics(header_text: str) -> set:
    """Names from the BURSTHIST_METRIC_LIST X-macro declarations."""
    # Every declared name is a quoted string literal starting with
    # "bursthist_". Help strings never contain that prefix, so a plain
    # literal scan over the macro block is exact.
    macro = re.search(
        r"#define BURSTHIST_METRIC_LIST\(M\)(.*?)// clang-format on",
        header_text,
        re.S,
    )
    if macro is None:
        sys.exit(f"error: BURSTHIST_METRIC_LIST not found in {METRICS_HEADER}")
    return set(re.findall(r'"(bursthist_[a-z0-9_]+)"', macro.group(1)))


def check_metrics() -> None:
    declared = declared_metrics(METRICS_HEADER.read_text())
    doc_text = OPERATIONS.read_text()
    documented = (
        set(re.findall(r"\b(bursthist_[a-z0-9_]+)\b", doc_text)) - DOC_ALLOWLIST
    )
    if not declared:
        fail(f"error: no metrics declared in {METRICS_HEADER}")
        return
    for name in sorted(declared - documented):
        fail(f"UNDOCUMENTED: metric {name} is declared in "
             f"{METRICS_HEADER.name} but missing from {OPERATIONS.name}")
    for name in sorted(documented - declared):
        fail(f"STALE: metric {name} appears in {OPERATIONS.name} but is "
             f"not declared in {METRICS_HEADER.name}")
    if declared <= documented and documented <= declared:
        print(f"OK: {len(declared)} metrics declared, all documented, "
              f"no stale names.")


def check_subsystems() -> None:
    actual = {p.name for p in SRC.iterdir() if p.is_dir()}
    doc_text = ARCHITECTURE.read_text()
    mentioned = set(re.findall(r"\bsrc/([a-z0-9_]+)\b", doc_text))
    for name in sorted(actual - mentioned):
        fail(f"UNDOCUMENTED: subsystem src/{name} exists but is missing "
             f"from {ARCHITECTURE.name}")
    for name in sorted(mentioned - actual):
        fail(f"STALE: src/{name} appears in {ARCHITECTURE.name} but no "
             f"such directory exists")
    if actual <= mentioned and mentioned <= actual:
        print(f"OK: {len(actual)} src/ subsystems, all mapped in "
              f"{ARCHITECTURE.name}.")


def check_cli() -> None:
    readme = README.read_text()

    # Wire verbs: every string ParseRequest compares the verb token to.
    verbs = set(re.findall(r'verb == "([A-Z]+)"', WIRE_CC.read_text()))
    if not verbs:
        fail(f"error: no wire verbs found in {WIRE_CC}")
    for verb in sorted(verbs):
        if not re.search(rf"\b{verb}\b", readme):
            fail(f"UNDOCUMENTED: wire verb {verb} is parsed by "
                 f"{WIRE_CC.name} but never mentioned in {README.name}")

    # CLI subcommands: the first token after "bursthist_cli" on each
    # Usage() line.
    cli_text = CLI_MAIN.read_text()
    usage = re.search(r'"usage:\\n"(.*?)return 2;', cli_text, re.S)
    if usage is None:
        fail(f"error: Usage() block not found in {CLI_MAIN}")
        return
    commands = set(re.findall(r"bursthist_cli (\w[\w-]*)", usage.group(1)))
    for cmd in sorted(commands):
        if not re.search(rf"\b{re.escape(cmd)}\b", readme):
            fail(f"UNDOCUMENTED: bursthist_cli subcommand '{cmd}' is in "
                 f"Usage() but never mentioned in {README.name}")
    if not failures:
        print(f"OK: {len(verbs)} wire verbs and {len(commands)} CLI "
              f"subcommands all covered by {README.name}.")


def main() -> int:
    check_metrics()
    check_subsystems()
    check_cli()
    if failures:
        print(f"\ndocs drift: {len(failures)} problem(s). Update the docs "
              f"and/or the code they describe.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
