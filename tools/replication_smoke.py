#!/usr/bin/env python3
"""End-to-end smoke test for WAL-shipping replication + failover.

Boots a leader (`serve --repl-port`) and a follower (`serve
--follow`), feeds the first half of a deterministic stream to the
leader over the wire, waits for the follower to apply all of it,
SIGKILLs the leader, PROMOTEs the follower, feeds it the second
half, and then checks that every query type answered by the promoted
follower agrees with an offline CLI pipeline (`ingest` +
`point`/`times`/`events`, `store-save` + `store-topk`) fed the whole
stream. Along the way it verifies the follower wire behavior (writes
refused with UNAVAILABLE, `lag=` stamps, STATS roles), scrapes the
replication metrics, and exercises a clean SIGTERM shutdown.

Usage: tools/replication_smoke.py <path-to-bursthist_cli>
Stdlib only; exits non-zero on the first mismatch.
"""

import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time

UNIVERSE = 8
N_RECORDS = 400
TAU = 16
THETA = 2.0
TOP_K = 3
CONVERGE_DEADLINE_S = 60


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def make_stream(seed=20260808):
    rng = random.Random(seed)
    records, t = [], 0
    for _ in range(N_RECORDS):
        t += rng.randrange(3)
        e = rng.randrange(UNIVERSE)
        records.append((e, t))
        # A hot event so BEVENT/TOPK have something to report.
        if 100 <= t < 140:
            records.append((3, t))
    return records


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def run_cli(cli, *args):
    proc = subprocess.run([cli, *args], capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"cli {' '.join(args)} exited {proc.returncode}: {proc.stderr}")
    return proc.stdout


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.buf = b""

    def request(self, line):
        self.sock.sendall(line.encode() + b"\n")
        return self.read_line()

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                fail(f"server closed connection (buffer: {self.buf!r})")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode().rstrip("\r")


def strip_lag(parts):
    """Replica-served replies carry a trailing 'lag=<n>' token."""
    if parts and parts[-1].startswith("lag="):
        return parts[:-1]
    return parts


def parse_value_reply(reply):
    # "VALUE <v> watermark=<w> bound=<b>[ lag=<n>]"
    parts = strip_lag(reply.split())
    if parts[0] != "VALUE" or len(parts) != 4:
        fail(f"malformed VALUE reply: {reply}")
    return float(parts[1])


def serve_banner(proc, prefix):
    # "listening on h:p" / "replicating on h:p" / "following h:p"
    line = proc.stdout.readline().strip()
    if not line.startswith(prefix + " "):
        fail(f"unexpected serve banner (wanted '{prefix} ...'): {line!r}")
    return int(line.rsplit(":", 1)[1])


def scrape_metrics(port):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as raw:
        raw.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
        http = b""
        while True:
            chunk = raw.recv(4096)
            if not chunk:
                break
            http += chunk
    text = http.decode()
    if not text.startswith("HTTP/1.0 200 OK"):
        fail(f"/metrics scrape failed: {text[:80]!r}")
    return text


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    cli = sys.argv[1]
    records = make_stream()
    first, second = records[: len(records) // 2], records[len(records) // 2:]
    workdir = tempfile.mkdtemp(prefix="bursthist_repl_smoke_")
    csv_path = os.path.join(workdir, "events.csv")
    sketch_path = os.path.join(workdir, "gt.sketch")
    store_dir = os.path.join(workdir, "store")
    leader_dir = os.path.join(workdir, "leader")
    follower_dir = os.path.join(workdir, "follower")
    os.makedirs(store_dir)
    with open(csv_path, "w") as f:
        for e, t in records:
            f.write(f"{e},{t}\n")

    # ---- Offline ground truth: the WHOLE stream through the CLI ----
    run_cli(cli, "ingest", csv_path, str(UNIVERSE), sketch_path)
    run_cli(cli, "store-save", store_dir, "gt", csv_path, str(UNIVERSE))
    t_max = max(t for _, t in records)

    gt_point = {
        e: float(run_cli(cli, "point", sketch_path, str(e), str(t_max),
                         str(TAU)).strip())
        for e in range(UNIVERSE)
    }
    gt_times = {}
    for e in range(UNIVERSE):
        out = run_cli(cli, "times", sketch_path, str(e), str(THETA), str(TAU))
        gt_times[e] = [tuple(map(int, ln.split())) for ln in out.splitlines() if ln]
    out = run_cli(cli, "events", sketch_path, str(t_max), str(THETA), str(TAU))
    gt_events = sorted(int(ln.split()[0]) for ln in out.splitlines() if ln)
    out = run_cli(cli, "store-topk", store_dir, "gt", str(t_max), str(TOP_K),
                  str(TAU))
    gt_topk = [(int(ln.split()[0]), float(ln.split()[1]))
               for ln in out.splitlines() if ln]

    # ---- Leader + follower ----
    repl_port = free_port()
    leader = subprocess.Popen(
        [cli, "serve", leader_dir, str(UNIVERSE), "--repl-port",
         str(repl_port)],
        stdout=subprocess.PIPE, text=True)
    follower = None
    try:
        leader_port = serve_banner(leader, "listening on")
        serve_banner(leader, "replicating on")

        follower = subprocess.Popen(
            [cli, "serve", follower_dir, str(UNIVERSE), "--follow",
             f"127.0.0.1:{repl_port}"],
            stdout=subprocess.PIPE, text=True)
        follower_port = serve_banner(follower, "listening on")
        serve_banner(follower, "following")

        lc = LineClient(leader_port)
        if lc.request("PING") != "PONG":
            fail("leader PING did not answer PONG")
        for e, t in first:
            reply = lc.request(f"ADD {e} {t}")
            if reply != "OK":
                fail(f"leader ADD {e} {t} -> {reply}")
        stats = lc.request("STATS")
        if f"accepted={len(first)}" not in stats:
            fail(f"leader STATS disagrees on accepted count: {stats}")

        # Follower refuses writes and owns up to its role.
        fc = LineClient(follower_port)
        reply = fc.request("ADD 0 0")
        if not reply.startswith("ERR UNAVAILABLE"):
            fail(f"follower ADD not refused with UNAVAILABLE: {reply}")
        # Wait for it to apply everything the leader accepted.
        deadline = time.monotonic() + CONVERGE_DEADLINE_S
        while True:
            stats = fc.request("STATS")
            if f"applied={len(first)}" in stats:
                break
            if time.monotonic() > deadline:
                fail(f"follower never converged: {stats}")
            time.sleep(0.05)
        if "role=follower" not in stats:
            fail(f"follower STATS missing role: {stats}")
        reply = fc.request(f"POINT 0 {t_max} {TAU}")
        if " lag=" not in reply:
            fail(f"follower reply missing lag stamp: {reply}")

        metrics = scrape_metrics(follower_port)
        if f"bursthist_repl_applied_records_total {len(first)}" not in metrics:
            fail("follower /metrics disagrees on applied records")

        # ---- Failover: kill the leader dead, promote the follower ----
        leader.kill()
        leader.wait(timeout=20)
        if fc.request("PROMOTE") != "OK":
            fail("PROMOTE did not answer OK")
        reply = fc.request("PROMOTE")
        if not reply.startswith("ERR FAILED_PRECONDITION"):
            fail(f"second PROMOTE not refused: {reply}")
        stats = fc.request("STATS")
        if "role=leader" not in stats:
            fail(f"promoted STATS still not a leader: {stats}")
        for e, t in second:
            reply = fc.request(f"ADD {e} {t}")
            if reply != "OK":
                fail(f"promoted ADD {e} {t} -> {reply}")

        # ---- Every query type vs offline ground truth ----
        # The CLI prints %.2f; the wire prints full precision. Both
        # compute the identical double, so agreement to half a
        # hundredth is exact modulo the CLI's rounding.
        def close(a, b):
            return abs(a - b) <= 0.005 + 1e-9

        for e in range(UNIVERSE):
            got = parse_value_reply(fc.request(f"POINT {e} {t_max} {TAU}"))
            if not close(got, gt_point[e]):
                fail(f"POINT {e}: promoted={got} offline={gt_point[e]}")

            reply = fc.request(f"BTIME {e} {THETA} {TAU}")
            parts = strip_lag(reply.split())
            if parts[0] != "INTERVALS":
                fail(f"malformed BTIME reply: {reply}")
            count = int(parts[1])
            got_ivs = [(int(parts[2 + 2 * i]), int(parts[3 + 2 * i]))
                       for i in range(count)]
            if got_ivs != gt_times[e]:
                fail(f"BTIME {e}: promoted={got_ivs} offline={gt_times[e]}")

        parts = strip_lag(fc.request(f"BEVENT {t_max} {THETA} {TAU}").split())
        got_events = sorted(int(x) for x in parts[2:2 + int(parts[1])])
        if got_events != gt_events:
            fail(f"BEVENT: promoted={got_events} offline={gt_events}")

        parts = strip_lag(fc.request(f"TOPK {t_max} {TOP_K} {TAU}").split())
        got_topk = [(int(p.split(":")[0]), float(p.split(":")[1]))
                    for p in parts[2:2 + int(parts[1])]]
        if [e for e, _ in got_topk] != [e for e, _ in gt_topk]:
            fail(f"TOPK ids: promoted={got_topk} offline={gt_topk}")
        for (_, gv), (_, wv) in zip(gt_topk, got_topk):
            if not close(wv, gv):
                fail(f"TOPK value: promoted={wv} offline={gv}")

        if fc.request("QUIT") != "BYE":
            fail("QUIT did not answer BYE")
    finally:
        if leader.poll() is None:
            leader.kill()
            leader.wait(timeout=20)
        if follower is not None and follower.poll() is None:
            # Graceful shutdown path: SIGTERM drains and checkpoints.
            follower.send_signal(signal.SIGTERM)
            try:
                code = follower.wait(timeout=20)
            except subprocess.TimeoutExpired:
                follower.kill()
                fail("promoted follower did not stop on SIGTERM")
            if code != 0:
                fail(f"promoted follower exited {code} after SIGTERM")

    print(f"replication smoke OK: {len(first)} records shipped, follower "
          f"promoted, {len(second)} more accepted, all query types match "
          f"offline ground truth")
    return 0


if __name__ == "__main__":
    sys.exit(main())
