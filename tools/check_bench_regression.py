#!/usr/bin/env python3
"""Gate the batched-ingest speedup against the committed baseline.

Usage: check_bench_regression.py CURRENT.json BASELINE.json

Both files are produced by `micro_throughput --bench_ingest_json=PATH`.
Wall-clock events/s differ across machines, so the gated quantity is
the SPEEDUP (batched events/s divided by per-event events/s measured in
the same run), which is stable enough to compare against a baseline
recorded on a different box. Two checks:

  1. Regression: for every workload and batch size present in the
     baseline, the current speedup must be at least 85% of the baseline
     speedup (a >15% relative regression fails).
  2. Floor: on the "bursty" workload — the one the batch path is built
     for — every batch size >= 64 must keep an absolute speedup >= 3x.

Exit status 0 when every check passes, 1 otherwise.
"""

import json
import sys

REGRESSION_FACTOR = 0.85
FLOOR_WORKLOAD = "bursty"
FLOOR_MIN_BATCH = 64
FLOOR_SPEEDUP = 3.0


def load(path):
    with open(path) as f:
        return json.load(f)["workloads"]


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    current = load(sys.argv[1])
    baseline = load(sys.argv[2])

    failures = []
    print(f"{'workload':<18} {'batch':>6} {'current':>9} {'baseline':>9} "
          f"{'min ok':>7}")
    for workload, base in sorted(baseline.items()):
        cur = current.get(workload)
        if cur is None:
            failures.append(f"workload {workload!r} missing from current run")
            continue
        for batch, base_entry in sorted(base["batch"].items(),
                                        key=lambda kv: int(kv[0])):
            cur_entry = cur["batch"].get(batch)
            if cur_entry is None:
                failures.append(
                    f"{workload} batch={batch} missing from current run")
                continue
            cur_speedup = cur_entry["speedup"]
            base_speedup = base_entry["speedup"]
            need = base_speedup * REGRESSION_FACTOR
            if (workload == FLOOR_WORKLOAD
                    and int(batch) >= FLOOR_MIN_BATCH):
                need = max(need, FLOOR_SPEEDUP)
            mark = "" if cur_speedup >= need else "  <-- FAIL"
            print(f"{workload:<18} {batch:>6} {cur_speedup:>8.2f}x "
                  f"{base_speedup:>8.2f}x {need:>6.2f}x{mark}")
            if cur_speedup < need:
                failures.append(
                    f"{workload} batch={batch}: speedup {cur_speedup:.2f}x "
                    f"below required {need:.2f}x "
                    f"(baseline {base_speedup:.2f}x)")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("\nbench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
