#!/usr/bin/env python3
"""End-to-end smoke test for `bursthist_cli serve`.

Feeds one deterministic stream to the TCP server (ADD over the wire)
and to the offline CLI pipeline (`ingest` + `point`/`times`/`events`,
`store-save` + `store-topk`), then checks that every served answer
agrees with the offline ground truth. Also scrapes the HTTP /metrics
endpoint and verifies a clean SIGINT shutdown.

Usage: tools/server_smoke.py <path-to-bursthist_cli>
Stdlib only; exits non-zero on the first mismatch.
"""

import os
import random
import signal
import socket
import subprocess
import sys
import tempfile

UNIVERSE = 8
N_RECORDS = 400
TAU = 16
THETA = 2.0
TOP_K = 3


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def make_stream(seed=20260808):
    rng = random.Random(seed)
    records, t = [], 0
    for _ in range(N_RECORDS):
        t += rng.randrange(3)
        e = rng.randrange(UNIVERSE)
        records.append((e, t))
        # A hot event so BEVENT/TOPK have something to report.
        if 100 <= t < 140:
            records.append((3, t))
    return records


def run_cli(cli, *args):
    proc = subprocess.run([cli, *args], capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"cli {' '.join(args)} exited {proc.returncode}: {proc.stderr}")
    return proc.stdout


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.buf = b""

    def request(self, line):
        self.sock.sendall(line.encode() + b"\n")
        return self.read_line()

    def read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(4096)
            if not chunk:
                fail(f"server closed connection (buffer: {self.buf!r})")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode().rstrip("\r")


def parse_value_reply(reply):
    # "VALUE <v> watermark=<w> bound=<b>"
    parts = reply.split()
    if parts[0] != "VALUE" or len(parts) != 4:
        fail(f"malformed VALUE reply: {reply}")
    if not parts[2].startswith("watermark=") or not parts[3].startswith("bound="):
        fail(f"VALUE reply missing stamp: {reply}")
    return float(parts[1])


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    cli = sys.argv[1]
    records = make_stream()
    workdir = tempfile.mkdtemp(prefix="bursthist_smoke_")
    csv_path = os.path.join(workdir, "events.csv")
    sketch_path = os.path.join(workdir, "gt.sketch")
    store_dir = os.path.join(workdir, "store")
    serve_dir = os.path.join(workdir, "serve")
    os.makedirs(store_dir)
    with open(csv_path, "w") as f:
        for e, t in records:
            f.write(f"{e},{t}\n")

    # ---- Offline ground truth through the CLI pipeline ----
    run_cli(cli, "ingest", csv_path, str(UNIVERSE), sketch_path)
    run_cli(cli, "store-save", store_dir, "gt", csv_path, str(UNIVERSE))
    t_max = max(t for _, t in records)

    gt_point = {
        e: float(run_cli(cli, "point", sketch_path, str(e), str(t_max),
                         str(TAU)).strip())
        for e in range(UNIVERSE)
    }
    gt_times = {}
    for e in range(UNIVERSE):
        out = run_cli(cli, "times", sketch_path, str(e), str(THETA), str(TAU))
        gt_times[e] = [tuple(map(int, ln.split())) for ln in out.splitlines() if ln]
    out = run_cli(cli, "events", sketch_path, str(t_max), str(THETA), str(TAU))
    gt_events = sorted(int(ln.split()[0]) for ln in out.splitlines() if ln)
    out = run_cli(cli, "store-topk", store_dir, "gt", str(t_max), str(TOP_K),
                  str(TAU))
    gt_topk = [(int(ln.split()[0]), float(ln.split()[1]))
               for ln in out.splitlines() if ln]

    # ---- Live server fed the identical stream over the wire ----
    server = subprocess.Popen([cli, "serve", serve_dir, str(UNIVERSE)],
                              stdout=subprocess.PIPE, text=True)
    try:
        banner = server.stdout.readline().strip()
        if not banner.startswith("listening on "):
            fail(f"unexpected serve banner: {banner!r}")
        port = int(banner.rsplit(":", 1)[1])

        client = LineClient(port)
        if client.request("PING") != "PONG":
            fail("PING did not answer PONG")
        for e, t in records:
            reply = client.request(f"ADD {e} {t}")
            if reply != "OK":
                fail(f"ADD {e} {t} -> {reply}")
        stats = client.request("STATS")
        if f"accepted={len(records)}" not in stats:
            fail(f"STATS disagrees on accepted count: {stats}")

        # The CLI prints %.2f; the wire prints full precision. Both
        # compute the identical double, so agreement to half a
        # hundredth is exact modulo the CLI's rounding.
        def close(a, b):
            return abs(a - b) <= 0.005 + 1e-9

        for e in range(UNIVERSE):
            got = parse_value_reply(client.request(f"POINT {e} {t_max} {TAU}"))
            if not close(got, gt_point[e]):
                fail(f"POINT {e}: wire={got} offline={gt_point[e]}")

            reply = client.request(f"BTIME {e} {THETA} {TAU}")
            parts = reply.split()
            if parts[0] != "INTERVALS":
                fail(f"malformed BTIME reply: {reply}")
            count = int(parts[1])
            got_ivs = [(int(parts[2 + 2 * i]), int(parts[3 + 2 * i]))
                       for i in range(count)]
            if got_ivs != gt_times[e]:
                fail(f"BTIME {e}: wire={got_ivs} offline={gt_times[e]}")

        reply = client.request(f"BEVENT {t_max} {THETA} {TAU}")
        parts = reply.split()
        got_events = sorted(int(x) for x in parts[2:2 + int(parts[1])])
        if got_events != gt_events:
            fail(f"BEVENT: wire={got_events} offline={gt_events}")

        reply = client.request(f"TOPK {t_max} {TOP_K} {TAU}")
        parts = reply.split()
        got_topk = [(int(p.split(":")[0]), float(p.split(":")[1]))
                    for p in parts[2:2 + int(parts[1])]]
        if [e for e, _ in got_topk] != [e for e, _ in gt_topk]:
            fail(f"TOPK ids: wire={got_topk} offline={gt_topk}")
        for (_, gv), (_, wv) in zip(gt_topk, got_topk):
            if not close(wv, gv):
                fail(f"TOPK value: wire={wv} offline={gv}")

        # HTTP scrape on the same port.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as raw:
            raw.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
            http = b""
            while True:
                chunk = raw.recv(4096)
                if not chunk:
                    break
                http += chunk
        text = http.decode()
        if not text.startswith("HTTP/1.0 200 OK"):
            fail(f"/metrics scrape failed: {text[:80]!r}")
        if "bursthist_server_ingest_records_total" not in text:
            fail("/metrics body missing server ingest counter")

        if client.request("QUIT") != "BYE":
            fail("QUIT did not answer BYE")
    finally:
        server.send_signal(signal.SIGINT)
        try:
            code = server.wait(timeout=20)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not stop on SIGINT")
    if code != 0:
        fail(f"server exited {code} after SIGINT")

    print(f"server smoke OK: {len(records)} records, {UNIVERSE} events, "
          f"all query types match offline ground truth")
    return 0


if __name__ == "__main__":
    sys.exit(main())
