// crash_torture: standalone crashpoint torture driver.
//
// The same fork/SIGKILL/recover/verify machinery the crash_torture
// ctest runs (tests/differential/torture_harness.h), packaged for
// operators and CI to run at arbitrary scale:
//
//   crash_torture list  [--seed N]
//       Recon: run the workload in-process under trace mode and print
//       every crashpoint site reached, with hit counts.
//   crash_torture run   --site S [--hit N] [--mode kill|error] [--seed N]
//       One torture cycle against the named site.
//   crash_torture sweep [--seeds N]
//       Every reached site x seeds, kill mode — the full matrix.
//   crash_torture chaos [--cycles N] [--seed N]
//       Randomized (site, hit) kills against ONE directory that is
//       repeatedly crashed, recovered, and resumed.
//
// Exit status: 0 all cycles verified, 1 any verification failure,
// 2 usage error. Scratch directories live under TMPDIR and are
// removed on success.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "differential/torture_harness.h"
#include "fault/crashpoint.h"
#include "util/random.h"

#ifdef BURSTHIST_NO_FAULT

int main() {
  std::fprintf(stderr,
               "crash_torture: built with BURSTHIST_NO_FAULT; crashpoints "
               "compile to no-ops and cannot be scheduled\n");
  return 2;
}

#else  // !BURSTHIST_NO_FAULT

namespace {

using namespace bursthist;
using namespace bursthist::test::torture;

void RemoveTree(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const auto& n : names.value()) (void)env->DeleteFile(dir + "/" + n);
  }
  ::rmdir(dir.c_str());
}

std::string ScratchRoot() {
  const char* tmp = std::getenv("TMPDIR");
  std::string templ = std::string(tmp && *tmp ? tmp : "/tmp") +
                      "/crash_torture.XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    std::perror("mkdtemp");
    std::exit(2);
  }
  return std::string(buf.data());
}

struct Args {
  std::string verb;
  std::string site;
  std::string mode = "kill";
  uint64_t hit = 1;
  uint64_t seed = 1;
  size_t seeds = 8;
  size_t cycles = 50;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  if (argc < 2) return false;
  out->verb = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--site" && (v = value())) {
      out->site = v;
    } else if (flag == "--mode" && (v = value())) {
      out->mode = v;
    } else if (flag == "--hit" && (v = value())) {
      out->hit = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed" && (v = value())) {
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seeds" && (v = value())) {
      out->seeds = std::strtoull(v, nullptr, 10);
    } else if (flag == "--cycles" && (v = value())) {
      out->cycles = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown or valueless flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: crash_torture <verb> [flags]\n"
      "  list  [--seed N]                         print reachable sites\n"
      "  run   --site S [--hit N] [--mode kill|error] [--seed N]\n"
      "  sweep [--seeds N]                        all sites x seeds, kill\n"
      "  chaos [--cycles N] [--seed N]            randomized repeated kills\n");
  return 2;
}

int DoList(Env* env, const std::string& root, const Args& args) {
  TortureSpec spec;
  spec.seed = args.seed;
  const std::string dir = root + "/recon";
  (void)env->CreateDirIfMissing(dir);
  const auto sites = ReconSites(env, dir, spec);
  for (const auto& [site, hits] : sites) {
    std::printf("%-32s %llu\n", site.c_str(),
                static_cast<unsigned long long>(hits));
  }
  return sites.empty() ? 1 : 0;
}

int DoRun(Env* env, const std::string& root, const Args& args) {
  if (args.site.empty() || (args.mode != "kill" && args.mode != "error")) {
    return Usage();
  }
  TortureSpec spec;
  spec.seed = args.seed;
  const std::string dir = root + "/run";
  (void)env->CreateDirIfMissing(dir);
  const std::string schedule =
      args.site + "=" + args.mode + "@" + std::to_string(args.hit);
  const Verdict v =
      RunTortureCycle(env, dir, root + "/run.ack", schedule, spec);
  if (!v.ok) {
    std::fprintf(stderr, "FAIL %s: %s\n", schedule.c_str(), v.detail.c_str());
    return 1;
  }
  std::printf("ok %s (K=%llu)\n", schedule.c_str(),
              static_cast<unsigned long long>(v.recovered_k));
  return 0;
}

int DoSweep(Env* env, const std::string& root, const Args& args) {
  size_t cycles = 0, failures = 0;
  for (uint64_t seed = 1; seed <= args.seeds; ++seed) {
    TortureSpec spec;
    spec.seed = seed;
    const std::string recon_dir = root + "/recon";
    RemoveTree(env, recon_dir);
    (void)env->CreateDirIfMissing(recon_dir);
    const auto sites = ReconSites(env, recon_dir, spec);
    if (sites.empty()) {
      std::fprintf(stderr, "FAIL recon found no crashpoints\n");
      return 1;
    }
    for (const auto& [site, total_hits] : sites) {
      const uint64_t hit = 1 + (seed * 7 + cycles) % total_hits;
      const std::string schedule =
          site + "=kill@" + std::to_string(hit);
      const std::string dir = root + "/sweep";
      RemoveTree(env, dir);
      (void)env->CreateDirIfMissing(dir);
      const Verdict v =
          RunTortureCycle(env, dir, root + "/sweep.ack", schedule, spec);
      ++cycles;
      if (!v.ok) {
        ++failures;
        std::fprintf(stderr, "FAIL seed=%llu %s: %s\n",
                     static_cast<unsigned long long>(seed), schedule.c_str(),
                     v.detail.c_str());
      }
    }
  }
  std::printf("sweep: %zu cycles, %zu failures\n", cycles, failures);
  return failures == 0 ? 0 : 1;
}

int DoChaos(Env* env, const std::string& root, const Args& args) {
  TortureSpec spec;
  spec.seed = args.seed;
  Rng rng(args.seed);
  const auto workload = TortureWorkload(spec);
  const std::string recon_dir = root + "/recon";
  (void)env->CreateDirIfMissing(recon_dir);
  const auto sites = ReconSites(env, recon_dir, spec);
  if (sites.empty()) {
    std::fprintf(stderr, "FAIL recon found no crashpoints\n");
    return 1;
  }

  std::string dir = root + "/chaos";
  (void)env->CreateDirIfMissing(dir);
  uint64_t prev_k = 0;
  size_t completions = 0, failures = 0;
  for (size_t cycle = 0; cycle < args.cycles; ++cycle) {
    const auto& [site, total_hits] = sites[rng.NextBelow(sites.size())];
    const uint64_t hit = 1 + rng.NextBelow(total_hits);
    const std::string schedule = site + "=kill@" + std::to_string(hit);
    const ChildOutcome child =
        ForkTortureChild(dir, root + "/chaos.ack", schedule, spec);
    if (!child.killed && child.exit_code != kChildCompleted) {
      ++failures;
      std::fprintf(stderr, "FAIL cycle %zu %s: child exit %d\n", cycle,
                   schedule.c_str(), child.exit_code);
      continue;
    }
    const Verdict v = VerifyRecovered(env, dir, workload, child.acked);
    if (!v.ok) {
      ++failures;
      std::fprintf(stderr, "FAIL cycle %zu %s: %s\n", cycle, schedule.c_str(),
                   v.detail.c_str());
      continue;
    }
    if (v.recovered_k < prev_k + child.acked) {
      ++failures;
      std::fprintf(stderr,
                   "FAIL cycle %zu %s: lost progress (prev=%llu acked=%zu "
                   "K=%llu)\n",
                   cycle, schedule.c_str(),
                   static_cast<unsigned long long>(prev_k), child.acked,
                   static_cast<unsigned long long>(v.recovered_k));
      continue;
    }
    prev_k = v.recovered_k;
    if (prev_k == workload.size()) {
      ++completions;
      RemoveTree(env, dir);
      (void)env->CreateDirIfMissing(dir);
      prev_k = 0;
    }
  }
  std::printf("chaos: %zu cycles, %zu workload completions, %zu failures\n",
              args.cycles, completions, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  Env* env = Env::Default();
  const std::string root = ScratchRoot();

  int rc = 2;
  if (args.verb == "list") {
    rc = DoList(env, root, args);
  } else if (args.verb == "run") {
    rc = DoRun(env, root, args);
  } else if (args.verb == "sweep") {
    rc = DoSweep(env, root, args);
  } else if (args.verb == "chaos") {
    rc = DoChaos(env, root, args);
  } else {
    return Usage();
  }

  if (rc == 0) {
    auto names = env->ListDir(root);
    if (names.ok()) {
      for (const auto& n : names.value()) {
        RemoveTree(env, root + "/" + n);
        (void)env->DeleteFile(root + "/" + n);
      }
    }
    ::rmdir(root.c_str());
  } else {
    std::fprintf(stderr, "scratch kept for inspection: %s\n", root.c_str());
  }
  return rc;
}

#endif  // BURSTHIST_NO_FAULT
