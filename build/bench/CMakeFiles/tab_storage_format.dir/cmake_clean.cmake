file(REMOVE_RECURSE
  "CMakeFiles/tab_storage_format.dir/bench_common.cpp.o"
  "CMakeFiles/tab_storage_format.dir/bench_common.cpp.o.d"
  "CMakeFiles/tab_storage_format.dir/tab_storage_format.cpp.o"
  "CMakeFiles/tab_storage_format.dir/tab_storage_format.cpp.o.d"
  "tab_storage_format"
  "tab_storage_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_storage_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
