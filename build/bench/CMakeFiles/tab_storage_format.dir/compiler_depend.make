# Empty compiler generated dependencies file for tab_storage_format.
# This may be replaced when dependencies are built.
