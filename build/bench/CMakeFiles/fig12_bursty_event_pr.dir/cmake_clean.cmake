file(REMOVE_RECURSE
  "CMakeFiles/fig12_bursty_event_pr.dir/bench_common.cpp.o"
  "CMakeFiles/fig12_bursty_event_pr.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig12_bursty_event_pr.dir/fig12_bursty_event_pr.cpp.o"
  "CMakeFiles/fig12_bursty_event_pr.dir/fig12_bursty_event_pr.cpp.o.d"
  "fig12_bursty_event_pr"
  "fig12_bursty_event_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bursty_event_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
