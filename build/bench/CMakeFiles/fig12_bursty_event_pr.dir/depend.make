# Empty dependencies file for fig12_bursty_event_pr.
# This may be replaced when dependencies are built.
