file(REMOVE_RECURSE
  "CMakeFiles/fig13_timeline.dir/bench_common.cpp.o"
  "CMakeFiles/fig13_timeline.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig13_timeline.dir/fig13_timeline.cpp.o"
  "CMakeFiles/fig13_timeline.dir/fig13_timeline.cpp.o.d"
  "fig13_timeline"
  "fig13_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
