# Empty dependencies file for fig13_timeline.
# This may be replaced when dependencies are built.
