file(REMOVE_RECURSE
  "CMakeFiles/micro_throughput.dir/micro_throughput.cpp.o"
  "CMakeFiles/micro_throughput.dir/micro_throughput.cpp.o.d"
  "micro_throughput"
  "micro_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
