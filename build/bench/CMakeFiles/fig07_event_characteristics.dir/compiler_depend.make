# Empty compiler generated dependencies file for fig07_event_characteristics.
# This may be replaced when dependencies are built.
