file(REMOVE_RECURSE
  "CMakeFiles/fig07_event_characteristics.dir/bench_common.cpp.o"
  "CMakeFiles/fig07_event_characteristics.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig07_event_characteristics.dir/fig07_event_characteristics.cpp.o"
  "CMakeFiles/fig07_event_characteristics.dir/fig07_event_characteristics.cpp.o.d"
  "fig07_event_characteristics"
  "fig07_event_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_event_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
