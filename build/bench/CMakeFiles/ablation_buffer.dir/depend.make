# Empty dependencies file for ablation_buffer.
# This may be replaced when dependencies are built.
