file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer.dir/ablation_buffer.cpp.o"
  "CMakeFiles/ablation_buffer.dir/ablation_buffer.cpp.o.d"
  "CMakeFiles/ablation_buffer.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_buffer.dir/bench_common.cpp.o.d"
  "ablation_buffer"
  "ablation_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
