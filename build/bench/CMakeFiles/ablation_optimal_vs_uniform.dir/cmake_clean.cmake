file(REMOVE_RECURSE
  "CMakeFiles/ablation_optimal_vs_uniform.dir/ablation_optimal_vs_uniform.cpp.o"
  "CMakeFiles/ablation_optimal_vs_uniform.dir/ablation_optimal_vs_uniform.cpp.o.d"
  "CMakeFiles/ablation_optimal_vs_uniform.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_optimal_vs_uniform.dir/bench_common.cpp.o.d"
  "ablation_optimal_vs_uniform"
  "ablation_optimal_vs_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimal_vs_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
