# Empty compiler generated dependencies file for ablation_optimal_vs_uniform.
# This may be replaced when dependencies are built.
