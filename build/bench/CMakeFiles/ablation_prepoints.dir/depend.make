# Empty dependencies file for ablation_prepoints.
# This may be replaced when dependencies are built.
