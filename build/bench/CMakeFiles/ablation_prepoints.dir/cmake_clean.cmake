file(REMOVE_RECURSE
  "CMakeFiles/ablation_prepoints.dir/ablation_prepoints.cpp.o"
  "CMakeFiles/ablation_prepoints.dir/ablation_prepoints.cpp.o.d"
  "CMakeFiles/ablation_prepoints.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_prepoints.dir/bench_common.cpp.o.d"
  "ablation_prepoints"
  "ablation_prepoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prepoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
