# Empty dependencies file for tab_baseline_costs.
# This may be replaced when dependencies are built.
