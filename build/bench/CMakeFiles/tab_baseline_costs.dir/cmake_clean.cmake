file(REMOVE_RECURSE
  "CMakeFiles/tab_baseline_costs.dir/bench_common.cpp.o"
  "CMakeFiles/tab_baseline_costs.dir/bench_common.cpp.o.d"
  "CMakeFiles/tab_baseline_costs.dir/tab_baseline_costs.cpp.o"
  "CMakeFiles/tab_baseline_costs.dir/tab_baseline_costs.cpp.o.d"
  "tab_baseline_costs"
  "tab_baseline_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_baseline_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
