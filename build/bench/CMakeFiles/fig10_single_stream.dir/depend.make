# Empty dependencies file for fig10_single_stream.
# This may be replaced when dependencies are built.
