file(REMOVE_RECURSE
  "CMakeFiles/fig10_single_stream.dir/bench_common.cpp.o"
  "CMakeFiles/fig10_single_stream.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig10_single_stream.dir/fig10_single_stream.cpp.o"
  "CMakeFiles/fig10_single_stream.dir/fig10_single_stream.cpp.o.d"
  "fig10_single_stream"
  "fig10_single_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_single_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
