# Empty dependencies file for tab_parallel_scaling.
# This may be replaced when dependencies are built.
