file(REMOVE_RECURSE
  "CMakeFiles/tab_parallel_scaling.dir/bench_common.cpp.o"
  "CMakeFiles/tab_parallel_scaling.dir/bench_common.cpp.o.d"
  "CMakeFiles/tab_parallel_scaling.dir/tab_parallel_scaling.cpp.o"
  "CMakeFiles/tab_parallel_scaling.dir/tab_parallel_scaling.cpp.o.d"
  "tab_parallel_scaling"
  "tab_parallel_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_parallel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
