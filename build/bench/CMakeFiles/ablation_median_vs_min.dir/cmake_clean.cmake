file(REMOVE_RECURSE
  "CMakeFiles/ablation_median_vs_min.dir/ablation_median_vs_min.cpp.o"
  "CMakeFiles/ablation_median_vs_min.dir/ablation_median_vs_min.cpp.o.d"
  "CMakeFiles/ablation_median_vs_min.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_median_vs_min.dir/bench_common.cpp.o.d"
  "ablation_median_vs_min"
  "ablation_median_vs_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_median_vs_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
