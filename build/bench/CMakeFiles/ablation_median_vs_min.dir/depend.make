# Empty dependencies file for ablation_median_vs_min.
# This may be replaced when dependencies are built.
