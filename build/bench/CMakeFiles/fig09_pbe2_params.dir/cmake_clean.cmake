file(REMOVE_RECURSE
  "CMakeFiles/fig09_pbe2_params.dir/bench_common.cpp.o"
  "CMakeFiles/fig09_pbe2_params.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig09_pbe2_params.dir/fig09_pbe2_params.cpp.o"
  "CMakeFiles/fig09_pbe2_params.dir/fig09_pbe2_params.cpp.o.d"
  "fig09_pbe2_params"
  "fig09_pbe2_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pbe2_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
