# Empty dependencies file for fig09_pbe2_params.
# This may be replaced when dependencies are built.
