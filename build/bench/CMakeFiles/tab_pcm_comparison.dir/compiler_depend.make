# Empty compiler generated dependencies file for tab_pcm_comparison.
# This may be replaced when dependencies are built.
