file(REMOVE_RECURSE
  "CMakeFiles/tab_pcm_comparison.dir/bench_common.cpp.o"
  "CMakeFiles/tab_pcm_comparison.dir/bench_common.cpp.o.d"
  "CMakeFiles/tab_pcm_comparison.dir/tab_pcm_comparison.cpp.o"
  "CMakeFiles/tab_pcm_comparison.dir/tab_pcm_comparison.cpp.o.d"
  "tab_pcm_comparison"
  "tab_pcm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_pcm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
