file(REMOVE_RECURSE
  "CMakeFiles/fig08_pbe1_params.dir/bench_common.cpp.o"
  "CMakeFiles/fig08_pbe1_params.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig08_pbe1_params.dir/fig08_pbe1_params.cpp.o"
  "CMakeFiles/fig08_pbe1_params.dir/fig08_pbe1_params.cpp.o.d"
  "fig08_pbe1_params"
  "fig08_pbe1_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pbe1_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
