# Empty dependencies file for fig08_pbe1_params.
# This may be replaced when dependencies are built.
