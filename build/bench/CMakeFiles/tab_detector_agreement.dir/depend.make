# Empty dependencies file for tab_detector_agreement.
# This may be replaced when dependencies are built.
