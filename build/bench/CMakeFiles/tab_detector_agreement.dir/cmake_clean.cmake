file(REMOVE_RECURSE
  "CMakeFiles/tab_detector_agreement.dir/bench_common.cpp.o"
  "CMakeFiles/tab_detector_agreement.dir/bench_common.cpp.o.d"
  "CMakeFiles/tab_detector_agreement.dir/tab_detector_agreement.cpp.o"
  "CMakeFiles/tab_detector_agreement.dir/tab_detector_agreement.cpp.o.d"
  "tab_detector_agreement"
  "tab_detector_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_detector_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
