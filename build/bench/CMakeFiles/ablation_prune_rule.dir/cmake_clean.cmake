file(REMOVE_RECURSE
  "CMakeFiles/ablation_prune_rule.dir/ablation_prune_rule.cpp.o"
  "CMakeFiles/ablation_prune_rule.dir/ablation_prune_rule.cpp.o.d"
  "CMakeFiles/ablation_prune_rule.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_prune_rule.dir/bench_common.cpp.o.d"
  "ablation_prune_rule"
  "ablation_prune_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prune_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
