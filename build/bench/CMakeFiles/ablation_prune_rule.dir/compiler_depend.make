# Empty compiler generated dependencies file for ablation_prune_rule.
# This may be replaced when dependencies are built.
