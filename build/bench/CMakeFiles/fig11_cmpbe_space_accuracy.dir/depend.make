# Empty dependencies file for fig11_cmpbe_space_accuracy.
# This may be replaced when dependencies are built.
