file(REMOVE_RECURSE
  "CMakeFiles/fig11_cmpbe_space_accuracy.dir/bench_common.cpp.o"
  "CMakeFiles/fig11_cmpbe_space_accuracy.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig11_cmpbe_space_accuracy.dir/fig11_cmpbe_space_accuracy.cpp.o"
  "CMakeFiles/fig11_cmpbe_space_accuracy.dir/fig11_cmpbe_space_accuracy.cpp.o.d"
  "fig11_cmpbe_space_accuracy"
  "fig11_cmpbe_space_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cmpbe_space_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
