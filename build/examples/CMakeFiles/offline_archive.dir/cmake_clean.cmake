file(REMOVE_RECURSE
  "CMakeFiles/offline_archive.dir/offline_archive.cpp.o"
  "CMakeFiles/offline_archive.dir/offline_archive.cpp.o.d"
  "offline_archive"
  "offline_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
