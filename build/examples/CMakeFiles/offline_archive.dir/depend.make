# Empty dependencies file for offline_archive.
# This may be replaced when dependencies are built.
