# Empty compiler generated dependencies file for trending_dashboard.
# This may be replaced when dependencies are built.
