file(REMOVE_RECURSE
  "CMakeFiles/trending_dashboard.dir/trending_dashboard.cpp.o"
  "CMakeFiles/trending_dashboard.dir/trending_dashboard.cpp.o.d"
  "trending_dashboard"
  "trending_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trending_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
