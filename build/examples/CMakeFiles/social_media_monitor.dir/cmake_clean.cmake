file(REMOVE_RECURSE
  "CMakeFiles/social_media_monitor.dir/social_media_monitor.cpp.o"
  "CMakeFiles/social_media_monitor.dir/social_media_monitor.cpp.o.d"
  "social_media_monitor"
  "social_media_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_media_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
