# Empty compiler generated dependencies file for social_media_monitor.
# This may be replaced when dependencies are built.
