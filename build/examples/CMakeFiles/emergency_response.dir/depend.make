# Empty dependencies file for emergency_response.
# This may be replaced when dependencies are built.
