file(REMOVE_RECURSE
  "CMakeFiles/emergency_response.dir/emergency_response.cpp.o"
  "CMakeFiles/emergency_response.dir/emergency_response.cpp.o.d"
  "emergency_response"
  "emergency_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
