file(REMOVE_RECURSE
  "CMakeFiles/bursthist_cli.dir/bursthist_cli.cpp.o"
  "CMakeFiles/bursthist_cli.dir/bursthist_cli.cpp.o.d"
  "bursthist_cli"
  "bursthist_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursthist_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
