# Empty compiler generated dependencies file for bursthist_cli.
# This may be replaced when dependencies are built.
