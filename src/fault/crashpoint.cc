#include "fault/crashpoint.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

namespace bursthist {
namespace fault {

std::atomic<bool> FaultScheduler::armed_flag_{false};

FaultScheduler& FaultScheduler::Global() {
  static FaultScheduler* instance = new FaultScheduler();
  return *instance;
}

void FaultScheduler::RecomputeArmed() {
  armed_flag_.store(!rules_.empty() || trace_, std::memory_order_relaxed);
}

void FaultScheduler::Arm(const std::string& site, FaultAction action,
                         uint64_t hit, int delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[site] = FaultRule{action, hit < 1 ? 1 : hit, delay_ms};
  hits_[site] = 0;
  RecomputeArmed();
}

namespace {

// One rule out of "site=action[:ms][@hit]".
Status ParseRule(const std::string& rule, std::string* site,
                 FaultRule* parsed) {
  const size_t eq = rule.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("crashpoint rule missing 'site=': " + rule);
  }
  *site = rule.substr(0, eq);
  std::string action = rule.substr(eq + 1);
  parsed->hit = 1;
  parsed->delay_ms = 0;
  const size_t at = action.rfind('@');
  if (at != std::string::npos) {
    const std::string count = action.substr(at + 1);
    char* end = nullptr;
    parsed->hit = std::strtoull(count.c_str(), &end, 10);
    if (count.empty() || end == nullptr || *end != '\0' || parsed->hit < 1) {
      return Status::InvalidArgument("bad crashpoint hit count: " + rule);
    }
    action = action.substr(0, at);
  }
  const size_t colon = action.find(':');
  std::string arg;
  if (colon != std::string::npos) {
    arg = action.substr(colon + 1);
    action = action.substr(0, colon);
  }
  if (action == "kill") {
    parsed->action = FaultAction::kKill;
  } else if (action == "error") {
    parsed->action = FaultAction::kError;
  } else if (action == "delay") {
    parsed->action = FaultAction::kDelay;
    char* end = nullptr;
    parsed->delay_ms = static_cast<int>(std::strtol(arg.c_str(), &end, 10));
    if (arg.empty() || end == nullptr || *end != '\0' || parsed->delay_ms < 0) {
      return Status::InvalidArgument("bad crashpoint delay: " + rule);
    }
  } else {
    return Status::InvalidArgument("unknown crashpoint action: " + rule);
  }
  return Status::OK();
}

}  // namespace

Status FaultScheduler::LoadSchedule(const std::string& spec) {
  std::vector<std::pair<std::string, FaultRule>> parsed;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string rule = spec.substr(begin, end - begin);
    if (!rule.empty()) {
      std::string site;
      FaultRule fr;
      BURSTHIST_RETURN_IF_ERROR(ParseRule(rule, &site, &fr));
      parsed.emplace_back(std::move(site), fr);
    }
    begin = end + 1;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, fr] : parsed) {
    rules_[site] = fr;
    hits_[site] = 0;
  }
  RecomputeArmed();
  return Status::OK();
}

Status FaultScheduler::LoadFromEnv() {
  const char* spec = std::getenv("BURSTHIST_CRASHPOINTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return LoadSchedule(spec);
}

void FaultScheduler::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  hits_.clear();
  trace_ = false;
  RecomputeArmed();
}

void FaultScheduler::EnableTrace(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = on;
  RecomputeArmed();
}

std::vector<std::pair<std::string, uint64_t>> FaultScheduler::ReachedSites() {
  std::lock_guard<std::mutex> lock(mu_);
  return {hits_.begin(), hits_.end()};
}

uint64_t FaultScheduler::HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

Status FaultScheduler::Hit(const char* site) {
  FaultRule fired;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t count = ++hits_[site];
    auto it = rules_.find(site);
    if (it != rules_.end() && count == it->second.hit) {
      fired = it->second;
      fire = true;
    }
  }
  if (!fire) return Status::OK();
  switch (fired.action) {
    case FaultAction::kKill:
      // The whole point: no destructors, no buffered-write flush, no
      // atexit — the death a power cut or OOM kill delivers. _exit is
      // the unreachable backstop.
      ::kill(::getpid(), SIGKILL);
      ::_exit(137);
    case FaultAction::kError:
      return Status::IOError(std::string("crashpoint fault injected at ") +
                             site);
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace fault
}  // namespace bursthist
