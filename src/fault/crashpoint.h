// Named crashpoints: a process-wide fault scheduler for torture
// testing the durable paths with REAL process deaths.
//
// Instrumented code marks the instants a crash would be most damaging:
//
//   Status WalWriter::AddRecord(...) {
//     ...
//     BURSTHIST_CRASHPOINT("wal.append.post_write");
//     ...
//   }
//
// A schedule — armed through the API (torture harness) or the
// BURSTHIST_CRASHPOINTS environment variable (external drivers) —
// names a site, an action, and the 1-based hit count at which to act:
//
//   kKill   raise SIGKILL: the hard process death fsync ordering and
//           rename atomicity exist for. No destructors, no flushes.
//   kError  return an injected kIOError from the enclosing function,
//           exercising the same error paths a flaky device would.
//   kDelay  sleep, widening crash windows for concurrent chaos.
//
// The macro's fast path is one relaxed atomic load; a build with
// BURSTHIST_NO_FAULT compiles every site to nothing at all (CI
// asserts the site strings vanish from the binaries).
//
// Scheduling spec grammar (comma-separated rules):
//
//   site=kill@3          SIGKILL on the 3rd hit of `site`
//   site=error           injected error on the 1st hit
//   site=delay:50@2      sleep 50 ms on the 2nd hit
//
// Trace mode records every site the process reaches (with hit counts)
// without acting — the torture harness's recon pass uses it to
// enumerate the sweep matrix instead of trusting a hand-kept list.

#ifndef BURSTHIST_FAULT_CRASHPOINT_H_
#define BURSTHIST_FAULT_CRASHPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace bursthist {
namespace fault {

enum class FaultAction : uint8_t {
  kKill = 0,
  kError = 1,
  kDelay = 2,
};

/// One armed rule: act when the named site's hit counter reaches
/// `hit` (1-based).
struct FaultRule {
  FaultAction action = FaultAction::kError;
  uint64_t hit = 1;
  int delay_ms = 0;
};

/// Process-wide singleton the BURSTHIST_CRASHPOINT macro consults.
/// Thread-safe; survives fork (the child inherits the schedule and
/// re-arms as it pleases).
class FaultScheduler {
 public:
  static FaultScheduler& Global();

  /// True when any rule is armed or trace mode is on — the macro's
  /// one-load fast path. Relaxed is enough: arming happens-before the
  /// workload in every supported pattern (same thread, or before
  /// thread/process start).
  static bool armed() { return armed_flag_.load(std::memory_order_relaxed); }

  /// Arms (or replaces) one rule. Resets that site's hit counter so
  /// back-to-back sweeps over the same process see fresh counts.
  void Arm(const std::string& site, FaultAction action, uint64_t hit = 1,
           int delay_ms = 0);

  /// Parses and arms a full schedule spec (see file comment). Any
  /// parse error leaves the scheduler unchanged.
  Status LoadSchedule(const std::string& spec);

  /// Loads BURSTHIST_CRASHPOINTS when set; no-op when unset.
  Status LoadFromEnv();

  /// Drops every rule, hit counter, and trace record; trace off.
  void Disarm();

  /// Trace mode: record reached sites (and their hit counts) without
  /// acting. Composes with armed rules.
  void EnableTrace(bool on);

  /// Sites reached since the last Disarm, with total hit counts,
  /// sorted by site name. Requires trace mode (or armed rules — armed
  /// sites count their hits too).
  std::vector<std::pair<std::string, uint64_t>> ReachedSites();

  /// Total hits recorded for one site (0 if never reached).
  uint64_t HitCount(const std::string& site);

  /// The macro's slow path: counts the hit and fires the matching
  /// rule. kKill does not return. kError returns the injected status;
  /// otherwise OK.
  Status Hit(const char* site);

 private:
  FaultScheduler() = default;

  void RecomputeArmed();  // holding mu_

  static std::atomic<bool> armed_flag_;

  std::mutex mu_;
  std::map<std::string, FaultRule> rules_;
  std::map<std::string, uint64_t> hits_;
  bool trace_ = false;
};

}  // namespace fault
}  // namespace bursthist

#ifdef BURSTHIST_NO_FAULT
#define BURSTHIST_CRASHPOINT(site) \
  do {                             \
  } while (0)
#else
// `return` on injected error: only valid inside functions returning
// Status or Result<T> — exactly where the durable path's crash
// windows live.
#define BURSTHIST_CRASHPOINT(site)                                      \
  do {                                                                  \
    if (::bursthist::fault::FaultScheduler::armed()) {                  \
      ::bursthist::Status _bursthist_cp_st =                            \
          ::bursthist::fault::FaultScheduler::Global().Hit(site);       \
      if (!_bursthist_cp_st.ok()) return _bursthist_cp_st;              \
    }                                                                   \
  } while (0)
#endif

#endif  // BURSTHIST_FAULT_CRASHPOINT_H_
