#include "stream/frequency_curve.h"

#include <algorithm>
#include <cassert>

namespace bursthist {

FrequencyCurve::FrequencyCurve(const SingleEventStream& stream) {
  const auto& times = stream.times();
  points_.reserve(times.size());
  Count running = 0;
  for (size_t i = 0; i < times.size();) {
    size_t j = i;
    while (j < times.size() && times[j] == times[i]) ++j;
    running += static_cast<Count>(j - i);
    points_.push_back(CurvePoint{times[i], running});
    i = j;
  }
}

FrequencyCurve::FrequencyCurve(std::vector<CurvePoint> points)
    : points_(std::move(points)) {
#ifndef NDEBUG
  for (size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].time > points_[i - 1].time);
    assert(points_[i].count > points_[i - 1].count);
  }
#endif
}

Count FrequencyCurve::Evaluate(Timestamp t) const {
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Timestamp v, const CurvePoint& p) { return v < p.time; });
  if (it == points_.begin()) return 0;
  return std::prev(it)->count;
}

Burstiness FrequencyCurve::BurstinessAt(Timestamp t, Timestamp tau) const {
  const auto f0 = static_cast<Burstiness>(Evaluate(t));
  const auto f1 = static_cast<Burstiness>(Evaluate(t - tau));
  const auto f2 = static_cast<Burstiness>(Evaluate(t - 2 * tau));
  return f0 - 2 * f1 + f2;
}

std::vector<CurvePoint> FrequencyCurve::AugmentedPoints() const {
  std::vector<CurvePoint> out;
  out.reserve(points_.size() * 2);
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0 && points_[i].time > points_[i - 1].time + 1) {
      out.push_back(CurvePoint{points_[i].time - 1, points_[i - 1].count});
    }
    out.push_back(points_[i]);
  }
  return out;
}

double FrequencyCurve::AreaAbove(const FrequencyCurve& approx,
                                 Timestamp horizon) const {
  if (points_.empty()) return 0.0;
  assert(horizon >= points_.back().time);
  double area = 0.0;
  for (size_t i = 0; i < points_.size(); ++i) {
    const Timestamp begin = points_[i].time;
    const Timestamp end =
        (i + 1 < points_.size()) ? points_[i + 1].time : horizon;
    // Our value is constant on [begin, end); the approximation may have
    // its own breakpoints inside, so walk unit steps only when needed.
    // Approximations in this library are staircases with corner points
    // that are subsets of ours, so they are also constant here.
    const double diff = static_cast<double>(points_[i].count) -
                        static_cast<double>(approx.Evaluate(begin));
    area += diff * static_cast<double>(end - begin);
  }
  return area;
}

}  // namespace bursthist
