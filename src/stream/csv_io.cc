#include "stream/csv_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "util/serialize.h"

namespace bursthist {

Result<EventStream> ParseEventStreamCsv(const std::string& text) {
  EventStream stream;
  size_t line_no = 0;
  size_t pos = 0;
  Timestamp last_time = 0;
  bool started = false;
  while (pos < text.size()) {
    ++line_no;
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#' || line == "\r") continue;

    char* end = nullptr;
    const unsigned long long id = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str() || *end != ',') {
      return Status::InvalidArgument("malformed CSV at line " +
                                     std::to_string(line_no));
    }
    const char* ts_begin = end + 1;
    const long long ts = std::strtoll(ts_begin, &end, 10);
    if (end == ts_begin || (*end != '\0' && *end != '\r')) {
      return Status::InvalidArgument("malformed CSV at line " +
                                     std::to_string(line_no));
    }
    if (id > 0xffffffffULL) {
      return Status::OutOfRange("event id overflows 32 bits at line " +
                                std::to_string(line_no));
    }
    if (started && ts < last_time) {
      return Status::OutOfRange("timestamp regression at line " +
                                std::to_string(line_no));
    }
    stream.Append(static_cast<EventId>(id), static_cast<Timestamp>(ts));
    last_time = ts;
    started = true;
  }
  return stream;
}

Result<EventStream> ReadEventStreamCsv(const std::string& path) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseEventStreamCsv(
      std::string(bytes.value().begin(), bytes.value().end()));
}

Status WriteEventStreamCsv(const std::string& path,
                           const EventStream& stream) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::NotFound("cannot open for write: " + path);
  for (const auto& r : stream.records()) {
    std::fprintf(f, "%u,%" PRId64 "\n", r.id, r.time);
  }
  if (std::fclose(f) != 0) return Status::Internal("short write: " + path);
  return Status::OK();
}

}  // namespace bursthist
