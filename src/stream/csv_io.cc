#include "stream/csv_io.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "util/serialize.h"

namespace bursthist {

namespace {

// "<what> at line <n>: '<row>'" — the offending row is quoted (capped,
// with NULs made visible) so a bad feed is diagnosable from the error
// alone.
std::string RowContext(const std::string& what, size_t line_no,
                       const std::string& line) {
  std::string shown;
  for (size_t i = 0; i < line.size() && i < 64; ++i) {
    shown += line[i] == '\0' ? std::string("\\0")
                             : std::string(1, line[i]);
  }
  if (line.size() > 64) shown += "...";
  return what + " at line " + std::to_string(line_no) + ": '" + shown + "'";
}

}  // namespace

Result<EventStream> ParseEventStreamCsv(const std::string& text) {
  EventStream stream;
  size_t line_no = 0;
  size_t pos = 0;
  Timestamp last_time = 0;
  bool started = false;
  while (pos < text.size()) {
    ++line_no;
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#' || line == "\r") continue;

    // The parse below is strtoull/strtoll-based, which read
    // NUL-terminated strings; a NUL embedded in the row would silently
    // hide whatever follows it, so reject it up front.
    if (line.find('\0') != std::string::npos) {
      return Status::InvalidArgument(
          RowContext("embedded NUL in CSV", line_no, line));
    }
    // Field width the row actually occupies (minus a trailing CR from
    // Windows line endings); the parse must consume exactly this much.
    size_t row_size = line.size();
    if (row_size > 0 && line[row_size - 1] == '\r') --row_size;

    char* end = nullptr;
    errno = 0;
    const unsigned long long id = std::strtoull(line.c_str(), &end, 10);
    if (end == line.c_str() || *end != ',') {
      return Status::InvalidArgument(RowContext("malformed CSV", line_no,
                                                line));
    }
    if (errno == ERANGE || id > 0xffffffffULL) {
      return Status::OutOfRange(
          RowContext("event id overflows 32 bits", line_no, line));
    }
    if (line[0] == '-') {
      // strtoull accepts a leading minus and wraps; a negative id that
      // happens to wrap into 32 bits must not slip through.
      return Status::OutOfRange(
          RowContext("negative event id", line_no, line));
    }
    const char* ts_begin = end + 1;
    errno = 0;
    const long long ts = std::strtoll(ts_begin, &end, 10);
    if (end == ts_begin) {
      return Status::InvalidArgument(RowContext("malformed CSV", line_no,
                                                line));
    }
    if (errno == ERANGE) {
      return Status::OutOfRange(
          RowContext("timestamp overflows 64 bits", line_no, line));
    }
    // Exactly the whole row must have been consumed — trailing garbage
    // (extra fields, junk after the number) is an error, not ignored.
    if (static_cast<size_t>(end - line.c_str()) != row_size) {
      return Status::InvalidArgument(
          RowContext("trailing garbage in CSV", line_no, line));
    }
    if (started && ts < last_time) {
      return Status::OutOfRange(
          RowContext("timestamp regression", line_no, line));
    }
    stream.Append(static_cast<EventId>(id), static_cast<Timestamp>(ts));
    last_time = ts;
    started = true;
  }
  return stream;
}

Result<EventStream> ReadEventStreamCsv(const std::string& path) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseEventStreamCsv(
      std::string(bytes.value().begin(), bytes.value().end()));
}

Status WriteEventStreamCsv(const std::string& path,
                           const EventStream& stream) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::NotFound("cannot open for write: " + path);
  for (const auto& r : stream.records()) {
    std::fprintf(f, "%u,%" PRId64 "\n", r.id, r.time);
  }
  if (std::fclose(f) != 0) return Status::Internal("short write: " + path);
  return Status::OK();
}

}  // namespace bursthist
