// The message -> event-id black box of Section II-A.
//
// The paper assumes a hash h mapping each raw message m_i to one or
// more event ids ("h can be as simple as using the hashtag of a
// message m, or a sophisticated topic modeling method"), e.g. both
//   "LBC homeboy stoked to see Brasil wins"
//   "#brasil #gold #Olympics2016"
// map to the Rio soccer-final event. This module provides the simple
// end of that spectrum: tokenization, hashtag extraction, a curated
// keyword -> id table (so differently-worded mentions of one event
// collapse to one id), and a deterministic hash fallback into [0, K)
// for everything else.

#ifndef BURSTHIST_STREAM_TEXT_PIPELINE_H_
#define BURSTHIST_STREAM_TEXT_PIPELINE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stream/event_stream.h"
#include "stream/types.h"
#include "util/status.h"

namespace bursthist {

/// One raw element of the information stream M.
struct Message {
  std::string text;
  Timestamp time = 0;
};

/// Lowercases ASCII letters (the pipeline is case-insensitive).
std::string ToLowerAscii(std::string_view s);

/// Splits on non-alphanumeric characters (keeping '#' prefixes);
/// returns lowercased tokens. "#Brasil wins!!" -> {"#brasil", "wins"}.
std::vector<std::string> Tokenize(std::string_view text);

/// The "#..." tokens of a message, lowercased, in order of appearance.
std::vector<std::string> ExtractHashtags(std::string_view text);

/// Maps messages to event ids in [0, universe_size).
class EventIdMapper {
 public:
  /// @param universe_size  K = |Sigma|; must be >= 1.
  /// @param seed           fallback-hash seed.
  explicit EventIdMapper(EventId universe_size, uint64_t seed = 0x7091cULL);

  /// Binds a keyword or hashtag (matched as a whole lowercased token)
  /// to a specific event id. Rebinding an existing keyword replaces
  /// the binding. Fails if id >= universe size.
  Status BindKeyword(std::string_view keyword, EventId id);

  /// Event ids mentioned by a message: the ids of all bound tokens,
  /// plus — when the message has hashtags but none of them is bound —
  /// the hash-fallback id of each unbound hashtag. Returned sorted
  /// and deduplicated; empty if the message carries no signal (no
  /// bound token and no hashtag).
  std::vector<EventId> MapMessage(std::string_view text) const;

  /// The fallback id a raw tag maps to (exposed for tests).
  EventId FallbackId(std::string_view token) const;

  EventId universe_size() const { return universe_size_; }
  size_t bound_keywords() const { return bindings_.size(); }

 private:
  EventId universe_size_;
  uint64_t seed_;
  std::unordered_map<std::string, EventId> bindings_;
};

/// Applies a mapper to a timestamp-ordered message stream, emitting
/// one (id, t) element per mentioned event (a message discussing k
/// events contributes k stream elements, as in Section II-A).
EventStream ProcessMessages(const EventIdMapper& mapper,
                            const std::vector<Message>& messages);

}  // namespace bursthist

#endif  // BURSTHIST_STREAM_TEXT_PIPELINE_H_
