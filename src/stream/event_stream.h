// Event streams (Section II-A of the paper).
//
// EventStream is the general mixed-event stream S: (id, timestamp)
// pairs with non-decreasing timestamps. SingleEventStream is the
// special case S_e: an ordered multiset of timestamps for one event.
// Both support exact frequency / burst-frequency / burstiness queries
// by binary search, which is the paper's naive baseline (Section II-B)
// and our ground truth.

#ifndef BURSTHIST_STREAM_EVENT_STREAM_H_
#define BURSTHIST_STREAM_EVENT_STREAM_H_

#include <cstddef>
#include <vector>

#include "stream/types.h"
#include "util/status.h"

namespace bursthist {

/// Ordered multiset of timestamps for a single event (S_e). Duplicated
/// timestamps are allowed (same event mentioned by several messages at
/// the same instant).
class SingleEventStream {
 public:
  SingleEventStream() = default;

  /// Constructs from timestamps; they must be non-decreasing.
  explicit SingleEventStream(std::vector<Timestamp> times);

  /// Appends an occurrence. Precondition: t >= last appended time.
  void Append(Timestamp t);

  /// Number of occurrences N.
  size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  const std::vector<Timestamp>& times() const { return times_; }

  /// Cumulative frequency F(t) = |{ t_i <= t }|.
  Count CumulativeFrequency(Timestamp t) const;

  /// Frequency in [t1, t2]: f(t1, t2) = F(t2) - F(t1 - 1).
  Count Frequency(Timestamp t1, Timestamp t2) const;

  /// Burst frequency bf(t) = f(t - tau, t) (paper: frequency in the
  /// closed-open convention F(t) - F(t - tau)).
  Count BurstFrequency(Timestamp t, Timestamp tau) const;

  /// Exact burstiness b(t) = F(t) - 2 F(t - tau) + F(t - 2 tau).
  Burstiness BurstinessAt(Timestamp t, Timestamp tau) const;

  /// Heap bytes used (the naive baseline's space cost, O(N)).
  size_t SizeBytes() const { return times_.size() * sizeof(Timestamp); }

 private:
  std::vector<Timestamp> times_;
};

/// General event stream S with mixed event ids, ordered by timestamp.
class EventStream {
 public:
  EventStream() = default;

  /// Constructs from records; timestamps must be non-decreasing.
  explicit EventStream(std::vector<EventRecord> records);

  /// Appends a record. Precondition: time >= last appended time.
  void Append(EventId id, Timestamp t);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<EventRecord>& records() const { return records_; }

  /// Earliest / latest timestamp; preconditions: !empty().
  Timestamp MinTime() const { return records_.front().time; }
  Timestamp MaxTime() const { return records_.back().time; }

  /// Largest event id + 1 observed (a lower bound for K).
  EventId MaxIdPlusOne() const;

  /// Extracts the temporal substream S[t1, t2] (inclusive range).
  EventStream Slice(Timestamp t1, Timestamp t2) const;

  /// Extracts the single-event stream S_e.
  SingleEventStream Project(EventId e) const;

  /// Splits into one SingleEventStream per id in [0, k). Ids >= k are
  /// rejected with InvalidArgument.
  Result<std::vector<SingleEventStream>> SplitById(EventId k) const;

  size_t SizeBytes() const { return records_.size() * sizeof(EventRecord); }

 private:
  std::vector<EventRecord> records_;
};

/// Merges per-event streams into one timestamp-ordered EventStream.
/// `streams[i]` becomes event id i.
EventStream MergeStreams(const std::vector<SingleEventStream>& streams);

}  // namespace bursthist

#endif  // BURSTHIST_STREAM_EVENT_STREAM_H_
