// The exact cumulative-frequency staircase curve F(t) (Section III).
//
// F(t) is represented by its left-upper corner points
// P_F = {p_0 .. p_{n-1}}, p_i = (t_i, F(t_i)) with strictly increasing
// coordinates in both axes. n (the number of *distinct* timestamps) can
// be much smaller than the stream size N.

#ifndef BURSTHIST_STREAM_FREQUENCY_CURVE_H_
#define BURSTHIST_STREAM_FREQUENCY_CURVE_H_

#include <cstddef>
#include <vector>

#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {

/// One corner point of a staircase curve: the curve takes value `count`
/// on [time, next point's time).
struct CurvePoint {
  Timestamp time;
  Count count;

  friend bool operator==(const CurvePoint&, const CurvePoint&) = default;
};

/// Immutable exact frequency curve built from a single-event stream.
class FrequencyCurve {
 public:
  FrequencyCurve() = default;

  /// Builds the corner points from an ordered timestamp multiset.
  explicit FrequencyCurve(const SingleEventStream& stream);

  /// Builds directly from corner points (must be strictly increasing in
  /// time and count).
  explicit FrequencyCurve(std::vector<CurvePoint> points);

  /// Number of corner points n = |F(t)|.
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<CurvePoint>& points() const { return points_; }

  /// F(t): value of the last corner point at or before t; 0 before the
  /// first point.
  Count Evaluate(Timestamp t) const;

  /// Exact burstiness b(t) = F(t) - 2 F(t-tau) + F(t-2tau).
  Burstiness BurstinessAt(Timestamp t, Timestamp tau) const;

  /// The augmented point set of Section III-B: before every rise point
  /// p_i (i >= 1), insert (t_i - 1, F(t_i - 1)) — the level right
  /// before the staircase rises. Output size is at most 2n and the
  /// times remain strictly increasing (consecutive-timestamp rises do
  /// not duplicate points).
  std::vector<CurvePoint> AugmentedPoints() const;

  /// Area between this curve and an always-lower approximation, both
  /// extended to `horizon` (>= last time):
  ///   sum over unit timestamps t in [first time, horizon) of
  ///   F(t) - G(t), where G is evaluated through `approx`.
  /// Used to verify optimality of the PBE-1 dynamic program.
  double AreaAbove(const FrequencyCurve& approx, Timestamp horizon) const;

 private:
  std::vector<CurvePoint> points_;
};

}  // namespace bursthist

#endif  // BURSTHIST_STREAM_FREQUENCY_CURVE_H_
