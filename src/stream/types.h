// Core value types shared by every module (Table I of the paper).

#ifndef BURSTHIST_STREAM_TYPES_H_
#define BURSTHIST_STREAM_TYPES_H_

#include <cstdint>

namespace bursthist {

/// Identifier of an event in the universal event space Sigma = [0, K).
using EventId = uint32_t;

/// Discrete timestamp. The unit granularity is application-defined
/// (one second in the paper's datasets); all algorithms only assume a
/// totally ordered integer domain.
using Timestamp = int64_t;

/// Occurrence count / cumulative frequency.
using Count = uint64_t;

/// Exact burstiness values are integer differences of counts; they can
/// be negative (decelerating events).
using Burstiness = int64_t;

/// One element of the event-identifier stream S = {(a_i, t_i)}.
struct EventRecord {
  EventId id;
  Timestamp time;

  friend bool operator==(const EventRecord&, const EventRecord&) = default;
};

}  // namespace bursthist

#endif  // BURSTHIST_STREAM_TYPES_H_
