#include "stream/text_pipeline.h"

#include <algorithm>
#include <cassert>
#include <cctype>

#include "hash/hash.h"

namespace bursthist {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  bool cur_is_tag = false;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back((cur_is_tag ? "#" : "") + ToLowerAscii(cur));
    }
    cur.clear();
    cur_is_tag = false;
  };
  for (char c : text) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '_') {
      cur.push_back(c);
    } else if (c == '#' && cur.empty()) {
      cur_is_tag = true;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::vector<std::string> ExtractHashtags(std::string_view text) {
  std::vector<std::string> tags;
  for (auto& tok : Tokenize(text)) {
    if (tok.size() > 1 && tok[0] == '#') tags.push_back(std::move(tok));
  }
  return tags;
}

EventIdMapper::EventIdMapper(EventId universe_size, uint64_t seed)
    : universe_size_(universe_size), seed_(seed) {
  assert(universe_size_ >= 1);
}

Status EventIdMapper::BindKeyword(std::string_view keyword, EventId id) {
  if (id >= universe_size_) {
    return Status::InvalidArgument("event id exceeds universe size");
  }
  if (keyword.empty()) {
    return Status::InvalidArgument("empty keyword");
  }
  bindings_[ToLowerAscii(keyword)] = id;
  return Status::OK();
}

EventId EventIdMapper::FallbackId(std::string_view token) const {
  return static_cast<EventId>(HashBytes(ToLowerAscii(token), seed_) %
                              universe_size_);
}

std::vector<EventId> EventIdMapper::MapMessage(std::string_view text) const {
  std::vector<EventId> ids;
  std::vector<std::string> unbound_tags;
  bool any_bound = false;
  for (const auto& tok : Tokenize(text)) {
    auto it = bindings_.find(tok);
    if (it != bindings_.end()) {
      ids.push_back(it->second);
      any_bound = true;
    } else if (tok.size() > 1 && tok[0] == '#') {
      unbound_tags.push_back(tok);
    }
  }
  // Curated bindings take precedence; otherwise every hashtag names
  // its own (hashed) event.
  if (!any_bound) {
    for (const auto& tag : unbound_tags) ids.push_back(FallbackId(tag));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

EventStream ProcessMessages(const EventIdMapper& mapper,
                            const std::vector<Message>& messages) {
  EventStream out;
  for (const auto& m : messages) {
    for (EventId e : mapper.MapMessage(m.text)) {
      out.Append(e, m.time);
    }
  }
  return out;
}

}  // namespace bursthist
