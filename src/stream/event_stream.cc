#include "stream/event_stream.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace bursthist {

SingleEventStream::SingleEventStream(std::vector<Timestamp> times)
    : times_(std::move(times)) {
  assert(std::is_sorted(times_.begin(), times_.end()));
}

void SingleEventStream::Append(Timestamp t) {
  assert(times_.empty() || t >= times_.back());
  times_.push_back(t);
}

Count SingleEventStream::CumulativeFrequency(Timestamp t) const {
  return static_cast<Count>(
      std::upper_bound(times_.begin(), times_.end(), t) - times_.begin());
}

Count SingleEventStream::Frequency(Timestamp t1, Timestamp t2) const {
  if (t2 < t1) return 0;
  auto lo = std::lower_bound(times_.begin(), times_.end(), t1);
  auto hi = std::upper_bound(times_.begin(), times_.end(), t2);
  return static_cast<Count>(hi - lo);
}

Count SingleEventStream::BurstFrequency(Timestamp t, Timestamp tau) const {
  // bf(t) = F(t) - F(t - tau): occurrences in (t - tau, t].
  return CumulativeFrequency(t) - CumulativeFrequency(t - tau);
}

Burstiness SingleEventStream::BurstinessAt(Timestamp t, Timestamp tau) const {
  const auto f0 = static_cast<Burstiness>(CumulativeFrequency(t));
  const auto f1 = static_cast<Burstiness>(CumulativeFrequency(t - tau));
  const auto f2 = static_cast<Burstiness>(CumulativeFrequency(t - 2 * tau));
  return f0 - 2 * f1 + f2;
}

EventStream::EventStream(std::vector<EventRecord> records)
    : records_(std::move(records)) {
  assert(std::is_sorted(
      records_.begin(), records_.end(),
      [](const EventRecord& a, const EventRecord& b) { return a.time < b.time; }));
}

void EventStream::Append(EventId id, Timestamp t) {
  assert(records_.empty() || t >= records_.back().time);
  records_.push_back(EventRecord{id, t});
}

EventId EventStream::MaxIdPlusOne() const {
  EventId m = 0;
  for (const auto& r : records_) m = std::max(m, r.id + 1);
  return m;
}

EventStream EventStream::Slice(Timestamp t1, Timestamp t2) const {
  auto lo = std::lower_bound(
      records_.begin(), records_.end(), t1,
      [](const EventRecord& r, Timestamp t) { return r.time < t; });
  auto hi = std::upper_bound(
      records_.begin(), records_.end(), t2,
      [](Timestamp t, const EventRecord& r) { return t < r.time; });
  if (hi < lo) hi = lo;
  return EventStream(std::vector<EventRecord>(lo, hi));
}

SingleEventStream EventStream::Project(EventId e) const {
  std::vector<Timestamp> times;
  for (const auto& r : records_) {
    if (r.id == e) times.push_back(r.time);
  }
  return SingleEventStream(std::move(times));
}

Result<std::vector<SingleEventStream>> EventStream::SplitById(EventId k) const {
  std::vector<std::vector<Timestamp>> buckets(k);
  for (const auto& r : records_) {
    if (r.id >= k) {
      return Status::InvalidArgument("event id out of range in SplitById");
    }
    buckets[r.id].push_back(r.time);
  }
  std::vector<SingleEventStream> out;
  out.reserve(k);
  for (auto& b : buckets) out.emplace_back(std::move(b));
  return out;
}

EventStream MergeStreams(const std::vector<SingleEventStream>& streams) {
  // K-way merge over per-event sorted timestamp lists.
  struct Head {
    Timestamp t;
    EventId id;
    size_t pos;
  };
  auto cmp = [](const Head& a, const Head& b) { return a.t > b.t; };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);

  size_t total = 0;
  for (EventId e = 0; e < streams.size(); ++e) {
    total += streams[e].size();
    if (!streams[e].empty()) {
      heap.push(Head{streams[e].times()[0], e, 0});
    }
  }

  std::vector<EventRecord> records;
  records.reserve(total);
  while (!heap.empty()) {
    Head h = heap.top();
    heap.pop();
    records.push_back(EventRecord{h.id, h.t});
    const auto& times = streams[h.id].times();
    if (h.pos + 1 < times.size()) {
      heap.push(Head{times[h.pos + 1], h.id, h.pos + 1});
    }
  }
  return EventStream(std::move(records));
}

}  // namespace bursthist
