// CSV import/export for event streams.
//
// The interchange format is one "event_id,timestamp" pair per line
// (decimal, timestamps non-decreasing). Blank lines and lines starting
// with '#' are skipped; anything else malformed fails with a
// line-numbered error. This is the format the CLI and examples speak.

#ifndef BURSTHIST_STREAM_CSV_IO_H_
#define BURSTHIST_STREAM_CSV_IO_H_

#include <string>

#include "stream/event_stream.h"
#include "util/status.h"

namespace bursthist {

/// Parses a CSV file into an event stream. Fails on unreadable files,
/// malformed lines, or time regressions (with the offending line
/// number in the message).
Result<EventStream> ReadEventStreamCsv(const std::string& path);

/// Writes the stream as "id,timestamp" lines.
Status WriteEventStreamCsv(const std::string& path,
                           const EventStream& stream);

/// Parses CSV text (same dialect) from memory; used by the file
/// reader and directly testable.
Result<EventStream> ParseEventStreamCsv(const std::string& text);

}  // namespace bursthist

#endif  // BURSTHIST_STREAM_CSV_IO_H_
