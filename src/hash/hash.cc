#include "hash/hash.h"

#include <cstring>

#include "util/random.h"

namespace bursthist {

using hash_internal::kMersenne61;

uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  // 64-bit Murmur3-style: process 8-byte blocks, mix the tail.
  const uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;
  uint64_t h = seed ^ (bytes.size() * m);

  const char* data = bytes.data();
  size_t n = bytes.size();
  while (n >= 8) {
    uint64_t k;
    std::memcpy(&k, data, 8);
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
    data += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  std::memcpy(&tail, data, n);
  h ^= tail;
  h *= m;

  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

PairwiseHash::PairwiseHash(uint64_t seed, uint64_t range) : range_(range) {
  Rng rng(seed);
  a_ = 1 + rng.NextBelow(kMersenne61 - 1);
  b_ = rng.NextBelow(kMersenne61);
}

TabulationHash::TabulationHash(uint64_t seed, uint64_t range)
    : range_(range) {
  Rng rng(seed);
  for (auto& table : table_) {
    for (auto& cell : table) cell = rng.NextU64();
  }
}

uint64_t TabulationHash::operator()(uint64_t x) const {
  uint64_t h = 0;
  for (int i = 0; i < 8; ++i) {
    h ^= table_[i][(x >> (8 * i)) & 0xff];
  }
  return h % range_;
}

HashFamily::HashFamily(size_t depth, uint64_t width, uint64_t seed) {
  fns_.reserve(depth);
  Rng rng(seed);
  for (size_t i = 0; i < depth; ++i) {
    fns_.emplace_back(rng.NextU64(), width);
  }
}

}  // namespace bursthist
