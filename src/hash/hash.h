// Hashing substrate for the sketch structures.
//
// The CM-PBE grid (Section IV of the paper) needs d independent hash
// functions h_i : event id -> [0, w). We provide:
//   * Mix64          — a strong 64-bit finalizer (SplitMix64-style).
//   * HashBytes      — a Murmur3-style hash for string keys, used when
//                      mapping raw message text / hashtags to ids.
//   * PairwiseHash   — a 2-universal (a*x + b mod p) family over the
//                      Mersenne prime 2^61 - 1, matching the standard
//                      Count-Min analysis assumptions.
//   * TabulationHash — 3-independent tabulation hashing, as a stronger
//                      drop-in family for stress tests.
//   * HashFamily     — d seeded PairwiseHash functions with a common
//                      range, the unit the sketches consume.

#ifndef BURSTHIST_HASH_HASH_H_
#define BURSTHIST_HASH_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace bursthist {

/// Strong 64-bit mixing function (bijective).
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace hash_internal {

/// The Mersenne prime p = 2^61 - 1 the pairwise family works over.
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// (x * y) mod (2^61 - 1) via 128-bit intermediate. The conditional
/// subtract compiles to a branchless cmov, keeping batch loops over
/// this kernel vectorizable.
inline uint64_t MulMod61(uint64_t x, uint64_t y) {
  unsigned __int128 z = static_cast<unsigned __int128>(x) * y;
  uint64_t lo = static_cast<uint64_t>(z & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(z >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

inline uint64_t AddMod61(uint64_t x, uint64_t y) {
  uint64_t r = x + y;  // both < 2^61, no overflow
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

}  // namespace hash_internal

/// Murmur3-style 64-bit hash of a byte string with a seed. Used by the
/// message -> event-id black box (Section II-A) in examples/generators.
uint64_t HashBytes(std::string_view bytes, uint64_t seed);

/// 2-universal hash h(x) = ((a*x + b) mod p) mod range over the
/// Mersenne prime p = 2^61 - 1, with a in [1, p), b in [0, p).
class PairwiseHash {
 public:
  /// Draws (a, b) deterministically from the seed.
  PairwiseHash(uint64_t seed, uint64_t range);

  /// Hash of x into [0, range).
  uint64_t operator()(uint64_t x) const {
    // Fold x into the field first; ids in practice are far below p.
    uint64_t xm =
        x >= hash_internal::kMersenne61 ? x - hash_internal::kMersenne61 : x;
    return hash_internal::AddMod61(hash_internal::MulMod61(a_, xm), b_) %
           range_;
  }

  /// Hashes `n` 32-bit ids into out[0..n), value-identical to calling
  /// operator() per id. Defined inline so the loop body — one
  /// 128-bit multiply, two cmov-folded adds, one modulo, per id, with
  /// (a, b, range) hoisted into registers — stays a single tight
  /// dependency-free loop the autovectorizer can unroll. Ids below
  /// 2^32 never need the field fold, so the loop is branch-free.
  void HashIds(const uint32_t* ids, size_t n, uint32_t* out) const {
    const uint64_t a = a_;
    const uint64_t b = b_;
    const uint64_t range = range_;
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint32_t>(
          hash_internal::AddMod61(hash_internal::MulMod61(a, ids[i]), b) %
          range);
    }
  }

  /// 64-bit-key batch variant (CountMin's key type), with the field
  /// fold applied per key. Value-identical to operator().
  void HashKeys(const uint64_t* keys, size_t n, uint32_t* out) const {
    const uint64_t a = a_;
    const uint64_t b = b_;
    const uint64_t range = range_;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t x = keys[i];
      const uint64_t xm =
          x >= hash_internal::kMersenne61 ? x - hash_internal::kMersenne61 : x;
      out[i] = static_cast<uint32_t>(
          hash_internal::AddMod61(hash_internal::MulMod61(a, xm), b) % range);
    }
  }

  uint64_t range() const { return range_; }

 private:
  uint64_t a_;
  uint64_t b_;
  uint64_t range_;
};

/// Simple (3-independent) tabulation hash over 8 byte-indexed tables.
class TabulationHash {
 public:
  TabulationHash(uint64_t seed, uint64_t range);

  uint64_t operator()(uint64_t x) const;

  uint64_t range() const { return range_; }

 private:
  uint64_t table_[8][256];
  uint64_t range_;
};

/// d independent pairwise hashes with a common range: the exact shape
/// the Count-Min rows need.
class HashFamily {
 public:
  /// Builds `depth` functions into [0, width); each is seeded from
  /// `seed` via an independent stream.
  HashFamily(size_t depth, uint64_t width, uint64_t seed);

  /// Hash of key under the row-th function.
  uint64_t Hash(size_t row, uint64_t key) const { return fns_[row](key); }

  /// Batch row hash over 32-bit ids: slots[i] = Hash(row, ids[i]).
  /// See PairwiseHash::HashIds for the vectorization contract.
  void HashRowIds(size_t row, const uint32_t* ids, size_t n,
                  uint32_t* slots) const {
    fns_[row].HashIds(ids, n, slots);
  }

  /// Batch row hash over 64-bit keys: slots[i] = Hash(row, keys[i]).
  void HashRowKeys(size_t row, const uint64_t* keys, size_t n,
                   uint32_t* slots) const {
    fns_[row].HashKeys(keys, n, slots);
  }

  size_t depth() const { return fns_.size(); }
  uint64_t width() const { return fns_.empty() ? 0 : fns_[0].range(); }

 private:
  std::vector<PairwiseHash> fns_;
};

}  // namespace bursthist

#endif  // BURSTHIST_HASH_HASH_H_
