#include "server/ingest_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace bursthist {
namespace server {

namespace {

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

// Sends all n bytes, waiting at most `timeout_ms` for the socket to
// accept EACH chunk (0 = wait forever). A stalled client — zero
// window, dead link — therefore blocks its handler thread for one
// timeout, not indefinitely.
bool SendAll(int fd, const char* data, size_t n, int timeout_ms) {
  size_t sent = 0;
  while (sent < n) {
    pollfd pfd{fd, POLLOUT, 0};
    const int r = ::poll(&pfd, 1, timeout_ms == 0 ? -1 : timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // write timeout: give up on the client
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

TcpLineServer::~TcpLineServer() { Stop(); }

Status TcpLineServer::Start(const TcpServerOptions& options,
                            BatchLineHandler batch_handler,
                            MetricsProvider metrics) {
  batch_handler_ = std::move(batch_handler);
  return Start(options, LineHandler(), std::move(metrics));
}

Status TcpLineServer::Start(const TcpServerOptions& options,
                            LineHandler handler, MetricsProvider metrics) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  options_ = options;
  handler_ = std::move(handler);
  metrics_ = std::move(metrics);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("unparseable IPv4 host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IOError("bind: " + std::string(strerror(errno)));
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st = Status::IOError("listen: " +
                                      std::string(strerror(errno)));
    CloseFd(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st = Status::IOError("getsockname: " +
                                      std::string(strerror(errno)));
    CloseFd(fd);
    return st;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpLineServer::StopAccepting() {
  if (listen_fd_ < 0) return;
  // Shutting the listener down makes accept() fail and new dials get
  // refused; open connections are untouched.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
}

bool TcpLineServer::Drain(int grace_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(grace_ms),
                           [this] { return active_ == 0; });
}

void TcpLineServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Shut the listener down so accept() returns, then kick every open
  // connection so its blocking recv() returns.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return active_ == 0; });
  for (std::thread& t : done_threads_) {
    if (t.joinable()) t.join();
  }
  done_threads_.clear();
}

void TcpLineServer::AcceptLoop() {
  BURSTHIST_COUNTER(m_conns, obs::kServerConnectionsTotal);
  BURSTHIST_GAUGE(m_active, obs::kServerActiveConnections);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or hard error): stop accepting
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire) ||
        active_ >= options_.max_connections) {
      lock.unlock();
      ::close(fd);
      continue;
    }
    ++active_;
    conn_fds_.push_back(fd);
    m_conns.Inc();
    m_active.Set(static_cast<double>(active_));
    // Detached lifecycle, joined lazily: the thread parks itself in
    // done_threads_ when the connection ends; Stop() (and subsequent
    // accepts) reap.
    done_threads_.push_back(std::thread([this, fd] {
      ServeConnection(fd);
      BURSTHIST_GAUGE(m_active2, obs::kServerActiveConnections);
      std::lock_guard<std::mutex> inner(mu_);
      auto it = std::find(conn_fds_.begin(), conn_fds_.end(), fd);
      if (it != conn_fds_.end()) conn_fds_.erase(it);
      ::close(fd);
      --active_;
      m_active2.Set(static_cast<double>(active_));
      idle_cv_.notify_all();
    }));
  }
}

void TcpLineServer::ServeConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  LineBuffer buffer(options_.max_line_bytes);
  bool first_line = true;
  char chunk[8192];
  for (;;) {
    // Idle gate before the blocking read: a client that goes silent
    // past the timeout loses its slot instead of pinning it forever.
    if (options_.idle_timeout_ms > 0) {
      pollfd pfd{fd, POLLIN, 0};
      int r;
      do {
        r = ::poll(&pfd, 1, options_.idle_timeout_ms);
      } while (r < 0 && errno == EINTR);
      if (r <= 0) return;  // idle timeout (or poll failure): close
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // peer closed
    std::vector<std::string> lines;
    const Status st = buffer.Feed(chunk, static_cast<size_t>(n), &lines);
    // Batched handling: every complete line in the chunk is parsed
    // and dispatched before the replies go out in one send. The HTTP
    // switch and empty-line filtering happen here either way, so the
    // batch handler only ever sees real request lines.
    std::string replies;
    bool close = false;
    if (batch_handler_) {
      std::vector<std::string> requests;
      requests.reserve(lines.size());
      for (std::string& line : lines) {
        if (first_line) {
          first_line = false;
          if (line.compare(0, 4, "GET ") == 0) {
            ServeHttp(fd, line);
            return;
          }
        }
        if (!line.empty()) requests.push_back(std::move(line));
      }
      if (!requests.empty()) replies = batch_handler_(requests, &close);
      if (!replies.empty() && replies.back() != '\n') replies += '\n';
    } else {
      for (const std::string& line : lines) {
        if (first_line) {
          first_line = false;
          if (line.compare(0, 4, "GET ") == 0) {
            ServeHttp(fd, line);
            return;
          }
        }
        if (line.empty()) continue;
        replies += handler_(line, &close);
        if (replies.empty() || replies.back() != '\n') replies += '\n';
        if (close) break;
      }
    }
    if (!st.ok()) {
      replies += FormatError(st) + "\n";
      close = true;
    }
    if (!replies.empty() && !SendAll(fd, replies.data(), replies.size(),
                                     options_.write_timeout_ms)) {
      return;
    }
    if (close) return;
  }
}

void TcpLineServer::ServeHttp(int fd, const std::string& first_line) {
  // One-shot HTTP GET: enough for a Prometheus scrape, nothing more.
  // The response always closes the connection.
  const size_t path_start = 4;
  const size_t path_end = first_line.find(' ', path_start);
  const std::string path =
      first_line.substr(path_start, path_end == std::string::npos
                                        ? std::string::npos
                                        : path_end - path_start);
  std::string body;
  std::string status_line;
  if (path == "/metrics" && metrics_) {
    body = metrics_();
    status_line = "HTTP/1.0 200 OK\r\n";
  } else {
    body = "not found\n";
    status_line = "HTTP/1.0 404 Not Found\r\n";
  }
  const std::string response =
      status_line +
      "Content-Type: text/plain; version=0.0.4\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  if (!SendAll(fd, response.data(), response.size(),
               options_.write_timeout_ms)) {
    return;
  }
  // Half-close, then drain whatever headers the client is still
  // sending so it sees a clean FIN instead of a reset.
  ::shutdown(fd, SHUT_WR);
  char sink[1024];
  while (::recv(fd, sink, sizeof sink, 0) > 0) {
  }
}

}  // namespace server
}  // namespace bursthist
