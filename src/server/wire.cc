#include "server/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace bursthist {
namespace server {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

// Strict numeric parsers: the whole token must be consumed.
bool ParseI64(const std::string& tok, int64_t* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseU64(const std::string& tok, uint64_t* out) {
  if (tok.empty() || tok[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseEventId(const std::string& tok, EventId* out) {
  uint64_t v = 0;
  if (!ParseU64(tok, &v) || v > std::numeric_limits<EventId>::max()) {
    return false;
  }
  *out = static_cast<EventId>(v);
  return true;
}

bool ParseF64(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

Status BadRequest(const std::string& what) {
  return Status::InvalidArgument(what);
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  const std::vector<std::string> tok = Tokenize(line);
  if (tok.empty()) return BadRequest("empty request");
  Request req;
  const std::string& verb = tok[0];
  if (verb == "ADD") {
    if (tok.size() < 3 || tok.size() > 4) {
      return BadRequest("usage: ADD <e> <t> [count]");
    }
    req.type = RequestType::kAdd;
    if (!ParseEventId(tok[1], &req.e) || !ParseI64(tok[2], &req.t)) {
      return BadRequest("ADD: malformed id or timestamp");
    }
    if (tok.size() == 4) {
      uint64_t c = 0;
      if (!ParseU64(tok[3], &c) || c == 0) {
        return BadRequest("ADD: count must be a positive integer");
      }
      req.count = c;
    }
    return req;
  }
  if (verb == "POINT") {
    if (tok.size() != 4) return BadRequest("usage: POINT <e> <t> <tau>");
    req.type = RequestType::kPoint;
    if (!ParseEventId(tok[1], &req.e) || !ParseI64(tok[2], &req.t) ||
        !ParseI64(tok[3], &req.tau)) {
      return BadRequest("POINT: malformed argument");
    }
    return req;
  }
  if (verb == "FREQ") {
    if (tok.size() != 4) return BadRequest("usage: FREQ <e> <t1> <t2>");
    req.type = RequestType::kFreq;
    if (!ParseEventId(tok[1], &req.e) || !ParseI64(tok[2], &req.t) ||
        !ParseI64(tok[3], &req.t2)) {
      return BadRequest("FREQ: malformed argument");
    }
    return req;
  }
  if (verb == "BTIME") {
    if (tok.size() != 4) return BadRequest("usage: BTIME <e> <theta> <tau>");
    req.type = RequestType::kBurstyTime;
    if (!ParseEventId(tok[1], &req.e) || !ParseF64(tok[2], &req.theta) ||
        !ParseI64(tok[3], &req.tau)) {
      return BadRequest("BTIME: malformed argument");
    }
    return req;
  }
  if (verb == "BEVENT") {
    if (tok.size() != 4) return BadRequest("usage: BEVENT <t> <theta> <tau>");
    req.type = RequestType::kBurstyEvent;
    if (!ParseI64(tok[1], &req.t) || !ParseF64(tok[2], &req.theta) ||
        !ParseI64(tok[3], &req.tau)) {
      return BadRequest("BEVENT: malformed argument");
    }
    return req;
  }
  if (verb == "TOPK") {
    if (tok.size() != 4) return BadRequest("usage: TOPK <t> <k> <tau>");
    req.type = RequestType::kTopK;
    uint64_t k = 0;
    if (!ParseI64(tok[1], &req.t) || !ParseU64(tok[2], &k) ||
        !ParseI64(tok[3], &req.tau)) {
      return BadRequest("TOPK: malformed argument");
    }
    req.k = static_cast<size_t>(k);
    return req;
  }
  if (verb == "STATS" || verb == "SHARDSTATS" || verb == "METRICS" ||
      verb == "SYNC" || verb == "CHECKPOINT" || verb == "PROMOTE" ||
      verb == "PING" || verb == "QUIT") {
    if (tok.size() != 1) return BadRequest(verb + " takes no arguments");
    if (verb == "STATS") req.type = RequestType::kStats;
    if (verb == "SHARDSTATS") req.type = RequestType::kShardStats;
    if (verb == "METRICS") req.type = RequestType::kMetrics;
    if (verb == "SYNC") req.type = RequestType::kSync;
    if (verb == "CHECKPOINT") req.type = RequestType::kCheckpoint;
    if (verb == "PROMOTE") req.type = RequestType::kPromote;
    if (verb == "PING") req.type = RequestType::kPing;
    if (verb == "QUIT") req.type = RequestType::kQuit;
    return req;
  }
  return BadRequest("unknown verb: " + verb);
}

Status LineBuffer::Feed(const char* data, size_t n,
                        std::vector<std::string>* lines) {
  for (size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
      lines->push_back(std::move(partial_));
      partial_.clear();
      continue;
    }
    if (partial_.size() >= max_line_bytes_) {
      partial_.clear();
      return Status::InvalidArgument("request line exceeds max_line_bytes");
    }
    partial_.push_back(c);
  }
  return Status::OK();
}

std::string FormatError(const Status& status) {
  // StatusCodeName is CamelCase ("InvalidArgument"); the wire speaks
  // SCREAMING_CASE ("INVALID_ARGUMENT").
  const char* name = StatusCodeName(status.code());
  std::string code;
  for (const char* p = name; *p != '\0'; ++p) {
    if (std::isupper(static_cast<unsigned char>(*p)) && !code.empty()) {
      code.push_back('_');
    }
    code.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(*p))));
  }
  std::string msg = status.message();
  // Keep the reply a single line whatever the message held.
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR " + code + " " + msg;
}

std::string FormatDouble(double v) {
  // Shortest decimal that round-trips: deterministic output that a
  // differential harness can compare byte for byte.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string FormatStamp(Timestamp watermark,
                        const EffectiveErrorBound& bound) {
  return "watermark=" + std::to_string(watermark) +
         " bound=" + FormatDouble(bound.point_bound);
}

std::string FormatValue(double v, Timestamp watermark,
                        const EffectiveErrorBound& bound) {
  return "VALUE " + FormatDouble(v) + " " + FormatStamp(watermark, bound);
}

std::string FormatIntervals(const std::vector<TimeInterval>& intervals,
                            Timestamp watermark,
                            const EffectiveErrorBound& bound) {
  std::string out = "INTERVALS ";
  out += std::to_string(intervals.size());
  for (const TimeInterval& iv : intervals) {
    out += ' ';
    out += std::to_string(iv.begin);
    out += ' ';
    out += std::to_string(iv.end);
  }
  out += ' ';
  out += FormatStamp(watermark, bound);
  return out;
}

std::string FormatEvents(const std::vector<EventId>& events,
                         Timestamp watermark,
                         const EffectiveErrorBound& bound) {
  std::string out = "EVENTS ";
  out += std::to_string(events.size());
  for (EventId e : events) {
    out += ' ';
    out += std::to_string(e);
  }
  out += ' ';
  out += FormatStamp(watermark, bound);
  return out;
}

std::string FormatTopK(const std::vector<std::pair<EventId, double>>& ranked,
                       Timestamp watermark, const EffectiveErrorBound& bound) {
  std::string out = "TOPK ";
  out += std::to_string(ranked.size());
  for (const auto& [e, v] : ranked) {
    out += ' ';
    out += std::to_string(e);
    out += ':';
    out += FormatDouble(v);
  }
  out += ' ';
  out += FormatStamp(watermark, bound);
  return out;
}

LineClient::~LineClient() { Close(); }

Status LineClient::Connect(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable IPv4 host: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const Status st = Status::IOError("connect: " +
                                      std::string(strerror(errno)));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  buffered_.clear();
  return Status::OK();
}

Status LineClient::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    const size_t nl = buffered_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffered_.substr(0, nl);
      buffered_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv: " + std::string(strerror(errno)));
    }
    if (n == 0) return Status::Unavailable("connection closed by server");
    buffered_.append(chunk, static_cast<size_t>(n));
  }
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffered_.clear();
}

}  // namespace server
}  // namespace bursthist
