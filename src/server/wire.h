// Wire protocol for the bursthist serving front-end.
//
// A deliberately minimal, debuggable line protocol (telnet-friendly,
// in the redis/memcached text tradition): one request per line, one
// reply per line (METRICS excepted), all tokens space-separated.
//
//   request                          reply
//   ------------------------------   --------------------------------
//   ADD <e> <t> [count]              OK
//   POINT <e> <t> <tau>              VALUE <v> watermark=<w> bound=<b>
//   FREQ <e> <t1> <t2>               VALUE <v> watermark=<w> bound=<b>
//   BTIME <e> <theta> <tau>          INTERVALS <n> <s1> <e1> ... wm/bound
//   BEVENT <t> <theta> <tau>         EVENTS <n> <id1> ... wm/bound
//   TOPK <t> <k> <tau>               TOPK <n> <id1>:<v1> ... wm/bound
//   STATS                            STATS total=... buffered=... ...
//   SHARDSTATS                       SHARDSTATS shards=<n> | shard=0 ...
//   METRICS                          Prometheus text, then "END"
//   SYNC                             OK
//   CHECKPOINT                       OK
//   PROMOTE                          OK (follower becomes leader)
//   PING                             PONG
//   QUIT                             BYE (connection closes)
//
// Any failure answers "ERR <CODE> <message>" where CODE is the
// StatusCodeName (INVALID_ARGUMENT, RESOURCE_EXHAUSTED, ...) in
// SCREAMING_CASE. Query replies carry the snapshot watermark and the
// effective POINT error bound in force, so a client always knows how
// fresh and how accurate an answer is.
//
// Replica servers add two twists: ADD on a follower answers
// "ERR UNAVAILABLE ..." (PROMOTE first), and every query reply gains a
// trailing " lag=<n>" token carrying the replication lag in stream
// time. PROMOTE on a plain (non-replica) server is FAILED_PRECONDITION.
//
// This header is engine-agnostic: parsing and formatting only. The
// dispatch lives in server/ingest_server.h.

#ifndef BURSTHIST_SERVER_WIRE_H_
#define BURSTHIST_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/burst_engine.h"
#include "core/burst_queries.h"
#include "stream/types.h"
#include "util/status.h"

namespace bursthist {
namespace server {

/// One parsed protocol request.
enum class RequestType : uint8_t {
  kAdd,
  kPoint,
  kFreq,
  kBurstyTime,
  kBurstyEvent,
  kTopK,
  kStats,
  kShardStats,
  kMetrics,
  kSync,
  kCheckpoint,
  kPromote,
  kPing,
  kQuit,
};

struct Request {
  RequestType type = RequestType::kPing;
  EventId e = 0;
  Timestamp t = 0;    ///< ADD/POINT time, FREQ t1, BEVENT/TOPK t.
  Timestamp t2 = 0;   ///< FREQ t2.
  Timestamp tau = 0;  ///< Burstiness window.
  double theta = 0.0;
  Count count = 1;
  size_t k = 0;
};

/// Parses one request line (no trailing newline). Unknown verbs,
/// wrong arity, and malformed numbers return InvalidArgument; numeric
/// range checks beyond syntax (id vs universe, theta > 0) are the
/// dispatcher's job.
Result<Request> ParseRequest(const std::string& line);

/// Splits a byte stream into protocol lines: feeds arbitrary chunks
/// in, emits every complete "\n"-terminated line (a trailing "\r" is
/// stripped, so both raw sockets and telnet work). A line longer than
/// max_line_bytes fails the whole connection — the one defense a
/// line protocol needs against an unframed flood.
class LineBuffer {
 public:
  explicit LineBuffer(size_t max_line_bytes = 1 << 16)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends a chunk; pushes each completed line onto *lines.
  Status Feed(const char* data, size_t n, std::vector<std::string>* lines);

  /// Bytes of the current incomplete line.
  size_t pending() const { return partial_.size(); }

 private:
  std::string partial_;
  size_t max_line_bytes_;
};

/// "ERR <CODE> <message>" with StatusCodeName in SCREAMING_CASE.
std::string FormatError(const Status& status);

/// Answer provenance appended to every query reply.
std::string FormatStamp(Timestamp watermark, const EffectiveErrorBound& bound);

/// "VALUE <v> watermark=<w> bound=<b>".
std::string FormatValue(double v, Timestamp watermark,
                        const EffectiveErrorBound& bound);

/// "INTERVALS <n> <s1> <e1> ... watermark=<w> bound=<b>".
std::string FormatIntervals(const std::vector<TimeInterval>& intervals,
                            Timestamp watermark,
                            const EffectiveErrorBound& bound);

/// "EVENTS <n> <id1> ... watermark=<w> bound=<b>".
std::string FormatEvents(const std::vector<EventId>& events,
                         Timestamp watermark,
                         const EffectiveErrorBound& bound);

/// "TOPK <n> <id1>:<v1> ... watermark=<w> bound=<b>".
std::string FormatTopK(const std::vector<std::pair<EventId, double>>& ranked,
                       Timestamp watermark, const EffectiveErrorBound& bound);

/// Shortest round-trippable decimal for a double ("%.17g trimmed"):
/// deterministic, so differential checks can compare replies byte for
/// byte.
std::string FormatDouble(double v);

/// Minimal blocking TCP client for tests and tooling: connects,
/// sends lines, reads "\n"-terminated replies. Not thread-safe.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept
      : fd_(other.fd_), buffered_(std::move(other.buffered_)) {
    other.fd_ = -1;
  }
  LineClient& operator=(LineClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffered_ = std::move(other.buffered_);
      other.fd_ = -1;
    }
    return *this;
  }

  Status Connect(const std::string& host, uint16_t port);
  Status SendLine(const std::string& line);  ///< "\n" appended.
  /// Blocks until one full line arrives (stripped of "\r\n").
  Result<std::string> ReadLine();
  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffered_;
};

}  // namespace server
}  // namespace bursthist

#endif  // BURSTHIST_SERVER_WIRE_H_
