// The serving front-end: a TCP line-protocol server over a durable
// engine — single-shard (DurableBurstEngine) or sharded
// (shard::ClusterEngine / shard::ClusterReplica).
//
// Layering (one writer, many readers):
//
//   connections ──> TcpLineServer ──> BurstService<EngineT> ──┬─ writes:
//     (threads)       (sockets)         (dispatch)            │  write_mu_ →
//                                                             │  governor →
//                                                             │  EngineT
//                                                             └─ reads:
//                                                                SnapshotSlot →
//                                                                EngineT::Snapshot
//
// EngineT is a duck type, not an interface: anything exposing
// Append/AppendBatch/Sync/Checkpoint/generation/AcquireSnapshot/
// PublishMetrics/universe_size/TotalCount/BufferedCount/Watermark and
// a nested `Snapshot` view type serves unchanged. Sharded engines
// additionally expose shard_count()/ShardStats(), which light up the
// SHARDSTATS verb and the `shards=` STATS field via `if constexpr` —
// a plain engine answers SHARDSTATS with FAILED_PRECONDITION.
//
//  * Ingest (ADD) and the other mutating verbs (SYNC, CHECKPOINT)
//    serialize on one mutex — the engine stays single-writer no matter
//    how many connections are open. Admission control runs first: the
//    governor audits every `audit_every` accepted records and Admit()
//    gates each ADD, answering ERR RESOURCE_EXHAUSTED under overload
//    (degradation before refusal — the ladder sheds accuracy first).
//  * Queries never touch the live engine: they run against the
//    snapshot in the SnapshotSlot, refreshed (under the same mutex)
//    only when stale — i.e. when records were accepted after its
//    capture. Readers therefore never observe a partial cell update,
//    and every reply carries the snapshot's watermark and effective
//    error bound.
//  * METRICS (and HTTP "GET /metrics") reuses the Prometheus
//    exposition from the observability layer.
//
// The TCP layer is plain POSIX (one thread per connection, ephemeral
// port support for tests); it knows nothing about burstiness and
// forwards each line to a handler.

#ifndef BURSTHIST_SERVER_INGEST_SERVER_H_
#define BURSTHIST_SERVER_INGEST_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/read_snapshot.h"
#include "governor/resource_governor.h"
#include "obs/metrics.h"
#include "recovery/durable_engine.h"
#include "server/wire.h"
#include "util/mpsc_ring.h"
#include "util/status.h"

namespace bursthist {
namespace server {

/// TCP listener configuration.
struct TcpServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port back.
  size_t max_connections = 64;
  size_t max_line_bytes = 1 << 16;
  /// Close a connection that sends nothing for this long (0 = never).
  /// Without it a dead client pins one of max_connections slots
  /// forever — slot exhaustion as a trivial denial of service.
  int idle_timeout_ms = 300000;
  /// Give up on a send that cannot make progress for this long
  /// (0 = wait forever). Bounds how long a stalled client can hold
  /// its handler thread inside ::send.
  int write_timeout_ms = 30000;
};

/// Protocol-agnostic line server: accepts connections, splits the
/// byte stream into lines, and answers each with handler(line). A
/// first line starting with "GET " switches the connection to a
/// one-shot HTTP response ("/metrics" → 200 with metrics_text(),
/// anything else → 404), so the same port serves scrapes.
class TcpLineServer {
 public:
  /// Returns the full reply (newline appended if missing; may be
  /// multi-line). Set *close to end the connection after replying.
  using LineHandler =
      std::function<std::string(const std::string& line, bool* close)>;
  /// Batch form: every complete line of one recv chunk at once, in
  /// order. Returns the concatenated replies (one line per request,
  /// each newline-terminated). Set *close to end the connection after
  /// sending them; lines after the close-triggering request are
  /// dropped, exactly like the per-line loop. When installed it
  /// replaces the per-line handler on the socket path, letting the
  /// service batch consecutive ADDs from a pipelining client.
  using BatchLineHandler = std::function<std::string(
      const std::vector<std::string>& lines, bool* close)>;
  using MetricsProvider = std::function<std::string()>;

  TcpLineServer() = default;
  ~TcpLineServer();
  TcpLineServer(const TcpLineServer&) = delete;
  TcpLineServer& operator=(const TcpLineServer&) = delete;

  /// Binds, listens, and starts the accept thread. Non-blocking.
  Status Start(const TcpServerOptions& options, LineHandler handler,
               MetricsProvider metrics);

  /// As above, but lines are delivered through `batch_handler`, one
  /// call per recv chunk. `handler` may be empty.
  Status Start(const TcpServerOptions& options, BatchLineHandler batch_handler,
               MetricsProvider metrics);

  /// Stops accepting, shuts every open connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// Graceful-shutdown phase 1: close the listener (new connections
  /// are refused) while existing connections keep being served.
  /// Idempotent; Stop() still completes the teardown.
  void StopAccepting();

  /// Graceful-shutdown phase 2: wait up to `grace_ms` for every open
  /// connection to finish. Returns true once idle, false if the
  /// grace period expired with connections still active (callers
  /// typically proceed to Stop() either way).
  bool Drain(int grace_ms);

  /// The bound port (resolves ephemeral port 0).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  void ServeHttp(int fd, const std::string& first_line);

  TcpServerOptions options_;
  LineHandler handler_;
  BatchLineHandler batch_handler_;
  MetricsProvider metrics_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<int> conn_fds_;  // open connections, for Stop()
  size_t active_ = 0;
  std::vector<std::thread> done_threads_;  // finished, joinable
};

/// Wiring for serving a replication follower (all hooks are supplied
/// by the replica layer; the service stays template-decoupled from
/// it). When enabled:
///  * ADD is refused with kUnavailable while is_follower() — a stale
///    or demoted follower must never fork history;
///  * PROMOTE invokes promote() (failover to a writable leader);
///  * every query reply is stamped with " lag=<n>" so a client always
///    knows how far behind the leader its answer may be;
///  * the service shares write_mu with the apply thread, and counts
///    applied() records into its snapshot-staleness token so applies
///    refresh the serving snapshot exactly like local ADDs do.
struct ReplicaHooks {
  bool enabled = false;
  std::mutex* write_mu = nullptr;
  std::function<bool()> is_follower;
  std::function<Timestamp()> lag;
  std::function<uint64_t()> applied;
  std::function<Status()> promote;
};

/// Service tuning knobs.
struct BurstServiceOptions {
  /// Refresh the serving snapshot once this many records were accepted
  /// after its capture (1 = every query sees every accepted record;
  /// larger trades freshness for fewer snapshot clones).
  uint64_t snapshot_staleness_appends = 1;
  /// Run a governor audit (Enforce) every this many accepted records.
  uint64_t audit_every = 128;
  /// Optional admission control; may be nullptr. Must already have
  /// its components registered and outlive the service.
  ResourceGovernor* governor = nullptr;
  /// Capacity (jobs, rounded up to a power of two) of the lock-free
  /// MPSC ring between connection threads and the single engine
  /// thread. One job carries one batch of consecutive ADDs, so the
  /// ring bounds in-flight batches, not records. A full ring applies
  /// backpressure: the producer retries (counted) until a slot frees.
  size_t ingest_ring_capacity = 1024;
  /// Follower-serving wiring; disabled (leader mode) by default.
  ReplicaHooks replica;
};

/// Dispatches parsed wire requests against one durable engine (see
/// the EngineT duck type in the header comment). Thread-safe: any
/// number of connection threads may call Handle().
template <typename EngineT>
class BurstService {
 public:
  /// The immutable view queries run against.
  using Snapshot = typename EngineT::Snapshot;

  BurstService(EngineT* durable, const BurstServiceOptions& options)
      : durable_(durable),
        options_(options),
        write_mu_(options.replica.write_mu != nullptr
                      ? options.replica.write_mu
                      : &own_mu_),
        ring_(options.ingest_ring_capacity) {}

  ~BurstService() { StopIngestThread(); }
  BurstService(const BurstService&) = delete;
  BurstService& operator=(const BurstService&) = delete;

  /// Starts the single engine thread that drains the ingest ring.
  /// Until it runs, HandleLines() applies ADD batches inline under
  /// write_mu_ (same results, no hand-off). Idempotent.
  void StartIngestThread() {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (consumer_.joinable()) return;
    ring_shutdown_ = false;
    ring_running_.store(true, std::memory_order_release);
    consumer_ = std::thread([this] { IngestLoop(); });
  }

  /// Drains outstanding jobs and joins the engine thread. Callers
  /// must first guarantee no producer will push again (e.g. the TCP
  /// layer is stopped and every connection thread joined). Idempotent.
  void StopIngestThread() {
    {
      std::lock_guard<std::mutex> lock(ring_mu_);
      if (!consumer_.joinable()) return;
      // New producers fall back to the inline path from here on;
      // producers already past the check still get their jobs drained
      // and completed before the loop exits.
      ring_running_.store(false, std::memory_order_release);
      ring_shutdown_ = true;
    }
    ring_cv_.notify_all();
    consumer_.join();
  }

  /// Handles one request line; returns the reply. Sets *close on QUIT.
  std::string Handle(const std::string& line, bool* close) {
    BURSTHIST_COUNTER(m_requests, obs::kServerRequestsTotal);
    BURSTHIST_COUNTER(m_errors, obs::kServerRequestErrorsTotal);
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kServerRequestLatencySeconds);
    obs::TraceSpan span(m_lat, "server_request");
    m_requests.Inc();
    auto parsed = ParseRequest(line);
    if (!parsed.ok()) {
      m_errors.Inc();
      return FormatError(parsed.status());
    }
    const Request& req = parsed.value();
    std::string reply = Dispatch(req, close);
    if (reply.compare(0, 4, "ERR ") == 0) m_errors.Inc();
    return reply;
  }

  /// Handles every request line of one recv chunk, in order, and
  /// returns the concatenated newline-terminated replies. Runs of
  /// consecutive ADDs become ONE batch: a single ring hand-off to the
  /// engine thread (or one inline critical section before the thread
  /// runs), one governor audit/admission, one WAL write. Any other
  /// verb flushes the pending batch first, so replies come back in
  /// request order and a QUIT still drops the lines after it.
  std::string HandleLines(const std::vector<std::string>& lines, bool* close) {
    BURSTHIST_COUNTER(m_requests, obs::kServerRequestsTotal);
    BURSTHIST_COUNTER(m_errors, obs::kServerRequestErrorsTotal);
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kServerRequestLatencySeconds);
    obs::TraceSpan span(m_lat, "server_request_batch");
    std::string replies;
    std::vector<WeightedRecord> adds;
    size_t handled = 0;
    auto flush = [&] {
      if (!adds.empty()) FlushAddBatch(adds, &replies);
      adds.clear();
    };
    for (const std::string& line : lines) {
      ++handled;
      auto parsed = ParseRequest(line);
      if (!parsed.ok()) {
        flush();
        m_errors.Inc();
        replies += FormatError(parsed.status()) + "\n";
        continue;
      }
      const Request& req = parsed.value();
      if (req.type == RequestType::kAdd) {
        adds.push_back(WeightedRecord{req.e, req.t, req.count});
        continue;
      }
      flush();
      std::string reply = Dispatch(req, close);
      if (reply.compare(0, 4, "ERR ") == 0) m_errors.Inc();
      replies += reply;
      if (replies.empty() || replies.back() != '\n') replies += '\n';
      if (*close) break;
    }
    flush();
    m_requests.Inc(handled);
    return replies;
  }

  /// Prometheus exposition of the process registry, with the served
  /// engine's instantaneous gauges refreshed first.
  std::string MetricsText() {
    {
      // PublishMetrics walks the live index — writer-side state.
      std::lock_guard<std::mutex> lock(*write_mu_);
      durable_->PublishMetrics();
    }
    std::string out;
    obs::MetricsRegistry::Global().WritePrometheus(&out);
    return out;
  }

  /// Records accepted over the wire so far (the snapshot staleness
  /// token).
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_acquire);
  }

 private:
  std::string Dispatch(const Request& req, bool* close) {
    switch (req.type) {
      case RequestType::kPing:
        return "PONG";
      case RequestType::kQuit:
        *close = true;
        return "BYE";
      case RequestType::kAdd:
        return HandleAdd(req);
      case RequestType::kSync: {
        std::lock_guard<std::mutex> lock(*write_mu_);
        const Status st = durable_->Sync();
        return st.ok() ? "OK" : FormatError(st);
      }
      case RequestType::kCheckpoint: {
        std::lock_guard<std::mutex> lock(*write_mu_);
        const Status st = durable_->Checkpoint();
        return st.ok() ? "OK" : FormatError(st);
      }
      case RequestType::kPromote: {
        if (!options_.replica.enabled || !options_.replica.promote) {
          return FormatError(Status::FailedPrecondition(
              "not a replica; PROMOTE only applies to followers"));
        }
        const Status st = options_.replica.promote();
        return st.ok() ? "OK" : FormatError(st);
      }
      case RequestType::kStats:
        return HandleStats();
      case RequestType::kShardStats:
        return HandleShardStats();
      case RequestType::kMetrics:
        return MetricsText() + "END";
      case RequestType::kPoint:
      case RequestType::kFreq:
      case RequestType::kBurstyTime:
      case RequestType::kBurstyEvent:
      case RequestType::kTopK:
        return HandleQuery(req);
    }
    return FormatError(Status::Internal("unhandled request type"));
  }

  std::string HandleAdd(const Request& req) {
    BURSTHIST_COUNTER(m_ingested, obs::kServerIngestRecordsTotal);
    if (options_.replica.enabled && options_.replica.is_follower &&
        options_.replica.is_follower()) {
      return FormatError(Status::Unavailable(
          "follower is read-only; PROMOTE to accept writes"));
    }
    std::lock_guard<std::mutex> lock(*write_mu_);
    if (options_.governor != nullptr) {
      if (appends_since_audit_ >= options_.audit_every) {
        options_.governor->Enforce();
        appends_since_audit_ = 0;
      }
      Status admit = options_.governor->Admit();
      if (!admit.ok()) {
        // One shot at recovery before refusing: a full audit sheds
        // accuracy for space (degradation precedes refusal).
        options_.governor->Enforce();
        appends_since_audit_ = 0;
        admit = options_.governor->Admit();
        if (!admit.ok()) return FormatError(admit);
      }
    }
    const Status st = durable_->Append(req.e, req.t, req.count);
    if (!st.ok()) return FormatError(st);
    ++appends_since_audit_;
    accepted_.fetch_add(1, std::memory_order_release);
    m_ingested.Inc();
    return "OK";
  }

  // One ring hand-off: a batch of consecutive ADDs from one
  // connection. Lives on the producer's stack — the producer blocks on
  // `cv` until the engine thread marks it done, so the pointer in the
  // ring never outlives the job.
  struct IngestJob {
    std::span<const WeightedRecord> records;
    /// Whole-batch refusal (admission control); record_errors empty.
    Status admit_status;
    /// Sparse per-record failures as (index, status), ascending;
    /// every index not listed was applied.
    std::vector<std::pair<size_t, Status>> record_errors;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;  // guarded by mu
  };

  // Runs one ADD batch to completion (ring hand-off to the engine
  // thread when it is up, inline otherwise) and appends one reply
  // line per record.
  void FlushAddBatch(const std::vector<WeightedRecord>& adds,
                     std::string* replies) {
    BURSTHIST_COUNTER(m_errors, obs::kServerRequestErrorsTotal);
    if (options_.replica.enabled && options_.replica.is_follower &&
        options_.replica.is_follower()) {
      const std::string err =
          FormatError(Status::Unavailable(
              "follower is read-only; PROMOTE to accept writes")) +
          "\n";
      for (size_t i = 0; i < adds.size(); ++i) *replies += err;
      m_errors.Inc(adds.size());
      return;
    }
    IngestJob job;
    job.records = std::span<const WeightedRecord>(adds);
    if (ring_running_.load(std::memory_order_acquire)) {
      BURSTHIST_COUNTER(m_full, obs::kServerRingFullRetriesTotal);
      IngestJob* ptr = &job;
      // Backpressure: a full ring means batches are arriving faster
      // than the engine drains them; yield and retry until a slot
      // frees (the consumer is always making progress).
      while (!ring_.TryPush(ptr)) {
        m_full.Inc();
        std::this_thread::yield();
      }
      {
        // Empty critical section pairs with the consumer's predicate
        // wait: the push above cannot slip between its predicate check
        // and its sleep.
        std::lock_guard<std::mutex> lock(ring_mu_);
      }
      ring_cv_.notify_one();
      std::unique_lock<std::mutex> lock(job.mu);
      job.cv.wait(lock, [&job] { return job.done; });
    } else {
      ProcessAddBatch(&job);
    }
    if (!job.admit_status.ok()) {
      const std::string err = FormatError(job.admit_status) + "\n";
      for (size_t i = 0; i < adds.size(); ++i) *replies += err;
      m_errors.Inc(adds.size());
      return;
    }
    size_t next_err = 0;
    for (size_t i = 0; i < adds.size(); ++i) {
      if (next_err < job.record_errors.size() &&
          job.record_errors[next_err].first == i) {
        *replies += FormatError(job.record_errors[next_err].second) + "\n";
        ++next_err;
        m_errors.Inc();
      } else {
        *replies += "OK\n";
      }
    }
  }

  // The write side of one batch, under write_mu_: one governor audit
  // + admission decision for the whole batch (batch-granular — an
  // overloaded server refuses the batch, not a random suffix of it),
  // then AppendBatch over the remaining span after each per-record
  // failure, so the applied records and per-record errors come out
  // exactly as if each ADD had been appended serially.
  void ProcessAddBatch(IngestJob* job) {
    BURSTHIST_COUNTER(m_ingested, obs::kServerIngestRecordsTotal);
    std::lock_guard<std::mutex> lock(*write_mu_);
    if (options_.governor != nullptr) {
      if (appends_since_audit_ >= options_.audit_every) {
        options_.governor->Enforce();
        appends_since_audit_ = 0;
      }
      Status admit = options_.governor->Admit();
      if (!admit.ok()) {
        // One shot at recovery before refusing: a full audit sheds
        // accuracy for space (degradation precedes refusal).
        options_.governor->Enforce();
        appends_since_audit_ = 0;
        admit = options_.governor->Admit();
        if (!admit.ok()) {
          job->admit_status = admit;
          return;
        }
      }
    }
    const std::span<const WeightedRecord> records = job->records;
    size_t begin = 0;
    size_t applied_total = 0;
    while (begin < records.size()) {
      size_t applied = 0;
      const Status st = durable_->AppendBatch(records.subspan(begin), &applied);
      begin += applied;
      applied_total += applied;
      if (st.ok()) break;
      job->record_errors.emplace_back(begin, st);
      ++begin;
    }
    appends_since_audit_ += applied_total;
    accepted_.fetch_add(applied_total, std::memory_order_release);
    m_ingested.Inc(applied_total);
  }

  // The single engine thread: drains jobs off the ring, runs each
  // batch, and wakes its producer. Exits only when shutdown was
  // requested AND the ring is empty, so every pushed job is always
  // completed (producers block on their job until then).
  void IngestLoop() {
    BURSTHIST_COUNTER(m_jobs, obs::kServerRingJobsTotal);
    BURSTHIST_GAUGE(m_depth, obs::kServerRingDepth);
    BURSTHIST_SIZE_HISTOGRAM(m_batch, obs::kServerRingBatchSizeRecords);
    for (;;) {
      IngestJob* job = nullptr;
      if (!ring_.Pop(&job)) {
        std::unique_lock<std::mutex> lock(ring_mu_);
        ring_cv_.wait(lock, [this] {
          return ring_shutdown_ || ring_.ApproxSize() > 0;
        });
        if (ring_shutdown_ && ring_.ApproxSize() == 0) {
          m_depth.Set(0.0);
          return;
        }
        continue;
      }
      m_jobs.Inc();
      m_depth.Set(static_cast<double>(ring_.ApproxSize()));
      m_batch.Observe(static_cast<double>(job->records.size()));
      ProcessAddBatch(job);
      {
        // Notify while holding `mu`: the job lives on the producer's
        // stack and is destroyed as soon as its wait returns, so the
        // notify must complete before the waiter can re-acquire the
        // mutex and tear the condition variable down under us.
        std::lock_guard<std::mutex> lock(job->mu);
        job->done = true;
        job->cv.notify_one();
      }
    }
  }

  std::string HandleStats() {
    // Reads of live-engine counters are writer-side state too.
    std::lock_guard<std::mutex> lock(*write_mu_);
    std::string out = "STATS total=" + std::to_string(durable_->TotalCount()) +
                      " buffered=" + std::to_string(durable_->BufferedCount()) +
                      " watermark=" + std::to_string(durable_->Watermark()) +
                      " accepted=" + std::to_string(accepted()) +
                      " generation=" + std::to_string(durable_->generation());
    if constexpr (requires { durable_->shard_count(); }) {
      out += " shards=" + std::to_string(durable_->shard_count());
    }
    if (options_.governor != nullptr) {
      out += std::string(" level=") +
             DegradationLevelName(options_.governor->level());
    }
    if (options_.replica.enabled) {
      const bool follower =
          options_.replica.is_follower && options_.replica.is_follower();
      out += std::string(" role=") + (follower ? "follower" : "leader");
      if (options_.replica.applied) {
        out += " applied=" + std::to_string(options_.replica.applied());
      }
      if (options_.replica.lag) {
        out += " lag=" + std::to_string(options_.replica.lag());
      }
    }
    return out;
  }

  /// One line of per-shard numbers the label-less metrics registry
  /// cannot carry: "SHARDSTATS shards=<n> | shard=<i> total=...
  /// buffered=... watermark=... generation=... wal=<seq>/<off>
  /// [lag=... applied=...] | ...". On a replica each row adds its
  /// shard's own replication lag — THE signal for spotting one
  /// stalled partition behind a healthy-looking aggregate. Compiled
  /// only for sharded engine types; a plain engine answers
  /// FAILED_PRECONDITION.
  std::string HandleShardStats() {
    if constexpr (requires { durable_->ShardStats(); }) {
      std::lock_guard<std::mutex> lock(*write_mu_);
      auto stats = durable_->ShardStats();
      std::string out = "SHARDSTATS shards=" + std::to_string(stats.size());
      for (const auto& s : stats) {
        out += " | shard=" + std::to_string(s.shard) +
               " total=" + std::to_string(s.total) +
               " buffered=" + std::to_string(s.buffered) +
               " watermark=" + std::to_string(s.watermark) +
               " generation=" + std::to_string(s.generation) +
               " wal=" + std::to_string(s.wal_seq) + "/" +
               std::to_string(s.wal_offset);
        if (s.has_lag) {
          out += " lag=" + std::to_string(s.lag) +
                 " applied=" + std::to_string(s.applied);
        }
      }
      return out;
    } else {
      return FormatError(Status::FailedPrecondition(
          "not a sharded engine; SHARDSTATS needs serve --shards"));
    }
  }

  std::string HandleQuery(const Request& req) {
    if (req.e >= durable_->universe_size() &&
        (req.type == RequestType::kPoint || req.type == RequestType::kFreq ||
         req.type == RequestType::kBurstyTime)) {
      return FormatError(
          Status::InvalidArgument("event id exceeds universe size"));
    }
    if ((req.type == RequestType::kBurstyTime ||
         req.type == RequestType::kBurstyEvent) &&
        req.theta <= 0.0) {
      return FormatError(Status::InvalidArgument("theta must be positive"));
    }
    if (req.tau < 0) {
      return FormatError(Status::InvalidArgument("tau must be >= 0"));
    }
    std::shared_ptr<const Snapshot> snap = Serving();
    switch (req.type) {
      case RequestType::kPoint: {
        auto ans = snap->Point(req.e, req.t, req.tau);
        return Stamp(FormatValue(ans.value, ans.watermark, ans.bound));
      }
      case RequestType::kFreq: {
        auto ans = snap->Frequency(req.e, req.t, req.t2);
        return Stamp(FormatValue(ans.value, ans.watermark, ans.bound));
      }
      case RequestType::kBurstyTime: {
        auto ans = snap->BurstyTime(req.e, req.theta, req.tau);
        return Stamp(FormatIntervals(ans.value, ans.watermark, ans.bound));
      }
      case RequestType::kBurstyEvent: {
        auto ans = snap->BurstyEvent(req.t, req.theta, req.tau);
        return Stamp(FormatEvents(ans.value, ans.watermark, ans.bound));
      }
      case RequestType::kTopK: {
        auto ans = snap->TopK(req.t, req.k, req.tau);
        return Stamp(FormatTopK(ans.value, ans.watermark, ans.bound));
      }
      default:
        return FormatError(Status::Internal("non-query in HandleQuery"));
    }
  }

  /// Replica-mode answers additionally carry their replication lag:
  /// a follower's snapshot can only be as fresh as what the leader
  /// has shipped, and the client deserves to see that gap.
  std::string Stamp(std::string reply) {
    if (options_.replica.enabled && options_.replica.lag) {
      reply += " lag=" + std::to_string(options_.replica.lag());
    }
    return reply;
  }

  /// Snapshot-staleness token: local accepted records plus records
  /// applied by replication (on a follower the latter is the only
  /// part that ever grows).
  uint64_t Token() const {
    uint64_t token = accepted();
    if (options_.replica.enabled && options_.replica.applied) {
      token += options_.replica.applied();
    }
    return token;
  }

  /// The snapshot queries run against, refreshed when stale. The slot
  /// itself is the only reader/writer shared state; once a reader
  /// holds the shared_ptr the view is immutable.
  std::shared_ptr<const Snapshot> Serving() {
    BURSTHIST_GAUGE(m_staleness, obs::kServerSnapshotStalenessAppends);
    auto current = slot_.Current();
    uint64_t now = Token();
    if (current != nullptr &&
        now - current->sequence() < options_.snapshot_staleness_appends) {
      m_staleness.Set(static_cast<double>(now - current->sequence()));
      return current;
    }
    std::lock_guard<std::mutex> lock(*write_mu_);
    // Re-check under the lock: another connection may have refreshed
    // while we waited.
    current = slot_.Current();
    now = Token();
    if (current == nullptr ||
        now - current->sequence() >= options_.snapshot_staleness_appends) {
      current = durable_->AcquireSnapshot(now);
      slot_.Publish(current);
    }
    m_staleness.Set(static_cast<double>(now - current->sequence()));
    return current;
  }

  EngineT* durable_;
  BurstServiceOptions options_;
  std::mutex own_mu_;
  /// Serializes every live-engine touch. Points at own_mu_ in leader
  /// mode, at the replica's mutex when serving a follower (the apply
  /// thread holds the same lock around every apply).
  std::mutex* write_mu_;
  /// Connection threads → engine thread, one job per ADD batch. The
  /// ring replaces write_mu_ contention on the hot path: producers
  /// never take the write mutex for ADDs, only the consumer does
  /// (replication apply and the mutating verbs keep the mutex path).
  MpscRing<IngestJob*> ring_;
  std::thread consumer_;
  std::mutex ring_mu_;
  std::condition_variable ring_cv_;
  bool ring_shutdown_ = false;  // guarded by ring_mu_
  std::atomic<bool> ring_running_{false};
  SnapshotSlot<Snapshot> slot_;
  std::atomic<uint64_t> accepted_{0};
  uint64_t appends_since_audit_ = 0;  // guarded by write_mu_
};

/// Convenience bundle: one service wired to one TCP listener.
template <typename EngineT>
class IngestServer {
 public:
  IngestServer(EngineT* durable, const BurstServiceOptions& service_options)
      : service_(durable, service_options) {}

  Status Start(const TcpServerOptions& options) {
    service_.StartIngestThread();
    return tcp_.Start(
        options,
        TcpLineServer::BatchLineHandler(
            [this](const std::vector<std::string>& lines, bool* close) {
              return service_.HandleLines(lines, close);
            }),
        [this] { return service_.MetricsText(); });
  }

  /// Stops the TCP layer first (joining every connection thread, so
  /// no producer can touch the ring again), then the engine thread.
  void Stop() {
    tcp_.Stop();
    service_.StopIngestThread();
  }
  /// Graceful shutdown: StopAccepting() then Drain() then Stop().
  void StopAccepting() { tcp_.StopAccepting(); }
  bool Drain(int grace_ms) { return tcp_.Drain(grace_ms); }
  uint16_t port() const { return tcp_.port(); }
  BurstService<EngineT>& service() { return service_; }

 private:
  BurstService<EngineT> service_;
  TcpLineServer tcp_;
};

}  // namespace server
}  // namespace bursthist

#endif  // BURSTHIST_SERVER_INGEST_SERVER_H_
