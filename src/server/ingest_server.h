// The serving front-end: a TCP line-protocol server over a
// DurableBurstEngine.
//
// Layering (one writer, many readers):
//
//   connections ──> TcpLineServer ──> BurstService<PbeT> ──┬─ writes:
//     (threads)       (sockets)         (dispatch)         │  write_mu_ →
//                                                          │  governor →
//                                                          │  DurableBurstEngine
//                                                          └─ reads:
//                                                             SnapshotSlot →
//                                                             ReadSnapshot
//
//  * Ingest (ADD) and the other mutating verbs (SYNC, CHECKPOINT)
//    serialize on one mutex — the engine stays single-writer no matter
//    how many connections are open. Admission control runs first: the
//    governor audits every `audit_every` accepted records and Admit()
//    gates each ADD, answering ERR RESOURCE_EXHAUSTED under overload
//    (degradation before refusal — the ladder sheds accuracy first).
//  * Queries never touch the live engine: they run against the
//    snapshot in the SnapshotSlot, refreshed (under the same mutex)
//    only when stale — i.e. when records were accepted after its
//    capture. Readers therefore never observe a partial cell update,
//    and every reply carries the snapshot's watermark and effective
//    error bound.
//  * METRICS (and HTTP "GET /metrics") reuses the Prometheus
//    exposition from the observability layer.
//
// The TCP layer is plain POSIX (one thread per connection, ephemeral
// port support for tests); it knows nothing about burstiness and
// forwards each line to a handler.

#ifndef BURSTHIST_SERVER_INGEST_SERVER_H_
#define BURSTHIST_SERVER_INGEST_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/read_snapshot.h"
#include "governor/resource_governor.h"
#include "obs/metrics.h"
#include "recovery/durable_engine.h"
#include "server/wire.h"
#include "util/status.h"

namespace bursthist {
namespace server {

/// TCP listener configuration.
struct TcpServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port back.
  size_t max_connections = 64;
  size_t max_line_bytes = 1 << 16;
  /// Close a connection that sends nothing for this long (0 = never).
  /// Without it a dead client pins one of max_connections slots
  /// forever — slot exhaustion as a trivial denial of service.
  int idle_timeout_ms = 300000;
  /// Give up on a send that cannot make progress for this long
  /// (0 = wait forever). Bounds how long a stalled client can hold
  /// its handler thread inside ::send.
  int write_timeout_ms = 30000;
};

/// Protocol-agnostic line server: accepts connections, splits the
/// byte stream into lines, and answers each with handler(line). A
/// first line starting with "GET " switches the connection to a
/// one-shot HTTP response ("/metrics" → 200 with metrics_text(),
/// anything else → 404), so the same port serves scrapes.
class TcpLineServer {
 public:
  /// Returns the full reply (newline appended if missing; may be
  /// multi-line). Set *close to end the connection after replying.
  using LineHandler =
      std::function<std::string(const std::string& line, bool* close)>;
  using MetricsProvider = std::function<std::string()>;

  TcpLineServer() = default;
  ~TcpLineServer();
  TcpLineServer(const TcpLineServer&) = delete;
  TcpLineServer& operator=(const TcpLineServer&) = delete;

  /// Binds, listens, and starts the accept thread. Non-blocking.
  Status Start(const TcpServerOptions& options, LineHandler handler,
               MetricsProvider metrics);

  /// Stops accepting, shuts every open connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// Graceful-shutdown phase 1: close the listener (new connections
  /// are refused) while existing connections keep being served.
  /// Idempotent; Stop() still completes the teardown.
  void StopAccepting();

  /// Graceful-shutdown phase 2: wait up to `grace_ms` for every open
  /// connection to finish. Returns true once idle, false if the
  /// grace period expired with connections still active (callers
  /// typically proceed to Stop() either way).
  bool Drain(int grace_ms);

  /// The bound port (resolves ephemeral port 0).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  void ServeHttp(int fd, const std::string& first_line);

  TcpServerOptions options_;
  LineHandler handler_;
  MetricsProvider metrics_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<int> conn_fds_;  // open connections, for Stop()
  size_t active_ = 0;
  std::vector<std::thread> done_threads_;  // finished, joinable
};

/// Wiring for serving a replication follower (all hooks are supplied
/// by the replica layer; the service stays template-decoupled from
/// it). When enabled:
///  * ADD is refused with kUnavailable while is_follower() — a stale
///    or demoted follower must never fork history;
///  * PROMOTE invokes promote() (failover to a writable leader);
///  * every query reply is stamped with " lag=<n>" so a client always
///    knows how far behind the leader its answer may be;
///  * the service shares write_mu with the apply thread, and counts
///    applied() records into its snapshot-staleness token so applies
///    refresh the serving snapshot exactly like local ADDs do.
struct ReplicaHooks {
  bool enabled = false;
  std::mutex* write_mu = nullptr;
  std::function<bool()> is_follower;
  std::function<Timestamp()> lag;
  std::function<uint64_t()> applied;
  std::function<Status()> promote;
};

/// Service tuning knobs.
struct BurstServiceOptions {
  /// Refresh the serving snapshot once this many records were accepted
  /// after its capture (1 = every query sees every accepted record;
  /// larger trades freshness for fewer snapshot clones).
  uint64_t snapshot_staleness_appends = 1;
  /// Run a governor audit (Enforce) every this many accepted records.
  uint64_t audit_every = 128;
  /// Optional admission control; may be nullptr. Must already have
  /// its components registered and outlive the service.
  ResourceGovernor* governor = nullptr;
  /// Follower-serving wiring; disabled (leader mode) by default.
  ReplicaHooks replica;
};

/// Dispatches parsed wire requests against one DurableBurstEngine.
/// Thread-safe: any number of connection threads may call Handle().
template <typename PbeT>
class BurstService {
 public:
  BurstService(DurableBurstEngine<PbeT>* durable,
               const BurstServiceOptions& options)
      : durable_(durable),
        options_(options),
        write_mu_(options.replica.write_mu != nullptr
                      ? options.replica.write_mu
                      : &own_mu_) {}

  /// Handles one request line; returns the reply. Sets *close on QUIT.
  std::string Handle(const std::string& line, bool* close) {
    BURSTHIST_COUNTER(m_requests, obs::kServerRequestsTotal);
    BURSTHIST_COUNTER(m_errors, obs::kServerRequestErrorsTotal);
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kServerRequestLatencySeconds);
    obs::TraceSpan span(m_lat, "server_request");
    m_requests.Inc();
    auto parsed = ParseRequest(line);
    if (!parsed.ok()) {
      m_errors.Inc();
      return FormatError(parsed.status());
    }
    const Request& req = parsed.value();
    std::string reply = Dispatch(req, close);
    if (reply.compare(0, 4, "ERR ") == 0) m_errors.Inc();
    return reply;
  }

  /// Prometheus exposition of the process registry, with the served
  /// engine's instantaneous gauges refreshed first.
  std::string MetricsText() {
    {
      // PublishMetrics walks the live index — writer-side state.
      std::lock_guard<std::mutex> lock(*write_mu_);
      durable_->engine().PublishMetrics();
    }
    std::string out;
    obs::MetricsRegistry::Global().WritePrometheus(&out);
    return out;
  }

  /// Records accepted over the wire so far (the snapshot staleness
  /// token).
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_acquire);
  }

 private:
  std::string Dispatch(const Request& req, bool* close) {
    switch (req.type) {
      case RequestType::kPing:
        return "PONG";
      case RequestType::kQuit:
        *close = true;
        return "BYE";
      case RequestType::kAdd:
        return HandleAdd(req);
      case RequestType::kSync: {
        std::lock_guard<std::mutex> lock(*write_mu_);
        const Status st = durable_->Sync();
        return st.ok() ? "OK" : FormatError(st);
      }
      case RequestType::kCheckpoint: {
        std::lock_guard<std::mutex> lock(*write_mu_);
        const Status st = durable_->Checkpoint();
        return st.ok() ? "OK" : FormatError(st);
      }
      case RequestType::kPromote: {
        if (!options_.replica.enabled || !options_.replica.promote) {
          return FormatError(Status::FailedPrecondition(
              "not a replica; PROMOTE only applies to followers"));
        }
        const Status st = options_.replica.promote();
        return st.ok() ? "OK" : FormatError(st);
      }
      case RequestType::kStats:
        return HandleStats();
      case RequestType::kMetrics:
        return MetricsText() + "END";
      case RequestType::kPoint:
      case RequestType::kFreq:
      case RequestType::kBurstyTime:
      case RequestType::kBurstyEvent:
      case RequestType::kTopK:
        return HandleQuery(req);
    }
    return FormatError(Status::Internal("unhandled request type"));
  }

  std::string HandleAdd(const Request& req) {
    BURSTHIST_COUNTER(m_ingested, obs::kServerIngestRecordsTotal);
    if (options_.replica.enabled && options_.replica.is_follower &&
        options_.replica.is_follower()) {
      return FormatError(Status::Unavailable(
          "follower is read-only; PROMOTE to accept writes"));
    }
    std::lock_guard<std::mutex> lock(*write_mu_);
    if (options_.governor != nullptr) {
      if (appends_since_audit_ >= options_.audit_every) {
        options_.governor->Enforce();
        appends_since_audit_ = 0;
      }
      Status admit = options_.governor->Admit();
      if (!admit.ok()) {
        // One shot at recovery before refusing: a full audit sheds
        // accuracy for space (degradation precedes refusal).
        options_.governor->Enforce();
        appends_since_audit_ = 0;
        admit = options_.governor->Admit();
        if (!admit.ok()) return FormatError(admit);
      }
    }
    const Status st = durable_->Append(req.e, req.t, req.count);
    if (!st.ok()) return FormatError(st);
    ++appends_since_audit_;
    accepted_.fetch_add(1, std::memory_order_release);
    m_ingested.Inc();
    return "OK";
  }

  std::string HandleStats() {
    // Reads of live-engine counters are writer-side state too.
    std::lock_guard<std::mutex> lock(*write_mu_);
    const BurstEngine<PbeT>& eng = durable_->engine();
    std::string out = "STATS total=" + std::to_string(eng.TotalCount()) +
                      " buffered=" + std::to_string(eng.BufferedCount()) +
                      " watermark=" + std::to_string(eng.Watermark()) +
                      " accepted=" + std::to_string(accepted()) +
                      " generation=" + std::to_string(durable_->generation());
    if (options_.governor != nullptr) {
      out += std::string(" level=") +
             DegradationLevelName(options_.governor->level());
    }
    if (options_.replica.enabled) {
      const bool follower =
          options_.replica.is_follower && options_.replica.is_follower();
      out += std::string(" role=") + (follower ? "follower" : "leader");
      if (options_.replica.applied) {
        out += " applied=" + std::to_string(options_.replica.applied());
      }
      if (options_.replica.lag) {
        out += " lag=" + std::to_string(options_.replica.lag());
      }
    }
    return out;
  }

  std::string HandleQuery(const Request& req) {
    if (req.e >= durable_->engine().universe_size() &&
        (req.type == RequestType::kPoint || req.type == RequestType::kFreq ||
         req.type == RequestType::kBurstyTime)) {
      return FormatError(
          Status::InvalidArgument("event id exceeds universe size"));
    }
    if ((req.type == RequestType::kBurstyTime ||
         req.type == RequestType::kBurstyEvent) &&
        req.theta <= 0.0) {
      return FormatError(Status::InvalidArgument("theta must be positive"));
    }
    if (req.tau < 0) {
      return FormatError(Status::InvalidArgument("tau must be >= 0"));
    }
    std::shared_ptr<const ReadSnapshot<PbeT>> snap = Serving();
    switch (req.type) {
      case RequestType::kPoint: {
        auto ans = snap->Point(req.e, req.t, req.tau);
        return Stamp(FormatValue(ans.value, ans.watermark, ans.bound));
      }
      case RequestType::kFreq: {
        auto ans = snap->Frequency(req.e, req.t, req.t2);
        return Stamp(FormatValue(ans.value, ans.watermark, ans.bound));
      }
      case RequestType::kBurstyTime: {
        auto ans = snap->BurstyTime(req.e, req.theta, req.tau);
        return Stamp(FormatIntervals(ans.value, ans.watermark, ans.bound));
      }
      case RequestType::kBurstyEvent: {
        auto ans = snap->BurstyEvent(req.t, req.theta, req.tau);
        return Stamp(FormatEvents(ans.value, ans.watermark, ans.bound));
      }
      case RequestType::kTopK: {
        auto ans = snap->TopK(req.t, req.k, req.tau);
        return Stamp(FormatTopK(ans.value, ans.watermark, ans.bound));
      }
      default:
        return FormatError(Status::Internal("non-query in HandleQuery"));
    }
  }

  /// Replica-mode answers additionally carry their replication lag:
  /// a follower's snapshot can only be as fresh as what the leader
  /// has shipped, and the client deserves to see that gap.
  std::string Stamp(std::string reply) {
    if (options_.replica.enabled && options_.replica.lag) {
      reply += " lag=" + std::to_string(options_.replica.lag());
    }
    return reply;
  }

  /// Snapshot-staleness token: local accepted records plus records
  /// applied by replication (on a follower the latter is the only
  /// part that ever grows).
  uint64_t Token() const {
    uint64_t token = accepted();
    if (options_.replica.enabled && options_.replica.applied) {
      token += options_.replica.applied();
    }
    return token;
  }

  /// The snapshot queries run against, refreshed when stale. The slot
  /// itself is the only reader/writer shared state; once a reader
  /// holds the shared_ptr the view is immutable.
  std::shared_ptr<const ReadSnapshot<PbeT>> Serving() {
    BURSTHIST_GAUGE(m_staleness, obs::kServerSnapshotStalenessAppends);
    auto current = slot_.Current();
    uint64_t now = Token();
    if (current != nullptr &&
        now - current->sequence() < options_.snapshot_staleness_appends) {
      m_staleness.Set(static_cast<double>(now - current->sequence()));
      return current;
    }
    std::lock_guard<std::mutex> lock(*write_mu_);
    // Re-check under the lock: another connection may have refreshed
    // while we waited.
    current = slot_.Current();
    now = Token();
    if (current == nullptr ||
        now - current->sequence() >= options_.snapshot_staleness_appends) {
      current = durable_->engine().AcquireSnapshot(now);
      slot_.Publish(current);
    }
    m_staleness.Set(static_cast<double>(now - current->sequence()));
    return current;
  }

  DurableBurstEngine<PbeT>* durable_;
  BurstServiceOptions options_;
  std::mutex own_mu_;
  /// Serializes every live-engine touch. Points at own_mu_ in leader
  /// mode, at the replica's mutex when serving a follower (the apply
  /// thread holds the same lock around every apply).
  std::mutex* write_mu_;
  SnapshotSlot<PbeT> slot_;
  std::atomic<uint64_t> accepted_{0};
  uint64_t appends_since_audit_ = 0;  // guarded by write_mu_
};

/// Convenience bundle: one service wired to one TCP listener.
template <typename PbeT>
class IngestServer {
 public:
  IngestServer(DurableBurstEngine<PbeT>* durable,
               const BurstServiceOptions& service_options)
      : service_(durable, service_options) {}

  Status Start(const TcpServerOptions& options) {
    return tcp_.Start(
        options,
        [this](const std::string& line, bool* close) {
          return service_.Handle(line, close);
        },
        [this] { return service_.MetricsText(); });
  }

  void Stop() { tcp_.Stop(); }
  /// Graceful shutdown: StopAccepting() then Drain() then Stop().
  void StopAccepting() { tcp_.StopAccepting(); }
  bool Drain(int grace_ms) { return tcp_.Drain(grace_ms); }
  uint16_t port() const { return tcp_.port(); }
  BurstService<PbeT>& service() { return service_; }

 private:
  BurstService<PbeT> service_;
  TcpLineServer tcp_;
};

}  // namespace server
}  // namespace bursthist

#endif  // BURSTHIST_SERVER_INGEST_SERVER_H_
