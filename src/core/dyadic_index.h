// Dyadic decomposition index for BURSTY EVENT queries
// (Section V, Figure 6, Algorithm 3 of the paper).
//
// The event-id space [0, K) is padded to a power of two and organized
// as a binary tree of dyadic ranges; one CM-PBE per level summarizes
// the stream with ids collapsed to their level-l prefix (e >> l).
// Because F of a parent range is the sum of its children's F curves,
// b_p = b_l + b_r, so
//     b_p^2 - 2 b_l b_r = b_l^2 + b_r^2,
// and if that is below theta^2 neither child can reach the threshold —
// the subtree is pruned (inequality (6)). In the common case only
// O(log K) point queries run per query; the worst case degrades to
// O(K) only when nearly everything is bursty.
//
// Caveat reproduced from the paper: the pruning bound is exact on true
// burstiness values of the *children*; deeper descendants of a pruned
// node with opposite-signed burstiness could in principle cancel. The
// recursion re-checks at every node, and the effect is measured by the
// recall metric in the evaluation (Section VI-D).

#ifndef BURSTHIST_CORE_DYADIC_INDEX_H_
#define BURSTHIST_CORE_DYADIC_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "core/cm_pbe.h"
#include "stream/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// How a subtree is tested before descending (both reduce to
/// b_l^2 + b_r^2 >= theta^2 on exact values; they differ under
/// estimation noise).
enum class DyadicPruneRule : uint8_t {
  /// Algorithm 3 as printed: descend iff
  /// b_p^2 - 2 b_l b_r >= theta^2, with b_p from the parent level's
  /// CM-PBE. Inherits the parent level's collision noise.
  kPaper = 0,
  /// Algebraically identical test computed from the children only:
  /// descend iff b_l^2 + b_r^2 >= theta^2. Empirically recovers most
  /// of the recall the paper rule loses to parent-level noise (see
  /// bench/ablation_prune_rule).
  kChildren = 1,
};

/// Cells a DyadicBurstIndex of this shape allocates at construction
/// (mirroring the constructor's per-level width capping), saturating
/// at UINT64_MAX. Deserializers that read a shape from untrusted
/// bytes check this against the payload size *before* constructing,
/// since every cell serializes to at least 8 bytes — a hostile header
/// cannot force an allocation larger than its own file.
inline uint64_t DyadicIndexCellCount(uint64_t universe_size, uint64_t depth,
                                     uint64_t width) {
  if (universe_size == 0 || depth == 0 || width == 0) return 0;
  size_t levels = 1;
  while ((uint64_t{1} << (levels - 1)) < universe_size) ++levels;
  uint64_t total = 0;
  for (size_t l = 0; l < levels; ++l) {
    const uint64_t ids = ((universe_size - 1) >> l) + 1;
    const uint64_t d = ids <= width ? 1 : depth;
    const uint64_t w = ids <= width ? ids : width;
    if (w != 0 && (d > UINT64_MAX / w || total > UINT64_MAX - d * w)) {
      return UINT64_MAX;
    }
    total += d * w;
  }
  return total;
}

/// Binary-tree-of-CM-PBEs index answering BURSTY EVENT queries.
template <typename PbeT>
class DyadicBurstIndex {
 public:
  using PbeOptions = typename PbeT::Options;

  /// @param universe_size  K: event ids are in [0, K).
  /// @param options        grid sizing shared by every level; level l
  ///        caps its width at the number of distinct level-l ids, so
  ///        upper levels cost little.
  DyadicBurstIndex(EventId universe_size, const CmPbeOptions& options,
                   const PbeOptions& pbe_options)
      : universe_size_(universe_size) {
    assert(universe_size >= 1);
    levels_ = 1;
    // 64-bit shift: EventId{1} << 32 would be UB for universe sizes
    // above 2^31 (the top level's id count must still halve to 1).
    while ((uint64_t{1} << (levels_ - 1)) < universe_size) ++levels_;
    // levels_ = L + 1 tree levels; level l has ceil(K / 2^l) ids.
    grids_.reserve(levels_);
    for (size_t l = 0; l < levels_; ++l) {
      CmPbeOptions lo = options;
      const uint64_t ids_at_level =
          (static_cast<uint64_t>(universe_size) + (1ULL << l) - 1) >> l;
      if (ids_at_level <= lo.width) {
        // Few ids: a direct-mapped single row is exact and cheaper
        // than a hashed grid (hashing a handful of ids into a handful
        // of cells collides catastrophically and breaks the
        // b_p = b_l + b_r identity the pruning bound relies on).
        lo.width = ids_at_level;
        lo.depth = 1;
        lo.identity_hash = true;
      }
      lo.seed = options.seed + 0x9e3779b9ULL * (l + 1);
      grids_.emplace_back(lo, pbe_options);
    }
  }

  /// Routes an occurrence through every level.
  void Append(EventId e, Timestamp t, Count count = 1) {
    assert(e < universe_size_);
    for (size_t l = 0; l < levels_; ++l) {
      grids_[l].Append(e >> l, t, count);
    }
  }

  /// Batch Append over parallel arrays (`n` records in stream order;
  /// `counts == nullptr` means all-ones). Byte-identical to per-record
  /// Append: levels own disjoint grids, so level-major iteration
  /// replays each grid's updates in record order.
  ///
  /// Going up the tree, each level right-shifts the ids once more, so
  /// entries adjacent in stream order collapse: two batch entries
  /// equal in (id >> l, t) route to the same cell of every level-l row
  /// with the same timestamp, and the cell's equal-time back-merge
  /// makes one Append of the summed count byte-identical to the pair.
  /// The cascade COMPACTS the working arrays level by level (equality
  /// at level l-1 implies equality at level l), so the per-level work
  /// shrinks geometrically once subtrees saturate — the top level does
  /// one append per distinct timestamp in the batch, not one per
  /// record. `id/time/count_scratch` hold the compacted arrays,
  /// `slot_scratch` the per-row hashed slots.
  void AppendBatch(const EventId* ids, const Timestamp* times,
                   const Count* counts, size_t n,
                   std::vector<EventId>* id_scratch,
                   std::vector<uint32_t>* slot_scratch,
                   std::vector<Timestamp>* time_scratch,
                   std::vector<Count>* count_scratch) {
    if (n == 0) return;
#ifndef NDEBUG
    for (size_t i = 0; i < n; ++i) assert(ids[i] < universe_size_);
#endif
    grids_[0].AppendBatch(ids, times, counts, n, slot_scratch);
    if (levels_ == 1) return;
    std::vector<EventId>& sid = *id_scratch;
    std::vector<Timestamp>& st = *time_scratch;
    std::vector<Count>& sc = *count_scratch;
    if (sid.size() < n) {
      sid.resize(n);
      st.resize(n);
      sc.resize(n);
    }
    // First cascade step reads the caller's arrays; later steps
    // compact in place (the write index never passes the read index).
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      const EventId id = ids[i] >> 1;
      if (m > 0 && sid[m - 1] == id && st[m - 1] == times[i]) {
        sc[m - 1] += counts ? counts[i] : Count{1};
      } else {
        sid[m] = id;
        st[m] = times[i];
        sc[m] = counts ? counts[i] : Count{1};
        ++m;
      }
    }
    AppendLevelSpan(1, sid.data(), st.data(), sc.data(), m, slot_scratch);
    for (size_t l = 2; l < levels_; ++l) {
      size_t k = 0;
      for (size_t i = 0; i < m; ++i) {
        const EventId id = sid[i] >> 1;
        if (k > 0 && sid[k - 1] == id && st[k - 1] == st[i]) {
          sc[k - 1] += sc[i];
        } else {
          sid[k] = id;
          st[k] = st[i];
          sc[k] = sc[i];
          ++k;
        }
      }
      m = k;
      AppendLevelSpan(l, sid.data(), st.data(), sc.data(), m, slot_scratch);
    }
  }

  void Finalize() {
    for (auto& g : grids_) g.Finalize();
  }

  /// Feeds one compacted level span into its grid. Near the top of
  /// the tree a span collapses to a handful of entries, where the
  /// batch kernel's per-call setup (slot buffer sizing, row-major hash
  /// dispatch) costs more than it saves — route tiny spans through the
  /// scalar per-record Append, which is byte-identical by definition.
  void AppendLevelSpan(size_t level, const EventId* ids,
                       const Timestamp* times, const Count* counts,
                       size_t m, std::vector<uint32_t>* slot_scratch) {
    if (m <= 4) {
      for (size_t i = 0; i < m; ++i) {
        grids_[level].Append(ids[i], times[i], counts[i]);
      }
      return;
    }
    grids_[level].AppendBatch(ids, times, counts, m, slot_scratch);
  }

  /// Level-scoped ingestion for parallel construction (levels are
  /// independent; see parallel_ingest.h).
  void AppendLevel(size_t level, EventId e, Timestamp t, Count count = 1) {
    grids_[level].Append(e >> level, t, count);
  }
  void FinalizeLevel(size_t level) { grids_[level].Finalize(); }

  /// Splices a finalized `suffix` index — same universe, hence same
  /// level shapes and seeds — level by level onto this index (see
  /// CmPbe::AbsorbSuffix). Used by segment-parallel construction.
  void AbsorbSuffix(const DyadicBurstIndex& suffix) {
    assert(universe_size_ == suffix.universe_size_ &&
           levels_ == suffix.levels_ &&
           "indexes must share a universe for level-wise concatenation");
    for (size_t l = 0; l < levels_; ++l) {
      grids_[l].AbsorbSuffix(suffix.grids_[l]);
    }
  }

  /// Leaf-level POINT query for event e.
  double EstimateBurstiness(EventId e, Timestamp t, Timestamp tau) const {
    return grids_[0].EstimateBurstiness(e, t, tau);
  }

  /// BURSTY EVENT query (Algorithm 3): all ids whose estimated
  /// burstiness at t reaches theta, ascending. Precondition: theta > 0.
  std::vector<EventId> BurstyEvents(Timestamp t, double theta,
                                    Timestamp tau) const {
    assert(theta > 0.0);
    std::vector<EventId> out;
    point_queries_.store(0, std::memory_order_relaxed);
    Recurse(levels_ - 1, 0, t, theta, tau, &out);
    return out;
  }

  /// TOP-K variant of the BURSTY EVENT query: the k events with the
  /// largest estimated burstiness at t, descending. Best-first search
  /// over the tree guided by the children-magnitude score
  /// b_l^2 + b_r^2; because sibling burstiness can cancel inside a
  /// range sum, the score is a heuristic rather than a strict upper
  /// bound — the search keeps expanding until the best unexplored
  /// node's score falls below the current k-th leaf's squared value,
  /// which is exact whenever subtree burstiness does not cancel.
  std::vector<std::pair<EventId, double>> TopKBurstyEvents(
      Timestamp t, size_t k, Timestamp tau) const {
    struct Node {
      double score;  // priority
      size_t lv;
      EventId node;
      bool operator<(const Node& o) const { return score < o.score; }
    };
    std::priority_queue<Node> frontier;
    point_queries_.store(0, std::memory_order_relaxed);
    frontier.push(Node{std::numeric_limits<double>::infinity(),
                       levels_ - 1, 0});

    std::vector<std::pair<EventId, double>> leaves;
    // Stop only once the k-th leaf's burstiness is non-negative AND its
    // square dominates the best unexplored score. Squaring a NEGATIVE
    // k-th value would flip its order — a frontier node with score
    // below kth^2 can still hide a leaf between kth and zero, so with a
    // negative cutoff the search must keep expanding.
    auto can_stop = [&](double score) {
      if (leaves.size() < k) return false;
      const double kth = leaves[k - 1].second;
      return kth >= 0.0 && score <= kth * kth;
    };
    while (!frontier.empty()) {
      const Node cur = frontier.top();
      frontier.pop();
      if (can_stop(cur.score)) break;
      const EventId lo = cur.node << cur.lv;
      if (lo >= universe_size_) continue;
      if (cur.lv == 0) {
        point_queries_.fetch_add(1, std::memory_order_relaxed);
        const double b = grids_[0].EstimateBurstiness(lo, t, tau);
        leaves.emplace_back(lo, b);
        std::sort(leaves.begin(), leaves.end(),
                  [](const auto& a, const auto& b2) {
                    return a.second > b2.second;
                  });
        continue;
      }
      for (EventId child : {cur.node * 2, cur.node * 2 + 1}) {
        if ((child << (cur.lv - 1)) >= universe_size_) continue;
        point_queries_.fetch_add(1, std::memory_order_relaxed);
        const double bc =
            grids_[cur.lv - 1].EstimateBurstiness(child, t, tau);
        frontier.push(Node{bc * bc, cur.lv - 1, child});
      }
    }
    if (leaves.size() > k) leaves.resize(k);
    return leaves;
  }

  /// Point queries issued by the last BurstyEvents call (the paper's
  /// O(log K) vs O(K) cost measure). With several threads querying one
  /// finalized index (snapshot readers), concurrent calls interleave
  /// their accounting — the counter stays well-defined (relaxed
  /// atomics, no torn reads) but then reflects the mixture, so treat
  /// it as a per-thread cost measure only under single-threaded use.
  size_t LastQueryPointQueries() const {
    return point_queries_.load(std::memory_order_relaxed);
  }

  /// Selects the subtree test (default: the paper's Algorithm 3).
  void set_prune_rule(DyadicPruneRule rule) { prune_rule_ = rule; }
  DyadicPruneRule prune_rule() const { return prune_rule_; }

  EventId universe_size() const { return universe_size_; }
  size_t levels() const { return levels_; }
  const CmPbe<PbeT>& level(size_t l) const { return grids_[l]; }

  size_t SizeBytes() const {
    size_t bytes = 0;
    for (const auto& g : grids_) bytes += g.SizeBytes();
    return bytes;
  }

  /// Resident bytes across every level (see CmPbe::MemoryUsage).
  size_t MemoryUsage() const {
    size_t bytes = sizeof(*this);
    for (const auto& g : grids_) bytes += g.MemoryUsage();
    return bytes;
  }

  /// Applies the degradation ladder to every level's grid (see
  /// CmPbe::Degrade).
  void Degrade(double gamma_factor) {
    for (auto& g : grids_) g.Degrade(gamma_factor);
  }

  /// Largest per-cell point-error bound in force at the leaf level —
  /// the level POINT queries read, hence the "Delta" of the engine's
  /// effective Lemma 5 bound.
  double MaxLeafCellError() const { return grids_[0].MaxCellPointError(); }

  void Serialize(BinaryWriter* w) const {
    w->Put<uint32_t>(0x44594144);  // "DYAD"
    // v1: bare payload. v2: CRC32C-framed payload (see CrcFrame).
    w->Put<uint32_t>(2);
    const size_t frame = CrcFrame::Begin(w);
    w->Put<uint32_t>(universe_size_);
    w->Put<uint64_t>(levels_);
    w->Put<uint8_t>(static_cast<uint8_t>(prune_rule_));
    for (const auto& g : grids_) g.Serialize(w);
    CrcFrame::End(w, frame);
  }

  /// Restores into an index constructed with the same universe size
  /// and per-level grid shape.
  Status Deserialize(BinaryReader* r) {
    uint32_t magic = 0, version = 0, universe = 0;
    uint64_t levels = 0;
    uint8_t rule = 0;
    BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&version));
    if (magic != 0x44594144) return Status::Corruption("bad dyadic magic");
    if (version != 1 && version != 2) {
      return Status::Corruption("bad dyadic version");
    }
    size_t payload_end = 0;
    if (version >= 2) {
      BURSTHIST_RETURN_IF_ERROR(CrcFrame::Enter(r, &payload_end));
    }
    BURSTHIST_RETURN_IF_ERROR(r->Get(&universe));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&levels));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&rule));
    if (universe != universe_size_ || levels != levels_) {
      return Status::InvalidArgument(
          "dyadic payload shape does not match this index");
    }
    if (rule > 1) return Status::Corruption("bad dyadic prune rule");
    prune_rule_ = static_cast<DyadicPruneRule>(rule);
    for (auto& g : grids_) {
      BURSTHIST_RETURN_IF_ERROR(g.Deserialize(r));
      // Every level ingests every record, so the levels finalize
      // together; mixed lifecycles only arise from a hostile blob.
      if (g.finalized() != grids_.front().finalized()) {
        return Status::Corruption("dyadic levels disagree on lifecycle");
      }
    }
    if (version >= 2) {
      BURSTHIST_RETURN_IF_ERROR(CrcFrame::Leave(r, payload_end));
    }
    return Status::OK();
  }

 private:
  // Visits the node covering leaf ids [node << lv, (node+1) << lv).
  void Recurse(size_t lv, EventId node, Timestamp t, double theta,
               Timestamp tau, std::vector<EventId>* out) const {
    const EventId lo = node << lv;
    if (lo >= universe_size_) return;  // fully padded subtree
    if (lv == 0) {
      point_queries_.fetch_add(1, std::memory_order_relaxed);
      if (grids_[0].EstimateBurstiness(lo, t, tau) >= theta) {
        out->push_back(lo);
      }
      return;
    }
    // Padded (out-of-universe) children hold no stream: their
    // burstiness is identically zero. Querying them anyway would wrap
    // around the level's cell array and read a real node's stream.
    auto child = [&](EventId c) -> double {
      if ((c << (lv - 1)) >= universe_size_) return 0.0;
      point_queries_.fetch_add(1, std::memory_order_relaxed);
      return grids_[lv - 1].EstimateBurstiness(c, t, tau);
    };
    const double bl = child(node * 2);
    const double br = child(node * 2 + 1);
    double score;
    if (prune_rule_ == DyadicPruneRule::kPaper) {
      const double bp = grids_[lv].EstimateBurstiness(node, t, tau);
      point_queries_.fetch_add(1, std::memory_order_relaxed);
      score = bp * bp - 2.0 * bl * br;
    } else {
      score = bl * bl + br * br;
    }
    if (score < theta * theta) return;  // prune (inequality (6))
    Recurse(lv - 1, node * 2, t, theta, tau, out);
    Recurse(lv - 1, node * 2 + 1, t, theta, tau, out);
  }

  // Query-cost accounting that stays data-race-free when concurrent
  // snapshot readers share one finalized index. Copyable (unlike a
  // bare std::atomic) so the index keeps its value semantics; a copy
  // observes the source's current value, not its atomicity.
  class QueryCounter {
   public:
    QueryCounter() = default;
    QueryCounter(const QueryCounter& o)
        : v_(o.v_.load(std::memory_order_relaxed)) {}
    QueryCounter& operator=(const QueryCounter& o) {
      v_.store(o.v_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
      return *this;
    }
    void store(size_t v, std::memory_order order) { v_.store(v, order); }
    size_t load(std::memory_order order) const { return v_.load(order); }
    void fetch_add(size_t n, std::memory_order order) const {
      v_.fetch_add(n, order);
    }

   private:
    mutable std::atomic<size_t> v_{0};
  };

  EventId universe_size_;
  size_t levels_ = 1;
  DyadicPruneRule prune_rule_ = DyadicPruneRule::kPaper;
  std::vector<CmPbe<PbeT>> grids_;
  mutable QueryCounter point_queries_;
};

}  // namespace bursthist

#endif  // BURSTHIST_CORE_DYADIC_INDEX_H_
