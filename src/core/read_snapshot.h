// ReadSnapshot — epoch-style immutable query views over a live
// BurstEngine.
//
// The engine is single-writer: Append and the value-returning queries
// must come from one thread. To serve queries *while* ingestion
// continues, the writer periodically calls
//
//   auto snap = engine.AcquireSnapshot();   // writer thread
//   slot.Publish(snap);                     // any SnapshotSlot
//
// and reader threads query whatever view is current:
//
//   auto view = slot.Current();             // reader threads
//   auto ans = view->Point(e, t, tau);      // ans.value / .watermark /
//                                           // .bound
//
// AcquireSnapshot() first drains the ripe prefix of the re-order
// buffer at the current watermark (so ripe records reach the live
// index, not just the clone), then captures a finalized deep copy of
// the engine covering EVERY accepted record — buffered suffix
// included — behind a shared_ptr. Publication hands the pointer over
// a mutex; from then on the snapshot is immutable shared state:
// appends keep mutating the live index while readers traverse the
// frozen clone, so a reader can never observe a partially updated
// cell. Each answer carries the watermark the view was captured at
// and the effective error bound in force (Lemma 5 with degradation
// folded in), so a serving layer can report exactly how fresh and how
// accurate its reply is.
//
// The capture cost is one deep copy of the index — the same clone the
// engine's own live-query cache builds (QueryView()), so acquiring a
// snapshot right after a live query is nearly free: the cached clone
// is shared, not recopied.

#ifndef BURSTHIST_CORE_READ_SNAPSHOT_H_
#define BURSTHIST_CORE_READ_SNAPSHOT_H_

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/burst_engine.h"
#include "core/burst_queries.h"
#include "obs/metrics.h"
#include "stream/types.h"

namespace bursthist {

/// One snapshot answer: the value plus the provenance a serving layer
/// reports with it — the watermark the view was captured at and the
/// POINT error bound in force at capture (Lemma 5, degradation and
/// buffered records included).
template <typename T>
struct SnapshotAnswer {
  T value;
  Timestamp watermark = 0;
  EffectiveErrorBound bound;
};

/// An immutable, shareable query view of a BurstEngine at one capture
/// point. Thread-safe for any number of concurrent readers; holds the
/// underlying finalized clone alive for as long as any reader does.
template <typename PbeT>
class ReadSnapshot {
 public:
  /// Wraps an already-finalized engine view. Callers normally go
  /// through BurstEngine::AcquireSnapshot() instead of constructing
  /// directly.
  ReadSnapshot(std::shared_ptr<const BurstEngine<PbeT>> engine,
               Timestamp watermark, uint64_t sequence)
      : engine_(std::move(engine)),
        watermark_(watermark),
        sequence_(sequence),
        bound_(engine_->EffectivePointBound()) {}

  /// POINT query q(e, t, tau) against the frozen view.
  SnapshotAnswer<double> Point(EventId e, Timestamp t, Timestamp tau) const {
    return Stamp(engine_->PointQuery(e, t, tau));
  }

  /// Estimated cumulative frequency F~_e(t).
  SnapshotAnswer<double> Cumulative(EventId e, Timestamp t) const {
    return Stamp(engine_->CumulativeQuery(e, t));
  }

  /// Estimated frequency of e in [t1, t2] (0 when t1 > t2).
  SnapshotAnswer<double> Frequency(EventId e, Timestamp t1,
                                   Timestamp t2) const {
    return Stamp(engine_->FrequencyQuery(e, t1, t2));
  }

  /// BURSTY TIME query q(e, theta, tau).
  SnapshotAnswer<std::vector<TimeInterval>> BurstyTime(EventId e, double theta,
                                                       Timestamp tau) const {
    return Stamp(engine_->BurstyTimeQuery(e, theta, tau));
  }

  /// BURSTY EVENT query q(t, theta, tau). Precondition: theta > 0.
  SnapshotAnswer<std::vector<EventId>> BurstyEvent(Timestamp t, double theta,
                                                   Timestamp tau) const {
    return Stamp(engine_->BurstyEventQuery(t, theta, tau));
  }

  /// Frequency-filtered BURSTY EVENT query.
  SnapshotAnswer<std::vector<EventId>> FrequentBurstyEvent(
      Timestamp t, double theta, Timestamp tau, double min_frequency) const {
    return Stamp(engine_->FrequentBurstyEventQuery(t, theta, tau,
                                                   min_frequency));
  }

  /// TOP-K BURSTY EVENT query.
  SnapshotAnswer<std::vector<std::pair<EventId, double>>> TopK(
      Timestamp t, size_t k, Timestamp tau) const {
    return Stamp(engine_->TopKBurstyEvents(t, k, tau));
  }

  /// The frozen engine view itself, for callers needing the full
  /// query surface (heavy hitters, serialization, ...).
  const BurstEngine<PbeT>& engine() const { return *engine_; }

  /// High-water timestamp of the data this view covers.
  Timestamp watermark() const { return watermark_; }
  /// Occurrences the view covers (Lemma 5's N, buffered included).
  Count total_count() const { return engine_->TotalCount(); }
  /// The POINT error bound in force at capture.
  const EffectiveErrorBound& bound() const { return bound_; }
  /// Caller-supplied capture token (e.g. accepted-record count) for
  /// staleness decisions; 0 when not provided.
  uint64_t sequence() const { return sequence_; }

 private:
  template <typename T>
  SnapshotAnswer<T> Stamp(T value) const {
    return SnapshotAnswer<T>{std::move(value), watermark_, bound_};
  }

  std::shared_ptr<const BurstEngine<PbeT>> engine_;
  Timestamp watermark_;
  uint64_t sequence_;
  EffectiveErrorBound bound_;
};

/// The publication point between the single writer thread and any
/// number of reader threads: the writer Publish()es each new snapshot,
/// readers grab Current() and query it lock-free from then on. The
/// mutex guards only the pointer swap — never a query. Parameterized
/// on the VIEW type (ReadSnapshot<PbeT>, or a sharded cluster's
/// merged view), not the sketch configuration.
template <typename ViewT>
class SnapshotSlot {
 public:
  void Publish(std::shared_ptr<const ViewT> snap) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(snap);
  }

  /// The most recently published view; nullptr before first Publish.
  std::shared_ptr<const ViewT> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ViewT> current_;
};

template <typename PbeT>
std::shared_ptr<const ReadSnapshot<PbeT>> BurstEngine<PbeT>::AcquireSnapshot(
    uint64_t sequence) {
  BURSTHIST_COUNTER(m_snaps, obs::kEngineReadSnapshotsTotal);
  BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kSnapshotAcquireLatencySeconds);
  obs::TraceSpan span(m_lat, "acquire_snapshot");
  // Ripe records belong in the live index, not just the clone: drain
  // the prefix the watermark already proves complete.
  if (!finalized_ && options_.max_lateness > 0) {
    DrainReorderBuffer(watermark_ - options_.max_lateness);
    UpdateIngestGauges();
  }
  // Reuse (or refresh) the live-query cache so back-to-back snapshots
  // and live queries between the same appends share one clone.
  if (!live_view_ || live_view_version_ != state_version_) {
    live_view_ = std::make_shared<const BurstEngine>(FinalizedClone());
    live_view_version_ = state_version_;
  }
  m_snaps.Inc();
  return std::make_shared<const ReadSnapshot<PbeT>>(live_view_, Watermark(),
                                                    sequence);
}

}  // namespace bursthist

#endif  // BURSTHIST_CORE_READ_SNAPSHOT_H_
