// BurstEngine — the library's one-stop façade.
//
// Wires an event stream into a dyadic CM-PBE index and exposes the
// paper's three query types behind a small, validated API:
//
//   BurstEngine1 engine(options);            // CM-PBE-1 cells
//   engine.Append(event_id, timestamp);
//   engine.Finalize();
//   double b = engine.PointQuery(e, t, tau);
//   auto when = engine.BurstyTimeQuery(e, theta, tau);
//   auto what = engine.BurstyEventQuery(t, theta, tau);
//
// Unlike the bare structures (which assert on misuse), the engine
// validates ids and timestamp order with Status returns, making it
// the right entry point for ingesting untrusted feeds.
//
// Queries on a LIVE (unfinalized) engine are answered through an
// internally cached finalized clone covering every accepted record —
// including those still waiting in the re-order buffer — so a live
// answer never silently omits buffered data (see QueryView()). For
// serving queries concurrently with ingestion, AcquireSnapshot()
// (core/read_snapshot.h) publishes that clone as an immutable,
// shareable view whose answers carry their watermark and effective
// error bound. The engine itself stays single-writer: Append and the
// value-returning queries must come from one thread at a time;
// concurrent readers hold ReadSnapshots.

#ifndef BURSTHIST_CORE_BURST_ENGINE_H_
#define BURSTHIST_CORE_BURST_ENGINE_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "core/burst_queries.h"
#include "core/cm_pbe.h"
#include "core/dyadic_index.h"
#include "core/parallel_ingest.h"
#include "obs/metrics.h"
#include "sketch/space_saving.h"
#include "stream/event_stream.h"
#include "stream/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Immutable query view published by BurstEngine::AcquireSnapshot()
/// (defined in core/read_snapshot.h).
template <typename PbeT>
class ReadSnapshot;

/// What Append does when the re-order buffer already holds
/// BurstEngineOptions::max_reorder_events records and another arrives.
enum class ReorderOverflowPolicy : uint8_t {
  /// Refuse the record with Status::ResourceExhausted. Nothing is
  /// logged or buffered; the caller sheds load or retries after the
  /// watermark advances. A watermark-advancing arrival drains the ripe
  /// backlog before the decision, so fresh traffic always recovers a
  /// buffer that filled under a stalled watermark.
  kReject = 0,
  /// Accept the record and discard the oldest buffered record instead,
  /// counting the shed occurrences in DroppedCount() — bounded memory
  /// at a measured (never silent) accuracy cost.
  kDropOldest = 1,
  /// Accept the record and force-drain the oldest buffered records
  /// into the index, advancing the watermark past them — bounded
  /// memory with no data loss, at the cost of a temporarily narrowed
  /// lateness window (records older than the advanced watermark are
  /// rejected with kOutOfRange, exactly as ordinary late arrivals).
  kForceDrain = 2,
};

/// The error bound actually in force for POINT answers — Lemma 5 with
/// the leaf cells' current (possibly degraded/escalated) state folded
/// in:
///   Pr[|b~(t) - b(t)| <= epsilon * N + 4 * cell_error] >= 1 - delta,
/// and exact grid routing (epsilon = delta = 0) when the leaf level is
/// direct-mapped. Degradation widens cell_error; it never invalidates
/// the reported bound.
struct EffectiveErrorBound {
  double epsilon = 0.0;      ///< Count-Min collision rate, e / width.
  double delta = 0.0;        ///< Failure probability, e^-depth.
  double cell_error = 0.0;   ///< Max leaf-cell Delta (PBE-1) or gamma (PBE-2).
  double point_bound = 0.0;  ///< epsilon * N + 4 * cell_error.
};

/// Engine configuration. `universe_size` is required; everything else
/// has paper-default values.
template <typename PbeT>
struct BurstEngineOptions {
  /// K = |Sigma|: event ids must fall in [0, universe_size).
  EventId universe_size = 1;
  /// Count-Min grid shape shared by every tree level (eps = 0.05,
  /// delta = 0.2 defaults, as in Section VI).
  CmPbeOptions grid = CmPbeOptions::FromGuarantee(0.05, 0.2);
  /// Per-cell estimator options (Pbe1Options or Pbe2Options).
  typename PbeT::Options cell;
  /// Subtree test for BURSTY EVENT queries.
  DyadicPruneRule prune_rule = DyadicPruneRule::kPaper;
  /// When > 0, a SpaceSaving summary of this capacity tracks the
  /// heaviest event ids (the intro's "impose a frequency threshold"
  /// filter and Section V's appeared-ids optimization).
  size_t heavy_hitter_capacity = 0;
  /// Bounded out-of-order tolerance: records may arrive up to this
  /// many time units behind the newest timestamp seen; they are
  /// re-ordered in a small buffer before ingestion. 0 = require
  /// strictly non-decreasing input (the paper's stream model).
  Timestamp max_lateness = 0;
  /// Upper bound on records held in the re-order buffer. Without a
  /// cap, a stalled watermark (one hot timestamp repeating while late
  /// records pour in) grows the buffer — and the process — without
  /// limit. 0 = unbounded (the legacy behavior).
  size_t max_reorder_events = 0;
  /// What Append does at the cap (ignored while max_reorder_events
  /// == 0).
  ReorderOverflowPolicy overflow_policy = ReorderOverflowPolicy::kReject;
  /// When > 1, AppendStream on a fresh engine (nothing ingested yet,
  /// max_lateness == 0) splits the stream into this many mutually
  /// exclusive time ranges and builds them concurrently — see
  /// parallel_ingest.h. Query results carry the same error guarantees
  /// as serial ingestion; the engine stays appendable afterwards.
  size_t ingest_threads = 1;
};

/// Historical burstiness engine over a mixed event stream.
template <typename PbeT>
class BurstEngine {
 public:
  using Options = BurstEngineOptions<PbeT>;

  explicit BurstEngine(const Options& options)
      : options_(options),
        index_(options.universe_size, options.grid, options.cell),
        hitters_(std::max<size_t>(1, options.heavy_hitter_capacity)) {
    index_.set_prune_rule(options.prune_rule);
  }

  /// Called with every accepted record after validation but before it
  /// reaches the index — the recovery subsystem's write-ahead-log tee
  /// (recovery/durable_engine.h). A non-OK return aborts the Append
  /// before any state changes, so a record is never ingested unless
  /// the observer accepted (logged) it. Inside AppendBatch the same
  /// contract holds per record: a non-OK return at record i aborts the
  /// remaining batch suffix deterministically — records [0, i) are
  /// fully ingested (they were already logged), record i and everything
  /// after it are untouched, and the applied count is reported through
  /// AppendBatch's `applied` out-parameter. Not serialized.
  using AppendObserver = std::function<Status(EventId, Timestamp, Count)>;
  void set_append_observer(AppendObserver observer) {
    observer_ = std::move(observer);
  }

  /// Batch form of the tee: called once per validated batch prefix
  /// with every record AppendBatch is about to ingest, amortizing log
  /// framing/fsync to one call per batch. When set it takes precedence
  /// over the per-record observer on the batch path (the per-record
  /// observer still serves Append). All-or-nothing: a non-OK return
  /// means none of the span's records were logged, so AppendBatch
  /// ingests none of them (applied == 0). Not serialized.
  using BatchAppendObserver =
      std::function<Status(std::span<const WeightedRecord>)>;
  void set_batch_append_observer(BatchAppendObserver observer) {
    batch_observer_ = std::move(observer);
  }

  /// Ingests one element of the event stream. Rejects out-of-range
  /// ids, appends after Finalize(), and time regressions beyond
  /// options.max_lateness (regressions within the tolerance are
  /// buffered and re-ordered).
  Status Append(EventId e, Timestamp t, Count count = 1) {
    BURSTHIST_COUNTER(m_appends, obs::kEngineAppendsTotal);
    BURSTHIST_COUNTER(m_rejects, obs::kEngineAppendRejectsTotal);
    if (finalized_) {
      m_rejects.Inc();
      return Status::FailedPrecondition("engine already finalized");
    }
    if (e >= options_.universe_size) {
      m_rejects.Inc();
      return Status::InvalidArgument("event id exceeds universe size");
    }
    if (options_.max_lateness == 0) {
      if (started_ && t < last_time_) {
        m_rejects.Inc();
        return Status::OutOfRange("timestamps must be non-decreasing");
      }
      if (observer_) {
        if (Status st = observer_(e, t, count); !st.ok()) {
          m_rejects.Inc();
          return st;
        }
      }
      Ingest(e, t, count);
      m_appends.Inc();
      return Status::OK();
    }
    BURSTHIST_RETURN_IF_ERROR(BufferedAppendCore(e, t, count));
    m_appends.Inc();
    UpdateIngestGauges();
    return Status::OK();
  }

  /// Batch ingestion over a span of records in arrival order. State is
  /// byte-identical to calling Append once per record; the win is the
  /// amortization — one validation sweep, one observer tee, one
  /// structure-of-arrays sketch update, one metrics refresh per batch
  /// instead of per record (see DyadicBurstIndex::AppendBatch for the
  /// kernel).
  ///
  /// Partial application is deterministic and reported: on any
  /// failure, records [0, *applied) — always a contiguous prefix —
  /// are fully ingested and everything from the failing record on is
  /// untouched. With the per-record observer the prefix ends at the
  /// first record validation or the observer refused; with a batch
  /// observer a tee failure voids the entire batch (*applied == 0),
  /// since none of its records were logged.
  Status AppendBatch(std::span<const WeightedRecord> records,
                     size_t* applied = nullptr) {
    size_t local = 0;
    const Status st = AppendBatchImpl(records, &local);
    if (applied != nullptr) *applied = local;
    return st;
  }

  /// Ingests a whole stream (stops at the first invalid record,
  /// having applied everything before it). On a fresh engine with
  /// options.ingest_threads > 1 (and no lateness tolerance, which
  /// implies time order within the stream), the stream is built
  /// segment-parallel; otherwise it is routed through AppendBatch in
  /// fixed-size chunks, so single-threaded stream ingestion gets the
  /// batched kernel's amortization too.
  Status AppendStream(const EventStream& stream) {
    if (options_.ingest_threads > 1 && !started_ && !finalized_ &&
        options_.max_lateness == 0 && stream.size() > 1) {
      return AppendStreamParallel(stream);
    }
    const auto& records = stream.records();
    constexpr size_t kChunk = 4096;
    std::vector<WeightedRecord> chunk;
    for (size_t begin = 0; begin < records.size(); begin += kChunk) {
      const size_t n = std::min(kChunk, records.size() - begin);
      chunk.resize(n);
      for (size_t i = 0; i < n; ++i) {
        chunk[i] = WeightedRecord{records[begin + i].id,
                                  records[begin + i].time, 1};
      }
      BURSTHIST_RETURN_IF_ERROR(AppendBatch({chunk.data(), n}));
    }
    return Status::OK();
  }

  /// Freezes the engine for querying (draining any re-order buffer).
  /// Idempotent.
  void Finalize() {
    if (!finalized_) {
      DrainReorderBuffer(std::numeric_limits<Timestamp>::max());
      index_.Finalize();
      finalized_ = true;
      ++state_version_;
      live_view_.reset();
      UpdateIngestGauges();
    }
  }
  /// True once Finalize() froze the engine. Queries no longer require
  /// it: on a live engine they are served through a finalized clone
  /// covering every accepted record (see the class comment), so a
  /// finalized engine only answers cheaper, never differently.
  bool finalized() const { return finalized_; }

  /// A finalized deep copy covering every record accepted so far —
  /// ingested AND still buffered (the clone drains its own re-order
  /// buffer; the live engine's buffer is untouched). The clone has no
  /// append observer and answers queries directly.
  BurstEngine FinalizedClone() const {
    BurstEngine snap(*this);
    snap.observer_ = nullptr;
    snap.live_view_.reset();
    if (!snap.finalized_) {
      // Quiet finalize: no gauge writes, so the live engine keeps
      // owning the process-wide ingest gauges mid-stream.
      snap.DrainReorderBuffer(std::numeric_limits<Timestamp>::max());
      snap.index_.Finalize();
      snap.finalized_ = true;
    }
    return snap;
  }

  /// Publishes an immutable query view of everything accepted so far:
  /// drains the ripe prefix of the re-order buffer at the current
  /// watermark into the live index, then captures a finalized clone
  /// (buffered suffix included) behind a shared_ptr. Readers on other
  /// threads may query the snapshot freely while this engine keeps
  /// appending; every snapshot answer carries the watermark and the
  /// effective error bound in force at capture. Writer-thread only,
  /// like Append. Defined in core/read_snapshot.h.
  std::shared_ptr<const ReadSnapshot<PbeT>> AcquireSnapshot(
      uint64_t sequence = 0);

  /// Monotone counter of state mutations (appends, degradation,
  /// finalize, deserialize) — the staleness token behind the live
  /// query view. Writer-thread only.
  uint64_t StateVersion() const { return state_version_; }

  /// POINT query q(e, t, tau): estimated burstiness of e at t.
  /// Answers obey Lemma 5 — within eps*N + 4*cell_error of the truth
  /// with probability >= 1 - delta; EffectiveAnswerBound() reports the
  /// bound in force, degradation included. On a live engine the
  /// answer covers every accepted record (buffered included).
  double PointQuery(EventId e, Timestamp t, Timestamp tau) const {
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kQueryPointLatencySeconds);
    obs::TraceSpan span(m_lat, "point");
    return QueryView().index_.EstimateBurstiness(e, t, tau);
  }

  /// Estimated cumulative frequency F~_e(t) (leaf level).
  double CumulativeQuery(EventId e, Timestamp t) const {
    return QueryView().index_.level(0).EstimateCumulative(e, t);
  }

  /// Estimated frequency of e in the closed time range [t1, t2]
  /// (Section II-A's f_e(S[t1, t2])). A degenerate range with
  /// t1 > t2 selects no substream, so the answer is defined to be 0
  /// (never swapped) — enforced here at the engine layer.
  double FrequencyQuery(EventId e, Timestamp t1, Timestamp t2) const {
    if (t1 > t2) return 0.0;
    return QueryView().index_.level(0).EstimateFrequency(e, t1, t2);
  }

  /// BURSTY TIME query q(e, theta, tau): maximal intervals where the
  /// estimated burstiness of e reaches theta. Cost is linear in the
  /// size of the cells e maps to, not in the history length. The
  /// intervals are exactly consistent with PointQuery's estimates (and
  /// so inherit their Lemma 5 bound).
  std::vector<TimeInterval> BurstyTimeQuery(EventId e, double theta,
                                            Timestamp tau) const {
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kQueryBurstyTimeLatencySeconds);
    obs::TraceSpan span(m_lat, "bursty_time");
    return BurstyTimes(LeafModel{&QueryView().index_.level(0), e}, theta, tau);
  }

  /// BURSTY EVENT query q(t, theta, tau): ids whose estimated
  /// burstiness at t reaches theta, each decided by point queries that
  /// carry the Lemma 5 bound. Precondition: theta > 0.
  std::vector<EventId> BurstyEventQuery(Timestamp t, double theta,
                                        Timestamp tau) const {
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kQueryBurstyEventLatencySeconds);
    BURSTHIST_GAUGE(m_point_queries, obs::kQueryBurstyEventPointQueries);
    obs::TraceSpan span(m_lat, "bursty_event");
    const BurstEngine& view = QueryView();
    auto out = view.index_.BurstyEvents(t, theta, tau);
    m_point_queries.Set(
        static_cast<double>(view.index_.LastQueryPointQueries()));
    return out;
  }

  /// Frequency-filtered BURSTY EVENT query (the paper's introduction:
  /// "one can impose a frequency threshold when detecting bursty
  /// events, i.e., only those bursty events with a reasonable amount
  /// of frequency are worth capturing"): ids bursty at t whose
  /// estimated cumulative frequency at t also reaches min_frequency.
  std::vector<EventId> FrequentBurstyEventQuery(Timestamp t, double theta,
                                                Timestamp tau,
                                                double min_frequency) const {
    BURSTHIST_LATENCY_HISTOGRAM(
        m_lat, obs::kQueryFrequentBurstyEventLatencySeconds);
    BURSTHIST_GAUGE(m_point_queries, obs::kQueryBurstyEventPointQueries);
    obs::TraceSpan span(m_lat, "frequent_bursty_event");
    const BurstEngine& view = QueryView();
    std::vector<EventId> out;
    for (EventId e : view.index_.BurstyEvents(t, theta, tau)) {
      if (view.index_.level(0).EstimateCumulative(e, t) >= min_frequency) {
        out.push_back(e);
      }
    }
    m_point_queries.Set(
        static_cast<double>(view.index_.LastQueryPointQueries()));
    return out;
  }

  /// TOP-K BURSTY EVENT query: the k ids with the largest estimated
  /// burstiness at t (see DyadicBurstIndex::TopKBurstyEvents for the
  /// search's heuristic caveat).
  std::vector<std::pair<EventId, double>> TopKBurstyEvents(
      Timestamp t, size_t k, Timestamp tau) const {
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kQueryTopkLatencySeconds);
    BURSTHIST_GAUGE(m_point_queries, obs::kQueryBurstyEventPointQueries);
    obs::TraceSpan span(m_lat, "topk");
    const BurstEngine& view = QueryView();
    auto out = view.index_.TopKBurstyEvents(t, k, tau);
    m_point_queries.Set(
        static_cast<double>(view.index_.LastQueryPointQueries()));
    return out;
  }

  /// The heaviest tracked event ids (requires
  /// options.heavy_hitter_capacity > 0; empty otherwise).
  std::vector<SpaceSaving::Entry> HeavyHitters(size_t k = 0) const {
    return hitters_.TopK(k);
  }
  const SpaceSaving& heavy_hitters() const { return hitters_; }

  /// Point queries the last BurstyEventQuery needed. On a live engine
  /// the search ran against the cached query view, so the counter is
  /// read from there.
  size_t LastQueryPointQueries() const {
    if (!finalized_ && live_view_) {
      return live_view_->index_.LastQueryPointQueries();
    }
    return index_.LastQueryPointQueries();
  }

  /// K = |Sigma|: ids must fall in [0, universe_size()).
  EventId universe_size() const { return options_.universe_size; }
  /// The configuration the engine was constructed with (plus any
  /// backpressure settings restored by Deserialize).
  const Options& options() const { return options_; }
  /// Occurrences ingested into the index so far (Lemma 5's N).
  Count TotalCount() const { return total_count_; }
  /// Accepted records still waiting in the re-order buffer (by count);
  /// they join TotalCount() once the watermark, or Finalize(), drains
  /// them into the index.
  Count BufferedCount() const { return buffered_count_; }
  /// Occurrences shed by the kDropOldest overflow policy — the
  /// measured accuracy cost of bounded backpressure.
  Count DroppedCount() const { return dropped_count_; }
  /// Times the kForceDrain policy advanced the watermark to shrink the
  /// buffer.
  uint64_t ForcedDrains() const { return forced_drains_; }
  /// Sketch-size cost model of the index (sum of cell sizes; excludes
  /// allocator overheads — see MemoryUsage() for resident cost).
  size_t SizeBytes() const { return index_.SizeBytes(); }

  /// Resident bytes across index, heavy-hitter summary, and re-order
  /// buffer (live entries; the heap's container capacity is not
  /// observable through std::priority_queue).
  size_t MemoryUsage() const {
    return sizeof(*this) - sizeof(index_) - sizeof(hitters_) +
           index_.MemoryUsage() + hitters_.MemoryUsage() +
           reorder_.size() * sizeof(Pending);
  }

  /// Applies the degradation ladder to the index's live cells (see
  /// CmPbe::Degrade); EffectivePointBound() widens accordingly.
  void Degrade(double gamma_factor) {
    index_.Degrade(gamma_factor);
    ++state_version_;
  }

  /// The POINT-answer error bound currently in force (Lemma 5 with
  /// every band escalation and degradation folded in).
  EffectiveErrorBound EffectivePointBound() const {
    const auto& leaf = index_.level(0);
    EffectiveErrorBound b;
    if (!leaf.options().identity_hash) {
      b.epsilon = std::exp(1.0) / static_cast<double>(leaf.width());
      b.delta = std::exp(-static_cast<double>(leaf.depth()));
    }
    b.cell_error = index_.MaxLeafCellError();
    b.point_bound =
        b.epsilon * static_cast<double>(total_count_) + 4.0 * b.cell_error;
    return b;
  }

  /// The bound actually carried by query answers: Effective-
  /// PointBound() of the view queries are served from, so on a live
  /// engine the buffered records count toward Lemma 5's N. Equals
  /// EffectivePointBound() once finalized.
  EffectiveErrorBound EffectiveAnswerBound() const {
    return QueryView().EffectivePointBound();
  }

  /// High-water timestamp of accepted data: the re-order watermark
  /// when a lateness window is configured, else the last ingested
  /// time. Snapshot answers are stamped with this.
  Timestamp Watermark() const { return std::max(watermark_, last_time_); }

  /// Publishes the engine's instantaneous gauges to the process-wide
  /// metrics registry: re-order depth, watermark lag, resident bytes,
  /// the effective POINT bound, and the leaf grid's worst-case
  /// collision mass. Counters stream continuously from the ingest and
  /// query paths; gauges that cost an index scan (bound, collision
  /// mass, resident bytes) are only refreshed here, so surfacing code
  /// (CLI `metrics`, the periodic stats line, bench snapshots) calls
  /// this right before reading the registry. No-op when compiled with
  /// BURSTHIST_NO_METRICS.
  void PublishMetrics() const {
    BURSTHIST_GAUGE(m_resident, obs::kEngineResidentBytes);
    BURSTHIST_GAUGE(m_bound, obs::kEffectivePointBound);
    BURSTHIST_GAUGE(m_cell_mass, obs::kCmpbeMaxCellMass);
    UpdateIngestGauges();
    m_resident.Set(static_cast<double>(MemoryUsage()));
    m_bound.Set(EffectivePointBound().point_bound);
    m_cell_mass.Set(static_cast<double>(index_.level(0).MaxCellMass()));
  }

  /// Read-only view of the dyadic index backing the engine.
  const DyadicBurstIndex<PbeT>& index() const { return index_; }

  void Serialize(BinaryWriter* w) const {
    w->Put<uint32_t>(0x42454e47);  // "BENG"
    // v1: no out-of-order state. v2: + watermark & reorder buffer.
    // v3: payload wrapped in a CRC32C frame (see CrcFrame).
    // v4: + backpressure configuration and shed counters.
    w->Put<uint32_t>(4);
    const size_t frame = CrcFrame::Begin(w);
    w->Put<uint64_t>(total_count_);
    w->Put<int64_t>(last_time_);
    w->Put<uint8_t>(started_ ? 1 : 0);
    w->Put<uint8_t>(finalized_ ? 1 : 0);
    // v2: the out-of-order state v1 silently dropped — an unfinalized
    // engine with max_lateness > 0 now round-trips losslessly.
    w->Put<int64_t>(watermark_);
    w->Put<uint64_t>(reorder_.size());
    auto pending = reorder_;  // heap drains in time order
    while (!pending.empty()) {
      const Pending& p = pending.top();
      w->Put<int64_t>(p.t);
      w->Put<uint32_t>(p.e);
      w->Put<uint64_t>(p.count);
      pending.pop();
    }
    // v4: the backpressure option and its counters travel with the
    // state so a restored engine keeps the same admission behavior and
    // its shed accounting stays honest across restarts.
    w->Put<uint64_t>(options_.max_reorder_events);
    w->Put<uint8_t>(static_cast<uint8_t>(options_.overflow_policy));
    w->Put<uint64_t>(dropped_count_);
    w->Put<uint64_t>(forced_drains_);
    index_.Serialize(w);
    hitters_.Serialize(w);
    CrcFrame::End(w, frame);
  }

  /// Restores into an engine constructed with the same options.
  /// Accepts v1 payloads (no re-order state: the buffer restores
  /// empty and the watermark snaps to last_time_), v2, the
  /// CRC32C-framed v3, and v4 (backpressure state; older payloads
  /// keep the constructed options and zero shed counters).
  Status Deserialize(BinaryReader* r) {
    uint32_t magic = 0, version = 0;
    uint8_t started = 0, finalized = 0;
    BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&version));
    if (magic != 0x42454e47) return Status::Corruption("bad engine magic");
    if (version < 1 || version > 4) {
      return Status::Corruption("bad engine version");
    }
    size_t payload_end = 0;
    if (version >= 3) {
      BURSTHIST_RETURN_IF_ERROR(CrcFrame::Enter(r, &payload_end));
    }
    BURSTHIST_RETURN_IF_ERROR(r->Get(&total_count_));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&last_time_));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&started));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&finalized));
    reorder_ = {};
    buffered_count_ = 0;
    watermark_ = last_time_;
    if (version >= 2) {
      BURSTHIST_RETURN_IF_ERROR(r->Get(&watermark_));
      uint64_t pending_n = 0;
      BURSTHIST_RETURN_IF_ERROR(r->Get(&pending_n));
      if (pending_n > r->remaining() / 20) {
        return Status::Corruption("pending count exceeds payload");
      }
      for (uint64_t i = 0; i < pending_n; ++i) {
        Pending p;
        BURSTHIST_RETURN_IF_ERROR(r->Get(&p.t));
        BURSTHIST_RETURN_IF_ERROR(r->Get(&p.e));
        BURSTHIST_RETURN_IF_ERROR(r->Get(&p.count));
        if (p.e >= options_.universe_size) {
          return Status::Corruption("buffered id exceeds universe size");
        }
        reorder_.push(p);
        buffered_count_ += p.count;
      }
    }
    dropped_count_ = 0;
    forced_drains_ = 0;
    if (version >= 4) {
      uint64_t max_reorder = 0, dropped = 0, forced = 0;
      uint8_t policy = 0;
      BURSTHIST_RETURN_IF_ERROR(r->Get(&max_reorder));
      BURSTHIST_RETURN_IF_ERROR(r->Get(&policy));
      BURSTHIST_RETURN_IF_ERROR(r->Get(&dropped));
      BURSTHIST_RETURN_IF_ERROR(r->Get(&forced));
      if (policy > 2) {
        return Status::Corruption("bad reorder overflow policy");
      }
      options_.max_reorder_events = static_cast<size_t>(max_reorder);
      options_.overflow_policy = static_cast<ReorderOverflowPolicy>(policy);
      dropped_count_ = dropped;
      forced_drains_ = forced;
    }
    BURSTHIST_RETURN_IF_ERROR(index_.Deserialize(r));
    BURSTHIST_RETURN_IF_ERROR(hitters_.Deserialize(r));
    if (version >= 3) {
      BURSTHIST_RETURN_IF_ERROR(CrcFrame::Leave(r, payload_end));
    }
    // The engine's lifecycle flag and the index cells must agree: a
    // blob claiming "live" over finalized cells would let a later
    // Append freeze-merge into frozen staircases, and "finalized" with
    // buffered records would drop them silently.
    if ((finalized != 0) != index_.level(0).finalized()) {
      return Status::Corruption("engine lifecycle disagrees with index");
    }
    if (finalized != 0 && !reorder_.empty()) {
      return Status::Corruption("finalized engine has buffered records");
    }
    started_ = started != 0;
    finalized_ = finalized != 0;
    ++state_version_;
    live_view_.reset();
    return Status::OK();
  }

 private:
  struct Pending {
    Timestamp t;
    EventId e;
    Count count;
    // Total order (not just by time) so the buffer drains — and hence
    // serializes — in one canonical sequence regardless of arrival
    // order; equal-time records are interchangeable for ingestion.
    bool operator>(const Pending& o) const {
      if (t != o.t) return t > o.t;
      if (e != o.e) return e > o.e;
      return count > o.count;
    }
  };

  void Ingest(EventId e, Timestamp t, Count count) {
    index_.Append(e, t, count);
    if (options_.heavy_hitter_capacity > 0) hitters_.Add(e, count);
    started_ = true;
    last_time_ = t;
    total_count_ += count;
    ++state_version_;
  }

  // The buffered (max_lateness > 0) admission sequence for one record:
  // watermark check, kReject pre-drain, observer tee, push, cap
  // enforcement, ripe drain. Shared verbatim by Append and the batch
  // path — out-of-order admission is stateful per record (the cap
  // policies fire on instantaneous buffer depth), so batching can only
  // amortize the metrics around this core, never the core itself.
  // Increments the reject counter on refusal; the caller owns the
  // append counter and the gauge refresh.
  Status BufferedAppendCore(EventId e, Timestamp t, Count count) {
    BURSTHIST_COUNTER(m_rejects, obs::kEngineAppendRejectsTotal);
    // Watermark semantics: anything older than (newest - lateness) has
    // already been flushed and cannot be accepted.
    if (started_ && t < watermark_ - options_.max_lateness) {
      m_rejects.Inc();
      return Status::OutOfRange("record arrived beyond max_lateness");
    }
    // Backpressure: a rejection must precede the observer so a refused
    // record is never logged; the shedding policies run after it so the
    // engine's state only changes once the record is durably accepted.
    if (options_.max_reorder_events > 0 &&
        reorder_.size() >= options_.max_reorder_events &&
        options_.overflow_policy == ReorderOverflowPolicy::kReject) {
      // A watermark-advancing record first flushes whatever its
      // timestamp proves ripe. Without this, a full buffer under a
      // stalled watermark could never recover: the fresh records that
      // would advance the watermark past the backlog would themselves
      // be refused. The advance sticks even if the record is then
      // rejected (monotone, like a force-drain; it is not logged
      // state, so replay determinism is unaffected).
      if (t > watermark_) {
        watermark_ = t;
        DrainReorderBuffer(watermark_ - options_.max_lateness);
      }
      if (reorder_.size() >= options_.max_reorder_events) {
        m_rejects.Inc();
        return Status::ResourceExhausted(
            "re-order buffer full (max_reorder_events)");
      }
    }
    if (observer_) {
      if (Status st = observer_(e, t, count); !st.ok()) {
        m_rejects.Inc();
        return st;
      }
    }
    reorder_.push(Pending{t, e, count});
    buffered_count_ += count;
    ++state_version_;
    watermark_ = started_ ? std::max(watermark_, t) : t;
    started_ = true;
    if (options_.max_reorder_events > 0) EnforceReorderCap();
    DrainReorderBuffer(watermark_ - options_.max_lateness);
    return Status::OK();
  }

  Status AppendBatchImpl(std::span<const WeightedRecord> records,
                         size_t* applied) {
    BURSTHIST_COUNTER(m_appends, obs::kEngineAppendsTotal);
    BURSTHIST_COUNTER(m_rejects, obs::kEngineAppendRejectsTotal);
    BURSTHIST_COUNTER(m_batches, obs::kEngineBatchAppendsTotal);
    BURSTHIST_SIZE_HISTOGRAM(m_size, obs::kEngineBatchSizeRecords);
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kEngineBatchAppendLatencySeconds);
    // The latency histogram SAMPLES one batch in 32: two clock reads
    // per batch would be a measurable share of a small batch's total
    // cost, and a 1/32 sample still pins down the latency distribution
    // for any sustained ingest. Counters and the size histogram stay
    // exact.
    std::optional<obs::TraceSpan> span;
    if ((batch_sample_seq_++ & 31u) == 0) {
      span.emplace(m_lat, "batch_append");
    }
    *applied = 0;
    m_batches.Inc();
    m_size.Observe(static_cast<double>(records.size()));
    if (records.empty()) return Status::OK();
    if (finalized_) {
      m_rejects.Inc();
      return Status::FailedPrecondition("engine already finalized");
    }
    if (options_.max_lateness != 0) {
      // Buffered path: replay the serial admission sequence exactly
      // (see BufferedAppendCore), amortizing only the metric counters
      // and gauge refresh to once per batch.
      for (size_t i = 0; i < records.size(); ++i) {
        const WeightedRecord& r = records[i];
        Status st = r.id >= options_.universe_size
                        ? Status::InvalidArgument(
                              "event id exceeds universe size")
                        : BufferedAppendCore(r.id, r.time, r.count);
        if (!st.ok()) {
          if (r.id >= options_.universe_size) m_rejects.Inc();
          *applied = i;
          m_appends.Inc(i);
          UpdateIngestGauges();
          return st;
        }
      }
      *applied = records.size();
      m_appends.Inc(records.size());
      UpdateIngestGauges();
      return Status::OK();
    }
    // Strictly-ordered fast path. One fused sweep finds the longest
    // applicable prefix (ids in range, times non-decreasing across the
    // batch and against the engine's last ingested time) AND coalesces
    // it into the SoA scratch arrays — writing scratch is not a state
    // change, so doing it before the observer tee is safe and saves a
    // second traversal of the 20-byte-stride record span.
    const size_t n = records.size();
    if (batch_ids_.size() < n) {
      batch_ids_.resize(n);
      batch_times_.resize(n);
      batch_counts_.resize(n);
    }
    size_t valid = 0;
    Status bad = Status::OK();
    Timestamp prev = started_ ? last_time_ : records.front().time;
    size_t m = 0;
    bool weighted = false;
    Count total = 0;
    // The open run lives in registers; the scratch arrays see one
    // store per merged entry, not one per record — on bursty input
    // that is nearly an order of magnitude fewer stores.
    EventId run_id = 0;
    Timestamp run_time = 0;
    Count run_count = 0;
    bool run_open = false;
    for (; valid < n; ++valid) {
      const WeightedRecord& r = records[valid];
      if (r.id >= options_.universe_size) {
        bad = Status::InvalidArgument("event id exceeds universe size");
        break;
      }
      if (r.time < prev) {
        bad = Status::OutOfRange("timestamps must be non-decreasing");
        break;
      }
      prev = r.time;
      total += r.count;
      if (run_open && run_id == r.id && run_time == r.time) {
        run_count += r.count;
        weighted = true;
      } else {
        if (run_open) {
          batch_ids_[m] = run_id;
          batch_times_[m] = run_time;
          batch_counts_[m] = run_count;
          ++m;
        }
        run_id = r.id;
        run_time = r.time;
        run_count = r.count;
        run_open = true;
        weighted |= r.count != 1;
      }
    }
    if (run_open) {
      batch_ids_[m] = run_id;
      batch_times_[m] = run_time;
      batch_counts_[m] = run_count;
      ++m;
    }
    // Observer tee over the applicable prefix, before any state
    // changes (a record is never ingested unless it was logged).
    size_t apply_n = valid;
    Status err = bad;
    if (apply_n > 0) {
      if (batch_observer_) {
        if (Status st = batch_observer_(records.first(apply_n)); !st.ok()) {
          // All-or-nothing tee: nothing was logged, apply nothing.
          apply_n = 0;
          err = st;
        }
      } else if (observer_) {
        for (size_t i = 0; i < apply_n; ++i) {
          const WeightedRecord& r = records[i];
          if (Status st = observer_(r.id, r.time, r.count); !st.ok()) {
            apply_n = i;
            err = st;
            break;
          }
        }
      }
    }
    if (apply_n == valid) {
      if (apply_n > 0) {
        ApplyCoalesced(m, weighted, total, records[apply_n - 1].time);
      }
    } else if (apply_n > 0) {
      // A per-record observer truncated the prefix mid-batch (rare):
      // the coalesced arrays cover too much, rebuild them for the
      // shorter span.
      IngestBatch(records.first(apply_n));
    }
    *applied = apply_n;
    m_appends.Inc(apply_n);
    if (!err.ok()) {
      m_rejects.Inc();
      return err;
    }
    return Status::OK();
  }

  // Bulk Ingest over a validated, time-ordered span: split the
  // records into parallel arrays once (structure of arrays), then one
  // level-major / row-major batch append through the dyadic index —
  // byte-identical to per-record Ingest because levels own disjoint
  // grids and grid rows own disjoint cells, so every cell still sees
  // its updates in record order. The scratch vectors persist across
  // batches to keep the hot path allocation-free.
  //
  // Consecutive records with equal (id, time) — the shape a burst
  // arrives in — are coalesced into one weighted entry during the SoA
  // split. This is exactly state-preserving, not an approximation:
  // every PBE cell merges an equal-timestamp Append into its open
  // buffer point (`buffer_.back().count += count`), so one Append of
  // the summed count lands on the identical stored point; SpaceSaving
  // is associative over consecutive same-key Adds through all three of
  // its cases (tracked, free slot, eviction). The coalesced batch
  // therefore replays to byte-identical state while paying the
  // level-by-row hash-and-dispatch fan-out once per run instead of
  // once per record — where the batched hot path's throughput win on
  // bursty streams comes from.
  void IngestBatch(std::span<const WeightedRecord> records) {
    const size_t n = records.size();
    if (batch_ids_.size() < n) {
      batch_ids_.resize(n);
      batch_times_.resize(n);
      batch_counts_.resize(n);
    }
    size_t m = 0;
    bool weighted = false;
    Count total = 0;
    for (size_t i = 0; i < n; ++i) {
      if (m > 0 && batch_ids_[m - 1] == records[i].id &&
          batch_times_[m - 1] == records[i].time) {
        batch_counts_[m - 1] += records[i].count;
        weighted = true;
      } else {
        batch_ids_[m] = records[i].id;
        batch_times_[m] = records[i].time;
        batch_counts_[m] = records[i].count;
        weighted |= records[i].count != 1;
        ++m;
      }
      total += records[i].count;
    }
    ApplyCoalesced(m, weighted, total, records.back().time);
  }

  // Applies the m coalesced entries sitting in the batch_* scratch
  // arrays: one level-major pass through the dyadic index, the heavy
  // hitters, then the running totals.
  void ApplyCoalesced(size_t m, bool weighted, Count total, Timestamp last) {
    index_.AppendBatch(batch_ids_.data(), batch_times_.data(),
                       weighted ? batch_counts_.data() : nullptr, m,
                       &batch_level_ids_, &batch_slots_, &batch_level_times_,
                       &batch_level_counts_);
    if (options_.heavy_hitter_capacity > 0) {
      for (size_t i = 0; i < m; ++i) {
        hitters_.Add(batch_ids_[i], batch_counts_[i]);
      }
    }
    started_ = true;
    last_time_ = last;
    total_count_ += total;
    ++state_version_;
  }

  // The engine value queries are answered from: *this once finalized,
  // else a cached FinalizedClone() rebuilt whenever state_version_
  // moved. The cache makes repeated queries between appends pay the
  // clone once; it is mutable state behind const query methods, so
  // queries share the engine's single-writer contract (concurrent
  // readers use ReadSnapshots instead).
  const BurstEngine& QueryView() const {
    if (finalized_) return *this;
    if (!live_view_ || live_view_version_ != state_version_) {
      live_view_ = std::make_shared<const BurstEngine>(FinalizedClone());
      live_view_version_ = state_version_;
    }
    return *live_view_;
  }

  // Flushes buffered records with timestamps <= up_to, in time order.
  void DrainReorderBuffer(Timestamp up_to) {
    while (!reorder_.empty() && reorder_.top().t <= up_to) {
      const Pending p = reorder_.top();
      reorder_.pop();
      buffered_count_ -= p.count;
      Ingest(p.e, p.t, p.count);
    }
  }

  // Sheds buffer entries down to max_reorder_events, after the newest
  // record was pushed (so the buffer momentarily holds cap + 1).
  // Shedding the OLDEST entries keeps ingestion monotone: the heap
  // drains in time order, so anything force-drained precedes — and
  // anything dropped is older than — every record still buffered.
  void EnforceReorderCap() {
    BURSTHIST_COUNTER(m_dropped, obs::kEngineDroppedRecordsTotal);
    BURSTHIST_COUNTER(m_forced, obs::kEngineForcedDrainsTotal);
    while (reorder_.size() > options_.max_reorder_events) {
      if (options_.overflow_policy == ReorderOverflowPolicy::kDropOldest) {
        const Pending p = reorder_.top();
        reorder_.pop();
        buffered_count_ -= p.count;
        dropped_count_ += p.count;
        m_dropped.Inc(p.count);
      } else {  // kForceDrain
        const Timestamp up_to = reorder_.top().t;
        DrainReorderBuffer(up_to);
        // Close the drained range to new arrivals: a record older than
        // up_to would otherwise buffer behind an already-ingested time
        // and break the index's append order when drained.
        if (watermark_ < up_to + options_.max_lateness) {
          watermark_ = up_to + options_.max_lateness;
        }
        ++forced_drains_;
        m_forced.Inc();
      }
    }
  }

  // Refreshes the cheap per-append gauges (buffer depth, watermark
  // lag). Called after every buffered Append and on Finalize; the
  // strictly-ordered fast path skips it (depth is always zero there).
  void UpdateIngestGauges() const {
    BURSTHIST_GAUGE(m_depth, obs::kEngineReorderDepth);
    BURSTHIST_GAUGE(m_lag, obs::kEngineWatermarkLag);
    m_depth.Set(static_cast<double>(reorder_.size()));
    m_lag.Set(reorder_.empty()
                  ? 0.0
                  : static_cast<double>(watermark_ - reorder_.top().t));
  }

  // Bulk path for AppendStream: validates the whole stream up front
  // (all-or-nothing, unlike the record-by-record path which ingests
  // the valid prefix), then builds the index over mutually exclusive
  // time ranges. The engine is left live: further Append calls and a
  // later Finalize behave exactly as after serial ingestion.
  Status AppendStreamParallel(const EventStream& stream) {
    const auto& records = stream.records();
    Timestamp prev = records.front().time;
    for (const auto& r : records) {
      if (r.id >= options_.universe_size) {
        return Status::InvalidArgument("event id exceeds universe size");
      }
      if (r.time < prev) {
        return Status::OutOfRange("timestamps must be non-decreasing");
      }
      prev = r.time;
    }
    if (observer_) {
      // Tee the whole validated stream before building: replaying the
      // log reproduces exactly what the bulk build ingests.
      for (const auto& r : records) {
        BURSTHIST_RETURN_IF_ERROR(observer_(r.id, r.time, 1));
      }
    }
    // Records at the stream's final timestamp are held back and
    // ingested serially: the bulk build freezes every cell's buffer
    // into its model, and a frozen staircase cannot merge another
    // arrival at its last corner's time — which a later live Append at
    // that same timestamp (legal after serial ingestion) would need.
    size_t bulk_end = records.size();
    while (bulk_end > 0 && records[bulk_end - 1].time == records.back().time) {
      --bulk_end;
    }
    const std::vector<EventRecord> bulk(records.begin(),
                                        records.begin() + bulk_end);
    index_ = BuildDyadicSegmentParallel<PbeT>(
        bulk, options_.universe_size, options_.grid, options_.cell,
        options_.ingest_threads, /*finalize=*/false);
    index_.set_prune_rule(options_.prune_rule);
    if (options_.heavy_hitter_capacity > 0) {
      for (size_t i = 0; i < bulk_end; ++i) hitters_.Add(records[i].id, 1);
    }
    started_ = !bulk.empty();
    last_time_ = bulk.empty() ? last_time_ : bulk.back().time;
    total_count_ += bulk.size();
    ++state_version_;
    for (size_t i = bulk_end; i < records.size(); ++i) {
      Ingest(records[i].id, records[i].time, 1);
    }
    BURSTHIST_COUNTER(m_appends, obs::kEngineAppendsTotal);
    m_appends.Inc(records.size());
    return Status::OK();
  }

  // Adapter presenting one event's leaf-level view to BurstyTimes.
  struct LeafModel {
    static constexpr bool kPiecewiseConstant = PbeT::kPiecewiseConstant;
    const CmPbe<PbeT>* grid;
    EventId e;
    double EstimateBurstiness(Timestamp t, Timestamp tau) const {
      return grid->EstimateBurstiness(e, t, tau);
    }
    std::vector<Timestamp> Breakpoints() const { return grid->Breakpoints(e); }
  };

  Options options_;
  DyadicBurstIndex<PbeT> index_;
  SpaceSaving hitters_;
  AppendObserver observer_;
  BatchAppendObserver batch_observer_;
  // Structure-of-arrays scratch for IngestBatch; reused across batches
  // so the steady-state batch path does not allocate.
  std::vector<EventId> batch_ids_;
  std::vector<Timestamp> batch_times_;
  std::vector<Count> batch_counts_;
  std::vector<EventId> batch_level_ids_;
  std::vector<Timestamp> batch_level_times_;
  std::vector<Count> batch_level_counts_;
  std::vector<uint32_t> batch_slots_;
  /// Rolling sequence for the 1-in-32 batch-latency sample.
  uint32_t batch_sample_seq_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      reorder_;
  Count buffered_count_ = 0;
  Count dropped_count_ = 0;
  uint64_t forced_drains_ = 0;
  bool started_ = false;
  bool finalized_ = false;
  Timestamp last_time_ = 0;
  Timestamp watermark_ = 0;
  Count total_count_ = 0;
  // Live-query view cache: mutation counter + the finalized clone
  // answering queries on an unfinalized engine (see QueryView()).
  uint64_t state_version_ = 0;
  mutable std::shared_ptr<const BurstEngine> live_view_;
  mutable uint64_t live_view_version_ = 0;
};

/// The paper's two configurations.
using BurstEngine1 = BurstEngine<Pbe1>;
using BurstEngine2 = BurstEngine<Pbe2>;

}  // namespace bursthist

#endif  // BURSTHIST_CORE_BURST_ENGINE_H_
