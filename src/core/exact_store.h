// The naive exact baseline (Section II-B of the paper).
//
// Stores every (event id, timestamp) pair — one sorted timestamp array
// per event — and answers all three query types exactly with binary
// search. Space is O(N); a POINT query is O(log n); BURSTY TIME is
// linear in the event's history; BURSTY EVENT scans all events. This
// is both the paper's baseline and the ground truth for the accuracy
// evaluation.

#ifndef BURSTHIST_CORE_EXACT_STORE_H_
#define BURSTHIST_CORE_EXACT_STORE_H_

#include <cstddef>
#include <vector>

#include "core/burst_queries.h"
#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {

/// Exact per-event view used by the generic BurstyTimes machinery.
class ExactEventModel {
 public:
  static constexpr bool kPiecewiseConstant = true;

  explicit ExactEventModel(const SingleEventStream* stream)
      : stream_(stream) {}

  double EstimateBurstiness(Timestamp t, Timestamp tau) const {
    return static_cast<double>(stream_->BurstinessAt(t, tau));
  }

  /// Distinct occurrence times (the exact staircase's corner times).
  std::vector<Timestamp> Breakpoints() const;

 private:
  const SingleEventStream* stream_;
};

/// Exact store over a universe of k event ids.
class ExactBurstStore {
 public:
  explicit ExactBurstStore(EventId universe_size);

  /// Loads a whole stream (ids must be < universe size).
  Status AppendStream(const EventStream& stream);

  /// Appends one occurrence. Precondition: id < universe size and t is
  /// non-decreasing per event.
  void Append(EventId e, Timestamp t);

  EventId universe_size() const {
    return static_cast<EventId>(streams_.size());
  }

  /// Exact POINT query b_e(t).
  Burstiness BurstinessAt(EventId e, Timestamp t, Timestamp tau) const;

  /// Exact cumulative frequency F_e(t).
  Count CumulativeFrequency(EventId e, Timestamp t) const;

  /// Exact BURSTY EVENT query: all e with b_e(t) >= theta, ascending.
  std::vector<EventId> BurstyEvents(Timestamp t, double theta,
                                    Timestamp tau) const;

  /// Exact BURSTY TIME query as maximal intervals.
  std::vector<TimeInterval> BurstyTimes(EventId e, double theta,
                                        Timestamp tau) const;

  /// Total occurrences stored (N).
  size_t TotalCount() const { return total_; }

  /// O(N) space of the baseline.
  size_t SizeBytes() const;

  const SingleEventStream& stream(EventId e) const { return streams_[e]; }

 private:
  std::vector<SingleEventStream> streams_;
  size_t total_ = 0;
};

}  // namespace bursthist

#endif  // BURSTHIST_CORE_EXACT_STORE_H_
