// Pre-computed burstiness index — the paper's indexed exact baseline.
//
// Section II-B: a BURSTY TIME query against raw storage costs O(n)
// "if burstiness is not pre-computed and stored and indexed, or
// O(log n) otherwise". This is the "otherwise": for a fixed burst
// span tau, precompute the piecewise-constant burstiness function of
// one event, store its pieces sorted by value, and answer
//   q(e, theta, tau)  ->  all pieces with b >= theta
// with a binary search over the value-sorted order plus output-sized
// merging. The trade-offs the paper calls out are explicit here: tau
// is frozen at build time (the PBEs keep it a query parameter) and
// the index stores O(n) pieces.

#ifndef BURSTHIST_CORE_BURSTINESS_INDEX_H_
#define BURSTHIST_CORE_BURSTINESS_INDEX_H_

#include <cstddef>
#include <vector>

#include "core/burst_queries.h"
#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {

/// Value-indexed exact burstiness pieces of one event at a fixed tau.
class BurstinessIndex {
 public:
  /// One maximal constant piece of b(t).
  struct Piece {
    TimeInterval span;
    Burstiness value = 0;
  };

  /// Precomputes the pieces of b(t) over the stream's support
  /// (extended by 2*tau past the last occurrence, after which b is
  /// identically zero).
  BurstinessIndex(const SingleEventStream& stream, Timestamp tau);

  Timestamp tau() const { return tau_; }
  size_t piece_count() const { return by_value_.size(); }

  /// Exact b(t); O(log n) binary search over time-ordered pieces.
  Burstiness BurstinessAt(Timestamp t) const;

  /// BURSTY TIME q(e, theta, tau): maximal intervals with b >= theta,
  /// in O(log n + answer * log answer) — binary search over the
  /// value-sorted pieces, then sort/merge only the qualifying ones.
  std::vector<TimeInterval> BurstyTimes(double theta) const;

  /// The largest burstiness value ever reached (0 for empty streams).
  Burstiness MaxBurstiness() const;

  size_t SizeBytes() const {
    return (by_value_.size() + by_time_.size()) * sizeof(Piece);
  }

 private:
  Timestamp tau_;
  std::vector<Piece> by_time_;   // ascending span.begin
  std::vector<Piece> by_value_;  // descending value
};

}  // namespace bursthist

#endif  // BURSTHIST_CORE_BURSTINESS_INDEX_H_
