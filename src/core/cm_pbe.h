// CM-PBE: a Count-Min grid of persistent burstiness estimators
// (Section IV of the paper).
//
// A d x w grid of PBE cells; element (e, t) updates one cell per row
// chosen by a pairwise-independent hash of e. Within a cell, event ids
// are discarded: collisions merge into one single-event stream whose
// cumulative curve upper-bounds every constituent event's curve. The
// per-cell PBE never overestimates its merged curve, so the two error
// sources pull in opposite directions; the final estimate takes the
// MEDIAN over rows (Section IV), with the classic Count-Min MIN kept
// as an option for the ablation study.
//
// Guarantee (Lemma 5): Pr[|b~_e(t) - b_e(t)| <= eps*N + 4*Delta]
// >= 1 - delta, with Delta replaced by gamma for CM-PBE-2.

#ifndef BURSTHIST_CORE_CM_PBE_H_
#define BURSTHIST_CORE_CM_PBE_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/pbe1.h"
#include "core/pbe2.h"
#include "hash/hash.h"
#include "obs/metrics.h"
#include "stream/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// How CM-PBE combines the d per-row estimates of F_e(t).
enum class CmEstimator : uint8_t {
  kMedian = 0,  ///< paper default: median over rows
  kMin = 1,     ///< classic Count-Min combination (ablation)
};

/// Grid sizing/seeding for CmPbe.
struct CmPbeOptions {
  /// Rows d = O(log 1/delta).
  size_t depth = 5;
  /// Cells per row w = O(1/epsilon).
  size_t width = 55;
  /// Hash seed.
  uint64_t seed = 0xb00573dULL;
  /// Row-combination rule.
  CmEstimator estimator = CmEstimator::kMedian;
  /// When true, cells are direct-mapped (cell = id % width) instead of
  /// hashed. With width >= universe size this makes the grid exact —
  /// the right configuration for the small upper levels of the dyadic
  /// index, where random hashing into a handful of cells would collide
  /// catastrophically.
  bool identity_hash = false;

  /// Sizing from the (epsilon, delta) guarantee of Theorem 1; the
  /// paper's experiments use epsilon = 0.05, delta = 0.2.
  static CmPbeOptions FromGuarantee(double epsilon, double delta,
                                    uint64_t seed = 0xb00573dULL) {
    assert(epsilon > 0.0 && epsilon < 1.0);
    assert(delta > 0.0 && delta < 1.0);
    CmPbeOptions o;
    o.depth = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(std::log(1.0 / delta))));
    o.width = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon)));
    o.seed = seed;
    return o;
  }
};

/// Count-Min grid of PBEs. PbeT is Pbe1 (CM-PBE-1) or Pbe2 (CM-PBE-2);
/// any type with the same duck-typed interface also works.
template <typename PbeT>
class CmPbe {
 public:
  using PbeOptions = typename PbeT::Options;

  CmPbe(const CmPbeOptions& options, const PbeOptions& pbe_options)
      : options_(options),
        pbe_options_(pbe_options),
        hashes_(options.depth, options.width, options.seed) {
    assert(options_.depth >= 1 && options_.width >= 1);
    cells_.reserve(options_.depth * options_.width);
    for (size_t i = 0; i < options_.depth * options_.width; ++i) {
      cells_.emplace_back(pbe_options_);
    }
  }

  /// Routes `count` occurrences of event e at time t into one cell per
  /// row. Times must be globally non-decreasing (stream order).
  void Append(EventId e, Timestamp t, Count count = 1) {
    for (size_t r = 0; r < options_.depth; ++r) {
      Cell(r, e).Append(t, count);
    }
    total_count_ += count;
  }

  /// Batch Append over parallel arrays (`n` records in stream order;
  /// `counts == nullptr` means every record has count 1). State is
  /// byte-identical to calling Append once per record: rows touch
  /// disjoint cells, so iterating row-major replays each cell's
  /// updates in the same record order the record-major serial loop
  /// would. The payoff is the hashing: all n slots of a row are
  /// computed first in one tight branch-free loop over the row's
  /// precomputed (a, b) (see PairwiseHash::HashIds), keeping the
  /// vectorizable arithmetic separate from the stateful per-cell
  /// appends. `slot_scratch` is caller-owned so hot paths reuse one
  /// allocation across batches.
  void AppendBatch(const EventId* ids, const Timestamp* times,
                   const Count* counts, size_t n,
                   std::vector<uint32_t>* slot_scratch) {
    if (n == 0) return;
    std::vector<uint32_t>& slots = *slot_scratch;
    if (slots.size() < n) slots.resize(n);
    // Identity slots are row-independent; hashed slots differ per row.
    if (options_.identity_hash) {
      const uint32_t width = static_cast<uint32_t>(options_.width);
      // Direct-mapped grids (dyadic upper levels) size width to the id
      // range, so the modulo is almost always a no-op — guard the
      // divide behind a perfectly-predicted compare.
      for (size_t i = 0; i < n; ++i) {
        slots[i] = ids[i] < width ? ids[i] : ids[i] % width;
      }
    }
    for (size_t r = 0; r < options_.depth; ++r) {
      if (!options_.identity_hash) {
        hashes_.HashRowIds(r, ids, n, slots.data());
      }
      PbeT* row_cells = cells_.data() + r * options_.width;
      // Batch-only lookahead the per-record path cannot have: the next
      // entry's slot is already computed, so issue its cell-header
      // prefetch while the current append's scattered loads retire.
      if (counts) {
        for (size_t i = 0; i < n; ++i) {
          if (i + 1 < n) __builtin_prefetch(row_cells + slots[i + 1]);
          row_cells[slots[i]].Append(times[i], counts[i]);
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (i + 1 < n) __builtin_prefetch(row_cells + slots[i + 1]);
          row_cells[slots[i]].Append(times[i], Count{1});
        }
      }
    }
    if (counts) {
      Count total = 0;
      for (size_t i = 0; i < n; ++i) total += counts[i];
      total_count_ += total;
    } else {
      total_count_ += n;
    }
  }

  /// Finalizes every cell. Required before estimate queries.
  void Finalize() {
    for (auto& c : cells_) c.Finalize();
    finalized_ = true;
  }
  bool finalized() const { return finalized_; }

  /// Row-scoped ingestion for parallel construction (rows are
  /// independent; see parallel_ingest.h). Does not update
  /// TotalCount() — the driver sets it once via SetTotalCount().
  void AppendRow(size_t row, EventId e, Timestamp t, Count count = 1) {
    Cell(row, e).Append(t, count);
  }
  void FinalizeRow(size_t row) {
    for (size_t c = 0; c < options_.width; ++c) {
      cells_[row * options_.width + c].Finalize();
    }
  }
  void MarkFinalized() { finalized_ = true; }
  void SetTotalCount(Count n) { total_count_ = n; }

  /// Splices a finalized `suffix` grid — same shape, seed, and hash
  /// mode, built over a strictly later time range — cell by cell onto
  /// this grid. Identical hash parameters mean every event routes to
  /// the same cells in both grids, so the cell-wise concatenation is
  /// exactly the grid a serial build with per-cell boundary resets
  /// would produce. This grid keeps its finalized/live state.
  void AbsorbSuffix(const CmPbe& suffix) {
    assert(suffix.finalized_ && "suffix must be finalized before absorb");
    assert(options_.depth == suffix.options_.depth &&
           options_.width == suffix.options_.width &&
           options_.seed == suffix.options_.seed &&
           options_.identity_hash == suffix.options_.identity_hash &&
           "grid shapes must match for cell-wise concatenation");
    for (size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].AbsorbSuffix(suffix.cells_[i]);
    }
    total_count_ += suffix.total_count_;
  }

  /// F~_e(t): median (or min) of the d per-row cell estimates.
  double EstimateCumulative(EventId e, Timestamp t) const {
    assert(finalized_);
    std::vector<double> est(options_.depth);
    for (size_t r = 0; r < options_.depth; ++r) {
      est[r] = Cell(r, e).EstimateCumulative(t);
    }
    return Combine(est);
  }

  /// b~_e(t) = F~_e(t) - 2 F~_e(t-tau) + F~_e(t-2tau) (Equation 2
  /// applied to the combined estimate).
  double EstimateBurstiness(EventId e, Timestamp t, Timestamp tau) const {
    return EstimateCumulative(e, t) - 2.0 * EstimateCumulative(e, t - tau) +
           EstimateCumulative(e, t - 2 * tau);
  }

  /// f~_e(t1, t2): estimated occurrences of e in the closed range
  /// [t1, t2] (Section II-A's temporal-substream frequency), clamped
  /// below at zero. Zero when t2 < t1.
  double EstimateFrequency(EventId e, Timestamp t1, Timestamp t2) const {
    if (t2 < t1) return 0.0;
    const double f =
        EstimateCumulative(e, t2) - EstimateCumulative(e, t1 - 1);
    return f < 0.0 ? 0.0 : f;
  }

  /// Union of the breakpoints of the d cells event e maps to, sorted
  /// and deduplicated — the candidate instants for BURSTY TIME queries.
  std::vector<Timestamp> Breakpoints(EventId e) const {
    assert(finalized_);
    std::vector<Timestamp> out;
    for (size_t r = 0; r < options_.depth; ++r) {
      auto bp = Cell(r, e).Breakpoints();
      out.insert(out.end(), bp.begin(), bp.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Total stream size N routed through the grid — the N of Lemma 5's
  /// eps*N + 4*Delta bound.
  Count TotalCount() const { return total_count_; }

  /// Rows d (failure probability delta = e^-d).
  size_t depth() const { return options_.depth; }
  /// Cells per row w (collision rate epsilon = e / w).
  size_t width() const { return options_.width; }
  /// The grid shape/seed configuration.
  const CmPbeOptions& options() const { return options_; }

  /// Heaviest single cell's routed occurrence mass — the worst-case
  /// collision mass a POINT answer can absorb before the median
  /// combine rejects it. Under uniform hashing this hovers near
  /// N * depth / (depth * width) = N / width; a hot-key-skewed stream
  /// pushes it toward N. An O(depth * width) scan; surfacing code
  /// publishes it as the bursthist_cmpbe_max_cell_mass gauge.
  Count MaxCellMass() const {
    Count worst = 0;
    for (const auto& c : cells_) worst = std::max(worst, c.TotalCount());
    return worst;
  }

  /// Column event e maps to in `row` — the public form of the routing
  /// function, so external tooling (the differential test harness, CLI
  /// diagnostics) can reconstruct which events share a cell and
  /// compute exact per-instance collision mass.
  size_t SlotOf(size_t row, EventId e) const { return Slot(row, e); }

  /// Read-only access to the cell at grid coordinates (row, slot).
  const PbeT& CellAt(size_t row, size_t slot) const {
    assert(row < options_.depth && slot < options_.width);
    return cells_[row * options_.width + slot];
  }

  /// Sum of cell sizes (the structure's space cost).
  size_t SizeBytes() const {
    size_t bytes = 0;
    for (const auto& c : cells_) bytes += c.SizeBytes();
    return bytes;
  }

  /// Resident bytes: every cell's MemoryUsage() (object + capacity
  /// overheads) plus the grid's own bookkeeping.
  size_t MemoryUsage() const {
    size_t bytes = sizeof(*this);
    for (const auto& c : cells_) bytes += c.MemoryUsage();
    return bytes;
  }

  /// Applies the degradation ladder to every live cell:
  /// PBE-2 cells widen their gamma band by `gamma_factor` for future
  /// windows, PBE-1 cells compact their buffers early (the factor is
  /// meaningless for a DP pass). The widened error is visible through
  /// MaxCellPointError() — reported, never silent. No-op once
  /// finalized.
  void Degrade(double gamma_factor) {
    if (finalized_) return;
    for (auto& c : cells_) c.Degrade(gamma_factor);
  }

  /// Largest per-cell point-error bound in force anywhere in the grid
  /// — the "Delta" (or gamma) of Lemma 5's eps*N + 4*Delta with every
  /// escalation and degradation folded in. Combined with the grid's
  /// (eps, delta) sizing this is the honest error bound for answers
  /// served right now.
  double MaxCellPointError() const {
    double worst = 0.0;
    for (const auto& c : cells_) {
      worst = std::max(worst, c.PointErrorBound());
    }
    return worst;
  }

  void Serialize(BinaryWriter* w) const {
    w->Put<uint32_t>(0x434d5042);  // "CMPB"
    // v1: bare payload. v2: CRC32C-framed payload (see CrcFrame).
    w->Put<uint32_t>(2);
    const size_t frame = CrcFrame::Begin(w);
    w->Put<uint64_t>(options_.depth);
    w->Put<uint64_t>(options_.width);
    w->Put<uint64_t>(options_.seed);
    w->Put<uint8_t>(static_cast<uint8_t>(options_.estimator));
    w->Put<uint8_t>(options_.identity_hash ? 1 : 0);
    w->Put<uint64_t>(total_count_);
    w->Put<uint8_t>(finalized_ ? 1 : 0);
    for (const auto& c : cells_) c.Serialize(w);
    CrcFrame::End(w, frame);
  }

  Status Deserialize(BinaryReader* r) {
    uint32_t magic = 0, version = 0;
    BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&version));
    if (magic != 0x434d5042) return Status::Corruption("bad CM-PBE magic");
    if (version != 1 && version != 2) {
      return Status::Corruption("bad CM-PBE version");
    }
    size_t payload_end = 0;
    if (version >= 2) {
      BURSTHIST_RETURN_IF_ERROR(CrcFrame::Enter(r, &payload_end));
    }
    uint64_t depth = 0, width = 0, seed = 0, total = 0;
    uint8_t estimator = 0, identity = 0, finalized = 0;
    BURSTHIST_RETURN_IF_ERROR(r->Get(&depth));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&width));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&seed));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&estimator));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&identity));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&total));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&finalized));
    if (estimator > 1) return Status::Corruption("bad CM-PBE estimator");
    if (depth == 0 || width == 0 || depth > (1ULL << 20) ||
        width > (1ULL << 40)) {
      return Status::Corruption("implausible CM-PBE grid shape");
    }
    // Every cell's serialized form is at least 8 bytes (magic +
    // version); a shape whose cell count cannot fit in the remaining
    // payload is corrupt. Checked before reserving so a hostile blob
    // cannot force a multi-terabyte allocation.
    if (depth * width > r->remaining() / 8 + 1) {
      return Status::Corruption("CM-PBE cell count exceeds payload");
    }
    options_.depth = static_cast<size_t>(depth);
    options_.width = static_cast<size_t>(width);
    options_.seed = seed;
    options_.estimator = static_cast<CmEstimator>(estimator);
    options_.identity_hash = identity != 0;
    total_count_ = total;
    finalized_ = finalized != 0;
    hashes_ = HashFamily(options_.depth, options_.width, options_.seed);
    cells_.clear();
    cells_.reserve(options_.depth * options_.width);
    for (size_t i = 0; i < options_.depth * options_.width; ++i) {
      cells_.emplace_back(pbe_options_);
      BURSTHIST_RETURN_IF_ERROR(cells_.back().Deserialize(r));
      // Appends fan out to one cell per row, so every cell shares the
      // grid's lifecycle; a blob disagreeing with itself here would
      // later let Append/Finalize reach an already-frozen cell.
      if (cells_.back().finalized() != finalized_) {
        return Status::Corruption("CM-PBE cell lifecycle disagrees with grid");
      }
    }
    if (version >= 2) {
      BURSTHIST_RETURN_IF_ERROR(CrcFrame::Leave(r, payload_end));
    }
    return Status::OK();
  }

 private:
  size_t Slot(size_t row, EventId e) const {
    return options_.identity_hash ? static_cast<size_t>(e % options_.width)
                                  : static_cast<size_t>(hashes_.Hash(row, e));
  }
  PbeT& Cell(size_t row, EventId e) {
    return cells_[row * options_.width + Slot(row, e)];
  }
  const PbeT& Cell(size_t row, EventId e) const {
    return cells_[row * options_.width + Slot(row, e)];
  }

  double Combine(std::vector<double>& est) const {
    // Live accuracy proxy: the spread of the per-row estimates being
    // combined. Rows of a hashed grid disagree exactly by their
    // collision mass, so a widening spread is an early warning that
    // answers are drifting — without an exact oracle to compare
    // against. Identity-hashed (exact) grids are skipped: their rows
    // agree by construction and would mask the leaf signal.
    if (!options_.identity_hash) {
      BURSTHIST_GAUGE(m_spread, obs::kCmpbeEstimateSpread);
      const auto [lo, hi] = std::minmax_element(est.begin(), est.end());
      m_spread.Set(*hi - *lo);
    }
    if (options_.estimator == CmEstimator::kMin) {
      return *std::min_element(est.begin(), est.end());
    }
    // Median over rows. For even depth we take the LOWER middle:
    // collisions can only push a row's estimate up (the cell's merged
    // curve dominates the queried event's), while the cell's own
    // undershoot is bounded by Delta/gamma — so rounding the median
    // down rejects collision outliers at no cost to the lower bound.
    const size_t mid = (est.size() - 1) / 2;
    std::nth_element(est.begin(), est.begin() + mid, est.end());
    return est[mid];
  }

  CmPbeOptions options_;
  PbeOptions pbe_options_;
  HashFamily hashes_;
  std::vector<PbeT> cells_;  // row-major depth x width
  Count total_count_ = 0;
  bool finalized_ = false;
};

/// The two named configurations of the paper.
using CmPbe1 = CmPbe<Pbe1>;
using CmPbe2 = CmPbe<Pbe2>;

}  // namespace bursthist

#endif  // BURSTHIST_CORE_CM_PBE_H_
