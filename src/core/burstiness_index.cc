#include "core/burstiness_index.h"

#include <algorithm>

namespace bursthist {

BurstinessIndex::BurstinessIndex(const SingleEventStream& stream,
                                 Timestamp tau)
    : tau_(tau) {
  if (stream.empty()) return;
  // b(t) changes only at occurrence times shifted by {0, tau, 2tau}.
  std::vector<Timestamp> breakpoints;
  const auto& times = stream.times();
  breakpoints.reserve(times.size() * 3);
  for (Timestamp t : times) {
    breakpoints.push_back(t);
    breakpoints.push_back(t + tau);
    breakpoints.push_back(t + 2 * tau);
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                    breakpoints.end());

  // One piece per inter-breakpoint gap, merging equal-valued
  // neighbours.
  for (size_t i = 0; i < breakpoints.size(); ++i) {
    const Timestamp begin = breakpoints[i];
    const Timestamp end = (i + 1 < breakpoints.size())
                              ? breakpoints[i + 1] - 1
                              : breakpoints[i];
    const Burstiness v = stream.BurstinessAt(begin, tau_);
    if (!by_time_.empty() && by_time_.back().value == v &&
        by_time_.back().span.end + 1 == begin) {
      by_time_.back().span.end = end;
    } else {
      by_time_.push_back(Piece{TimeInterval{begin, end}, v});
    }
  }
  by_value_ = by_time_;
  std::sort(by_value_.begin(), by_value_.end(),
            [](const Piece& a, const Piece& b) { return a.value > b.value; });
}

Burstiness BurstinessIndex::BurstinessAt(Timestamp t) const {
  auto it = std::upper_bound(
      by_time_.begin(), by_time_.end(), t,
      [](Timestamp v, const Piece& p) { return v < p.span.begin; });
  if (it == by_time_.begin()) return 0;
  const Piece& p = *std::prev(it);
  return t <= p.span.end ? p.value : 0;
}

std::vector<TimeInterval> BurstinessIndex::BurstyTimes(double theta) const {
  // All pieces with value >= theta form a prefix of by_value_.
  auto end = std::lower_bound(
      by_value_.begin(), by_value_.end(), theta,
      [](const Piece& p, double th) {
        return static_cast<double>(p.value) >= th;
      });
  std::vector<TimeInterval> spans;
  spans.reserve(static_cast<size_t>(end - by_value_.begin()));
  for (auto it = by_value_.begin(); it != end; ++it) {
    spans.push_back(it->span);
  }
  std::sort(spans.begin(), spans.end(),
            [](const TimeInterval& a, const TimeInterval& b) {
              return a.begin < b.begin;
            });
  std::vector<TimeInterval> out;
  for (const auto& s : spans) {
    internal::PushInterval(s.begin, s.end, &out);
  }
  return out;
}

Burstiness BurstinessIndex::MaxBurstiness() const {
  return by_value_.empty() ? 0 : by_value_.front().value;
}

}  // namespace bursthist
