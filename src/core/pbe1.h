// PBE-1: persistent burstiness estimation with buffering
// (Section III-A of the paper).
//
// The estimator ingests one event's occurrences in timestamp order and
// maintains the exact staircase curve of the current buffer (up to
// `buffer_points` distinct timestamps). When the buffer fills, the
// optimal-staircase dynamic program compresses it to `budget_points`
// corner points (or to the fewest points meeting `error_cap`), which
// are appended to the persistent model; compression restarts the
// buffer. The persistent model therefore never overestimates F(t),
// and Lemma 1 bounds the burstiness estimation error by 4 * Delta
// where Delta is the DP's area error.

#ifndef BURSTHIST_CORE_PBE1_H_
#define BURSTHIST_CORE_PBE1_H_

#include <cstddef>
#include <vector>

#include "pla/optimal_staircase.h"
#include "pla/staircase_model.h"
#include "stream/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Construction parameters for Pbe1.
struct Pbe1Options {
  /// Buffer capacity n: number of distinct-timestamp corner points
  /// accumulated before a compression pass (paper default 1500).
  size_t buffer_points = 1500;

  /// Per-buffer point budget eta (used when error_cap < 0). The ratio
  /// kappa = budget_points / buffer_points is the space reduction
  /// factor (Section III-C).
  size_t budget_points = 120;

  /// When >= 0, compress each buffer to the fewest points whose area
  /// error does not exceed this cap instead of using budget_points.
  double error_cap = -1.0;
};

/// Buffered persistent burstiness estimator for a single event stream.
///
/// Usage: Append() occurrences in non-decreasing time order, then
/// Finalize() once before issuing estimate queries (or query a
/// Snapshot() while ingestion continues).
class Pbe1 {
 public:
  using Options = Pbe1Options;

  /// True: F~ and hence b~ are piecewise-constant between breakpoints.
  static constexpr bool kPiecewiseConstant = true;

  explicit Pbe1(const Options& options = Options());

  /// Adds `count` occurrences at time t (t must be >= the last
  /// appended time). Must not be called after Finalize().
  void Append(Timestamp t, Count count = 1);

  /// Compresses the residual buffer (with a proportionally scaled
  /// budget) and freezes the structure. Idempotent.
  void Finalize();

  /// True once Finalize() ran; estimate queries require it.
  bool finalized() const { return finalized_; }

  /// Early buffer compaction under memory pressure: compresses the
  /// open buffer into the persistent model now (releasing the buffer's
  /// capacity) instead of waiting for it to fill. The last buffered
  /// point is retained so a subsequent Append at the same timestamp
  /// still merges. Each compaction is a normal DP pass over fewer than
  /// buffer_points points with a proportionally scaled budget, so the
  /// Lemma 1 bound (4 * MaxBufferAreaError()) is unchanged in form —
  /// only the number of flush boundaries grows. No-op when finalized
  /// or when the buffer holds fewer than two points.
  void CompactEarly();

  /// A finalized copy for querying mid-stream.
  Pbe1 Snapshot() const;

  /// Splices a finalized `suffix` built over a strictly later time
  /// range (from a zero running count) onto this estimator. The open
  /// buffer is compressed first — the same boundary reset Finalize()
  /// performs — so every buffer still spans at most `buffer_points`
  /// points and the per-buffer DP error bound (Lemma 1) is preserved.
  /// This estimator keeps its finalized/live state; error statistics
  /// accumulate across both halves.
  void AbsorbSuffix(const Pbe1& suffix);

  /// F~(t). Precondition: finalized().
  double EstimateCumulative(Timestamp t) const;

  /// b~(t) = F~(t) - 2 F~(t-tau) + F~(t-2tau). Precondition:
  /// finalized().
  double EstimateBurstiness(Timestamp t, Timestamp tau) const;

  /// Model breakpoints (corner times). Precondition: finalized().
  std::vector<Timestamp> Breakpoints() const;

  /// Total occurrences ingested (N).
  Count TotalCount() const { return running_count_; }

  /// Retained corner points.
  size_t PointCount() const { return model_.size() + buffer_.size(); }

  /// Sum of per-buffer DP area errors.
  double TotalAreaError() const { return total_area_error_; }

  /// Largest single-buffer DP area error. Any pointwise deviation of
  /// F~ lies within one buffer, so |b~(t) - b(t)| <= 4 * this value
  /// for every t (the pointwise form of Lemma 1's 4*Delta bound).
  double MaxBufferAreaError() const { return max_buffer_area_error_; }

  /// Largest single-buffer DP area error under its duck-typed name:
  /// the per-cell "Delta or gamma" bound the governor and the grid's
  /// effective-bound reporting read uniformly from Pbe1 and Pbe2.
  double PointErrorBound() const { return max_buffer_area_error_; }

  /// Degradation hook with the uniform cell signature (see
  /// CmPbe::Degrade): PBE-1 sheds memory by compacting its buffer
  /// early; the widening factor only applies to PBE-2's gamma band.
  void Degrade(double /*gamma_factor*/) { CompactEarly(); }

  /// Bytes of retained state (model + live buffer).
  size_t SizeBytes() const;

  /// Resident bytes including object and vector-capacity overheads —
  /// what the structure actually costs the process, as opposed to
  /// SizeBytes()'s sketch-size cost model.
  size_t MemoryUsage() const;

  /// Writes the versioned, delta+varint-coded payload (docs/FORMAT.md).
  /// Error statistics serialize too, so a reloaded estimator reports
  /// the same MaxBufferAreaError() bound.
  void Serialize(BinaryWriter* w) const;

  /// Replaces this estimator with the serialized state; returns
  /// Corruption (leaving the object unspecified but destructible) on a
  /// malformed payload.
  Status Deserialize(BinaryReader* r);

 private:
  void CompressBuffer(size_t budget);
  void CompressResidual();

  Options options_;
  StaircaseModel model_;
  std::vector<CurvePoint> buffer_;
  Count running_count_ = 0;
  double total_area_error_ = 0.0;
  double max_buffer_area_error_ = 0.0;
  bool finalized_ = false;
};

}  // namespace bursthist

#endif  // BURSTHIST_CORE_PBE1_H_
