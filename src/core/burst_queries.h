// BURSTY TIME query machinery shared by every estimator (Section V).
//
// For any model whose cumulative estimate F~ is piecewise-linear (or
// piecewise-constant) between breakpoints, the burstiness estimate
// b~(t) = F~(t) - 2 F~(t-tau) + F~(t-2tau) is itself piecewise-linear
// with breakpoints at {x, x+tau, x+2tau} for every model breakpoint x.
// A BURSTY TIME query therefore only needs one point query per
// candidate breakpoint plus a threshold-crossing search inside each
// linear piece — cost linear in the model size, not the history
// length.

#ifndef BURSTHIST_CORE_BURST_QUERIES_H_
#define BURSTHIST_CORE_BURST_QUERIES_H_

#include <algorithm>
#include <vector>

#include "stream/types.h"

namespace bursthist {

/// A maximal inclusive time range where a predicate holds.
struct TimeInterval {
  Timestamp begin = 0;
  Timestamp end = 0;

  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

namespace internal {

/// Candidate instants where b~ can change slope: every model
/// breakpoint shifted by 0, tau, and 2*tau, sorted and deduplicated.
inline std::vector<Timestamp> BurstinessBreakpoints(
    const std::vector<Timestamp>& model_breakpoints, Timestamp tau) {
  std::vector<Timestamp> out;
  out.reserve(model_breakpoints.size() * 3);
  for (Timestamp x : model_breakpoints) {
    out.push_back(x);
    out.push_back(x + tau);
    out.push_back(x + 2 * tau);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Appends [begin, end] to `out`, merging with the previous interval
/// when adjacent or overlapping.
inline void PushInterval(Timestamp begin, Timestamp end,
                         std::vector<TimeInterval>* out) {
  if (!out->empty() && begin <= out->back().end + 1) {
    out->back().end = std::max(out->back().end, end);
    return;
  }
  out->push_back(TimeInterval{begin, end});
}

}  // namespace internal

/// Reports all maximal intervals within the model's support where
/// b~(t) >= theta, for any model exposing
///   double EstimateBurstiness(Timestamp, Timestamp) const;
///   std::vector<Timestamp> Breakpoints() const;
/// and a static constexpr bool kPiecewiseConstant.
///
/// The burstiness estimate is evaluated on
/// [first breakpoint, last breakpoint + 2*tau]; outside that range it
/// is identically zero (assuming theta > 0).
template <typename Model>
std::vector<TimeInterval> BurstyTimes(const Model& model, double theta,
                                      Timestamp tau) {
  std::vector<TimeInterval> out;
  const std::vector<Timestamp> model_bps = model.Breakpoints();
  if (model_bps.empty()) return out;

  std::vector<Timestamp> cands =
      internal::BurstinessBreakpoints(model_bps, tau);
  // Close the domain so the final piece is a bounded interval.
  cands.push_back(cands.back() + 1);

  auto value = [&](Timestamp t) { return model.EstimateBurstiness(t, tau); };

  for (size_t i = 0; i + 1 < cands.size(); ++i) {
    const Timestamp lo = cands[i];
    const Timestamp hi = cands[i + 1] - 1;  // piece is [lo, hi]
    const double vlo = value(lo);
    if constexpr (Model::kPiecewiseConstant) {
      if (vlo >= theta) internal::PushInterval(lo, hi, &out);
      continue;
    }
    const double vhi = value(hi);
    const bool in_lo = vlo >= theta;
    const bool in_hi = vhi >= theta;
    if (in_lo && in_hi) {
      internal::PushInterval(lo, hi, &out);
    } else if (in_lo != in_hi) {
      // b~ is linear (hence monotone) on [lo, hi]: binary-search the
      // first timestamp where the predicate flips.
      Timestamp a = lo, b = hi;
      while (a + 1 < b) {
        const Timestamp mid = a + (b - a) / 2;
        if ((value(mid) >= theta) == in_lo) {
          a = mid;
        } else {
          b = mid;
        }
      }
      if (in_lo) {
        internal::PushInterval(lo, a, &out);
      } else {
        internal::PushInterval(b, hi, &out);
      }
    }
  }
  return out;
}

/// Convenience: true if t falls inside any of the intervals.
inline bool Covers(const std::vector<TimeInterval>& intervals, Timestamp t) {
  for (const auto& iv : intervals) {
    if (t >= iv.begin && t <= iv.end) return true;
  }
  return false;
}

}  // namespace bursthist

#endif  // BURSTHIST_CORE_BURST_QUERIES_H_
