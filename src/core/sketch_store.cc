#include "core/sketch_store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace bursthist {

namespace {

constexpr uint32_t kFileMagic = 0x42535354;  // "BSST"
constexpr uint32_t kFileVersion = 1;

// Serialized engine configuration (everything a loader needs to
// reconstruct the engine before feeding it the payload).
struct StoredConfig {
  uint8_t kind = 1;
  EventId universe = 1;
  uint64_t grid_depth = 2, grid_width = 55, grid_seed = 0;
  uint8_t estimator = 0;
  uint8_t prune_rule = 0;
  uint64_t heavy_capacity = 0;
  uint64_t buffer_points = 1500, budget_points = 120;  // PBE-1
  double error_cap = -1.0;                             // PBE-1
  double gamma = 8.0;                                  // PBE-2
  uint64_t max_polygon_vertices = 0;                   // PBE-2
};

void PutConfig(BinaryWriter* w, const StoredConfig& c) {
  w->Put(kFileMagic);
  w->Put(kFileVersion);
  w->Put(c.kind);
  w->Put(c.universe);
  w->Put(c.grid_depth);
  w->Put(c.grid_width);
  w->Put(c.grid_seed);
  w->Put(c.estimator);
  w->Put(c.prune_rule);
  w->Put(c.heavy_capacity);
  w->Put(c.buffer_points);
  w->Put(c.budget_points);
  w->Put(c.error_cap);
  w->Put(c.gamma);
  w->Put(c.max_polygon_vertices);
}

Status GetConfig(BinaryReader* r, StoredConfig* c) {
  uint32_t magic = 0, version = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&version));
  if (magic != kFileMagic) return Status::Corruption("not a sketch file");
  if (version != kFileVersion) {
    return Status::Corruption("unsupported sketch file version");
  }
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->kind));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->universe));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->grid_depth));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->grid_width));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->grid_seed));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->estimator));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->prune_rule));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->heavy_capacity));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->buffer_points));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->budget_points));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->error_cap));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->gamma));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&c->max_polygon_vertices));
  if (c->kind != 1 && c->kind != 2) {
    return Status::Corruption("unknown sketch kind");
  }
  if (c->universe == 0 || c->estimator > 1 || c->prune_rule > 1) {
    return Status::Corruption("implausible sketch configuration");
  }
  // The engine constructor allocates one cell per dyadic grid slot
  // and reserves heavy_capacity tracker entries, all before the
  // payload's own (shape-checked) Deserialize runs — so the shape
  // itself must be bounded by the payload here. Every cell serializes
  // to >= 8 bytes.
  if (c->grid_depth == 0 || c->grid_width == 0 ||
      DyadicIndexCellCount(c->universe, c->grid_depth, c->grid_width) >
          r->remaining() / 8 + 1 ||
      c->heavy_capacity > (uint64_t{1} << 20)) {
    return Status::Corruption("implausible sketch configuration");
  }
  return Status::OK();
}

template <typename PbeT>
StoredConfig ConfigOf(const BurstEngineOptions<PbeT>& o, int kind) {
  StoredConfig c;
  c.kind = static_cast<uint8_t>(kind);
  c.universe = o.universe_size;
  c.grid_depth = o.grid.depth;
  c.grid_width = o.grid.width;
  c.grid_seed = o.grid.seed;
  c.estimator = static_cast<uint8_t>(o.grid.estimator);
  c.prune_rule = static_cast<uint8_t>(o.prune_rule);
  c.heavy_capacity = o.heavy_hitter_capacity;
  if constexpr (std::is_same_v<PbeT, Pbe1>) {
    c.buffer_points = o.cell.buffer_points;
    c.budget_points = o.cell.budget_points;
    c.error_cap = o.cell.error_cap;
  } else {
    c.gamma = o.cell.gamma;
    c.max_polygon_vertices = o.cell.max_polygon_vertices;
  }
  return c;
}

template <typename PbeT>
BurstEngineOptions<PbeT> OptionsOf(const StoredConfig& c) {
  BurstEngineOptions<PbeT> o;
  o.universe_size = c.universe;
  o.grid.depth = static_cast<size_t>(c.grid_depth);
  o.grid.width = static_cast<size_t>(c.grid_width);
  o.grid.seed = c.grid_seed;
  o.grid.estimator = static_cast<CmEstimator>(c.estimator);
  o.prune_rule = static_cast<DyadicPruneRule>(c.prune_rule);
  o.heavy_hitter_capacity = static_cast<size_t>(c.heavy_capacity);
  if constexpr (std::is_same_v<PbeT, Pbe1>) {
    o.cell.buffer_points = static_cast<size_t>(c.buffer_points);
    o.cell.budget_points = static_cast<size_t>(c.budget_points);
    o.cell.error_cap = c.error_cap;
  } else {
    o.cell.gamma = c.gamma;
    o.cell.max_polygon_vertices =
        static_cast<size_t>(c.max_polygon_vertices);
  }
  return o;
}

Status EnsureDirectory(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::InvalidArgument(path + " exists and is not a directory");
    }
    return Status::OK();
  }
  if (::mkdir(path.c_str(), 0755) != 0) {
    return Status::Internal("cannot create store directory " + path);
  }
  return Status::OK();
}

}  // namespace

SketchStore::SketchStore(std::string directory)
    : directory_(std::move(directory)) {}

bool SketchStore::ValidName(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (char ch : name) {
    const auto u = static_cast<unsigned char>(ch);
    if (!std::isalnum(u) && ch != '.' && ch != '_' && ch != '-') return false;
  }
  return true;
}

std::string SketchStore::SketchPath(const std::string& name) const {
  return directory_ + "/" + name + ".sketch";
}

std::string SketchStore::ManifestPath() const {
  return directory_ + "/MANIFEST";
}

Status SketchStore::WriteManifest(
    const std::vector<SketchInfo>& entries) const {
  std::string text;
  for (const auto& e : entries) {
    text += e.name + " " + std::to_string(e.kind) + "\n";
  }
  return WriteFile(ManifestPath(),
                   std::vector<uint8_t>(text.begin(), text.end()));
}

Result<std::vector<SketchInfo>> SketchStore::List() const {
  auto bytes = ReadFile(ManifestPath());
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return std::vector<SketchInfo>{};  // empty store
    }
    return bytes.status();
  }
  std::vector<SketchInfo> out;
  std::string text(bytes.value().begin(), bytes.value().end());
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::Corruption("malformed manifest line: " + line);
    }
    SketchInfo info;
    info.name = line.substr(0, space);
    info.kind = std::atoi(line.c_str() + space + 1);
    if (!ValidName(info.name) || (info.kind != 1 && info.kind != 2)) {
      return Status::Corruption("malformed manifest entry: " + line);
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const SketchInfo& a, const SketchInfo& b) {
              return a.name < b.name;
            });
  return out;
}

template <typename PbeT>
Status SketchStore::SaveImpl(const std::string& name,
                             const BurstEngine<PbeT>& engine, int kind) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid sketch name: " + name);
  }
  if (!engine.finalized()) {
    return Status::FailedPrecondition("engine must be finalized before Save");
  }
  BURSTHIST_RETURN_IF_ERROR(EnsureDirectory(directory_));

  BinaryWriter w;
  PutConfig(&w, ConfigOf(engine.options(), kind));
  engine.Serialize(&w);
  BURSTHIST_RETURN_IF_ERROR(WriteFile(SketchPath(name), w.bytes()));

  auto list = List();
  BURSTHIST_RETURN_IF_ERROR(list.status());
  std::vector<SketchInfo> entries = std::move(list).value();
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const SketchInfo& e) { return e.name == name; });
  if (it == entries.end()) {
    entries.push_back(SketchInfo{name, kind});
  } else {
    it->kind = kind;
  }
  std::sort(entries.begin(), entries.end(),
            [](const SketchInfo& a, const SketchInfo& b) {
              return a.name < b.name;
            });
  return WriteManifest(entries);
}

Status SketchStore::Save(const std::string& name, const BurstEngine1& engine) {
  return SaveImpl(name, engine, 1);
}

Status SketchStore::Save(const std::string& name, const BurstEngine2& engine) {
  return SaveImpl(name, engine, 2);
}

template <typename PbeT>
Result<BurstEngine<PbeT>> SketchStore::LoadImpl(const std::string& name,
                                                int expect_kind) const {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid sketch name: " + name);
  }
  auto bytes = ReadFile(SketchPath(name));
  if (!bytes.ok()) return bytes.status();
  BinaryReader r(bytes.value());
  StoredConfig c;
  BURSTHIST_RETURN_IF_ERROR(GetConfig(&r, &c));
  if (c.kind != expect_kind) {
    return Status::InvalidArgument(
        "sketch '" + name + "' holds CM-PBE-" + std::to_string(c.kind) +
        " cells; use the matching loader");
  }
  BurstEngine<PbeT> engine(OptionsOf<PbeT>(c));
  BURSTHIST_RETURN_IF_ERROR(engine.Deserialize(&r));
  return engine;
}

Result<BurstEngine1> SketchStore::LoadEngine1(const std::string& name) const {
  return LoadImpl<Pbe1>(name, 1);
}

Result<BurstEngine2> SketchStore::LoadEngine2(const std::string& name) const {
  return LoadImpl<Pbe2>(name, 2);
}

Status SketchStore::Remove(const std::string& name) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid sketch name: " + name);
  }
  auto list = List();
  BURSTHIST_RETURN_IF_ERROR(list.status());
  std::vector<SketchInfo> entries = std::move(list).value();
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const SketchInfo& e) { return e.name == name; });
  if (it == entries.end()) {
    return Status::NotFound("no sketch named " + name);
  }
  entries.erase(it);
  std::remove(SketchPath(name).c_str());
  return WriteManifest(entries);
}

}  // namespace bursthist
