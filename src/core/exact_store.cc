#include "core/exact_store.h"

#include <cassert>

namespace bursthist {

std::vector<Timestamp> ExactEventModel::Breakpoints() const {
  std::vector<Timestamp> out;
  const auto& times = stream_->times();
  out.reserve(times.size());
  for (Timestamp t : times) {
    if (out.empty() || out.back() != t) out.push_back(t);
  }
  return out;
}

ExactBurstStore::ExactBurstStore(EventId universe_size)
    : streams_(universe_size) {}

Status ExactBurstStore::AppendStream(const EventStream& stream) {
  for (const auto& r : stream.records()) {
    if (r.id >= streams_.size()) {
      return Status::InvalidArgument("event id exceeds universe size");
    }
    Append(r.id, r.time);
  }
  return Status::OK();
}

void ExactBurstStore::Append(EventId e, Timestamp t) {
  assert(e < streams_.size());
  streams_[e].Append(t);
  ++total_;
}

Burstiness ExactBurstStore::BurstinessAt(EventId e, Timestamp t,
                                         Timestamp tau) const {
  return streams_[e].BurstinessAt(t, tau);
}

Count ExactBurstStore::CumulativeFrequency(EventId e, Timestamp t) const {
  return streams_[e].CumulativeFrequency(t);
}

std::vector<EventId> ExactBurstStore::BurstyEvents(Timestamp t, double theta,
                                                   Timestamp tau) const {
  std::vector<EventId> out;
  for (EventId e = 0; e < streams_.size(); ++e) {
    if (!streams_[e].empty() &&
        static_cast<double>(streams_[e].BurstinessAt(t, tau)) >= theta) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<TimeInterval> ExactBurstStore::BurstyTimes(EventId e, double theta,
                                                       Timestamp tau) const {
  ExactEventModel model(&streams_[e]);
  return bursthist::BurstyTimes(model, theta, tau);
}

size_t ExactBurstStore::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& s : streams_) bytes += s.SizeBytes();
  return bytes;
}

}  // namespace bursthist
