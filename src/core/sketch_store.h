// SketchStore — a tiny on-disk catalog of named, typed sketches.
//
// A deployment summarizing many feeds keeps one sketch per feed; the
// store manages them in a directory with a manifest so sketches can
// be saved, listed, and reloaded by name without the caller tracking
// file layouts or configuration:
//
//   SketchStore store("/var/lib/bursthist");
//   store.Save("politics-2016", engine);              // any engine
//   auto loaded = store.LoadEngine1("politics-2016"); // typed reload
//
// Layout: <dir>/MANIFEST (text: one "name kind" line per sketch) and
// <dir>/<name>.sketch (binary: config header + engine payload). Names
// are restricted to [a-zA-Z0-9._-] so they are always safe path
// components.

#ifndef BURSTHIST_CORE_SKETCH_STORE_H_
#define BURSTHIST_CORE_SKETCH_STORE_H_

#include <string>
#include <vector>

#include "core/burst_engine.h"
#include "util/status.h"

namespace bursthist {

/// Catalog entry.
struct SketchInfo {
  std::string name;
  /// 1 = CM-PBE-1 cells, 2 = CM-PBE-2 cells.
  int kind = 1;
};

/// Directory-backed sketch catalog.
class SketchStore {
 public:
  /// Opens (and lazily creates) the store rooted at `directory`.
  explicit SketchStore(std::string directory);

  /// Persists a finalized engine under `name` (replacing any previous
  /// sketch of that name) and updates the manifest.
  Status Save(const std::string& name, const BurstEngine1& engine);
  Status Save(const std::string& name, const BurstEngine2& engine);

  /// Loads a sketch by name. The stored configuration is embedded, so
  /// no options are needed; fails with InvalidArgument when the
  /// stored kind does not match the requested type.
  Result<BurstEngine1> LoadEngine1(const std::string& name) const;
  Result<BurstEngine2> LoadEngine2(const std::string& name) const;

  /// All cataloged sketches (sorted by name).
  Result<std::vector<SketchInfo>> List() const;

  /// Removes a sketch and its manifest entry; NotFound if absent.
  Status Remove(const std::string& name);

  /// True iff `name` is a valid sketch name ([a-zA-Z0-9._-]+, no
  /// leading dot).
  static bool ValidName(const std::string& name);

  const std::string& directory() const { return directory_; }

 private:
  template <typename PbeT>
  Status SaveImpl(const std::string& name, const BurstEngine<PbeT>& engine,
                  int kind);
  template <typename PbeT>
  Result<BurstEngine<PbeT>> LoadImpl(const std::string& name,
                                     int expect_kind) const;

  std::string SketchPath(const std::string& name) const;
  std::string ManifestPath() const;
  Status WriteManifest(const std::vector<SketchInfo>& entries) const;

  std::string directory_;
};

}  // namespace bursthist

#endif  // BURSTHIST_CORE_SKETCH_STORE_H_
