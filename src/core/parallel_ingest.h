// Parallel construction helpers.
//
// "Parallel processing on mutually exclusive time ranges can be also
//  leveraged to improve system throughput." (Section III-A)
//
// Three axes of parallelism exist in the structures:
//   * CM grid rows are fully independent — each element touches one
//    cell per row, so rows can be replayed on separate threads with
//    no synchronization (BuildCmPbeParallel).
//   * Dyadic levels are independent of each other for the same reason
//    (BuildDyadicParallel).
//   * The stream itself splits into mutually exclusive time ranges —
//    the sentence the paper leaves as future work. Each segment builds
//    an independent partial state from a zero running count; partials
//    are then concatenated in time order via the AbsorbSuffix family
//    (BuildCmPbeSegmentParallel / BuildDyadicSegmentParallel), which
//    shifts suffix counts by the prefix total. Segment boundaries act
//    exactly like the resets Finalize() performs — PBE-1 compresses
//    each segment's residual buffer, PBE-2 restarts its feasible
//    polygon — so the per-buffer Delta and per-point gamma guarantees
//    carry over unchanged.
// Row and level parallelism produce states identical to serial
// ingestion. Segment parallelism is identical whenever cell
// compression is lossless (budget_points == buffer_points); in lossy
// configurations it changes only where buffer resets fall, never the
// error bounds.

#ifndef BURSTHIST_CORE_PARALLEL_INGEST_H_
#define BURSTHIST_CORE_PARALLEL_INGEST_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "core/cm_pbe.h"
#include "core/dyadic_index.h"
#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {

/// An event occurrence with an explicit multiplicity, for callers that
/// pre-aggregate repeats (EventRecord carries no count).
struct WeightedRecord {
  EventId id = 0;
  Timestamp time = 0;
  Count count = 1;
};

namespace internal {

/// Multiplicity of a record: `count` when the record type has one
/// (WeightedRecord), 1 otherwise (EventRecord).
template <typename RecordT>
Count RecordCount(const RecordT& r) {
  if constexpr (requires { r.count; }) {
    return r.count;
  } else {
    return Count{1};
  }
}

}  // namespace internal

/// Cuts [0, records.size()) into at most `max_segments` contiguous
/// [begin, end) ranges of near-equal length whose time ranges are
/// mutually exclusive: a boundary is only placed where the timestamp
/// strictly increases, so records sharing a timestamp never straddle
/// segments. Requires `records` in non-decreasing time order.
template <typename RecordT>
std::vector<std::pair<size_t, size_t>> SegmentRanges(
    const std::vector<RecordT>& records, size_t max_segments) {
  std::vector<std::pair<size_t, size_t>> out;
  const size_t n = records.size();
  if (n == 0 || max_segments == 0) return out;
  size_t begin = 0;
  for (size_t s = 0; s < max_segments && begin < n; ++s) {
    size_t end;
    if (s + 1 == max_segments) {
      end = n;
    } else {
      end = std::max(begin + 1, ((s + 1) * n) / max_segments);
      while (end < n && records[end].time == records[end - 1].time) ++end;
    }
    out.emplace_back(begin, end);
    begin = end;
  }
  return out;
}

/// Builds a CM-PBE over `stream` using up to `threads` workers, one
/// per grid row (extra threads idle). Returns the finalized grid.
/// State is bit-identical to serial Append + Finalize.
template <typename PbeT>
CmPbe<PbeT> BuildCmPbeParallel(const EventStream& stream,
                               const CmPbeOptions& grid_options,
                               const typename PbeT::Options& cell_options,
                               size_t threads) {
  CmPbe<PbeT> grid(grid_options, cell_options);
  if (threads <= 1 || grid.depth() <= 1) {
    for (const auto& r : stream.records()) grid.Append(r.id, r.time);
    grid.Finalize();
    return grid;
  }
  // Each worker replays the whole stream into a disjoint set of rows.
  std::vector<std::thread> workers;
  const size_t depth = grid.depth();
  const size_t n_workers = std::min(threads, depth);
  for (size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([&grid, &stream, w, n_workers, depth] {
      for (size_t row = w; row < depth; row += n_workers) {
        for (const auto& r : stream.records()) {
          grid.AppendRow(row, r.id, r.time);
        }
        grid.FinalizeRow(row);
      }
    });
  }
  for (auto& t : workers) t.join();
  grid.SetTotalCount(stream.size());
  grid.MarkFinalized();
  return grid;
}

/// Builds a dyadic index over `stream` with one worker per tree level.
/// State is identical to serial Append + Finalize.
template <typename PbeT>
DyadicBurstIndex<PbeT> BuildDyadicParallel(
    const EventStream& stream, EventId universe_size,
    const CmPbeOptions& grid_options,
    const typename PbeT::Options& cell_options, size_t threads) {
  DyadicBurstIndex<PbeT> index(universe_size, grid_options, cell_options);
  const size_t levels = index.levels();
  if (threads <= 1 || levels <= 1) {
    for (const auto& r : stream.records()) index.Append(r.id, r.time);
    index.Finalize();
    return index;
  }
  std::vector<std::thread> workers;
  const size_t n_workers = std::min(threads, levels);
  for (size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([&index, &stream, w, n_workers, levels] {
      for (size_t lv = w; lv < levels; lv += n_workers) {
        for (const auto& r : stream.records()) {
          index.AppendLevel(lv, r.id, r.time);
        }
        index.FinalizeLevel(lv);
      }
    });
  }
  for (auto& t : workers) t.join();
  return index;
}

/// Builds a CM-PBE over `records` (EventRecord or WeightedRecord, in
/// non-decreasing time order) by splitting the stream into up to
/// `threads` mutually exclusive time ranges, building one partial grid
/// per segment concurrently, and concatenating the partials in time
/// order. When `finalize` is false the returned grid is left live
/// (appendable past the last record).
template <typename PbeT, typename RecordT>
CmPbe<PbeT> BuildCmPbeSegmentParallel(
    const std::vector<RecordT>& records, const CmPbeOptions& grid_options,
    const typename PbeT::Options& cell_options, size_t threads,
    bool finalize = true) {
  CmPbe<PbeT> out(grid_options, cell_options);
  const auto ranges = SegmentRanges(records, threads);
  if (ranges.size() <= 1) {
    for (const auto& r : records) {
      out.Append(r.id, r.time, internal::RecordCount(r));
    }
    if (finalize) out.Finalize();
    return out;
  }
  // Suffix grids must all exist before any worker runs so the vector
  // never reallocates under them.
  std::vector<CmPbe<PbeT>> parts;
  parts.reserve(ranges.size() - 1);
  for (size_t s = 1; s < ranges.size(); ++s) {
    parts.emplace_back(grid_options, cell_options);
  }
  std::vector<std::thread> workers;
  workers.reserve(parts.size());
  for (size_t s = 1; s < ranges.size(); ++s) {
    workers.emplace_back([&records, &parts, &ranges, s] {
      CmPbe<PbeT>& part = parts[s - 1];
      for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
        part.Append(records[i].id, records[i].time,
                    internal::RecordCount(records[i]));
      }
      part.Finalize();
    });
  }
  // The first segment builds on the calling thread, unfinalized: it IS
  // the prefix the suffixes splice onto, and stays live if requested.
  for (size_t i = ranges[0].first; i < ranges[0].second; ++i) {
    out.Append(records[i].id, records[i].time,
               internal::RecordCount(records[i]));
  }
  for (auto& t : workers) t.join();
  for (const auto& part : parts) out.AbsorbSuffix(part);
  if (finalize) out.Finalize();
  return out;
}

/// Segment-parallel dyadic index construction: same scheme as
/// BuildCmPbeSegmentParallel, one partial index per time range.
template <typename PbeT, typename RecordT>
DyadicBurstIndex<PbeT> BuildDyadicSegmentParallel(
    const std::vector<RecordT>& records, EventId universe_size,
    const CmPbeOptions& grid_options,
    const typename PbeT::Options& cell_options, size_t threads,
    bool finalize = true) {
  DyadicBurstIndex<PbeT> out(universe_size, grid_options, cell_options);
  const auto ranges = SegmentRanges(records, threads);
  if (ranges.size() <= 1) {
    for (const auto& r : records) {
      out.Append(r.id, r.time, internal::RecordCount(r));
    }
    if (finalize) out.Finalize();
    return out;
  }
  std::vector<DyadicBurstIndex<PbeT>> parts;
  parts.reserve(ranges.size() - 1);
  for (size_t s = 1; s < ranges.size(); ++s) {
    parts.emplace_back(universe_size, grid_options, cell_options);
  }
  std::vector<std::thread> workers;
  workers.reserve(parts.size());
  for (size_t s = 1; s < ranges.size(); ++s) {
    workers.emplace_back([&records, &parts, &ranges, s] {
      DyadicBurstIndex<PbeT>& part = parts[s - 1];
      for (size_t i = ranges[s].first; i < ranges[s].second; ++i) {
        part.Append(records[i].id, records[i].time,
                    internal::RecordCount(records[i]));
      }
      part.Finalize();
    });
  }
  for (size_t i = ranges[0].first; i < ranges[0].second; ++i) {
    out.Append(records[i].id, records[i].time,
               internal::RecordCount(records[i]));
  }
  for (auto& t : workers) t.join();
  for (const auto& part : parts) out.AbsorbSuffix(part);
  if (finalize) out.Finalize();
  return out;
}

/// EventStream conveniences.
template <typename PbeT>
CmPbe<PbeT> BuildCmPbeSegmentParallel(
    const EventStream& stream, const CmPbeOptions& grid_options,
    const typename PbeT::Options& cell_options, size_t threads,
    bool finalize = true) {
  return BuildCmPbeSegmentParallel<PbeT>(stream.records(), grid_options,
                                         cell_options, threads, finalize);
}

template <typename PbeT>
DyadicBurstIndex<PbeT> BuildDyadicSegmentParallel(
    const EventStream& stream, EventId universe_size,
    const CmPbeOptions& grid_options,
    const typename PbeT::Options& cell_options, size_t threads,
    bool finalize = true) {
  return BuildDyadicSegmentParallel<PbeT>(stream.records(), universe_size,
                                          grid_options, cell_options,
                                          threads, finalize);
}

}  // namespace bursthist

#endif  // BURSTHIST_CORE_PARALLEL_INGEST_H_
