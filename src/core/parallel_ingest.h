// Parallel construction helpers.
//
// "Parallel processing on mutually exclusive time ranges can be also
//  leveraged to improve system throughput." (Section III-A)
//
// Two axes of parallelism exist in the structures:
//   * CM grid rows are fully independent — each element touches one
//    cell per row, so rows can be replayed on separate threads with
//    no synchronization (IngestRowsParallel).
//   * Dyadic levels are independent of each other for the same reason
//    (IngestLevelsParallel).
// Both produce states identical to serial ingestion.

#ifndef BURSTHIST_CORE_PARALLEL_INGEST_H_
#define BURSTHIST_CORE_PARALLEL_INGEST_H_

#include <cstddef>
#include <thread>
#include <vector>

#include "core/cm_pbe.h"
#include "core/dyadic_index.h"
#include "stream/event_stream.h"

namespace bursthist {

/// Builds a CM-PBE over `stream` using up to `threads` workers, one
/// per grid row (extra threads idle). Returns the finalized grid.
/// State is bit-identical to serial Append + Finalize.
template <typename PbeT>
CmPbe<PbeT> BuildCmPbeParallel(const EventStream& stream,
                               const CmPbeOptions& grid_options,
                               const typename PbeT::Options& cell_options,
                               size_t threads) {
  CmPbe<PbeT> grid(grid_options, cell_options);
  if (threads <= 1 || grid.depth() <= 1) {
    for (const auto& r : stream.records()) grid.Append(r.id, r.time);
    grid.Finalize();
    return grid;
  }
  // Each worker replays the whole stream into a disjoint set of rows.
  std::vector<std::thread> workers;
  const size_t depth = grid.depth();
  const size_t n_workers = std::min(threads, depth);
  for (size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([&grid, &stream, w, n_workers, depth] {
      for (size_t row = w; row < depth; row += n_workers) {
        for (const auto& r : stream.records()) {
          grid.AppendRow(row, r.id, r.time);
        }
        grid.FinalizeRow(row);
      }
    });
  }
  for (auto& t : workers) t.join();
  grid.SetTotalCount(stream.size());
  grid.MarkFinalized();
  return grid;
}

/// Builds a dyadic index over `stream` with one worker per tree level.
/// State is identical to serial Append + Finalize.
template <typename PbeT>
DyadicBurstIndex<PbeT> BuildDyadicParallel(
    const EventStream& stream, EventId universe_size,
    const CmPbeOptions& grid_options,
    const typename PbeT::Options& cell_options, size_t threads) {
  DyadicBurstIndex<PbeT> index(universe_size, grid_options, cell_options);
  const size_t levels = index.levels();
  if (threads <= 1 || levels <= 1) {
    for (const auto& r : stream.records()) index.Append(r.id, r.time);
    index.Finalize();
    return index;
  }
  std::vector<std::thread> workers;
  const size_t n_workers = std::min(threads, levels);
  for (size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([&index, &stream, w, n_workers, levels] {
      for (size_t lv = w; lv < levels; lv += n_workers) {
        for (const auto& r : stream.records()) {
          index.AppendLevel(lv, r.id, r.time);
        }
        index.FinalizeLevel(lv);
      }
    });
  }
  for (auto& t : workers) t.join();
  return index;
}

}  // namespace bursthist

#endif  // BURSTHIST_CORE_PARALLEL_INGEST_H_
