// PBE-2: persistent burstiness estimation without buffering
// (Section III-B of the paper).
//
// The estimator feeds the augmented corner points of the cumulative
// frequency curve into the online PLA builder as they materialize —
// O(1) amortized work per element and no buffering beyond the single
// in-progress corner (whose count is only final once a later timestamp
// arrives). The resulting piecewise-linear model satisfies
// F(t) - gamma <= F~(t) <= F(t) at every discrete timestamp, hence
// |b~(t) - b(t)| <= 4 * gamma (Lemma 4).

#ifndef BURSTHIST_CORE_PBE2_H_
#define BURSTHIST_CORE_PBE2_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "pla/linear_model.h"
#include "pla/online_pla.h"
#include "stream/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Construction parameters for Pbe2.
struct Pbe2Options {
  /// Per-point error band gamma (>= 0): the model may undershoot F(t)
  /// by at most gamma and never overshoots.
  double gamma = 8.0;

  /// Optional cap on the feasible polygon's vertex count (the paper's
  /// space-constrained variant); 0 = unlimited.
  size_t max_polygon_vertices = 0;

  /// Optional soft space budget in bytes: once the stored segments
  /// outgrow it, gamma doubles for future windows (the error
  /// guarantee becomes 4 * MaxGamma()). 0 = fixed gamma.
  size_t target_bytes = 0;
};

/// Online persistent burstiness estimator for a single event stream.
///
/// Usage mirrors Pbe1: Append() in non-decreasing time order, then
/// Finalize() before estimate queries (or use Snapshot()).
class Pbe2 {
 public:
  using Options = Pbe2Options;

  /// False: F~ is piecewise-linear, so b~ varies linearly between
  /// breakpoints.
  static constexpr bool kPiecewiseConstant = false;

  explicit Pbe2(const Options& options = Options());

  /// Adds `count` occurrences at time t (t >= last appended time).
  /// Must not be called after Finalize().
  void Append(Timestamp t, Count count = 1);

  /// Flushes the pending corner point and the open PLA window.
  /// Idempotent.
  void Finalize();

  /// True once Finalize() ran; estimate queries require it.
  bool finalized() const { return finalized_; }

  /// A finalized copy for querying mid-stream.
  Pbe2 Snapshot() const;

  /// Splices a finalized `suffix` built over a strictly later time
  /// range (from a zero running count) onto this estimator. The open
  /// PLA window is closed first, restarting the feasible polygon at
  /// the boundary — each spliced segment therefore keeps its per-point
  /// gamma band, so Lemma 4 holds across the seam with the combined
  /// MaxGamma(). This estimator keeps its finalized/live state.
  void AbsorbSuffix(const Pbe2& suffix);

  /// F~(t). Precondition: finalized().
  double EstimateCumulative(Timestamp t) const;

  /// b~(t). Precondition: finalized().
  double EstimateBurstiness(Timestamp t, Timestamp tau) const;

  /// Breakpoints of the piecewise-linear model. Precondition:
  /// finalized().
  std::vector<Timestamp> Breakpoints() const;

  /// Total occurrences ingested (N).
  Count TotalCount() const { return running_count_; }

  /// Stored PLA segments — the structure's space driver.
  size_t SegmentCount() const { return builder_.model().size(); }

  /// The *configured* band; the bound in force is 4 * MaxGamma(),
  /// which may be wider after target_bytes escalation or WidenGamma().
  double gamma() const { return options_.gamma; }

  /// Widens the error band for future constraint points by `factor`
  /// (>= 1), the governor's deliberate form of the target_bytes
  /// escalation: wider bands make windows live longer, throttling
  /// segment production. The guarantee degrades honestly to
  /// 4 * MaxGamma(), which reports the widened band. A zero band
  /// widens to `factor` itself (mirroring the escalation's 0 -> 1
  /// step). Widening saturates at the curve's current total count —
  /// beyond that the band already admits a single-segment model, so
  /// repeated sheds under a sustained deficit keep the reported bound
  /// data-scaled instead of diverging. No-op on a finalized estimator.
  void WidenGamma(double factor);

  /// Degradation hook with the uniform cell signature (see
  /// CmPbe::Degrade): PBE-2 sheds by widening gamma.
  void Degrade(double gamma_factor) { WidenGamma(gamma_factor); }

  /// MaxGamma() under its duck-typed name: the per-cell "Delta or
  /// gamma" bound read uniformly from Pbe1 and Pbe2.
  double PointErrorBound() const { return MaxGamma(); }

  /// Largest band used by any window (== gamma() unless a space
  /// budget escalated it); |b~ - b| <= 4 * MaxGamma().
  double MaxGamma() const {
    return std::max(options_.gamma, builder_.max_gamma());
  }

  /// Bytes of retained state (segments).
  size_t SizeBytes() const;

  /// Resident bytes including object, segment-capacity, and live
  /// feasible-polygon overheads.
  size_t MemoryUsage() const;

  /// Serializes the estimator. A live (unfinalized) estimator is
  /// written as a finalized snapshot marked live: the open PLA window
  /// is flushed into the model (costing at most one extra segment, as
  /// at an AbsorbSuffix boundary) and the restored estimator keeps
  /// accepting appends with a restarted window — the gamma guarantee
  /// is unaffected, but the model is not byte-identical to one that
  /// was never serialized.
  void Serialize(BinaryWriter* w) const;

  /// Replaces this estimator with the serialized state (including the
  /// widened-gamma history, so the restored bound matches); returns
  /// Corruption on a malformed payload.
  Status Deserialize(BinaryReader* r);

 private:
  // Pushes the pending corner (and its pre-rise augmentation point)
  // into the PLA builder.
  void FlushPending();

  // Writes the payload of a finalized estimator, marking the blob
  // live (finalized = 0) when requested.
  void SerializeFrozen(BinaryWriter* w, bool as_finalized) const;

  Options options_;
  OnlinePlaBuilder builder_;

  // In-progress corner point: arrivals at the same timestamp merge
  // into it; it is fed to the builder once a later timestamp arrives.
  bool has_pending_ = false;
  CurvePoint pending_{0, 0};
  // Last corner actually fed to the builder (source of the pre-rise
  // augmentation level).
  bool has_flushed_ = false;
  CurvePoint last_flushed_{0, 0};

  Count running_count_ = 0;
  bool finalized_ = false;
};

}  // namespace bursthist

#endif  // BURSTHIST_CORE_PBE2_H_
