#include "core/pbe1.h"

#include <algorithm>
#include <cassert>

namespace bursthist {

namespace {
constexpr uint32_t kMagic = 0x50424531;  // "PBE1"
// v1: bare payload. v2: CRC32C-framed payload (see CrcFrame).
constexpr uint32_t kVersion = 2;
}  // namespace

Pbe1::Pbe1(const Options& options) : options_(options) {
  assert(options_.buffer_points >= 2);
  assert(options_.budget_points >= 2 || options_.error_cap >= 0.0);
}

void Pbe1::Append(Timestamp t, Count count) {
  assert(!finalized_ && "Append after Finalize");
  if (!buffer_.empty() && buffer_.back().time == t) {
    buffer_.back().count += count;
    running_count_ += count;
    return;
  }
  assert(buffer_.empty() || t > buffer_.back().time);
  assert(model_.empty() || buffer_.size() > 0 ||
         t > model_.points().back().time);
  if (buffer_.size() == options_.buffer_points) {
    CompressBuffer(options_.budget_points);
  }
  running_count_ += count;
  buffer_.push_back(CurvePoint{t, running_count_});
}

void Pbe1::CompressBuffer(size_t budget) {
  if (buffer_.empty()) return;
  StaircaseFit fit;
  if (options_.error_cap >= 0.0) {
    fit = OptimalStaircaseErrorCapped(buffer_, options_.error_cap);
  } else {
    fit = OptimalStaircase(buffer_, budget);
  }
  model_.AppendPoints(fit.Materialize(buffer_));
  total_area_error_ += fit.error;
  max_buffer_area_error_ = std::max(max_buffer_area_error_, fit.error);
  buffer_.clear();
}

void Pbe1::CompressResidual() {
  if (buffer_.empty()) return;
  // Scale the budget to the residual buffer's share so the final
  // (partial) buffer keeps the same compression ratio kappa.
  size_t budget = options_.budget_points;
  if (options_.error_cap < 0.0 && buffer_.size() < options_.buffer_points) {
    budget = std::max<size_t>(2, (options_.budget_points * buffer_.size() +
                                  options_.buffer_points - 1) /
                                     options_.buffer_points);
  }
  CompressBuffer(budget);
}

void Pbe1::Finalize() {
  if (finalized_) return;
  CompressResidual();
  finalized_ = true;
}

void Pbe1::CompactEarly() {
  if (finalized_ || buffer_.size() < 2) return;
  // Hold the newest point back: Append merges same-timestamp arrivals
  // into the buffer tail, which a fully frozen buffer could not serve.
  const CurvePoint tail = buffer_.back();
  buffer_.pop_back();
  CompressResidual();
  buffer_.push_back(tail);
  buffer_.shrink_to_fit();  // the point of compacting is freeing this
}

void Pbe1::AbsorbSuffix(const Pbe1& suffix) {
  assert(suffix.finalized_ && "suffix must be finalized before absorb");
  if (suffix.running_count_ == 0) return;
  assert(buffer_.empty() ||
         suffix.model_.points().front().time > buffer_.back().time);
  assert(!buffer_.empty() || model_.empty() ||
         suffix.model_.points().front().time > model_.points().back().time);
  // Closing the open buffer here is the boundary reset: the suffix was
  // compressed over its own buffers, so after the shift every retained
  // corner still came from a DP pass over <= buffer_points points.
  CompressResidual();
  model_.AppendShifted(suffix.model_, running_count_);
  running_count_ += suffix.running_count_;
  total_area_error_ += suffix.total_area_error_;
  max_buffer_area_error_ =
      std::max(max_buffer_area_error_, suffix.max_buffer_area_error_);
}

Pbe1 Pbe1::Snapshot() const {
  Pbe1 copy = *this;
  copy.Finalize();
  return copy;
}

double Pbe1::EstimateCumulative(Timestamp t) const {
  assert(finalized_ && "query before Finalize (use Snapshot for live)");
  return static_cast<double>(model_.Evaluate(t));
}

double Pbe1::EstimateBurstiness(Timestamp t, Timestamp tau) const {
  assert(finalized_ && "query before Finalize (use Snapshot for live)");
  return model_.EstimateBurstiness(t, tau);
}

std::vector<Timestamp> Pbe1::Breakpoints() const {
  assert(finalized_ && "query before Finalize (use Snapshot for live)");
  return model_.Breakpoints();
}

size_t Pbe1::SizeBytes() const {
  return model_.SizeBytes() + buffer_.size() * sizeof(CurvePoint);
}

size_t Pbe1::MemoryUsage() const {
  return sizeof(*this) +
         model_.points().capacity() * sizeof(CurvePoint) +
         buffer_.capacity() * sizeof(CurvePoint);
}

void Pbe1::Serialize(BinaryWriter* w) const {
  w->Put(kMagic);
  w->Put(kVersion);
  const size_t frame = CrcFrame::Begin(w);
  w->Put<uint64_t>(options_.buffer_points);
  w->Put<uint64_t>(options_.budget_points);
  w->Put<double>(options_.error_cap);
  w->Put<uint64_t>(running_count_);
  w->Put<double>(total_area_error_);
  w->Put<double>(max_buffer_area_error_);
  w->Put<uint8_t>(finalized_ ? 1 : 0);
  model_.Serialize(w);
  w->PutVector(buffer_);
  CrcFrame::End(w, frame);
}

Status Pbe1::Deserialize(BinaryReader* r) {
  uint32_t magic = 0, version = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&version));
  if (magic != kMagic) return Status::Corruption("bad PBE-1 magic");
  if (version != 1 && version != kVersion) {
    return Status::Corruption("bad PBE-1 version");
  }
  size_t payload_end = 0;
  if (version >= 2) {
    BURSTHIST_RETURN_IF_ERROR(CrcFrame::Enter(r, &payload_end));
  }
  uint64_t buffer_points = 0, budget_points = 0, running = 0;
  uint8_t finalized = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&buffer_points));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&budget_points));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&options_.error_cap));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&running));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&total_area_error_));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&max_buffer_area_error_));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&finalized));
  BURSTHIST_RETURN_IF_ERROR(model_.Deserialize(r));
  BURSTHIST_RETURN_IF_ERROR(r->GetVector(&buffer_));
  if (version >= 2) {
    BURSTHIST_RETURN_IF_ERROR(CrcFrame::Leave(r, payload_end));
  }
  options_.buffer_points = static_cast<size_t>(buffer_points);
  options_.budget_points = static_cast<size_t>(budget_points);
  running_count_ = running;
  finalized_ = finalized != 0;
  return Status::OK();
}

}  // namespace bursthist
