#include "core/pbe2.h"

#include <cassert>

namespace bursthist {

namespace {
constexpr uint32_t kMagic = 0x50424532;  // "PBE2"
// v2: bare payload, finalized estimators only. v3: CRC32C-framed
// payload (see CrcFrame) + live-state flag.
constexpr uint32_t kVersion = 3;
}  // namespace

Pbe2::Pbe2(const Options& options)
    : options_(options),
      builder_(options.gamma, options.max_polygon_vertices,
               options.target_bytes) {
  assert(options_.gamma >= 0.0);
}

void Pbe2::Append(Timestamp t, Count count) {
  assert(!finalized_ && "Append after Finalize");
  if (has_pending_ && pending_.time == t) {
    pending_.count += count;
    running_count_ += count;
    return;
  }
  assert(!has_pending_ || t > pending_.time);
  if (has_pending_) FlushPending();
  running_count_ += count;
  pending_ = CurvePoint{t, running_count_};
  has_pending_ = true;
}

void Pbe2::FlushPending() {
  assert(has_pending_);
  // Pre-rise augmentation (Section III-B): constrain the level right
  // before this corner so no line can overestimate the flat stretch.
  if (has_flushed_ && pending_.time > last_flushed_.time + 1) {
    builder_.AddPoint(pending_.time - 1, last_flushed_.count);
  }
  builder_.AddPoint(pending_.time, pending_.count);
  last_flushed_ = pending_;
  has_flushed_ = true;
  has_pending_ = false;
}

void Pbe2::Finalize() {
  if (finalized_) return;
  if (has_pending_) FlushPending();
  builder_.Finish();
  finalized_ = true;
}

void Pbe2::AbsorbSuffix(const Pbe2& suffix) {
  assert(suffix.finalized_ && "suffix must be finalized before absorb");
  if (suffix.running_count_ == 0) return;
  const LinearModel& sm = suffix.builder_.model();
  assert(!has_pending_ || sm.segments().front().start > pending_.time);
  // Close the open window: the feasible polygon restarts at the
  // boundary, so every emitted segment keeps its own gamma band.
  if (has_pending_) FlushPending();
  builder_.Finish();
  builder_.AbsorbModel(sm, static_cast<double>(running_count_));
  builder_.NoteGamma(suffix.MaxGamma());
  running_count_ += suffix.running_count_;
  // Rebuild the pre-rise augmentation level from the spliced tail: the
  // suffix's exact curve ends at its last segment's final time with the
  // (now lifted) total count.
  last_flushed_ = CurvePoint{sm.segments().back().last, running_count_};
  has_flushed_ = true;
  has_pending_ = false;
}

Pbe2 Pbe2::Snapshot() const {
  Pbe2 copy = *this;
  copy.Finalize();
  return copy;
}

double Pbe2::EstimateCumulative(Timestamp t) const {
  assert(finalized_ && "query before Finalize (use Snapshot for live)");
  return builder_.model().Evaluate(t);
}

double Pbe2::EstimateBurstiness(Timestamp t, Timestamp tau) const {
  assert(finalized_ && "query before Finalize (use Snapshot for live)");
  return builder_.model().EstimateBurstiness(t, tau);
}

std::vector<Timestamp> Pbe2::Breakpoints() const {
  assert(finalized_ && "query before Finalize (use Snapshot for live)");
  return builder_.model().Breakpoints();
}

size_t Pbe2::SizeBytes() const { return builder_.model().SizeBytes(); }

size_t Pbe2::MemoryUsage() const {
  return sizeof(*this) - sizeof(builder_) + builder_.MemoryUsage();
}

void Pbe2::WidenGamma(double factor) {
  assert(factor >= 1.0);
  if (finalized_) return;
  const double current = builder_.gamma();
  double target = current == 0.0 ? factor : current * factor;
  // Saturate at the curve's own mass: F spans [0, running_count_], so
  // a band that wide already admits a single-segment model — widening
  // past it frees no memory, it only inflates the reported bound.
  const double cap = static_cast<double>(running_count_) + 1.0;
  if (target > cap) target = current > cap ? current : cap;
  if (target <= current) return;
  builder_.WidenBand(target);
}

void Pbe2::Serialize(BinaryWriter* w) const {
  if (!finalized_) {
    // Close the open window in a copy (one extra polygon restart, same
    // accuracy as an AbsorbSuffix boundary) and mark the blob live so
    // the restored estimator keeps accepting appends.
    Snapshot().SerializeFrozen(w, /*as_finalized=*/false);
    return;
  }
  SerializeFrozen(w, /*as_finalized=*/true);
}

void Pbe2::SerializeFrozen(BinaryWriter* w, bool as_finalized) const {
  assert(finalized_ && "SerializeFrozen requires a finalized estimator");
  w->Put(kMagic);
  w->Put(kVersion);
  const size_t frame = CrcFrame::Begin(w);
  w->Put<double>(options_.gamma);
  w->Put<uint64_t>(options_.max_polygon_vertices);
  w->Put<uint64_t>(options_.target_bytes);
  w->Put<double>(builder_.max_gamma());
  w->Put<uint64_t>(running_count_);
  w->Put<uint8_t>(as_finalized ? 1 : 0);
  builder_.model().Serialize(w);
  CrcFrame::End(w, frame);
}

Status Pbe2::Deserialize(BinaryReader* r) {
  uint32_t magic = 0, version = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&version));
  if (magic != kMagic) return Status::Corruption("bad PBE-2 magic");
  if (version != 2 && version != kVersion) {
    return Status::Corruption("bad PBE-2 version");
  }
  size_t payload_end = 0;
  if (version >= 3) {
    BURSTHIST_RETURN_IF_ERROR(CrcFrame::Enter(r, &payload_end));
  }
  uint64_t max_vertices = 0, target_bytes = 0, running = 0;
  double max_gamma = 0.0;
  uint8_t finalized = 1;  // v2 blobs are always finalized
  BURSTHIST_RETURN_IF_ERROR(r->Get(&options_.gamma));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&max_vertices));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&target_bytes));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&max_gamma));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&running));
  if (version >= 3) {
    BURSTHIST_RETURN_IF_ERROR(r->Get(&finalized));
  }
  options_.max_polygon_vertices = static_cast<size_t>(max_vertices);
  options_.target_bytes = static_cast<size_t>(target_bytes);
  running_count_ = running;
  LinearModel model;
  BURSTHIST_RETURN_IF_ERROR(model.Deserialize(r));
  if (version >= 3) {
    BURSTHIST_RETURN_IF_ERROR(CrcFrame::Leave(r, payload_end));
  }
  // Rebuild a fresh builder holding the deserialized model; the window
  // restarts at the next append (live blobs) or never (finalized).
  // Restore the escalated band so MaxGamma() keeps reporting the true
  // guarantee.
  builder_ = OnlinePlaBuilder(std::max(options_.gamma, max_gamma),
                              options_.max_polygon_vertices,
                              options_.target_bytes);
  builder_.RestoreModel(std::move(model));
  has_pending_ = false;
  // Rebuild the pre-rise augmentation level from the stored model so a
  // live estimator keeps the no-overestimate property when it resumes.
  const LinearModel& m = builder_.model();
  has_flushed_ = finalized == 0 && !m.segments().empty();
  if (has_flushed_) {
    last_flushed_ = CurvePoint{m.segments().back().last, running_count_};
  }
  finalized_ = finalized != 0;
  return Status::OK();
}

}  // namespace bursthist
