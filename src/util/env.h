// Filesystem seam for the recovery subsystem.
//
// Everything the WAL and snapshot code does to disk goes through this
// narrow virtual interface, so tests can interpose a fault-injecting
// wrapper (see recovery/fault_env.h) that tears writes, runs out of
// space on the Nth write, or mutilates files between "process
// lifetimes" — without touching the production code paths.
//
// The default implementation (Env::Default()) is unbuffered POSIX I/O:
// every WritableFile::Append issues one write(2), so a simulated crash
// after any acknowledged append finds its bytes in the file. Sync()
// additionally fsyncs, which is what the snapshot protocol's
// write-temp + fsync + rename relies on for power-loss atomicity.

#ifndef BURSTHIST_UTIL_ENV_H_
#define BURSTHIST_UTIL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace bursthist {

/// An open file being appended to. Not thread-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `n` bytes. On failure some prefix may have been written
  /// (a torn write) — callers must assume nothing about the tail.
  virtual Status Append(const uint8_t* data, size_t n) = 0;
  Status Append(const std::vector<uint8_t>& bytes) {
    return bytes.empty() ? Status::OK() : Append(bytes.data(), bytes.size());
  }

  /// Flushes written data and metadata to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the descriptor. Idempotent; called by the destructor.
  virtual Status Close() = 0;
};

/// Minimal filesystem abstraction (directory-scoped operations only).
class Env {
 public:
  virtual ~Env() = default;

  /// Creates (truncating) a file for appending.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads a whole file into memory.
  virtual Result<std::vector<uint8_t>> ReadFileBytes(
      const std::string& path) = 0;

  /// Names (not paths) of regular files in `dir`, unsorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  virtual Status CreateDirIfMissing(const std::string& dir) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Truncates (or extends with zeros) a file to `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// fsyncs a directory so a completed rename survives power loss.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

}  // namespace bursthist

#endif  // BURSTHIST_UTIL_ENV_H_
