#include "util/status.h"

namespace bursthist {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace bursthist
