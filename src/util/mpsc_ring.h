// Bounded lock-free multi-producer/single-consumer ring buffer,
// Vyukov-style: each cell carries an atomic sequence number that
// encodes whose turn the cell is.
//
// Memory-ordering contract (the acquire/release points DESIGN.md's
// batch-pipeline section documents):
//
//  * A producer claims cell `pos` by CAS on `enqueue_pos_` after
//    observing `cell.seq == pos` with ACQUIRE (so a recycled cell's
//    prior payload read by the consumer happened-before the reuse).
//    It then writes the payload with plain stores and PUBLISHES with
//    `cell.seq.store(pos + 1, release)` — the release fence makes the
//    payload visible to any thread that later acquires that seq.
//  * The single consumer reads `cell.seq` with ACQUIRE; seeing
//    `pos + 1` synchronizes-with the producer's release store, so the
//    payload read that follows is safe. After moving the payload out
//    it RECYCLES the cell with `cell.seq.store(pos + capacity,
//    release)`, handing it to the producer that will claim position
//    `pos + capacity` one lap later.
//  * `enqueue_pos_` itself uses relaxed success/failure orders: it
//    only arbitrates which producer owns a cell; all payload
//    visibility flows through the per-cell seq.
//  * `dequeue_pos_` is advanced only by the consumer; it is atomic
//    solely so ApproxSize() can be sampled from any thread, and every
//    access is relaxed.
//
// TryPush never blocks: it returns false when the ring is full (the
// cell for the next position still holds a lap-old sequence), letting
// the caller decide between spinning, backoff, or shedding. Pop
// returns false on empty. Capacity is rounded up to a power of two so
// position-to-cell mapping is a mask.

#ifndef BURSTHIST_UTIL_MPSC_RING_H_
#define BURSTHIST_UTIL_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bursthist {

template <typename T>
class MpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit MpscRing(size_t capacity) : mask_(RoundUpPow2(capacity) - 1) {
    cells_ = std::vector<Cell>(mask_ + 1);
    for (size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Multi-producer enqueue. Returns false when the ring is full;
  /// never blocks, never spins beyond CAS contention retries.
  bool TryPush(T value) {
    uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t dif =
          static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        // Our turn; claim the position. CAS can use relaxed order —
        // payload visibility rides on the seq release below.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the new position.
      } else if (dif < 0) {
        // The cell is still a full lap behind: ring full.
        return false;
      } else {
        // Another producer claimed this position; chase the head.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue. Returns false when the ring is empty.
  bool Pop(T* out) {
    const uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1) < 0) {
      return false;  // producer has not published this position yet
    }
    *out = std::move(cell.value);
    // Recycle the cell for the producer one lap ahead.
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Single-consumer batch dequeue: pops up to `max` items into
  /// `out` (appended). Returns the number popped.
  size_t PopBatch(std::vector<T>* out, size_t max) {
    size_t n = 0;
    T item;
    while (n < max && Pop(&item)) {
      out->push_back(std::move(item));
      ++n;
    }
    return n;
  }

  /// Approximate occupancy (racy snapshot; for metrics/backoff
  /// heuristics only).
  size_t ApproxSize() const {
    const uint64_t head = enqueue_pos_.load(std::memory_order_relaxed);
    const uint64_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    return head >= tail ? static_cast<size_t>(head - tail) : 0;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  static size_t RoundUpPow2(size_t v) {
    size_t p = 2;
    while (p < v) p <<= 1;
    return p;
  }

  size_t mask_;
  std::vector<Cell> cells_;
  // Producers race on this; consumer never touches it.
  std::atomic<uint64_t> enqueue_pos_{0};
  // Advanced only by the single consumer; atomic (relaxed) so
  // ApproxSize can be read from any thread without a data race.
  std::atomic<uint64_t> dequeue_pos_{0};
};

}  // namespace bursthist

#endif  // BURSTHIST_UTIL_MPSC_RING_H_
