// Lightweight status / result types for fallible library operations.
//
// The library does not throw exceptions across its public boundary:
// fallible operations (deserialization, option validation, file I/O)
// return a Status or a Result<T>, in the style of RocksDB / Abseil.

#ifndef BURSTHIST_UTIL_STATUS_H_
#define BURSTHIST_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace bursthist {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kCorruption,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIOError,
  /// A bounded resource (memory budget, buffer capacity) is full; the
  /// operation was refused to protect the process, not because the
  /// input was bad. Retrying after load shedding may succeed.
  kResourceExhausted,
  /// The component has entered a degraded mode (e.g. read-only after
  /// an fsync failure) and cannot serve this operation until it is
  /// reopened/recovered.
  kUnavailable,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. On error the value is absent.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace bursthist

/// Propagates a non-OK status to the caller.
#define BURSTHIST_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::bursthist::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // BURSTHIST_UTIL_STATUS_H_
