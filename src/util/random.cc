#include "util/random.h"

#include <cmath>
#include <cstdlib>

namespace bursthist {

uint64_t SeedFromEnv(const char* env_var, uint64_t fallback) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 0);
  if (end == value || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation N(mean, mean), clamped at zero.
  double v = mean + std::sqrt(mean) * NextGaussian();
  return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

double Rng::NextGaussian() {
  // Box-Muller; one value per call keeps the generator stateless
  // beyond s_ (we discard the second deviate for simplicity).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

Rng Rng::Fork(uint64_t stream_id) {
  uint64_t mix = s_[0] ^ Rotl(stream_id * 0x9e3779b97f4a7c15ULL, 31);
  return Rng(mix ^ NextU64());
}

}  // namespace bursthist
