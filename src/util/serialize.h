// Minimal binary serialization substrate.
//
// All persistent structures in the library (PBE-1, PBE-2, CM-PBE, the
// dyadic index) serialize through BinaryWriter / BinaryReader. The
// format is little-endian, length-prefixed, with a per-structure magic
// and version so corrupt or mismatched payloads fail with a clean
// Status instead of undefined behaviour.

#ifndef BURSTHIST_UTIL_SERIALIZE_H_
#define BURSTHIST_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace bursthist {

/// Appends primitive values and vectors to a growable byte buffer.
class BinaryWriter {
 public:
  /// Writes a trivially-copyable scalar (fixed width, little endian on
  /// all supported platforms).
  template <typename T>
  void Put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  /// Writes a u64 length followed by the raw elements.
  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put<uint64_t>(v.size());
    const size_t old = buf_.size();
    buf_.resize(old + v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(buf_.data() + old, v.data(), v.size() * sizeof(T));
    }
  }

  /// Writes a u64 length followed by the raw bytes.
  void PutString(const std::string& s) {
    Put<uint64_t>(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }

  /// Bytes written so far.
  size_t size() const { return buf_.size(); }

  /// Overwrites a scalar previously written at `offset` (for length
  /// placeholders patched once the payload size is known).
  template <typename T>
  void Patch(size_t offset, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(buf_.data() + offset, &v, sizeof(T));
  }

  const uint8_t* data() const { return buf_.data(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads values written by BinaryWriter. All getters bounds-check and
/// return Corruption on truncation.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit BinaryReader(const std::vector<uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  template <typename T>
  Status Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) {
      return Status::Corruption("truncated buffer reading scalar");
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  template <typename T>
  Status GetVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    BURSTHIST_RETURN_IF_ERROR(Get(&n));
    if (n > (size_ - pos_) / sizeof(T)) {
      return Status::Corruption("truncated buffer reading vector");
    }
    out->resize(static_cast<size_t>(n));
    if (n > 0) {
      std::memcpy(out->data(), data_ + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint64_t n = 0;
    BURSTHIST_RETURN_IF_ERROR(Get(&n));
    if (n > size_ - pos_) {
      return Status::Corruption("truncated buffer reading string");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(n));
    pos_ += n;
    return Status::OK();
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  const uint8_t* data() const { return data_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

/// Checksummed payload framing shared by every versioned blob:
///
///   magic u32 | version u32 | payload_len u64 | payload | crc32c u32
///
/// The CRC covers exactly the payload bytes, so a reader can verify
/// integrity BEFORE parsing a single payload field. Callers write
/// magic and version themselves (they are validated independently and
/// excluded so legacy readers can dispatch on version first).
class CrcFrame {
 public:
  /// Writer: call right after magic+version; reserves the length slot.
  static size_t Begin(BinaryWriter* w);

  /// Writer: patches the length and appends the CRC32C trailer.
  /// `frame_pos` is the value Begin() returned.
  static void End(BinaryWriter* w, size_t frame_pos);

  /// Reader: consumes the length, bounds-checks it, and verifies the
  /// trailer CRC over the whole payload without consuming it. On OK,
  /// `payload_end` is the reader position one past the payload (the
  /// value Leave() expects).
  static Status Enter(BinaryReader* r, size_t* payload_end);

  /// Reader: checks the payload was consumed exactly and skips the
  /// trailer, leaving the reader positioned after the frame.
  static Status Leave(BinaryReader* r, size_t payload_end);
};

/// Writes `bytes` to `path` atomically enough for test/bench use.
Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes);

/// Reads the full contents of `path`.
Result<std::vector<uint8_t>> ReadFile(const std::string& path);

}  // namespace bursthist

#endif  // BURSTHIST_UTIL_SERIALIZE_H_
