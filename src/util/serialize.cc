#include "util/serialize.h"

#include <cstdio>

namespace bursthist {

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for write: " + path);
  }
  size_t written = bytes.empty()
                       ? 0
                       : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int rc = std::fclose(f);
  if (written != bytes.size() || rc != 0) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for read: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("ftell failed: " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t got = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    return Status::Corruption("short read: " + path);
  }
  return bytes;
}

}  // namespace bursthist
