#include "util/serialize.h"

#include <cstdio>

#include "util/crc32c.h"

namespace bursthist {

size_t CrcFrame::Begin(BinaryWriter* w) {
  const size_t frame_pos = w->size();
  w->Put<uint64_t>(0);  // payload length, patched by End()
  return frame_pos;
}

void CrcFrame::End(BinaryWriter* w, size_t frame_pos) {
  const size_t payload_begin = frame_pos + sizeof(uint64_t);
  const size_t payload_len = w->size() - payload_begin;
  w->Patch<uint64_t>(frame_pos, payload_len);
  w->Put<uint32_t>(Crc32c(w->data() + payload_begin, payload_len));
}

Status CrcFrame::Enter(BinaryReader* r, size_t* payload_end) {
  uint64_t payload_len = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&payload_len));
  // Subtraction form: `payload_len + 4` would wrap for a hostile
  // length near UINT64_MAX and slip past an additive check.
  if (payload_len > r->remaining() ||
      r->remaining() - payload_len < sizeof(uint32_t)) {
    return Status::Corruption("frame length exceeds buffer");
  }
  const size_t begin = r->position();
  const uint32_t actual =
      Crc32c(r->data() + begin, static_cast<size_t>(payload_len));
  uint32_t expected = 0;
  std::memcpy(&expected,
              r->data() + begin + static_cast<size_t>(payload_len),
              sizeof(expected));
  if (actual != expected) {
    return Status::Corruption("frame checksum mismatch");
  }
  *payload_end = begin + static_cast<size_t>(payload_len);
  return Status::OK();
}

Status CrcFrame::Leave(BinaryReader* r, size_t payload_end) {
  if (r->position() != payload_end) {
    return Status::Corruption("frame payload length mismatch");
  }
  uint32_t crc = 0;
  return r->Get(&crc);  // verified by Enter(); consume it
}

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for write: " + path);
  }
  size_t written = bytes.empty()
                       ? 0
                       : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int rc = std::fclose(f);
  if (written != bytes.size() || rc != 0) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for read: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("ftell failed: " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t got = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    return Status::Corruption("short read: " + path);
  }
  return bytes;
}

}  // namespace bursthist
