// Wall-clock stopwatch for construction/query timing in benches.

#ifndef BURSTHIST_UTIL_STOPWATCH_H_
#define BURSTHIST_UTIL_STOPWATCH_H_

#include <chrono>

namespace bursthist {

/// Measures elapsed wall time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since start.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed microseconds since start.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bursthist

#endif  // BURSTHIST_UTIL_STOPWATCH_H_
