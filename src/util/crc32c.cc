#include "util/crc32c.h"

#include <array>

namespace bursthist {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // table[k][b]: CRC contribution of byte b placed k bytes before the
  // end of an 8-byte block (slice-by-8).
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][b] = crc;
    }
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = t[0][b];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][b] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 8) {
    const uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                                static_cast<uint32_t>(p[1]) << 8 |
                                static_cast<uint32_t>(p[2]) << 16 |
                                static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[7][low & 0xff] ^ tb.t[6][(low >> 8) & 0xff] ^
          tb.t[5][(low >> 16) & 0xff] ^ tb.t[4][low >> 24] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace bursthist
