// Deterministic pseudo-random substrate.
//
// Every stochastic component in the library (hash-family seeding,
// workload generation, query sampling) draws from Xoshiro256**, a
// small, fast, high-quality generator, seeded explicitly so each
// experiment is exactly reproducible.

#ifndef BURSTHIST_UTIL_RANDOM_H_
#define BURSTHIST_UTIL_RANDOM_H_

#include <cstdint>

namespace bursthist {

/// Xoshiro256** by Blackman & Vigna; seeded via SplitMix64.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds produce
  /// identical sequences on all platforms.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Poisson-distributed count with the given mean (>= 0). Uses
  /// Knuth's method for small means and a normal approximation with
  /// rounding for large ones; adequate for workload synthesis.
  uint64_t NextPoisson(double mean);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Splits off an independent generator (hash-mixed substream).
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
};

/// SplitMix64 finalizer — also reusable as a 64-bit mixing function.
uint64_t SplitMix64(uint64_t& state);

/// Reads a 64-bit seed from the named environment variable (decimal or
/// 0x-prefixed hex), falling back to `fallback` when the variable is
/// unset or unparsable. Randomized tests and benchmarks route their
/// master seed through this so any run is reproducible by exporting
/// one variable (the tests use BURSTHIST_TEST_SEED; see README).
uint64_t SeedFromEnv(const char* env_var, uint64_t fallback);

}  // namespace bursthist

#endif  // BURSTHIST_UTIL_RANDOM_H_
