#include "util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bursthist {

namespace {

Status IoError(const std::string& context, int err) {
  return Status::IOError(context + ": " + std::strerror(err));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override { Close(); }

  Status Append(const uint8_t* data, size_t n) override {
    while (n > 0) {
      const ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return IoError("write " + path_, errno);
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return IoError("fsync " + path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return IoError("close " + path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return IoError("open " + path, errno);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(path, fd));
  }

  Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return IoError("open " + path, errno);
    }
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return IoError("read " + path, err);
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
    return bytes;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return IoError("opendir " + dir, errno);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return IoError("mkdir " + dir, errno);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return IoError("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return IoError("unlink " + path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return IoError("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return IoError("truncate " + path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return IoError("open dir " + dir, errno);
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) return IoError("fsync dir " + dir, err);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace bursthist
