// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding
// every persistent byte the recovery subsystem writes.
//
// CRC32C detects all single-bit and double-bit errors and all burst
// errors up to 32 bits, which is exactly the failure model of the
// fault-injection matrix (bit flips, torn writes, truncation). The
// implementation is portable table-driven slice-by-8; no hardware
// intrinsics are required.

#ifndef BURSTHIST_UTIL_CRC32C_H_
#define BURSTHIST_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace bursthist {

/// Extends a running CRC32C with `n` more bytes. Start from 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of a whole buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Masks a CRC that will be stored inside data that is itself
/// checksummed (the WAL frame CRCs live inside snapshot-covered
/// files). Computing the CRC of a string containing embedded CRCs is
/// error-prone; the rotate-and-offset mask (as in LevelDB) makes the
/// stored value look unlike a raw CRC.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of Crc32cMask.
inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace bursthist

#endif  // BURSTHIST_UTIL_CRC32C_H_
