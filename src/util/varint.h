// Variable-length integer coding (LEB128) and zig-zag mapping.
//
// The persistent models are sequences of monotonically increasing
// timestamps and counts; delta + varint coding shrinks them 2-4x
// compared to fixed-width fields. BinaryWriter/Reader gain
// PutVarint / GetVarint built on these primitives.

#ifndef BURSTHIST_UTIL_VARINT_H_
#define BURSTHIST_UTIL_VARINT_H_

#include <cstdint>

#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Maps signed to unsigned so small-magnitude values stay short:
/// 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Appends v as LEB128 (1-10 bytes).
inline void PutVarint(BinaryWriter* w, uint64_t v) {
  while (v >= 0x80) {
    w->Put<uint8_t>(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w->Put<uint8_t>(static_cast<uint8_t>(v));
}

/// Appends a signed value via zig-zag + LEB128.
inline void PutSignedVarint(BinaryWriter* w, int64_t v) {
  PutVarint(w, ZigZagEncode(v));
}

/// Reads a LEB128 value; Corruption on truncation or overlong (>10
/// byte) encodings.
inline Status GetVarint(BinaryReader* r, uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    uint8_t byte = 0;
    BURSTHIST_RETURN_IF_ERROR(r->Get(&byte));
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return Status::OK();
    }
  }
  return Status::Corruption("overlong varint");
}

inline Status GetSignedVarint(BinaryReader* r, int64_t* out) {
  uint64_t u = 0;
  BURSTHIST_RETURN_IF_ERROR(GetVarint(r, &u));
  *out = ZigZagDecode(u);
  return Status::OK();
}

}  // namespace bursthist

#endif  // BURSTHIST_UTIL_VARINT_H_
