// Dyadic-window elevated-count detection in the spirit of Zhu &
// Shasha's wavelet/shifted-binary-tree burst detector (Section VII,
// [19]): find windows, at several dyadic widths, whose event count is
// anomalously high for that width.
//
// The stream is bucketed at a base granularity; for each dyadic scale
// (1, 2, 4, ... buckets) a sliding sum is compared against the scale's
// global mean + k standard deviations. Windows exceeding the bound at
// any scale are reported (merged). Like the other Section VII
// baselines this detects *elevated volume*, not acceleration — bursts
// with a high-but-stable rate trip it while the paper's burstiness
// stays near zero; the comparator bench makes that visible.

#ifndef BURSTHIST_BASELINES_WINDOW_BURST_H_
#define BURSTHIST_BASELINES_WINDOW_BURST_H_

#include <vector>

#include "core/burst_queries.h"
#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {

/// Detector parameters.
struct WindowBurstOptions {
  /// Base bucket width (time units).
  Timestamp bucket_width = 3600;
  /// Number of dyadic scales (1, 2, 4, ..., 2^(scales-1) buckets).
  size_t scales = 5;
  /// Report a window when its sum exceeds mean + k_sigma * stddev of
  /// the sums at the same scale.
  double k_sigma = 3.0;
};

/// Maximal intervals flagged at any scale.
std::vector<TimeInterval> WindowBursts(const SingleEventStream& stream,
                                       const WindowBurstOptions& options);

/// Per-bucket counts over the stream's support (helper; exposed for
/// tests and benches).
std::vector<double> BucketCounts(const SingleEventStream& stream,
                                 Timestamp bucket_width,
                                 Timestamp* first_bucket_start);

}  // namespace bursthist

#endif  // BURSTHIST_BASELINES_WINDOW_BURST_H_
