#include "baselines/macd.h"

#include <cassert>

namespace bursthist {

namespace {
// Standard EMA smoothing factor for a given period.
inline double Alpha(double period) { return 2.0 / (period + 1.0); }
}  // namespace

std::vector<MacdPoint> MacdSeries(const SingleEventStream& stream,
                                  const MacdOptions& options) {
  assert(options.bucket_width >= 1);
  std::vector<MacdPoint> out;
  if (stream.empty()) return out;

  const auto& times = stream.times();
  const Timestamp first_bucket = times.front() / options.bucket_width;
  const Timestamp last_bucket = times.back() / options.bucket_width;
  out.reserve(static_cast<size_t>(last_bucket - first_bucket + 1));

  const double a_fast = Alpha(options.fast_period);
  const double a_slow = Alpha(options.slow_period);
  const double a_sig = Alpha(options.signal_period);
  double ema_fast = 0.0, ema_slow = 0.0, ema_sig = 0.0;
  bool primed = false;

  size_t i = 0;
  for (Timestamp b = first_bucket; b <= last_bucket; ++b) {
    const Timestamp begin = b * options.bucket_width;
    const Timestamp end = begin + options.bucket_width;
    double count = 0.0;
    while (i < times.size() && times[i] < end) {
      ++count;
      ++i;
    }
    if (!primed) {
      ema_fast = ema_slow = count;
      primed = true;
    } else {
      ema_fast += a_fast * (count - ema_fast);
      ema_slow += a_slow * (count - ema_slow);
    }
    const double macd = ema_fast - ema_slow;
    ema_sig += a_sig * (macd - ema_sig);
    out.push_back(MacdPoint{begin, count, macd, macd - ema_sig});
  }
  return out;
}

std::vector<TimeInterval> MacdBursts(const SingleEventStream& stream,
                                     const MacdOptions& options,
                                     double threshold) {
  std::vector<TimeInterval> out;
  for (const auto& p : MacdSeries(stream, options)) {
    if (p.score >= threshold) {
      internal::PushInterval(p.bucket_start,
                             p.bucket_start + options.bucket_width - 1, &out);
    }
  }
  return out;
}

}  // namespace bursthist
