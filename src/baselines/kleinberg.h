// Kleinberg's burst-detection automaton (Section VII, [18]).
//
// "Kleinberg defined the term bursty for events, where it is assumed
//  that inter-event gaps x follow a density distribution, and a finite
//  state automaton is proposed to model burstiness."
//
// This is the classic 2-state variant: state 0 emits gaps from an
// exponential with the stream's base rate, state 1 from an exponential
// with `scaling` times that rate; entering the burst state costs
// gamma * ln(n). The optimal state sequence minimizes total cost
// (negative log-likelihood + transition costs) and is found by Viterbi
// dynamic programming in O(n). The burst intervals it labels are a
// *definitionally different* notion from the paper's acceleration
// burstiness — implemented here as an executable comparator
// (bench/tab_detector_agreement).

#ifndef BURSTHIST_BASELINES_KLEINBERG_H_
#define BURSTHIST_BASELINES_KLEINBERG_H_

#include <vector>

#include "core/burst_queries.h"
#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {

/// Parameters of the 2-state automaton.
struct KleinbergOptions {
  /// Burst-state rate multiplier s (> 1).
  double scaling = 3.0;
  /// Transition-cost coefficient gamma (>= 0); entering the burst
  /// state costs gamma * ln(n).
  double gamma = 1.0;
};

/// Optimal (min-cost) state label per inter-arrival gap; size is
/// stream.size() - 1 (empty for streams with fewer than 2 elements).
/// Exposed for tests; most callers want KleinbergBursts.
std::vector<uint8_t> KleinbergStates(const SingleEventStream& stream,
                                     const KleinbergOptions& options);

/// Maximal time intervals the automaton spends in the burst state.
/// An interval covers the arrivals whose *preceding* gap was labeled
/// bursty.
std::vector<TimeInterval> KleinbergBursts(const SingleEventStream& stream,
                                          const KleinbergOptions& options);

}  // namespace bursthist

#endif  // BURSTHIST_BASELINES_KLEINBERG_H_
