#include "baselines/kleinberg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bursthist {

std::vector<uint8_t> KleinbergStates(const SingleEventStream& stream,
                                     const KleinbergOptions& options) {
  assert(options.scaling > 1.0);
  assert(options.gamma >= 0.0);
  const auto& times = stream.times();
  if (times.size() < 2) return {};
  const size_t m = times.size() - 1;  // number of gaps

  // Base rate from the observed mean gap; zero gaps (same-timestamp
  // arrivals) are clamped to half a time unit so the exponential
  // likelihood stays finite.
  const double span =
      std::max<double>(1.0, static_cast<double>(times.back() - times.front()));
  const double alpha0 = static_cast<double>(m) / span;
  const double alpha1 = alpha0 * options.scaling;
  const double enter_cost =
      options.gamma * std::log(static_cast<double>(times.size()));

  auto gap_cost = [](double alpha, double x) {
    return -std::log(alpha) + alpha * x;
  };

  // Viterbi over the two states.
  std::vector<uint8_t> parent0(m), parent1(m);
  double c0 = 0.0, c1 = enter_cost;  // costs before the first gap
  for (size_t i = 0; i < m; ++i) {
    const double x =
        std::max(0.5, static_cast<double>(times[i + 1] - times[i]));
    const double e0 = gap_cost(alpha0, x);
    const double e1 = gap_cost(alpha1, x);
    // Into state 0: stay (c0) or fall back from 1 (c1, free).
    double n0;
    if (c0 <= c1) {
      n0 = c0 + e0;
      parent0[i] = 0;
    } else {
      n0 = c1 + e0;
      parent0[i] = 1;
    }
    // Into state 1: climb from 0 (pay enter_cost) or stay.
    double n1;
    if (c0 + enter_cost <= c1) {
      n1 = c0 + enter_cost + e1;
      parent1[i] = 0;
    } else {
      n1 = c1 + e1;
      parent1[i] = 1;
    }
    c0 = n0;
    c1 = n1;
  }

  std::vector<uint8_t> states(m);
  uint8_t cur = c0 <= c1 ? 0 : 1;
  for (size_t i = m; i-- > 0;) {
    states[i] = cur;
    cur = cur == 0 ? parent0[i] : parent1[i];
  }
  return states;
}

std::vector<TimeInterval> KleinbergBursts(const SingleEventStream& stream,
                                          const KleinbergOptions& options) {
  std::vector<TimeInterval> out;
  const auto states = KleinbergStates(stream, options);
  const auto& times = stream.times();
  for (size_t i = 0; i < states.size(); ++i) {
    if (states[i] == 1) {
      // Gap i spans [times[i], times[i+1]].
      internal::PushInterval(times[i], times[i + 1], &out);
    }
  }
  return out;
}

}  // namespace bursthist
