#include "baselines/window_burst.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bursthist {

std::vector<double> BucketCounts(const SingleEventStream& stream,
                                 Timestamp bucket_width,
                                 Timestamp* first_bucket_start) {
  assert(bucket_width >= 1);
  std::vector<double> counts;
  if (stream.empty()) {
    if (first_bucket_start != nullptr) *first_bucket_start = 0;
    return counts;
  }
  const auto& times = stream.times();
  const Timestamp first = times.front() / bucket_width;
  const Timestamp last = times.back() / bucket_width;
  if (first_bucket_start != nullptr) *first_bucket_start = first * bucket_width;
  counts.assign(static_cast<size_t>(last - first + 1), 0.0);
  for (Timestamp t : times) {
    counts[static_cast<size_t>(t / bucket_width - first)] += 1.0;
  }
  return counts;
}

std::vector<TimeInterval> WindowBursts(const SingleEventStream& stream,
                                       const WindowBurstOptions& options) {
  std::vector<TimeInterval> out;
  Timestamp origin = 0;
  const std::vector<double> counts =
      BucketCounts(stream, options.bucket_width, &origin);
  if (counts.empty()) return out;

  std::vector<std::pair<Timestamp, Timestamp>> flagged;
  for (size_t s = 0; s < options.scales; ++s) {
    const size_t w = size_t{1} << s;
    if (w > counts.size()) break;
    // Sliding sums of width w (one per start position).
    const size_t n = counts.size() - w + 1;
    std::vector<double> sums(n);
    double run = 0.0;
    for (size_t i = 0; i < w; ++i) run += counts[i];
    sums[0] = run;
    for (size_t i = 1; i < n; ++i) {
      run += counts[i + w - 1] - counts[i - 1];
      sums[i] = run;
    }
    // Scale statistics.
    double mean = 0.0;
    for (double v : sums) mean += v;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double v : sums) var += (v - mean) * (v - mean);
    var /= static_cast<double>(n);
    const double bound = mean + options.k_sigma * std::sqrt(var);

    for (size_t i = 0; i < n; ++i) {
      if (sums[i] > bound) {
        const Timestamp begin =
            origin + static_cast<Timestamp>(i) * options.bucket_width;
        const Timestamp end =
            begin + static_cast<Timestamp>(w) * options.bucket_width - 1;
        flagged.emplace_back(begin, end);
      }
    }
  }

  std::sort(flagged.begin(), flagged.end());
  for (const auto& [begin, end] : flagged) {
    internal::PushInterval(begin, end, &out);
  }
  return out;
}

}  // namespace bursthist
