// MACD-style trending score (Section VII: "Lu et al. and Schubert et
// al. defined trendy topic with a variant of Moving Average
// Convergence Divergence").
//
// The event stream is bucketed into fixed windows; the trending score
// is the MACD histogram over per-bucket counts:
//   macd(t)   = EMA_fast(counts) - EMA_slow(counts)
//   signal(t) = EMA_signal(macd)
//   score(t)  = macd(t) - signal(t)
// Positive, large scores mark accelerating topics. Like Kleinberg's
// automaton, this is a streaming *current-trend* detector: answering a
// historical query still requires replaying the stream — exactly the
// gap the paper's persistent sketches close.

#ifndef BURSTHIST_BASELINES_MACD_H_
#define BURSTHIST_BASELINES_MACD_H_

#include <vector>

#include "core/burst_queries.h"
#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {

/// MACD parameters (periods are in buckets, the classic 12/26/9).
struct MacdOptions {
  Timestamp bucket_width = 3600;
  double fast_period = 12.0;
  double slow_period = 26.0;
  double signal_period = 9.0;
};

/// One bucket of the computed series.
struct MacdPoint {
  Timestamp bucket_start = 0;
  double count = 0.0;
  double macd = 0.0;
  double score = 0.0;  ///< histogram: macd - signal
};

/// The full MACD series over the stream's support (empty for an empty
/// stream). Buckets with no arrivals are included (count 0).
std::vector<MacdPoint> MacdSeries(const SingleEventStream& stream,
                                  const MacdOptions& options);

/// Maximal intervals where the MACD histogram score is >= threshold.
std::vector<TimeInterval> MacdBursts(const SingleEventStream& stream,
                                     const MacdOptions& options,
                                     double threshold);

}  // namespace bursthist

#endif  // BURSTHIST_BASELINES_MACD_H_
