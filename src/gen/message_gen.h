// Message-level synthesis: raw text streams for the Section II-A
// pipeline.
//
// The other generators emit (id, timestamp) pairs directly; this one
// goes one level up and fabricates the *messages* — each event gets a
// hashtag plus a few phrasing templates, and a configurable fraction
// of messages mentions the event without its hashtag (the "LBC homeboy
// stoked to see Brasil wins" case), exercising the curated-keyword
// path of EventIdMapper. A small fraction of noise messages carries no
// event signal at all.

#ifndef BURSTHIST_GEN_MESSAGE_GEN_H_
#define BURSTHIST_GEN_MESSAGE_GEN_H_

#include <string>
#include <vector>

#include "stream/event_stream.h"
#include "stream/text_pipeline.h"
#include "util/random.h"

namespace bursthist {

/// Knobs for message synthesis.
struct MessageGenOptions {
  /// Probability a message mentions its event via a bare keyword
  /// instead of the hashtag.
  double keyword_only_fraction = 0.25;
  /// Probability of an extra unrelated noise message following an
  /// event mention.
  double noise_fraction = 0.1;
  uint64_t seed = 7;
};

/// The generated corpus plus the mapper configured to decode it.
struct MessageCorpus {
  std::vector<Message> messages;
  /// Curated bindings (hashtag + keyword per event) pre-installed.
  EventIdMapper mapper;
  /// The ground-truth event stream the corpus encodes.
  EventStream truth;
};

/// Renders an event stream into messages. `universe_size` bounds the
/// ids in `events`; each id gets a synthetic hashtag "#e<i>" and
/// keyword "topic<i>" bound in the returned mapper.
MessageCorpus SynthesizeMessages(const EventStream& events,
                                 EventId universe_size,
                                 const MessageGenOptions& options);

}  // namespace bursthist

#endif  // BURSTHIST_GEN_MESSAGE_GEN_H_
