// Arrival-rate modelling for synthetic event streams.
//
// A RateCurve is a sum of trapezoidal primitives (constant plateaus
// are degenerate trapezoids), which is expressive enough to shape the
// paper's described behaviours — stable baselines, ramping bursts,
// short spikes — while keeping exact integrals and O(1) inverse-CDF
// sampling per arrival. A stream is drawn as an inhomogeneous Poisson
// process: N ~ Poisson(total integral), then N i.i.d. times from the
// normalized rate density, sorted and discretized to integer
// timestamps.

#ifndef BURSTHIST_GEN_RATE_CURVE_H_
#define BURSTHIST_GEN_RATE_CURVE_H_

#include <vector>

#include "stream/event_stream.h"
#include "stream/types.h"
#include "util/random.h"

namespace bursthist {

/// One trapezoidal rate component: rate ramps linearly 0 -> height on
/// [t0, t1], holds on [t1, t2], ramps back to 0 on [t2, t3].
struct RatePrimitive {
  Timestamp t0 = 0;
  Timestamp t1 = 0;
  Timestamp t2 = 0;
  Timestamp t3 = 0;
  double height = 0.0;  ///< events per unit time at the plateau

  /// Instantaneous rate at time t.
  double RateAt(Timestamp t) const;

  /// Expected number of arrivals contributed by this component.
  double Integral() const;

  /// Draws one arrival time from this component's normalized density.
  double Sample(Rng* rng) const;
};

/// A sum of trapezoidal components.
class RateCurve {
 public:
  /// Adds a constant plateau of `rate` on [begin, end).
  void AddConstant(Timestamp begin, Timestamp end, double rate);

  /// Adds a burst: ramp over [start, peak_begin], plateau to peak_end,
  /// decay to `end`. Preconditions: start <= peak_begin <= peak_end <=
  /// end, height >= 0.
  void AddBurst(Timestamp start, Timestamp peak_begin, Timestamp peak_end,
                Timestamp end, double height);

  /// Adds a symmetric triangular spike of the given total width
  /// centred at `center`.
  void AddSpike(Timestamp center, Timestamp width, double height);

  /// Instantaneous rate (sum over components).
  double RateAt(Timestamp t) const;

  /// Expected total arrivals.
  double Integral() const;

  /// Multiplies every component's height by `factor`.
  void Scale(double factor);

  /// Scales the curve so Integral() == expected_total (no-op when the
  /// curve is empty or identically zero).
  void NormalizeTo(double expected_total);

  const std::vector<RatePrimitive>& primitives() const { return prims_; }

  /// Draws an inhomogeneous-Poisson stream: the count is
  /// Poisson(Integral()) and each arrival time comes from the
  /// normalized density, discretized by truncation.
  SingleEventStream Sample(Rng* rng) const;

 private:
  std::vector<RatePrimitive> prims_;
};

}  // namespace bursthist

#endif  // BURSTHIST_GEN_RATE_CURVE_H_
