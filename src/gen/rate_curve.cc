#include "gen/rate_curve.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bursthist {

double RatePrimitive::RateAt(Timestamp t) const {
  if (t < t0 || t >= t3) return 0.0;
  if (t < t1) {
    return height * static_cast<double>(t - t0) /
           static_cast<double>(t1 - t0);
  }
  if (t < t2) return height;
  return height * static_cast<double>(t3 - t) /
         static_cast<double>(t3 - t2);
}

double RatePrimitive::Integral() const {
  const double up = static_cast<double>(t1 - t0) * height / 2.0;
  const double flat = static_cast<double>(t2 - t1) * height;
  const double down = static_cast<double>(t3 - t2) * height / 2.0;
  return up + flat + down;
}

double RatePrimitive::Sample(Rng* rng) const {
  const double up = static_cast<double>(t1 - t0) * height / 2.0;
  const double flat = static_cast<double>(t2 - t1) * height;
  const double down = static_cast<double>(t3 - t2) * height / 2.0;
  const double total = up + flat + down;
  assert(total > 0.0);
  const double pick = rng->NextDouble() * total;
  if (pick < up) {
    // Rising ramp: density proportional to (t - t0); CDF ~ x^2.
    const double u = rng->NextDouble();
    return static_cast<double>(t0) +
           std::sqrt(u) * static_cast<double>(t1 - t0);
  }
  if (pick < up + flat) {
    return static_cast<double>(t1) +
           rng->NextDouble() * static_cast<double>(t2 - t1);
  }
  // Falling ramp: mirror of the rising case.
  const double u = rng->NextDouble();
  return static_cast<double>(t3) -
         std::sqrt(u) * static_cast<double>(t3 - t2);
}

void RateCurve::AddConstant(Timestamp begin, Timestamp end, double rate) {
  assert(begin <= end);
  assert(rate >= 0.0);
  if (rate <= 0.0 || begin == end) return;
  prims_.push_back(RatePrimitive{begin, begin, end, end, rate});
}

void RateCurve::AddBurst(Timestamp start, Timestamp peak_begin,
                         Timestamp peak_end, Timestamp end, double height) {
  assert(start <= peak_begin && peak_begin <= peak_end && peak_end <= end);
  assert(height >= 0.0);
  if (height <= 0.0 || start == end) return;
  prims_.push_back(RatePrimitive{start, peak_begin, peak_end, end, height});
}

void RateCurve::AddSpike(Timestamp center, Timestamp width, double height) {
  const Timestamp half = std::max<Timestamp>(1, width / 2);
  AddBurst(center - half, center, center, center + half, height);
}

double RateCurve::RateAt(Timestamp t) const {
  double r = 0.0;
  for (const auto& p : prims_) r += p.RateAt(t);
  return r;
}

double RateCurve::Integral() const {
  double total = 0.0;
  for (const auto& p : prims_) total += p.Integral();
  return total;
}

void RateCurve::Scale(double factor) {
  assert(factor >= 0.0);
  for (auto& p : prims_) p.height *= factor;
}

void RateCurve::NormalizeTo(double expected_total) {
  const double current = Integral();
  if (current <= 0.0) return;
  Scale(expected_total / current);
}

SingleEventStream RateCurve::Sample(Rng* rng) const {
  std::vector<double> weights;
  weights.reserve(prims_.size());
  double total = 0.0;
  for (const auto& p : prims_) {
    total += p.Integral();
    weights.push_back(total);
  }
  std::vector<Timestamp> times;
  if (total <= 0.0) return SingleEventStream(std::move(times));

  const uint64_t n = rng->NextPoisson(total);
  times.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double pick = rng->NextDouble() * total;
    const size_t idx = static_cast<size_t>(
        std::lower_bound(weights.begin(), weights.end(), pick) -
        weights.begin());
    const double t = prims_[std::min(idx, prims_.size() - 1)].Sample(rng);
    times.push_back(static_cast<Timestamp>(std::floor(t)));
  }
  std::sort(times.begin(), times.end());
  return SingleEventStream(std::move(times));
}

}  // namespace bursthist
