// Synthetic dataset presets calibrated to the paper's evaluation
// (Section VI).
//
// The paper's raw Twitter samples are proprietary, but every algorithm
// only sees (event id, timestamp) pairs — the message -> id mapping is
// an explicit black box (Section II-A). These presets regenerate
// streams with the *published* shape parameters:
//
//   olympicrio — August 2016, T = 2,678,400 s at 1 s granularity,
//                N = 5,032,975 tweets over K = 864 event ids.
//                Includes the two featured single-event streams:
//     soccer   — matches throughout the month; several bursts; the
//                largest right before the final (Figure 7).
//     swimming — events concentrated in the first ~9 days, then both
//                incoming rate and burstiness drop to ~0 (Figure 7).
//                Both are volume-normalized to 1,000,000 tweets when
//                used standalone, as in the paper.
//   uspolitics — June–November 2016 (183 days), K = 1,689 event ids,
//                5,000,000 tweets, heavy-tailed event popularity with
//                many short intermittent spikes (Figure 13), split
//                into two categories (Democrats / Republican).
//
// All presets accept a `scale` so tests and CI-speed benches can run
// on proportionally smaller streams, and a seed for reproducibility.

#ifndef BURSTHIST_GEN_SCENARIOS_H_
#define BURSTHIST_GEN_SCENARIOS_H_

#include <string>
#include <vector>

#include "gen/rate_curve.h"
#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {

/// Seconds per day; the presets use 1-second granularity like the
/// paper's datasets.
constexpr Timestamp kSecondsPerDay = 86'400;

/// August 2016: 31 days.
constexpr Timestamp kOlympicHorizon = 31 * kSecondsPerDay;  // 2,678,400

/// June–November 2016: 183 days.
constexpr Timestamp kPoliticsHorizon = 183 * kSecondsPerDay;

/// Generation knobs shared by all presets.
struct ScenarioConfig {
  uint64_t seed = 42;
  /// Volume multiplier: 1.0 reproduces the paper's N; benches default
  /// to smaller scales for CI-speed runs.
  double scale = 1.0;
};

/// A generated multi-event dataset.
struct Dataset {
  std::string name;
  EventStream stream;
  EventId universe_size = 0;
  Timestamp t_begin = 0;
  Timestamp t_end = 0;
  /// Optional per-event category (used by the uspolitics timeline:
  /// 0 = Democrats, 1 = Republican). Empty when not applicable.
  std::vector<int> category;
};

/// The soccer rate curve (before normalization).
RateCurve SoccerRateCurve();

/// The swimming rate curve (before normalization).
RateCurve SwimmingRateCurve();

/// Single-event "soccer" stream, ~1M * scale tweets over 31 days.
SingleEventStream MakeSoccer(const ScenarioConfig& config);

/// Single-event "swimming" stream, ~1M * scale tweets over 31 days.
SingleEventStream MakeSwimming(const ScenarioConfig& config);

/// Full olympicrio mixture: K = 864 ids, ~5.03M * scale tweets.
/// Event 0 is soccer, event 1 is swimming; the remainder follow a
/// Zipf popularity with randomized burst schedules.
Dataset MakeOlympicRio(const ScenarioConfig& config);

/// Full uspolitics mixture: K = 1,689 ids, ~5M * scale tweets over
/// 183 days, heavy-tailed popularity, short intermittent spikes, and
/// a two-way category split.
Dataset MakeUsPolitics(const ScenarioConfig& config);

/// Zipf weights w_i ~ 1 / (i+1)^alpha, normalized to sum to 1.
std::vector<double> ZipfWeights(size_t k, double alpha);

}  // namespace bursthist

#endif  // BURSTHIST_GEN_SCENARIOS_H_
