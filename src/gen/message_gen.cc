#include "gen/message_gen.h"

#include <iterator>

namespace bursthist {

namespace {

const char* const kTagTemplates[] = {
    "breaking: %s everyone is talking about it",
    "%s happening right now",
    "cannot believe %s !!",
    "live updates %s follow along",
    "so proud %s what a moment",
};

const char* const kKeywordTemplates[] = {
    "friends watching %s together tonight",
    "my take on %s nobody asked for",
    "%s is all over my feed today",
    "still thinking about %s honestly",
};

const char* const kNoiseMessages[] = {
    "good morning world",
    "coffee first, questions later",
    "anyone up for lunch downtown?",
    "what a beautiful sunset today",
};

std::string Fill(const char* tmpl, const std::string& subject) {
  std::string out;
  for (const char* p = tmpl; *p != '\0'; ++p) {
    if (p[0] == '%' && p[1] == 's') {
      out += subject;
      ++p;
    } else {
      out.push_back(*p);
    }
  }
  return out;
}

}  // namespace

MessageCorpus SynthesizeMessages(const EventStream& events,
                                 EventId universe_size,
                                 const MessageGenOptions& options) {
  MessageCorpus corpus{{}, EventIdMapper(universe_size), EventStream{}};
  std::vector<std::string> tags(universe_size), keywords(universe_size);
  for (EventId e = 0; e < universe_size; ++e) {
    tags[e] = "#e" + std::to_string(e);
    keywords[e] = "topic" + std::to_string(e);
    // Both spellings collapse to the same id (the paper's Brasil
    // example).
    (void)corpus.mapper.BindKeyword(tags[e], e);
    (void)corpus.mapper.BindKeyword(keywords[e], e);
  }

  Rng rng(options.seed);
  for (const auto& r : events.records()) {
    const bool keyword_only = rng.NextDouble() < options.keyword_only_fraction;
    std::string text;
    if (keyword_only) {
      const auto& tmpl =
          kKeywordTemplates[rng.NextBelow(std::size(kKeywordTemplates))];
      text = Fill(tmpl, keywords[r.id]);
    } else {
      const auto& tmpl =
          kTagTemplates[rng.NextBelow(std::size(kTagTemplates))];
      text = Fill(tmpl, tags[r.id]);
    }
    corpus.messages.push_back(Message{std::move(text), r.time});
    corpus.truth.Append(r.id, r.time);
    if (rng.NextDouble() < options.noise_fraction) {
      corpus.messages.push_back(Message{
          kNoiseMessages[rng.NextBelow(std::size(kNoiseMessages))], r.time});
    }
  }
  return corpus;
}

}  // namespace bursthist
