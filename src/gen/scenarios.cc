#include "gen/scenarios.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bursthist {

namespace {

constexpr double kSoccerVolume = 1'000'000.0;
constexpr double kSwimmingVolume = 1'000'000.0;
constexpr double kOlympicVolume = 5'032'975.0;
constexpr EventId kOlympicEvents = 864;
constexpr double kPoliticsVolume = 5'000'000.0;
constexpr EventId kPoliticsEvents = 1'689;

Timestamp Days(double d) {
  return static_cast<Timestamp>(d * static_cast<double>(kSecondsPerDay));
}

}  // namespace

std::vector<double> ZipfWeights(size_t k, double alpha) {
  std::vector<double> w(k);
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    total += w[i];
  }
  for (auto& v : w) v /= total;
  return w;
}

RateCurve SoccerRateCurve() {
  // Soccer matches ran throughout the tournament (Aug 3-20): group
  // stages every couple of days with growing attention, quarter/semi
  // finals, and the largest burst right before the final (Figure 7b:
  // "The largest burst happens right before the final").
  RateCurve curve;
  curve.AddConstant(0, kOlympicHorizon, 0.05);  // ambient chatter
  // Group stage match days (moderate, growing).
  const double group_heights[] = {0.5, 0.55, 0.65, 0.7, 0.8, 0.9};
  const double group_days[] = {1.5, 3.5, 5.5, 7.5, 9.5, 11.5};
  for (int i = 0; i < 6; ++i) {
    curve.AddBurst(Days(group_days[i] - 0.25), Days(group_days[i]),
                   Days(group_days[i] + 0.1), Days(group_days[i] + 0.6),
                   group_heights[i]);
  }
  // Knockout rounds.
  curve.AddBurst(Days(13.2), Days(13.6), Days(13.7), Days(14.3), 1.4);
  curve.AddBurst(Days(16.2), Days(16.6), Days(16.7), Days(17.3), 2.0);
  // Build-up and the final (day ~17.5-20.5): sharpest acceleration
  // right before the final itself.
  curve.AddBurst(Days(18.0), Days(19.8), Days(20.0), Days(20.8), 4.5);
  curve.AddSpike(Days(19.9), Days(0.2), 6.0);
  // Post-final discussion decaying through the closing ceremony.
  curve.AddBurst(Days(20.8), Days(20.8), Days(21.0), Days(23.0), 0.8);
  return curve;
}

RateCurve SwimmingRateCurve() {
  // Swimming finals were concentrated in the first half (Aug 6-13):
  // strong daily bursts early, then near-silence (Figure 7).
  RateCurve curve;
  curve.AddConstant(0, Days(10.5), 0.08);
  curve.AddConstant(Days(10.5), kOlympicHorizon, 0.004);
  const double finals_heights[] = {1.2, 1.6, 2.2, 2.8, 3.2, 3.0, 2.4, 1.5};
  for (int day = 1; day <= 8; ++day) {
    // Evening finals sessions: sharp ramp, short peak, fast decay.
    const double h = finals_heights[day - 1];
    curve.AddBurst(Days(day + 0.70), Days(day + 0.85), Days(day + 0.95),
                   Days(day + 1.25), h);
  }
  return curve;
}

SingleEventStream MakeSoccer(const ScenarioConfig& config) {
  RateCurve curve = SoccerRateCurve();
  curve.NormalizeTo(kSoccerVolume * config.scale);
  Rng rng(config.seed ^ 0x50cce5ULL);
  return curve.Sample(&rng);
}

SingleEventStream MakeSwimming(const ScenarioConfig& config) {
  RateCurve curve = SwimmingRateCurve();
  curve.NormalizeTo(kSwimmingVolume * config.scale);
  Rng rng(config.seed ^ 0x5117ULL);
  return curve.Sample(&rng);
}

namespace {

// A generic "Olympic discipline" curve: ambient chatter plus a few
// session bursts at random days within the active window.
RateCurve RandomOlympicCurve(Rng* rng) {
  RateCurve curve;
  // Real event channels are near-silent outside their sessions: keep
  // the ambient rate small relative to the bursts, otherwise the
  // Poisson fluctuation of hundreds of always-on baselines becomes an
  // unrealistic burstiness-noise floor for the sketches.
  curve.AddConstant(0, kOlympicHorizon, 0.002 + 0.008 * rng->NextDouble());
  const int bursts = 2 + static_cast<int>(rng->NextBelow(4));
  for (int i = 0; i < bursts; ++i) {
    const double day = 1.0 + 20.0 * rng->NextDouble();
    const double ramp = 0.1 + 0.4 * rng->NextDouble();    // days
    const double hold = 0.05 + 0.15 * rng->NextDouble();  // days
    const double decay = 0.2 + 0.6 * rng->NextDouble();   // days
    const double height = 0.5 + 2.5 * rng->NextDouble();
    curve.AddBurst(Days(day), Days(day + ramp), Days(day + ramp + hold),
                   Days(day + ramp + hold + decay), height);
  }
  return curve;
}

// A "political topic" curve: low baseline over six months plus many
// short spikes (Figure 13's intermittent pattern).
RateCurve RandomPoliticsCurve(Rng* rng) {
  RateCurve curve;
  curve.AddConstant(0, kPoliticsHorizon, 0.002 + 0.01 * rng->NextDouble());
  const int spikes = 1 + static_cast<int>(rng->NextBelow(6));
  for (int i = 0; i < spikes; ++i) {
    const double day = 2.0 + 179.0 * rng->NextDouble();
    const double width_h = 1.0 + 11.0 * rng->NextDouble();  // hours
    const double height = 0.3 + 4.0 * rng->NextDouble();
    curve.AddSpike(Days(day),
                   static_cast<Timestamp>(width_h * 3600.0), height);
  }
  return curve;
}

}  // namespace

Dataset MakeOlympicRio(const ScenarioConfig& config) {
  Rng rng(config.seed ^ 0x01f3a9c0ULL);
  std::vector<RateCurve> curves;
  curves.reserve(kOlympicEvents);
  curves.push_back(SoccerRateCurve());
  curves.push_back(SwimmingRateCurve());
  Rng curve_rng = rng.Fork(1);
  for (EventId e = 2; e < kOlympicEvents; ++e) {
    curves.push_back(RandomOlympicCurve(&curve_rng));
  }

  // Popularity: soccer and swimming are the top two disciplines; the
  // tail follows a Zipf law.
  std::vector<double> weights = ZipfWeights(kOlympicEvents, 1.05);
  const double total_volume = kOlympicVolume * config.scale;
  std::vector<SingleEventStream> streams;
  streams.reserve(kOlympicEvents);
  Rng sample_rng = rng.Fork(2);
  for (EventId e = 0; e < kOlympicEvents; ++e) {
    curves[e].NormalizeTo(total_volume * weights[e]);
    Rng stream_rng = sample_rng.Fork(e);
    streams.push_back(curves[e].Sample(&stream_rng));
  }

  Dataset ds;
  ds.name = "olympicrio";
  ds.stream = MergeStreams(streams);
  ds.universe_size = kOlympicEvents;
  ds.t_begin = 0;
  ds.t_end = kOlympicHorizon;
  return ds;
}

Dataset MakeUsPolitics(const ScenarioConfig& config) {
  Rng rng(config.seed ^ 0x90115ULL);
  std::vector<double> weights = ZipfWeights(kPoliticsEvents, 1.2);
  // Shuffle the popularity assignment so rank is independent of id
  // (ids are hashed by the sketches; this also exercises that).
  Rng shuffle_rng = rng.Fork(7);
  for (size_t i = weights.size(); i > 1; --i) {
    std::swap(weights[i - 1], weights[shuffle_rng.NextBelow(i)]);
  }

  const double total_volume = kPoliticsVolume * config.scale;
  std::vector<SingleEventStream> streams;
  streams.reserve(kPoliticsEvents);
  std::vector<int> category(kPoliticsEvents);
  Rng curve_rng = rng.Fork(3);
  Rng sample_rng = rng.Fork(4);
  for (EventId e = 0; e < kPoliticsEvents; ++e) {
    RateCurve curve = RandomPoliticsCurve(&curve_rng);
    // A few landmark moments shared by many topics of one party, e.g.
    // the July 18 Republican national convention (day ~48 from June 1).
    category[e] = static_cast<int>(curve_rng.NextBelow(2));
    if (curve_rng.NextDouble() < 0.15) {
      const double day = category[e] == 1 ? 48.0 : 56.0;  // RNC / DNC
      curve.AddSpike(Days(day + curve_rng.NextDouble()),
                     static_cast<Timestamp>(6 * 3600), 2.0);
    }
    if (curve_rng.NextDouble() < 0.2) {
      // Election-day surge (Nov 8 = day ~161).
      curve.AddSpike(Days(160.5 + curve_rng.NextDouble()),
                     static_cast<Timestamp>(12 * 3600), 3.0);
    }
    curve.NormalizeTo(total_volume * weights[e]);
    Rng stream_rng = sample_rng.Fork(e);
    streams.push_back(curve.Sample(&stream_rng));
  }

  Dataset ds;
  ds.name = "uspolitics";
  ds.stream = MergeStreams(streams);
  ds.universe_size = kPoliticsEvents;
  ds.t_begin = 0;
  ds.t_end = kPoliticsHorizon;
  ds.category = std::move(category);
  return ds;
}

}  // namespace bursthist
