#include "replication/repl_wire.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/serialize.h"

namespace bursthist {
namespace repl {

namespace {

// u32 payload_len | u32 masked_crc | u8 type — identical to the WAL's.
constexpr size_t kFrameHeader = 9;

uint32_t FrameCrc(const uint8_t* type_and_payload, size_t n) {
  return Crc32cMask(Crc32c(type_and_payload, n));
}

void PutPosition(BinaryWriter* w, const WalPosition& p) {
  w->Put<uint64_t>(p.seq);
  w->Put<uint64_t>(p.offset);
}

Status GetPosition(BinaryReader* r, WalPosition* p) {
  BURSTHIST_RETURN_IF_ERROR(r->Get(&p->seq));
  return r->Get(&p->offset);
}

Status NoTrailing(const BinaryReader& r, const char* what) {
  if (r.remaining() != 0) {
    return Status::Corruption(std::string("oversized ") + what + " frame");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeFrame(ReplFrameType type,
                                 const std::vector<uint8_t>& payload) {
  BinaryWriter frame;
  frame.Put<uint32_t>(static_cast<uint32_t>(payload.size()));
  frame.Put<uint32_t>(0);  // patched below: crc over type + payload
  frame.Put<uint8_t>(static_cast<uint8_t>(type));
  const size_t body_begin = frame.size() - 1;
  for (uint8_t b : payload) frame.Put<uint8_t>(b);
  frame.Patch<uint32_t>(
      4, FrameCrc(frame.data() + body_begin, frame.size() - body_begin));
  return frame.TakeBytes();
}

std::vector<uint8_t> EncodeHello(const HelloFrame& f) {
  BinaryWriter w;
  w.Put<uint32_t>(f.proto_version);
  w.Put<uint8_t>(f.have_state ? 1 : 0);
  PutPosition(&w, f.resume);
  return EncodeFrame(ReplFrameType::kHello, w.bytes());
}

std::vector<uint8_t> EncodeSnapshot(const SnapshotFrame& f) {
  BinaryWriter w;
  w.Put<uint64_t>(f.generation);
  PutPosition(&w, f.covered);
  for (uint8_t b : f.blob) w.Put<uint8_t>(b);
  return EncodeFrame(ReplFrameType::kSnapshot, w.bytes());
}

std::vector<uint8_t> EncodeRecord(const RecordFrame& f) {
  BinaryWriter w;
  PutPosition(&w, f.end);
  w.Put<uint32_t>(f.e);
  w.Put<int64_t>(f.t);
  w.Put<uint64_t>(f.count);
  return EncodeFrame(ReplFrameType::kRecord, w.bytes());
}

std::vector<uint8_t> EncodeHeartbeat(const HeartbeatFrame& f) {
  BinaryWriter w;
  PutPosition(&w, f.durable_end);
  w.Put<int64_t>(f.watermark);
  return EncodeFrame(ReplFrameType::kHeartbeat, w.bytes());
}

std::vector<uint8_t> EncodeError(const ErrorFrame& f) {
  BinaryWriter w;
  w.Put<uint32_t>(f.code);
  for (char c : f.message) w.Put<uint8_t>(static_cast<uint8_t>(c));
  return EncodeFrame(ReplFrameType::kError, w.bytes());
}

Status DecodeHello(const std::vector<uint8_t>& payload, HelloFrame* out) {
  BinaryReader r(payload);
  uint8_t have = 0;
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out->proto_version));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&have));
  BURSTHIST_RETURN_IF_ERROR(GetPosition(&r, &out->resume));
  out->have_state = have != 0;
  return NoTrailing(r, "HELLO");
}

Status DecodeSnapshot(const std::vector<uint8_t>& payload,
                      SnapshotFrame* out) {
  BinaryReader r(payload);
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out->generation));
  BURSTHIST_RETURN_IF_ERROR(GetPosition(&r, &out->covered));
  const size_t blob_len = r.remaining();
  out->blob.resize(blob_len);
  if (blob_len > 0) {
    std::memcpy(out->blob.data(), payload.data() + (payload.size() - blob_len),
                blob_len);
  }
  return Status::OK();
}

Status DecodeRecord(const std::vector<uint8_t>& payload, RecordFrame* out) {
  BinaryReader r(payload);
  BURSTHIST_RETURN_IF_ERROR(GetPosition(&r, &out->end));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out->e));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out->t));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out->count));
  return NoTrailing(r, "RECORD");
}

Status DecodeHeartbeat(const std::vector<uint8_t>& payload,
                       HeartbeatFrame* out) {
  BinaryReader r(payload);
  BURSTHIST_RETURN_IF_ERROR(GetPosition(&r, &out->durable_end));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out->watermark));
  return NoTrailing(r, "HEARTBEAT");
}

Status DecodeError(const std::vector<uint8_t>& payload, ErrorFrame* out) {
  BinaryReader r(payload);
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out->code));
  out->message.assign(reinterpret_cast<const char*>(payload.data()) +
                          (payload.size() - r.remaining()),
                      r.remaining());
  return Status::OK();
}

void FrameReader::Feed(const uint8_t* data, size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow the buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

Result<bool> FrameReader::Next(ReplFrame* out) {
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeader) return false;
  uint32_t payload_len = 0, stored_crc = 0;
  std::memcpy(&payload_len, buf_.data() + pos_, sizeof payload_len);
  std::memcpy(&stored_crc, buf_.data() + pos_ + 4, sizeof stored_crc);
  if (payload_len > max_payload_) {
    return Status::Corruption("replication frame length exceeds limit");
  }
  const size_t frame_size = kFrameHeader + payload_len;
  if (avail < frame_size) return false;
  const uint8_t* body = buf_.data() + pos_ + 8;
  if (FrameCrc(body, 1 + payload_len) != stored_crc) {
    return Status::Corruption("replication frame checksum mismatch");
  }
  out->type = static_cast<ReplFrameType>(body[0]);
  out->payload.assign(body + 1, body + 1 + payload_len);
  pos_ += frame_size;
  return true;
}

}  // namespace repl
}  // namespace bursthist
