#include "replication/wal_shipper.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "fault/crashpoint.h"
#include "obs/metrics.h"
#include "recovery/durable_engine.h"
#include "recovery/snapshot.h"
#include "replication/repl_wire.h"

namespace bursthist {
namespace repl {

namespace {

using Clock = std::chrono::steady_clock;

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool SendAll(int fd, const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

// Polls the follower socket for up to `timeout_ms`. Returns false
// once the follower closed or errored (a follower never sends after
// HELLO, so any EOF/garbage means the connection is done).
bool FollowerStillThere(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) return errno == EINTR;
  if (r == 0) return true;
  char sink[256];
  const ssize_t n = ::recv(fd, sink, sizeof sink, MSG_DONTWAIT);
  return n > 0;  // stray bytes are drained and ignored
}

}  // namespace

WalShipper::~WalShipper() { Stop(); }

Status WalShipper::Start(Env* env, const std::string& dir,
                         const WalShipperOptions& options,
                         LeaderStateFn state) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("shipper already started");
  }
  env_ = env;
  dir_ = dir;
  options_ = options;
  state_ = std::move(state);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("unparseable IPv4 host: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IOError("bind: " + std::string(strerror(errno)));
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    const Status st =
        Status::IOError("listen: " + std::string(strerror(errno)));
    CloseFd(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st =
        Status::IOError("getsockname: " + std::string(strerror(errno)));
    CloseFd(fd);
    return st;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void WalShipper::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : follower_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(follower_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void WalShipper::AcceptLoop() {
  BURSTHIST_COUNTER(m_conns, obs::kReplFollowerConnectionsTotal);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire) ||
        active_followers_ >= options_.max_followers) {
      ::close(fd);
      continue;
    }
    ++active_followers_;
    follower_fds_.push_back(fd);
    m_conns.Inc();
    follower_threads_.push_back(std::thread([this, fd] {
      ServeFollower(fd);
      std::lock_guard<std::mutex> inner(mu_);
      auto it = std::find(follower_fds_.begin(), follower_fds_.end(), fd);
      if (it != follower_fds_.end()) follower_fds_.erase(it);
      ::close(fd);
      --active_followers_;
    }));
  }
}

Status WalShipper::SendBootstrapSnapshot(int fd, WalPosition* pos) {
  BURSTHIST_COUNTER(m_snaps, obs::kReplSnapshotsServedTotal);
  BURSTHIST_CRASHPOINT("repl.bootstrap.pre_send");
  auto gens = ListSnapshots(env_, dir_);
  if (!gens.ok()) return gens.status();
  if (gens.value().empty()) {
    return Status::NotFound("no snapshot to bootstrap from");
  }
  auto snap = ReadSnapshotFile(env_, dir_, gens.value().front());
  if (!snap.ok()) return snap.status();
  SnapshotFrame frame;
  frame.generation = snap.value().generation;
  frame.covered = snap.value().wal_position;
  frame.blob = std::move(snap.value().blob);
  const std::vector<uint8_t> wire = EncodeSnapshot(frame);
  if (!SendAll(fd, wire.data(), wire.size())) {
    return Status::IOError("follower went away during bootstrap");
  }
  m_snaps.Inc();
  *pos = frame.covered;
  return Status::OK();
}

void WalShipper::ServeFollower(int fd) {
  BURSTHIST_COUNTER(m_records, obs::kReplShippedRecordsTotal);
  BURSTHIST_COUNTER(m_bytes, obs::kReplShippedBytesTotal);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  auto refuse = [fd](const Status& st) {
    ErrorFrame err;
    err.code = static_cast<uint32_t>(st.code());
    err.message = st.message();
    const std::vector<uint8_t> wire = EncodeError(err);
    (void)SendAll(fd, wire.data(), wire.size());
  };

  // 1. HELLO, under a deadline.
  FrameReader reader;
  ReplFrame frame;
  HelloFrame hello;
  {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options_.hello_timeout_ms);
    for (;;) {
      auto next = reader.Next(&frame);
      if (!next.ok()) return;  // garbled HELLO: just drop
      if (next.value()) break;
      if (Clock::now() >= deadline ||
          stopping_.load(std::memory_order_acquire)) {
        return;
      }
      pollfd pfd{fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, 100);
      if (r < 0 && errno != EINTR) return;
      if (r <= 0) continue;
      uint8_t chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;
      }
      reader.Feed(chunk, static_cast<size_t>(n));
    }
    if (frame.type != ReplFrameType::kHello ||
        !DecodeHello(frame.payload, &hello).ok()) {
      refuse(Status::InvalidArgument("expected HELLO"));
      return;
    }
    if (hello.proto_version != kReplProtoVersion) {
      refuse(Status::FailedPrecondition("unsupported replication protocol"));
      return;
    }
  }

  // 2. Resolve the start position (bootstrapping when needed).
  WalPosition pos;
  if (hello.have_state) {
    pos = hello.resume;
    if (state_().durable_end < pos) {
      // The follower's history is ahead of this leader's log: it
      // followed someone else, or was itself promoted. Forking
      // silently is the one unforgivable outcome.
      refuse(Status::FailedPrecondition(
          "follower resume position is ahead of the leader log"));
      return;
    }
    auto seqs = ListWalSegments(env_, dir_);
    if (!seqs.ok()) return;
    if (seqs.value().empty() || pos.seq < seqs.value().front()) {
      // Its position was pruned away; start over from a snapshot.
      const Status st = SendBootstrapSnapshot(fd, &pos);
      if (!st.ok()) {
        refuse(st);
        return;
      }
    }
  } else {
    const Status st = SendBootstrapSnapshot(fd, &pos);
    if (st.code() == StatusCode::kNotFound) {
      // No snapshot: the WAL is the complete history.
      auto seqs = ListWalSegments(env_, dir_);
      if (!seqs.ok()) return;
      pos = seqs.value().empty() ? WalPosition{1, 0}
                                 : WalPosition{seqs.value().front(), 0};
    } else if (!st.ok()) {
      refuse(st);
      return;
    }
  }

  // 3. Tail the log.
  auto last_heartbeat = Clock::now() - std::chrono::hours(1);
  while (!stopping_.load(std::memory_order_acquire)) {
    const LeaderStatus status = state_();
    bool progressed = false;
    if (pos < status.durable_end) {
      std::vector<uint8_t> batch;
      uint64_t batched_records = 0;
      auto flush = [&]() -> bool {
        if (batch.empty()) return true;
        if (!SendAll(fd, batch.data(), batch.size())) return false;
        m_bytes.Inc(batch.size());
        m_records.Inc(batched_records);
        batch.clear();
        batched_records = 0;
        return true;
      };
      bool send_failed = false;
      auto replay = ReplayWal(
          env_, dir_, pos,
          [&](WalRecordType type, const uint8_t* payload, size_t len,
              const WalPosition& end) -> Status {
            RecordFrame rf;
            rf.end = end;  // THIS log's position: followers of a
                           // follower resume against their upstream
            WalPosition ignored_source;
            if (type == WalRecordType::kEvent) {
              BURSTHIST_RETURN_IF_ERROR(recovery_internal::DecodeEventPayload(
                  payload, len, &rf.e, &rf.t, &rf.count));
            } else if (type == WalRecordType::kReplicated) {
              BURSTHIST_RETURN_IF_ERROR(
                  recovery_internal::DecodeReplicatedPayload(
                      payload, len, &ignored_source, &rf.e, &rf.t, &rf.count));
            } else {
              return Status::Corruption("unknown WAL record type");
            }
            const std::vector<uint8_t> wire = EncodeRecord(rf);
            batch.insert(batch.end(), wire.begin(), wire.end());
            ++batched_records;
            if (batch.size() >= options_.batch_bytes && !flush()) {
              send_failed = true;
              return Status::Unavailable("follower send failed");
            }
            return Status::OK();
          });
      if (send_failed) return;
      if (!replay.ok()) {
        // The segment holding `pos` may have been pruned by a
        // concurrent checkpoint; re-bootstrap from the snapshot that
        // replaced it. Anything else is a real refusal.
        WalPosition snap_pos;
        const Status st = SendBootstrapSnapshot(fd, &snap_pos);
        if (st.ok() && pos < snap_pos) {
          pos = snap_pos;
          continue;
        }
        refuse(replay.status());
        return;
      }
      if (!flush()) return;
      if (pos < replay.value().end) {
        pos = replay.value().end;
        progressed = true;
      }
    }
    const auto now = Clock::now();
    if (now - last_heartbeat >=
        std::chrono::milliseconds(options_.heartbeat_interval_ms)) {
      HeartbeatFrame hb;
      hb.durable_end = status.durable_end;
      hb.watermark = status.watermark;
      const std::vector<uint8_t> wire = EncodeHeartbeat(hb);
      if (!SendAll(fd, wire.data(), wire.size())) return;
      m_bytes.Inc(wire.size());
      last_heartbeat = now;
    }
    // Pace the tail; doubles as the follower-close detector.
    if (!FollowerStillThere(fd, progressed ? 0 : options_.poll_interval_ms)) {
      return;
    }
  }
}

}  // namespace repl
}  // namespace bursthist
