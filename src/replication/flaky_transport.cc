#include "replication/flaky_transport.h"

#include <utility>

namespace bursthist {
namespace repl {

/// Pass-through connection that routes every received chunk through
/// the owning transport's fault filter.
class FlakyConn : public ReplConn {
 public:
  FlakyConn(FlakyTransport* owner, std::unique_ptr<ReplConn> base)
      : owner_(owner), base_(std::move(base)) {}

  Status Send(const uint8_t* data, size_t n) override {
    return base_->Send(data, n);
  }

  Result<size_t> Recv(uint8_t* buf, size_t cap, int timeout_ms) override {
    if (dead_) return Status::Unavailable("connection cut by fault injection");
    auto n_or = base_->Recv(buf, cap, timeout_ms);
    if (!n_or.ok()) return n_or.status();
    const size_t n = n_or.value();
    if (n == 0) return n_or;  // timeout: nothing passed through
    bool cut = false;
    const size_t deliver = owner_->FilterChunk(buf, n, &cut);
    if (cut) {
      dead_ = true;
      base_->Close();
      if (deliver == 0) {
        return Status::Unavailable("connection cut by fault injection");
      }
    }
    return deliver;
  }

  void Close() override { base_->Close(); }

 private:
  FlakyTransport* owner_;
  std::unique_ptr<ReplConn> base_;
  bool dead_ = false;
};

Result<std::unique_ptr<ReplConn>> FlakyTransport::Connect(
    const std::string& host, uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++connects_;
    if (fail_connects_ > 0) {
      --fail_connects_;
      return Status::Unavailable("connect refused by fault injection");
    }
  }
  auto base = base_->Connect(host, port);
  if (!base.ok()) return base.status();
  return std::unique_ptr<ReplConn>(
      new FlakyConn(this, std::move(base).value()));
}

size_t FlakyTransport::FilterChunk(uint8_t* buf, size_t n, bool* cut) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t deliver = n;
  *cut = false;
  if (cut_armed_ && delivered_ + n >= cut_at_) {
    // Deliver exactly up to the boundary, then kill the connection —
    // the follower sees a torn frame tail, never a corrupt apply.
    deliver = cut_at_ > delivered_ ? static_cast<size_t>(cut_at_ - delivered_)
                                   : 0;
    cut_armed_ = false;
    *cut = true;
  }
  if (flip_armed_ && flip_at_ >= delivered_ && flip_at_ < delivered_ + deliver) {
    buf[flip_at_ - delivered_] ^= static_cast<uint8_t>(1u << flip_bit_);
    flip_armed_ = false;
  }
  delivered_ += deliver;
  return deliver;
}

}  // namespace repl
}  // namespace bursthist
