// Wire framing for WAL-shipping replication.
//
// The replication stream reuses the WAL's frame shape — the same
// checksummed envelope that already survives torn writes on disk
// survives garbled bytes on the wire:
//
//   frame :=
//     u32 payload_len | u32 masked_crc | u8 type | payload[payload_len]
//
// The CRC32C covers the type byte and the payload and is stored
// masked (util/crc32c.h). A frame that fails its checksum is
// CORRUPTION OF THE CONNECTION, not of either replica: the follower
// drops the connection, reconnects, and resumes from its durable
// position — nothing garbled ever reaches an engine.
//
// Session shape (follower connects to leader):
//
//   follower → leader   HELLO   proto=1, have_state, resume position
//   leader → follower   SNAPSHOT (iff the follower needs a bootstrap
//                                 or its position was pruned away)
//   leader → follower   RECORD*  one per WAL event, each carrying the
//                                 leader position just past it — the
//                                 exact token to resume from
//   leader → follower   HEARTBEAT periodically when idle (leader
//                                 durable position + watermark, for
//                                 lag measurement)
//   leader → follower   ERROR    terminal refusal; the connection
//                                 closes after it
//
// All payload integers are little-endian, matching every other
// serialized byte in the project.

#ifndef BURSTHIST_REPLICATION_REPL_WIRE_H_
#define BURSTHIST_REPLICATION_REPL_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "recovery/wal.h"
#include "stream/types.h"
#include "util/status.h"

namespace bursthist {
namespace repl {

/// Replication protocol version spoken in HELLO.
constexpr uint32_t kReplProtoVersion = 1;

/// Ceiling on one frame's payload (the snapshot frame dominates); a
/// garbled length field must not stall the reader forever waiting for
/// gigabytes that will never come.
constexpr uint64_t kMaxReplPayload = 1ull << 30;

enum class ReplFrameType : uint8_t {
  kHello = 1,
  kSnapshot = 2,
  kRecord = 3,
  kHeartbeat = 4,
  kError = 5,
};

/// One decoded frame envelope.
struct ReplFrame {
  ReplFrameType type = ReplFrameType::kHello;
  std::vector<uint8_t> payload;
};

/// follower → leader: who I am and where to resume.
struct HelloFrame {
  uint32_t proto_version = kReplProtoVersion;
  /// False on a blank follower; the leader answers with a SNAPSHOT
  /// when it has one, else tails from the start of its log.
  bool have_state = false;
  /// Leader WAL position applied through (ignored when !have_state).
  WalPosition resume;
};

/// leader → follower: full engine state to install (bootstrap, or
/// the follower's resume position fell behind the leader's pruning
/// horizon).
struct SnapshotFrame {
  uint64_t generation = 0;
  /// Leader WAL position the blob covers; shipping resumes here.
  WalPosition covered;
  /// Serialized engine (the snapshot file's blob, trailer included).
  std::vector<uint8_t> blob;
};

/// leader → follower: one appended event.
struct RecordFrame {
  /// Leader WAL position just PAST this record — after applying it,
  /// this is the follower's new resume token.
  WalPosition end;
  EventId e = 0;
  Timestamp t = 0;
  Count count = 1;
};

/// leader → follower: liveness + lag measurement while idle.
struct HeartbeatFrame {
  WalPosition durable_end;
  Timestamp watermark = 0;
};

/// leader → follower: terminal refusal (code is a StatusCode).
struct ErrorFrame {
  uint32_t code = 0;
  std::string message;
};

/// Wraps a payload in the checksummed envelope.
std::vector<uint8_t> EncodeFrame(ReplFrameType type,
                                 const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeHello(const HelloFrame& f);
std::vector<uint8_t> EncodeSnapshot(const SnapshotFrame& f);
std::vector<uint8_t> EncodeRecord(const RecordFrame& f);
std::vector<uint8_t> EncodeHeartbeat(const HeartbeatFrame& f);
std::vector<uint8_t> EncodeError(const ErrorFrame& f);

Status DecodeHello(const std::vector<uint8_t>& payload, HelloFrame* out);
Status DecodeSnapshot(const std::vector<uint8_t>& payload, SnapshotFrame* out);
Status DecodeRecord(const std::vector<uint8_t>& payload, RecordFrame* out);
Status DecodeHeartbeat(const std::vector<uint8_t>& payload,
                       HeartbeatFrame* out);
Status DecodeError(const std::vector<uint8_t>& payload, ErrorFrame* out);

/// Incremental frame splitter: feed arbitrary byte chunks, pull
/// whole verified frames out. Next() returns true with a frame,
/// false when more bytes are needed, or Corruption when the envelope
/// is damaged (bad checksum, absurd length) — the caller drops the
/// connection and this reader with it.
class FrameReader {
 public:
  explicit FrameReader(uint64_t max_payload = kMaxReplPayload)
      : max_payload_(max_payload) {}

  void Feed(const uint8_t* data, size_t n);

  Result<bool> Next(ReplFrame* out);

  /// Bytes buffered but not yet consumed by a returned frame.
  size_t pending() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix, compacted opportunistically
  uint64_t max_payload_;
};

}  // namespace repl
}  // namespace bursthist

#endif  // BURSTHIST_REPLICATION_REPL_WIRE_H_
