// Deterministic chaos for the replication link — the socket-level
// sibling of recovery/fault_env.h.
//
// Wraps a real transport and injects faults at exact, reproducible
// points measured in CUMULATIVE BYTES DELIVERED to the follower
// across every connection this transport ever dialed (reconnects
// included), so a test can say "cut the stream at byte 10 000, flip
// bit 3 of byte 20 000" and replay the identical abuse every run:
//
//   FlakyTransport flaky(ReplTransport::Default());
//   flaky.FailNextConnects(2);        // first two dials refused
//   flaky.CutRecvAt(10'000);          // connection dies at that byte
//   flaky.FlipBitAt(20'000, 3);       // one bit corrupted in flight
//
// Injections are one-shot and re-armable, like FaultInjectionEnv:
// each fires once, then the link behaves until the test arms the
// next round. Thread-safe arming (test thread vs apply thread).

#ifndef BURSTHIST_REPLICATION_FLAKY_TRANSPORT_H_
#define BURSTHIST_REPLICATION_FLAKY_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "replication/transport.h"

namespace bursthist {
namespace repl {

class FlakyTransport : public ReplTransport {
 public:
  explicit FlakyTransport(ReplTransport* base) : base_(base) {}

  Result<std::unique_ptr<ReplConn>> Connect(const std::string& host,
                                            uint16_t port) override;

  /// Refuses the next `n` Connect() calls.
  void FailNextConnects(uint32_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_connects_ = n;
  }

  /// One-shot: once cumulative delivered bytes reach `global_byte`,
  /// the active connection errors (delivery stops exactly at the
  /// boundary, possibly mid-frame — a torn ship frame).
  void CutRecvAt(uint64_t global_byte) {
    std::lock_guard<std::mutex> lock(mu_);
    cut_at_ = global_byte;
    cut_armed_ = true;
  }

  /// One-shot: flips `bit` of the byte at cumulative index
  /// `global_byte` as it passes through.
  void FlipBitAt(uint64_t global_byte, int bit) {
    std::lock_guard<std::mutex> lock(mu_);
    flip_at_ = global_byte;
    flip_bit_ = bit & 7;
    flip_armed_ = true;
  }

  /// Clears every armed injection.
  void Disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    fail_connects_ = 0;
    cut_armed_ = false;
    flip_armed_ = false;
  }

  uint64_t connects() const {
    std::lock_guard<std::mutex> lock(mu_);
    return connects_;
  }
  uint64_t bytes_delivered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delivered_;
  }

 private:
  friend class FlakyConn;

  // Applies armed faults to a chunk about to be delivered; returns
  // the byte count to deliver (may be short of `n`) and sets *cut
  // when the connection must error after delivering them.
  size_t FilterChunk(uint8_t* buf, size_t n, bool* cut);

  ReplTransport* base_;
  mutable std::mutex mu_;
  uint64_t delivered_ = 0;
  uint64_t connects_ = 0;
  uint32_t fail_connects_ = 0;
  uint64_t cut_at_ = 0;
  bool cut_armed_ = false;
  uint64_t flip_at_ = 0;
  int flip_bit_ = 0;
  bool flip_armed_ = false;
};

}  // namespace repl
}  // namespace bursthist

#endif  // BURSTHIST_REPLICATION_FLAKY_TRANSPORT_H_
