// Leader-side WAL shipping: tail the write-ahead log, stream every
// record to connected followers.
//
// The shipper is a passive reader of the recovery layer's on-disk
// state — it never touches the live engine. Each follower connection
// gets a thread that:
//
//   1. reads the follower's HELLO (resume position),
//   2. bootstraps it from the newest snapshot file when it has no
//      state or its position fell behind the WAL pruning horizon,
//   3. tails the log from there with ReplayWal, re-framing each
//      record for the wire stamped with the position just past it,
//   4. heartbeats the leader's durable position + watermark while
//      idle, so followers can measure replication lag.
//
// Because the WAL is single-writer and rotation completes a segment
// before the next one is listed, tailing with ReplayWal is safe
// against concurrent appends: the only incomplete frame a reader can
// observe is at the tail of the LAST segment, which replay already
// treats as a clean stop (torn tail) — the next poll picks it up
// whole. Segments are re-read from the start of the open segment on
// each poll; at the project's 4 MiB segment size that is the simple
// and adequate choice.
//
// A follower whose resume position is AHEAD of the leader's log
// (divergent history, e.g. it was promoted elsewhere) is refused
// with an ERROR frame rather than silently forking.

#ifndef BURSTHIST_REPLICATION_WAL_SHIPPER_H_
#define BURSTHIST_REPLICATION_WAL_SHIPPER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "recovery/wal.h"
#include "stream/types.h"
#include "util/env.h"
#include "util/status.h"

namespace bursthist {
namespace repl {

struct WalShipperOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read it back with port().
  size_t max_followers = 8;
  /// How often the tail loop re-checks the log for new records (and
  /// the follower socket for a close).
  int poll_interval_ms = 20;
  /// Idle heartbeat cadence (liveness + lag measurement).
  int heartbeat_interval_ms = 200;
  /// Flush threshold for batching record frames into one send.
  size_t batch_bytes = 256 * 1024;
  /// How long to wait for a follower's HELLO before dropping it.
  int hello_timeout_ms = 5000;
};

/// What the shipper may ship: everything written through the end of
/// the durable log, plus the watermark followers use for lag.
struct LeaderStatus {
  WalPosition durable_end;
  Timestamp watermark = 0;
};

class WalShipper {
 public:
  /// Snapshot of the owning server's replication-relevant state;
  /// called from shipper threads, must be thread-safe.
  using LeaderStateFn = std::function<LeaderStatus()>;

  WalShipper() = default;
  ~WalShipper();
  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Binds, listens, and starts accepting followers. `dir` is the
  /// leader's durable directory (WAL segments + snapshots).
  Status Start(Env* env, const std::string& dir,
               const WalShipperOptions& options, LeaderStateFn state);

  /// Stops accepting, drops every follower, joins all threads.
  /// Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeFollower(int fd);
  // Sends the newest snapshot file; advances *pos to its coverage.
  // Returns NotFound when no snapshot exists.
  Status SendBootstrapSnapshot(int fd, WalPosition* pos);

  Env* env_ = nullptr;
  std::string dir_;
  WalShipperOptions options_;
  LeaderStateFn state_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::vector<int> follower_fds_;
  std::vector<std::thread> follower_threads_;
  size_t active_followers_ = 0;
};

}  // namespace repl
}  // namespace bursthist

#endif  // BURSTHIST_REPLICATION_WAL_SHIPPER_H_
