// Follower-side replication: connect to a leader, bootstrap, apply,
// survive abuse, and (on request) take over.
//
//   auto replica = ReplicaEngine<Pbe1>::Open(env, dir, engine_opts,
//                                            durability, options);
//   replica->Start();                 // apply thread: connect + apply
//   ... serve reads from replica->durable()->engine() snapshots ...
//   replica->Promote();               // failover: writable leader
//
// Robustness contract:
//
//  * Reconnect: any broken/dead/refused connection retries with
//    capped exponential backoff, presenting the durable applied
//    position as the resume token — records are applied exactly once
//    across arbitrarily many disconnects.
//  * Corruption: a frame that fails its CRC (or a garbled envelope)
//    rejects the CONNECTION, never the replica — the buffered bytes
//    die with the socket and the stream resumes from the last applied
//    record. Nothing unverified ever reaches the engine or the WAL.
//  * Crash safety: each applied record is ONE local WAL frame
//    (kReplicated) carrying both the event and the leader position
//    just past it, so a follower crash can never strand the resume
//    token out of step with the applied state.
//  * Failover: Promote() stops replication, checkpoints (fresh WAL
//    segment + snapshot), and flips to writable only if the
//    checkpoint lands. While a follower, writes are refused upstream
//    (server layer) with kUnavailable.
//
// The apply thread and the serving layer share one write mutex
// (write_mu()): wire it into BurstServiceOptions so snapshot
// refreshes and maintenance verbs interleave safely with applies.

#ifndef BURSTHIST_REPLICATION_REPLICA_ENGINE_H_
#define BURSTHIST_REPLICATION_REPLICA_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "recovery/durable_engine.h"
#include "replication/repl_wire.h"
#include "replication/transport.h"
#include "util/random.h"
#include "util/status.h"

namespace bursthist {
namespace repl {

struct ReplicaOptions {
  std::string leader_host = "127.0.0.1";
  uint16_t leader_port = 0;
  /// Per-Recv poll timeout; bounds Stop()/Promote() latency.
  int recv_timeout_ms = 100;
  /// No frame (not even a heartbeat) for this long → the connection
  /// is presumed dead and is re-dialed.
  int dead_after_ms = 3000;
  /// Reconnect backoff: initial delay, doubled per failure, capped.
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
  /// Fraction of each backoff delay randomized away (downward only):
  /// the actual sleep is uniform in [delay*(1-jitter), delay]. Keeps
  /// a fleet of followers orphaned by the same leader crash from
  /// re-dialing in lockstep. 0 disables jitter.
  double backoff_jitter = 0.2;
  /// Seed for the jitter stream; 0 = derive one per replica (from the
  /// clock and object identity). Tests pin it for reproducibility.
  uint64_t backoff_seed = 0;
  /// Connection seam; nullptr = ReplTransport::Default(). Tests pass
  /// a FlakyTransport here.
  ReplTransport* transport = nullptr;
};

/// The jittered sleep for one backoff step: uniform in
/// [base_ms*(1-jitter), base_ms], never below 1ms. `jitter` is
/// clamped to [0, 1]. Deterministic in the Rng stream — the testable
/// core of the reconnect backoff policy.
inline int JitteredDelay(int base_ms, double jitter, Rng* rng) {
  if (base_ms <= 1) return 1;
  const double j = std::min(1.0, std::max(0.0, jitter));
  if (j == 0.0) return base_ms;
  const double scaled = base_ms * (1.0 - j * rng->NextDouble());
  return std::max(1, static_cast<int>(scaled));
}

template <typename PbeT>
class ReplicaEngine {
 public:
  using Durable = DurableBurstEngine<PbeT>;

  /// Opens (or recovers) the follower's own durable directory. A
  /// directory holding locally-written (non-replicated) history is
  /// refused: following a leader on top of a forked local past would
  /// silently merge two histories.
  static Result<std::unique_ptr<ReplicaEngine<PbeT>>> Open(
      Env* env, const std::string& dir,
      const BurstEngineOptions<PbeT>& engine_options,
      const DurabilityOptions& durability, const ReplicaOptions& options) {
    auto durable = Durable::Open(env, dir, engine_options, durability);
    if (!durable.ok()) return durable.status();
    if (durable.value()->engine().TotalCount() > 0 &&
        durable.value()->replicated_through() == WalPosition{}) {
      return Status::FailedPrecondition(
          "directory holds non-replicated local history; refusing to "
          "follow on top of it");
    }
    return std::unique_ptr<ReplicaEngine<PbeT>>(
        new ReplicaEngine(std::move(durable).value(), options));
  }

  ~ReplicaEngine() { Stop(); }
  ReplicaEngine(const ReplicaEngine&) = delete;
  ReplicaEngine& operator=(const ReplicaEngine&) = delete;

  /// Starts the apply thread. Idempotent once started.
  Status Start() {
    if (apply_thread_.joinable()) {
      return Status::FailedPrecondition("replica already started");
    }
    stop_.store(false, std::memory_order_release);
    apply_thread_ = std::thread([this] { ApplyLoop(); });
    return Status::OK();
  }

  /// Stops replicating (the engine keeps serving whatever was
  /// applied). Idempotent.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_.store(true, std::memory_order_release);
    }
    wake_cv_.notify_all();
    if (apply_thread_.joinable()) apply_thread_.join();
  }

  /// Failover: stop replicating, checkpoint (opening a fresh WAL
  /// segment), and become writable. On checkpoint failure the
  /// replica STAYS a read-only follower and the error is returned —
  /// a leader whose first durability act failed is no leader.
  Status Promote() {
    if (!follower_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("already promoted");
    }
    Stop();
    std::lock_guard<std::mutex> lock(write_mu_);
    BURSTHIST_RETURN_IF_ERROR(durable_->Checkpoint());
    follower_.store(false, std::memory_order_release);
    return Status::OK();
  }

  /// True until a successful Promote().
  bool follower() const { return follower_.load(std::memory_order_acquire); }

  /// True while a connection to the leader is up.
  bool connected() const { return connected_.load(std::memory_order_acquire); }

  /// Replication lag in stream-time units: the leader watermark from
  /// its latest heartbeat minus the applied watermark (0 before the
  /// first heartbeat, never negative).
  Timestamp lag() const {
    const Timestamp leader = leader_watermark_.load(std::memory_order_acquire);
    const Timestamp mine = applied_watermark_.load(std::memory_order_acquire);
    return leader > mine ? leader - mine : 0;
  }

  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_acquire);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_acquire);
  }
  uint64_t frames_rejected() const {
    return frames_rejected_.load(std::memory_order_acquire);
  }

  /// Leader WAL position applied through (the durable resume token).
  WalPosition applied_position() {
    std::lock_guard<std::mutex> lock(write_mu_);
    return durable_->replicated_through();
  }

  /// Sticky first unrecoverable error (diverged install, rejected
  /// apply, leader refusal); OK while healthy. A fatal error stops
  /// the apply loop — the replica keeps serving its last state.
  Status last_error() {
    std::lock_guard<std::mutex> lock(error_mu_);
    return last_error_;
  }

  Durable* durable() { return durable_.get(); }

  /// The mutex every live-engine touch must hold — share it with the
  /// serving layer (BurstServiceOptions::replica.write_mu).
  std::mutex* write_mu() { return &write_mu_; }

 private:
  using Clock = std::chrono::steady_clock;

  ReplicaEngine(std::unique_ptr<Durable> durable,
                const ReplicaOptions& options)
      : durable_(std::move(durable)),
        options_(options),
        backoff_rng_(options.backoff_seed != 0
                         ? options.backoff_seed
                         : static_cast<uint64_t>(
                               Clock::now().time_since_epoch().count()) ^
                               reinterpret_cast<uintptr_t>(this)) {
    transport_ =
        options_.transport ? options_.transport : ReplTransport::Default();
    applied_watermark_.store(durable_->engine().Watermark(),
                             std::memory_order_release);
  }

  void SetError(const Status& st) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (last_error_.ok()) last_error_ = st;
  }

  // Sleeps the current backoff — jittered downward so a fleet of
  // followers doesn't re-dial in lockstep — interruptible by Stop,
  // then doubles the base up to the cap.
  void Backoff(int* delay_ms) {
    const int sleep_ms =
        JitteredDelay(*delay_ms, options_.backoff_jitter, &backoff_rng_);
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms), [this] {
      return stop_.load(std::memory_order_acquire);
    });
    *delay_ms = std::min(*delay_ms * 2, options_.backoff_max_ms);
  }

  bool Stopping() const { return stop_.load(std::memory_order_acquire); }

  void ApplyLoop() {
    BURSTHIST_COUNTER(m_reconnects, obs::kReplReconnectsTotal);
    BURSTHIST_GAUGE(m_connected, obs::kReplConnected);
    int backoff_ms = options_.backoff_initial_ms;
    bool first_attempt = true;
    while (!Stopping() && !fatal_) {
      if (!first_attempt) {
        reconnects_.fetch_add(1, std::memory_order_acq_rel);
        m_reconnects.Inc();
        Backoff(&backoff_ms);
        if (Stopping()) break;
      }
      first_attempt = false;
      auto conn_or =
          transport_->Connect(options_.leader_host, options_.leader_port);
      if (!conn_or.ok()) continue;
      std::unique_ptr<ReplConn> conn = std::move(conn_or).value();

      HelloFrame hello;
      {
        std::lock_guard<std::mutex> lock(write_mu_);
        hello.resume = durable_->replicated_through();
      }
      hello.have_state = hello.resume != WalPosition{};
      const std::vector<uint8_t> wire = EncodeHello(hello);
      if (!conn->Send(wire.data(), wire.size()).ok()) continue;

      connected_.store(true, std::memory_order_release);
      m_connected.Set(1.0);
      backoff_ms = options_.backoff_initial_ms;  // link is up: reset
      Pump(conn.get());
      conn->Close();
      connected_.store(false, std::memory_order_release);
      m_connected.Set(0.0);
    }
    connected_.store(false, std::memory_order_release);
    m_connected.Set(0.0);
  }

  // Receives and applies frames until the connection breaks, goes
  // silent past the deadline, delivers garbage, or Stop()/a fatal
  // error ends the loop.
  void Pump(ReplConn* conn) {
    BURSTHIST_COUNTER(m_rejected, obs::kReplFramesRejectedTotal);
    FrameReader reader;
    auto last_frame = Clock::now();
    uint8_t chunk[16384];
    while (!Stopping() && !fatal_) {
      auto n_or = conn->Recv(chunk, sizeof chunk, options_.recv_timeout_ms);
      if (!n_or.ok()) return;  // broken/closed: reconnect
      if (n_or.value() == 0) {
        if (Clock::now() - last_frame >
            std::chrono::milliseconds(options_.dead_after_ms)) {
          return;  // silent too long: presume dead, re-dial
        }
        continue;
      }
      reader.Feed(chunk, n_or.value());
      ReplFrame frame;
      for (;;) {
        auto next = reader.Next(&frame);
        if (!next.ok()) {
          // Garbled envelope: reject the connection, not the replica.
          frames_rejected_.fetch_add(1, std::memory_order_acq_rel);
          m_rejected.Inc();
          return;
        }
        if (!next.value()) break;
        last_frame = Clock::now();
        if (!ApplyFrame(frame)) return;
      }
    }
  }

  // Returns false when the connection must drop (decode failure or
  // leader refusal); sets fatal_ for unrecoverable apply errors.
  bool ApplyFrame(const ReplFrame& frame) {
    BURSTHIST_COUNTER(m_applied, obs::kReplAppliedRecordsTotal);
    BURSTHIST_GAUGE(m_lag, obs::kReplLag);
    switch (frame.type) {
      case ReplFrameType::kRecord: {
        RecordFrame rec;
        if (!DecodeRecord(frame.payload, &rec).ok()) return RejectFrame();
        std::lock_guard<std::mutex> lock(write_mu_);
        if (!(durable_->replicated_through() < rec.end)) return true;  // dup
        const Status st =
            durable_->AppendReplicated(rec.e, rec.t, rec.count, rec.end);
        if (!st.ok()) {
          // The leader accepted this record against the same options
          // and order; a local rejection means divergence, and
          // applying anything further would compound it.
          fatal_ = true;
          SetError(st);
          return false;
        }
        applied_records_.fetch_add(1, std::memory_order_acq_rel);
        m_applied.Inc();
        applied_watermark_.store(durable_->engine().Watermark(),
                                 std::memory_order_release);
        m_lag.Set(static_cast<double>(lag()));
        return true;
      }
      case ReplFrameType::kSnapshot: {
        SnapshotFrame snap;
        if (!DecodeSnapshot(frame.payload, &snap).ok()) return RejectFrame();
        std::lock_guard<std::mutex> lock(write_mu_);
        if (!(durable_->replicated_through() < snap.covered)) return true;
        const Status st =
            durable_->InstallReplicatedState(snap.blob, snap.covered);
        if (!st.ok()) {
          // Disk and memory may now disagree (see
          // InstallReplicatedState); continuing would serve a state
          // no restart can reproduce.
          fatal_ = true;
          SetError(st);
          return false;
        }
        applied_watermark_.store(durable_->engine().Watermark(),
                                 std::memory_order_release);
        m_lag.Set(static_cast<double>(lag()));
        return true;
      }
      case ReplFrameType::kHeartbeat: {
        HeartbeatFrame hb;
        if (!DecodeHeartbeat(frame.payload, &hb).ok()) return RejectFrame();
        leader_watermark_.store(hb.watermark, std::memory_order_release);
        m_lag.Set(static_cast<double>(lag()));
        return true;
      }
      case ReplFrameType::kError: {
        ErrorFrame err;
        if (DecodeError(frame.payload, &err).ok()) {
          SetError(Status(static_cast<StatusCode>(err.code),
                          "leader refused: " + err.message));
        }
        return false;  // reconnect (with backoff); the refusal may
                       // be transient (e.g. mid-checkpoint)
      }
      case ReplFrameType::kHello:
        return RejectFrame();  // nonsense from a leader
    }
    return RejectFrame();
  }

  bool RejectFrame() {
    BURSTHIST_COUNTER(m_rejected, obs::kReplFramesRejectedTotal);
    frames_rejected_.fetch_add(1, std::memory_order_acq_rel);
    m_rejected.Inc();
    return false;
  }

  std::unique_ptr<Durable> durable_;
  ReplicaOptions options_;
  Rng backoff_rng_;  // only the apply thread touches it
  ReplTransport* transport_ = nullptr;
  std::mutex write_mu_;  // every live-engine touch; shared with serving

  std::thread apply_thread_;
  std::atomic<bool> stop_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  std::atomic<bool> follower_{true};
  std::atomic<bool> connected_{false};
  std::atomic<bool> fatal_{false};
  std::atomic<Timestamp> leader_watermark_{0};
  std::atomic<Timestamp> applied_watermark_{0};
  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> frames_rejected_{0};
  std::mutex error_mu_;
  Status last_error_;
};

}  // namespace repl
}  // namespace bursthist

#endif  // BURSTHIST_REPLICATION_REPLICA_ENGINE_H_
