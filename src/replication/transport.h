// The replication connection seam.
//
// Mirrors the util/env.h pattern: production code talks to an
// abstract ReplTransport / ReplConn, tests substitute a
// FlakyTransport (flaky_transport.h) that injects deterministic
// disconnects and bit flips between the leader and the follower —
// the socket-level analogue of FaultInjectionEnv.
//
// Only the FOLLOWER side dials through the seam: that is where every
// interesting failure lands (the follower owns reconnection, resume,
// and corruption rejection). The leader's listener stays plain POSIX.

#ifndef BURSTHIST_REPLICATION_TRANSPORT_H_
#define BURSTHIST_REPLICATION_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace bursthist {
namespace repl {

/// One bidirectional byte stream. Not thread-safe; owned by the
/// follower's apply thread.
class ReplConn {
 public:
  virtual ~ReplConn() = default;

  /// Writes all n bytes or fails.
  virtual Status Send(const uint8_t* data, size_t n) = 0;

  /// Reads up to `cap` bytes, blocking at most `timeout_ms`. Returns
  /// the byte count; 0 means the timeout elapsed with nothing to
  /// read. A peer that closed (EOF) or broke the connection is an
  /// error (Unavailable / IOError) — the caller reconnects.
  virtual Result<size_t> Recv(uint8_t* buf, size_t cap, int timeout_ms) = 0;

  virtual void Close() = 0;
};

/// Dials connections.
class ReplTransport {
 public:
  virtual ~ReplTransport() = default;

  virtual Result<std::unique_ptr<ReplConn>> Connect(const std::string& host,
                                                    uint16_t port) = 0;

  /// The process-wide plain-TCP transport.
  static ReplTransport* Default();
};

}  // namespace repl
}  // namespace bursthist

#endif  // BURSTHIST_REPLICATION_TRANSPORT_H_
