#include "replication/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bursthist {
namespace repl {

namespace {

class TcpReplConn : public ReplConn {
 public:
  explicit TcpReplConn(int fd) : fd_(fd) {}
  ~TcpReplConn() override { Close(); }

  Status Send(const uint8_t* data, size_t n) override {
    if (fd_ < 0) return Status::FailedPrecondition("connection closed");
    size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("send: " + std::string(strerror(errno)));
      }
      sent += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Result<size_t> Recv(uint8_t* buf, size_t cap, int timeout_ms) override {
    if (fd_ < 0) return Status::FailedPrecondition("connection closed");
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
      const int r = ::poll(&pfd, 1, timeout_ms);
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("poll: " + std::string(strerror(errno)));
      }
      if (r == 0) return static_cast<size_t>(0);  // timeout, nothing ready
      break;
    }
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, cap, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv: " + std::string(strerror(errno)));
      }
      if (n == 0) return Status::Unavailable("connection closed by peer");
      return static_cast<size_t>(n);
    }
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

class TcpReplTransport : public ReplTransport {
 public:
  Result<std::unique_ptr<ReplConn>> Connect(const std::string& host,
                                            uint16_t port) override {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError("socket: " + std::string(strerror(errno)));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument("unparseable IPv4 host: " + host);
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const Status st =
          Status::IOError("connect: " + std::string(strerror(errno)));
      ::close(fd);
      return st;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return std::unique_ptr<ReplConn>(new TcpReplConn(fd));
  }
};

}  // namespace

ReplTransport* ReplTransport::Default() {
  static TcpReplTransport* transport = new TcpReplTransport();
  return transport;
}

}  // namespace repl
}  // namespace bursthist
