#include "obs/metrics.h"

#ifndef BURSTHIST_NO_METRICS

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstring>
#include <string_view>

namespace bursthist {
namespace obs {
namespace {

// Process-wide fallbacks returned on a kind mismatch in release
// builds, so buggy instrumentation degrades to a dead metric instead
// of crashing the host process.
Counter& DummyCounter() {
  static Counter c;
  return c;
}
Gauge& DummyGauge() {
  static Gauge g;
  return g;
}
Histogram& DummyHistogram() {
  static Histogram h({1.0});
  return h;
}

std::vector<double> LatencyBounds() {
  return std::vector<double>(kLatencyBucketBounds,
                             kLatencyBucketBounds + kLatencyBucketCount);
}

// Power-of-two record-count buckets for "*_size_records" histograms
// (batch sizes); latency buckets would funnel every batch into the
// overflow bucket.
std::vector<double> SizeBounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 8192.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

// True when `name` uses the record-count buckets instead of the
// shared latency buckets.
bool IsSizeHistogramName(const char* name) {
  const std::string_view sv(name);
  const std::string_view suffix = "_size_records";
  return sv.size() >= suffix.size() &&
         sv.substr(sv.size() - suffix.size()) == suffix;
}

// %g keeps the exposition compact and stable for the values we emit
// (bucket bounds, gauge readings); 17 significant digits only where
// round-tripping matters is overkill for operator-facing text.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

const char* HelpFor(const char* name) {
  for (const auto& m : StandardMetrics()) {
    if (std::strcmp(m.name, name) == 0) return m.help;
  }
  return "";
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(
    const std::string& name, const std::string& help, MetricKind kind,
    const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry e;
    e.kind = kind;
    e.help = help;
    switch (kind) {
      case MetricKind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        e.histogram = std::make_unique<Histogram>(*bounds);
        break;
    }
    it = metrics_.emplace(name, std::move(e)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  Entry& e = GetOrCreate(name, help, MetricKind::kCounter, nullptr);
  assert(e.kind == MetricKind::kCounter && "metric re-registered as counter");
  if (e.kind != MetricKind::kCounter) return DummyCounter();
  return *e.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  Entry& e = GetOrCreate(name, help, MetricKind::kGauge, nullptr);
  assert(e.kind == MetricKind::kGauge && "metric re-registered as gauge");
  if (e.kind != MetricKind::kGauge) return DummyGauge();
  return *e.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  Entry& e = GetOrCreate(name, help, MetricKind::kHistogram, &bounds);
  assert(e.kind == MetricKind::kHistogram &&
         "metric re-registered as histogram");
  if (e.kind != MetricKind::kHistogram) return DummyHistogram();
  return *e.histogram;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) names.push_back(name);
  return names;  // std::map iterates sorted
}

void MetricsRegistry::WritePrometheus(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : metrics_) {
    if (!e.help.empty()) {
      *out += "# HELP " + name + " " + e.help + "\n";
    }
    switch (e.kind) {
      case MetricKind::kCounter:
        *out += "# TYPE " + name + " counter\n" + name + " ";
        AppendU64(out, e.counter->Value());
        *out += "\n";
        break;
      case MetricKind::kGauge:
        *out += "# TYPE " + name + " gauge\n" + name + " ";
        AppendDouble(out, e.gauge->Value());
        *out += "\n";
        break;
      case MetricKind::kHistogram: {
        *out += "# TYPE " + name + " histogram\n";
        const Histogram& h = *e.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          *out += name + "_bucket{le=\"";
          AppendDouble(out, h.bounds()[i]);
          *out += "\"} ";
          AppendU64(out, cumulative);
          *out += "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        *out += name + "_bucket{le=\"+Inf\"} ";
        AppendU64(out, cumulative);
        *out += "\n" + name + "_sum ";
        AppendDouble(out, h.Sum());
        *out += "\n" + name + "_count ";
        AppendU64(out, h.Count());
        *out += "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::WriteJson(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += "\"" + name + "\":";
        AppendU64(&counters, e.counter->Value());
        break;
      case MetricKind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += "\"" + name + "\":";
        AppendDouble(&gauges, e.gauge->Value());
        break;
      case MetricKind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const Histogram& h = *e.histogram;
        histograms += "\"" + name + "\":{\"count\":";
        AppendU64(&histograms, h.Count());
        histograms += ",\"sum\":";
        AppendDouble(&histograms, h.Sum());
        histograms += ",\"buckets\":[";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          if (i > 0) histograms += ",";
          histograms += "[";
          AppendDouble(&histograms, h.bounds()[i]);
          histograms += ",";
          AppendU64(&histograms, cumulative);
          histograms += "]";
        }
        cumulative += h.BucketCount(h.bounds().size());
        histograms += ",[\"+Inf\",";
        AppendU64(&histograms, cumulative);
        histograms += "]]}";
        break;
      }
    }
  }
  *out += "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
          "},\"histograms\":{" + histograms + "}}";
}

const std::vector<StandardMetricInfo>& StandardMetrics() {
  static const std::vector<StandardMetricInfo>* table = [] {
    auto* t = new std::vector<StandardMetricInfo>();
#define BURSTHIST_OBS_TABLE_ENTRY(Kind, Symbol, Name, Help) \
  t->push_back({Name, Help, MetricKind::k##Kind});
    BURSTHIST_METRIC_LIST(BURSTHIST_OBS_TABLE_ENTRY)
#undef BURSTHIST_OBS_TABLE_ENTRY
    return t;
  }();
  return *table;
}

void RegisterStandardMetrics(MetricsRegistry* registry) {
  MetricsRegistry& r = registry != nullptr ? *registry
                                           : MetricsRegistry::Global();
  for (const auto& m : StandardMetrics()) {
    switch (m.kind) {
      case MetricKind::kCounter:
        r.GetCounter(m.name, m.help);
        break;
      case MetricKind::kGauge:
        r.GetGauge(m.name, m.help);
        break;
      case MetricKind::kHistogram:
        r.GetHistogram(m.name, m.help,
                       IsSizeHistogramName(m.name) ? SizeBounds()
                                                   : LatencyBounds());
        break;
    }
  }
}

Counter& GetCounter(const char* name) {
  return MetricsRegistry::Global().GetCounter(name, HelpFor(name));
}

Gauge& GetGauge(const char* name) {
  return MetricsRegistry::Global().GetGauge(name, HelpFor(name));
}

Histogram& GetLatencyHistogram(const char* name) {
  return MetricsRegistry::Global().GetHistogram(name, HelpFor(name),
                                                LatencyBounds());
}

Histogram& GetSizeHistogram(const char* name) {
  return MetricsRegistry::Global().GetHistogram(name, HelpFor(name),
                                                SizeBounds());
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

void TraceRing::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, TraceEvent{});
  next_ = 0;
  count_ = 0;
  enabled_.store(capacity != 0, std::memory_order_relaxed);
}

void TraceRing::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRing::Record(const char* label, uint64_t start_us,
                       double duration_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed) || capacity_ == 0) return;
  ring_[next_] = TraceEvent{label, start_us, duration_seconds};
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event first: the cursor points at the slot that would be
  // overwritten next, which is the oldest once the ring has wrapped.
  const size_t start = count_ < capacity_ ? 0 : next_;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string FormatStatsLine() {
  MetricsRegistry& r = MetricsRegistry::Global();
  char buf[256];
  const double resident = r.GetGauge(kEngineResidentBytes, "").Value();
  std::snprintf(
      buf, sizeof(buf),
      "[bursthist] appends=%" PRIu64 " rejects=%" PRIu64 " dropped=%" PRIu64
      " reorder_depth=%.0f resident_kb=%.1f bound=%.3f level=%.0f",
      r.GetCounter(kEngineAppendsTotal, "").Value(),
      r.GetCounter(kEngineAppendRejectsTotal, "").Value(),
      r.GetCounter(kEngineDroppedRecordsTotal, "").Value(),
      r.GetGauge(kEngineReorderDepth, "").Value(), resident / 1024.0,
      r.GetGauge(kEffectivePointBound, "").Value(),
      r.GetGauge(kGovernorLevel, "").Value());
  return std::string(buf);
}

PeriodicStats::PeriodicStats(double interval_seconds, std::FILE* out)
    : out_(out),
      interval_seconds_(interval_seconds),
      last_print_(std::chrono::steady_clock::now()) {}

void PeriodicStats::Tick(uint64_t records) {
  records_ += records;
  // Amortize the clock read: only look at the time every 4096 ticks.
  if (++ticks_since_check_ < 4096) return;
  ticks_since_check_ = 0;
  MaybePrint(false);
}

void PeriodicStats::Final() { MaybePrint(true); }

void PeriodicStats::MaybePrint(bool force) {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - last_print_).count();
  if (!force && elapsed < interval_seconds_) return;
  const double rate =
      elapsed > 0.0 ? static_cast<double>(records_ - last_records_) / elapsed
                    : 0.0;
  std::fprintf(out_, "%s rate=%.0f/s\n", FormatStatsLine().c_str(), rate);
  last_print_ = now;
  last_records_ = records_;
}

}  // namespace obs
}  // namespace bursthist

#else  // BURSTHIST_NO_METRICS

// Keep the translation unit non-empty so the archive has a member in
// compiled-out builds.
namespace bursthist {
namespace obs {
const int kMetricsCompiledOut = 1;
}  // namespace obs
}  // namespace bursthist

#endif  // BURSTHIST_NO_METRICS
