// Observability layer: a process-wide metrics registry with cheap
// atomic counters, gauges, and fixed-bucket latency histograms, plus
// scoped TraceSpan timers with an optional ring-buffer event trace.
//
// Design constraints (in priority order):
//
//  1. No locks on the hot path. Counter::Inc, Gauge::Set, and
//     Histogram::Observe touch only relaxed atomics; the registry
//     mutex is taken exactly once per call site (the macros below
//     cache the handle in a function-local static) and during
//     exposition.
//  2. Compile-out-able. With -DBURSTHIST_NO_METRICS=ON every handle
//     becomes an empty value type whose methods are inline no-ops, so
//     instrumented code compiles unchanged and the optimizer erases
//     it. No call site carries an #ifdef.
//  3. Self-describing. Every metric is declared in
//     obs/metric_names.h; RegisterStandardMetrics() materializes the
//     full set so an exposition always shows every metric (zeros
//     included), and tools/check_metrics_docs.py diffs the list
//     against docs/OPERATIONS.md.
//
// Instrumentation pattern (identical in both build modes):
//
//   BURSTHIST_COUNTER(m_appends, obs::kEngineAppendsTotal);
//   m_appends.Inc();
//
//   BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kQueryPointLatencySeconds);
//   obs::TraceSpan span(m_lat, "point");   // observes on destruction
//
// Exposition: MetricsRegistry::WritePrometheus (text format 0.0.4)
// and WriteJson. See docs/OPERATIONS.md for the operator's view.

#ifndef BURSTHIST_OBS_METRICS_H_
#define BURSTHIST_OBS_METRICS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/metric_names.h"

#ifndef BURSTHIST_NO_METRICS

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace bursthist {
namespace obs {

/// What a registry entry is — drives exposition formatting.
enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// Shared bucket boundaries for every latency histogram, in seconds
/// (1-2.5-5 log scale, 1 µs .. 2.5 s; +Inf is implicit). Fixed at
/// compile time so Observe() is a short branch-free-ish scan with no
/// allocation.
inline constexpr double kLatencyBucketBounds[] = {
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,
    2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5};
inline constexpr size_t kLatencyBucketCount =
    sizeof(kLatencyBucketBounds) / sizeof(kLatencyBucketBounds[0]);

namespace internal {
/// Relaxed-ordering add for atomic<double> (fetch_add on floating
/// atomics is C++20 but not universally lowered; the CAS loop is).
inline void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace internal

/// Monotonically increasing event count. Never reset, never set.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (resident bytes, queue depth,
/// error bound in force). Multiple publishers race benignly: the
/// freshest write wins, which is the gauge contract.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { internal::AtomicAdd(&value_, v); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative `le` buckets in the Prometheus
/// sense, plus sum and count. Observe() is lock-free (one linear scan
/// of the boundaries + three relaxed atomic updates).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

  void Observe(double v) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAdd(&sum_, v);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  // deque-like stable storage not needed: sized once in the ctor.
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> metric map with registration-time locking only. Handles
/// returned by Get* are stable for the registry's lifetime, so call
/// sites cache them (the BURSTHIST_* macros do this automatically).
class MetricsRegistry {
 public:
  /// The process-wide registry every macro call site publishes to.
  static MetricsRegistry& Global();

  /// Finds or creates. A name already registered as a different kind
  /// is a programming error (asserts in debug; returns the requested
  /// kind's process-wide fallback dummy in release so instrumentation
  /// never crashes the host).
  Counter& GetCounter(const std::string& name, const std::string& help);
  Gauge& GetGauge(const std::string& name, const std::string& help);
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Prometheus text exposition format 0.0.4 (HELP/TYPE + samples),
  /// metrics sorted by name.
  void WritePrometheus(std::string* out) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {"count", "sum", "buckets": [[le, n], ...]}}}.
  void WriteJson(std::string* out) const;

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetOrCreate(const std::string& name, const std::string& help,
                     MetricKind kind, const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

/// Eagerly registers every metric declared in obs/metric_names.h, so
/// an exposition shows the full set with zero values instead of only
/// the metrics the process happened to touch.
void RegisterStandardMetrics(MetricsRegistry* registry = nullptr);

/// The declared standard-metric table (name/help/kind), in
/// declaration order — the docs-drift check and tests read this.
struct StandardMetricInfo {
  const char* name;
  const char* help;
  MetricKind kind;
};
const std::vector<StandardMetricInfo>& StandardMetrics();

/// Global-registry lookups with the standard help text; used by the
/// call-site macros. Names outside metric_names.h get an empty help.
Counter& GetCounter(const char* name);
Gauge& GetGauge(const char* name);
Histogram& GetLatencyHistogram(const char* name);
/// Histogram with power-of-two record-count buckets (1, 2, 4, ...,
/// 8192) — for batch-size distributions, where latency buckets would
/// put every observation in the overflow bucket.
Histogram& GetSizeHistogram(const char* name);

/// One completed TraceSpan, as read back from the ring.
struct TraceEvent {
  const char* label = nullptr;  ///< The span's static label.
  uint64_t start_us = 0;        ///< Start, µs since an arbitrary epoch.
  double duration_seconds = 0.0;
};

/// Bounded ring buffer of recent trace events for post-hoc debugging.
/// Off by default (spans then cost nothing beyond their histogram
/// observation); Enable() starts capture, Snapshot() reads the ring
/// oldest-first. Recording takes a mutex — acceptable because tracing
/// is an opt-in debugging mode, not the steady-state hot path.
class TraceRing {
 public:
  static TraceRing& Global();

  void Enable(size_t capacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(const char* label, uint64_t start_us, double duration_seconds);
  std::vector<TraceEvent> Snapshot() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_ = 0;
  size_t next_ = 0;   // ring write cursor
  size_t count_ = 0;  // events stored (<= capacity_)
};

/// Scoped timer: observes its lifetime into a latency histogram on
/// destruction and, when the trace ring is enabled and a label was
/// given, records a TraceEvent.
class TraceSpan {
 public:
  explicit TraceSpan(Histogram& histogram, const char* label = nullptr)
      : histogram_(&histogram),
        label_(label),
        start_(std::chrono::steady_clock::now()) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    histogram_->Observe(seconds);
    if (label_ != nullptr && TraceRing::Global().enabled()) {
      const uint64_t start_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              start_.time_since_epoch())
              .count());
      TraceRing::Global().Record(label_, start_us, seconds);
    }
  }

 private:
  Histogram* histogram_;
  const char* label_;
  std::chrono::steady_clock::time_point start_;
};

/// Compact one-line operator summary of the registry's headline
/// numbers ("appends=… reorder=… resident=… level=…").
std::string FormatStatsLine();

/// Periodic stats line for long ingests: call Tick() per record; once
/// `interval_seconds` elapses (checked every few thousand ticks, so
/// the clock stays off the per-record path) a stats line goes to
/// `out`. Final() prints one unconditionally.
class PeriodicStats {
 public:
  explicit PeriodicStats(double interval_seconds = 1.0,
                         std::FILE* out = stderr);
  void Tick(uint64_t records = 1);
  void Final();

 private:
  void MaybePrint(bool force);

  std::FILE* out_;
  double interval_seconds_;
  uint64_t ticks_since_check_ = 0;
  uint64_t records_ = 0;
  uint64_t last_records_ = 0;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace obs
}  // namespace bursthist

/// Call-site handle caches: one registry lookup per call site for the
/// process lifetime, then pure atomics.
#define BURSTHIST_COUNTER(var, name) \
  static ::bursthist::obs::Counter& var = ::bursthist::obs::GetCounter(name)
#define BURSTHIST_GAUGE(var, name) \
  static ::bursthist::obs::Gauge& var = ::bursthist::obs::GetGauge(name)
#define BURSTHIST_LATENCY_HISTOGRAM(var, name)  \
  static ::bursthist::obs::Histogram& var =     \
      ::bursthist::obs::GetLatencyHistogram(name)
#define BURSTHIST_SIZE_HISTOGRAM(var, name)     \
  static ::bursthist::obs::Histogram& var =     \
      ::bursthist::obs::GetSizeHistogram(name)

#else  // BURSTHIST_NO_METRICS -------------------------------------------

// Compiled-out mode: the same API surface as value types whose
// methods are inline no-ops. Instrumented code compiles unchanged and
// the optimizer deletes every trace of it.

namespace bursthist {
namespace obs {

class Counter {
 public:
  void Inc(uint64_t = 1) const {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) const {}
  void Add(double) const {}
  double Value() const { return 0.0; }
};

class Histogram {
 public:
  void Observe(double) const {}
  uint64_t Count() const { return 0; }
  double Sum() const { return 0.0; }
};

class TraceRing {
 public:
  static TraceRing& Global() {
    static TraceRing ring;
    return ring;
  }
  void Enable(size_t) {}
  void Disable() {}
  bool enabled() const { return false; }
};

class TraceSpan {
 public:
  explicit TraceSpan(const Histogram&, const char* = nullptr) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {}  // user-provided: silences unused-variable warnings
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  void WritePrometheus(std::string* out) const {
    *out += "# bursthist metrics compiled out (BURSTHIST_NO_METRICS)\n";
  }
  void WriteJson(std::string* out) const { *out += "{}"; }
};

inline void RegisterStandardMetrics(MetricsRegistry* = nullptr) {}

inline std::string FormatStatsLine() { return std::string(); }

class PeriodicStats {
 public:
  explicit PeriodicStats(double = 1.0, std::FILE* = stderr) {}
  void Tick(uint64_t = 1) {}
  void Final() {}
};

}  // namespace obs
}  // namespace bursthist

#define BURSTHIST_COUNTER(var, name) \
  [[maybe_unused]] constexpr ::bursthist::obs::Counter var {}
#define BURSTHIST_GAUGE(var, name) \
  [[maybe_unused]] constexpr ::bursthist::obs::Gauge var {}
#define BURSTHIST_LATENCY_HISTOGRAM(var, name) \
  [[maybe_unused]] constexpr ::bursthist::obs::Histogram var {}
#define BURSTHIST_SIZE_HISTOGRAM(var, name) \
  [[maybe_unused]] constexpr ::bursthist::obs::Histogram var {}

#endif  // BURSTHIST_NO_METRICS

#endif  // BURSTHIST_OBS_METRICS_H_
