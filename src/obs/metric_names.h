// The registry's single source of truth for metric names.
//
// Every metric the library exports is declared here, once, through the
// BURSTHIST_METRIC_LIST X-macro: the entry generates the name constant
// instrumentation sites reference, the eager registration that makes
// `bursthist_cli metrics` show the full set (zeros included), and the
// table `tools/check_metrics_docs.py` diffs against the operator
// runbook (docs/OPERATIONS.md). Adding a metric anywhere else will
// fail the docs-drift CI check — add it to this list.
//
// Entry format: M(Kind, Symbol, "prometheus_name", "help text")
//   Kind   — Counter, Gauge, or Histogram (histograms use the shared
//            latency buckets, kLatencyBucketBounds in obs/metrics.h;
//            names ending in "_size_records" use power-of-two
//            record-count buckets instead).
//   Symbol — generates `obs::k<Symbol>`, the constant call sites use.

#ifndef BURSTHIST_OBS_METRIC_NAMES_H_
#define BURSTHIST_OBS_METRIC_NAMES_H_

// clang-format off
#define BURSTHIST_METRIC_LIST(M)                                              \
  /* ---- engine: ingest path ---- */                                         \
  M(Counter, EngineAppendsTotal, "bursthist_engine_appends_total",            \
    "Records accepted by BurstEngine::Append (buffered or ingested).")        \
  M(Counter, EngineAppendRejectsTotal,                                        \
    "bursthist_engine_append_rejects_total",                                  \
    "Appends refused: validation, lateness, backpressure, or WAL error.")     \
  M(Counter, EngineDroppedRecordsTotal,                                       \
    "bursthist_engine_dropped_records_total",                                 \
    "Occurrences shed by the kDropOldest re-order overflow policy.")          \
  M(Counter, EngineForcedDrainsTotal,                                         \
    "bursthist_engine_forced_drains_total",                                   \
    "Times the kForceDrain policy advanced the watermark to shed buffer.")    \
  M(Gauge, EngineReorderDepth, "bursthist_engine_reorder_depth",              \
    "Records currently held in the out-of-order re-order buffer.")            \
  M(Gauge, EngineWatermarkLag, "bursthist_engine_watermark_lag",              \
    "Watermark minus oldest buffered timestamp, in stream time units.")       \
  M(Gauge, EngineResidentBytes, "bursthist_engine_resident_bytes",            \
    "Resident bytes of the engine (index + summaries + buffers).")            \
  /* ---- engine: batch ingest path ---- */                                   \
  M(Counter, EngineBatchAppendsTotal, "bursthist_engine_batch_appends_total", \
    "AppendBatch calls (each covers one span of records).")                   \
  M(Histogram, EngineBatchSizeRecords, "bursthist_engine_batch_size_records", \
    "Records per AppendBatch call (power-of-two record-count buckets).")      \
  M(Histogram, EngineBatchAppendLatencySeconds,                               \
    "bursthist_engine_batch_append_latency_seconds",                          \
    "Latency of one whole AppendBatch call (validation to sketch update).")   \
  /* ---- engine: query path ---- */                                          \
  M(Histogram, QueryPointLatencySeconds,                                      \
    "bursthist_query_point_latency_seconds",                                  \
    "Latency of POINT queries q(e, t, tau).")                                 \
  M(Histogram, QueryBurstyTimeLatencySeconds,                                 \
    "bursthist_query_bursty_time_latency_seconds",                            \
    "Latency of BURSTY TIME queries q(e, theta, tau).")                       \
  M(Histogram, QueryBurstyEventLatencySeconds,                                \
    "bursthist_query_bursty_event_latency_seconds",                           \
    "Latency of BURSTY EVENT queries q(t, theta, tau).")                      \
  M(Gauge, QueryBurstyEventPointQueries,                                      \
    "bursthist_query_bursty_event_point_queries",                             \
    "Point queries the last BURSTY EVENT query needed (prune quality).")      \
  M(Histogram, QueryFrequentBurstyEventLatencySeconds,                        \
    "bursthist_query_frequent_bursty_event_latency_seconds",                  \
    "Latency of frequency-filtered BURSTY EVENT queries.")                    \
  M(Histogram, QueryTopkLatencySeconds,                                       \
    "bursthist_query_topk_latency_seconds",                                   \
    "Latency of TOP-K BURSTY EVENT queries.")                                 \
  /* ---- read snapshots ---- */                                              \
  M(Counter, EngineReadSnapshotsTotal,                                        \
    "bursthist_engine_read_snapshots_total",                                  \
    "Immutable read snapshots published by AcquireSnapshot().")               \
  M(Histogram, SnapshotAcquireLatencySeconds,                                 \
    "bursthist_snapshot_acquire_latency_seconds",                             \
    "Latency of AcquireSnapshot() — ripe drain plus finalized clone.")        \
  /* ---- accuracy proxies ---- */                                            \
  M(Gauge, EffectivePointBound, "bursthist_effective_point_bound",            \
    "POINT error bound in force: eps*N + 4*cell_error, degradation "          \
    "included.")                                                              \
  M(Gauge, CmpbeEstimateSpread, "bursthist_cmpbe_estimate_spread",            \
    "Max-minus-min of per-row estimates in the latest hashed-grid "           \
    "combine (0 = rows agree).")                                              \
  M(Gauge, CmpbeMaxCellMass, "bursthist_cmpbe_max_cell_mass",                 \
    "Heaviest leaf-cell routed mass — worst-case collision mass a POINT "     \
    "answer can absorb.")                                                     \
  /* ---- recovery: WAL and snapshots ---- */                                 \
  M(Counter, WalAppendsTotal, "bursthist_wal_appends_total",                  \
    "Records durably framed into the write-ahead log.")                       \
  M(Histogram, WalAppendLatencySeconds,                                       \
    "bursthist_wal_append_latency_seconds",                                   \
    "Latency of one WAL record append (including any retries).")              \
  M(Counter, WalAppendRetriesTotal, "bursthist_wal_append_retries_total",     \
    "WAL append retries onto a fresh segment after transient IO errors.")     \
  M(Counter, WalFsyncsTotal, "bursthist_wal_fsyncs_total",                    \
    "WAL fsync calls (per-record when sync_every_record, else on "            \
    "Sync/rotation).")                                                        \
  M(Histogram, WalFsyncLatencySeconds, "bursthist_wal_fsync_latency_seconds", \
    "Latency of WAL fsync calls — stalls here block ingestion.")              \
  M(Counter, WalRotationsTotal, "bursthist_wal_rotations_total",              \
    "WAL segment rotations (fsync + fresh segment).")                         \
  M(Histogram, WalRotationLatencySeconds,                                     \
    "bursthist_wal_rotation_latency_seconds",                                 \
    "Latency of WAL segment rotation.")                                       \
  M(Gauge, WalPoisoned, "bursthist_wal_poisoned",                             \
    "1 once an fsync failure poisoned the WAL writer (read-only mode).")      \
  M(Counter, SnapshotWritesTotal, "bursthist_snapshot_writes_total",          \
    "Snapshot files atomically written by Checkpoint().")                     \
  M(Histogram, SnapshotWriteLatencySeconds,                                   \
    "bursthist_snapshot_write_latency_seconds",                               \
    "Latency of one atomic snapshot write (temp + fsync + rename).")          \
  M(Gauge, SnapshotBytes, "bursthist_snapshot_bytes",                         \
    "Size of the most recently written snapshot file, in bytes.")             \
  M(Counter, RecoveryReplayedRecordsTotal,                                    \
    "bursthist_recovery_replayed_records_total",                              \
    "WAL records replayed into an engine during recovery.")                   \
  M(Counter, RecoveryTornTailsTotal, "bursthist_recovery_torn_tails_total",   \
    "Replays that stopped at a torn/truncated WAL tail (crash remnant).")     \
  /* ---- resource governor ---- */                                           \
  M(Gauge, GovernorResidentBytes, "bursthist_governor_resident_bytes",        \
    "Total audited bytes across governed components at the last audit.")      \
  M(Gauge, GovernorSoftBudgetBytes, "bursthist_governor_soft_budget_bytes",   \
    "Configured soft byte budget (0 = unlimited).")                           \
  M(Gauge, GovernorHardBudgetBytes, "bursthist_governor_hard_budget_bytes",   \
    "Configured hard byte budget (0 = unlimited).")                           \
  M(Gauge, GovernorLevel, "bursthist_governor_level",                         \
    "Degradation ladder position: 0 Normal, 1 Shedding, 2 Saturated.")        \
  M(Counter, GovernorLevelTransitionsTotal,                                   \
    "bursthist_governor_level_transitions_total",                             \
    "Degradation-level changes observed by Enforce().")                       \
  M(Counter, GovernorShedRoundsTotal, "bursthist_governor_shed_rounds_total", \
    "Shed rounds executed (each widens bounds or compacts buffers).")         \
  M(Counter, GovernorAuditsTotal, "bursthist_governor_audits_total",          \
    "Governor audit walks (Enforce calls).")                                  \
  M(Counter, GovernorAdmissionRejectsTotal,                                   \
    "bursthist_governor_admission_rejects_total",                             \
    "Appends refused by admission control over the hard budget.")             \
  /* ---- serving front-end ---- */                                           \
  M(Counter, ServerConnectionsTotal, "bursthist_server_connections_total",    \
    "Client connections accepted by the serving front-end.")                  \
  M(Gauge, ServerActiveConnections, "bursthist_server_active_connections",    \
    "Client connections currently open.")                                     \
  M(Counter, ServerRequestsTotal, "bursthist_server_requests_total",          \
    "Protocol requests parsed and dispatched (errors included).")             \
  M(Counter, ServerRequestErrorsTotal,                                        \
    "bursthist_server_request_errors_total",                                  \
    "Requests answered with an ERR reply (parse, validation, admission).")    \
  M(Counter, ServerIngestRecordsTotal,                                        \
    "bursthist_server_ingest_records_total",                                  \
    "Records accepted over the wire into the served engine.")                 \
  M(Histogram, ServerRequestLatencySeconds,                                   \
    "bursthist_server_request_latency_seconds",                               \
    "Server-side latency of one protocol request (parse to reply).")          \
  M(Gauge, ServerSnapshotStalenessAppends,                                    \
    "bursthist_server_snapshot_staleness_appends",                            \
    "Appends accepted since the serving snapshot was last refreshed.")        \
  /* ---- serving front-end: ingest ring ---- */                              \
  M(Gauge, ServerRingDepth, "bursthist_server_ring_depth",                    \
    "Ingest jobs queued in the MPSC ring awaiting the engine thread.")        \
  M(Counter, ServerRingJobsTotal, "bursthist_server_ring_jobs_total",         \
    "Ingest jobs pushed through the MPSC ring (one per ADD batch).")          \
  M(Counter, ServerRingFullRetriesTotal,                                      \
    "bursthist_server_ring_full_retries_total",                               \
    "Push attempts that found the ring full and backed off (backpressure).")  \
  M(Histogram, ServerRingBatchSizeRecords,                                    \
    "bursthist_server_ring_batch_size_records",                               \
    "ADD records per ring job (power-of-two record-count buckets).")          \
  /* ---- replication: leader (WAL shipper) ---- */                           \
  M(Counter, ReplShippedRecordsTotal, "bursthist_repl_shipped_records_total", \
    "WAL records framed and shipped to followers (all connections).")         \
  M(Counter, ReplShippedBytesTotal, "bursthist_repl_shipped_bytes_total",     \
    "Replication wire bytes sent to followers (records + heartbeats).")       \
  M(Counter, ReplFollowerConnectionsTotal,                                    \
    "bursthist_repl_follower_connections_total",                              \
    "Follower connections accepted by the WAL shipper.")                      \
  M(Counter, ReplSnapshotsServedTotal,                                        \
    "bursthist_repl_snapshots_served_total",                                  \
    "Bootstrap snapshots served to followers (blank or pruned-behind).")      \
  /* ---- replication: follower (replica engine) ---- */                      \
  M(Counter, ReplAppliedRecordsTotal, "bursthist_repl_applied_records_total", \
    "Shipped records durably applied by the replica (duplicates skipped).")   \
  M(Counter, ReplReconnectsTotal, "bursthist_repl_reconnects_total",          \
    "Times the replica re-dialed the leader after a broken/dead link.")       \
  M(Counter, ReplFramesRejectedTotal,                                         \
    "bursthist_repl_frames_rejected_total",                                   \
    "Wire frames rejected (checksum/decode); each drops the connection.")     \
  M(Gauge, ReplConnected, "bursthist_repl_connected",                         \
    "1 while the replica holds a live connection to its leader.")             \
  M(Gauge, ReplLag, "bursthist_repl_lag",                                     \
    "Replication lag in stream-time units: leader watermark minus "           \
    "applied watermark.")                                                     \
  /* ---- sharded cluster ---- */                                             \
  M(Gauge, ShardCount, "bursthist_shard_count",                               \
    "Shards behind the serving cluster engine (1 = unsharded).")              \
  M(Gauge, ShardWatermarkSkew, "bursthist_shard_watermark_skew",              \
    "Max minus min per-shard watermark at the last publish, in "              \
    "stream-time units (hot-shard / stalled-shard indicator).")               \
  M(Counter, ShardBatchFanoutTotal, "bursthist_shard_batch_fanout_total",     \
    "Per-shard sub-batches dispatched by ClusterEngine::AppendBatch.")        \
  M(Counter, ShardQueryFanoutTotal, "bursthist_shard_query_fanout_total",     \
    "Per-shard snapshot visits issued by scatter-gather queries.")            \
  M(Histogram, ShardScatterLatencySeconds,                                    \
    "bursthist_shard_scatter_latency_seconds",                                \
    "Latency of one scatter-gather fan-out, per-shard pruning and "           \
    "candidate merge included.")                                              \
  M(Gauge, ShardMaxLag, "bursthist_shard_max_lag",                            \
    "Worst per-shard replication lag on a sharded follower, in "              \
    "stream-time units.")                                                     \
  /* ---- integrity scrubber ---- */                                          \
  M(Counter, ScrubRunsTotal, "bursthist_scrub_runs_total",                    \
    "Integrity scrub passes over a durable directory.")                       \
  M(Counter, ScrubRecordsCheckedTotal,                                        \
    "bursthist_scrub_records_checked_total",                                  \
    "WAL records whose checksums a scrub pass re-validated.")                 \
  M(Counter, ScrubCorruptFilesTotal, "bursthist_scrub_corrupt_files_total",   \
    "Corrupt WAL segments or snapshots detected by scrub passes.")            \
  M(Gauge, ScrubQuarantinedFiles, "bursthist_scrub_quarantined_files",        \
    "Quarantined (.quarantined) files present after the last scrub.")
// clang-format on

namespace bursthist {
namespace obs {

// obs::k<Symbol> — the constant instrumentation sites pass to
// BURSTHIST_COUNTER / BURSTHIST_GAUGE / BURSTHIST_LATENCY_HISTOGRAM.
#define BURSTHIST_OBS_DECLARE_NAME(Kind, Symbol, Name, Help) \
  inline constexpr char k##Symbol[] = Name;
BURSTHIST_METRIC_LIST(BURSTHIST_OBS_DECLARE_NAME)
#undef BURSTHIST_OBS_DECLARE_NAME

}  // namespace obs
}  // namespace bursthist

#endif  // BURSTHIST_OBS_METRIC_NAMES_H_
