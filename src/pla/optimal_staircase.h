// Optimal staircase approximation under a point budget (Section III-A,
// Algorithm 1 of the paper).
//
// Given the n corner points of an exact cumulative frequency curve
// F(t), pick eta <= n of them (the two boundary points are forced —
// Corollary 1) so that the staircase through the chosen points
// minimizes the area error
//     Delta = integral_0^T (F(t) - F~(t)) dt            (Equation 3)
// among all approximations that never overestimate F. Lemma 3 shows
// the optimum only uses original corner points, so the search space is
// exactly "choose a subset".
//
// Two implementations:
//   * OptimalStaircaseNaive — the paper's O(n^2 * eta) dynamic program,
//     kept as the reference oracle for tests.
//   * OptimalStaircase — the same DP accelerated with the
//     divide-and-conquer optimization. The gap cost satisfies the
//     concave quadrangle inequality
//       cost(a,b') - cost(a,b) = sum_{j in [b,b')} w_j (y_j - y_a)
//     which is non-increasing in a, so the per-layer argmin is monotone
//     and each layer solves in O(n log n); total O(eta * n log n).
//
// OptimalStaircaseErrorCapped inverts the trade-off: the smallest
// number of points whose optimal error is <= max_error (the "hard cap
// on the error" variant the paper mentions).

#ifndef BURSTHIST_PLA_OPTIMAL_STAIRCASE_H_
#define BURSTHIST_PLA_OPTIMAL_STAIRCASE_H_

#include <cstdint>
#include <vector>

#include "stream/frequency_curve.h"

namespace bursthist {

/// Result of a staircase fit.
struct StaircaseFit {
  /// Indices of the selected corner points (ascending; always contains
  /// 0 and n-1 when n >= 2).
  std::vector<uint32_t> selected;
  /// Area error Delta of the selected staircase against the input.
  double error = 0.0;

  /// Materializes the selected points.
  std::vector<CurvePoint> Materialize(
      const std::vector<CurvePoint>& points) const;
};

/// Optimal fit with at most `budget` points (clamped to [2, n]).
/// Precondition: points strictly increasing in time and count.
StaircaseFit OptimalStaircase(const std::vector<CurvePoint>& points,
                              size_t budget);

/// Reference O(n^2 * eta) implementation; identical output contract.
StaircaseFit OptimalStaircaseNaive(const std::vector<CurvePoint>& points,
                                   size_t budget);

/// Smallest selection whose optimal area error is <= max_error.
StaircaseFit OptimalStaircaseErrorCapped(
    const std::vector<CurvePoint>& points, double max_error);

/// Exact area error of an arbitrary selection (ascending indices that
/// include 0 and n-1). Exposed for tests and benches.
double SelectionError(const std::vector<CurvePoint>& points,
                      const std::vector<uint32_t>& selected);

}  // namespace bursthist

#endif  // BURSTHIST_PLA_OPTIMAL_STAIRCASE_H_
