#include "pla/linear_model.h"

#include <algorithm>
#include <cassert>

#include "util/varint.h"

namespace bursthist {

void LinearModel::AppendSegment(const PlaSegment& seg) {
  assert(seg.last >= seg.start);
  assert(segments_.empty() || seg.start > segments_.back().last);
  segments_.push_back(seg);
}

void LinearModel::AppendShifted(const LinearModel& suffix,
                                double value_offset) {
  segments_.reserve(segments_.size() + suffix.segments_.size());
  for (PlaSegment s : suffix.segments_) {
    s.b += value_offset;
    AppendSegment(s);
  }
}

double LinearModel::Evaluate(Timestamp t) const {
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](Timestamp v, const PlaSegment& s) { return v < s.start; });
  if (it == segments_.begin()) return 0.0;
  const PlaSegment& s = *std::prev(it);
  const Timestamp eff = std::min(t, s.last);
  const double v = s.a * static_cast<double>(eff - s.start) + s.b;
  return v < 0.0 ? 0.0 : v;
}

double LinearModel::EstimateBurstiness(Timestamp t, Timestamp tau) const {
  return Evaluate(t) - 2.0 * Evaluate(t - tau) + Evaluate(t - 2 * tau);
}

std::vector<Timestamp> LinearModel::Breakpoints() const {
  std::vector<Timestamp> out;
  out.reserve(segments_.size() * 2);
  for (const auto& s : segments_) {
    // Adjacent windows make (prev.last + 1) == next.start; keep the
    // list strictly increasing.
    if (out.empty() || s.start > out.back()) out.push_back(s.start);
    out.push_back(s.last + 1);
  }
  return out;
}

void LinearModel::Serialize(BinaryWriter* w) const {
  // Segment times are delta + varint coded (starts strictly increase
  // past the previous segment's last); line coefficients stay as raw
  // doubles.
  PutVarint(w, segments_.size());
  Timestamp prev_last = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const PlaSegment& s = segments_[i];
    if (i == 0) {
      PutSignedVarint(w, s.start);
    } else {
      PutVarint(w, static_cast<uint64_t>(s.start - prev_last));
    }
    PutVarint(w, static_cast<uint64_t>(s.last - s.start));
    w->Put<double>(s.a);
    w->Put<double>(s.b);
    prev_last = s.last;
  }
}

Status LinearModel::Deserialize(BinaryReader* r) {
  uint64_t n = 0;
  BURSTHIST_RETURN_IF_ERROR(GetVarint(r, &n));
  if (n > r->remaining()) {
    return Status::Corruption("segment count exceeds payload");
  }
  segments_.clear();
  segments_.reserve(static_cast<size_t>(n));
  Timestamp prev_last = 0;
  for (uint64_t i = 0; i < n; ++i) {
    PlaSegment s;
    if (i == 0) {
      int64_t first = 0;
      BURSTHIST_RETURN_IF_ERROR(GetSignedVarint(r, &first));
      s.start = first;
    } else {
      uint64_t gap = 0;
      BURSTHIST_RETURN_IF_ERROR(GetVarint(r, &gap));
      if (gap == 0) return Status::Corruption("overlapping segments");
      s.start = prev_last + static_cast<Timestamp>(gap);
    }
    uint64_t span = 0;
    BURSTHIST_RETURN_IF_ERROR(GetVarint(r, &span));
    s.last = s.start + static_cast<Timestamp>(span);
    BURSTHIST_RETURN_IF_ERROR(r->Get(&s.a));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&s.b));
    segments_.push_back(s);
    prev_last = s.last;
  }
  return Status::OK();
}

}  // namespace bursthist
