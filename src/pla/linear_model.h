// Piecewise-linear approximation model: what PBE-2 stores
// (Section III-B of the paper).
//
// Each segment holds a line in *window-local* time (slope `a`,
// intercept `b` at `start`), effective on [start, last]. Between a
// segment's `last` and the next segment's `start` the exact curve is
// provably flat (a consequence of the augmented point set), so the
// model holds the segment's final value constant across the gap — this
// preserves the F~(t) in [F(t) - gamma, F(t)] guarantee at every
// discrete timestamp.

#ifndef BURSTHIST_PLA_LINEAR_MODEL_H_
#define BURSTHIST_PLA_LINEAR_MODEL_H_

#include <cstddef>
#include <vector>

#include "stream/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// One PLA segment: value(t) = a * (t - start) + b for t in
/// [start, last]; held at value(last) for t in (last, next start).
struct PlaSegment {
  double a = 0.0;
  double b = 0.0;
  Timestamp start = 0;
  Timestamp last = 0;
};

/// An ordered sequence of PLA segments with staircase-style lookup.
class LinearModel {
 public:
  LinearModel() = default;

  /// Appends a segment; `start` must exceed the previous segment's
  /// `last`.
  void AppendSegment(const PlaSegment& seg);

  /// Appends every segment of `suffix` with its intercept lifted by
  /// `value_offset` — the PLA concatenation used by segment-parallel
  /// construction, where the suffix model was built over a later time
  /// range with counts starting from zero. The suffix's first segment
  /// must start strictly after this model's last segment ends.
  void AppendShifted(const LinearModel& suffix, double value_offset);

  size_t size() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }
  const std::vector<PlaSegment>& segments() const { return segments_; }

  /// F~(t): 0 before the first segment; within a segment, the line;
  /// past a segment's `last`, the line's value at `last` (held flat
  /// until the next segment begins). Clamped below at 0.
  double Evaluate(Timestamp t) const;

  /// b~(t) = F~(t) - 2 F~(t-tau) + F~(t-2tau).
  double EstimateBurstiness(Timestamp t, Timestamp tau) const;

  /// Times where the model's slope can change: each segment's start
  /// and (last + 1). The burstiness estimate is piecewise-linear
  /// between breakpoints shifted by {0, tau, 2tau}.
  std::vector<Timestamp> Breakpoints() const;

  size_t SizeBytes() const { return segments_.size() * sizeof(PlaSegment); }

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  std::vector<PlaSegment> segments_;
};

}  // namespace bursthist

#endif  // BURSTHIST_PLA_LINEAR_MODEL_H_
