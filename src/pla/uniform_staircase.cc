#include "pla/uniform_staircase.h"

#include <algorithm>

namespace bursthist {

StaircaseFit UniformStaircase(const std::vector<CurvePoint>& points,
                              size_t budget) {
  StaircaseFit fit;
  const size_t n = points.size();
  if (n == 0) return fit;
  budget = std::max<size_t>(budget, 2);
  if (budget >= n) {
    fit.selected.resize(n);
    for (size_t i = 0; i < n; ++i) fit.selected[i] = static_cast<uint32_t>(i);
    fit.error = 0.0;
    return fit;
  }
  fit.selected.reserve(budget);
  // Evenly spaced fractional positions over [0, n-1].
  for (size_t i = 0; i < budget; ++i) {
    const size_t idx = i * (n - 1) / (budget - 1);
    if (fit.selected.empty() || fit.selected.back() != idx) {
      fit.selected.push_back(static_cast<uint32_t>(idx));
    }
  }
  fit.error = SelectionError(points, fit.selected);
  return fit;
}

}  // namespace bursthist
