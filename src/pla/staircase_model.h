// Compressed staircase approximation of a cumulative frequency curve
// (the representation PBE-1 stores, Section III-A).

#ifndef BURSTHIST_PLA_STAIRCASE_MODEL_H_
#define BURSTHIST_PLA_STAIRCASE_MODEL_H_

#include <cstddef>
#include <vector>

#include "stream/frequency_curve.h"
#include "stream/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// A monotone staircase over corner points: value of the last corner at
/// or before t, zero before the first corner. Corner points are a
/// subset of the exact curve's corners, so the model never
/// overestimates F(t).
class StaircaseModel {
 public:
  StaircaseModel() = default;
  explicit StaircaseModel(std::vector<CurvePoint> points)
      : points_(std::move(points)) {}

  /// Appends corner points (e.g. one compressed buffer); times and
  /// counts must continue to increase strictly.
  void AppendPoints(const std::vector<CurvePoint>& pts);

  /// Appends every corner point of `suffix` with its count lifted by
  /// `count_offset` — the staircase concatenation used by
  /// segment-parallel construction, where the suffix model was built
  /// over a later time range with counts starting from zero. The
  /// suffix's first corner must lie strictly after this model's last
  /// corner in time.
  void AppendShifted(const StaircaseModel& suffix, Count count_offset);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<CurvePoint>& points() const { return points_; }

  /// F~(t).
  Count Evaluate(Timestamp t) const;

  /// b~(t) = F~(t) - 2 F~(t-tau) + F~(t-2tau).
  double EstimateBurstiness(Timestamp t, Timestamp tau) const;

  /// Times where the model's value changes (corner times). The
  /// burstiness estimate is piecewise-constant between breakpoints
  /// shifted by {0, tau, 2tau}.
  std::vector<Timestamp> Breakpoints() const;

  /// Bytes used by the corner-point storage.
  size_t SizeBytes() const { return points_.size() * sizeof(CurvePoint); }

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  std::vector<CurvePoint> points_;
};

}  // namespace bursthist

#endif  // BURSTHIST_PLA_STAIRCASE_MODEL_H_
