#include "pla/optimal_staircase.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace bursthist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Precomputed geometry of the input curve: x/y as doubles plus the
// prefix areas A[j] = sum_{i<j} (x[i+1]-x[i]) * y[i], so that the area
// lost by bridging corner a -> corner b with a single level y[a] is
//   cost(a,b) = (A[b] - A[a]) - y[a] * (x[b] - x[a])
// in O(1).
struct Prefix {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> area;

  explicit Prefix(const std::vector<CurvePoint>& pts) {
    const size_t n = pts.size();
    x.resize(n);
    y.resize(n);
    area.assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(pts[i].time);
      y[i] = static_cast<double>(pts[i].count);
    }
    for (size_t i = 1; i < n; ++i) {
      area[i] = area[i - 1] + (x[i] - x[i - 1]) * y[i - 1];
    }
  }

  double Cost(size_t a, size_t b) const {
    return (area[b] - area[a]) - y[a] * (x[b] - x[a]);
  }
};

// Trivial selections for degenerate inputs / budgets.
bool HandleTrivial(const std::vector<CurvePoint>& points, size_t budget,
                   StaircaseFit* fit) {
  const size_t n = points.size();
  if (n == 0) {
    *fit = StaircaseFit{};
    return true;
  }
  if (n <= 2 || budget >= n) {
    fit->selected.resize(n);
    for (size_t i = 0; i < n; ++i) fit->selected[i] = static_cast<uint32_t>(i);
    fit->error = 0.0;
    return true;
  }
  return false;
}

// Divide-and-conquer layer solve: cur[i] = min_{k in [klo(i), i-1]}
// prev[k] + cost(k, i), exploiting monotone argmin.
void SolveLayer(const Prefix& pf, const std::vector<double>& prev,
                std::vector<double>* cur, std::vector<int32_t>* parent,
                size_t ilo, size_t ihi, size_t klo, size_t khi) {
  if (ilo > ihi) return;
  const size_t mid = ilo + (ihi - ilo) / 2;
  double best = kInf;
  size_t best_k = klo;
  const size_t kmax = std::min(khi, mid - 1);
  for (size_t k = klo; k <= kmax; ++k) {
    if (prev[k] == kInf) continue;
    const double v = prev[k] + pf.Cost(k, mid);
    if (v < best) {
      best = v;
      best_k = k;
    }
  }
  (*cur)[mid] = best;
  (*parent)[mid] = best == kInf ? -1 : static_cast<int32_t>(best_k);
  if (mid > ilo) SolveLayer(pf, prev, cur, parent, ilo, mid - 1, klo, best_k);
  if (mid < ihi) SolveLayer(pf, prev, cur, parent, mid + 1, ihi, best_k, khi);
}

StaircaseFit Backtrack(const std::vector<std::vector<int32_t>>& parents,
                       size_t n, size_t layers, double error) {
  StaircaseFit fit;
  fit.error = error;
  fit.selected.reserve(layers);
  int32_t i = static_cast<int32_t>(n - 1);
  // parents[m] maps a point index to its predecessor in a selection of
  // size m+1 (m >= 1); walk layers from the last down to the base.
  for (size_t m = layers - 1; m >= 1; --m) {
    fit.selected.push_back(static_cast<uint32_t>(i));
    i = parents[m][static_cast<size_t>(i)];
    assert(i >= 0);
  }
  assert(i == 0);
  fit.selected.push_back(0);
  std::reverse(fit.selected.begin(), fit.selected.end());
  return fit;
}

}  // namespace

std::vector<CurvePoint> StaircaseFit::Materialize(
    const std::vector<CurvePoint>& points) const {
  std::vector<CurvePoint> out;
  out.reserve(selected.size());
  for (uint32_t idx : selected) out.push_back(points[idx]);
  return out;
}

double SelectionError(const std::vector<CurvePoint>& points,
                      const std::vector<uint32_t>& selected) {
  Prefix pf(points);
  double err = 0.0;
  for (size_t s = 0; s + 1 < selected.size(); ++s) {
    err += pf.Cost(selected[s], selected[s + 1]);
  }
  return err;
}

StaircaseFit OptimalStaircase(const std::vector<CurvePoint>& points,
                              size_t budget) {
  StaircaseFit fit;
  if (HandleTrivial(points, budget, &fit)) return fit;

  const size_t n = points.size();
  budget = std::max<size_t>(budget, 2);
  const Prefix pf(points);

  // dp[m][i]: min error over [x_0, x_i] selecting m+1 points among
  // [0..i], with 0 and i both selected. Layer 0 is the base (only
  // point 0). We roll the value layers and keep all parent layers for
  // the backtrack.
  std::vector<double> prev(n, kInf), cur(n, kInf);
  prev[0] = 0.0;
  std::vector<std::vector<int32_t>> parents(budget);
  const size_t layers = budget;  // selections of size `budget`
  for (size_t m = 1; m < layers; ++m) {
    std::fill(cur.begin(), cur.end(), kInf);
    parents[m].assign(n, -1);
    // i must be at least m (need m predecessors), k at least m-1.
    SolveLayer(pf, prev, &cur, &parents[m], m, n - 1, m - 1, n - 2);
    std::swap(prev, cur);
  }
  assert(prev[n - 1] != kInf);
  return Backtrack(parents, n, layers, prev[n - 1]);
}

StaircaseFit OptimalStaircaseNaive(const std::vector<CurvePoint>& points,
                                   size_t budget) {
  StaircaseFit fit;
  if (HandleTrivial(points, budget, &fit)) return fit;

  const size_t n = points.size();
  budget = std::max<size_t>(budget, 2);
  const Prefix pf(points);

  std::vector<double> prev(n, kInf), cur(n, kInf);
  prev[0] = 0.0;
  std::vector<std::vector<int32_t>> parents(budget);
  for (size_t m = 1; m < budget; ++m) {
    std::fill(cur.begin(), cur.end(), kInf);
    parents[m].assign(n, -1);
    for (size_t i = m; i <= n - 1; ++i) {
      double best = kInf;
      int32_t best_k = -1;
      for (size_t k = m - 1; k < i; ++k) {
        if (prev[k] == kInf) continue;
        const double v = prev[k] + pf.Cost(k, i);
        if (v < best) {
          best = v;
          best_k = static_cast<int32_t>(k);
        }
      }
      cur[i] = best;
      parents[m][i] = best_k;
    }
    std::swap(prev, cur);
  }
  assert(prev[n - 1] != kInf);
  return Backtrack(parents, n, budget, prev[n - 1]);
}

StaircaseFit OptimalStaircaseErrorCapped(
    const std::vector<CurvePoint>& points, double max_error) {
  StaircaseFit fit;
  if (HandleTrivial(points, /*budget=*/2, &fit) && fit.error <= max_error) {
    return fit;
  }
  const size_t n = points.size();
  const Prefix pf(points);

  std::vector<double> prev(n, kInf), cur(n, kInf);
  prev[0] = 0.0;
  std::vector<std::vector<int32_t>> parents;
  parents.emplace_back();  // layer 0 has no parents
  for (size_t m = 1; m < n; ++m) {
    std::fill(cur.begin(), cur.end(), kInf);
    parents.emplace_back(n, -1);
    SolveLayer(pf, prev, &cur, &parents[m], m, n - 1, m - 1, n - 2);
    std::swap(prev, cur);
    if (prev[n - 1] <= max_error) {
      return Backtrack(parents, n, m + 1, prev[n - 1]);
    }
  }
  // Full selection is exact (error 0) and always satisfies the cap.
  fit.selected.resize(n);
  for (size_t i = 0; i < n; ++i) fit.selected[i] = static_cast<uint32_t>(i);
  fit.error = 0.0;
  return fit;
}

}  // namespace bursthist
