// Online piecewise-linear approximation of a staircase curve with a
// per-point error band (Section III-B, Algorithm 2 of the paper).
//
// The builder consumes the *augmented* corner points of F(t) one at a
// time. Each point (t_j, F_j) constrains the current line to pass
// through the vertical range [F_j - gamma, F_j]; the set of feasible
// (slope, intercept) pairs is a convex polygon in dual space,
// maintained incrementally. When a new point empties the polygon, a
// segment is emitted (any feasible point of the previous polygon — we
// use the centroid) and a fresh window starts at that point.
//
// Guarantee: at every constrained time t,
//   F(t) - gamma <= F~(t) <= F(t),
// and with the augmentation of FrequencyCurve::AugmentedPoints() this
// extends to every discrete timestamp, giving |b~ - b| <= 4*gamma
// (Lemma 4).

#ifndef BURSTHIST_PLA_ONLINE_PLA_H_
#define BURSTHIST_PLA_ONLINE_PLA_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "geom/convex_polygon.h"
#include "pla/linear_model.h"
#include "stream/frequency_curve.h"
#include "stream/types.h"

namespace bursthist {

/// Streaming PLA builder. Feed strictly-increasing-time corner points
/// via AddPoint(); call Finish() to flush the open window.
class OnlinePlaBuilder {
 public:
  /// @param gamma   maximum allowed underestimate at any point (>= 0).
  /// @param max_polygon_vertices  optional hard cap on the feasible
  ///        polygon's complexity; on overflow the window is closed, as
  ///        the paper's space-constrained variant does. 0 = unlimited.
  /// @param target_bytes  optional soft space budget: whenever the
  ///        emitted model exceeds it, gamma doubles for subsequent
  ///        windows, throttling segment production (the guarantee
  ///        degrades gracefully to the final max_gamma()). 0 = off.
  explicit OnlinePlaBuilder(double gamma, size_t max_polygon_vertices = 0,
                            size_t target_bytes = 0);

  /// Adds the next constraint point (time must be strictly greater
  /// than the previous point's).
  void AddPoint(Timestamp t, Count count);

  /// Flushes the open window into a final segment.
  void Finish();

  /// The model built so far (complete only after Finish()).
  const LinearModel& model() const { return model_; }
  LinearModel TakeModel() { return std::move(model_); }

  /// Replaces the built model (deserialization of a frozen stream).
  /// Precondition: no window is open.
  void RestoreModel(LinearModel model) {
    assert(!window_open_);
    model_ = std::move(model);
  }

  /// Splices `suffix` (a model built over a later, disjoint time range
  /// with counts starting from zero) onto the built model, lifting its
  /// intercepts by `value_offset`. Precondition: no window is open —
  /// callers must Finish() first, which is exactly the boundary reset
  /// that keeps the per-point gamma band intact.
  void AbsorbModel(const LinearModel& suffix, double value_offset);

  /// Folds a concatenated builder's error band into max_gamma() so the
  /// 4*gamma guarantee reported after a segment-parallel merge covers
  /// every spliced segment.
  void NoteGamma(double gamma) {
    if (gamma > max_gamma_) max_gamma_ = gamma;
  }

  /// Widens the error band for subsequent constraint points to
  /// max(gamma(), gamma) — the deliberate (governor-driven) form of
  /// the target_bytes escalation. Safe mid-window: the feasible
  /// polygon is the intersection of per-point bands, so points already
  /// clipped keep their narrower band and every constrained point
  /// still satisfies F(t) - max_gamma() <= F~(t) <= F(t).
  void WidenBand(double gamma) {
    if (gamma > gamma_) gamma_ = gamma;
    if (gamma_ > max_gamma_) max_gamma_ = gamma_;
  }

  /// Resident bytes including vector capacity and the live feasible
  /// polygon (SizeBytes()-style accounting covers only emitted
  /// segments).
  size_t MemoryUsage() const {
    return sizeof(*this) +
           model_.segments().capacity() * sizeof(PlaSegment) +
           polygon_.vertices().capacity() * sizeof(Point2);
  }

  /// Number of segments emitted so far.
  size_t segment_count() const { return model_.size(); }

  /// The current (possibly budget-escalated) error band, and the
  /// largest band any emitted segment was built with — the value the
  /// 4*gamma guarantee holds for.
  double gamma() const { return gamma_; }
  double max_gamma() const { return max_gamma_; }

 private:
  struct PendingPoint {
    Timestamp t;
    Count count;
  };

  // Emits a segment for the current window using the last feasible
  // polygon (or the single-point fallback) and clears the window.
  void EmitWindow();

  // The two dual half-planes of a constraint point, in window-local
  // time (t - window_start_).
  HalfPlane UpperConstraint(Timestamp t, Count count) const;
  HalfPlane LowerConstraint(Timestamp t, Count count) const;

  double gamma_;
  double max_gamma_;
  size_t max_vertices_;
  size_t target_bytes_;
  LinearModel model_;

  // Current window state.
  bool window_open_ = false;
  Timestamp window_start_ = 0;
  PendingPoint first_;       // first constraint of the window
  PendingPoint last_;        // most recent accepted constraint
  size_t window_points_ = 0;
  ConvexPolygon polygon_;    // valid once window_points_ >= 2
};

/// Convenience: runs the builder over the augmented points of an exact
/// curve and returns the model.
LinearModel BuildPla(const FrequencyCurve& curve, double gamma,
                     size_t max_polygon_vertices = 0);

/// Ablation hook: same, but feeding the raw (non-augmented) corner
/// points. This is the construction WITHOUT the paper's extra
/// error-bounding points; it may overestimate F between corners.
LinearModel BuildPlaNoAugmentation(const FrequencyCurve& curve, double gamma,
                                   size_t max_polygon_vertices = 0);

}  // namespace bursthist

#endif  // BURSTHIST_PLA_ONLINE_PLA_H_
