#include "pla/online_pla.h"

#include <cassert>

namespace bursthist {

OnlinePlaBuilder::OnlinePlaBuilder(double gamma, size_t max_polygon_vertices,
                                   size_t target_bytes)
    : gamma_(gamma),
      max_gamma_(gamma),
      max_vertices_(max_polygon_vertices),
      target_bytes_(target_bytes) {
  assert(gamma_ >= 0.0);
}

HalfPlane OnlinePlaBuilder::UpperConstraint(Timestamp t, Count count) const {
  // a * (t - start) + b <= F  in (a, b) space.
  const double dt = static_cast<double>(t - window_start_);
  return HalfPlane{dt, 1.0, static_cast<double>(count)};
}

HalfPlane OnlinePlaBuilder::LowerConstraint(Timestamp t, Count count) const {
  // a * (t - start) + b >= F - gamma.
  const double dt = static_cast<double>(t - window_start_);
  return HalfPlane{-dt, -1.0, -(static_cast<double>(count) - gamma_)};
}

void OnlinePlaBuilder::AddPoint(Timestamp t, Count count) {
  assert(!window_open_ || t > last_.t);

  if (!window_open_) {
    window_open_ = true;
    window_start_ = t;
    first_ = last_ = PendingPoint{t, count};
    window_points_ = 1;
    return;
  }

  if (window_points_ == 1) {
    // Seed the feasible polygon from the two strips (the paper's
    // "Compute G_2" step): the first point pins b to
    // [F_0 - gamma, F_0] (its local time is 0), the second bounds the
    // slope; their intersection is a parallelogram, exact by
    // construction.
    const double dt = static_cast<double>(t - window_start_);
    const double f0 = static_cast<double>(first_.count);
    const double f1 = static_cast<double>(count);
    const double b_lo = f0 - gamma_;
    const double b_hi = f0;
    auto a_lo = [&](double b) { return (f1 - gamma_ - b) / dt; };
    auto a_hi = [&](double b) { return (f1 - b) / dt; };
    polygon_ = ConvexPolygon({{a_lo(b_lo), b_lo},
                              {a_hi(b_lo), b_lo},
                              {a_hi(b_hi), b_hi},
                              {a_lo(b_hi), b_hi}});
    last_ = PendingPoint{t, count};
    window_points_ = 2;
    return;
  }

  // Try to absorb the point: clip a copy against both constraints.
  ConvexPolygon candidate = polygon_;
  candidate.Clip(UpperConstraint(t, count));
  candidate.Clip(LowerConstraint(t, count));
  if (!candidate.empty()) {
    polygon_ = std::move(candidate);
    last_ = PendingPoint{t, count};
    ++window_points_;
    if (max_vertices_ > 0 && polygon_.size() > max_vertices_) {
      // Space-constrained variant: close the window (the current point
      // is already covered by the emitted segment).
      EmitWindow();
    }
    return;
  }

  // Infeasible: emit the window through the previous polygon, restart
  // a fresh window at the current point.
  EmitWindow();
  window_open_ = true;
  window_start_ = t;
  first_ = last_ = PendingPoint{t, count};
  window_points_ = 1;
}

void OnlinePlaBuilder::EmitWindow() {
  assert(window_open_);
  PlaSegment seg;
  seg.start = window_start_;
  seg.last = last_.t;
  if (window_points_ == 1) {
    // Lone point: a flat segment through the middle of its band (the
    // top of the band when gamma is 0).
    seg.a = 0.0;
    seg.b = static_cast<double>(first_.count) - gamma_ / 2.0;
  } else {
    const Point2 ab = polygon_.Centroid();
    seg.a = ab.x;
    seg.b = ab.y;
  }
  model_.AppendSegment(seg);
  window_open_ = false;
  window_points_ = 0;
  polygon_ = ConvexPolygon();

  // Soft space budget: coarsen the band for future windows once the
  // model outgrows the target. Doubling keeps the overshoot bounded
  // while degrading the guarantee geometrically, not linearly.
  if (target_bytes_ > 0 && model_.SizeBytes() > target_bytes_) {
    gamma_ = gamma_ == 0.0 ? 1.0 : gamma_ * 2.0;
    max_gamma_ = gamma_;
  }
}

void OnlinePlaBuilder::Finish() {
  if (window_open_) EmitWindow();
}

void OnlinePlaBuilder::AbsorbModel(const LinearModel& suffix,
                                   double value_offset) {
  assert(!window_open_);
  model_.AppendShifted(suffix, value_offset);
}

namespace {
LinearModel BuildFromPoints(const std::vector<CurvePoint>& pts, double gamma,
                            size_t max_polygon_vertices) {
  OnlinePlaBuilder builder(gamma, max_polygon_vertices);
  for (const auto& p : pts) builder.AddPoint(p.time, p.count);
  builder.Finish();
  return builder.TakeModel();
}
}  // namespace

LinearModel BuildPla(const FrequencyCurve& curve, double gamma,
                     size_t max_polygon_vertices) {
  return BuildFromPoints(curve.AugmentedPoints(), gamma,
                         max_polygon_vertices);
}

LinearModel BuildPlaNoAugmentation(const FrequencyCurve& curve, double gamma,
                                   size_t max_polygon_vertices) {
  return BuildFromPoints(curve.points(), gamma, max_polygon_vertices);
}

}  // namespace bursthist
