#include "pla/staircase_model.h"

#include <algorithm>
#include <cassert>

#include "util/varint.h"

namespace bursthist {

void StaircaseModel::AppendPoints(const std::vector<CurvePoint>& pts) {
#ifndef NDEBUG
  if (!points_.empty() && !pts.empty()) {
    assert(pts.front().time > points_.back().time);
    assert(pts.front().count > points_.back().count);
  }
#endif
  points_.insert(points_.end(), pts.begin(), pts.end());
}

void StaircaseModel::AppendShifted(const StaircaseModel& suffix,
                                   Count count_offset) {
  points_.reserve(points_.size() + suffix.points_.size());
  for (CurvePoint p : suffix.points_) {
    p.count += count_offset;
    assert(points_.empty() || (p.time > points_.back().time &&
                               p.count > points_.back().count));
    points_.push_back(p);
  }
}

Count StaircaseModel::Evaluate(Timestamp t) const {
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Timestamp v, const CurvePoint& p) { return v < p.time; });
  if (it == points_.begin()) return 0;
  return std::prev(it)->count;
}

double StaircaseModel::EstimateBurstiness(Timestamp t, Timestamp tau) const {
  const auto f0 = static_cast<double>(Evaluate(t));
  const auto f1 = static_cast<double>(Evaluate(t - tau));
  const auto f2 = static_cast<double>(Evaluate(t - 2 * tau));
  return f0 - 2.0 * f1 + f2;
}

std::vector<Timestamp> StaircaseModel::Breakpoints() const {
  std::vector<Timestamp> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.time);
  return out;
}

void StaircaseModel::Serialize(BinaryWriter* w) const {
  // Delta + varint coding: corner times and counts are strictly
  // increasing, so consecutive differences are small positive values.
  PutVarint(w, points_.size());
  Timestamp prev_t = 0;
  Count prev_c = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i == 0) {
      PutSignedVarint(w, points_[0].time);
    } else {
      PutVarint(w, static_cast<uint64_t>(points_[i].time - prev_t));
    }
    PutVarint(w, points_[i].count - prev_c);
    prev_t = points_[i].time;
    prev_c = points_[i].count;
  }
}

Status StaircaseModel::Deserialize(BinaryReader* r) {
  uint64_t n = 0;
  BURSTHIST_RETURN_IF_ERROR(GetVarint(r, &n));
  if (n > r->remaining()) {
    // Each point takes at least 2 bytes; cheap plausibility bound.
    return Status::Corruption("staircase point count exceeds payload");
  }
  points_.clear();
  points_.reserve(static_cast<size_t>(n));
  Timestamp t = 0;
  Count c = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (i == 0) {
      int64_t first = 0;
      BURSTHIST_RETURN_IF_ERROR(GetSignedVarint(r, &first));
      t = first;
    } else {
      uint64_t dt = 0;
      BURSTHIST_RETURN_IF_ERROR(GetVarint(r, &dt));
      if (dt == 0) return Status::Corruption("non-increasing corner time");
      t += static_cast<Timestamp>(dt);
    }
    uint64_t dc = 0;
    BURSTHIST_RETURN_IF_ERROR(GetVarint(r, &dc));
    if (dc == 0) return Status::Corruption("non-increasing corner count");
    c += dc;
    points_.push_back(CurvePoint{t, c});
  }
  return Status::OK();
}

}  // namespace bursthist
