// Uniform-subsampling staircase compressor — the strawman PBE-1 is
// measured against in bench/ablation_optimal_vs_uniform.
//
// Instead of the optimal dynamic program, keep every k-th corner point
// (boundaries forced). Same representation, same no-overestimate
// guarantee, none of the optimality: the gap between the two isolates
// the value of Algorithm 1's optimization.

#ifndef BURSTHIST_PLA_UNIFORM_STAIRCASE_H_
#define BURSTHIST_PLA_UNIFORM_STAIRCASE_H_

#include <vector>

#include "pla/optimal_staircase.h"
#include "stream/frequency_curve.h"

namespace bursthist {

/// Selects ~budget points at uniform index spacing (always includes
/// both boundaries; returns everything when budget >= n).
StaircaseFit UniformStaircase(const std::vector<CurvePoint>& points,
                              size_t budget);

}  // namespace bursthist

#endif  // BURSTHIST_PLA_UNIFORM_STAIRCASE_H_
