#include "geom/convex_polygon.h"

#include <cmath>

namespace bursthist {

namespace {
// Tolerance for classifying a vertex as on the clipping line. The dual
// coordinates in PBE-2 are O(counts) in magnitude, well within double
// precision at this epsilon.
constexpr double kEps = 1e-9;

Point2 Intersect(const Point2& p, const Point2& q, const HalfPlane& hp) {
  const double sp = hp.Slack(p);
  const double sq = hp.Slack(q);
  const double denom = sp - sq;
  // Callers only intersect edges with endpoints on opposite sides, so
  // denom is bounded away from zero relative to the slacks.
  const double t = denom == 0.0 ? 0.5 : sp / denom;
  return Point2{p.x + t * (q.x - p.x), p.y + t * (q.y - p.y)};
}
}  // namespace

ConvexPolygon ConvexPolygon::Box(double x0, double y0, double x1, double y1) {
  return ConvexPolygon(
      {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

void ConvexPolygon::Clip(const HalfPlane& hp) {
  if (vertices_.empty()) return;
  std::vector<Point2> out;
  out.reserve(vertices_.size() + 1);
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point2& cur = vertices_[i];
    const Point2& nxt = vertices_[(i + 1) % n];
    const double sc = hp.Slack(cur);
    const double sn = hp.Slack(nxt);
    if (sc >= -kEps) {
      out.push_back(cur);
      if (sn < -kEps && sc > kEps) out.push_back(Intersect(cur, nxt, hp));
    } else if (sn > kEps) {
      out.push_back(Intersect(cur, nxt, hp));
    }
  }
  vertices_ = std::move(out);
}

bool ConvexPolygon::IntersectsHalfPlane(const HalfPlane& hp) const {
  for (const auto& v : vertices_) {
    if (hp.Slack(v) >= -kEps) return true;
  }
  return false;
}

bool ConvexPolygon::Contains(const Point2& p, double eps) const {
  if (vertices_.empty()) return false;
  if (vertices_.size() == 1) {
    return std::abs(p.x - vertices_[0].x) <= eps &&
           std::abs(p.y - vertices_[0].y) <= eps;
  }
  // Check the point lies on the inner side of every edge; handle both
  // orientations by requiring a consistent sign.
  int sign = 0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point2& a = vertices_[i];
    const Point2& b = vertices_[(i + 1) % n];
    const double cross =
        (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if (cross > eps) {
      if (sign < 0) return false;
      sign = 1;
    } else if (cross < -eps) {
      if (sign > 0) return false;
      sign = -1;
    }
  }
  return true;
}

Point2 ConvexPolygon::Centroid() const {
  Point2 c;
  if (vertices_.empty()) return c;
  for (const auto& v : vertices_) {
    c.x += v.x;
    c.y += v.y;
  }
  c.x /= static_cast<double>(vertices_.size());
  c.y /= static_cast<double>(vertices_.size());
  return c;
}

}  // namespace bursthist
