// Convex feasible-region geometry for the PBE-2 online PLA
// (Section III-B, Figure 4 of the paper).
//
// Each incoming timestamped frequency range (t_j, [F_j - gamma, F_j])
// contributes two half-planes in the dual (a, b) space of candidate
// lines  b >= -t_j * a + (F_j - gamma)  and  b <= -t_j * a + F_j.
// The set of lines that cut every range so far is the intersection of
// those half-planes — a convex polygon we maintain explicitly and clip
// one half-plane at a time (Sutherland–Hodgman).

#ifndef BURSTHIST_GEOM_CONVEX_POLYGON_H_
#define BURSTHIST_GEOM_CONVEX_POLYGON_H_

#include <cstddef>
#include <vector>

namespace bursthist {

/// A point in the dual (a, b) plane.
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// The closed half-plane  nx*x + ny*y <= c.
struct HalfPlane {
  double nx = 0.0;
  double ny = 0.0;
  double c = 0.0;

  /// Signed slack c - (nx*x + ny*y); >= 0 means inside.
  double Slack(const Point2& p) const { return c - (nx * p.x + ny * p.y); }
};

/// A convex polygon stored as a vertex loop (either orientation).
/// Degenerate results (segments/points) are kept — they still describe
/// a non-empty feasible set.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;
  explicit ConvexPolygon(std::vector<Point2> vertices)
      : vertices_(std::move(vertices)) {}

  /// Axis-aligned box [x0,x1] x [y0,y1], the usual bounded seed region.
  static ConvexPolygon Box(double x0, double y0, double x1, double y1);

  bool empty() const { return vertices_.empty(); }
  size_t size() const { return vertices_.size(); }
  const std::vector<Point2>& vertices() const { return vertices_; }

  /// Clips the polygon against a half-plane in place. May produce an
  /// empty polygon (infeasible).
  void Clip(const HalfPlane& hp);

  /// True if clipping against `hp` would leave the polygon non-empty;
  /// does not modify the polygon.
  bool IntersectsHalfPlane(const HalfPlane& hp) const;

  /// True if the point is inside (within eps of) every edge constraint
  /// implied by the vertex loop. Used in tests only.
  bool Contains(const Point2& p, double eps = 1e-7) const;

  /// Arithmetic mean of the vertices — a robust interior(ish) pick for
  /// "choose any (a, b) from the region" (Algorithm 2).
  Point2 Centroid() const;

 private:
  std::vector<Point2> vertices_;
};

}  // namespace bursthist

#endif  // BURSTHIST_GEOM_CONVEX_POLYGON_H_
