// SpaceSaving heavy-hitters summary (Metwally et al.).
//
// Two places in the paper call for it:
//   * the introduction: "to capture only those important bursty
//     events, one can impose a frequency threshold when detecting
//     bursty events" — the engine's frequency-filtered BURSTY EVENT
//     query uses the tracked counts as that filter's candidate set;
//   * Section V's "minor optimization is to keep the set of event ids
//     that appeared in S" — SpaceSaving is the bounded-memory version
//     of that set for high-cardinality streams.
//
// Classic guarantees: with capacity m over a stream of size N, every
// item with true count > N/m is tracked, and the reported count
// overestimates the true count by at most the recorded `error`.

#ifndef BURSTHIST_SKETCH_SPACE_SAVING_H_
#define BURSTHIST_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Bounded-size heavy-hitters counter set.
class SpaceSaving {
 public:
  /// One tracked item. `count` upper-bounds the true count;
  /// `count - error` lower-bounds it.
  struct Entry {
    uint64_t key = 0;
    uint64_t count = 0;
    uint64_t error = 0;
  };

  /// @param capacity  maximum tracked items m (>= 1).
  explicit SpaceSaving(size_t capacity);

  /// Adds `count` occurrences of key, evicting the current minimum
  /// when the table is full and the key is untracked.
  void Add(uint64_t key, uint64_t count = 1);

  /// Upper-bound estimate of key's count: its tracked count, or the
  /// minimum tracked count if untracked (every untracked item's true
  /// count is at most that minimum).
  uint64_t EstimateCount(uint64_t key) const;

  /// True if the key is currently tracked with count - error >=
  /// threshold (i.e. its true count provably reaches the threshold).
  bool GuaranteedAtLeast(uint64_t key, uint64_t threshold) const;

  /// The tracked items sorted by descending count, truncated to k
  /// (k = 0 returns all).
  std::vector<Entry> TopK(size_t k = 0) const;

  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }
  uint64_t TotalCount() const { return total_; }

  size_t SizeBytes() const {
    return entries_.size() * (sizeof(Entry) + sizeof(uint64_t) * 2);
  }

  /// Resident bytes including the entry vector's reserved capacity and
  /// an estimate of the hash index's buckets + nodes (unordered_map
  /// internals are not directly measurable; this counts one pointer
  /// per bucket and key/value + two pointers per node, which tracks
  /// libstdc++ within a few percent).
  size_t MemoryUsage() const {
    return sizeof(*this) + entries_.capacity() * sizeof(Entry) +
           index_.bucket_count() * sizeof(void*) +
           index_.size() * (sizeof(uint64_t) + sizeof(size_t) +
                            2 * sizeof(void*));
  }

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  // Index of the minimum-count entry (linear scan; capacity is small
  // by design — hundreds to a few thousand).
  size_t MinIndex() const;

  size_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<uint64_t, size_t> index_;  // key -> entries_ slot
  uint64_t total_ = 0;
};

}  // namespace bursthist

#endif  // BURSTHIST_SKETCH_SPACE_SAVING_H_
