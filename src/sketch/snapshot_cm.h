// Snapshot-based persistent Count-Min — the "PCM" style baseline the
// paper's PBE designs improve upon (Section III mentions PBE-2 is
// "based on an improvement of Persistent Count-Min sketch").
//
// A plain CM sketch summarizes the whole stream so far and cannot
// answer F_e(t) for historical t. The simplest persistent fix is to
// checkpoint every counter on a fixed time grid: F_e(t) is estimated
// from the latest snapshot at or before t. Space grows linearly with
// the number of snapshots and the time granularity is capped at the
// snapshot interval — exactly the trade-offs CM-PBE removes by making
// each cell a curve instead of a counter. Kept here as an honest
// comparator for bench/tab_pcm_comparison.

#ifndef BURSTHIST_SKETCH_SNAPSHOT_CM_H_
#define BURSTHIST_SKETCH_SNAPSHOT_CM_H_

#include <cstddef>
#include <vector>

#include "hash/hash.h"
#include "stream/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Sizing for SnapshotCmSketch.
struct SnapshotCmOptions {
  size_t depth = 2;
  size_t width = 55;
  uint64_t seed = 0x5ca95ULL;
  /// A full counter checkpoint is taken every `snapshot_interval`
  /// time units.
  Timestamp snapshot_interval = 3600;
};

/// Count-Min sketch with periodic full-state checkpoints, answering
/// approximate F_e(t) for any historical t (rounded down to the last
/// checkpoint before t; the live counters serve t >= the last
/// checkpoint).
class SnapshotCmSketch {
 public:
  explicit SnapshotCmSketch(const SnapshotCmOptions& options);

  /// Adds an occurrence of event e at time t (non-decreasing t).
  void Append(EventId e, Timestamp t, Count count = 1);

  /// Seals the final snapshot. Call before issuing queries.
  void Finalize();

  /// Estimated cumulative frequency of e at time t: min over rows of
  /// the checkpointed counter (the classic CM combination).
  double EstimateCumulative(EventId e, Timestamp t) const;

  /// Burstiness through Equation 2 on the snapshot estimates. Note
  /// the effective resolution is the snapshot interval: any tau below
  /// it aliases to zero.
  double EstimateBurstiness(EventId e, Timestamp t, Timestamp tau) const;

  size_t snapshot_count() const { return snapshot_times_.size(); }

  /// Bytes of retained state (all checkpoints + live counters).
  size_t SizeBytes() const;

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  // Checkpoints the live counters at `boundary`.
  void TakeSnapshot(Timestamp boundary);

  SnapshotCmOptions options_;
  HashFamily hashes_;
  std::vector<uint64_t> live_;               // depth x width, row-major
  std::vector<std::vector<uint64_t>> snaps_;  // one counter grid per time
  std::vector<Timestamp> snapshot_times_;
  Timestamp last_time_ = 0;
  bool started_ = false;
  bool finalized_ = false;
};

}  // namespace bursthist

#endif  // BURSTHIST_SKETCH_SNAPSHOT_CM_H_
