#include "sketch/count_min.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bursthist {

CountMinOptions CountMinOptions::FromGuarantee(double epsilon, double delta,
                                               uint64_t seed) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  assert(delta > 0.0 && delta < 1.0);
  CountMinOptions o;
  o.depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  o.depth = std::max<size_t>(o.depth, 1);
  o.width = static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  o.seed = seed;
  return o;
}

CountMinSketch::CountMinSketch(const CountMinOptions& options)
    : options_(options),
      hashes_(options.depth, options.width, options.seed),
      cells_(options.depth * options.width, 0) {}

size_t CountMinSketch::CellIndex(size_t row, uint64_t key) const {
  return row * options_.width + static_cast<size_t>(hashes_.Hash(row, key));
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  for (size_t r = 0; r < options_.depth; ++r) {
    cells_[CellIndex(r, key)] += count;
  }
  total_ += count;
}

void CountMinSketch::AddBatch(const uint64_t* keys, const uint64_t* counts,
                              size_t n, std::vector<uint32_t>* slot_scratch) {
  if (n == 0) return;
  std::vector<uint32_t>& slots = *slot_scratch;
  if (slots.size() < n) slots.resize(n);
  for (size_t r = 0; r < options_.depth; ++r) {
    hashes_.HashRowKeys(r, keys, n, slots.data());
    uint64_t* row = cells_.data() + r * options_.width;
    for (size_t i = 0; i < n; ++i) {
      row[slots[i]] += counts ? counts[i] : 1;
    }
  }
  if (counts) {
    for (size_t i = 0; i < n; ++i) total_ += counts[i];
  } else {
    total_ += n;
  }
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = ~0ULL;
  for (size_t r = 0; r < options_.depth; ++r) {
    best = std::min(best, cells_[CellIndex(r, key)]);
  }
  return best;
}

void CountMinSketch::Serialize(BinaryWriter* w) const {
  w->Put<uint64_t>(options_.depth);
  w->Put<uint64_t>(options_.width);
  w->Put<uint64_t>(options_.seed);
  w->Put<uint64_t>(total_);
  w->PutVector(cells_);
}

Status CountMinSketch::Deserialize(BinaryReader* r) {
  uint64_t depth = 0, width = 0, seed = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&depth));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&width));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&seed));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&total_));
  BURSTHIST_RETURN_IF_ERROR(r->GetVector(&cells_));
  // Validate without overflow: a flipped high bit in depth could wrap
  // depth * width back to the stored cell count.
  if (depth == 0 || width == 0 || depth > (1ULL << 20) ||
      width > (1ULL << 40) || cells_.size() != depth * width) {
    return Status::Corruption("count-min cell payload size mismatch");
  }
  options_.depth = static_cast<size_t>(depth);
  options_.width = static_cast<size_t>(width);
  options_.seed = seed;
  hashes_ = HashFamily(options_.depth, options_.width, options_.seed);
  return Status::OK();
}

}  // namespace bursthist
