#include "sketch/space_saving.h"

#include <algorithm>
#include <cassert>

namespace bursthist {

namespace {
constexpr uint32_t kMagic = 0x53505356;  // "SPSV"
constexpr uint32_t kVersion = 1;
}  // namespace

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  assert(capacity_ >= 1);
  entries_.reserve(capacity_);
}

size_t SpaceSaving::MinIndex() const {
  size_t best = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[best].count) best = i;
  }
  return best;
}

void SpaceSaving::Add(uint64_t key, uint64_t count) {
  total_ += count;
  auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].count += count;
    return;
  }
  if (entries_.size() < capacity_) {
    index_[key] = entries_.size();
    entries_.push_back(Entry{key, count, 0});
    return;
  }
  // Evict the minimum: the newcomer inherits its count as error.
  const size_t slot = MinIndex();
  Entry& e = entries_[slot];
  index_.erase(e.key);
  index_[key] = slot;
  e.error = e.count;
  e.count += count;
  e.key = key;
}

uint64_t SpaceSaving::EstimateCount(uint64_t key) const {
  auto it = index_.find(key);
  if (it != index_.end()) return entries_[it->second].count;
  if (entries_.size() < capacity_) return 0;  // nothing was ever evicted
  return entries_[MinIndex()].count;
}

bool SpaceSaving::GuaranteedAtLeast(uint64_t key, uint64_t threshold) const {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  const Entry& e = entries_[it->second];
  return e.count - e.error >= threshold;
}

std::vector<SpaceSaving::Entry> SpaceSaving::TopK(size_t k) const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  if (k > 0 && out.size() > k) out.resize(k);
  return out;
}

void SpaceSaving::Serialize(BinaryWriter* w) const {
  w->Put(kMagic);
  w->Put(kVersion);
  w->Put<uint64_t>(capacity_);
  w->Put<uint64_t>(total_);
  w->Put<uint64_t>(entries_.size());
  for (const auto& e : entries_) {
    w->Put(e.key);
    w->Put(e.count);
    w->Put(e.error);
  }
}

Status SpaceSaving::Deserialize(BinaryReader* r) {
  uint32_t magic = 0, version = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&version));
  if (magic != kMagic) return Status::Corruption("bad space-saving magic");
  if (version != kVersion) {
    return Status::Corruption("bad space-saving version");
  }
  uint64_t capacity = 0, total = 0, n = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&capacity));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&total));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&n));
  if (capacity == 0 || n > capacity || capacity > (1ULL << 32)) {
    return Status::Corruption("implausible space-saving shape");
  }
  // Each serialized entry is 20 bytes (u32 key + u64 count + u64
  // error); an entry count that cannot fit in the remaining payload is
  // corrupt, and rejecting it here keeps the reserve below bounded.
  if (n > r->remaining() / 20) {
    return Status::Corruption("space-saving entry count exceeds payload");
  }
  capacity_ = static_cast<size_t>(capacity);
  total_ = total;
  entries_.clear();
  index_.clear();
  // Reserve only for the entries actually present: `capacity` is a
  // config value up to 2^32, and a corrupt blob must not be able to
  // force a ~100 GB up-front allocation before the entry loop's
  // bounds checks run. Later Add() calls grow on demand.
  entries_.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    BURSTHIST_RETURN_IF_ERROR(r->Get(&e.key));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&e.count));
    BURSTHIST_RETURN_IF_ERROR(r->Get(&e.error));
    if (e.error > e.count || index_.count(e.key) != 0) {
      return Status::Corruption("inconsistent space-saving entry");
    }
    index_[e.key] = entries_.size();
    entries_.push_back(e);
  }
  return Status::OK();
}

}  // namespace bursthist
