#include "sketch/snapshot_cm.h"

#include <algorithm>
#include <cassert>

namespace bursthist {

namespace {
constexpr uint32_t kMagic = 0x50434d53;  // "PCMS"
constexpr uint32_t kVersion = 1;
}  // namespace

SnapshotCmSketch::SnapshotCmSketch(const SnapshotCmOptions& options)
    : options_(options),
      hashes_(options.depth, options.width, options.seed),
      live_(options.depth * options.width, 0) {
  assert(options_.depth >= 1 && options_.width >= 1);
  assert(options_.snapshot_interval >= 1);
}

void SnapshotCmSketch::TakeSnapshot(Timestamp boundary) {
  // Skip storing identical consecutive checkpoints (dead periods):
  // the previous snapshot remains valid for every t up to the next
  // change.
  if (!snaps_.empty() && snaps_.back() == live_) return;
  snaps_.push_back(live_);
  snapshot_times_.push_back(boundary);
}

void SnapshotCmSketch::Append(EventId e, Timestamp t, Count count) {
  assert(!finalized_ && "Append after Finalize");
  assert(!started_ || t >= last_time_);
  if (!started_) {
    started_ = true;
    // First boundary strictly after the first arrival's interval.
    last_time_ = t;
  }
  // Checkpoint every crossed boundary before absorbing this arrival.
  const Timestamp prev_slot = last_time_ / options_.snapshot_interval;
  const Timestamp cur_slot = t / options_.snapshot_interval;
  for (Timestamp s = prev_slot; s < cur_slot; ++s) {
    TakeSnapshot((s + 1) * options_.snapshot_interval - 1);
  }
  for (size_t r = 0; r < options_.depth; ++r) {
    live_[r * options_.width + hashes_.Hash(r, e)] += count;
  }
  last_time_ = t;
}

void SnapshotCmSketch::Finalize() {
  if (finalized_) return;
  if (started_) TakeSnapshot(last_time_);
  finalized_ = true;
}

double SnapshotCmSketch::EstimateCumulative(EventId e, Timestamp t) const {
  assert(finalized_ && "query before Finalize");
  // Latest checkpoint at or before t.
  auto it = std::upper_bound(snapshot_times_.begin(), snapshot_times_.end(),
                             t);
  if (it == snapshot_times_.begin()) return 0.0;
  const auto& grid = snaps_[static_cast<size_t>(
      it - snapshot_times_.begin() - 1)];
  uint64_t best = ~0ULL;
  for (size_t r = 0; r < options_.depth; ++r) {
    best = std::min(best, grid[r * options_.width + hashes_.Hash(r, e)]);
  }
  return static_cast<double>(best);
}

double SnapshotCmSketch::EstimateBurstiness(EventId e, Timestamp t,
                                            Timestamp tau) const {
  return EstimateCumulative(e, t) - 2.0 * EstimateCumulative(e, t - tau) +
         EstimateCumulative(e, t - 2 * tau);
}

size_t SnapshotCmSketch::SizeBytes() const {
  return (snaps_.size() + 1) * live_.size() * sizeof(uint64_t) +
         snapshot_times_.size() * sizeof(Timestamp);
}

void SnapshotCmSketch::Serialize(BinaryWriter* w) const {
  w->Put(kMagic);
  w->Put(kVersion);
  w->Put<uint64_t>(options_.depth);
  w->Put<uint64_t>(options_.width);
  w->Put<uint64_t>(options_.seed);
  w->Put<int64_t>(options_.snapshot_interval);
  w->Put<int64_t>(last_time_);
  w->Put<uint8_t>(started_ ? 1 : 0);
  w->Put<uint8_t>(finalized_ ? 1 : 0);
  w->PutVector(live_);
  w->PutVector(snapshot_times_);
  w->Put<uint64_t>(snaps_.size());
  for (const auto& s : snaps_) w->PutVector(s);
}

Status SnapshotCmSketch::Deserialize(BinaryReader* r) {
  uint32_t magic = 0, version = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&version));
  if (magic != kMagic) return Status::Corruption("bad snapshot-CM magic");
  if (version != kVersion) return Status::Corruption("bad snapshot-CM version");
  uint64_t depth = 0, width = 0, seed = 0, snap_count = 0;
  uint8_t started = 0, finalized = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&depth));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&width));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&seed));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&options_.snapshot_interval));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&last_time_));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&started));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&finalized));
  BURSTHIST_RETURN_IF_ERROR(r->GetVector(&live_));
  BURSTHIST_RETURN_IF_ERROR(r->GetVector(&snapshot_times_));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&snap_count));
  if (depth == 0 || width == 0 || depth > (1ULL << 20) ||
      width > (1ULL << 40) || live_.size() != depth * width) {
    return Status::Corruption("snapshot-CM live grid size mismatch");
  }
  if (snap_count != snapshot_times_.size()) {
    return Status::Corruption("snapshot-CM checkpoint count mismatch");
  }
  snaps_.assign(static_cast<size_t>(snap_count), {});
  for (auto& s : snaps_) {
    BURSTHIST_RETURN_IF_ERROR(r->GetVector(&s));
    if (s.size() != live_.size()) {
      return Status::Corruption("snapshot-CM checkpoint size mismatch");
    }
  }
  options_.depth = static_cast<size_t>(depth);
  options_.width = static_cast<size_t>(width);
  options_.seed = seed;
  hashes_ = HashFamily(options_.depth, options_.width, options_.seed);
  started_ = started != 0;
  finalized_ = finalized != 0;
  return Status::OK();
}

}  // namespace bursthist
