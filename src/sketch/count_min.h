// Classic Count-Min sketch (Cormode & Muthukrishnan), Section II-C.
//
// Included both as the reference point for the CM-PBE grid logic and
// as a standalone frequency summary: it answers "how often has x
// appeared so far" but — unlike CM-PBE — cannot answer anything about
// an arbitrary historical time range, which is exactly the gap the
// paper closes.

#ifndef BURSTHIST_SKETCH_COUNT_MIN_H_
#define BURSTHIST_SKETCH_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hash/hash.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Sizing/seeding options for CountMinSketch.
struct CountMinOptions {
  /// Number of rows d = ceil(ln(1/delta)).
  size_t depth = 4;
  /// Counters per row w = ceil(e / epsilon).
  size_t width = 272;
  /// Hash-family seed (deterministic across runs).
  uint64_t seed = 0x5eedULL;

  /// Classic sizing from the (epsilon, delta) guarantee
  /// Pr[f~ <= f + eps*N] >= 1 - delta.
  static CountMinOptions FromGuarantee(double epsilon, double delta,
                                       uint64_t seed = 0x5eedULL);
};

/// Count-Min sketch with conservative-update as an option.
class CountMinSketch {
 public:
  explicit CountMinSketch(const CountMinOptions& options);

  /// Adds `count` occurrences of key.
  void Add(uint64_t key, uint64_t count = 1);

  /// Batch form of Add over parallel arrays (`counts == nullptr`
  /// means all-ones). Value-identical to per-key Add (counter adds
  /// commute); the per-row slot computation runs as one tight
  /// branch-free loop (PairwiseHash::HashKeys) before the scattered
  /// counter updates, structure-of-arrays style. `slot_scratch` is
  /// caller-owned for allocation reuse across batches.
  void AddBatch(const uint64_t* keys, const uint64_t* counts, size_t n,
                std::vector<uint32_t>* slot_scratch);

  /// Point estimate: min over rows; never underestimates the true
  /// count.
  uint64_t Estimate(uint64_t key) const;

  /// Total stream size N seen so far.
  uint64_t TotalCount() const { return total_; }

  size_t depth() const { return options_.depth; }
  size_t width() const { return options_.width; }
  size_t SizeBytes() const { return cells_.size() * sizeof(uint64_t); }

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  size_t CellIndex(size_t row, uint64_t key) const;

  CountMinOptions options_;
  HashFamily hashes_;
  std::vector<uint64_t> cells_;  // row-major depth x width
  uint64_t total_ = 0;
};

}  // namespace bursthist

#endif  // BURSTHIST_SKETCH_COUNT_MIN_H_
