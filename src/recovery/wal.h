// Write-ahead log with length-framed, CRC32C-checksummed records and
// segment rotation.
//
// On-disk layout (all integers little-endian):
//
//   wal-<seq>.log :=
//     u32 magic "BWAL" | u32 version = 1 | u64 seq       (16-byte header)
//     record*
//
//   record :=
//     u32 payload_len | u32 masked_crc | u8 type | payload[payload_len]
//
// The CRC covers the type byte and the payload, and is stored masked
// (util/crc32c.h) because WAL bytes can themselves end up inside
// checksummed snapshot-covered state.
//
// Reading distinguishes the two corruption classes recovery treats
// differently:
//
//  * A record that runs past the end of the LAST segment, or whose
//    checksum fails on the frame that touches the last byte of the
//    last segment, is a torn/truncated tail — the expected remnant of
//    a crash mid-write. Replay stops cleanly at the last valid prefix
//    (`tail_torn = true`).
//  * Anything else — a checksum mismatch with more log after it, a
//    short or garbled non-final segment, a bad header — is genuine
//    corruption and fails with Status::Corruption, letting recovery
//    fall back to an older snapshot generation.

#ifndef BURSTHIST_RECOVERY_WAL_H_
#define BURSTHIST_RECOVERY_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/status.h"

namespace bursthist {

/// A durable position in the log: byte `offset` within segment `seq`.
struct WalPosition {
  uint64_t seq = 0;
  uint64_t offset = 0;

  bool operator==(const WalPosition& o) const {
    return seq == o.seq && offset == o.offset;
  }
  bool operator!=(const WalPosition& o) const { return !(*this == o); }
  /// Log order: segment sequence first, byte offset within it second.
  bool operator<(const WalPosition& o) const {
    return seq != o.seq ? seq < o.seq : offset < o.offset;
  }
};

/// Record types multiplexed through the log.
enum class WalRecordType : uint8_t {
  /// One engine append: u32 event | i64 time | u64 count (20 bytes).
  kEvent = 1,
  /// One append received over replication, stamped with the LEADER WAL
  /// position just past the shipped record:
  ///   u64 source_seq | u64 source_offset | u32 event | i64 time |
  ///   u64 count (36 bytes).
  /// The stamp travels in the same CRC frame as the event, so a
  /// follower's applied-through position can never diverge from its
  /// applied records across a crash — replay recovers both or
  /// neither.
  kReplicated = 2,
};

/// Size of a segment header in bytes.
constexpr uint64_t kWalHeaderSize = 16;

/// Suffix the integrity scrubber appends (by rename) to a corrupt WAL
/// segment or snapshot it quarantines (see recovery/scrub.h). Replay
/// treats a quarantined segment as the end of usable history: it
/// stops at the last contiguous good prefix and NEVER skips over the
/// hole into later segments.
inline constexpr char kQuarantineSuffix[] = ".quarantined";

/// Builds "<dir>/wal-<seq 8 digits>.log".
std::string WalSegmentPath(const std::string& dir, uint64_t seq);

/// Parses a segment sequence number out of a file name; returns false
/// for non-WAL names.
bool ParseWalSegmentName(const std::string& name, uint64_t* seq);

/// Sorted (ascending) sequence numbers of the WAL segments in `dir`.
Result<std::vector<uint64_t>> ListWalSegments(Env* env,
                                              const std::string& dir);

/// Appends checksummed records, rotating to a fresh segment when the
/// current one exceeds `segment_bytes`.
class WalWriter {
 public:
  struct Options {
    /// Rotation threshold; a segment always accepts at least one
    /// record regardless of size.
    uint64_t segment_bytes = 4ull << 20;
    /// fsync after every record (durability against power loss at the
    /// cost of one fsync per append). Off: records are written
    /// immediately (no user-space buffering) but fsynced only on
    /// Sync()/rotation.
    bool sync_every_record = false;
    /// Retries for a failed record APPEND (transient IO errors:
    /// ENOSPC that clears, a flaky device). Each retry abandons the
    /// possibly-torn segment — close, truncate back to the last
    /// durable record boundary, open a fresh segment — and re-appends
    /// there; an in-place retry could interleave the torn prefix with
    /// the retried bytes. 0 = fail fast (the legacy behavior).
    ///
    /// fsync failures are NEVER retried (see Sync()): after a failed
    /// fsync the kernel may have discarded the dirty pages, so a later
    /// fsync success proves nothing about the earlier bytes. The
    /// writer poisons itself read-only instead.
    uint32_t append_retries = 0;
    /// Called before each append retry with the 1-based attempt
    /// number; inject a sleep/backoff here. May be empty.
    std::function<void(uint32_t attempt)> retry_backoff;
  };

  /// Opens a brand-new segment `start_seq` in `dir` (which must
  /// exist). Never appends to a pre-existing segment: after a crash
  /// the tail segment may be torn, so the owner starts the next
  /// sequence number instead.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& dir,
                                                 uint64_t start_seq,
                                                 const Options& options);

  /// Appends one record (rotating first if the segment is full).
  /// Transient append failures retry per Options::append_retries; a
  /// poisoned writer (failed fsync) returns Unavailable.
  Status AddRecord(WalRecordType type, const std::vector<uint8_t>& payload);

  /// Appends `n` fixed-size same-type records as consecutive frames in
  /// ONE file write with at most one fsync for the whole batch (vs one
  /// per record under sync_every_record). `payloads` holds the n
  /// payloads of `payload_len` bytes each, laid out back to back. The
  /// on-disk frames are identical to n AddRecord calls, except a batch
  /// never splits across a rotation: the writer rotates up front when
  /// the batch would overflow the current non-empty segment, then the
  /// batch lands whole — replay cannot tell the difference.
  /// All-or-nothing: the retry loop re-appends the entire batch on a
  /// clean segment, and on failure position() covers none of the
  /// frames.
  Status AddRecordBatch(WalRecordType type, const uint8_t* payloads,
                        size_t payload_len, size_t n);

  /// fsyncs the current segment. A failure permanently poisons the
  /// writer (read-only degraded mode): the bytes' durability is
  /// unknowable, so pretending a later fsync fixed it would be a lie.
  Status Sync();

  /// Closes the current segment (fsync) and opens segment seq+1. The
  /// new position is the fresh segment's header end — a snapshot taken
  /// at this position covers every record ever written before it.
  Status Rotate();

  /// End position of the last durable record.
  const WalPosition& position() const { return position_; }

  /// True once an fsync failed; every subsequent AddRecord/Sync/Rotate
  /// returns Unavailable. The owner fails over to read-only mode.
  bool poisoned() const { return poisoned_; }

 private:
  WalWriter(Env* env, std::string dir, Options options)
      : env_(env), dir_(std::move(dir)), options_(options) {}

  Status OpenSegment(uint64_t seq);

  // Abandons the current (possibly torn) segment: close it, truncate
  // the file back to position_.offset — the end of the last durable
  // record, leaving a clean non-final segment for replay — and open a
  // fresh segment at seq + 1.
  Status ReopenCleanSegment();

  Env* env_;
  std::string dir_;
  Options options_;
  std::unique_ptr<WritableFile> file_;
  WalPosition position_;
  bool poisoned_ = false;
};

/// Outcome of a successful replay.
struct WalReplayResult {
  /// End of the last applied record.
  WalPosition end;
  /// True when replay stopped at a torn/truncated tail (some bytes
  /// after `end` were discarded as a crash remnant).
  bool tail_torn = false;
  /// True when replay stopped because the next segment in sequence
  /// was quarantined by the scrubber: `end` is the last contiguous
  /// good prefix, and records in segments past the hole were NOT
  /// replayed.
  bool stopped_at_quarantine = false;
  /// Records delivered to the sink.
  uint64_t records = 0;
};

/// Outcome of a single-segment integrity check.
struct WalSegmentCheck {
  /// Intact records in the segment.
  uint64_t records = 0;
  /// Bytes after the last intact record were a torn tail (only
  /// possible when the check allowed one).
  bool tail_torn = false;
};

/// Re-validates one WAL segment end to end — header fields and every
/// frame checksum — without delivering records anywhere. With
/// `allow_torn_tail`, a truncated or garbled suffix after the last
/// intact record is reported via `tail_torn` instead of failing; that
/// is only legal for the globally-newest segment, where such a suffix
/// is the expected crash remnant. Used by the integrity scrubber
/// (recovery/scrub.h).
Result<WalSegmentCheck> CheckWalSegment(Env* env, const std::string& dir,
                                        uint64_t seq, bool allow_torn_tail);

/// Replays every intact record at or after `from`, in order, into
/// `sink`. `from.seq` segments that no longer exist (already pruned
/// and covered by a snapshot) are fine as long as no later segment
/// precedes `from`. A non-OK sink status aborts and is returned.
/// `end` is the position just past the record being delivered — the
/// resume token replication ships alongside each record.
Result<WalReplayResult> ReplayWal(
    Env* env, const std::string& dir, const WalPosition& from,
    const std::function<Status(WalRecordType, const uint8_t* payload,
                               size_t len, const WalPosition& end)>& sink);

}  // namespace bursthist

#endif  // BURSTHIST_RECOVERY_WAL_H_
