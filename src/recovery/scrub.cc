#include "recovery/scrub.h"

#include <algorithm>
#include <cstring>

#include "fault/crashpoint.h"
#include "obs/metrics.h"
#include "recovery/snapshot.h"
#include "recovery/wal.h"

namespace bursthist {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Result<ScrubReport> ScrubDurableDir(Env* env, const std::string& dir,
                                    const ScrubOptions& opts) {
  BURSTHIST_COUNTER(m_runs, obs::kScrubRunsTotal);
  BURSTHIST_COUNTER(m_records, obs::kScrubRecordsCheckedTotal);
  BURSTHIST_COUNTER(m_corrupt, obs::kScrubCorruptFilesTotal);
  BURSTHIST_GAUGE(m_quarantined, obs::kScrubQuarantinedFiles);

  ScrubReport report;

  auto names_or = env->ListDir(dir);
  if (!names_or.ok()) return names_or.status();
  for (const std::string& name : names_or.value()) {
    if (EndsWith(name, kQuarantineSuffix)) ++report.quarantined_present;
  }

  // Records a corrupt file and (by default) renames it aside. Only a
  // failing RENAME propagates as an error — detection itself never
  // aborts the pass.
  auto condemn = [&](const std::string& name,
                     const std::string& detail) -> Status {
    ScrubIssue issue{name, detail, false};
    ++report.corrupt_files;
    m_corrupt.Inc();
    if (opts.quarantine) {
      BURSTHIST_CRASHPOINT("scrub.pre_quarantine");
      const std::string from = dir + "/" + name;
      Status s = env->RenameFile(from, from + kQuarantineSuffix);
      if (s.ok()) s = env->SyncDir(dir);
      if (!s.ok()) {
        report.issues.push_back(std::move(issue));
        return Status::IOError("quarantine of " + name +
                               " failed: " + s.message());
      }
      issue.quarantined = true;
      ++report.quarantined_now;
      ++report.quarantined_present;
    }
    report.issues.push_back(std::move(issue));
    return Status::OK();
  };

  auto seqs_or = ListWalSegments(env, dir);
  if (!seqs_or.ok()) return seqs_or.status();
  const std::vector<uint64_t>& seqs = seqs_or.value();
  for (uint64_t seq : seqs) {
    if (opts.skip_wal_seq != 0 && seq == opts.skip_wal_seq) continue;
    // Only the globally-newest segment may legitimately end torn (the
    // ordinary crash remnant); the same damage anywhere else means a
    // non-final segment lost bytes, which replay would refuse.
    const bool allow_torn = seq == seqs.back();
    auto check = CheckWalSegment(env, dir, seq, allow_torn);
    ++report.wal_segments_checked;
    if (check.ok()) {
      report.wal_records_checked += check.value().records;
      m_records.Inc(check.value().records);
      if (check.value().tail_torn) report.tail_torn = true;
      continue;
    }
    if (check.status().code() != StatusCode::kCorruption) {
      return check.status();  // environmental: unreadable file, etc.
    }
    BURSTHIST_RETURN_IF_ERROR(
        condemn(BaseName(WalSegmentPath(dir, seq)), check.status().message()));
  }

  auto gens_or = ListSnapshots(env, dir);
  if (!gens_or.ok()) return gens_or.status();
  for (uint64_t gen : gens_or.value()) {
    auto snap = ReadSnapshotFile(env, dir, gen);
    ++report.snapshots_checked;
    if (snap.ok()) continue;
    if (snap.status().code() != StatusCode::kCorruption) {
      return snap.status();
    }
    BURSTHIST_RETURN_IF_ERROR(
        condemn(BaseName(SnapshotPath(dir, gen)), snap.status().message()));
  }

  m_runs.Inc();
  m_quarantined.Set(static_cast<double>(report.quarantined_present));
  return report;
}

}  // namespace bursthist
