#include "recovery/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "fault/crashpoint.h"
#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/serialize.h"

namespace bursthist {

namespace {
constexpr uint32_t kSnapshotMagic = 0x42534e50;  // "BSNP"
constexpr uint32_t kSnapshotVersion = 1;
}  // namespace

std::string SnapshotPath(const std::string& dir, uint64_t generation) {
  char name[40];
  std::snprintf(name, sizeof(name), "snapshot-%08llu.snap",
                static_cast<unsigned long long>(generation));
  return dir + "/" + name;
}

bool ParseSnapshotName(const std::string& name, uint64_t* generation) {
  unsigned long long parsed = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "snapshot-%8llu.sna%c", &parsed, &tail) != 2 ||
      tail != 'p' || name.size() != std::strlen("snapshot-00000000.snap")) {
    return false;
  }
  *generation = parsed;
  return true;
}

Result<std::vector<uint64_t>> ListSnapshots(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> gens;
  for (const auto& name : names.value()) {
    uint64_t gen = 0;
    if (ParseSnapshotName(name, &gen)) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end(), std::greater<uint64_t>());
  return gens;
}

Status WriteSnapshotFile(Env* env, const std::string& dir,
                         uint64_t generation, const WalPosition& covered,
                         const std::vector<uint8_t>& blob) {
  BURSTHIST_COUNTER(m_writes, obs::kSnapshotWritesTotal);
  BURSTHIST_GAUGE(m_bytes, obs::kSnapshotBytes);
  BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kSnapshotWriteLatencySeconds);
  obs::TraceSpan span(m_lat, "snapshot_write");
  BinaryWriter w;
  w.Put<uint32_t>(kSnapshotMagic);
  w.Put<uint32_t>(kSnapshotVersion);
  w.Put<uint64_t>(generation);
  w.Put<uint64_t>(covered.seq);
  w.Put<uint64_t>(covered.offset);
  w.PutVector(blob);  // u64 blob_len | blob bytes
  w.Put<uint32_t>(Crc32c(w.data(), w.size()));

  const std::string tmp = SnapshotPath(dir, generation) + ".tmp";
  auto file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  Status s = file.value()->Append(w.bytes());
  if (s.ok()) {
    BURSTHIST_CRASHPOINT("snapshot.post_tmp_write");
    s = file.value()->Sync();
  }
  if (s.ok()) {
    BURSTHIST_CRASHPOINT("snapshot.post_tmp_fsync");
    s = file.value()->Close();
  }
  if (s.ok()) {
    BURSTHIST_CRASHPOINT("snapshot.pre_rename");
    s = env->RenameFile(tmp, SnapshotPath(dir, generation));
  }
  if (!s.ok()) {
    // A failed write (typically ENOSPC) must not strand the
    // half-written temp file: it squats on the very disk space the
    // system just ran out of, and nothing would ever reclaim it —
    // PruneObsoleteFiles only knows completed generations.
    (void)env->DeleteFile(tmp);
    return s;
  }
  BURSTHIST_CRASHPOINT("snapshot.pre_dir_fsync");
  BURSTHIST_RETURN_IF_ERROR(env->SyncDir(dir));
  m_writes.Inc();
  m_bytes.Set(static_cast<double>(w.size()));
  return Status::OK();
}

Result<SnapshotContents> ReadSnapshotFile(Env* env, const std::string& dir,
                                          uint64_t generation) {
  auto bytes_or = env->ReadFileBytes(SnapshotPath(dir, generation));
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t>& bytes = bytes_or.value();
  // Fixed fields + trailer; the blob may be empty.
  constexpr size_t kMinSize = 4 + 4 + 8 + 8 + 8 + 8 + 4;
  if (bytes.size() < kMinSize) {
    return Status::Corruption("snapshot file too short");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32c(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Status::Corruption("snapshot checksum mismatch");
  }
  BinaryReader r(bytes.data(), bytes.size() - 4);
  uint32_t magic = 0, version = 0;
  SnapshotContents out;
  uint64_t blob_len = 0;
  BURSTHIST_RETURN_IF_ERROR(r.Get(&magic));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&version));
  if (magic != kSnapshotMagic) return Status::Corruption("bad snapshot magic");
  if (version != kSnapshotVersion) {
    return Status::Corruption("bad snapshot version");
  }
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out.generation));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out.wal_position.seq));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&out.wal_position.offset));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&blob_len));
  if (out.generation != generation) {
    return Status::Corruption("snapshot name/generation mismatch");
  }
  if (blob_len != r.remaining()) {
    return Status::Corruption("snapshot blob length mismatch");
  }
  out.blob.assign(bytes.data() + r.position(),
                  bytes.data() + r.position() + blob_len);
  return out;
}

}  // namespace bursthist
