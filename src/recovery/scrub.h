// On-disk integrity scrubbing for a durable engine directory.
//
// A scrub pass walks every WAL segment and snapshot file in the
// directory and re-validates all of it — segment headers, per-record
// frame checksums, snapshot trailers — the same checks recovery would
// apply, but proactively and without loading an engine. Latent media
// corruption (bit rot, a partial overwrite by a buggy tool) is found
// while the redundancy to survive it still exists, instead of at the
// worst possible moment: the next crash recovery.
//
// Disposition of a corrupt file: quarantine by rename, appending
// kQuarantineSuffix (recovery/wal.h). The bytes stay on disk for
// forensics and possible manual repair, but stop participating in
// recovery. Replay treats a quarantined WAL segment as a hard stop —
// it recovers the last contiguous good prefix and never skips the
// hole (records past it would be causally detached) — and snapshot
// selection simply no longer sees a quarantined generation, falling
// back to the next older one.
//
// The only tolerated damage is a torn tail on the globally-newest WAL
// segment, which is the ordinary remnant of a crash mid-append, not
// corruption. On a live engine the writer's current segment is
// skipped entirely (its tail is legitimately in flight) — see
// DurableBurstEngine::Scrub().

#ifndef BURSTHIST_RECOVERY_SCRUB_H_
#define BURSTHIST_RECOVERY_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/status.h"

namespace bursthist {

struct ScrubOptions {
  /// Rename corrupt files aside (append kQuarantineSuffix). When
  /// false the pass only detects and reports.
  bool quarantine = true;
  /// WAL segment to skip: the live writer's current segment, whose
  /// tail is legitimately mid-write. 0 = scrub everything (the
  /// offline/CLI case — segment 0 never exists).
  uint64_t skip_wal_seq = 0;
};

/// One corrupt file found by a pass.
struct ScrubIssue {
  /// File name within the directory (not a path).
  std::string file;
  /// What failed, e.g. "WAL record checksum mismatch".
  std::string detail;
  /// The file was renamed aside by THIS pass.
  bool quarantined = false;
};

struct ScrubReport {
  uint64_t wal_segments_checked = 0;
  uint64_t wal_records_checked = 0;
  uint64_t snapshots_checked = 0;
  /// Corrupt files found by this pass (== issues.size()).
  uint64_t corrupt_files = 0;
  /// Files this pass renamed aside.
  uint64_t quarantined_now = 0;
  /// Quarantined files present in the directory after the pass,
  /// including ones from earlier passes.
  uint64_t quarantined_present = 0;
  /// The newest WAL segment ends in a torn tail (expected crash
  /// remnant — informational, not corruption).
  bool tail_torn = false;
  std::vector<ScrubIssue> issues;

  bool clean() const { return corrupt_files == 0; }
};

/// Scrubs one durable directory. Never aborts on corruption — every
/// file is visited and every finding lands in the report; the return
/// status is non-OK only for environmental failures (the directory
/// itself unreadable, a quarantine rename failing).
Result<ScrubReport> ScrubDurableDir(Env* env, const std::string& dir,
                                    const ScrubOptions& opts = ScrubOptions());

}  // namespace bursthist

#endif  // BURSTHIST_RECOVERY_SCRUB_H_
