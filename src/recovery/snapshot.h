// Atomic, checksummed snapshot files for the recovery subsystem.
//
// A snapshot freezes a serialized engine blob together with the WAL
// position it covers: recovery loads the blob and replays only the
// log records at or after that position. Layout:
//
//   snapshot-<gen>.snap :=
//     u32 magic "BSNP" | u32 version = 1
//     u64 generation
//     u64 wal_seq | u64 wal_offset        # first position NOT covered
//     u64 blob_len | blob bytes
//     u32 crc32c                          # over all preceding bytes
//
// Writes are atomic against crashes: the file is assembled under a
// temporary name, fsynced, renamed into place, and the directory
// fsynced — a reader never observes a half-written snapshot under its
// final name, and a torn temp file is ignored (and garbage-collected)
// by recovery.

#ifndef BURSTHIST_RECOVERY_SNAPSHOT_H_
#define BURSTHIST_RECOVERY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "recovery/wal.h"
#include "util/env.h"
#include "util/status.h"

namespace bursthist {

/// A parsed snapshot file.
struct SnapshotContents {
  uint64_t generation = 0;
  /// Replay the WAL from here (everything earlier is in the blob).
  WalPosition wal_position;
  /// The serialized engine (BENG payload).
  std::vector<uint8_t> blob;
};

/// Builds "<dir>/snapshot-<gen 8 digits>.snap".
std::string SnapshotPath(const std::string& dir, uint64_t generation);

/// Parses a generation out of a snapshot file name; false otherwise.
bool ParseSnapshotName(const std::string& name, uint64_t* generation);

/// Sorted (descending — newest first) snapshot generations in `dir`.
Result<std::vector<uint64_t>> ListSnapshots(Env* env, const std::string& dir);

/// Atomically writes `snapshot-<gen>.snap` (temp + fsync + rename +
/// dir fsync).
Status WriteSnapshotFile(Env* env, const std::string& dir,
                         uint64_t generation, const WalPosition& covered,
                         const std::vector<uint8_t>& blob);

/// Reads and fully verifies (trailer checksum, header fields,
/// generation/name agreement) one snapshot file.
Result<SnapshotContents> ReadSnapshotFile(Env* env, const std::string& dir,
                                          uint64_t generation);

}  // namespace bursthist

#endif  // BURSTHIST_RECOVERY_SNAPSHOT_H_
