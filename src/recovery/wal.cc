#include "recovery/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "fault/crashpoint.h"
#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/serialize.h"

namespace bursthist {

namespace {

constexpr uint32_t kWalMagic = 0x4257414c;  // "BWAL"
constexpr uint32_t kWalVersion = 1;
// u32 payload_len | u32 masked_crc | u8 type.
constexpr uint64_t kFrameHeader = 9;

uint32_t FrameCrc(const uint8_t* type_and_payload, size_t n) {
  return Crc32cMask(Crc32c(type_and_payload, n));
}

}  // namespace

std::string WalSegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

bool ParseWalSegmentName(const std::string& name, uint64_t* seq) {
  unsigned long long parsed = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "wal-%8llu.lo%c", &parsed, &tail) != 2 ||
      tail != 'g' || name.size() != std::strlen("wal-00000000.log")) {
    return false;
  }
  *seq = parsed;
  return true;
}

Result<std::vector<uint64_t>> ListWalSegments(Env* env,
                                              const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> seqs;
  for (const auto& name : names.value()) {
    uint64_t seq = 0;
    if (ParseWalSegmentName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& dir,
                                                   uint64_t start_seq,
                                                   const Options& options) {
  std::unique_ptr<WalWriter> writer(new WalWriter(env, dir, options));
  BURSTHIST_RETURN_IF_ERROR(writer->OpenSegment(start_seq));
  return writer;
}

Status WalWriter::OpenSegment(uint64_t seq) {
  auto file = env_->NewWritableFile(WalSegmentPath(dir_, seq));
  if (!file.ok()) return file.status();
  file_ = std::move(file).value();
  BinaryWriter header;
  header.Put<uint32_t>(kWalMagic);
  header.Put<uint32_t>(kWalVersion);
  header.Put<uint64_t>(seq);
  BURSTHIST_RETURN_IF_ERROR(file_->Append(header.bytes()));
  BURSTHIST_CRASHPOINT("wal.segment.pre_dir_sync");
  // The segment's directory entry must itself be durable: without
  // this, power loss after a rotation can forget the new file while
  // keeping a snapshot that claims coverage past it.
  if (Status s = env_->SyncDir(dir_); !s.ok()) {
    // Whether the entry reached disk is now unknowable — the same
    // class of failure as a data fsync, handled the same way.
    poisoned_ = true;
    return Status::Unavailable("WAL directory fsync failed, read-only: " +
                               s.message());
  }
  position_ = WalPosition{seq, kWalHeaderSize};
  return Status::OK();
}

Status WalWriter::AddRecord(WalRecordType type,
                            const std::vector<uint8_t>& payload) {
  BURSTHIST_COUNTER(m_appends, obs::kWalAppendsTotal);
  BURSTHIST_COUNTER(m_retries, obs::kWalAppendRetriesTotal);
  BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kWalAppendLatencySeconds);
  obs::TraceSpan span(m_lat, "wal_append");
  if (poisoned_) {
    return Status::Unavailable("WAL is read-only after an fsync failure");
  }
  const uint64_t frame_size = kFrameHeader + payload.size();
  if (position_.offset > kWalHeaderSize &&
      position_.offset + frame_size > options_.segment_bytes) {
    BURSTHIST_RETURN_IF_ERROR(Rotate());
  }
  BinaryWriter frame;
  frame.Put<uint32_t>(static_cast<uint32_t>(payload.size()));
  frame.Put<uint32_t>(0);  // patched below: crc over type + payload
  frame.Put<uint8_t>(static_cast<uint8_t>(type));
  const size_t body_begin = frame.size() - 1;
  for (uint8_t b : payload) frame.Put<uint8_t>(b);
  frame.Patch<uint32_t>(
      4, FrameCrc(frame.data() + body_begin, frame.size() - body_begin));
  BURSTHIST_CRASHPOINT("wal.append.pre_write");
  Status append = file_->Append(frame.bytes());
  for (uint32_t attempt = 1; !append.ok() && attempt <= options_.append_retries;
       ++attempt) {
    m_retries.Inc();
    if (options_.retry_backoff) options_.retry_backoff(attempt);
    // A failed append may have torn the segment tail; the retry must
    // land on a clean segment. If the cleanup itself fails, surface
    // the ORIGINAL append error — it names the real problem.
    if (!ReopenCleanSegment().ok()) return append;
    append = file_->Append(frame.bytes());
  }
  BURSTHIST_RETURN_IF_ERROR(append);
  BURSTHIST_CRASHPOINT("wal.append.post_write");
  position_.offset += frame_size;
  if (options_.sync_every_record) {
    BURSTHIST_RETURN_IF_ERROR(Sync());
  }
  m_appends.Inc();
  return Status::OK();
}

Status WalWriter::AddRecordBatch(WalRecordType type, const uint8_t* payloads,
                                 size_t payload_len, size_t n) {
  BURSTHIST_COUNTER(m_appends, obs::kWalAppendsTotal);
  BURSTHIST_COUNTER(m_retries, obs::kWalAppendRetriesTotal);
  BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kWalAppendLatencySeconds);
  obs::TraceSpan span(m_lat, "wal_append_batch");
  if (n == 0) return Status::OK();
  if (poisoned_) {
    return Status::Unavailable("WAL is read-only after an fsync failure");
  }
  const uint64_t frame_size = kFrameHeader + payload_len;
  const uint64_t total_size = frame_size * n;
  if (position_.offset > kWalHeaderSize &&
      position_.offset + total_size > options_.segment_bytes) {
    BURSTHIST_RETURN_IF_ERROR(Rotate());
  }
  BinaryWriter frames;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t* payload = payloads + i * payload_len;
    const size_t frame_begin = frames.size();
    frames.Put<uint32_t>(static_cast<uint32_t>(payload_len));
    frames.Put<uint32_t>(0);  // patched below: crc over type + payload
    frames.Put<uint8_t>(static_cast<uint8_t>(type));
    for (size_t b = 0; b < payload_len; ++b) frames.Put<uint8_t>(payload[b]);
    frames.Patch<uint32_t>(
        frame_begin + 4,
        FrameCrc(frames.data() + frame_begin + 8, 1 + payload_len));
  }
  Status append = file_->Append(frames.bytes());
  for (uint32_t attempt = 1; !append.ok() && attempt <= options_.append_retries;
       ++attempt) {
    m_retries.Inc();
    if (options_.retry_backoff) options_.retry_backoff(attempt);
    // Same contract as AddRecord: a failed append may have torn the
    // segment tail, so the retry re-appends the WHOLE batch on a clean
    // segment; if the cleanup fails, surface the original error.
    if (!ReopenCleanSegment().ok()) return append;
    append = file_->Append(frames.bytes());
  }
  BURSTHIST_RETURN_IF_ERROR(append);
  BURSTHIST_CRASHPOINT("wal.batch.post_write");
  position_.offset += total_size;
  if (options_.sync_every_record) {
    BURSTHIST_RETURN_IF_ERROR(Sync());
  }
  m_appends.Inc(n);
  return Status::OK();
}

Status WalWriter::Sync() {
  BURSTHIST_COUNTER(m_fsyncs, obs::kWalFsyncsTotal);
  BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kWalFsyncLatencySeconds);
  BURSTHIST_GAUGE(m_poisoned, obs::kWalPoisoned);
  if (poisoned_) {
    return Status::Unavailable("WAL is read-only after an fsync failure");
  }
  obs::TraceSpan span(m_lat, "wal_fsync");
  const Status s = file_->Sync();
  m_fsyncs.Inc();
  if (!s.ok()) {
    // Never retry a failed fsync: the kernel may already have dropped
    // the dirty pages, so a later fsync returning OK proves nothing
    // about these bytes. Poison the writer; the owner degrades to
    // read-only and recovery replays whatever actually reached disk.
    poisoned_ = true;
    m_poisoned.Set(1.0);
    return Status::Unavailable("fsync failed, WAL now read-only: " +
                               s.message());
  }
  return s;
}

Status WalWriter::Rotate() {
  BURSTHIST_COUNTER(m_rotations, obs::kWalRotationsTotal);
  BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kWalRotationLatencySeconds);
  obs::TraceSpan span(m_lat, "wal_rotate");
  BURSTHIST_RETURN_IF_ERROR(Sync());
  BURSTHIST_RETURN_IF_ERROR(file_->Close());
  BURSTHIST_CRASHPOINT("wal.rotate.pre_open");
  BURSTHIST_RETURN_IF_ERROR(OpenSegment(position_.seq + 1));
  m_rotations.Inc();
  return Status::OK();
}

Status WalWriter::ReopenCleanSegment() {
  if (file_) (void)file_->Close();  // fd may be unusable; best-effort
  BURSTHIST_RETURN_IF_ERROR(
      env_->TruncateFile(WalSegmentPath(dir_, position_.seq),
                         position_.offset));
  return OpenSegment(position_.seq + 1);
}

Result<WalSegmentCheck> CheckWalSegment(Env* env, const std::string& dir,
                                        uint64_t seq, bool allow_torn_tail) {
  auto bytes_or = env->ReadFileBytes(WalSegmentPath(dir, seq));
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t>& bytes = bytes_or.value();

  WalSegmentCheck check;
  auto torn_or = [&](const char* what) -> Result<WalSegmentCheck> {
    if (allow_torn_tail) {
      check.tail_torn = true;
      return check;
    }
    return Status::Corruption(what);
  };

  if (bytes.size() < kWalHeaderSize) {
    return torn_or("short WAL header");
  }
  BinaryReader header(bytes.data(), bytes.size());
  uint32_t magic = 0, version = 0;
  uint64_t header_seq = 0;
  BURSTHIST_RETURN_IF_ERROR(header.Get(&magic));
  BURSTHIST_RETURN_IF_ERROR(header.Get(&version));
  BURSTHIST_RETURN_IF_ERROR(header.Get(&header_seq));
  if (magic != kWalMagic) return Status::Corruption("bad WAL magic");
  if (version != kWalVersion) return Status::Corruption("bad WAL version");
  if (header_seq != seq) {
    return Status::Corruption("WAL segment name/header sequence mismatch");
  }

  uint64_t off = kWalHeaderSize;
  while (off < bytes.size()) {
    const uint64_t remaining = bytes.size() - off;
    if (remaining < kFrameHeader) {
      return torn_or("trailing garbage in WAL segment");
    }
    uint32_t payload_len = 0, stored_crc = 0;
    std::memcpy(&payload_len, bytes.data() + off, sizeof(payload_len));
    std::memcpy(&stored_crc, bytes.data() + off + 4, sizeof(stored_crc));
    const uint64_t frame_size = kFrameHeader + payload_len;
    if (frame_size > remaining) {
      return torn_or("record overruns WAL segment");
    }
    const uint8_t* body = bytes.data() + off + 8;
    if (FrameCrc(body, 1 + payload_len) != stored_crc) {
      // A bad checksum on the frame touching the last byte is the torn
      // write replay also forgives; anywhere else it is corruption
      // even in the newest segment.
      if (off + frame_size == bytes.size()) {
        return torn_or("WAL record checksum mismatch in tail");
      }
      return Status::Corruption("WAL record checksum mismatch");
    }
    off += frame_size;
    ++check.records;
  }
  return check;
}

Result<WalReplayResult> ReplayWal(
    Env* env, const std::string& dir, const WalPosition& from,
    const std::function<Status(WalRecordType, const uint8_t* payload,
                               size_t len, const WalPosition& end)>& sink) {
  BURSTHIST_COUNTER(m_replayed, obs::kRecoveryReplayedRecordsTotal);
  BURSTHIST_COUNTER(m_torn, obs::kRecoveryTornTailsTotal);
  auto seqs_or = ListWalSegments(env, dir);
  if (!seqs_or.ok()) return seqs_or.status();
  const std::vector<uint64_t>& all = seqs_or.value();

  std::vector<uint64_t> seqs;
  for (uint64_t seq : all) {
    if (seq >= from.seq) seqs.push_back(seq);
  }
  // A gap left by the scrubber quarantining a segment is an explicit,
  // operator-visible hole: replay stops cleanly at the prefix before
  // it. A bare gap (file vanished without a quarantine marker) stays
  // hard corruption.
  auto quarantined = [env, &dir](uint64_t seq) {
    return env->FileExists(WalSegmentPath(dir, seq) + kQuarantineSuffix);
  };

  WalReplayResult result;
  result.end = from;
  if (seqs.empty()) return result;
  if (seqs.front() != from.seq) {
    if (quarantined(from.seq)) {
      result.stopped_at_quarantine = true;
      return result;
    }
    return Status::Corruption("WAL segment holding the replay start is gone");
  }

  for (size_t i = 0; i < seqs.size(); ++i) {
    const uint64_t seq = seqs[i];
    const bool last = i + 1 == seqs.size();
    if (i > 0 && seq != seqs[i - 1] + 1) {
      if (quarantined(seqs[i - 1] + 1)) {
        result.stopped_at_quarantine = true;
        return result;
      }
      return Status::Corruption("gap in WAL segment sequence");
    }
    auto bytes_or = env->ReadFileBytes(WalSegmentPath(dir, seq));
    if (!bytes_or.ok()) return bytes_or.status();
    const std::vector<uint8_t>& bytes = bytes_or.value();

    if (bytes.size() < kWalHeaderSize) {
      if (last) {
        // Crash while creating the segment: an expected torn tail.
        result.tail_torn = true;
        m_torn.Inc();
        return result;
      }
      return Status::Corruption("short WAL header in non-final segment");
    }
    BinaryReader header(bytes.data(), bytes.size());
    uint32_t magic = 0, version = 0;
    uint64_t header_seq = 0;
    BURSTHIST_RETURN_IF_ERROR(header.Get(&magic));
    BURSTHIST_RETURN_IF_ERROR(header.Get(&version));
    BURSTHIST_RETURN_IF_ERROR(header.Get(&header_seq));
    if (magic != kWalMagic) return Status::Corruption("bad WAL magic");
    if (version != kWalVersion) return Status::Corruption("bad WAL version");
    if (header_seq != seq) {
      return Status::Corruption("WAL segment name/header sequence mismatch");
    }

    uint64_t off = seq == from.seq ? std::max(from.offset, kWalHeaderSize)
                                   : kWalHeaderSize;
    while (off < bytes.size()) {
      const uint64_t remaining = bytes.size() - off;
      if (remaining < kFrameHeader) {
        if (last) {
          result.tail_torn = true;
          m_torn.Inc();
          return result;
        }
        return Status::Corruption("trailing garbage in non-final segment");
      }
      uint32_t payload_len = 0, stored_crc = 0;
      std::memcpy(&payload_len, bytes.data() + off, sizeof(payload_len));
      std::memcpy(&stored_crc, bytes.data() + off + 4, sizeof(stored_crc));
      const uint64_t frame_size = kFrameHeader + payload_len;
      if (frame_size > remaining) {
        if (last) {
          // A record cut off mid-write (or a length field mangled by
          // the same tear) — the expected crash remnant.
          result.tail_torn = true;
          m_torn.Inc();
          return result;
        }
        return Status::Corruption("record overruns non-final segment");
      }
      const uint8_t* body = bytes.data() + off + 8;
      const size_t body_len = 1 + payload_len;
      if (FrameCrc(body, body_len) != stored_crc) {
        if (last && off + frame_size == bytes.size()) {
          // The final record's bytes are damaged; indistinguishable
          // from a torn write, so drop it and stop cleanly.
          result.tail_torn = true;
          m_torn.Inc();
          return result;
        }
        return Status::Corruption("WAL record checksum mismatch");
      }
      BURSTHIST_RETURN_IF_ERROR(
          sink(static_cast<WalRecordType>(body[0]), body + 1, payload_len,
               WalPosition{seq, off + frame_size}));
      off += frame_size;
      m_replayed.Inc();
      ++result.records;
      result.end = WalPosition{seq, off};
    }
  }
  return result;
}

}  // namespace bursthist
