// Crash-safe persistence for BurstEngine: WAL tee + atomic snapshots
// + recovery.
//
//   DurableBurstEngine<Pbe1>::Open(env, dir, engine_options)  // recovers
//   durable->Append(e, t);        // logged, then ingested
//   durable->Checkpoint();        // snapshot + WAL trim
//   ...crash...
//   RecoverBurstEngine<Pbe1>(env, dir, engine_options)        // read-only
//
// Durability protocol
//
//  * Every accepted Append is first framed into the WAL (via the
//    engine's append-observer tee, so validation happens before
//    logging and a logged record always replays cleanly), then
//    ingested. A record is therefore never in the engine without
//    being in the log.
//  * Checkpoint() rotates the WAL to a fresh segment, snapshots the
//    live engine (atomic temp + fsync + rename) embedding that
//    position, then prunes segments and snapshots the new one
//    obsoletes. Crashing between any two steps is safe: recovery
//    just replays more WAL or uses the previous generation.
//  * Open() never appends to an existing segment (its tail may be
//    torn); it starts the next sequence number.
//
// Recovery semantics (RecoverState)
//
//  * The newest snapshot that verifies AND whose WAL tail replays
//    without mid-log corruption wins; a torn/truncated final record
//    is expected (crash remnant) and replay stops cleanly before it.
//  * A bad snapshot or corrupt mid-log record falls back to the
//    previous snapshot generation; only when every candidate fails
//    does recovery report the newest failure (kCorruption).
//  * With no snapshot at all the WAL is the full history (pruning
//    only ever follows a durable snapshot), so replay starts from an
//    empty engine. If a snapshot file exists but none verifies,
//    recovery refuses to serve the bare WAL suffix — that would
//    silently drop the pruned prefix.

#ifndef BURSTHIST_RECOVERY_DURABLE_ENGINE_H_
#define BURSTHIST_RECOVERY_DURABLE_ENGINE_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/burst_engine.h"
#include "fault/crashpoint.h"
#include "recovery/scrub.h"
#include "recovery/snapshot.h"
#include "recovery/wal.h"
#include "util/env.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Tuning for the durability layer.
struct DurabilityOptions {
  /// WAL segment rotation threshold.
  uint64_t wal_segment_bytes = 4ull << 20;
  /// fsync the WAL after every Append (power-loss durability per
  /// record; ~one fsync per append). Off: appends hit the file
  /// immediately but are fsynced on Checkpoint()/Sync().
  bool sync_every_append = false;
  /// Snapshot generations retained after a checkpoint (>= 1).
  size_t snapshots_to_keep = 2;
  /// Retries for transient WAL append failures (see
  /// WalWriter::Options::append_retries). fsync failures are never
  /// retried: they poison the WAL and the engine goes read-only.
  uint32_t wal_append_retries = 0;
  /// Backoff hook invoked before each append retry.
  std::function<void(uint32_t attempt)> wal_retry_backoff;
};

namespace recovery_internal {

/// Fixed wire size of a WalRecordType::kEvent payload:
/// u32 event | i64 time | u64 count.
constexpr size_t kEventPayloadBytes = 20;

inline std::vector<uint8_t> EncodeEventPayload(EventId e, Timestamp t,
                                               Count count) {
  BinaryWriter w;
  w.Put<uint32_t>(e);
  w.Put<int64_t>(t);
  w.Put<uint64_t>(count);
  return w.TakeBytes();
}

inline Status DecodeEventPayload(const uint8_t* payload, size_t len,
                                 EventId* e, Timestamp* t, Count* count) {
  BinaryReader r(payload, len);
  BURSTHIST_RETURN_IF_ERROR(r.Get(e));
  BURSTHIST_RETURN_IF_ERROR(r.Get(t));
  BURSTHIST_RETURN_IF_ERROR(r.Get(count));
  if (r.remaining() != 0) {
    return Status::Corruption("oversized WAL event payload");
  }
  return Status::OK();
}

inline std::vector<uint8_t> EncodeReplicatedPayload(const WalPosition& source,
                                                    EventId e, Timestamp t,
                                                    Count count) {
  BinaryWriter w;
  w.Put<uint64_t>(source.seq);
  w.Put<uint64_t>(source.offset);
  w.Put<uint32_t>(e);
  w.Put<int64_t>(t);
  w.Put<uint64_t>(count);
  return w.TakeBytes();
}

inline Status DecodeReplicatedPayload(const uint8_t* payload, size_t len,
                                      WalPosition* source, EventId* e,
                                      Timestamp* t, Count* count) {
  BinaryReader r(payload, len);
  BURSTHIST_RETURN_IF_ERROR(r.Get(&source->seq));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&source->offset));
  BURSTHIST_RETURN_IF_ERROR(r.Get(e));
  BURSTHIST_RETURN_IF_ERROR(r.Get(t));
  BURSTHIST_RETURN_IF_ERROR(r.Get(count));
  if (r.remaining() != 0) {
    return Status::Corruption("oversized WAL replicated payload");
  }
  return Status::OK();
}

/// Magic for the replica-metadata trailer a checkpoint appends after
/// the engine blob inside the snapshot: u32 "RPLM" | u64 source_seq |
/// u64 source_offset. Snapshots written before replication existed
/// simply end at the engine blob; both forms stay readable.
constexpr uint32_t kReplicaMetaMagic = 0x4d4c5052;  // "RPLM"

inline void AppendReplicaMeta(BinaryWriter* w, const WalPosition& source) {
  w->Put<uint32_t>(kReplicaMetaMagic);
  w->Put<uint64_t>(source.seq);
  w->Put<uint64_t>(source.offset);
}

/// Reads the trailer (if present) from the bytes an engine
/// Deserialize left behind. remaining() == 0 is a legacy snapshot:
/// leader position {0, 0}, i.e. "replicate from the beginning".
inline Status ReadReplicaMeta(BinaryReader* r, WalPosition* source) {
  *source = WalPosition{};
  if (r->remaining() == 0) return Status::OK();
  uint32_t magic = 0;
  BURSTHIST_RETURN_IF_ERROR(r->Get(&magic));
  if (magic != kReplicaMetaMagic) {
    return Status::Corruption("bad snapshot replica-metadata magic");
  }
  BURSTHIST_RETURN_IF_ERROR(r->Get(&source->seq));
  BURSTHIST_RETURN_IF_ERROR(r->Get(&source->offset));
  if (r->remaining() != 0) {
    return Status::Corruption("trailing bytes after snapshot replica meta");
  }
  return Status::OK();
}

/// A recovered engine plus where the log ended.
template <typename PbeT>
struct RecoveredState {
  BurstEngine<PbeT> engine;
  /// End of the last applied WAL record; the next writer segment is
  /// wal_end.seq + 1.
  WalPosition wal_end;
  /// Newest snapshot generation on disk (0 = none).
  uint64_t latest_generation = 0;
  /// LEADER WAL position this state has applied through, recovered
  /// from the snapshot trailer plus any replayed kReplicated records.
  /// {0, 0} when the directory never acted as a follower.
  WalPosition replicated_through;
  /// Replay discarded a torn tail after wal_end (crash remnant). The
  /// torn bytes live in segment wal_end.seq; a writer must dispose of
  /// them before the NEXT recovery, which would see that segment as
  /// non-final and call the same tail corruption.
  bool wal_tail_torn = false;
  /// Replay stopped at a scrubber-quarantined segment: records past
  /// the hole exist on disk but were not applied.
  bool stopped_at_quarantine = false;
};

/// Loads one snapshot generation (or the empty baseline when
/// `generation` == 0) and replays the WAL tail it does not cover.
template <typename PbeT>
Result<RecoveredState<PbeT>> TryRecoverFrom(
    Env* env, const std::string& dir,
    const BurstEngineOptions<PbeT>& options, uint64_t generation) {
  RecoveredState<PbeT> state{BurstEngine<PbeT>(options), WalPosition{}, 0,
                             WalPosition{}};
  WalPosition from{0, 0};
  if (generation > 0) {
    auto snap = ReadSnapshotFile(env, dir, generation);
    if (!snap.ok()) return snap.status();
    BinaryReader r(snap.value().blob);
    BURSTHIST_RETURN_IF_ERROR(state.engine.Deserialize(&r));
    BURSTHIST_RETURN_IF_ERROR(ReadReplicaMeta(&r, &state.replicated_through));
    from = snap.value().wal_position;
  } else {
    // Empty baseline: the log is the whole history; start at the
    // earliest segment present (1 unless the directory is empty).
    auto seqs = ListWalSegments(env, dir);
    if (!seqs.ok()) return seqs.status();
    if (!seqs.value().empty()) from = WalPosition{seqs.value().front(), 0};
  }
  auto& engine = state.engine;
  auto& replicated_through = state.replicated_through;
  auto replay = ReplayWal(
      env, dir, from,
      [&engine, &replicated_through](WalRecordType type,
                                     const uint8_t* payload, size_t len,
                                     const WalPosition&) {
        EventId e = 0;
        Timestamp t = 0;
        Count count = 0;
        if (type == WalRecordType::kEvent) {
          BURSTHIST_RETURN_IF_ERROR(DecodeEventPayload(payload, len, &e, &t,
                                                       &count));
        } else if (type == WalRecordType::kReplicated) {
          WalPosition source;
          BURSTHIST_RETURN_IF_ERROR(
              DecodeReplicatedPayload(payload, len, &source, &e, &t, &count));
          if (replicated_through < source) replicated_through = source;
        } else {
          return Status::Corruption("unknown WAL record type");
        }
        Status st = engine.Append(e, t, count);
        if (!st.ok()) {
          // Only validated records reach the log, so a rejected
          // replay means the state it was validated against is gone.
          return Status::Corruption("WAL replay rejected: " + st.ToString());
        }
        return Status::OK();
      });
  if (!replay.ok()) return replay.status();
  state.wal_end = replay.value().end;
  state.wal_tail_torn = replay.value().tail_torn;
  state.stopped_at_quarantine = replay.value().stopped_at_quarantine;
  return state;
}

/// Recovery core shared by Open() and RecoverBurstEngine(): newest
/// valid snapshot generation first, older generations on failure,
/// empty baseline only when no snapshot file exists at all.
template <typename PbeT>
Result<RecoveredState<PbeT>> RecoverState(
    Env* env, const std::string& dir,
    const BurstEngineOptions<PbeT>& options) {
  auto gens_or = ListSnapshots(env, dir);
  if (!gens_or.ok()) return gens_or.status();
  const std::vector<uint64_t>& gens = gens_or.value();

  Status first_failure = Status::OK();
  for (uint64_t gen : gens) {
    auto state = TryRecoverFrom<PbeT>(env, dir, options, gen);
    if (state.ok()) {
      state.value().latest_generation = gens.front();
      return state;
    }
    if (first_failure.ok()) first_failure = state.status();
  }
  if (!gens.empty()) {
    // Every snapshot generation failed; the WAL alone is a suffix of
    // history (earlier segments were pruned under those snapshots).
    return Status::Corruption("all snapshot generations unusable: " +
                              first_failure.ToString());
  }
  return TryRecoverFrom<PbeT>(env, dir, options, 0);
}

}  // namespace recovery_internal

/// Read-only crash recovery: reconstructs the engine a
/// DurableBurstEngine would resume from, without opening the
/// directory for writing.
template <typename PbeT>
Result<BurstEngine<PbeT>> RecoverBurstEngine(
    Env* env, const std::string& dir,
    const BurstEngineOptions<PbeT>& options) {
  auto state = recovery_internal::RecoverState<PbeT>(env, dir, options);
  if (!state.ok()) return state.status();
  return std::move(state).value().engine;
}

/// A BurstEngine whose appends survive crashes: every record is teed
/// into a checksummed WAL before ingestion, and Checkpoint() persists
/// the whole engine atomically.
template <typename PbeT>
class DurableBurstEngine {
 public:
  using EngineOptions = BurstEngineOptions<PbeT>;
  /// The immutable query-view type AcquireSnapshot() returns — part
  /// of the duck type the serving layer (server/ingest_server.h) is
  /// templated on, alongside the delegating accessors below (a
  /// sharded ClusterEngine implements the same surface).
  using Snapshot = ReadSnapshot<PbeT>;

  /// Recovers (or initializes) `dir` and opens it for appending.
  static Result<std::unique_ptr<DurableBurstEngine<PbeT>>> Open(
      Env* env, const std::string& dir, const EngineOptions& options,
      const DurabilityOptions& durability = DurabilityOptions()) {
    BURSTHIST_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
    auto state_or = recovery_internal::RecoverState<PbeT>(env, dir, options);
    if (!state_or.ok()) return state_or.status();
    recovery_internal::RecoveredState<PbeT> state =
        std::move(state_or).value();

    // Dispose of the crash remnants recovery skipped over, so the
    // NEXT recovery never re-encounters them as mid-log corruption:
    //  * segments past wal_end.seq hold nothing recovery applied —
    //    they can only be empty rotation leftovers (a crash between
    //    opening a fresh segment and writing to it) or, when the tail
    //    was torn, do not exist at all — delete them;
    //  * a torn tail inside segment wal_end.seq would read as hard
    //    corruption once a later segment exists (the segment stops
    //    being final) — truncate it back to the last good record.
    // When replay stopped at a quarantined hole, leave everything in
    // place: the operator may restore the quarantined segment, and the
    // files past it are real history, not remnants.
    if (!state.stopped_at_quarantine) {
      auto seqs = ListWalSegments(env, dir);
      if (!seqs.ok()) return seqs.status();
      for (uint64_t seq : seqs.value()) {
        if (seq > state.wal_end.seq) {
          BURSTHIST_RETURN_IF_ERROR(
              env->DeleteFile(WalSegmentPath(dir, seq)));
        }
      }
      if (state.wal_tail_torn &&
          env->FileExists(WalSegmentPath(dir, state.wal_end.seq))) {
        BURSTHIST_RETURN_IF_ERROR(env->TruncateFile(
            WalSegmentPath(dir, state.wal_end.seq), state.wal_end.offset));
      }
    }

    WalWriter::Options wal_options;
    wal_options.segment_bytes = durability.wal_segment_bytes;
    wal_options.sync_every_record = durability.sync_every_append;
    wal_options.append_retries = durability.wal_append_retries;
    wal_options.retry_backoff = durability.wal_retry_backoff;
    // Never append to a possibly-torn tail: start the next segment.
    auto seqs = ListWalSegments(env, dir);
    if (!seqs.ok()) return seqs.status();
    const uint64_t next_seq =
        seqs.value().empty() ? 1 : seqs.value().back() + 1;
    auto wal = WalWriter::Open(env, dir, next_seq, wal_options);
    if (!wal.ok()) return wal.status();

    std::unique_ptr<DurableBurstEngine<PbeT>> out(
        new DurableBurstEngine(env, dir, options, durability,
                               std::move(state.engine),
                               std::move(wal).value()));
    out->generation_ = state.latest_generation;
    out->replicated_through_ = state.replicated_through;
    if (state.stopped_at_quarantine) {
      // Writes would land in segments PAST the quarantined hole, where
      // the next replay could never reach them. Re-anchor immediately:
      // a fresh snapshot covering the recovered prefix makes the new
      // segment the replay start, and the hole drops out of the live
      // history (the quarantined file stays on disk for forensics).
      BURSTHIST_RETURN_IF_ERROR(out->Checkpoint());
    }
    return out;
  }

  /// Logs and ingests one record. The WAL write happens after
  /// validation and before ingestion; on a log failure (e.g. disk
  /// full) the record is not ingested and the error is returned.
  Status Append(EventId e, Timestamp t, Count count = 1) {
    return engine_.Append(e, t, count);
  }

  /// Logs and ingests a batch of records in one shot (see
  /// BurstEngine::AppendBatch): one WAL write and at most one fsync
  /// cover the whole batch via the batch tee. `applied` reports the
  /// deterministic prefix that was logged AND ingested; on a WAL
  /// failure nothing was, so *applied == 0.
  Status AppendBatch(std::span<const WeightedRecord> records,
                     size_t* applied = nullptr) {
    return engine_.AppendBatch(records, applied);
  }

  /// Logs and ingests a whole stream (see BurstEngine::AppendStream).
  Status AppendStream(const EventStream& stream) {
    return engine_.AppendStream(stream);
  }

  /// Logs and ingests one record received over replication. The
  /// leader position just past the shipped record rides in the SAME
  /// WAL frame as the event (WalRecordType::kReplicated), so a crash
  /// can never separate "applied the record" from "advanced the
  /// resume token". On success replicated_through() == source.
  Status AppendReplicated(EventId e, Timestamp t, Count count,
                          const WalPosition& source) {
    pending_source_ = &source;
    Status st = engine_.Append(e, t, count);
    pending_source_ = nullptr;
    if (st.ok()) {
      // Past this point the record is logged AND ingested; a crash
      // here tests that the in-frame position stamp (not the volatile
      // watermark below) is what recovery trusts.
      BURSTHIST_CRASHPOINT("repl.apply.post_record");
      replicated_through_ = source;
    }
    return st;
  }

  /// LEADER WAL position applied through ({0, 0} if never a
  /// follower): the resume token to present when (re)connecting.
  const WalPosition& replicated_through() const { return replicated_through_; }

  /// Replaces the engine wholesale with a leader snapshot blob whose
  /// coverage ends at `source` (follower bootstrap: local history is
  /// behind the leader's pruning horizon, so it cannot be caught up
  /// record-by-record). Checkpoints immediately — the install is only
  /// durable once the local snapshot + fresh WAL segment land, and
  /// stale local WAL records must never replay on top of the new
  /// state. On failure the in-memory engine no longer matches disk;
  /// the caller must discard this object (reopen recovers the
  /// pre-install state).
  Status InstallReplicatedState(const std::vector<uint8_t>& blob,
                                const WalPosition& source) {
    if (read_only()) {
      return Status::Unavailable("engine is read-only after fsync failure");
    }
    BurstEngine<PbeT> fresh(options_);
    BinaryReader r(blob);
    BURSTHIST_RETURN_IF_ERROR(fresh.Deserialize(&r));
    engine_ = std::move(fresh);
    InstallTee();
    replicated_through_ = source;
    BURSTHIST_CRASHPOINT("repl.install.pre_checkpoint");
    return Checkpoint();
  }

  /// fsyncs the WAL up to the last accepted Append. A failed fsync
  /// permanently poisons the WAL (see WalWriter::Sync); the engine is
  /// read-only from then on — queries keep working, appends and
  /// checkpoints return Unavailable.
  Status Sync() { return wal_->Sync(); }

  /// True once an fsync failure put the engine in read-only degraded
  /// mode. Recover by restarting: Open() replays what reached disk.
  bool read_only() const { return wal_->poisoned(); }

  /// Atomically persists the current engine state and trims the WAL
  /// and old snapshots. On failure the previous generation remains
  /// authoritative and the engine stays usable.
  Status Checkpoint() {
    if (read_only()) {
      // A checkpoint claims "WAL covered through this position" —
      // unknowable once an fsync failed.
      return Status::Unavailable("engine is read-only after fsync failure");
    }
    BURSTHIST_CRASHPOINT("checkpoint.pre_rotate");
    BURSTHIST_RETURN_IF_ERROR(wal_->Rotate());
    const WalPosition covered = wal_->position();
    BURSTHIST_CRASHPOINT("checkpoint.mid");
    BinaryWriter w;
    engine_.Serialize(&w);
    recovery_internal::AppendReplicaMeta(&w, replicated_through_);
    BURSTHIST_RETURN_IF_ERROR(
        WriteSnapshotFile(env_, dir_, generation_ + 1, covered, w.bytes()));
    BURSTHIST_CRASHPOINT("checkpoint.post_snapshot");
    ++generation_;
    PruneObsoleteFiles();
    return Status::OK();
  }

  /// Walks every WAL segment and snapshot in the directory,
  /// re-validating all checksums, and (by default) quarantines corrupt
  /// files by renaming them aside — see recovery/scrub.h. Safe to run
  /// against the live engine: the writer's current segment is skipped
  /// (its tail is legitimately in flight).
  Result<ScrubReport> Scrub(const ScrubOptions& opts = ScrubOptions()) {
    ScrubOptions o = opts;
    o.skip_wal_seq = wal_->position().seq;
    return ScrubDurableDir(env_, dir_, o);
  }

  /// The recovered/live engine. Queries go straight through; do not
  /// call Append on it directly if you want the return-status of the
  /// WAL tee surfaced (use DurableBurstEngine::Append — the tee runs
  /// either way).
  BurstEngine<PbeT>& engine() { return engine_; }
  const BurstEngine<PbeT>& engine() const { return engine_; }

  /// End of the last durable WAL record.
  const WalPosition& wal_position() const { return wal_->position(); }

  /// Newest snapshot generation (0 before the first checkpoint).
  uint64_t generation() const { return generation_; }

  // Delegating accessors completing the serving duck type (see
  // `Snapshot` above): a templated serving layer talks only to this
  // surface, never to engine() directly, so a sharded cluster facade
  // can slot in behind the same code.
  std::shared_ptr<const ReadSnapshot<PbeT>> AcquireSnapshot(
      uint64_t sequence = 0) {
    return engine_.AcquireSnapshot(sequence);
  }
  void PublishMetrics() const { engine_.PublishMetrics(); }
  EventId universe_size() const { return engine_.universe_size(); }
  Count TotalCount() const { return engine_.TotalCount(); }
  Count BufferedCount() const { return engine_.BufferedCount(); }
  Timestamp Watermark() const { return engine_.Watermark(); }

 private:
  DurableBurstEngine(Env* env, std::string dir, const EngineOptions& options,
                     const DurabilityOptions& durability,
                     BurstEngine<PbeT> engine,
                     std::unique_ptr<WalWriter> wal)
      : env_(env),
        dir_(std::move(dir)),
        options_(options),
        durability_(durability),
        engine_(std::move(engine)),
        wal_(std::move(wal)) {
    InstallTee();
  }

  // The WAL tee: every accepted append is framed into the log before
  // ingestion. A replicated append (pending_source_ set) carries the
  // leader position inside the frame. The batch form frames the whole
  // span into one WAL write (≤ 1 fsync); replication always applies
  // record-by-record, so the batch tee never sees pending_source_.
  void InstallTee() {
    engine_.set_append_observer([this](EventId e, Timestamp t, Count count) {
      if (pending_source_ != nullptr) {
        return wal_->AddRecord(WalRecordType::kReplicated,
                               recovery_internal::EncodeReplicatedPayload(
                                   *pending_source_, e, t, count));
      }
      return wal_->AddRecord(
          WalRecordType::kEvent,
          recovery_internal::EncodeEventPayload(e, t, count));
    });
    engine_.set_batch_append_observer(
        [this](std::span<const WeightedRecord> records) {
          BinaryWriter w;
          for (const WeightedRecord& r : records) {
            w.Put<uint32_t>(r.id);
            w.Put<int64_t>(r.time);
            w.Put<uint64_t>(r.count);
          }
          return wal_->AddRecordBatch(WalRecordType::kEvent, w.data(),
                                      recovery_internal::kEventPayloadBytes,
                                      records.size());
        });
  }

  // Best-effort removal of files the retained snapshots obsolete
  // (failures leave garbage that recovery ignores; re-tried at the
  // next checkpoint). WAL segments are kept back to the coverage of
  // the OLDEST retained snapshot — not just the newest — so that
  // falling back a generation during recovery still finds the log
  // tail it needs to replay.
  void PruneObsoleteFiles() {
    const size_t keep =
        durability_.snapshots_to_keep < 1 ? 1 : durability_.snapshots_to_keep;
    auto gens = ListSnapshots(env_, dir_);
    if (!gens.ok()) return;
    for (size_t i = keep; i < gens.value().size(); ++i) {
      env_->DeleteFile(SnapshotPath(dir_, gens.value()[i]));
    }
    // Oldest retained generation's coverage bounds WAL retention. An
    // unreadable snapshot keeps everything (conservative: extra
    // garbage, never a lost tail).
    uint64_t min_covered_seq = wal_->position().seq;
    const size_t retained = std::min(keep, gens.value().size());
    for (size_t i = 0; i < retained; ++i) {
      auto snap = ReadSnapshotFile(env_, dir_, gens.value()[i]);
      if (!snap.ok()) return;
      if (snap.value().wal_position.seq < min_covered_seq) {
        min_covered_seq = snap.value().wal_position.seq;
      }
    }
    auto seqs = ListWalSegments(env_, dir_);
    if (seqs.ok()) {
      for (uint64_t seq : seqs.value()) {
        if (seq < min_covered_seq) env_->DeleteFile(WalSegmentPath(dir_, seq));
      }
    }
    // A crash mid-write can leave a stale temp file behind.
    auto names = env_->ListDir(dir_);
    if (names.ok()) {
      for (const auto& name : names.value()) {
        if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
          env_->DeleteFile(dir_ + "/" + name);
        }
      }
    }
  }

  Env* env_;
  std::string dir_;
  EngineOptions options_;
  DurabilityOptions durability_;
  BurstEngine<PbeT> engine_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t generation_ = 0;
  WalPosition replicated_through_;
  const WalPosition* pending_source_ = nullptr;
};

/// The paper's two configurations, durable.
using DurableBurstEngine1 = DurableBurstEngine<Pbe1>;
using DurableBurstEngine2 = DurableBurstEngine<Pbe2>;

}  // namespace bursthist

#endif  // BURSTHIST_RECOVERY_DURABLE_ENGINE_H_
