#include "recovery/fault_env.h"

#include <algorithm>
#include <utility>

namespace bursthist {

namespace {

class FaultInjectionFile : public WritableFile {
 public:
  FaultInjectionFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(const uint8_t* data, size_t n) override {
    size_t persist_prefix = 0;
    if (env_->ShouldFail(n, &persist_prefix)) {
      if (persist_prefix > 0) {
        // Torn write: a prefix reaches the platter before the fault.
        Status st = base_->Append(data, std::min(persist_prefix, n));
        if (!st.ok()) return st;
      }
      return Status::IOError("injected fault: no space left on device");
    }
    return base_->Append(data, n);
  }
  using WritableFile::Append;

  Status Sync() override {
    if (env_->ShouldFailSync()) {
      return Status::IOError("injected fault: fsync failed");
    }
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

}  // namespace

bool FaultInjectionEnv::ShouldFail(size_t /*n*/, size_t* persist_prefix) {
  ++writes_issued_;
  if (write_observer_) write_observer_();
  if (transient_fail_remaining_ > 0) {
    // Transient outage: the write is lost whole, then the device
    // heals once the armed count is spent.
    --transient_fail_remaining_;
    *persist_prefix = 0;
    return true;
  }
  if (fail_at_write_ == 0 || fault_fired_ || writes_issued_ != fail_at_write_) {
    return false;
  }
  fault_fired_ = true;
  *persist_prefix = static_cast<size_t>(persist_prefix_);
  return true;
}

bool FaultInjectionEnv::ShouldFailSync() {
  ++syncs_issued_;
  if (sync_fail_at_ == 0 || sync_fault_fired_ ||
      syncs_issued_ != sync_fail_at_) {
    return false;
  }
  sync_fault_fired_ = true;
  return true;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultInjectionFile(this, std::move(base).value()));
}

Status TruncateFileTo(Env* env, const std::string& path, uint64_t keep_bytes) {
  auto size = env->FileSize(path);
  if (!size.ok()) return size.status();
  if (keep_bytes > size.value()) {
    return Status::InvalidArgument("keep_bytes exceeds file size");
  }
  return env->TruncateFile(path, keep_bytes);
}

Status FlipBit(Env* env, const std::string& path, uint64_t offset,
               unsigned bit) {
  auto bytes = env->ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  std::vector<uint8_t> buf = std::move(bytes).value();
  if (offset >= buf.size()) {
    return Status::InvalidArgument("bit-flip offset past end of file");
  }
  buf[offset] ^= static_cast<uint8_t>(1u << (bit & 7));
  auto file = env->NewWritableFile(path);
  if (!file.ok()) return file.status();
  BURSTHIST_RETURN_IF_ERROR(file.value()->Append(buf));
  BURSTHIST_RETURN_IF_ERROR(file.value()->Sync());
  return file.value()->Close();
}

}  // namespace bursthist
