// Deterministic fault injection behind the Env seam.
//
// FaultInjectionEnv forwards to a wrapped Env but can be armed to fail
// the Nth byte-write issued through any of its WritableFiles — either
// losing the write entirely (classic ENOSPC) or persisting only a
// prefix of it first (a torn write, as when power dies mid-sector).
// Each armed fault fires exactly once; the counter and fault state are
// explicit, so a test can sweep "fail write #1, #2, ... #k" and replay
// the identical workload each time.
//
// A "crash" in the tests is: run a workload against an armed
// FaultInjectionEnv until the fault fires (the durable layer surfaces
// kIOError), drop the writer objects, then recover from the directory
// with a clean Env — exactly what a process restart after ENOSPC /
// power loss sees. Post-hoc mutations (truncation, bit flips) model
// media corruption and are plain helpers over Env.

#ifndef BURSTHIST_RECOVERY_FAULT_ENV_H_
#define BURSTHIST_RECOVERY_FAULT_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/env.h"
#include "util/status.h"

namespace bursthist {

/// Env wrapper that can fail a chosen write. All non-write operations
/// forward untouched.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// Arms a one-shot fault: the `n`th WritableFile::Append issued
  /// through this env (1-based, counted across all files) returns
  /// kIOError after persisting only the first `persist_prefix_bytes`
  /// of its buffer (0 = nothing lands: pure ENOSPC; > 0 = torn
  /// write). The prefix is clamped to the buffer size.
  void FailNthWrite(uint64_t n, uint64_t persist_prefix_bytes = 0) {
    fail_at_write_ = n;
    persist_prefix_ = persist_prefix_bytes;
    writes_issued_ = 0;
    fault_fired_ = false;
  }

  /// Arms a TRANSIENT outage: the next `count` writes all fail with
  /// kIOError (nothing lands), after which the device "heals" and
  /// writes succeed again — the ENOSPC-that-clears scenario WAL append
  /// retry exists for. Independent of FailNthWrite().
  void FailWritesForNext(uint64_t count) { transient_fail_remaining_ = count; }

  /// Arms a one-shot fsync fault: the `n`th WritableFile::Sync issued
  /// through this env (1-based, across all files) returns kIOError.
  /// The data pages' fate is deliberately unspecified — exactly why a
  /// failed fsync must never be retried.
  void FailNthSync(uint64_t n) {
    sync_fail_at_ = n;
    syncs_issued_ = 0;
    sync_fault_fired_ = false;
  }

  /// Arms a one-shot directory-fsync fault: the `n`th SyncDir issued
  /// through this env (1-based) returns kIOError. Models the
  /// metadata-durability gap — data files land but the directory
  /// entry's persistence is unconfirmed.
  void FailNthDirSync(uint64_t n) {
    dir_sync_fail_at_ = n;
    dir_syncs_issued_ = 0;
    dir_sync_fault_fired_ = false;
  }

  /// Called on every write issued through this env, before the fault
  /// check — a seam for injecting latency (slow-disk simulation) or
  /// recording IO traces.
  void set_write_observer(std::function<void()> observer) {
    write_observer_ = std::move(observer);
  }

  /// Simulated external memory pressure in bytes. Not consulted by
  /// the Env itself: tests register it as a ResourceGovernor component
  /// (usage = memory_pressure(), no-op shed) to push a governed engine
  /// over its budget deterministically.
  void SetMemoryPressure(size_t bytes) { memory_pressure_ = bytes; }
  size_t memory_pressure() const { return memory_pressure_; }

  /// Disarms any pending fault (one-shot, transient, sync, and
  /// dir-sync).
  void Disarm() {
    fail_at_write_ = 0;
    transient_fail_remaining_ = 0;
    sync_fail_at_ = 0;
    dir_sync_fail_at_ = 0;
  }

  /// Writes issued through this env since the last FailNthWrite().
  uint64_t writes_issued() const { return writes_issued_; }

  /// Directory fsyncs issued through this env since the last
  /// FailNthDirSync().
  uint64_t dir_syncs_issued() const { return dir_syncs_issued_; }

  /// True once the armed fault has triggered.
  bool fault_fired() const { return fault_fired_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) override {
    return base_->ReadFileBytes(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return base_->CreateDirIfMissing(dir);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return base_->TruncateFile(path, size);
  }
  Status SyncDir(const std::string& dir) override {
    ++dir_syncs_issued_;
    if (dir_sync_fail_at_ != 0 && !dir_sync_fault_fired_ &&
        dir_syncs_issued_ == dir_sync_fail_at_) {
      dir_sync_fault_fired_ = true;
      return Status::IOError("injected fault: directory fsync failed");
    }
    return base_->SyncDir(dir);
  }

  /// Internal: called by the wrapper's WritableFiles for every write.
  /// Returns true when this write must fail, setting *persist_prefix
  /// to how many leading bytes still land (torn write).
  bool ShouldFail(size_t n, size_t* persist_prefix);

  /// Internal: called by the wrapper's WritableFiles for every Sync.
  /// Returns true when this fsync must fail.
  bool ShouldFailSync();

 private:
  Env* base_;
  uint64_t fail_at_write_ = 0;   // 0 = disarmed
  uint64_t persist_prefix_ = 0;
  uint64_t writes_issued_ = 0;
  bool fault_fired_ = false;
  uint64_t transient_fail_remaining_ = 0;
  uint64_t sync_fail_at_ = 0;    // 0 = disarmed
  uint64_t syncs_issued_ = 0;
  bool sync_fault_fired_ = false;
  uint64_t dir_sync_fail_at_ = 0;  // 0 = disarmed
  uint64_t dir_syncs_issued_ = 0;
  bool dir_sync_fault_fired_ = false;
  size_t memory_pressure_ = 0;
  std::function<void()> write_observer_;
};

/// Truncates `path` to its first `keep_bytes` bytes (media lost its
/// tail). No-op error if the file is already shorter.
Status TruncateFileTo(Env* env, const std::string& path, uint64_t keep_bytes);

/// Flips bit `bit` (0-7) of byte `offset` in `path`, rewriting the
/// file in place — a single-bit media error.
Status FlipBit(Env* env, const std::string& path, uint64_t offset,
               unsigned bit);

}  // namespace bursthist

#endif  // BURSTHIST_RECOVERY_FAULT_ENV_H_
