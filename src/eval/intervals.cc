#include "eval/intervals.h"

#include <algorithm>

namespace bursthist {

uint64_t CoveredTimestamps(const std::vector<TimeInterval>& intervals) {
  uint64_t total = 0;
  for (const auto& iv : intervals) {
    total += static_cast<uint64_t>(iv.end - iv.begin + 1);
  }
  return total;
}

uint64_t IntersectionSize(const std::vector<TimeInterval>& a,
                          const std::vector<TimeInterval>& b) {
  uint64_t total = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Timestamp lo = std::max(a[i].begin, b[j].begin);
    const Timestamp hi = std::min(a[i].end, b[j].end);
    if (lo <= hi) total += static_cast<uint64_t>(hi - lo + 1);
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

double IntervalJaccard(const std::vector<TimeInterval>& a,
                       const std::vector<TimeInterval>& b) {
  const uint64_t inter = IntersectionSize(a, b);
  const uint64_t uni = CoveredTimestamps(a) + CoveredTimestamps(b) - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double CoverageFraction(const std::vector<TimeInterval>& a,
                        const std::vector<TimeInterval>& b) {
  const uint64_t total = CoveredTimestamps(a);
  if (total == 0) return 1.0;
  return static_cast<double>(IntersectionSize(a, b)) /
         static_cast<double>(total);
}

}  // namespace bursthist
