// Interval-set metrics: comparing burst windows reported by different
// detectors / structures (used by the detector-agreement bench and the
// bursty-time evaluation).

#ifndef BURSTHIST_EVAL_INTERVALS_H_
#define BURSTHIST_EVAL_INTERVALS_H_

#include <cstdint>
#include <vector>

#include "core/burst_queries.h"
#include "stream/types.h"

namespace bursthist {

/// Total number of integer timestamps covered by the (disjoint,
/// sorted) interval set.
uint64_t CoveredTimestamps(const std::vector<TimeInterval>& intervals);

/// Timestamps covered by both sets (sets must be sorted & disjoint —
/// the shape BurstyTimes produces).
uint64_t IntersectionSize(const std::vector<TimeInterval>& a,
                          const std::vector<TimeInterval>& b);

/// Jaccard similarity |a ∩ b| / |a ∪ b| of the covered timestamp
/// sets; 1.0 when both are empty.
double IntervalJaccard(const std::vector<TimeInterval>& a,
                       const std::vector<TimeInterval>& b);

/// Fraction of a's covered timestamps also covered by b; 1.0 when a
/// is empty.
double CoverageFraction(const std::vector<TimeInterval>& a,
                        const std::vector<TimeInterval>& b);

}  // namespace bursthist

#endif  // BURSTHIST_EVAL_INTERVALS_H_
