// Evaluation methodology of Section VI: additive burstiness error for
// point queries (averaged over random query instants) and
// precision/recall for bursty-event detection.

#ifndef BURSTHIST_EVAL_METRICS_H_
#define BURSTHIST_EVAL_METRICS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "core/exact_store.h"
#include "stream/event_stream.h"
#include "stream/types.h"
#include "util/random.h"

namespace bursthist {

/// Summary of |b~ - b| over a set of point queries.
struct PointErrorStats {
  double mean_abs = 0.0;
  double max_abs = 0.0;
  double root_mean_square = 0.0;
  size_t queries = 0;
};

/// Accumulates PointErrorStats from individual absolute errors.
class ErrorAccumulator {
 public:
  void Add(double exact, double estimate) {
    const double err = std::abs(estimate - exact);
    sum_ += err;
    sum_sq_ += err * err;
    max_ = std::max(max_, err);
    ++count_;
  }

  PointErrorStats Stats() const {
    PointErrorStats s;
    s.queries = count_;
    if (count_ == 0) return s;
    s.mean_abs = sum_ / static_cast<double>(count_);
    s.root_mean_square = std::sqrt(sum_sq_ / static_cast<double>(count_));
    s.max_abs = max_;
    return s;
  }

 private:
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double max_ = 0.0;
  size_t count_ = 0;
};

/// `count` random query instants, uniform over [t_begin, t_end].
std::vector<Timestamp> SampleQueryTimes(Timestamp t_begin, Timestamp t_end,
                                        size_t count, Rng* rng);

/// Point-query error of a single-event model against the exact stream,
/// over the given query instants (the paper averages 100 random
/// queries).
template <typename Model>
PointErrorStats MeasurePointError(const Model& model,
                                  const SingleEventStream& exact,
                                  const std::vector<Timestamp>& query_times,
                                  Timestamp tau) {
  ErrorAccumulator acc;
  for (Timestamp t : query_times) {
    acc.Add(static_cast<double>(exact.BurstinessAt(t, tau)),
            model.EstimateBurstiness(t, tau));
  }
  return acc.Stats();
}

/// Point-query error of a multi-event model (CM-PBE / dyadic leaf)
/// against the exact store, over (event, time) query pairs.
template <typename Model>
PointErrorStats MeasurePointErrorMulti(
    const Model& model, const ExactBurstStore& exact,
    const std::vector<std::pair<EventId, Timestamp>>& queries,
    Timestamp tau) {
  ErrorAccumulator acc;
  for (const auto& [e, t] : queries) {
    acc.Add(static_cast<double>(exact.BurstinessAt(e, t, tau)),
            model.EstimateBurstiness(e, t, tau));
  }
  return acc.Stats();
}

/// Precision / recall of a reported id set against the exact one.
struct PrecisionRecall {
  double precision = 1.0;  ///< 1.0 when nothing is reported
  double recall = 1.0;     ///< 1.0 when nothing is relevant
  size_t reported = 0;
  size_t relevant = 0;
  size_t hits = 0;

  /// Harmonic mean; 0 when degenerate.
  double F1() const {
    return (precision + recall) > 0.0
               ? 2.0 * precision * recall / (precision + recall)
               : 0.0;
  }
};

/// Both inputs must be sorted ascending.
PrecisionRecall CompareIdSets(const std::vector<EventId>& reported,
                              const std::vector<EventId>& relevant);

/// Averages precision/recall across query results.
struct PrecisionRecallAverage {
  double precision = 0.0;
  double recall = 0.0;
  size_t queries = 0;

  void Add(const PrecisionRecall& pr) {
    precision += pr.precision;
    recall += pr.recall;
    ++queries;
  }
  double MeanPrecision() const {
    return queries ? precision / static_cast<double>(queries) : 0.0;
  }
  double MeanRecall() const {
    return queries ? recall / static_cast<double>(queries) : 0.0;
  }
};

}  // namespace bursthist

#endif  // BURSTHIST_EVAL_METRICS_H_
