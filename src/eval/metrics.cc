#include "eval/metrics.h"

namespace bursthist {

std::vector<Timestamp> SampleQueryTimes(Timestamp t_begin, Timestamp t_end,
                                        size_t count, Rng* rng) {
  std::vector<Timestamp> out;
  out.reserve(count);
  const uint64_t span = static_cast<uint64_t>(t_end - t_begin) + 1;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(t_begin + static_cast<Timestamp>(rng->NextBelow(span)));
  }
  return out;
}

PrecisionRecall CompareIdSets(const std::vector<EventId>& reported,
                              const std::vector<EventId>& relevant) {
  PrecisionRecall pr;
  pr.reported = reported.size();
  pr.relevant = relevant.size();
  size_t i = 0, j = 0, hits = 0;
  while (i < reported.size() && j < relevant.size()) {
    if (reported[i] == relevant[j]) {
      ++hits;
      ++i;
      ++j;
    } else if (reported[i] < relevant[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  pr.hits = hits;
  if (pr.reported > 0) {
    pr.precision = static_cast<double>(hits) / static_cast<double>(pr.reported);
  }
  if (pr.relevant > 0) {
    pr.recall = static_cast<double>(hits) / static_cast<double>(pr.relevant);
  }
  return pr;
}

}  // namespace bursthist
