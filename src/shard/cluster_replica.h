// ClusterReplica — a follower that tracks every shard of a sharded
// leader, one ReplicaEngine (own connection, own durable directory,
// own resume token) per shard.
//
//   auto follower = ClusterReplica<Pbe1>::Open(env, dir, engine_opts,
//                                              durability, base, cluster);
//   follower->Start();     // N apply threads, shard i follows
//                          // leader_port + i
//   ... serve reads from follower->AcquireSnapshot() ...
//   follower->Promote();   // failover: every shard checkpoints and
//                          // flips writable
//
// Port convention: a sharded leader ships shard i's WAL on
// repl_port + i (see `bursthist_cli serve --shards`), so the replica
// derives each shard's leader port from one base. The follower's own
// directory carries the same cluster manifest as a leader directory —
// following with a different topology than the leader produces
// shard-local histories that merge into nonsense, and the manifest
// check turns that operator error into FailedPrecondition at open.
//
// Consistency: shards apply independently, so the follower's shards
// can be at different leader positions at any instant — exactly the
// per-shard lag SHARDSTATS reports. lag() (the serving stamp) is the
// WORST shard's lag: an answer merged across shards is only as fresh
// as its stalest partition. Promote() promotes every shard; the
// cluster refuses writes (follower() == true) until ALL shards
// promoted, so a half-failed failover never forks one shard's
// history — re-issue PROMOTE to retry the shards still following.
//
// Locking: each ReplicaEngine keeps its own write mutex shared with
// its apply thread; every facade operation takes the touched shard's
// mutex. The serving layer additionally serializes its mutators on
// write_mu() (a cluster-level mutex), ordered strictly before any
// shard mutex — never the reverse — so the hierarchy is deadlock-free.

#ifndef BURSTHIST_SHARD_CLUSTER_REPLICA_H_
#define BURSTHIST_SHARD_CLUSTER_REPLICA_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "replication/replica_engine.h"
#include "shard/cluster_engine.h"
#include "shard/cluster_manifest.h"
#include "shard/shard_router.h"
#include "util/status.h"

namespace bursthist {
namespace shard {

template <typename PbeT>
class ClusterReplica {
 public:
  using Snapshot = ClusterSnapshot<PbeT>;

  /// Opens every shard's replica directory, all-or-fail, after the
  /// manifest topology check. `base.leader_port` is the FIRST shard's
  /// replication port; shard i follows base.leader_port + i.
  static Result<std::unique_ptr<ClusterReplica<PbeT>>> Open(
      Env* env, const std::string& dir,
      const BurstEngineOptions<PbeT>& engine_options,
      const DurabilityOptions& durability, const repl::ReplicaOptions& base,
      const ClusterOptions& cluster = ClusterOptions()) {
    BURSTHIST_RETURN_IF_ERROR(
        EnsureClusterTopology(env, dir, cluster.shards, cluster.hash_seed));
    std::unique_ptr<ClusterReplica<PbeT>> out(
        new ClusterReplica(engine_options, cluster));
    for (size_t i = 0; i < cluster.shards; ++i) {
      repl::ReplicaOptions opts = base;
      opts.leader_port = static_cast<uint16_t>(base.leader_port + i);
      auto r = repl::ReplicaEngine<PbeT>::Open(
          env, dir + "/" + ShardDirName(i), engine_options, durability, opts);
      if (!r.ok()) {
        return Status(r.status().code(),
                      ShardDirName(i) + " failed to open: " +
                          r.status().message());
      }
      out->shards_.push_back(std::move(r).value());
    }
    for (auto& s : out->shards_) {
      std::lock_guard<std::mutex> lock(*s->write_mu());
      const auto& engine = s->durable()->engine();
      if (engine.TotalCount() > 0) {
        out->started_ = true;
        out->last_time_ = std::max(out->last_time_, engine.Watermark());
      }
    }
    return out;
  }

  ~ClusterReplica() { Stop(); }
  ClusterReplica(const ClusterReplica&) = delete;
  ClusterReplica& operator=(const ClusterReplica&) = delete;

  /// Starts every shard's apply thread. On a failure the shards
  /// already started keep running (call Stop() to unwind).
  Status Start() {
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (Status st = shards_[i]->Start(); !st.ok()) {
        return Status(st.code(), ShardDirName(i) + " start: " + st.message());
      }
    }
    return Status::OK();
  }

  /// Stops every apply thread. Idempotent.
  void Stop() {
    for (auto& s : shards_) s->Stop();
  }

  /// Promotes every shard still following, in order. The first
  /// failure is returned but later shards are NOT attempted — the
  /// operator re-issues PROMOTE and already-promoted shards are
  /// skipped, so the retry converges.
  Status Promote() {
    if (!follower()) {
      return Status::FailedPrecondition("already promoted");
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (!shards_[i]->follower()) continue;
      if (Status st = shards_[i]->Promote(); !st.ok()) {
        return Status(st.code(),
                      ShardDirName(i) + " promote: " + st.message());
      }
    }
    return Status::OK();
  }

  /// True while ANY shard still follows: a partially promoted cluster
  /// must keep refusing writes, or the promoted shards would fork
  /// ahead of the still-replicating ones.
  bool follower() const {
    for (const auto& s : shards_) {
      if (s->follower()) return true;
    }
    return false;
  }

  /// Worst per-shard replication lag — the freshness stamp for
  /// answers merged across shards.
  Timestamp lag() const {
    Timestamp worst = 0;
    for (const auto& s : shards_) worst = std::max(worst, s->lag());
    return worst;
  }

  /// Total records applied across shards (the snapshot staleness
  /// token contribution).
  uint64_t applied_records() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s->applied_records();
    return total;
  }

  /// First sticky unrecoverable error across shards; OK while all
  /// healthy.
  Status last_error() {
    for (auto& s : shards_) {
      Status st = s->last_error();
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  /// The serving layer's mutator mutex (BurstServiceOptions's
  /// replica.write_mu). Cluster-level: apply threads do NOT hold it —
  /// every facade operation below takes the per-shard mutexes it
  /// needs internally.
  std::mutex* write_mu() { return &cluster_mu_; }

  // -- the serving duck surface (see server/ingest_server.h) --

  /// Routes one record (post-promotion writes). Same cluster-level
  /// validation as ClusterEngine::Append.
  Status Append(EventId e, Timestamp t, Count count = 1) {
    if (e >= options_.universe_size) {
      return Status::InvalidArgument("event id exceeds universe size");
    }
    if (options_.max_lateness == 0 && started_ && t < last_time_) {
      return Status::OutOfRange("timestamps must be non-decreasing");
    }
    auto& s = shards_[router_.ShardOf(e)];
    std::lock_guard<std::mutex> lock(*s->write_mu());
    BURSTHIST_RETURN_IF_ERROR(s->durable()->Append(e, t, count));
    started_ = true;
    last_time_ = std::max(last_time_, t);
    return Status::OK();
  }

  /// Record-at-a-time batch (failover writes are not the scaling hot
  /// path — a promoted cluster that needs leader-grade ingest restarts
  /// as `serve --shards` on the same directory). Deterministic prefix
  /// semantics: stops at the first rejected record.
  Status AppendBatch(std::span<const WeightedRecord> records,
                     size_t* applied = nullptr) {
    size_t n = 0;
    for (const WeightedRecord& r : records) {
      if (Status st = Append(r.id, r.time, r.count); !st.ok()) {
        if (applied != nullptr) *applied = n;
        return st;
      }
      ++n;
    }
    if (applied != nullptr) *applied = n;
    return Status::OK();
  }

  /// One view per shard. Unlike the leader, the per-shard captures
  /// interleave with apply threads (each under its shard's mutex), so
  /// the cut can straddle in-flight applies across shards — that skew
  /// IS the per-shard lag, and answers carry the worst of it.
  std::shared_ptr<const ClusterSnapshot<PbeT>> AcquireSnapshot(
      uint64_t sequence = 0) {
    std::vector<std::shared_ptr<const ReadSnapshot<PbeT>>> views;
    views.reserve(shards_.size());
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(*s->write_mu());
      views.push_back(s->durable()->engine().AcquireSnapshot(sequence));
    }
    return std::make_shared<const ClusterSnapshot<PbeT>>(
        router_, std::move(views), sequence);
  }

  Status Sync() {
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::lock_guard<std::mutex> lock(*shards_[i]->write_mu());
      if (Status st = shards_[i]->durable()->Sync(); !st.ok()) {
        return Status(st.code(), ShardDirName(i) + " sync: " + st.message());
      }
    }
    return Status::OK();
  }

  Status Checkpoint() {
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::lock_guard<std::mutex> lock(*shards_[i]->write_mu());
      if (Status st = shards_[i]->durable()->Checkpoint(); !st.ok()) {
        return Status(st.code(),
                      ShardDirName(i) + " checkpoint: " + st.message());
      }
    }
    return Status::OK();
  }

  uint64_t generation() const {
    uint64_t gen = 0;
    bool first = true;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(*s->write_mu());
      const uint64_t g = s->durable()->generation();
      gen = first ? g : std::min(gen, g);
      first = false;
    }
    return gen;
  }

  EventId universe_size() const { return options_.universe_size; }

  Count TotalCount() const {
    Count total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(*s->write_mu());
      total += s->durable()->engine().TotalCount();
    }
    return total;
  }

  Count BufferedCount() const {
    Count total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(*s->write_mu());
      total += s->durable()->engine().BufferedCount();
    }
    return total;
  }

  Timestamp Watermark() const {
    Timestamp w = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(*s->write_mu());
      w = std::max(w, s->durable()->engine().Watermark());
    }
    return w;
  }

  void PublishMetrics() const {
    BURSTHIST_GAUGE(m_count, obs::kShardCount);
    BURSTHIST_GAUGE(m_skew, obs::kShardWatermarkSkew);
    BURSTHIST_GAUGE(m_max_lag, obs::kShardMaxLag);
    Timestamp wm_min = 0;
    Timestamp wm_max = 0;
    bool first = true;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(*s->write_mu());
      s->durable()->engine().PublishMetrics();
      const Timestamp w = s->durable()->engine().Watermark();
      wm_min = first ? w : std::min(wm_min, w);
      wm_max = first ? w : std::max(wm_max, w);
      first = false;
    }
    m_count.Set(static_cast<double>(shards_.size()));
    m_skew.Set(static_cast<double>(wm_max - wm_min));
    m_max_lag.Set(static_cast<double>(lag()));
  }

  /// Per-shard stats, lag and applied-record counts included.
  std::vector<ShardStat> ShardStats() const {
    std::vector<ShardStat> out;
    out.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      const auto& s = shards_[i];
      ShardStat stat;
      stat.shard = i;
      stat.has_lag = true;
      stat.lag = s->lag();
      stat.applied = s->applied_records();
      {
        std::lock_guard<std::mutex> lock(*s->write_mu());
        stat.total = s->durable()->engine().TotalCount();
        stat.buffered = s->durable()->engine().BufferedCount();
        stat.watermark = s->durable()->engine().Watermark();
        stat.generation = s->durable()->generation();
        stat.wal_seq = s->durable()->wal_position().seq;
        stat.wal_offset = s->durable()->wal_position().offset;
      }
      out.push_back(stat);
    }
    return out;
  }

  size_t shard_count() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }
  repl::ReplicaEngine<PbeT>* shard(size_t i) { return shards_[i].get(); }

 private:
  ClusterReplica(const BurstEngineOptions<PbeT>& options,
                 const ClusterOptions& cluster)
      : options_(options), router_(cluster.shards, cluster.hash_seed) {}

  BurstEngineOptions<PbeT> options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<repl::ReplicaEngine<PbeT>>> shards_;
  std::mutex cluster_mu_;  // the serving layer's mutator mutex

  // Post-promotion write-path state; guarded by cluster_mu_ (the
  // serving layer holds it around every mutator).
  bool started_ = false;
  Timestamp last_time_ = 0;
};

}  // namespace shard
}  // namespace bursthist

#endif  // BURSTHIST_SHARD_CLUSTER_REPLICA_H_
