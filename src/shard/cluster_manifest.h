// The cluster manifest: the one file that pins a cluster directory's
// topology.
//
// Shard placement is a pure function of (hash seed, shard count) —
// see shard/shard_router.h — so opening an existing cluster directory
// with EITHER parameter changed would silently route every event id
// to the wrong shard's history: queries would merge partial
// histories and out-of-order rejection would misfire per shard. The
// manifest persists both parameters at creation; every later open
// reads it back and refuses a mismatch with FailedPrecondition
// instead of serving wrong answers.
//
// On-disk format (docs/FORMAT.md "Cluster manifest"):
//
//   magic "BCLM" u32 | version u32 | CrcFrame{ shard_count u32 |
//   hash_seed u64 }
//
// written atomically (temp + fsync + rename + dir fsync) exactly like
// a snapshot, so a crash during cluster creation leaves either no
// manifest (recovery re-creates the cluster) or a complete one.

#ifndef BURSTHIST_SHARD_CLUSTER_MANIFEST_H_
#define BURSTHIST_SHARD_CLUSTER_MANIFEST_H_

#include <cstdint>
#include <string>

#include "util/env.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {
namespace shard {

inline constexpr uint32_t kClusterManifestMagic = 0x4d4c4342;  // "BCLM"
inline constexpr uint32_t kClusterManifestVersion = 1;

struct ClusterManifest {
  uint32_t shard_count = 1;
  uint64_t hash_seed = 0;
};

inline std::string ClusterManifestPath(const std::string& dir) {
  return dir + "/cluster.manifest";
}

/// Atomically writes the manifest (temp + fsync + rename + dir
/// fsync). Called once, at cluster creation.
inline Status WriteClusterManifest(Env* env, const std::string& dir,
                                   const ClusterManifest& manifest) {
  BinaryWriter w;
  w.Put<uint32_t>(kClusterManifestMagic);
  w.Put<uint32_t>(kClusterManifestVersion);
  const size_t frame = CrcFrame::Begin(&w);
  w.Put<uint32_t>(manifest.shard_count);
  w.Put<uint64_t>(manifest.hash_seed);
  CrcFrame::End(&w, frame);

  const std::string path = ClusterManifestPath(dir);
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  Status s = file.value()->Append(w.bytes());
  if (s.ok()) s = file.value()->Sync();
  if (s.ok()) s = file.value()->Close();
  if (s.ok()) s = env->RenameFile(tmp, path);
  if (!s.ok()) {
    (void)env->DeleteFile(tmp);
    return s;
  }
  return env->SyncDir(dir);
}

/// Reads and checksum-verifies the manifest. NotFound when the file
/// does not exist (a fresh directory), Corruption on any damage.
inline Result<ClusterManifest> ReadClusterManifest(Env* env,
                                                   const std::string& dir) {
  const std::string path = ClusterManifestPath(dir);
  if (!env->FileExists(path)) {
    return Status::NotFound("no cluster manifest: " + path);
  }
  auto bytes = env->ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  BinaryReader r(bytes.value());
  uint32_t magic = 0;
  uint32_t version = 0;
  BURSTHIST_RETURN_IF_ERROR(r.Get(&magic));
  if (magic != kClusterManifestMagic) {
    return Status::Corruption("bad cluster manifest magic");
  }
  BURSTHIST_RETURN_IF_ERROR(r.Get(&version));
  if (version != kClusterManifestVersion) {
    return Status::Corruption("unsupported cluster manifest version " +
                              std::to_string(version));
  }
  size_t payload_end = 0;
  BURSTHIST_RETURN_IF_ERROR(CrcFrame::Enter(&r, &payload_end));
  ClusterManifest manifest;
  BURSTHIST_RETURN_IF_ERROR(r.Get(&manifest.shard_count));
  BURSTHIST_RETURN_IF_ERROR(r.Get(&manifest.hash_seed));
  BURSTHIST_RETURN_IF_ERROR(CrcFrame::Leave(&r, payload_end));
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after cluster manifest");
  }
  if (manifest.shard_count == 0) {
    return Status::Corruption("cluster manifest claims zero shards");
  }
  return manifest;
}

/// Shared open-path guard: verifies an existing manifest against the
/// requested topology (FailedPrecondition on mismatch) or writes a
/// fresh one for a new cluster directory. `shards`/`hash_seed` are
/// the parameters the caller is about to route with.
inline Status EnsureClusterTopology(Env* env, const std::string& dir,
                                    size_t shards, uint64_t hash_seed) {
  if (shards == 0) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  BURSTHIST_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
  auto manifest_or = ReadClusterManifest(env, dir);
  if (manifest_or.ok()) {
    const ClusterManifest& m = manifest_or.value();
    if (m.shard_count != shards || m.hash_seed != hash_seed) {
      return Status::FailedPrecondition(
          "cluster topology mismatch: directory has " +
          std::to_string(m.shard_count) + " shards (seed " +
          std::to_string(m.hash_seed) + "), open requested " +
          std::to_string(shards) + " (seed " + std::to_string(hash_seed) +
          ")");
    }
    return Status::OK();
  }
  if (manifest_or.status().code() != StatusCode::kNotFound) {
    return manifest_or.status();
  }
  ClusterManifest m;
  m.shard_count = static_cast<uint32_t>(shards);
  m.hash_seed = hash_seed;
  return WriteClusterManifest(env, dir, m);
}

}  // namespace shard
}  // namespace bursthist

#endif  // BURSTHIST_SHARD_CLUSTER_MANIFEST_H_
