// ClusterEngine — N durable burst-engine shards behind the
// single-engine Append/AppendBatch/query surface.
//
//   auto cluster = ClusterEngine<Pbe1>::Open(env, dir, engine_opts,
//                                            {.shards = 4});
//   cluster->AppendBatch(records);          // routed + fanned out
//   auto snap = cluster->AcquireSnapshot(); // one view per shard
//   auto hot = snap->BurstyEvent(t, theta, tau);  // scatter-gather
//
// Why this is sound: the router (shard/shard_router.h) places every
// event id in exactly one shard, so each shard holds a COMPLETE
// history for its id subset and the paper's dyadic θ-pruning rule
// (b_p² − 2·b_l·b_r < θ²) evaluates independently per shard.
// Scatter-gather is then:
//
//   POINT / FREQ / BTIME   route to the owning shard, answer as-is;
//   BEVENT                 fan out, push θ-pruning down per shard,
//                          union the disjoint ascending id sets;
//   TOPK                   per-shard top-k heaps (each shard already
//                          returns its k best), merged descending and
//                          cut at the global k-th value.
//
// Layout on disk: <dir>/cluster.manifest pins (shard count, hash
// seed); <dir>/shard-000 ... shard-NNN are ordinary DurableBurstEngine
// directories — each with its own WAL and snapshot chain, each
// recoverable, scrubbable, and replicatable on its own. Open() is
// all-shards-or-fail: a cluster where one shard silently failed
// recovery would serve query answers missing that shard's id subset.
//
// Threading matches the single engine's contract: one writer thread
// calls the mutators and AcquireSnapshot; queries run on immutable
// ClusterSnapshot views from any thread. Internally AppendBatch fans
// each batch out to per-shard ingest workers (one MPSC ring + thread
// per shard) and waits for all sub-batches, so WAL framing, fsync and
// the SoA sketch kernels of different shards run in parallel while
// the external single-writer discipline is preserved.

#ifndef BURSTHIST_SHARD_CLUSTER_ENGINE_H_
#define BURSTHIST_SHARD_CLUSTER_ENGINE_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/burst_engine.h"
#include "core/read_snapshot.h"
#include "governor/resource_governor.h"
#include "obs/metrics.h"
#include "recovery/durable_engine.h"
#include "shard/cluster_manifest.h"
#include "shard/shard_router.h"
#include "util/env.h"
#include "util/mpsc_ring.h"
#include "util/status.h"

namespace bursthist {
namespace shard {

/// Cluster topology and ingest tuning.
struct ClusterOptions {
  /// Shard count. Persisted in the manifest at creation; a later Open
  /// with a different value is refused.
  size_t shards = 1;
  /// Router hash seed; persisted alongside the shard count.
  uint64_t hash_seed = kDefaultShardHashSeed;
  /// Run one ingest worker (MPSC ring + thread) per shard so
  /// AppendBatch sub-batches ingest in parallel. Off: sub-batches run
  /// serially on the caller thread (deterministic single-threaded
  /// mode for tests and tiny universes).
  bool parallel_ingest = true;
  /// Capacity of each per-shard ingest ring (jobs, rounded up to a
  /// power of two). One job per AppendBatch call, so tiny is plenty.
  size_t shard_ring_capacity = 16;
};

/// Immutable scatter-gather query view: one ReadSnapshot per shard,
/// captured at the same writer-thread instant. Mirrors the
/// ReadSnapshot surface so the serving layer treats both uniformly.
///
/// Answer stamps: every answer carries the CLUSTER watermark (the
/// max over shards — event e having no records past its shard's
/// watermark is data, not staleness). Routed answers keep the owning
/// shard's error bound (tighter than the single-engine bound, since
/// the shard's N is smaller); fanned-out answers carry the worst
/// per-shard bound.
template <typename PbeT>
class ClusterSnapshot {
 public:
  ClusterSnapshot(const ShardRouter& router,
                  std::vector<std::shared_ptr<const ReadSnapshot<PbeT>>> views,
                  uint64_t sequence)
      : router_(router), views_(std::move(views)), sequence_(sequence) {
    for (const auto& v : views_) {
      watermark_ = std::max(watermark_, v->watermark());
      total_count_ += v->total_count();
      const EffectiveErrorBound& b = v->bound();
      if (b.point_bound >= bound_.point_bound) bound_ = b;
    }
  }

  SnapshotAnswer<double> Point(EventId e, Timestamp t, Timestamp tau) const {
    return Restamp(Route(e).Point(e, t, tau));
  }

  SnapshotAnswer<double> Cumulative(EventId e, Timestamp t) const {
    return Restamp(Route(e).Cumulative(e, t));
  }

  SnapshotAnswer<double> Frequency(EventId e, Timestamp t1,
                                   Timestamp t2) const {
    return Restamp(Route(e).Frequency(e, t1, t2));
  }

  SnapshotAnswer<std::vector<TimeInterval>> BurstyTime(EventId e, double theta,
                                                       Timestamp tau) const {
    return Restamp(Route(e).BurstyTime(e, theta, tau));
  }

  /// BURSTY EVENT scatter-gather: θ-pruning runs inside each shard's
  /// dyadic index, and the per-shard candidate sets are disjoint
  /// (each id has one home), so the merge is a sort of the
  /// concatenation — no dedup, no re-check.
  SnapshotAnswer<std::vector<EventId>> BurstyEvent(Timestamp t, double theta,
                                                   Timestamp tau) const {
    return Scatter([&](const ReadSnapshot<PbeT>& v) {
      return v.BurstyEvent(t, theta, tau).value;
    });
  }

  SnapshotAnswer<std::vector<EventId>> FrequentBurstyEvent(
      Timestamp t, double theta, Timestamp tau, double min_frequency) const {
    return Scatter([&](const ReadSnapshot<PbeT>& v) {
      return v.FrequentBurstyEvent(t, theta, tau, min_frequency).value;
    });
  }

  /// TOP-K scatter-gather: each shard's best-first search already
  /// yields its own top-k heap; the global answer is the k best of
  /// the union (ids are disjoint across shards). Ties at the k-th
  /// value break by ascending id, deterministically.
  SnapshotAnswer<std::vector<std::pair<EventId, double>>> TopK(
      Timestamp t, size_t k, Timestamp tau) const {
    BURSTHIST_COUNTER(m_fanout, obs::kShardQueryFanoutTotal);
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kShardScatterLatencySeconds);
    obs::TraceSpan span(m_lat, "shard_scatter_topk");
    std::vector<std::pair<EventId, double>> merged;
    for (const auto& v : views_) {
      auto part = v->TopK(t, k, tau).value;
      merged.insert(merged.end(), part.begin(), part.end());
    }
    m_fanout.Inc(views_.size());
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (merged.size() > k) merged.resize(k);
    return SnapshotAnswer<std::vector<std::pair<EventId, double>>>{
        std::move(merged), watermark_, bound_};
  }

  /// Per-shard view, for callers that need the raw partition (tests,
  /// serialization checks).
  const ReadSnapshot<PbeT>& shard_view(size_t shard) const {
    return *views_[shard];
  }
  size_t shard_count() const { return views_.size(); }

  Timestamp watermark() const { return watermark_; }
  Count total_count() const { return total_count_; }
  const EffectiveErrorBound& bound() const { return bound_; }
  uint64_t sequence() const { return sequence_; }

 private:
  const ReadSnapshot<PbeT>& Route(EventId e) const {
    return *views_[router_.ShardOf(e)];
  }

  template <typename T>
  SnapshotAnswer<T> Restamp(SnapshotAnswer<T> ans) const {
    ans.watermark = watermark_;
    return ans;
  }

  /// Fans an id-set query out to every shard and unions the disjoint
  /// ascending results.
  template <typename Fn>
  SnapshotAnswer<std::vector<EventId>> Scatter(Fn&& per_shard) const {
    BURSTHIST_COUNTER(m_fanout, obs::kShardQueryFanoutTotal);
    BURSTHIST_LATENCY_HISTOGRAM(m_lat, obs::kShardScatterLatencySeconds);
    obs::TraceSpan span(m_lat, "shard_scatter_events");
    std::vector<EventId> merged;
    for (const auto& v : views_) {
      std::vector<EventId> part = per_shard(*v);
      merged.insert(merged.end(), part.begin(), part.end());
    }
    m_fanout.Inc(views_.size());
    std::sort(merged.begin(), merged.end());
    return SnapshotAnswer<std::vector<EventId>>{std::move(merged), watermark_,
                                                bound_};
  }

  ShardRouter router_;
  std::vector<std::shared_ptr<const ReadSnapshot<PbeT>>> views_;
  uint64_t sequence_;
  Timestamp watermark_ = 0;
  Count total_count_ = 0;
  EffectiveErrorBound bound_;
};

/// The cluster facade: owns N DurableBurstEngine shards and exposes
/// the single-engine mutation/query/maintenance surface (the serving
/// layer is templated on exactly this duck type).
template <typename PbeT>
class ClusterEngine {
 public:
  using EngineOptions = BurstEngineOptions<PbeT>;
  using Snapshot = ClusterSnapshot<PbeT>;

  /// Opens (or creates) a cluster directory: manifest check first —
  /// topology is pinned at creation and a mismatched reopen is
  /// refused — then every shard recovers, all-or-fail.
  static Result<std::unique_ptr<ClusterEngine<PbeT>>> Open(
      Env* env, const std::string& dir, const EngineOptions& options,
      const ClusterOptions& cluster = ClusterOptions(),
      const DurabilityOptions& durability = DurabilityOptions()) {
    BURSTHIST_RETURN_IF_ERROR(
        EnsureClusterTopology(env, dir, cluster.shards, cluster.hash_seed));

    std::unique_ptr<ClusterEngine<PbeT>> out(
        new ClusterEngine(env, dir, options, cluster));
    for (size_t i = 0; i < cluster.shards; ++i) {
      auto s = DurableBurstEngine<PbeT>::Open(env, dir + "/" + ShardDirName(i),
                                              options, durability);
      if (!s.ok()) {
        return Status(s.status().code(),
                      ShardDirName(i) + " failed to open: " +
                          s.status().message());
      }
      out->shards_.push_back(std::move(s).value());
    }
    // Global monotonicity resumes where the merged history ended: the
    // max shard watermark is the last accepted arrival time.
    for (const auto& s : out->shards_) {
      const Timestamp w = s->engine().Watermark();
      if (s->engine().TotalCount() > 0) {
        out->started_ = true;
        out->last_time_ = std::max(out->last_time_, w);
      }
    }
    if (cluster.parallel_ingest && cluster.shards > 1) out->StartWorkers();
    return out;
  }

  ~ClusterEngine() { StopWorkers(); }
  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  /// Routes one record to its shard. Validation mirrors the single
  /// engine at cluster scope: out-of-range ids are InvalidArgument,
  /// and with max_lateness == 0 the GLOBAL arrival order must be
  /// non-decreasing (per-shard order alone would accept interleavings
  /// a single engine rejects). With lateness > 0 each shard buffers
  /// and re-orders against its own watermark.
  Status Append(EventId e, Timestamp t, Count count = 1) {
    if (e >= options_.universe_size) {
      return Status::InvalidArgument("event id exceeds universe size");
    }
    if (options_.max_lateness == 0 && started_ && t < last_time_) {
      return Status::OutOfRange("timestamps must be non-decreasing");
    }
    BURSTHIST_RETURN_IF_ERROR(shards_[router_.ShardOf(e)]->Append(e, t, count));
    started_ = true;
    last_time_ = std::max(last_time_, t);
    return Status::OK();
  }

  /// Batch ingest: validates the deterministic global prefix (same
  /// rules as Append, plus each shard's lateness window), partitions
  /// it into order-preserving per-shard sub-batches, and dispatches
  /// them to the shard workers in parallel. Equal-(id,time) runs stay
  /// intact inside one shard's sub-batch, so each shard's SoA
  /// coalescing sees exactly the records a dedicated engine would.
  ///
  /// `applied` counts records applied across shards. On a validation
  /// stop this is the global prefix length, exactly like the single
  /// engine. On a shard WAL/IO failure the OTHER shards' sub-batches
  /// still complete, so the applied set is a union of per-shard
  /// prefixes rather than one global prefix — the failing shard's WAL
  /// is poisoned at that point and the cluster is effectively
  /// read-only (see read_only()).
  Status AppendBatch(std::span<const WeightedRecord> records,
                     size_t* applied = nullptr) {
    BURSTHIST_COUNTER(m_fanout, obs::kShardBatchFanoutTotal);
    if (applied != nullptr) *applied = 0;
    if (records.empty()) return Status::OK();

    // Deterministic prefix: stop at the first record any shard would
    // refuse, BEFORE dispatching, so partial application is never
    // interleaved across shards on the validation path.
    Status stop = Status::OK();
    size_t valid = 0;
    {
      bool running_started = started_;
      Timestamp running_last = last_time_;
      EnsureShardScratch();
      for (size_t i = 0; i < shards_.size(); ++i) {
        shard_watermark_[i] = shards_[i]->engine().Watermark();
        shard_seen_[i] = shards_[i]->engine().TotalCount() > 0 ||
                         shards_[i]->engine().BufferedCount() > 0;
      }
      for (; valid < records.size(); ++valid) {
        const WeightedRecord& r = records[valid];
        if (r.id >= options_.universe_size) {
          stop = Status::InvalidArgument("event id exceeds universe size");
          break;
        }
        const size_t s = router_.ShardOf(r.id);
        if (options_.max_lateness == 0) {
          if (running_started && r.time < running_last) {
            stop = Status::OutOfRange("timestamps must be non-decreasing");
            break;
          }
          running_started = true;
          running_last = std::max(running_last, r.time);
        } else {
          if (shard_seen_[s] &&
              r.time < shard_watermark_[s] - options_.max_lateness) {
            stop = Status::OutOfRange("record arrived beyond max_lateness");
            break;
          }
          shard_seen_[s] = true;
          shard_watermark_[s] = std::max(shard_watermark_[s], r.time);
        }
      }
    }

    // Partition the prefix, preserving arrival order within each
    // shard (a subsequence of a globally ordered stream is ordered).
    for (auto& part : parts_) part.clear();
    Timestamp max_time = last_time_;
    for (size_t i = 0; i < valid; ++i) {
      const WeightedRecord& r = records[i];
      parts_[router_.ShardOf(r.id)].push_back(r);
      max_time = std::max(max_time, r.time);
    }

    size_t dispatched = 0;
    for (const auto& part : parts_) {
      if (!part.empty()) ++dispatched;
    }
    size_t applied_total = 0;
    Status dispatch = DispatchParts(&applied_total);
    if (applied != nullptr) *applied = applied_total;
    if (applied_total > 0) {
      started_ = true;
      last_time_ = max_time;
    }
    if (dispatched > 0) m_fanout.Inc(dispatched);
    if (!dispatch.ok()) return dispatch;
    return stop;
  }

  /// Routes a whole stream through the batched path, in fixed-size
  /// chunks like the single engine's serial path.
  Status AppendStream(const EventStream& stream) {
    const auto& records = stream.records();
    constexpr size_t kChunk = 4096;
    std::vector<WeightedRecord> chunk;
    for (size_t begin = 0; begin < records.size(); begin += kChunk) {
      const size_t n = std::min(kChunk, records.size() - begin);
      chunk.resize(n);
      for (size_t i = 0; i < n; ++i) {
        chunk[i] = WeightedRecord{records[begin + i].id,
                                  records[begin + i].time, 1};
      }
      size_t applied = 0;
      BURSTHIST_RETURN_IF_ERROR(AppendBatch(chunk, &applied));
    }
    return Status::OK();
  }

  /// One immutable view per shard, captured back-to-back on the
  /// writer thread (no appends can interleave — single-writer
  /// contract), so the cluster snapshot is one consistent cut.
  std::shared_ptr<const ClusterSnapshot<PbeT>> AcquireSnapshot(
      uint64_t sequence = 0) {
    std::vector<std::shared_ptr<const ReadSnapshot<PbeT>>> views;
    views.reserve(shards_.size());
    for (auto& s : shards_) {
      views.push_back(s->engine().AcquireSnapshot(sequence));
    }
    return std::make_shared<const ClusterSnapshot<PbeT>>(
        router_, std::move(views), sequence);
  }

  // Convenience pass-throughs for callers (tests, benches) that query
  // the cluster directly rather than through a snapshot.
  double PointQuery(EventId e, Timestamp t, Timestamp tau) const {
    return shards_[router_.ShardOf(e)]->engine().PointQuery(e, t, tau);
  }
  double FrequencyQuery(EventId e, Timestamp t1, Timestamp t2) const {
    return shards_[router_.ShardOf(e)]->engine().FrequencyQuery(e, t1, t2);
  }
  std::vector<TimeInterval> BurstyTimeQuery(EventId e, double theta,
                                            Timestamp tau) const {
    return shards_[router_.ShardOf(e)]->engine().BurstyTimeQuery(e, theta,
                                                                 tau);
  }
  std::vector<EventId> BurstyEventQuery(Timestamp t, double theta,
                                        Timestamp tau) const {
    std::vector<EventId> merged;
    for (const auto& s : shards_) {
      auto part = s->engine().BurstyEventQuery(t, theta, tau);
      merged.insert(merged.end(), part.begin(), part.end());
    }
    std::sort(merged.begin(), merged.end());
    return merged;
  }

  /// Checkpoints every shard (each rotates its own WAL and writes its
  /// own snapshot). A failure stops at the failing shard; the shards
  /// already checkpointed keep their new generation — checkpoints are
  /// independent and idempotent per shard.
  Status Checkpoint() {
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (Status st = shards_[i]->Checkpoint(); !st.ok()) {
        return Status(st.code(),
                      ShardDirName(i) + " checkpoint: " + st.message());
      }
    }
    return Status::OK();
  }

  /// fsyncs every shard's WAL.
  Status Sync() {
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (Status st = shards_[i]->Sync(); !st.ok()) {
        return Status(st.code(), ShardDirName(i) + " sync: " + st.message());
      }
    }
    return Status::OK();
  }

  /// True once ANY shard went read-only (poisoned WAL): the cluster
  /// cannot accept a record whose home shard cannot log it, and
  /// accepting only off-shard records would fork the global order.
  bool read_only() const {
    for (const auto& s : shards_) {
      if (s->read_only()) return true;
    }
    return false;
  }

  /// Scrubs every shard directory and merges the reports; issue file
  /// names are prefixed with their shard directory.
  Result<ScrubReport> Scrub(const ScrubOptions& opts = ScrubOptions()) {
    ScrubReport merged;
    for (size_t i = 0; i < shards_.size(); ++i) {
      auto report = shards_[i]->Scrub(opts);
      if (!report.ok()) return report.status();
      const ScrubReport& r = report.value();
      merged.wal_segments_checked += r.wal_segments_checked;
      merged.wal_records_checked += r.wal_records_checked;
      merged.snapshots_checked += r.snapshots_checked;
      merged.corrupt_files += r.corrupt_files;
      merged.quarantined_now += r.quarantined_now;
      merged.quarantined_present += r.quarantined_present;
      merged.tail_torn = merged.tail_torn || r.tail_torn;
      for (ScrubIssue issue : r.issues) {
        issue.file = ShardDirName(i) + "/" + issue.file;
        merged.issues.push_back(std::move(issue));
      }
    }
    return merged;
  }

  // -- aggregate single-engine surface (the serving duck type) --

  EventId universe_size() const { return options_.universe_size; }

  Count TotalCount() const {
    Count total = 0;
    for (const auto& s : shards_) total += s->engine().TotalCount();
    return total;
  }

  Count BufferedCount() const {
    Count total = 0;
    for (const auto& s : shards_) total += s->engine().BufferedCount();
    return total;
  }

  /// Cluster watermark: the max over shards — the last globally
  /// accepted arrival time, matching the single engine's Watermark().
  Timestamp Watermark() const {
    Timestamp w = 0;
    for (const auto& s : shards_) w = std::max(w, s->engine().Watermark());
    return w;
  }

  /// Cluster generation: the MINIMUM shard generation — the
  /// conservative answer to "how much checkpoint progress is
  /// guaranteed everywhere".
  uint64_t generation() const {
    uint64_t gen = shards_.empty() ? 0 : shards_[0]->generation();
    for (const auto& s : shards_) gen = std::min(gen, s->generation());
    return gen;
  }

  /// Publishes per-shard engine gauges, then overwrites the
  /// scan-priced engine gauges with cluster aggregates (resident
  /// bytes sum across shards; the bound and cell-mass gauges take the
  /// worst shard) and sets the bursthist_shard_* gauges. Per-shard
  /// numbers go through ShardStats()/SHARDSTATS — the registry is
  /// label-less by design.
  void PublishMetrics() const {
    BURSTHIST_GAUGE(m_count, obs::kShardCount);
    BURSTHIST_GAUGE(m_skew, obs::kShardWatermarkSkew);
    BURSTHIST_GAUGE(m_resident, obs::kEngineResidentBytes);
    BURSTHIST_GAUGE(m_bound, obs::kEffectivePointBound);
    size_t resident = 0;
    double worst_bound = 0.0;
    Timestamp wm_min = 0;
    Timestamp wm_max = 0;
    bool first = true;
    for (const auto& s : shards_) {
      s->engine().PublishMetrics();
      resident += s->engine().MemoryUsage();
      worst_bound =
          std::max(worst_bound, s->engine().EffectivePointBound().point_bound);
      const Timestamp w = s->engine().Watermark();
      wm_min = first ? w : std::min(wm_min, w);
      wm_max = first ? w : std::max(wm_max, w);
      first = false;
    }
    m_count.Set(static_cast<double>(shards_.size()));
    m_skew.Set(static_cast<double>(wm_max - wm_min));
    m_resident.Set(static_cast<double>(resident));
    m_bound.Set(worst_bound);
  }

  /// Registers every shard's engine with the governor, one component
  /// per shard ("shard-000", ...): each shard audits and sheds its
  /// own slice of the budget, so a hot shard degrades alone instead
  /// of dragging every partition down the ladder.
  void RegisterComponents(ResourceGovernor* governor) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      auto* engine = &shards_[i]->engine();
      governor->RegisterComponent(
          ShardDirName(i), [engine] { return engine->MemoryUsage(); },
          [engine](double factor) { engine->Degrade(factor); });
    }
  }

  /// Per-shard stats for SHARDSTATS (the label-less registry cannot
  /// carry per-shard series).
  std::vector<ShardStat> ShardStats() const {
    std::vector<ShardStat> out;
    out.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      const auto& s = shards_[i];
      ShardStat stat;
      stat.shard = i;
      stat.total = s->engine().TotalCount();
      stat.buffered = s->engine().BufferedCount();
      stat.watermark = s->engine().Watermark();
      stat.generation = s->generation();
      stat.wal_seq = s->wal_position().seq;
      stat.wal_offset = s->wal_position().offset;
      out.push_back(stat);
    }
    return out;
  }

  size_t shard_count() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }
  DurableBurstEngine<PbeT>* shard(size_t i) { return shards_[i].get(); }
  const DurableBurstEngine<PbeT>* shard(size_t i) const {
    return shards_[i].get();
  }

 private:
  // One sub-batch dispatched to one shard worker. Lives on the
  // caller's stack; the caller waits on `cv` until the worker marks
  // it done, exactly like the serving layer's IngestJob.
  struct ShardJob {
    std::span<const WeightedRecord> records;
    size_t applied = 0;
    Status status;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;  // guarded by mu
  };

  // One ingest worker per shard: an MPSC ring of jobs drained by a
  // dedicated thread, so N shards fsync and ingest concurrently.
  struct Worker {
    explicit Worker(size_t ring_capacity) : ring(ring_capacity) {}
    MpscRing<ShardJob*> ring;
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    bool shutdown = false;  // guarded by mu
  };

  ClusterEngine(Env* env, std::string dir, const EngineOptions& options,
                const ClusterOptions& cluster)
      : env_(env),
        dir_(std::move(dir)),
        options_(options),
        cluster_(cluster),
        router_(cluster.shards, cluster.hash_seed),
        parts_(cluster.shards) {}

  void EnsureShardScratch() {
    if (shard_watermark_.size() != shards_.size()) {
      shard_watermark_.assign(shards_.size(), 0);
      shard_seen_.assign(shards_.size(), 0);
    }
  }

  void StartWorkers() {
    workers_.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      workers_.push_back(std::make_unique<Worker>(cluster_.shard_ring_capacity));
      Worker* w = workers_.back().get();
      DurableBurstEngine<PbeT>* shard = shards_[i].get();
      w->thread = std::thread([w, shard] { WorkerLoop(w, shard); });
    }
  }

  void StopWorkers() {
    for (auto& w : workers_) {
      {
        std::lock_guard<std::mutex> lock(w->mu);
        w->shutdown = true;
      }
      w->cv.notify_all();
    }
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
    workers_.clear();
  }

  static void WorkerLoop(Worker* w, DurableBurstEngine<PbeT>* shard) {
    for (;;) {
      ShardJob* job = nullptr;
      if (!w->ring.Pop(&job)) {
        std::unique_lock<std::mutex> lock(w->mu);
        w->cv.wait(lock,
                   [w] { return w->shutdown || w->ring.ApproxSize() > 0; });
        if (w->shutdown && w->ring.ApproxSize() == 0) return;
        continue;
      }
      job->status = shard->AppendBatch(job->records, &job->applied);
      {
        // Notify under the job mutex: the job lives on the caller's
        // stack and is destroyed the moment its wait returns.
        std::lock_guard<std::mutex> lock(job->mu);
        job->done = true;
        job->cv.notify_one();
      }
    }
  }

  // Runs the partitioned sub-batches (parts_) to completion — through
  // the per-shard workers when they are up, serially otherwise — and
  // sums the applied counts. Returns the first failing shard's status.
  Status DispatchParts(size_t* applied_total) {
    Status first_error = Status::OK();
    if (!workers_.empty()) {
      std::vector<std::unique_ptr<ShardJob>> jobs(shards_.size());
      for (size_t i = 0; i < shards_.size(); ++i) {
        if (parts_[i].empty()) continue;
        jobs[i] = std::make_unique<ShardJob>();
        jobs[i]->records = std::span<const WeightedRecord>(parts_[i]);
        ShardJob* ptr = jobs[i].get();
        while (!workers_[i]->ring.TryPush(ptr)) {
          std::this_thread::yield();
        }
        {
          // Pairs with the worker's predicate wait (see the serving
          // layer's ring hand-off for the full argument).
          std::lock_guard<std::mutex> lock(workers_[i]->mu);
        }
        workers_[i]->cv.notify_one();
      }
      for (size_t i = 0; i < shards_.size(); ++i) {
        if (jobs[i] == nullptr) continue;
        std::unique_lock<std::mutex> lock(jobs[i]->mu);
        jobs[i]->cv.wait(lock, [&] { return jobs[i]->done; });
        *applied_total += jobs[i]->applied;
        if (first_error.ok() && !jobs[i]->status.ok()) {
          first_error = Status(jobs[i]->status.code(),
                               ShardDirName(i) + ": " +
                                   jobs[i]->status.message());
        }
      }
      return first_error;
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (parts_[i].empty()) continue;
      size_t applied = 0;
      Status st = shards_[i]->AppendBatch(
          std::span<const WeightedRecord>(parts_[i]), &applied);
      *applied_total += applied;
      if (first_error.ok() && !st.ok()) {
        first_error =
            Status(st.code(), ShardDirName(i) + ": " + st.message());
      }
    }
    return first_error;
  }

  Env* env_;
  std::string dir_;
  EngineOptions options_;
  ClusterOptions cluster_;
  ShardRouter router_;
  std::vector<std::unique_ptr<DurableBurstEngine<PbeT>>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Writer-thread state (single-writer contract, like the engine).
  bool started_ = false;
  Timestamp last_time_ = 0;
  std::vector<std::vector<WeightedRecord>> parts_;  // batch scratch
  std::vector<Timestamp> shard_watermark_;          // validation scratch
  std::vector<uint8_t> shard_seen_;                 // validation scratch
};

}  // namespace shard
}  // namespace bursthist

#endif  // BURSTHIST_SHARD_CLUSTER_ENGINE_H_
