// Event-id hash routing for a sharded cluster of burst engines.
//
// The paper's dyadic decomposition makes every query surface
// partition-mergeable as long as each event's COMPLETE history lives
// in exactly one partition: POINT/FREQ/BTIME answers route to the
// owning shard unchanged, and BURSTY EVENT candidate sets from
// disjoint id subsets union without double counting (the θ-pruning
// rule b_p² − 2·b_l·b_r < θ² evaluates per shard, so the pushdown
// loses nothing). Hash partitioning by event id gives exactly that
// invariant — hence this router, the one piece of policy every other
// shard-layer component (engine facade, replica facade, manifest)
// must agree on.
//
// The placement is a pure function of (id, seed, shard count): no
// directory service, no rebalancing state. Changing either parameter
// re-homes ids, which is why both are persisted in the cluster
// manifest and verified on every open (see shard/cluster_manifest.h).

#ifndef BURSTHIST_SHARD_SHARD_ROUTER_H_
#define BURSTHIST_SHARD_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "hash/hash.h"
#include "stream/types.h"

namespace bursthist {
namespace shard {

/// Default seed folded into the router hash. Distinct from any sketch
/// seed so shard placement never correlates with Count-Min row
/// placement (correlated placement would concentrate the heavy
/// colliders of one sketch row in one shard).
inline constexpr uint64_t kDefaultShardHashSeed = 0x5ba9d00fcafe17ull;

/// Maps event ids to shard indices: Mix64(id ^ seed) mod shards.
/// Mix64 is a full-avalanche finalizer, so consecutive ids spread
/// uniformly even under the modulo.
class ShardRouter {
 public:
  ShardRouter(size_t shards, uint64_t seed = kDefaultShardHashSeed)
      : shards_(shards == 0 ? 1 : shards), seed_(seed) {}

  size_t ShardOf(EventId e) const {
    if (shards_ == 1) return 0;
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(e) ^ seed_) %
                               shards_);
  }

  size_t shards() const { return shards_; }
  uint64_t seed() const { return seed_; }

 private:
  size_t shards_;
  uint64_t seed_;
};

/// Subdirectory name of one shard inside a cluster directory
/// ("shard-000", "shard-001", ...).
inline std::string ShardDirName(size_t shard) {
  char name[32];  // "shard-" + up to 20 digits + NUL
  std::snprintf(name, sizeof(name), "shard-%03llu",
                static_cast<unsigned long long>(shard));
  return name;
}

/// One row of a SHARDSTATS reply / ShardStats() call: the per-shard
/// numbers the label-less process metrics registry cannot carry.
/// `lag`/`applied` are only meaningful on a replica (has_lag set).
struct ShardStat {
  size_t shard = 0;
  Count total = 0;
  Count buffered = 0;
  Timestamp watermark = 0;
  uint64_t generation = 0;
  uint64_t wal_seq = 0;
  uint64_t wal_offset = 0;
  bool has_lag = false;
  Timestamp lag = 0;
  uint64_t applied = 0;
};

}  // namespace shard
}  // namespace bursthist

#endif  // BURSTHIST_SHARD_SHARD_ROUTER_H_
