// Cold-curve eviction through the Env seam.
//
// A long history accumulates one PBE curve per event id that ever
// appeared. Most ids go cold — they stop arriving but their curves
// stay resident forever. PbeCurveCache bounds the resident set: each
// event's curve lives in memory while hot, and under memory pressure
// the coldest curves are *spilled* — serialized to one file per event
// through the same Env seam the recovery subsystem uses (so
// FaultInjectionEnv can starve it of disk space in tests) — and
// transparently reloaded on the next access.
//
// The spill never loses data: a curve leaves memory only after its
// bytes are durably renamed into place; any IO failure keeps the
// curve resident and surfaces the error. Eviction is therefore a
// *graceful* degradation lever (it trades reload latency for bytes),
// which is why the governor drives it before widening error bounds.

#ifndef BURSTHIST_GOVERNOR_CURVE_CACHE_H_
#define BURSTHIST_GOVERNOR_CURVE_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "stream/types.h"
#include "util/env.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {

/// Bounded-residency cache of per-event PBE curves (PbeT = Pbe1 or
/// Pbe2), spilling cold curves to `<dir>/curve-<id>.pbe`.
template <typename PbeT>
class PbeCurveCache {
 public:
  struct Options {
    /// Filesystem seam; tests substitute FaultInjectionEnv.
    Env* env = nullptr;
    /// Spill directory (created by Init()).
    std::string dir;
    /// Resident curves ShedCold() keeps (at least 1).
    size_t max_resident = 64;
    /// Estimator options for freshly created curves.
    typename PbeT::Options cell;
  };

  explicit PbeCurveCache(const Options& options) : options_(options) {
    if (options_.env == nullptr) options_.env = Env::Default();
    if (options_.max_resident == 0) options_.max_resident = 1;
  }

  /// Creates the spill directory. Call once before use.
  Status Init() { return options_.env->CreateDirIfMissing(options_.dir); }

  /// The event's curve, resident. Creates a fresh estimator for a
  /// never-seen id; reloads a spilled one from disk (counting it in
  /// reloads()).
  Result<PbeT*> Get(EventId id) {
    auto it = curves_.find(id);
    if (it != curves_.end()) {
      it->second.last_access = ++clock_;
      return Result<PbeT*>(&it->second.curve);
    }
    Resident entry{PbeT(options_.cell), ++clock_, /*dirty=*/false};
    const std::string path = CurvePath(id);
    if (options_.env->FileExists(path)) {
      auto bytes = options_.env->ReadFileBytes(path);
      BURSTHIST_RETURN_IF_ERROR(bytes.status());
      BinaryReader r(bytes.value());
      BURSTHIST_RETURN_IF_ERROR(entry.curve.Deserialize(&r));
      ++reloads_;
    }
    auto inserted = curves_.emplace(id, std::move(entry));
    return Result<PbeT*>(&inserted.first->second.curve);
  }

  /// Appends `count` occurrences of `id` at time t (loading or
  /// creating its curve as needed).
  Status Append(EventId id, Timestamp t, Count count = 1) {
    auto curve = Get(id);
    BURSTHIST_RETURN_IF_ERROR(curve.status());
    curve.value()->Append(t, count);
    curves_.find(id)->second.dirty = true;
    return Status::OK();
  }

  /// Spills the least-recently-accessed resident curve to disk and
  /// drops it from memory. On IO failure the curve STAYS resident and
  /// the error is returned — eviction sheds bytes, never data. No-op
  /// (OK) when nothing is resident.
  Status EvictColdest() {
    auto coldest = curves_.end();
    for (auto it = curves_.begin(); it != curves_.end(); ++it) {
      if (coldest == curves_.end() ||
          it->second.last_access < coldest->second.last_access) {
        coldest = it;
      }
    }
    if (coldest == curves_.end()) return Status::OK();
    if (coldest->second.dirty) {
      BURSTHIST_RETURN_IF_ERROR(Spill(coldest->first, coldest->second.curve));
    }
    curves_.erase(coldest);
    ++evictions_;
    return Status::OK();
  }

  /// Evicts until at most options.max_resident curves stay resident.
  /// Stops (returning the error) at the first failed spill so repeated
  /// pressure cannot spin on a dead disk.
  Status ShedCold() {
    while (curves_.size() > options_.max_resident) {
      BURSTHIST_RETURN_IF_ERROR(EvictColdest());
    }
    return Status::OK();
  }

  /// Resident bytes: the curves themselves plus hash-map node
  /// estimates (same accounting convention as SpaceSaving).
  size_t MemoryUsage() const {
    size_t total = sizeof(*this) + options_.dir.capacity() +
                   curves_.bucket_count() * sizeof(void*);
    for (const auto& [id, entry] : curves_) {
      total += entry.curve.MemoryUsage() + sizeof(Resident) +
               sizeof(EventId) + 2 * sizeof(void*);
    }
    return total;
  }

  size_t resident() const { return curves_.size(); }
  uint64_t evictions() const { return evictions_; }
  uint64_t reloads() const { return reloads_; }
  const Options& options() const { return options_; }

  /// Spill-file path for one event id.
  std::string CurvePath(EventId id) const {
    return options_.dir + "/curve-" + std::to_string(id) + ".pbe";
  }

 private:
  struct Resident {
    PbeT curve;
    uint64_t last_access = 0;
    bool dirty = false;
  };

  // Durable spill: write-temp + fsync + rename, unlinking the temp on
  // any failure so a dead disk leaves no partial files behind.
  Status Spill(EventId id, const PbeT& curve) {
    BinaryWriter w;
    curve.Serialize(&w);
    const std::string path = CurvePath(id);
    const std::string tmp = path + ".tmp";
    Status s;
    {
      auto file = options_.env->NewWritableFile(tmp);
      BURSTHIST_RETURN_IF_ERROR(file.status());
      s = file.value()->Append(w.bytes());
      if (s.ok()) s = file.value()->Sync();
      if (s.ok()) s = file.value()->Close();
    }
    if (s.ok()) s = options_.env->RenameFile(tmp, path);
    if (!s.ok()) (void)options_.env->DeleteFile(tmp);  // best-effort cleanup
    return s;
  }

  Options options_;
  std::unordered_map<EventId, Resident> curves_;
  uint64_t clock_ = 0;
  uint64_t evictions_ = 0;
  uint64_t reloads_ = 0;
};

}  // namespace bursthist

#endif  // BURSTHIST_GOVERNOR_CURVE_CACHE_H_
