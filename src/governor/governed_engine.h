// GovernedBurstEngine — BurstEngine under a memory budget.
//
// Wraps a BurstEngine with a ResourceGovernor so ingestion respects a
// soft/hard byte budget:
//
//   GovernedEngineOptions<Pbe2> opt;
//   opt.engine.universe_size = K;
//   opt.budget = {/*soft=*/8 << 20, /*hard=*/16 << 20};
//   GovernedBurstEngine<Pbe2> engine(opt);
//   Status s = engine.Append(e, t);       // ResourceExhausted when
//                                         // saturated past shedding
//   auto est = engine.PointQuery(e, t, tau);
//   // est.bound is the error bound ACTUALLY in force — Lemma 5 with
//   // every degradation the governor applied folded in.
//
// Audits are amortized: every `audit_every` appends the governor
// re-measures usage and walks the degradation ladder. Between audits
// the engine can grow by at most audit_every * per-record growth,
// which callers keep under one arena block (kArenaBlockBytes) — the
// budget contract is "never exceed hard_bytes by more than one block".

#ifndef BURSTHIST_GOVERNOR_GOVERNED_ENGINE_H_
#define BURSTHIST_GOVERNOR_GOVERNED_ENGINE_H_

#include <utility>
#include <vector>

#include "core/burst_engine.h"
#include "governor/resource_governor.h"
#include "obs/metrics.h"
#include "stream/types.h"
#include "util/status.h"

namespace bursthist {

/// Configuration for one governed engine.
template <typename PbeT>
struct GovernedEngineOptions {
  /// The wrapped engine's configuration.
  BurstEngineOptions<PbeT> engine;
  /// Byte budget ({0, 0} = ungoverned passthrough).
  ResourceBudget budget;
  /// Appends between governor audits. Keep audit_every * worst-case
  /// per-record growth (a few hundred bytes: one reorder slot + one
  /// buffered curve point per grid level) under kArenaBlockBytes so
  /// the hard budget cannot be overshot by more than one block.
  size_t audit_every = 128;
  /// Gamma multiplier per shed round (PBE-2 cells widen by this; see
  /// ResourceGovernor::ShedFn).
  double widen_factor = 2.0;
};

/// A query answer carrying the error bound in force when it was
/// computed — degraded accuracy is always *reported*, never silent.
struct GovernedEstimate {
  double value = 0.0;                                ///< The estimate.
  double bound = 0.0;  ///< EffectiveErrorBound::point_bound at query time.
  DegradationLevel level = DegradationLevel::kNormal;  ///< Ladder position.
};

/// BurstEngine façade with admission control and graceful degradation.
/// Single-writer, like the engine it wraps.
template <typename PbeT>
class GovernedBurstEngine {
 public:
  using Options = GovernedEngineOptions<PbeT>;
  using EngineT = BurstEngine<PbeT>;

  explicit GovernedBurstEngine(const Options& options)
      : options_(options),
        engine_(options.engine),
        governor_(options.budget, options.widen_factor) {
    if (options_.audit_every == 0) options_.audit_every = 1;
    governor_.RegisterComponent(
        "engine", [this] { return engine_.MemoryUsage(); },
        [this](double factor) { engine_.Degrade(factor); });
  }

  /// Ingests one record under the budget. Order of checks: the
  /// periodic audit runs first (so shedding happens before refusal is
  /// even considered), then admission against the audited usage, then
  /// the engine's own validation/backpressure. A saturated engine
  /// re-audits on every refused append, so admission recovers the
  /// moment shedding or draining frees enough memory.
  Status Append(EventId e, Timestamp t, Count count = 1) {
    if (appends_since_audit_ >= options_.audit_every) {
      appends_since_audit_ = 0;
      governor_.Enforce();
    }
    Status admit = governor_.Admit();
    if (!admit.ok()) {
      governor_.Enforce();  // shed again; maybe load just dropped
      admit = governor_.Admit();
      if (!admit.ok()) return admit;
    }
    BURSTHIST_RETURN_IF_ERROR(engine_.Append(e, t, count));
    ++appends_since_audit_;
    return Status::OK();
  }

  /// Freezes the engine for querying (idempotent).
  void Finalize() { engine_.Finalize(); }
  bool finalized() const { return engine_.finalized(); }

  /// A finalized copy for querying mid-stream. Kept for callers that
  /// want a detached engine; the query methods below no longer need
  /// it — BurstEngine itself serves live queries through its cached
  /// finalized view (see BurstEngine::QueryView).
  EngineT QueryableSnapshot() const { return engine_.FinalizedClone(); }

  /// POINT query whose answer carries the effective bound in force.
  /// Correct on a live engine too: the wrapped engine routes the
  /// query through its finalized view (buffered records included).
  GovernedEstimate PointQuery(EventId e, Timestamp t, Timestamp tau) const {
    return MakeEstimate(engine_.PointQuery(e, t, tau));
  }

  /// Cumulative query F~_e(t) with the effective bound attached.
  GovernedEstimate CumulativeQuery(EventId e, Timestamp t) const {
    return MakeEstimate(engine_.CumulativeQuery(e, t));
  }

  /// The POINT error bound currently in force (see
  /// BurstEngine::EffectivePointBound) — degradation widens it.
  EffectiveErrorBound effective_bound() const {
    return engine_.EffectivePointBound();
  }

  /// Registers an external cold-curve cache (see curve_cache.h) as a
  /// governed component: its bytes count toward the budget and shed
  /// rounds evict its cold curves. The cache must outlive this engine.
  template <typename CacheT>
  void AttachCurveCache(CacheT* cache) {
    governor_.RegisterComponent(
        "curve_cache", [cache] { return cache->MemoryUsage(); },
        [cache](double) { (void)cache->ShedCold(); });
  }

  const EngineT& engine() const { return engine_; }
  EngineT* engine_mutable() { return &engine_; }
  const ResourceGovernor& governor() const { return governor_; }
  ResourceGovernor* governor_mutable() { return &governor_; }
  const Options& options() const { return options_; }

 private:
  GovernedEstimate MakeEstimate(double value) const {
    BURSTHIST_GAUGE(m_bound, obs::kEffectivePointBound);
    GovernedEstimate est;
    est.value = value;
    // The bound of the view the answer came from, so buffered records
    // count toward N on a live engine.
    est.bound = engine_.EffectiveAnswerBound().point_bound;
    est.level = governor_.level();
    m_bound.Set(est.bound);
    return est;
  }

  Options options_;
  EngineT engine_;
  ResourceGovernor governor_;
  size_t appends_since_audit_ = 0;
};

/// The paper's two configurations, governed.
using GovernedBurstEngine1 = GovernedBurstEngine<Pbe1>;
using GovernedBurstEngine2 = GovernedBurstEngine<Pbe2>;

}  // namespace bursthist

#endif  // BURSTHIST_GOVERNOR_GOVERNED_ENGINE_H_
