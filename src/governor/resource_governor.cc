#include "governor/resource_governor.h"

#include <cassert>

#include "obs/metrics.h"

namespace bursthist {

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNormal:
      return "Normal";
    case DegradationLevel::kShedding:
      return "Shedding";
    case DegradationLevel::kSaturated:
      return "Saturated";
  }
  return "Unknown";
}

ResourceGovernor::ResourceGovernor(const ResourceBudget& budget,
                                   double widen_factor)
    : budget_(budget), widen_factor_(widen_factor) {
  assert(widen_factor_ >= 1.0);
  assert(budget_.hard_bytes == 0 || budget_.soft_bytes == 0 ||
         budget_.soft_bytes <= budget_.hard_bytes);
  BURSTHIST_GAUGE(m_soft, obs::kGovernorSoftBudgetBytes);
  BURSTHIST_GAUGE(m_hard, obs::kGovernorHardBudgetBytes);
  m_soft.Set(static_cast<double>(budget_.soft_bytes));
  m_hard.Set(static_cast<double>(budget_.hard_bytes));
}

void ResourceGovernor::RegisterComponent(std::string name, UsageFn usage,
                                         ShedFn shed) {
  components_.push_back(
      Component{std::move(name), std::move(usage), std::move(shed)});
}

size_t ResourceGovernor::TotalUsage() const {
  size_t total = 0;
  for (const Component& c : components_) total += c.usage();
  return total;
}

void ResourceGovernor::ShedRound() {
  BURSTHIST_COUNTER(m_sheds, obs::kGovernorShedRoundsTotal);
  for (const Component& c : components_) c.shed(widen_factor_);
  ++shed_rounds_;
  m_sheds.Inc();
}

DegradationLevel ResourceGovernor::Enforce() {
  BURSTHIST_COUNTER(m_audits, obs::kGovernorAuditsTotal);
  BURSTHIST_COUNTER(m_transitions, obs::kGovernorLevelTransitionsTotal);
  BURSTHIST_GAUGE(m_resident, obs::kGovernorResidentBytes);
  BURSTHIST_GAUGE(m_level, obs::kGovernorLevel);
  const DegradationLevel before = level_;
  // Publish whatever Enforce() decides, including the re-audited
  // resident bytes, just before each return.
  const auto publish = [&](DegradationLevel after) {
    m_audits.Inc();
    m_resident.Set(static_cast<double>(last_audit_bytes_));
    m_level.Set(static_cast<double>(after));
    if (after != before) m_transitions.Inc();
  };
  ++audits_;
  last_audit_bytes_ = TotalUsage();
  const bool over_soft =
      budget_.soft_bytes > 0 && last_audit_bytes_ > budget_.soft_bytes;
  const bool over_hard =
      budget_.hard_bytes > 0 && last_audit_bytes_ > budget_.hard_bytes;
  if (!over_soft && !over_hard) {
    level_ = DegradationLevel::kNormal;
    publish(level_);
    return level_;
  }
  if (!over_hard) {
    // Soft pressure: one shed round, then let ingestion continue; the
    // next audit re-evaluates.
    ShedRound();
    last_audit_bytes_ = TotalUsage();
    level_ = DegradationLevel::kShedding;
    publish(level_);
    return level_;
  }
  // Hard pressure: shed repeatedly (bounded) until under the hard
  // budget. If the rounds are spent and usage still exceeds it,
  // Admit() starts refusing records.
  for (int round = 0; round < kMaxShedRounds; ++round) {
    ShedRound();
    last_audit_bytes_ = TotalUsage();
    if (last_audit_bytes_ <= budget_.hard_bytes) break;
  }
  level_ = last_audit_bytes_ > budget_.hard_bytes
               ? DegradationLevel::kSaturated
               : DegradationLevel::kShedding;
  publish(level_);
  return level_;
}

Status ResourceGovernor::Admit(size_t extra_bytes) const {
  if (budget_.hard_bytes > 0 &&
      last_audit_bytes_ + extra_bytes > budget_.hard_bytes) {
    BURSTHIST_COUNTER(m_rejects, obs::kGovernorAdmissionRejectsTotal);
    m_rejects.Inc();
    return Status::ResourceExhausted("memory hard budget exceeded");
  }
  return Status::OK();
}

std::vector<ComponentUsage> ResourceGovernor::AuditComponents() const {
  std::vector<ComponentUsage> out;
  out.reserve(components_.size());
  for (const Component& c : components_) {
    out.push_back(ComponentUsage{c.name, c.usage()});
  }
  return out;
}

}  // namespace bursthist
