// Resource governor: memory budgets and the degradation ladder.
//
// The paper's structures are sketches — they trade accuracy for space
// by construction — but nothing in the core library bounds what the
// *process* spends: PBE-1 buffers grow until compression, the engine's
// re-order buffer grows with lateness skew, and per-event curves
// accumulate for as long as the history runs. The governor closes that
// loop. Components register a usage probe and a shed hook; the
// governor audits the roll-up against a soft/hard byte budget and,
// when the soft budget is crossed, walks a *graceful degradation
// ladder* instead of aborting:
//
//   level 0 (kNormal)    usage <= soft budget; nothing to do.
//   level 1 (kShedding)  soft crossed: one shed round — PBE-2 cells
//                        widen their gamma band for new segments,
//                        PBE-1 cells compact their buffers early, a
//                        curve cache evicts cold curves to disk.
//   level 2 (kSaturated) hard crossed: shed rounds repeat (bounded)
//                        and, if usage still exceeds the hard budget,
//                        admission fails with ResourceExhausted until
//                        load drops.
//
// Degradation is *honest*: every shed widens the error bound the
// structures themselves report (Pbe1::PointErrorBound,
// Pbe2::MaxGamma), so query answers always carry the effective bound
// actually in force — accuracy is surrendered, correctness is not.

#ifndef BURSTHIST_GOVERNOR_RESOURCE_GOVERNOR_H_
#define BURSTHIST_GOVERNOR_RESOURCE_GOVERNOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace bursthist {

/// Byte budgets for one governed engine. 0 means unlimited (that
/// threshold never trips). soft_bytes <= hard_bytes when both are set.
struct ResourceBudget {
  /// Crossing this starts the degradation ladder (shedding accuracy
  /// for space). The process keeps accepting records.
  size_t soft_bytes = 0;
  /// Crossing this — after shedding — makes admission fail with
  /// Status::ResourceExhausted. The process never allocates past
  /// hard_bytes + one arena block (kArenaBlockBytes): audits are
  /// amortized, so usage can overshoot by at most what one audit
  /// interval appends, which callers size below one block.
  size_t hard_bytes = 0;
};

/// Allocation granularity the budget contract is stated in: between
/// two audits the governed structures may grow by at most one block,
/// so hard_bytes is exceeded by less than one block before admission
/// shuts off.
constexpr size_t kArenaBlockBytes = 64 * 1024;

/// Where on the degradation ladder the governor currently stands.
enum class DegradationLevel : uint8_t {
  kNormal = 0,     ///< Under the soft budget.
  kShedding = 1,   ///< Soft budget crossed; accuracy being shed.
  kSaturated = 2,  ///< Hard budget crossed; admission refused.
};

/// Human-readable level name ("Normal", "Shedding", "Saturated").
const char* DegradationLevelName(DegradationLevel level);

/// One registered component's audited usage (AuditComponents).
struct ComponentUsage {
  std::string name;
  size_t bytes = 0;
};

/// Tracks registered components against a ResourceBudget and drives
/// the degradation ladder. Not thread-safe: the governor audits the
/// same single-writer structures it governs.
class ResourceGovernor {
 public:
  /// Reports the component's current resident bytes.
  using UsageFn = std::function<size_t()>;
  /// Sheds memory, widening error bounds by at most `widen_factor`
  /// (PBE-2 gamma bands multiply by it; PBE-1 compaction and cache
  /// eviction ignore it — they cost flush boundaries / IO, not bound
  /// width).
  using ShedFn = std::function<void(double widen_factor)>;

  explicit ResourceGovernor(const ResourceBudget& budget,
                            double widen_factor = 2.0);

  /// Registers a component. Both hooks must outlive the governor.
  void RegisterComponent(std::string name, UsageFn usage, ShedFn shed);

  /// Sums every component's usage probe (an audit walk; costs a scan
  /// of the governed structures, so callers amortize via Enforce()).
  size_t TotalUsage() const;

  /// Audits usage and walks the ladder: crossing the soft budget runs
  /// one shed round; crossing the hard budget repeats shed rounds (at
  /// most kMaxShedRounds per call) until usage drops below it or the
  /// rounds are spent. Returns the resulting level, which Admit()
  /// then enforces against the cached audit.
  DegradationLevel Enforce();

  /// Admission control against the *last audited* usage (cheap; no
  /// probe walk). Returns ResourceExhausted iff the hard budget is
  /// set and last_audit_bytes() + extra_bytes exceeds it. Callers
  /// audit every few records, keeping the overshoot under one arena
  /// block.
  Status Admit(size_t extra_bytes = 0) const;

  /// The level Enforce() last returned.
  DegradationLevel level() const { return level_; }

  /// Usage at the last Enforce() audit.
  size_t last_audit_bytes() const { return last_audit_bytes_; }

  /// Total shed rounds executed (each round calls every component's
  /// shed hook once).
  uint64_t shed_rounds() const { return shed_rounds_; }

  /// Enforce() calls made (audit count).
  uint64_t audits() const { return audits_; }

  const ResourceBudget& budget() const { return budget_; }

  /// Per-component usage breakdown (one probe walk).
  std::vector<ComponentUsage> AuditComponents() const;

  /// Shed rounds one Enforce() call may run when the hard budget is
  /// crossed; bounds the latency spike of a saturated audit.
  static constexpr int kMaxShedRounds = 4;

 private:
  struct Component {
    std::string name;
    UsageFn usage;
    ShedFn shed;
  };

  void ShedRound();

  ResourceBudget budget_;
  double widen_factor_;
  std::vector<Component> components_;
  DegradationLevel level_ = DegradationLevel::kNormal;
  size_t last_audit_bytes_ = 0;
  uint64_t shed_rounds_ = 0;
  uint64_t audits_ = 0;
};

}  // namespace bursthist

#endif  // BURSTHIST_GOVERNOR_RESOURCE_GOVERNOR_H_
