// Parameterized dyadic-index sweep: universe sizes (powers of two,
// primes, 1) x pruning rules, with injected bursts at the universe's
// edges and middle.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "util/random.h"

namespace bursthist {
namespace {

struct SweepParam {
  EventId universe;
  DyadicPruneRule rule;
};

EventStream BurstAtEdges(EventId k, const std::vector<EventId>& bursty,
                         uint64_t seed) {
  Rng rng(seed);
  std::vector<SingleEventStream> per_event(k);
  for (EventId e = 0; e < k; ++e) {
    std::vector<Timestamp> times;
    Timestamp t = static_cast<Timestamp>(rng.NextBelow(5));
    while (t < 1000) {
      times.push_back(t);
      t += 25 + static_cast<Timestamp>(rng.NextBelow(10));
    }
    if (std::find(bursty.begin(), bursty.end(), e) != bursty.end()) {
      for (Timestamp bt = 500; bt < 550; ++bt) {
        times.push_back(bt);
        times.push_back(bt);
      }
    }
    std::sort(times.begin(), times.end());
    per_event[e] = SingleEventStream(std::move(times));
  }
  return MergeStreams(per_event);
}

class DyadicSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static CmPbeOptions Grid() {
    CmPbeOptions g;
    g.depth = 4;
    g.width = 256;
    return g;
  }
  static Pbe1Options Cell() {
    Pbe1Options c;
    c.buffer_points = 64;
    c.budget_points = 64;
    return c;
  }
};

TEST_P(DyadicSweep, FindsEdgeAndMiddleBursts) {
  const auto p = GetParam();
  std::vector<EventId> bursty = {0};
  if (p.universe > 1) bursty.push_back(p.universe - 1);
  if (p.universe > 4) bursty.push_back(p.universe / 2);
  std::sort(bursty.begin(), bursty.end());
  bursty.erase(std::unique(bursty.begin(), bursty.end()), bursty.end());

  auto stream = BurstAtEdges(p.universe, bursty, 0xd0 + p.universe);
  DyadicBurstIndex<Pbe1> index(p.universe, Grid(), Cell());
  index.set_prune_rule(p.rule);
  ExactBurstStore exact(p.universe);
  ASSERT_TRUE(exact.AppendStream(stream).ok());
  for (const auto& r : stream.records()) index.Append(r.id, r.time);
  index.Finalize();

  const Timestamp t = 549, tau = 50;
  const double theta = 50.0;
  auto truth = exact.BurstyEvents(t, theta, tau);
  ASSERT_EQ(truth, bursty);  // sanity on the injected ground truth
  auto got = index.BurstyEvents(t, theta, tau);
  EXPECT_EQ(got, bursty);

  // Top-k agrees on the leaders (k = number of injected bursts).
  auto top = index.TopKBurstyEvents(t, bursty.size(), tau);
  std::vector<EventId> top_ids;
  for (const auto& [e, b] : top) top_ids.push_back(e);
  std::sort(top_ids.begin(), top_ids.end());
  EXPECT_EQ(top_ids, bursty);
}

TEST_P(DyadicSweep, QuietInstantFindsNothing) {
  const auto p = GetParam();
  auto stream = BurstAtEdges(p.universe, {0}, 0xd1 + p.universe);
  DyadicBurstIndex<Pbe1> index(p.universe, Grid(), Cell());
  index.set_prune_rule(p.rule);
  for (const auto& r : stream.records()) index.Append(r.id, r.time);
  index.Finalize();
  EXPECT_TRUE(index.BurstyEvents(300, 50.0, 50).empty());
}

std::vector<SweepParam> Params() {
  std::vector<SweepParam> out;
  for (EventId k : {1u, 2u, 3u, 7u, 16u, 31u, 100u, 257u, 1024u}) {
    out.push_back({k, DyadicPruneRule::kPaper});
    out.push_back({k, DyadicPruneRule::kChildren});
  }
  return out;
}

std::string Name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "K" + std::to_string(info.param.universe) +
         (info.param.rule == DyadicPruneRule::kPaper ? "_paper" : "_children");
}

INSTANTIATE_TEST_SUITE_P(Universes, DyadicSweep, ::testing::ValuesIn(Params()),
                         Name);

}  // namespace
}  // namespace bursthist
