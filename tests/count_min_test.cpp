// Unit tests for the classic Count-Min sketch substrate.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sketch/count_min.h"
#include "util/random.h"

namespace bursthist {
namespace {

TEST(CountMinTest, FromGuaranteeSizing) {
  auto o = CountMinOptions::FromGuarantee(0.05, 0.2);
  EXPECT_EQ(o.depth, 2u);   // ceil(ln 5) = 2
  EXPECT_EQ(o.width, 55u);  // ceil(e / 0.05) = 55
}

TEST(CountMinTest, NeverUnderestimates) {
  CountMinOptions o;
  o.depth = 4;
  o.width = 32;
  CountMinSketch cm(o);
  std::map<uint64_t, uint64_t> exact;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.NextBelow(300);
    cm.Add(key);
    ++exact[key];
  }
  for (const auto& [k, v] : exact) {
    EXPECT_GE(cm.Estimate(k), v) << "key=" << k;
  }
  EXPECT_EQ(cm.TotalCount(), 5000u);
}

TEST(CountMinTest, ExactWithoutCollisions) {
  CountMinOptions o;
  o.depth = 6;
  o.width = 4096;
  CountMinSketch cm(o);
  for (uint64_t k = 0; k < 8; ++k) cm.Add(k, k + 1);
  for (uint64_t k = 0; k < 8; ++k) {
    // With 8 keys in 4096 cells, a collision in all 6 rows is
    // essentially impossible.
    EXPECT_EQ(cm.Estimate(k), k + 1);
  }
  EXPECT_EQ(cm.Estimate(999), 0u);
}

TEST(CountMinTest, EpsilonGuaranteeStatistically) {
  const double eps = 0.01, delta = 0.05;
  CountMinSketch cm(CountMinOptions::FromGuarantee(eps, delta));
  Rng rng(7);
  const uint64_t kKeys = 2000;
  std::vector<uint64_t> exact(kKeys, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    uint64_t k = rng.NextBelow(kKeys);
    cm.Add(k);
    ++exact[k];
  }
  int violations = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (cm.Estimate(k) > exact[k] + static_cast<uint64_t>(eps * n)) {
      ++violations;
    }
  }
  // Expected violation rate <= delta; allow generous slack.
  EXPECT_LE(violations, static_cast<int>(2 * delta * kKeys));
}

TEST(CountMinTest, WeightedAdds) {
  CountMinSketch cm(CountMinOptions{});
  cm.Add(42, 10);
  cm.Add(42, 5);
  EXPECT_GE(cm.Estimate(42), 15u);
  EXPECT_EQ(cm.TotalCount(), 15u);
}

TEST(CountMinTest, SerializationRoundTrip) {
  CountMinOptions o;
  o.depth = 3;
  o.width = 64;
  o.seed = 99;
  CountMinSketch cm(o);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) cm.Add(rng.NextBelow(100));

  BinaryWriter w;
  cm.Serialize(&w);
  CountMinSketch back(CountMinOptions{});
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  EXPECT_EQ(back.TotalCount(), cm.TotalCount());
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(back.Estimate(k), cm.Estimate(k));
  }
}

TEST(CountMinTest, DeserializeRejectsSizeMismatch) {
  BinaryWriter w;
  w.Put<uint64_t>(4);   // depth
  w.Put<uint64_t>(64);  // width
  w.Put<uint64_t>(0);   // seed
  w.Put<uint64_t>(0);   // total
  w.PutVector(std::vector<uint64_t>(10, 0));  // wrong cell count
  CountMinSketch cm(CountMinOptions{});
  BinaryReader r(w.bytes());
  EXPECT_EQ(cm.Deserialize(&r).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace bursthist
