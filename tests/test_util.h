// Shared test utilities: the master random seed and the canonical
// floating-point comparison tolerances.
//
// Seed plumbing: every randomized test derives its per-case seeds from
// TestSeed(), which reads the BURSTHIST_TEST_SEED environment variable
// (decimal or 0x-hex) and falls back to a fixed default. The chosen
// seed is logged once per process, so any CI failure is reproducible
// with
//
//   BURSTHIST_TEST_SEED=<logged value> ctest -R <failing test>
//
// Tolerances: estimates in this library are either exact identities
// evaluated in floating point (kIdentityTol absorbs one rounding step)
// or quantities accumulated across many float operations (kAccumTol).
// Guarantee checks must NOT add ad-hoc epsilons on top of the
// Delta/gamma/epsilon*N bounds they verify — they add kIdentityTol or
// kAccumTol only, so a real bound violation cannot hide inside a
// hand-tuned slack.

#ifndef BURSTHIST_TESTS_TEST_UTIL_H_
#define BURSTHIST_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdio>

#include "util/random.h"

namespace bursthist {
namespace test {

/// Tolerance for algebraic identities evaluated in double precision
/// (e.g. b~ == F~(t) - 2 F~(t-tau) + F~(t-2tau), or "never
/// overestimates" where both sides are exact integers stored as
/// doubles). Absorbs a single rounding step, nothing more.
inline constexpr double kIdentityTol = 1e-9;

/// Tolerance for values accumulated across many floating-point
/// operations (PLA segment evaluation, gamma-band arithmetic), where
/// rounding can compound beyond one ulp-scale step.
inline constexpr double kAccumTol = 1e-6;

/// Default master seed when BURSTHIST_TEST_SEED is unset. Fixed so CI
/// runs are deterministic; override the environment variable to
/// explore other universes or replay a failure.
inline constexpr uint64_t kDefaultTestSeed = 0x20260806ULL;

/// The process-wide master test seed (env BURSTHIST_TEST_SEED or the
/// default), logged to stderr on first use.
inline uint64_t TestSeed() {
  static const uint64_t seed = [] {
    const uint64_t s = SeedFromEnv("BURSTHIST_TEST_SEED", kDefaultTestSeed);
    std::fprintf(stderr,
                 "[test_util] master seed: %llu (reproduce with "
                 "BURSTHIST_TEST_SEED=%llu)\n",
                 static_cast<unsigned long long>(s),
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

/// A per-case seed: the master seed mixed with a fixed stream id, so
/// each test case sees an independent but reproducible stream.
inline uint64_t CaseSeed(uint64_t stream_id) {
  uint64_t state = TestSeed() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  return SplitMix64(state);
}

}  // namespace test
}  // namespace bursthist

#endif  // BURSTHIST_TESTS_TEST_UTIL_H_
