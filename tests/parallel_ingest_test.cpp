// Unit tests for parallel construction: the parallel builders must
// produce states identical to serial ingestion.

#include <gtest/gtest.h>

#include "core/parallel_ingest.h"
#include "util/random.h"

namespace bursthist {
namespace {

EventStream RandomMix(EventId k, size_t n, uint64_t seed) {
  Rng rng(seed);
  EventStream s;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    s.Append(static_cast<EventId>(rng.NextBelow(k)), t);
  }
  return s;
}

Pbe1Options Cell() {
  Pbe1Options o;
  o.buffer_points = 128;
  o.budget_points = 32;
  return o;
}

template <typename T>
std::vector<uint8_t> Bytes(const T& v) {
  BinaryWriter w;
  v.Serialize(&w);
  return w.TakeBytes();
}

TEST(ParallelIngestTest, CmPbeMatchesSerial) {
  const EventId k = 32;
  auto stream = RandomMix(k, 20000, 7);
  CmPbeOptions grid;
  grid.depth = 4;
  grid.width = 64;

  CmPbe<Pbe1> serial(grid, Cell());
  for (const auto& r : stream.records()) serial.Append(r.id, r.time);
  serial.Finalize();

  for (size_t threads : {1, 2, 4, 8}) {
    auto parallel = BuildCmPbeParallel<Pbe1>(stream, grid, Cell(), threads);
    EXPECT_EQ(parallel.TotalCount(), serial.TotalCount());
    EXPECT_EQ(parallel.SizeBytes(), serial.SizeBytes());
    // Rows replay the same per-cell sequences, so the whole state —
    // total count included — serializes bit-identically to serial.
    EXPECT_EQ(Bytes(parallel), Bytes(serial)) << "threads=" << threads;
    Rng qrng(threads);
    for (int i = 0; i < 200; ++i) {
      const EventId e = static_cast<EventId>(qrng.NextBelow(k));
      const Timestamp t =
          static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
      EXPECT_DOUBLE_EQ(parallel.EstimateCumulative(e, t),
                       serial.EstimateCumulative(e, t))
          << "threads=" << threads;
    }
  }
}

TEST(ParallelIngestTest, CmPbe2MatchesSerial) {
  const EventId k = 16;
  auto stream = RandomMix(k, 10000, 11);
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 32;
  Pbe2Options cell;
  cell.gamma = 3.0;

  CmPbe<Pbe2> serial(grid, cell);
  for (const auto& r : stream.records()) serial.Append(r.id, r.time);
  serial.Finalize();

  auto parallel = BuildCmPbeParallel<Pbe2>(stream, grid, cell, 3);
  Rng qrng(3);
  for (int i = 0; i < 200; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(k));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    EXPECT_DOUBLE_EQ(parallel.EstimateCumulative(e, t),
                     serial.EstimateCumulative(e, t));
  }
}

TEST(ParallelIngestTest, DyadicMatchesSerial) {
  const EventId k = 100;
  auto stream = RandomMix(k, 15000, 13);
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 64;

  DyadicBurstIndex<Pbe1> serial(k, grid, Cell());
  for (const auto& r : stream.records()) serial.Append(r.id, r.time);
  serial.Finalize();

  for (size_t threads : {2, 6}) {
    auto parallel =
        BuildDyadicParallel<Pbe1>(stream, k, grid, Cell(), threads);
    EXPECT_EQ(parallel.SizeBytes(), serial.SizeBytes());
    // Per-level grids see the same streams, so per-level total counts
    // (and everything else) match the serial build bit for bit.
    EXPECT_EQ(Bytes(parallel), Bytes(serial)) << "threads=" << threads;
    Rng qrng(threads);
    for (int i = 0; i < 100; ++i) {
      const EventId e = static_cast<EventId>(qrng.NextBelow(k));
      const Timestamp t =
          static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
      EXPECT_DOUBLE_EQ(parallel.EstimateBurstiness(e, t, 100),
                       serial.EstimateBurstiness(e, t, 100))
          << "threads=" << threads;
    }
    // Query results agree too.
    auto a = parallel.BurstyEvents(stream.MaxTime() / 2, 10.0, 100);
    auto b = serial.BurstyEvents(stream.MaxTime() / 2, 10.0, 100);
    EXPECT_EQ(a, b);
  }
}

TEST(ParallelIngestTest, SingleThreadFallback) {
  auto stream = RandomMix(8, 1000, 17);
  CmPbeOptions grid;
  grid.depth = 1;
  grid.width = 16;
  auto built = BuildCmPbeParallel<Pbe1>(stream, grid, Cell(), 8);
  EXPECT_TRUE(built.finalized());
  EXPECT_EQ(built.TotalCount(), stream.size());
}

}  // namespace
}  // namespace bursthist
