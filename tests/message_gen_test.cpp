// Tests for message-level synthesis: the full M -> S -> sketch loop of
// Section II-A must decode losslessly through the curated mapper.

#include <gtest/gtest.h>

#include "core/burst_engine.h"
#include "gen/message_gen.h"
#include "util/random.h"

namespace bursthist {
namespace {

EventStream SmallMix(EventId k, size_t n, uint64_t seed) {
  Rng rng(seed);
  EventStream s;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    s.Append(static_cast<EventId>(rng.NextBelow(k)), t);
  }
  return s;
}

TEST(MessageGenTest, DecodesLosslessly) {
  const EventId k = 12;
  auto events = SmallMix(k, 2000, 3);
  MessageGenOptions opt;
  auto corpus = SynthesizeMessages(events, k, opt);
  EXPECT_GE(corpus.messages.size(), events.size());  // + noise

  EventStream decoded = ProcessMessages(corpus.mapper, corpus.messages);
  ASSERT_EQ(decoded.size(), corpus.truth.size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded.records()[i], corpus.truth.records()[i]) << i;
  }
}

TEST(MessageGenTest, KeywordOnlyMessagesStillDecode) {
  const EventId k = 4;
  auto events = SmallMix(k, 500, 5);
  MessageGenOptions opt;
  opt.keyword_only_fraction = 1.0;  // never use hashtags
  opt.noise_fraction = 0.0;
  auto corpus = SynthesizeMessages(events, k, opt);
  for (const auto& m : corpus.messages) {
    EXPECT_TRUE(ExtractHashtags(m.text).empty()) << m.text;
  }
  EventStream decoded = ProcessMessages(corpus.mapper, corpus.messages);
  EXPECT_EQ(decoded.size(), events.size());
}

TEST(MessageGenTest, NoiseMessagesCarryNoSignal) {
  const EventId k = 4;
  auto events = SmallMix(k, 300, 7);
  MessageGenOptions opt;
  opt.noise_fraction = 1.0;  // a noise message after every mention
  auto corpus = SynthesizeMessages(events, k, opt);
  EXPECT_EQ(corpus.messages.size(), 2 * events.size());
  EventStream decoded = ProcessMessages(corpus.mapper, corpus.messages);
  EXPECT_EQ(decoded.size(), events.size());  // noise decodes to nothing
}

TEST(MessageGenTest, EndToEndThroughEngine) {
  // Messages -> pipeline -> engine: a burst injected at the event
  // level must survive the textual round trip.
  const EventId k = 8;
  EventStream events;
  Timestamp t = 0;
  Rng rng(11);
  while (t < 1000) {
    events.Append(static_cast<EventId>(rng.NextBelow(k)), t);
    t += 10 + static_cast<Timestamp>(rng.NextBelow(5));
  }
  EventStream with_burst;
  size_t i = 0;
  for (Timestamp bt = 0; bt < 1000; ++bt) {
    while (i < events.size() && events.records()[i].time <= bt) {
      with_burst.Append(events.records()[i].id, events.records()[i].time);
      ++i;
    }
    if (bt >= 600 && bt < 650) {
      with_burst.Append(5, bt);
      with_burst.Append(5, bt);
    }
  }

  auto corpus = SynthesizeMessages(with_burst, k, MessageGenOptions{});
  EventStream decoded = ProcessMessages(corpus.mapper, corpus.messages);

  BurstEngineOptions<Pbe1> o;
  o.universe_size = k;
  o.grid.depth = 3;
  o.grid.width = 64;
  o.cell.buffer_points = 128;
  o.cell.budget_points = 128;
  BurstEngine1 engine(o);
  ASSERT_TRUE(engine.AppendStream(decoded).ok());
  engine.Finalize();
  auto bursty = engine.BurstyEventQuery(649, 50.0, 50);
  EXPECT_EQ(bursty, (std::vector<EventId>{5}));
}

TEST(MessageGenTest, DeterministicForSeed) {
  auto events = SmallMix(4, 100, 13);
  MessageGenOptions opt;
  auto a = SynthesizeMessages(events, 4, opt);
  auto b = SynthesizeMessages(events, 4, opt);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].text, b.messages[i].text);
  }
}

}  // namespace
}  // namespace bursthist
