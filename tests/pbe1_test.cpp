// Unit + property tests for PBE-1 (Section III-A).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/pbe1.h"
#include "stream/event_stream.h"
#include "stream/frequency_curve.h"
#include "util/random.h"

namespace bursthist {
namespace {

SingleEventStream RandomStream(size_t n, Rng* rng, Timestamp max_gap = 5) {
  std::vector<Timestamp> times;
  times.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng->NextBelow(max_gap + 1));  // dups allowed
    times.push_back(t);
  }
  return SingleEventStream(std::move(times));
}

Pbe1 BuildPbe1(const SingleEventStream& s, const Pbe1Options& opt) {
  Pbe1 pbe(opt);
  for (Timestamp t : s.times()) pbe.Append(t);
  pbe.Finalize();
  return pbe;
}

TEST(Pbe1Test, ExactWhenBudgetCoversBuffer) {
  Rng rng(1);
  auto s = RandomStream(300, &rng);
  Pbe1Options opt;
  opt.buffer_points = 50;
  opt.budget_points = 50;  // no compression loss
  Pbe1 pbe = BuildPbe1(s, opt);
  EXPECT_DOUBLE_EQ(pbe.TotalAreaError(), 0.0);
  for (Timestamp t = 0; t <= s.times().back() + 3; ++t) {
    EXPECT_EQ(pbe.EstimateCumulative(t),
              static_cast<double>(s.CumulativeFrequency(t)));
  }
}

TEST(Pbe1Test, DuplicateTimestampsMergeIntoOneCorner) {
  Pbe1Options opt;
  opt.buffer_points = 10;
  opt.budget_points = 10;
  Pbe1 pbe(opt);
  pbe.Append(5);
  pbe.Append(5);
  pbe.Append(5, 3);
  pbe.Append(9);
  pbe.Finalize();
  EXPECT_EQ(pbe.PointCount(), 2u);
  EXPECT_EQ(pbe.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(pbe.EstimateCumulative(5), 5.0);
  EXPECT_DOUBLE_EQ(pbe.EstimateCumulative(9), 6.0);
}

TEST(Pbe1Test, NeverOverestimatesCumulative) {
  Rng rng(3);
  auto s = RandomStream(2000, &rng);
  Pbe1Options opt;
  opt.buffer_points = 100;
  opt.budget_points = 10;
  Pbe1 pbe = BuildPbe1(s, opt);
  for (Timestamp t = 0; t <= s.times().back() + 5; t += 3) {
    EXPECT_LE(pbe.EstimateCumulative(t),
              static_cast<double>(s.CumulativeFrequency(t)))
        << "t=" << t;
  }
}

TEST(Pbe1Test, BurstinessErrorWithinLemmaBound) {
  // Lemma 1: |b~ - b| <= 4 * Delta where Delta is the area error.
  // Our per-buffer Delta values accumulate, so the bound uses the sum.
  Rng rng(5);
  auto s = RandomStream(3000, &rng);
  Pbe1Options opt;
  opt.buffer_points = 150;
  opt.budget_points = 25;
  Pbe1 pbe = BuildPbe1(s, opt);
  const double bound = 4.0 * pbe.TotalAreaError() + 1e-6;
  for (Timestamp tau : {5, 20, 100}) {
    for (Timestamp t = 0; t <= s.times().back() + 2 * tau; t += 11) {
      const double exact = static_cast<double>(s.BurstinessAt(t, tau));
      EXPECT_LE(std::abs(pbe.EstimateBurstiness(t, tau) - exact), bound);
    }
  }
}

TEST(Pbe1Test, MoreBudgetSmallerError) {
  Rng rng(7);
  auto s = RandomStream(4000, &rng);
  double prev_err = -1.0;
  std::vector<double> errors;
  for (size_t budget : {5, 10, 25, 50, 100}) {
    Pbe1Options opt;
    opt.buffer_points = 200;
    opt.budget_points = budget;
    Pbe1 pbe = BuildPbe1(s, opt);
    errors.push_back(pbe.TotalAreaError());
  }
  for (size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LE(errors[i], errors[i - 1] + 1e-9);
  }
  (void)prev_err;
}

TEST(Pbe1Test, ErrorCapModeHonorsPerBufferCap) {
  Rng rng(9);
  auto s = RandomStream(2500, &rng);
  Pbe1Options opt;
  opt.buffer_points = 100;
  opt.error_cap = 50.0;
  Pbe1 pbe(opt);
  size_t buffers = 0;
  Count appended = 0;
  for (Timestamp t : s.times()) {
    pbe.Append(t);
    ++appended;
  }
  pbe.Finalize();
  buffers = (pbe.PointCount() ? 1 : 0);  // at least one
  // Each buffer's DP error is <= cap; the total is <= cap * #buffers.
  // #buffers <= ceil(distinct timestamps / buffer size) + 1.
  FrequencyCurve curve(s);
  const double max_buffers =
      std::ceil(static_cast<double>(curve.size()) / 100.0);
  EXPECT_LE(pbe.TotalAreaError(), 50.0 * max_buffers + 1e-9);
  (void)buffers;
  (void)appended;
}

TEST(Pbe1Test, SpaceShrinksWithCompression) {
  Rng rng(11);
  auto s = RandomStream(5000, &rng);
  Pbe1Options tight;
  tight.buffer_points = 250;
  tight.budget_points = 10;
  Pbe1Options loose;
  loose.buffer_points = 250;
  loose.budget_points = 200;
  Pbe1 a = BuildPbe1(s, tight);
  Pbe1 b = BuildPbe1(s, loose);
  EXPECT_LT(a.SizeBytes(), b.SizeBytes());
  EXPECT_LT(a.SizeBytes(), s.SizeBytes());
}

TEST(Pbe1Test, SnapshotQueriesMidStream) {
  Rng rng(13);
  auto s = RandomStream(1000, &rng);
  Pbe1Options opt;
  opt.buffer_points = 64;
  opt.budget_points = 16;
  Pbe1 pbe(opt);
  size_t i = 0;
  for (; i < 500; ++i) pbe.Append(s.times()[i]);
  Pbe1 snap = pbe.Snapshot();
  EXPECT_TRUE(snap.finalized());
  EXPECT_FALSE(pbe.finalized());
  const Timestamp mid = s.times()[499];
  EXPECT_LE(snap.EstimateCumulative(mid), 500.0);
  // Parent continues ingesting unaffected.
  for (; i < s.size(); ++i) pbe.Append(s.times()[i]);
  pbe.Finalize();
  EXPECT_EQ(pbe.TotalCount(), s.size());
}

TEST(Pbe1Test, BreakpointsAreModelCorners) {
  Rng rng(15);
  auto s = RandomStream(500, &rng);
  Pbe1Options opt;
  opt.buffer_points = 50;
  opt.budget_points = 8;
  Pbe1 pbe = BuildPbe1(s, opt);
  auto bps = pbe.Breakpoints();
  EXPECT_EQ(bps.size(), pbe.PointCount());
  for (size_t i = 1; i < bps.size(); ++i) EXPECT_GT(bps[i], bps[i - 1]);
  // The estimate only changes at breakpoints.
  for (size_t i = 1; i < bps.size(); ++i) {
    if (bps[i] - bps[i - 1] >= 2) {
      EXPECT_EQ(pbe.EstimateCumulative(bps[i] - 1),
                pbe.EstimateCumulative(bps[i - 1]));
    }
  }
}

TEST(Pbe1Test, SerializationRoundTrip) {
  Rng rng(17);
  auto s = RandomStream(1200, &rng);
  Pbe1Options opt;
  opt.buffer_points = 80;
  opt.budget_points = 20;
  Pbe1 pbe = BuildPbe1(s, opt);

  BinaryWriter w;
  pbe.Serialize(&w);
  Pbe1 back;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  EXPECT_EQ(back.TotalCount(), pbe.TotalCount());
  EXPECT_EQ(back.PointCount(), pbe.PointCount());
  for (Timestamp t = 0; t <= s.times().back(); t += 7) {
    EXPECT_DOUBLE_EQ(back.EstimateCumulative(t), pbe.EstimateCumulative(t));
  }
}

TEST(Pbe1Test, CorruptPayloadRejected) {
  BinaryWriter w;
  w.Put<uint32_t>(0xbadf00d);
  Pbe1 pbe;
  BinaryReader r(w.bytes());
  EXPECT_FALSE(pbe.Deserialize(&r).ok());
}

TEST(Pbe1Test, EmptyStreamFinalizes) {
  Pbe1 pbe;
  pbe.Finalize();
  EXPECT_EQ(pbe.EstimateCumulative(100), 0.0);
  EXPECT_EQ(pbe.EstimateBurstiness(100, 10), 0.0);
  EXPECT_TRUE(pbe.Breakpoints().empty());
}

}  // namespace
}  // namespace bursthist
