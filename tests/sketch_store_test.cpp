// Unit tests for the on-disk sketch catalog.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/sketch_store.h"
#include "util/random.h"

namespace bursthist {
namespace {

class SketchStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/bursthist_store_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    store_ = std::make_unique<SketchStore>(dir_);
  }

  void TearDown() override {
    // Best-effort cleanup.
    auto list = store_->List();
    if (list.ok()) {
      for (const auto& e : list.value()) (void)store_->Remove(e.name);
    }
    std::remove((dir_ + "/MANIFEST").c_str());
    ::rmdir(dir_.c_str());
  }

  BurstEngine1 MakeEngine1(uint64_t seed) {
    BurstEngineOptions<Pbe1> o;
    o.universe_size = 32;
    o.grid.depth = 2;
    o.grid.width = 16;
    o.cell.buffer_points = 64;
    o.cell.budget_points = 16;
    o.heavy_hitter_capacity = 8;
    BurstEngine1 engine(o);
    Rng rng(seed);
    Timestamp t = 0;
    for (int i = 0; i < 2000; ++i) {
      t += static_cast<Timestamp>(rng.NextBelow(3));
      EXPECT_TRUE(
          engine.Append(static_cast<EventId>(rng.NextBelow(32)), t).ok());
    }
    engine.Finalize();
    return engine;
  }

  BurstEngine2 MakeEngine2(uint64_t seed) {
    BurstEngineOptions<Pbe2> o;
    o.universe_size = 16;
    o.grid.depth = 2;
    o.grid.width = 8;
    o.cell.gamma = 3.0;
    BurstEngine2 engine(o);
    Rng rng(seed);
    Timestamp t = 0;
    for (int i = 0; i < 1000; ++i) {
      t += static_cast<Timestamp>(rng.NextBelow(3));
      EXPECT_TRUE(
          engine.Append(static_cast<EventId>(rng.NextBelow(16)), t).ok());
    }
    engine.Finalize();
    return engine;
  }

  std::string dir_;
  std::unique_ptr<SketchStore> store_;
};

TEST_F(SketchStoreTest, EmptyStoreLists) {
  auto list = store_->List();
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list.value().empty());
}

TEST_F(SketchStoreTest, SaveLoadRoundTrip) {
  BurstEngine1 engine = MakeEngine1(1);
  ASSERT_TRUE(store_->Save("feed-a", engine).ok());

  auto loaded = store_->LoadEngine1("feed-a");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().TotalCount(), engine.TotalCount());
  for (Timestamp t = 0; t < 2000; t += 97) {
    for (EventId e = 0; e < 32; e += 5) {
      EXPECT_DOUBLE_EQ(loaded.value().PointQuery(e, t, 50),
                       engine.PointQuery(e, t, 50));
    }
  }
}

TEST_F(SketchStoreTest, LoadRestoresConfiguration) {
  // The loader needs no options: configuration is embedded.
  BurstEngine1 engine = MakeEngine1(2);
  ASSERT_TRUE(store_->Save("cfg", engine).ok());
  auto loaded = store_->LoadEngine1("cfg");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().universe_size(), engine.universe_size());
  EXPECT_EQ(loaded.value().options().heavy_hitter_capacity, 8u);
  EXPECT_EQ(loaded.value().options().cell.budget_points, 16u);
}

TEST_F(SketchStoreTest, KindMismatchRejected) {
  ASSERT_TRUE(store_->Save("one", MakeEngine1(3)).ok());
  auto wrong = store_->LoadEngine2("one");
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SketchStoreTest, BothKindsCoexist) {
  ASSERT_TRUE(store_->Save("p1", MakeEngine1(4)).ok());
  ASSERT_TRUE(store_->Save("p2", MakeEngine2(5)).ok());
  auto list = store_->List();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().size(), 2u);
  EXPECT_EQ(list.value()[0].name, "p1");
  EXPECT_EQ(list.value()[0].kind, 1);
  EXPECT_EQ(list.value()[1].name, "p2");
  EXPECT_EQ(list.value()[1].kind, 2);
  EXPECT_TRUE(store_->LoadEngine2("p2").ok());
}

TEST_F(SketchStoreTest, SaveReplacesExisting) {
  ASSERT_TRUE(store_->Save("x", MakeEngine1(6)).ok());
  BurstEngine1 bigger = MakeEngine1(7);
  ASSERT_TRUE(store_->Save("x", bigger).ok());
  auto list = store_->List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().size(), 1u);
  auto loaded = store_->LoadEngine1("x");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().TotalCount(), bigger.TotalCount());
}

TEST_F(SketchStoreTest, RemoveDeletesEntry) {
  ASSERT_TRUE(store_->Save("gone", MakeEngine1(8)).ok());
  ASSERT_TRUE(store_->Remove("gone").ok());
  EXPECT_EQ(store_->Remove("gone").code(), StatusCode::kNotFound);
  EXPECT_FALSE(store_->LoadEngine1("gone").ok());
  auto list = store_->List();
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list.value().empty());
}

TEST_F(SketchStoreTest, NameValidation) {
  EXPECT_TRUE(SketchStore::ValidName("feed-1.politics_2016"));
  EXPECT_FALSE(SketchStore::ValidName(""));
  EXPECT_FALSE(SketchStore::ValidName(".hidden"));
  EXPECT_FALSE(SketchStore::ValidName("../escape"));
  EXPECT_FALSE(SketchStore::ValidName("has space"));
  EXPECT_FALSE(SketchStore::ValidName("slash/name"));
  EXPECT_FALSE(SketchStore::ValidName(std::string(200, 'a')));

  BurstEngine1 engine = MakeEngine1(9);
  EXPECT_EQ(store_->Save("../bad", engine).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_->LoadEngine1("../bad").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SketchStoreTest, UnfinalizedEngineRejected) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 4;
  BurstEngine1 engine(o);
  EXPECT_EQ(store_->Save("nope", engine).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SketchStoreTest, MissingSketchIsNotFound) {
  auto loaded = store_->LoadEngine1("nothing-here");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bursthist
