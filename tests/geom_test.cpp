// Unit tests for convex-polygon clipping (PBE-2's dual-space feasible
// region machinery).

#include <gtest/gtest.h>

#include <cmath>

#include "geom/convex_polygon.h"

namespace bursthist {
namespace {

TEST(ConvexPolygonTest, BoxConstruction) {
  auto box = ConvexPolygon::Box(0, 0, 2, 1);
  EXPECT_EQ(box.size(), 4u);
  EXPECT_TRUE(box.Contains({1.0, 0.5}));
  EXPECT_TRUE(box.Contains({0.0, 0.0}));
  EXPECT_FALSE(box.Contains({3.0, 0.5}));
  EXPECT_FALSE(box.Contains({1.0, -0.5}));
}

TEST(ConvexPolygonTest, ClipKeepsInsideHalf) {
  auto box = ConvexPolygon::Box(0, 0, 2, 2);
  box.Clip(HalfPlane{1.0, 0.0, 1.0});  // x <= 1
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains({0.5, 1.0}));
  EXPECT_FALSE(box.Contains({1.5, 1.0}));
}

TEST(ConvexPolygonTest, ClipToEmpty) {
  auto box = ConvexPolygon::Box(0, 0, 1, 1);
  box.Clip(HalfPlane{1.0, 0.0, -1.0});  // x <= -1: disjoint
  EXPECT_TRUE(box.empty());
}

TEST(ConvexPolygonTest, SequentialClipsShrinkToTriangle) {
  auto box = ConvexPolygon::Box(0, 0, 4, 4);
  box.Clip(HalfPlane{1.0, 1.0, 4.0});  // x + y <= 4
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains({1.0, 1.0}));
  EXPECT_FALSE(box.Contains({3.0, 3.0}));
  // Remaining region is the triangle (0,0), (4,0), (0,4).
  box.Clip(HalfPlane{-1.0, 0.0, 0.0});  // x >= 0 (no-op)
  EXPECT_TRUE(box.Contains({0.0, 4.0}));
}

TEST(ConvexPolygonTest, ClipOnBoundaryIsStable) {
  auto box = ConvexPolygon::Box(0, 0, 1, 1);
  box.Clip(HalfPlane{1.0, 0.0, 1.0});  // x <= 1: boundary touches edge
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains({1.0, 0.5}));
}

TEST(ConvexPolygonTest, IntersectsHalfPlane) {
  auto box = ConvexPolygon::Box(0, 0, 1, 1);
  EXPECT_TRUE(box.IntersectsHalfPlane(HalfPlane{1.0, 0.0, 0.5}));
  EXPECT_TRUE(box.IntersectsHalfPlane(HalfPlane{1.0, 0.0, 0.0}));   // touch
  EXPECT_FALSE(box.IntersectsHalfPlane(HalfPlane{1.0, 0.0, -0.5}));
}

TEST(ConvexPolygonTest, CentroidInsideAfterManyClips) {
  auto poly = ConvexPolygon::Box(-10, -10, 10, 10);
  // Clip with a fan of half-planes approximating a disc of radius 5.
  for (int i = 0; i < 16; ++i) {
    const double ang = 2.0 * 3.14159265358979 * i / 16.0;
    poly.Clip(HalfPlane{std::cos(ang), std::sin(ang), 5.0});
    ASSERT_FALSE(poly.empty());
    EXPECT_TRUE(poly.Contains(poly.Centroid(), 1e-6)) << "i=" << i;
  }
}

TEST(ConvexPolygonTest, DegenerateStripIntersection) {
  // Two parallel-edged strips with different slopes intersect in a
  // parallelogram (the PBE-2 seed case).
  ConvexPolygon para({{0.0, 0.0}, {2.0, 0.0}, {3.0, 1.0}, {1.0, 1.0}});
  EXPECT_TRUE(para.Contains({1.5, 0.5}));
  para.Clip(HalfPlane{0.0, 1.0, 0.5});  // y <= 0.5
  EXPECT_FALSE(para.empty());
  EXPECT_TRUE(para.Contains({1.0, 0.25}));
  EXPECT_FALSE(para.Contains({1.0, 0.75}));
}

TEST(ConvexPolygonTest, ZeroWidthBandStaysNonEmpty) {
  // gamma = 0 in PBE-2 degenerates the feasible set to a segment;
  // clipping along the same line must keep it.
  ConvexPolygon seg({{0.0, 0.0}, {1.0, 1.0}, {1.0, 1.0}, {0.0, 0.0}});
  seg.Clip(HalfPlane{1.0, -1.0, 0.0});   // x - y <= 0 (the line itself)
  EXPECT_FALSE(seg.empty());
  seg.Clip(HalfPlane{-1.0, 1.0, 0.0});   // x - y >= 0
  EXPECT_FALSE(seg.empty());
}

TEST(ConvexPolygonTest, EmptyPolygonOperations) {
  ConvexPolygon p;
  EXPECT_TRUE(p.empty());
  p.Clip(HalfPlane{1.0, 0.0, 1.0});
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.IntersectsHalfPlane(HalfPlane{1.0, 0.0, 1.0}));
  EXPECT_FALSE(p.Contains({0.0, 0.0}));
}

}  // namespace
}  // namespace bursthist
