// Unit tests for interval-set metrics and the space-budgeted PBE-2.

#include <gtest/gtest.h>

#include "core/pbe2.h"
#include "eval/intervals.h"
#include "util/random.h"

namespace bursthist {
namespace {

TEST(IntervalMetricsTest, CoveredTimestamps) {
  EXPECT_EQ(CoveredTimestamps({}), 0u);
  EXPECT_EQ(CoveredTimestamps({{1, 1}}), 1u);
  EXPECT_EQ(CoveredTimestamps({{1, 3}, {10, 14}}), 3u + 5u);
}

TEST(IntervalMetricsTest, IntersectionSize) {
  std::vector<TimeInterval> a = {{0, 10}, {20, 30}};
  std::vector<TimeInterval> b = {{5, 25}};
  // [5,10] = 6, [20,25] = 6.
  EXPECT_EQ(IntersectionSize(a, b), 12u);
  EXPECT_EQ(IntersectionSize(b, a), 12u);
  EXPECT_EQ(IntersectionSize(a, {}), 0u);
  EXPECT_EQ(IntersectionSize(a, {{11, 19}}), 0u);
  EXPECT_EQ(IntersectionSize(a, {{10, 20}}), 2u);  // endpoints touch
}

TEST(IntervalMetricsTest, Jaccard) {
  EXPECT_DOUBLE_EQ(IntervalJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(IntervalJaccard({{0, 9}}, {}), 0.0);
  EXPECT_DOUBLE_EQ(IntervalJaccard({{0, 9}}, {{0, 9}}), 1.0);
  // |∩| = 5 ([5,9]), |∪| = 15 ([0,14]).
  EXPECT_DOUBLE_EQ(IntervalJaccard({{0, 9}}, {{5, 14}}), 5.0 / 15.0);
}

TEST(IntervalMetricsTest, CoverageFraction) {
  EXPECT_DOUBLE_EQ(CoverageFraction({}, {{0, 5}}), 1.0);
  EXPECT_DOUBLE_EQ(CoverageFraction({{0, 9}}, {{0, 4}}), 0.5);
  EXPECT_DOUBLE_EQ(CoverageFraction({{0, 9}}, {}), 0.0);
}

TEST(IntervalMetricsTest, AgreesWithCoversOnRandomSets) {
  Rng rng(9);
  auto random_set = [&](uint64_t seed) {
    Rng r2(seed);
    std::vector<TimeInterval> out;
    Timestamp t = 0;
    for (int i = 0; i < 20; ++i) {
      t += 2 + static_cast<Timestamp>(r2.NextBelow(30));
      const Timestamp end = t + static_cast<Timestamp>(r2.NextBelow(10));
      out.push_back({t, end});
      t = end;
    }
    return out;
  };
  auto a = random_set(rng.NextU64());
  auto b = random_set(rng.NextU64());
  uint64_t brute = 0;
  for (Timestamp t = 0; t <= 1200; ++t) {
    brute += (Covers(a, t) && Covers(b, t));
  }
  EXPECT_EQ(IntersectionSize(a, b), brute);
}

TEST(SpaceBudgetPbe2Test, StaysNearBudget) {
  Rng rng(11);
  std::vector<Timestamp> times;
  Timestamp t = 0;
  for (int i = 0; i < 60000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(4));
    times.push_back(t);
  }

  Pbe2Options fixed;
  fixed.gamma = 1.0;
  Pbe2 unbounded(fixed);
  Pbe2Options capped = fixed;
  capped.target_bytes = 4096;
  Pbe2 bounded(capped);
  for (Timestamp tt : times) {
    unbounded.Append(tt);
    bounded.Append(tt);
  }
  unbounded.Finalize();
  bounded.Finalize();

  EXPECT_GT(unbounded.SizeBytes(), 4u * 4096u);  // the cap is binding
  EXPECT_LE(bounded.SizeBytes(), 3u * 4096u);    // soft budget ~respected
  EXPECT_GT(bounded.MaxGamma(), fixed.gamma);    // it escalated

  // The escalated guarantee still holds.
  SingleEventStream stream(std::move(times));
  const double bound = 4.0 * bounded.MaxGamma() + 1e-6;
  for (Timestamp q = 0; q <= stream.times().back(); q += 997) {
    const double exact = static_cast<double>(stream.BurstinessAt(q, 100));
    EXPECT_LE(std::abs(bounded.EstimateBurstiness(q, 100) - exact), bound);
  }
}

TEST(SpaceBudgetPbe2Test, MaxGammaSurvivesSerialization) {
  Pbe2Options o;
  o.gamma = 1.0;
  o.target_bytes = 512;
  Pbe2 pbe(o);
  Rng rng(13);
  Timestamp t = 0;
  for (int i = 0; i < 20000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(4));
    pbe.Append(t);
  }
  pbe.Finalize();
  ASSERT_GT(pbe.MaxGamma(), o.gamma);

  BinaryWriter w;
  pbe.Serialize(&w);
  Pbe2 back;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  EXPECT_DOUBLE_EQ(back.MaxGamma(), pbe.MaxGamma());
}

TEST(SpaceBudgetPbe2Test, NoBudgetNoEscalation) {
  Pbe2Options o;
  o.gamma = 2.0;
  Pbe2 pbe(o);
  for (Timestamp t = 0; t < 5000; ++t) pbe.Append(t);
  pbe.Finalize();
  EXPECT_DOUBLE_EQ(pbe.MaxGamma(), 2.0);
}

}  // namespace
}  // namespace bursthist
