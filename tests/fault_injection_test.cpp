// Deterministic crash-recovery matrix.
//
// Every injected fault — an in-flight ENOSPC or torn write on any Nth
// write of the workload, or a post-hoc truncation / bit flip anywhere
// in the surviving files — must leave the directory in one of exactly
// two states:
//
//   1. recoverable to a PREFIX-CONSISTENT engine: query-identical to a
//      reference engine fed the first K workload records, where K is
//      however many appends the recovered engine holds; or
//   2. cleanly unrecoverable: RecoverBurstEngine returns a non-OK
//      Status.
//
// Never an assert, a hang, or an engine that answers queries from a
// history that was not some prefix of what was acknowledged.
//
// BurstEngine<Pbe1> state is a deterministic, losslessly-serializable
// function of its append sequence, so prefix consistency is checked as
// byte equality of serialized state — the strongest form of
// query-identical. A separate band test covers Pbe2, whose live
// serialization restarts one polygon window (gamma guarantee intact,
// bytes not identical).

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "core/burst_engine.h"
#include "differential/diff_harness.h"
#include "recovery/durable_engine.h"
#include "recovery/fault_env.h"
#include "recovery/snapshot.h"
#include "recovery/wal.h"
#include "test_util.h"
#include "util/env.h"
#include "util/random.h"

namespace bursthist {
namespace {

struct Record {
  EventId e;
  Timestamp t;
};

std::vector<Record> Workload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    out.push_back({static_cast<EventId>(rng.NextBelow(8)), t});
  }
  return out;
}

BurstEngineOptions<Pbe1> SmallOptions() {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 8;
  o.grid.depth = 1;
  o.grid.width = 8;
  o.cell.buffer_points = 16;
  o.cell.budget_points = 4;
  return o;
}

std::vector<uint8_t> Ser(const BurstEngine1& e) {
  BinaryWriter w;
  e.Serialize(&w);
  return w.TakeBytes();
}

// The recovered engine must equal the reference fed its own TotalCount
// of workload records (each append has count 1, so TotalCount == K).
void ExpectPrefixConsistent(BurstEngine1&& recovered,
                            const std::vector<Record>& workload,
                            size_t acked) {
  const uint64_t k = recovered.TotalCount();
  ASSERT_LE(k, workload.size());
  // Durability contract: everything acknowledged BEFORE the last
  // checkpoint-or-sync barrier must survive. The matrix only crashes
  // after full-workload sync when no fault fired, so here we just
  // require a prefix; `acked` bounds it from above.
  ASSERT_LE(k, acked);
  BurstEngine1 reference(SmallOptions());
  for (uint64_t i = 0; i < k; ++i) {
    ASSERT_TRUE(reference.Append(workload[i].e, workload[i].t).ok());
  }
  EXPECT_EQ(Ser(recovered), Ser(reference)) << "recovered K=" << k;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = Env::Default();
    dir_ = testing::TempDir() + "/bursthist_fault_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    Clean();
    ASSERT_TRUE(base_->CreateDirIfMissing(dir_).ok());
  }

  void TearDown() override {
    Clean();
    ::rmdir(dir_.c_str());
  }

  void Clean() {
    auto names = base_->ListDir(dir_);
    if (!names.ok()) return;
    for (const auto& n : names.value()) (void)base_->DeleteFile(dir_ + "/" + n);
  }

  // Runs the workload (checkpoint halfway) against `env`; returns how
  // many appends were acknowledged before the first failure. A fault
  // anywhere — open, append, checkpoint — just ends the "process".
  size_t RunWorkload(Env* env, const std::vector<Record>& workload) {
    auto durable = DurableBurstEngine1::Open(env, dir_, SmallOptions());
    if (!durable.ok()) return 0;
    size_t acked = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
      if (i == workload.size() / 2) {
        if (!durable.value()->Checkpoint().ok()) return acked;
      }
      if (!durable.value()->Append(workload[i].e, workload[i].t).ok()) {
        return acked;
      }
      ++acked;
    }
    (void)durable.value()->Sync();
    return acked;
  }

  Env* base_ = nullptr;
  std::string dir_;
};

// In-flight faults: fail write #N, for every N the workload issues,
// losing the whole buffer (pure ENOSPC).
TEST_F(FaultMatrixTest, EnospcOnEveryNthWrite) {
  const auto workload = Workload(60, 31);
  // Count the writes a clean run issues.
  FaultInjectionEnv counter(base_);
  RunWorkload(&counter, workload);
  const uint64_t total_writes = counter.writes_issued();
  ASSERT_GT(total_writes, 10u);
  Clean();

  for (uint64_t n = 1; n <= total_writes; ++n) {
    SCOPED_TRACE("fail write " + std::to_string(n));
    FaultInjectionEnv faulty(base_);
    faulty.FailNthWrite(n, /*persist_prefix_bytes=*/0);
    const size_t acked = RunWorkload(&faulty, workload);
    if (!faulty.fault_fired()) {
      EXPECT_EQ(acked, workload.size());
    }

    auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
    if (recovered.ok()) {
      ExpectPrefixConsistent(std::move(recovered).value(), workload,
                             workload.size());
    } else {
      EXPECT_FALSE(recovered.status().message().empty());
    }
    Clean();
  }
}

// Torn writes: the failing write persists only a prefix of its buffer
// — every prefix length of a mid-workload record write.
TEST_F(FaultMatrixTest, TornWriteAtEveryByteOffset) {
  const auto workload = Workload(40, 32);
  FaultInjectionEnv counter(base_);
  RunWorkload(&counter, workload);
  const uint64_t total_writes = counter.writes_issued();
  Clean();

  // A WAL event record frame is 29 bytes; sweep every tear length on a
  // sample of writes (every write x every offset is quadratic — the
  // stride keeps the matrix dense enough to hit header, CRC, and
  // payload tears while staying fast).
  for (uint64_t n = 1; n <= total_writes; n += 3) {
    for (uint64_t tear = 1; tear <= 28; tear += 5) {
      SCOPED_TRACE("write " + std::to_string(n) + " torn at " +
                   std::to_string(tear));
      FaultInjectionEnv faulty(base_);
      faulty.FailNthWrite(n, tear);
      RunWorkload(&faulty, workload);

      auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
      if (recovered.ok()) {
        ExpectPrefixConsistent(std::move(recovered).value(), workload,
                               workload.size());
      }
      Clean();
    }
  }
}

// Post-hoc media faults: truncate every surviving file to every
// (strided) length after a clean run + crash.
TEST_F(FaultMatrixTest, TruncationSweepOverSurvivingFiles) {
  const auto workload = Workload(60, 33);
  RunWorkload(base_, workload);
  auto names = base_->ListDir(dir_);
  ASSERT_TRUE(names.ok());
  ASSERT_FALSE(names.value().empty());

  for (const auto& name : names.value()) {
    const std::string path = dir_ + "/" + name;
    auto pristine = base_->ReadFileBytes(path);
    ASSERT_TRUE(pristine.ok());
    const uint64_t size = pristine.value().size();
    for (uint64_t keep = 0; keep < size; keep += (size > 512 ? 13 : 1)) {
      SCOPED_TRACE(name + " truncated to " + std::to_string(keep));
      ASSERT_TRUE(TruncateFileTo(base_, path, keep).ok());
      auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
      if (recovered.ok()) {
        ExpectPrefixConsistent(std::move(recovered).value(), workload,
                               workload.size());
      }
      // Restore.
      auto file = base_->NewWritableFile(path);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE(file.value()->Append(pristine.value()).ok());
      ASSERT_TRUE(file.value()->Close().ok());
    }
  }
}

// Post-hoc media faults: flip a bit at every (strided) byte of every
// surviving file.
TEST_F(FaultMatrixTest, BitFlipSweepOverSurvivingFiles) {
  const auto workload = Workload(60, 34);
  RunWorkload(base_, workload);
  auto names = base_->ListDir(dir_);
  ASSERT_TRUE(names.ok());

  for (const auto& name : names.value()) {
    const std::string path = dir_ + "/" + name;
    auto pristine = base_->ReadFileBytes(path);
    ASSERT_TRUE(pristine.ok());
    const uint64_t size = pristine.value().size();
    for (uint64_t off = 0; off < size; off += (size > 512 ? 7 : 1)) {
      SCOPED_TRACE(name + " bit flip at " + std::to_string(off));
      ASSERT_TRUE(FlipBit(base_, path, off, off % 8).ok());
      auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
      if (recovered.ok()) {
        ExpectPrefixConsistent(std::move(recovered).value(), workload,
                               workload.size());
      }
      auto file = base_->NewWritableFile(path);
      ASSERT_TRUE(file.ok());
      ASSERT_TRUE(file.value()->Append(pristine.value()).ok());
      ASSERT_TRUE(file.value()->Close().ok());
    }
  }
}

// A WAL append that fails must not ingest the record: the engine and
// the log stay in agreement.
TEST_F(FaultMatrixTest, FailedLogWriteDoesNotIngest) {
  const auto workload = Workload(10, 35);
  FaultInjectionEnv faulty(base_);
  auto durable = DurableBurstEngine1::Open(&faulty, dir_, SmallOptions());
  ASSERT_TRUE(durable.ok());
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
  }
  faulty.FailNthWrite(1);
  Status st = durable.value()->Append(workload[5].e, workload[5].t);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(durable.value()->engine().TotalCount(), 5u);

  // The directory still recovers to exactly the 5 acknowledged
  // records.
  auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().TotalCount(), 5u);
}

// Pbe2's live serialization restarts one polygon window, so recovered
// state is not byte-identical — but every query must stay inside the
// gamma band the estimator guarantees, and counts must match exactly.
TEST_F(FaultMatrixTest, Pbe2RecoveryStaysInGammaBand) {
  BurstEngineOptions<Pbe2> o;
  o.universe_size = 8;
  o.grid.depth = 1;
  o.grid.width = 8;
  o.cell.gamma = 2.0;
  const auto workload = Workload(300, 36);

  {
    auto durable = DurableBurstEngine<Pbe2>::Open(base_, dir_, o);
    ASSERT_TRUE(durable.ok());
    for (size_t i = 0; i < workload.size(); ++i) {
      if (i == 150) {
        ASSERT_TRUE(durable.value()->Checkpoint().ok());
      }
      ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
    }
    ASSERT_TRUE(durable.value()->Sync().ok());
  }
  auto recovered = RecoverBurstEngine<Pbe2>(base_, dir_, o);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value().TotalCount(), workload.size());

  BurstEngine<Pbe2> reference(o);
  for (const auto& r : workload) {
    ASSERT_TRUE(reference.Append(r.e, r.t).ok());
  }
  recovered.value().Finalize();
  reference.Finalize();
  const Timestamp horizon = workload.back().t;
  for (EventId e = 0; e < 8; ++e) {
    for (Timestamp t = 0; t <= horizon; t += 11) {
      const double ref = reference.CumulativeQuery(e, t);
      const double got = recovered.value().CumulativeQuery(e, t);
      // Both estimates gamma-approximate the same true curve, so they
      // agree within a factor of gamma^2 (and exactly at zero).
      if (ref == 0.0) {
        EXPECT_EQ(got, 0.0) << "e=" << e << " t=" << t;
      } else {
        EXPECT_LE(got, ref * o.cell.gamma * o.cell.gamma + 1e-9);
        EXPECT_GE(got, ref / (o.cell.gamma * o.cell.gamma) - 1e-9);
      }
    }
  }
}

// Out-of-order streams meet the crash path: late-but-admissible
// records sit in the re-order buffer when the process dies, so the
// snapshot's pending state and the WAL tail must reassemble the exact
// buffered engine. Differential check: the recovered engine must be
// byte-identical to a never-crashed engine fed the same acknowledged
// arrival prefix, at several crash points and two torn-tail lengths.
TEST_F(FaultMatrixTest, OutOfOrderCrashRecoveryMatchesUncrashed) {
  test::StreamSpec spec;
  spec.family = test::StreamFamily::kOutOfOrder;
  spec.universe = 8;  // matches SmallOptions()
  spec.n = 90;
  spec.seed = test::CaseSeed(4040);
  spec.max_lateness = 5;
  const auto arrivals = test::GenerateArrivals(spec);
  auto options = SmallOptions();
  options.max_lateness = 5;

  for (size_t cut : {arrivals.size() / 4, arrivals.size() / 2,
                     arrivals.size() - 1, arrivals.size()}) {
    for (uint64_t tear : {uint64_t{0}, uint64_t{9}}) {
      SCOPED_TRACE("cut=" + std::to_string(cut) +
                   " tear=" + std::to_string(tear));
      Clean();
      {
        auto durable = DurableBurstEngine<Pbe1>::Open(base_, dir_, options);
        ASSERT_TRUE(durable.ok());
        for (size_t i = 0; i < cut; ++i) {
          ASSERT_TRUE(
              durable.value()->Append(arrivals[i].id, arrivals[i].time).ok());
          if (i == cut / 2) ASSERT_TRUE(durable.value()->Checkpoint().ok());
        }
        ASSERT_TRUE(durable.value()->Sync().ok());
      }  // crash: drop the handle with records still buffered

      if (tear > 0) {
        // Shear the synced WAL tail mid-record, as a real crash during
        // the *next* (unacknowledged) append would: recovery must fall
        // back to the longest clean record prefix.
        auto names = base_->ListDir(dir_);
        ASSERT_TRUE(names.ok());
        bool sheared = false;
        for (const auto& name : names.value()) {
          if (name.rfind("wal-", 0) != 0) continue;
          const std::string path = dir_ + "/" + name;
          auto bytes = base_->ReadFileBytes(path);
          ASSERT_TRUE(bytes.ok());
          if (bytes.value().size() <= tear) continue;
          ASSERT_TRUE(
              TruncateFileTo(base_, path, bytes.value().size() - tear).ok());
          sheared = true;
        }
        ASSERT_TRUE(sheared) << "no WAL segment found to shear";
      }

      auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, options);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      const uint64_t k = recovered.value().TotalCount() +
                         recovered.value().BufferedCount();
      ASSERT_LE(k, cut);
      if (tear == 0) ASSERT_EQ(k, cut);  // synced prefix fully survives

      BurstEngine<Pbe1> reference(options);
      for (uint64_t i = 0; i < k; ++i) {
        ASSERT_TRUE(reference.Append(arrivals[i].id, arrivals[i].time).ok());
      }
      EXPECT_EQ(Ser(recovered.value()), Ser(reference));

      // The buffered records must also finalize identically: drain
      // both and compare point answers over the whole history.
      recovered.value().Finalize();
      reference.Finalize();
      EXPECT_EQ(Ser(recovered.value()), Ser(reference));
    }
  }
}

// ---------------------------------------------------------------------------
// Batched appends meet the fault matrix. AppendBatch's abort contract:
// a batch whose WAL tee fails applies NOTHING (all-or-nothing, applied
// == 0); a batch refused by a per-record observer applies exactly the
// observed prefix and reports it. Both must be deterministic, and the
// directory must stay prefix-consistent through every injected fault.
// ---------------------------------------------------------------------------

std::vector<WeightedRecord> ToBatch(const std::vector<Record>& workload,
                                    size_t begin, size_t end) {
  std::vector<WeightedRecord> batch;
  for (size_t i = begin; i < end; ++i) {
    batch.push_back(WeightedRecord{workload[i].e, workload[i].t, 1});
  }
  return batch;
}

// A WAL fault mid-batch aborts the whole batch (nothing was logged, so
// nothing may be ingested) and leaves the engine resubmittable: the
// identical resubmit succeeds and the full history recovers.
TEST_F(FaultMatrixTest, BatchAbortOnWalFaultIsAllOrNothing) {
  const auto workload = Workload(24, 37);
  FaultInjectionEnv faulty(base_);
  auto durable = DurableBurstEngine1::Open(&faulty, dir_, SmallOptions());
  ASSERT_TRUE(durable.ok());
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(durable.value()->Append(workload[i].e, workload[i].t).ok());
  }
  const auto batch = ToBatch(workload, 8, workload.size());

  faulty.FailNthWrite(1);
  size_t applied = 123;
  const Status st = durable.value()->AppendBatch(batch, &applied);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(applied, 0u) << "batch tee failure must apply nothing";
  EXPECT_EQ(durable.value()->engine().TotalCount(), 8u);

  // Deterministic resubmit: the same span lands whole.
  applied = 0;
  ASSERT_TRUE(durable.value()->AppendBatch(batch, &applied).ok());
  EXPECT_EQ(applied, batch.size());
  ASSERT_TRUE(durable.value()->Sync().ok());

  auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectPrefixConsistent(std::move(recovered).value(), workload,
                         workload.size());
  EXPECT_EQ(durable.value()->engine().TotalCount(), workload.size());
}

// ENOSPC and torn writes against a batched workload: the batch WAL
// frame write is one buffer of many record frames, so a tear can land
// mid-frame or between frames. Either way recovery must fall back to a
// clean RECORD prefix — possibly mid-batch — never a torn one.
TEST_F(FaultMatrixTest, BatchedWorkloadSurvivesEnospcAndTornWrites) {
  constexpr size_t kBatch = 10;
  const auto workload = Workload(60, 38);
  const auto run = [&](Env* env) {
    auto durable = DurableBurstEngine1::Open(env, dir_, SmallOptions());
    if (!durable.ok()) return size_t{0};
    size_t acked = 0;
    for (size_t begin = 0; begin < workload.size(); begin += kBatch) {
      if (begin == workload.size() / 2) {
        if (!durable.value()->Checkpoint().ok()) return acked;
      }
      const auto batch = ToBatch(
          workload, begin, std::min(begin + kBatch, workload.size()));
      size_t applied = 0;
      if (!durable.value()->AppendBatch(batch, &applied).ok()) {
        EXPECT_EQ(applied, 0u);  // all-or-nothing, every time
        return acked;
      }
      acked += applied;
    }
    (void)durable.value()->Sync();
    return acked;
  };

  FaultInjectionEnv counter(base_);
  run(&counter);
  const uint64_t total_writes = counter.writes_issued();
  ASSERT_GT(total_writes, 4u);
  Clean();

  // tear=0 is pure ENOSPC; 13 tears inside the first frame; 100 keeps
  // whole frames plus a ragged tail of the batch buffer.
  for (uint64_t n = 1; n <= total_writes; ++n) {
    for (uint64_t tear : {uint64_t{0}, uint64_t{13}, uint64_t{100}}) {
      SCOPED_TRACE("fail write " + std::to_string(n) + " tear " +
                   std::to_string(tear));
      FaultInjectionEnv faulty(base_);
      faulty.FailNthWrite(n, tear);
      run(&faulty);
      auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
      if (recovered.ok()) {
        ExpectPrefixConsistent(std::move(recovered).value(), workload,
                               workload.size());
      } else {
        EXPECT_FALSE(recovered.status().message().empty());
      }
      Clean();
    }
  }
}

// Engine-level abort contract, no WAL involved: a per-record observer
// that refuses record k makes AppendBatch ingest exactly the k-record
// prefix and report it — byte-identical to a reference fed that
// prefix, on every run.
TEST(BatchAbortTest, ObserverRefusalAppliesReportedPrefixDeterministically) {
  const auto workload = Workload(12, 39);
  const auto batch = ToBatch(workload, 0, workload.size());
  std::vector<uint8_t> first_bytes;
  for (int trial = 0; trial < 3; ++trial) {
    BurstEngine1 engine(SmallOptions());
    size_t calls = 0;
    engine.set_append_observer([&calls](EventId, Timestamp, Count) {
      return ++calls == 6 ? Status::IOError("injected refusal")
                          : Status::OK();
    });
    size_t applied = 99;
    const Status st = engine.AppendBatch(batch, &applied);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIOError);
    ASSERT_EQ(applied, 5u);
    EXPECT_EQ(engine.TotalCount(), 5u);

    BurstEngine1 reference(SmallOptions());
    for (size_t i = 0; i < applied; ++i) {
      ASSERT_TRUE(reference.Append(workload[i].e, workload[i].t).ok());
    }
    EXPECT_EQ(Ser(engine), Ser(reference));
    if (trial == 0) {
      first_bytes = Ser(engine);
    } else {
      EXPECT_EQ(Ser(engine), first_bytes) << "abort point drifted";
    }
  }
}

// Engine-level batch-tee contract: a failing batch observer means
// nothing was logged, so nothing may be ingested.
TEST(BatchAbortTest, BatchObserverRefusalAppliesNothing) {
  const auto workload = Workload(12, 40);
  const auto batch = ToBatch(workload, 0, workload.size());
  BurstEngine1 engine(SmallOptions());
  engine.set_batch_append_observer(
      [](std::span<const WeightedRecord>) {
        return Status::IOError("tee down");
      });
  size_t applied = 99;
  ASSERT_FALSE(engine.AppendBatch(batch, &applied).ok());
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(engine.TotalCount(), 0u);
  EXPECT_EQ(Ser(engine), Ser(BurstEngine1(SmallOptions())));
}

// A failed DIRECTORY fsync after segment creation means the segment's
// very existence is unconfirmed: the writer must poison itself
// (fail-stop) rather than keep acknowledging appends into a file a
// power cut could erase. Here the first dir-sync is the initial
// segment's, so Open itself must refuse.
TEST_F(FaultMatrixTest, DirSyncFailureOnSegmentCreationFailsOpen) {
  FaultInjectionEnv faulty(base_);
  faulty.FailNthDirSync(1);
  auto durable = DurableBurstEngine1::Open(&faulty, dir_, SmallOptions());
  ASSERT_FALSE(durable.ok());

  // Nothing was acknowledged, so the directory recovers empty — and a
  // healed env opens it normally.
  auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().TotalCount(), 0u);
  faulty.Disarm();
  auto reopened = DurableBurstEngine1::Open(&faulty, dir_, SmallOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened.value()->Append(1, 1).ok());
}

// A dir-sync failure during Checkpoint (either the rotated segment's
// or the published snapshot's) fails the checkpoint cleanly; every
// already-acknowledged record still recovers.
TEST_F(FaultMatrixTest, DirSyncFailureDuringCheckpointKeepsAckedRecords) {
  const auto workload = Workload(40, 77);
  // Arming resets the counter, so within the checkpoint: #1 is the
  // rotated segment's dir-sync, #2 the published snapshot's. Fail
  // each in turn.
  for (uint64_t n = 1; n <= 2; ++n) {
    SCOPED_TRACE("fail dir-sync " + std::to_string(n));
    FaultInjectionEnv faulty(base_);
    auto durable = DurableBurstEngine1::Open(&faulty, dir_, SmallOptions());
    ASSERT_TRUE(durable.ok());
    for (const auto& r : workload) {
      ASSERT_TRUE(durable.value()->Append(r.e, r.t).ok());
    }
    faulty.FailNthDirSync(n);
    EXPECT_FALSE(durable.value()->Checkpoint().ok());
    EXPECT_EQ(durable.value()->generation(), 0u)
        << "failed checkpoint must not advance the generation";
    durable.value().reset();

    auto recovered = RecoverBurstEngine<Pbe1>(base_, dir_, SmallOptions());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ExpectPrefixConsistent(std::move(recovered).value(), workload,
                           workload.size());
    EXPECT_EQ(faulty.dir_syncs_issued() >= n, true);
    Clean();
  }
}

}  // namespace
}  // namespace bursthist
