// Unit tests for the util substrate: Status/Result, binary
// serialization, and the deterministic RNG.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"

namespace bursthist {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kCorruption, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(SerializeTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.Put<uint32_t>(0xdeadbeef);
  w.Put<int64_t>(-12345);
  w.Put<double>(3.25);
  w.Put<uint8_t>(7);

  BinaryReader r(w.bytes());
  uint32_t a = 0;
  int64_t b = 0;
  double c = 0;
  uint8_t d = 0;
  ASSERT_TRUE(r.Get(&a).ok());
  ASSERT_TRUE(r.Get(&b).ok());
  ASSERT_TRUE(r.Get(&c).ok());
  ASSERT_TRUE(r.Get(&d).ok());
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, -12345);
  EXPECT_DOUBLE_EQ(c, 3.25);
  EXPECT_EQ(d, 7);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, VectorRoundTrip) {
  BinaryWriter w;
  std::vector<int32_t> in = {5, -1, 9, 0};
  w.PutVector(in);
  w.PutVector(std::vector<double>{});

  BinaryReader r(w.bytes());
  std::vector<int32_t> out;
  std::vector<double> empty;
  ASSERT_TRUE(r.GetVector(&out).ok());
  ASSERT_TRUE(r.GetVector(&empty).ok());
  EXPECT_EQ(out, in);
  EXPECT_TRUE(empty.empty());
}

TEST(SerializeTest, StringRoundTrip) {
  BinaryWriter w;
  w.PutString("bursthist");
  w.PutString("");
  BinaryReader r(w.bytes());
  std::string a, b;
  ASSERT_TRUE(r.GetString(&a).ok());
  ASSERT_TRUE(r.GetString(&b).ok());
  EXPECT_EQ(a, "bursthist");
  EXPECT_EQ(b, "");
}

TEST(SerializeTest, TruncatedScalarIsCorruption) {
  BinaryWriter w;
  w.Put<uint16_t>(1);
  BinaryReader r(w.bytes());
  uint64_t big = 0;
  EXPECT_EQ(r.Get(&big).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, TruncatedVectorIsCorruption) {
  BinaryWriter w;
  w.Put<uint64_t>(1000);  // claims 1000 elements, provides none
  BinaryReader r(w.bytes());
  std::vector<uint64_t> out;
  EXPECT_EQ(r.GetVector(&out).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, HugeLengthDoesNotOverflow) {
  BinaryWriter w;
  w.Put<uint64_t>(~0ULL);  // absurd length
  BinaryReader r(w.bytes());
  std::vector<uint64_t> out;
  EXPECT_EQ(r.GetVector(&out).code(), StatusCode::kCorruption);
  std::string s;
  BinaryReader r2(w.bytes());
  EXPECT_EQ(r2.GetString(&s).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/bursthist_serialize_test.bin";
  std::vector<uint8_t> payload = {1, 2, 3, 250, 255};
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto back = ReadFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto r = ReadFile("/nonexistent/bursthist/nope.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(11);
  for (double mean : {0.5, 3.0, 25.0, 100.0}) {
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      sum += static_cast<double>(rng.NextPoisson(mean));
    }
    const double observed = sum / trials;
    EXPECT_NEAR(observed, mean, 4.0 * std::sqrt(mean / trials) + 0.05)
        << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng fork = a.Fork(1);
  Rng a2(21);
  // The fork must not replay the parent's sequence.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (fork.NextU64() == a2.NextU64());
  EXPECT_LT(same, 2);
}

TEST(Crc32cTest, KnownAnswerVectors) {
  // RFC 3720 / CRC-32C (Castagnoli) reference vectors.
  const uint8_t digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);

  uint8_t zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, 32), 0x8a9136aau);

  uint8_t ffs[32];
  std::memset(ffs, 0xff, sizeof(ffs));
  EXPECT_EQ(Crc32c(ffs, 32), 0x62a8ab43u);

  uint8_t inc[32];
  for (int i = 0; i < 32; ++i) inc[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(inc, 32), 0x46dd794eu);

  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, ExtendIsIncremental) {
  const uint8_t digits[] = "123456789";
  uint32_t crc = Crc32cExtend(0, digits, 4);
  crc = Crc32cExtend(crc, digits + 4, 5);
  EXPECT_EQ(crc, Crc32c(digits, 9));
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_NE(Crc32cMask(crc), crc);
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
  }
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  uint8_t buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = static_cast<uint8_t>(i * 7 + 1);
  const uint32_t base = Crc32c(buf, sizeof(buf));
  for (size_t byte = 0; byte < sizeof(buf); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(Crc32c(buf, sizeof(buf)), base)
          << "byte " << byte << " bit " << bit;
      buf[byte] ^= static_cast<uint8_t>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace bursthist
