// Unit tests for the SpaceSaving heavy-hitters summary.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sketch/space_saving.h"
#include "util/random.h"

namespace bursthist {
namespace {

TEST(SpaceSavingTest, ExactWhileUnderCapacity) {
  SpaceSaving ss(8);
  ss.Add(1, 5);
  ss.Add(2, 3);
  ss.Add(1, 2);
  EXPECT_EQ(ss.EstimateCount(1), 7u);
  EXPECT_EQ(ss.EstimateCount(2), 3u);
  EXPECT_EQ(ss.EstimateCount(99), 0u);  // no eviction yet: exact zero
  EXPECT_EQ(ss.TotalCount(), 10u);
  EXPECT_TRUE(ss.GuaranteedAtLeast(1, 7));
  EXPECT_FALSE(ss.GuaranteedAtLeast(1, 8));
}

TEST(SpaceSavingTest, NeverUnderestimates) {
  SpaceSaving ss(16);
  std::map<uint64_t, uint64_t> exact;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    // Zipf-flavoured keys over a universe of 200.
    uint64_t key = rng.NextBelow(200);
    if (rng.NextDouble() < 0.6) key = rng.NextBelow(8);
    ss.Add(key);
    ++exact[key];
  }
  for (const auto& [k, v] : exact) {
    EXPECT_GE(ss.EstimateCount(k), v) << "key " << k;
  }
}

TEST(SpaceSavingTest, HeavyHittersGuaranteeTracked) {
  // Any key with count > N/m must be tracked.
  const size_t m = 10;
  SpaceSaving ss(m);
  Rng rng(5);
  std::map<uint64_t, uint64_t> exact;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    uint64_t key = rng.NextBelow(1000);
    if (rng.NextDouble() < 0.5) key = rng.NextBelow(3);  // 3 heavy keys
    ss.Add(key);
    ++exact[key];
  }
  auto top = ss.TopK();
  for (const auto& [k, v] : exact) {
    if (v > static_cast<uint64_t>(n) / m) {
      bool tracked = false;
      for (const auto& e : top) tracked |= (e.key == k);
      EXPECT_TRUE(tracked) << "heavy key " << k << " (count " << v
                           << ") not tracked";
    }
  }
}

TEST(SpaceSavingTest, TopKSortedAndTruncated) {
  SpaceSaving ss(8);
  for (uint64_t k = 0; k < 8; ++k) ss.Add(k, (k + 1) * 10);
  auto top3 = ss.TopK(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].key, 7u);
  EXPECT_EQ(top3[1].key, 6u);
  EXPECT_EQ(top3[2].key, 5u);
  EXPECT_EQ(ss.TopK().size(), 8u);
}

TEST(SpaceSavingTest, ErrorBoundsTrueCount) {
  SpaceSaving ss(4);
  Rng rng(7);
  std::map<uint64_t, uint64_t> exact;
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.NextBelow(50);
    ss.Add(key);
    ++exact[key];
  }
  for (const auto& e : ss.TopK()) {
    EXPECT_LE(e.count - e.error, exact[e.key]);
    EXPECT_GE(e.count, exact[e.key]);
  }
}

TEST(SpaceSavingTest, SerializationRoundTrip) {
  SpaceSaving ss(16);
  Rng rng(9);
  for (int i = 0; i < 3000; ++i) ss.Add(rng.NextBelow(100));
  BinaryWriter w;
  ss.Serialize(&w);
  SpaceSaving back(1);
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  EXPECT_EQ(back.capacity(), ss.capacity());
  EXPECT_EQ(back.TotalCount(), ss.TotalCount());
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(back.EstimateCount(k), ss.EstimateCount(k));
  }
}

TEST(SpaceSavingTest, CorruptPayloadRejected) {
  BinaryWriter w;
  w.Put<uint32_t>(0xbad);
  SpaceSaving ss(4);
  BinaryReader r(w.bytes());
  EXPECT_FALSE(ss.Deserialize(&r).ok());

  // Inconsistent entry (error > count).
  BinaryWriter w2;
  w2.Put<uint32_t>(0x53505356);
  w2.Put<uint32_t>(1);
  w2.Put<uint64_t>(4);  // capacity
  w2.Put<uint64_t>(1);  // total
  w2.Put<uint64_t>(1);  // entries
  w2.Put<uint64_t>(7);  // key
  w2.Put<uint64_t>(1);  // count
  w2.Put<uint64_t>(5);  // error > count
  SpaceSaving ss2(4);
  BinaryReader r2(w2.bytes());
  EXPECT_EQ(ss2.Deserialize(&r2).code(), StatusCode::kCorruption);
}

TEST(SpaceSavingTest, CapacityOneDegenerate) {
  SpaceSaving ss(1);
  ss.Add(1, 3);
  ss.Add(2, 1);  // evicts 1, inherits its count as error
  EXPECT_EQ(ss.EstimateCount(2), 4u);
  auto top = ss.TopK();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].error, 3u);
}

}  // namespace
}  // namespace bursthist
