// Unit tests for the exact frequency staircase curve (Section III).

#include <gtest/gtest.h>

#include <vector>

#include "stream/frequency_curve.h"

namespace bursthist {
namespace {

TEST(FrequencyCurveTest, BuildsCornerPointsFromDuplicates) {
  SingleEventStream s({1, 1, 4, 4, 4, 9});
  FrequencyCurve c(s);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.points()[0], (CurvePoint{1, 2}));
  EXPECT_EQ(c.points()[1], (CurvePoint{4, 5}));
  EXPECT_EQ(c.points()[2], (CurvePoint{9, 6}));
}

TEST(FrequencyCurveTest, EvaluateMatchesStream) {
  SingleEventStream s({1, 1, 4, 4, 4, 9, 12, 12});
  FrequencyCurve c(s);
  for (Timestamp t = -2; t <= 15; ++t) {
    EXPECT_EQ(c.Evaluate(t), s.CumulativeFrequency(t)) << "t=" << t;
  }
}

TEST(FrequencyCurveTest, BurstinessMatchesStream) {
  SingleEventStream s({1, 2, 2, 3, 5, 5, 5, 8, 9, 9, 9, 9});
  FrequencyCurve c(s);
  for (Timestamp t = 0; t <= 12; ++t) {
    for (Timestamp tau : {1, 2, 4}) {
      EXPECT_EQ(c.BurstinessAt(t, tau), s.BurstinessAt(t, tau))
          << "t=" << t << " tau=" << tau;
    }
  }
}

TEST(FrequencyCurveTest, EmptyCurve) {
  FrequencyCurve c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.Evaluate(100), 0u);
  EXPECT_EQ(c.BurstinessAt(5, 2), 0);
}

TEST(FrequencyCurveTest, AugmentedPointsInsertPreRiseLevels) {
  // Corners at t=1 (2), t=4 (5), t=5 (6), t=9 (7).
  FrequencyCurve c({{1, 2}, {4, 5}, {5, 6}, {9, 7}});
  auto aug = c.AugmentedPoints();
  // Expected: (1,2), (3,2) pre-rise of t=4, (4,5), (5,6) [gap 1: no
  // pre-point], (8,6) pre-rise of t=9, (9,7).
  ASSERT_EQ(aug.size(), 6u);
  EXPECT_EQ(aug[0], (CurvePoint{1, 2}));
  EXPECT_EQ(aug[1], (CurvePoint{3, 2}));
  EXPECT_EQ(aug[2], (CurvePoint{4, 5}));
  EXPECT_EQ(aug[3], (CurvePoint{5, 6}));
  EXPECT_EQ(aug[4], (CurvePoint{8, 6}));
  EXPECT_EQ(aug[5], (CurvePoint{9, 7}));
}

TEST(FrequencyCurveTest, AugmentedPointsAreOnTheCurve) {
  SingleEventStream s({2, 5, 5, 11, 30, 30, 31});
  FrequencyCurve c(s);
  for (const auto& p : c.AugmentedPoints()) {
    EXPECT_EQ(c.Evaluate(p.time), p.count) << "t=" << p.time;
  }
}

TEST(FrequencyCurveTest, AugmentedPointsStrictlyIncreasingTimes) {
  SingleEventStream s({1, 2, 3, 4, 10, 11, 20});
  FrequencyCurve c(s);
  auto aug = c.AugmentedPoints();
  for (size_t i = 1; i < aug.size(); ++i) {
    EXPECT_GT(aug[i].time, aug[i - 1].time);
  }
  EXPECT_LE(aug.size(), 2 * c.size());
}

TEST(FrequencyCurveTest, AreaAboveSelfIsZero) {
  FrequencyCurve c({{0, 1}, {4, 3}, {7, 8}});
  EXPECT_DOUBLE_EQ(c.AreaAbove(c, 10), 0.0);
}

TEST(FrequencyCurveTest, AreaAboveSubsetApproximation) {
  // Full curve: (0,1), (2,2), (5,4), (8,5). Approx drops (2,2), (5,4).
  FrequencyCurve full({{0, 1}, {2, 2}, {5, 4}, {8, 5}});
  FrequencyCurve approx({{0, 1}, {8, 5}});
  // Error: t in [2,5): (2-1)*3 = 3; t in [5,8): (4-1)*3 = 9 -> 12.
  EXPECT_DOUBLE_EQ(full.AreaAbove(approx, 8), 12.0);
}

}  // namespace
}  // namespace bursthist
