// Unit tests for the message -> event-id pipeline (Section II-A).

#include <gtest/gtest.h>

#include "stream/text_pipeline.h"

namespace bursthist {
namespace {

TEST(TokenizeTest, BasicSplitAndLowercase) {
  auto toks = Tokenize("LBC homeboy stoked to see Brasil wins");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0], "lbc");
  EXPECT_EQ(toks[5], "brasil");
}

TEST(TokenizeTest, HashtagsKeepPrefix) {
  auto toks = Tokenize("#brasil #gold #Olympics2016");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "#brasil");
  EXPECT_EQ(toks[1], "#gold");
  EXPECT_EQ(toks[2], "#olympics2016");
}

TEST(TokenizeTest, PunctuationAndEdgeCases) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ...").empty());
  auto toks = Tokenize("a#b");  // '#' mid-word is a separator
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "a");
  EXPECT_EQ(toks[1], "b");
  auto under = Tokenize("snake_case stays");
  EXPECT_EQ(under[0], "snake_case");
}

TEST(ExtractHashtagsTest, OnlyTags) {
  auto tags = ExtractHashtags("watch #Rio2016 now! #gold medal");
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], "#rio2016");
  EXPECT_EQ(tags[1], "#gold");
  EXPECT_TRUE(ExtractHashtags("no tags here").empty());
  // A bare '#' is not a tag.
  EXPECT_TRUE(ExtractHashtags("# nothing").empty());
}

TEST(EventIdMapperTest, PaperExampleCollapsesToOneEvent) {
  // The paper's motivating pair: both messages must map to the Rio
  // soccer-final event once "brasil" is curated.
  EventIdMapper mapper(864);
  ASSERT_TRUE(mapper.BindKeyword("brasil", 17).ok());
  ASSERT_TRUE(mapper.BindKeyword("#brasil", 17).ok());

  auto a = mapper.MapMessage("LBC homeboy stoked to see Brasil wins");
  auto b = mapper.MapMessage("#brasil #gold #Olympics2016");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 17u);
  ASSERT_EQ(b.size(), 1u);  // bound token wins over unbound hashtags
  EXPECT_EQ(b[0], 17u);
}

TEST(EventIdMapperTest, MultiEventMessages) {
  EventIdMapper mapper(100);
  ASSERT_TRUE(mapper.BindKeyword("#fire", 3).ok());
  ASSERT_TRUE(mapper.BindKeyword("#traffic", 9).ok());
  auto ids = mapper.MapMessage("#fire closed I-15, heavy #traffic");
  EXPECT_EQ(ids, (std::vector<EventId>{3, 9}));
}

TEST(EventIdMapperTest, UnboundHashtagsHashIntoUniverse) {
  EventIdMapper mapper(50);
  auto ids = mapper.MapMessage("#somethingnew happening");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_LT(ids[0], 50u);
  // Deterministic.
  EXPECT_EQ(ids, mapper.MapMessage("#SomethingNew HAPPENING"));
  EXPECT_EQ(ids[0], mapper.FallbackId("#somethingnew"));
}

TEST(EventIdMapperTest, NoSignalMessagesMapToNothing) {
  EventIdMapper mapper(50);
  EXPECT_TRUE(mapper.MapMessage("just some words").empty());
  EXPECT_TRUE(mapper.MapMessage("").empty());
}

TEST(EventIdMapperTest, BindValidation) {
  EventIdMapper mapper(10);
  EXPECT_EQ(mapper.BindKeyword("x", 10).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mapper.BindKeyword("", 1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(mapper.BindKeyword("x", 9).ok());
  EXPECT_TRUE(mapper.BindKeyword("X", 3).ok());  // rebind, case-folded
  auto ids = mapper.MapMessage("x");
  EXPECT_EQ(ids, (std::vector<EventId>{3}));
}

TEST(ProcessMessagesTest, EmitsOneElementPerMention) {
  EventIdMapper mapper(20);
  ASSERT_TRUE(mapper.BindKeyword("#a", 1).ok());
  ASSERT_TRUE(mapper.BindKeyword("#b", 2).ok());
  std::vector<Message> msgs = {
      {"#a starts", 10},
      {"nothing", 11},
      {"#a and #b together", 12},
      {"#b again #b", 13},  // duplicate tag in one message: one mention
  };
  EventStream s = ProcessMessages(mapper, msgs);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.records()[0], (EventRecord{1, 10}));
  EXPECT_EQ(s.records()[1], (EventRecord{1, 12}));
  EXPECT_EQ(s.records()[2], (EventRecord{2, 12}));
  EXPECT_EQ(s.records()[3], (EventRecord{2, 13}));
}

}  // namespace
}  // namespace bursthist
