// Property-based sweeps (TEST_P) over randomized streams and parameter
// grids: the core invariants every estimator must keep, checked on
// many stream shapes at once.
//
//   P1  F~(t) never overestimates F(t)            (PBE-1 & PBE-2)
//   P2  F~ is non-decreasing in t                  (PBE-1; PBE-2 up to
//       its band: we check it never drops by more than gamma)
//   P3  b~(t) == F~(t) - 2 F~(t-tau) + F~(t-2tau)  (Equation 2)
//   P4  |b~(t) - b(t)| <= 4 * Delta / 4 * gamma    (Lemmas 1 & 4)
//   P5  serialization round-trips bit-for-bit estimates
//   P6  BurstyTimes agrees with dense point queries

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/burst_queries.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "stream/event_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace bursthist {
namespace {

// Stream shapes that stress different code paths.
enum class Shape {
  kUniform,      // steady trickle
  kBursty,       // quiet / storm / quiet
  kDuplicates,   // many same-timestamp arrivals
  kRamp,         // steadily accelerating
  kSparse,       // long gaps
};

SingleEventStream MakeStream(Shape shape, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Timestamp> times;
  times.reserve(n);
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    switch (shape) {
      case Shape::kUniform:
        t += 1 + static_cast<Timestamp>(rng.NextBelow(4));
        break;
      case Shape::kBursty: {
        const bool storm = (i / (n / 8 + 1)) % 2 == 1;
        t += storm ? static_cast<Timestamp>(rng.NextBelow(2))
                   : 5 + static_cast<Timestamp>(rng.NextBelow(20));
        break;
      }
      case Shape::kDuplicates:
        if (rng.NextDouble() > 0.3) t += 1 + rng.NextBelow(3);
        break;
      case Shape::kRamp:
        t += 1 + static_cast<Timestamp>(
                     rng.NextBelow(1 + 40 * (n - i) / n));
        break;
      case Shape::kSparse:
        t += 1 + static_cast<Timestamp>(rng.NextBelow(300));
        break;
    }
    times.push_back(t);
  }
  return SingleEventStream(std::move(times));
}

struct Param {
  Shape shape;
  size_t n;
  size_t eta;     // PBE-1 budget (buffer fixed at 128)
  double gamma;   // PBE-2 band
  uint64_t seed;
};

class EstimatorProperties : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr size_t kBuffer = 128;

  Pbe1 BuildP1(const SingleEventStream& s) {
    Pbe1Options o;
    o.buffer_points = kBuffer;
    o.budget_points = GetParam().eta;
    Pbe1 p(o);
    for (Timestamp t : s.times()) p.Append(t);
    p.Finalize();
    return p;
  }

  Pbe2 BuildP2(const SingleEventStream& s) {
    Pbe2Options o;
    o.gamma = GetParam().gamma;
    Pbe2 p(o);
    for (Timestamp t : s.times()) p.Append(t);
    p.Finalize();
    return p;
  }
};

TEST_P(EstimatorProperties, P1_NeverOverestimate) {
  const auto p = GetParam();
  auto s = MakeStream(p.shape, p.n, p.seed);
  Pbe1 p1 = BuildP1(s);
  Pbe2 p2 = BuildP2(s);
  const Timestamp last = s.times().back();
  const Timestamp step = std::max<Timestamp>(1, last / 4000);
  for (Timestamp t = 0; t <= last + 3; t += step) {
    const double exact = static_cast<double>(s.CumulativeFrequency(t));
    EXPECT_LE(p1.EstimateCumulative(t), exact + test::kIdentityTol)
        << "PBE-1 t=" << t;
    EXPECT_LE(p2.EstimateCumulative(t), exact + test::kAccumTol)
        << "PBE-2 t=" << t;
  }
}

TEST_P(EstimatorProperties, P2_Monotonicity) {
  const auto p = GetParam();
  auto s = MakeStream(p.shape, p.n, p.seed ^ 0x2);
  Pbe1 p1 = BuildP1(s);
  Pbe2 p2 = BuildP2(s);
  const Timestamp last = s.times().back();
  const Timestamp step = std::max<Timestamp>(1, last / 4000);
  double prev1 = -1.0, prev2 = -1.0;
  for (Timestamp t = 0; t <= last + 3; t += step) {
    const double v1 = p1.EstimateCumulative(t);
    const double v2 = p2.EstimateCumulative(t);
    EXPECT_GE(v1, prev1) << "PBE-1 t=" << t;  // strict staircase
    EXPECT_GE(v2, prev2 - p.gamma - test::kAccumTol) << "PBE-2 t=" << t;
    prev1 = v1;
    prev2 = v2;
  }
}

TEST_P(EstimatorProperties, P3_BurstinessIdentity) {
  const auto p = GetParam();
  auto s = MakeStream(p.shape, p.n, p.seed ^ 0x3);
  Pbe1 p1 = BuildP1(s);
  Pbe2 p2 = BuildP2(s);
  const Timestamp last = s.times().back();
  Rng rng(p.seed);
  for (int i = 0; i < 200; ++i) {
    const Timestamp t =
        static_cast<Timestamp>(rng.NextBelow(static_cast<uint64_t>(last) + 1));
    const Timestamp tau = 1 + static_cast<Timestamp>(rng.NextBelow(200));
    EXPECT_NEAR(p1.EstimateBurstiness(t, tau),
                p1.EstimateCumulative(t) - 2 * p1.EstimateCumulative(t - tau) +
                    p1.EstimateCumulative(t - 2 * tau),
                test::kIdentityTol);
    EXPECT_NEAR(p2.EstimateBurstiness(t, tau),
                p2.EstimateCumulative(t) - 2 * p2.EstimateCumulative(t - tau) +
                    p2.EstimateCumulative(t - 2 * tau),
                test::kIdentityTol);
  }
}

TEST_P(EstimatorProperties, P4_LemmaBounds) {
  const auto p = GetParam();
  auto s = MakeStream(p.shape, p.n, p.seed ^ 0x4);
  Pbe1 p1 = BuildP1(s);
  Pbe2 p2 = BuildP2(s);
  const double bound1 = 4.0 * p1.MaxBufferAreaError() + test::kAccumTol;
  const double bound2 = 4.0 * p.gamma + test::kAccumTol;
  const Timestamp last = s.times().back();
  Rng rng(p.seed ^ 0x44);
  for (int i = 0; i < 300; ++i) {
    const Timestamp t = static_cast<Timestamp>(
        rng.NextBelow(static_cast<uint64_t>(last) + 600));
    const Timestamp tau = 1 + static_cast<Timestamp>(rng.NextBelow(300));
    const double exact = static_cast<double>(s.BurstinessAt(t, tau));
    EXPECT_LE(std::abs(p1.EstimateBurstiness(t, tau) - exact), bound1)
        << "PBE-1 t=" << t << " tau=" << tau;
    EXPECT_LE(std::abs(p2.EstimateBurstiness(t, tau) - exact), bound2)
        << "PBE-2 t=" << t << " tau=" << tau;
  }
}

TEST_P(EstimatorProperties, P5_SerializationPreservesEstimates) {
  const auto p = GetParam();
  auto s = MakeStream(p.shape, p.n, p.seed ^ 0x5);
  Pbe1 p1 = BuildP1(s);
  Pbe2 p2 = BuildP2(s);

  BinaryWriter w1, w2;
  p1.Serialize(&w1);
  p2.Serialize(&w2);
  Pbe1 r1;
  Pbe2 r2;
  BinaryReader b1(w1.bytes()), b2(w2.bytes());
  ASSERT_TRUE(r1.Deserialize(&b1).ok());
  ASSERT_TRUE(r2.Deserialize(&b2).ok());

  const Timestamp last = s.times().back();
  const Timestamp step = std::max<Timestamp>(1, last / 500);
  for (Timestamp t = 0; t <= last; t += step) {
    EXPECT_DOUBLE_EQ(r1.EstimateCumulative(t), p1.EstimateCumulative(t));
    EXPECT_DOUBLE_EQ(r2.EstimateCumulative(t), p2.EstimateCumulative(t));
  }
}

TEST_P(EstimatorProperties, P6_BurstyTimesAgreesWithPointQueries) {
  const auto p = GetParam();
  auto s = MakeStream(p.shape, std::min<size_t>(p.n, 400), p.seed ^ 0x6);
  Pbe1 p1 = BuildP1(s);
  Pbe2 p2 = BuildP2(s);
  const Timestamp tau = 25;
  const double theta = 3.0;
  auto iv1 = BurstyTimes(p1, theta, tau);
  auto iv2 = BurstyTimes(p2, theta, tau);
  const Timestamp hi = s.times().back() + 2 * tau + 2;
  for (Timestamp t = 0; t <= hi; ++t) {
    EXPECT_EQ(Covers(iv1, t), p1.EstimateBurstiness(t, tau) >= theta)
        << "PBE-1 t=" << t;
    EXPECT_EQ(Covers(iv2, t), p2.EstimateBurstiness(t, tau) >= theta)
        << "PBE-2 t=" << t;
  }
}

std::vector<Param> SweepParams() {
  // Per-case seeds derive from the BURSTHIST_TEST_SEED master seed
  // (see tests/test_util.h); the default reproduces the historical
  // fixed sweep deterministically.
  return {
      {Shape::kUniform, 1500, 16, 4.0, test::CaseSeed(1)},
      {Shape::kUniform, 1500, 64, 0.0, test::CaseSeed(2)},
      {Shape::kBursty, 2000, 24, 8.0, test::CaseSeed(3)},
      {Shape::kBursty, 2000, 8, 1.0, test::CaseSeed(4)},
      {Shape::kDuplicates, 3000, 32, 2.0, test::CaseSeed(5)},
      {Shape::kRamp, 1800, 16, 16.0, test::CaseSeed(6)},
      {Shape::kSparse, 900, 12, 4.0, test::CaseSeed(7)},
      {Shape::kSparse, 900, 48, 32.0, test::CaseSeed(8)},
  };
}

std::string SweepName(const ::testing::TestParamInfo<Param>& info) {
  static const char* kNames[] = {"Uniform", "Bursty", "Duplicates", "Ramp",
                                 "Sparse"};
  return std::string(kNames[static_cast<int>(info.param.shape)]) + "_" +
         std::to_string(info.index);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EstimatorProperties,
                         ::testing::ValuesIn(SweepParams()), SweepName);

}  // namespace
}  // namespace bursthist
