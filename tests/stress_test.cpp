// Differential stress: many random mixed streams through the full
// engine, graded against the exact baseline. TEST_P over seeds keeps
// the cases independent and reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/burst_engine.h"
#include "core/exact_store.h"
#include "eval/metrics.h"
#include "util/random.h"

namespace bursthist {
namespace {

struct StressCase {
  uint64_t seed;
  EventId universe;
  size_t records;
};

EventStream MakeStream(const StressCase& c) {
  Rng rng(c.seed);
  EventStream s;
  Timestamp t = 0;
  // Mixture of background arrivals and per-event storm windows.
  std::vector<std::pair<Timestamp, EventId>> storms;
  for (int i = 0; i < 4; ++i) {
    storms.emplace_back(
        1000 + static_cast<Timestamp>(rng.NextBelow(20000)),
        static_cast<EventId>(rng.NextBelow(c.universe)));
  }
  size_t emitted = 0;
  while (emitted < c.records) {
    t += static_cast<Timestamp>(rng.NextBelow(4));
    EventId e = static_cast<EventId>(rng.NextBelow(c.universe));
    for (auto& [at, storm_event] : storms) {
      if (t >= at && t < at + 300 && rng.NextDouble() < 0.7) {
        e = storm_event;
      }
    }
    s.Append(e, t);
    ++emitted;
  }
  return s;
}

class EngineStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(EngineStress, PointQueriesWithinEnvelope) {
  const auto c = GetParam();
  auto stream = MakeStream(c);
  ExactBurstStore exact(c.universe);
  ASSERT_TRUE(exact.AppendStream(stream).ok());

  BurstEngineOptions<Pbe1> o;
  o.universe_size = c.universe;
  o.cell.buffer_points = 256;
  o.cell.budget_points = 64;
  BurstEngine1 engine(o);
  ASSERT_TRUE(engine.AppendStream(stream).ok());
  engine.Finalize();

  // Lemma 5 envelope with eps = 0.05, delta = 0.2 (grid defaults):
  // at least ~1-delta of queries land within eps*N (+ slack for the
  // Delta term).
  const double envelope = 0.05 * static_cast<double>(stream.size()) + 64.0;
  Rng qrng(c.seed ^ 0x57);
  size_t ok = 0;
  const size_t trials = 150;
  for (size_t i = 0; i < trials; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(c.universe));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    const Timestamp tau = 50 + static_cast<Timestamp>(qrng.NextBelow(500));
    const double est = engine.PointQuery(e, t, tau);
    const double ref = static_cast<double>(exact.BurstinessAt(e, t, tau));
    if (std::abs(est - ref) <= envelope) ++ok;
  }
  EXPECT_GE(ok, trials * 3 / 4) << "too many out-of-envelope estimates";
}

TEST_P(EngineStress, BurstyEventsFindTheStorms) {
  const auto c = GetParam();
  auto stream = MakeStream(c);
  ExactBurstStore exact(c.universe);
  ASSERT_TRUE(exact.AppendStream(stream).ok());

  BurstEngineOptions<Pbe2> o;
  o.universe_size = c.universe;
  o.cell.gamma = 4.0;
  o.prune_rule = DyadicPruneRule::kChildren;
  BurstEngine2 engine(o);
  ASSERT_TRUE(engine.AppendStream(stream).ok());
  engine.Finalize();

  const Timestamp tau = 300;
  Rng qrng(c.seed ^ 0x58);
  PrecisionRecallAverage avg;
  for (int i = 0; i < 10; ++i) {
    const Timestamp t = static_cast<Timestamp>(
        tau + qrng.NextBelow(static_cast<uint64_t>(stream.MaxTime())));
    Burstiness peak = 0;
    for (EventId e = 0; e < c.universe; ++e) {
      peak = std::max(peak, exact.BurstinessAt(e, t, tau));
    }
    if (peak < 30) continue;
    const double theta = 0.4 * static_cast<double>(peak);
    auto got = engine.BurstyEventQuery(t, theta, tau);
    auto truth = exact.BurstyEvents(t, theta, tau);
    if (got.empty() && truth.empty()) continue;
    avg.Add(CompareIdSets(got, truth));
  }
  if (avg.queries == 0) GTEST_SKIP() << "no informative instants drawn";
  EXPECT_GE(avg.MeanRecall(), 0.6);
  EXPECT_GE(avg.MeanPrecision(), 0.6);
}

TEST_P(EngineStress, BurstyTimeMatchesEnginePointQueries) {
  const auto c = GetParam();
  auto stream = MakeStream(c);
  BurstEngineOptions<Pbe1> o;
  o.universe_size = c.universe;
  o.cell.buffer_points = 256;
  o.cell.budget_points = 32;
  BurstEngine1 engine(o);
  ASSERT_TRUE(engine.AppendStream(stream).ok());
  engine.Finalize();

  Rng qrng(c.seed ^ 0x59);
  const EventId e = static_cast<EventId>(qrng.NextBelow(c.universe));
  const Timestamp tau = 200;
  const double theta = 10.0;
  auto intervals = engine.BurstyTimeQuery(e, theta, tau);
  // Spot-check agreement on a time grid.
  for (Timestamp t = 0; t <= stream.MaxTime() + 2 * tau; t += 37) {
    EXPECT_EQ(Covers(intervals, t), engine.PointQuery(e, t, tau) >= theta)
        << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EngineStress,
    ::testing::Values(StressCase{1, 24, 20000}, StressCase{2, 64, 25000},
                      StressCase{3, 10, 15000}, StressCase{4, 128, 30000},
                      StressCase{5, 37, 20000}, StressCase{6, 200, 25000}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_K" +
             std::to_string(info.param.universe);
    });

}  // namespace
}  // namespace bursthist
