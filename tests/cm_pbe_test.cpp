// Unit + statistical tests for the CM-PBE grid (Section IV).

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "core/cm_pbe.h"
#include "core/exact_store.h"
#include "stream/event_stream.h"
#include "util/random.h"

namespace bursthist {
namespace {

// A small mixed stream: K events with Zipf-ish rates and a couple of
// injected bursts.
EventStream MakeMixedStream(EventId k, size_t n, Rng* rng) {
  EventStream s;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng->NextBelow(3));
    // Heavier weight on low ids.
    EventId e = static_cast<EventId>(rng->NextBelow(k));
    if (rng->NextDouble() < 0.5) e = static_cast<EventId>(rng->NextBelow(4));
    s.Append(e, t);
  }
  return s;
}

Pbe1Options TightPbe1() {
  Pbe1Options o;
  o.buffer_points = 64;
  o.budget_points = 48;
  return o;
}

TEST(CmPbeTest, FromGuaranteeSizing) {
  auto o = CmPbeOptions::FromGuarantee(0.05, 0.2);
  EXPECT_EQ(o.depth, 2u);
  EXPECT_EQ(o.width, 55u);
}

TEST(CmPbeTest, SingleEventNoCollisionsTracksPbe) {
  // With one event the grid estimate equals a single PBE's estimate.
  Rng rng(51);
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 8;
  CmPbe<Pbe1> cm(grid, TightPbe1());
  Pbe1 ref(TightPbe1());
  Timestamp t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(4));
    cm.Append(7, t);
    ref.Append(t);
  }
  cm.Finalize();
  ref.Finalize();
  for (Timestamp q = 0; q <= t; q += 17) {
    EXPECT_DOUBLE_EQ(cm.EstimateCumulative(7, q), ref.EstimateCumulative(q));
  }
}

TEST(CmPbeTest, UnseenEventEstimatesSmall) {
  Rng rng(53);
  CmPbeOptions grid;
  grid.depth = 5;
  grid.width = 64;
  CmPbe<Pbe1> cm(grid, TightPbe1());
  auto stream = MakeMixedStream(16, 3000, &rng);
  for (const auto& r : stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();
  // An id that never appeared: collisions may inflate it, but the
  // median across 5 rows over 64 cells should stay well below the
  // total volume.
  const double est = cm.EstimateCumulative(999999, stream.MaxTime());
  EXPECT_LT(est, 0.2 * static_cast<double>(stream.size()));
}

template <typename PbeT>
void RunAccuracyTest(const typename PbeT::Options& pbe_opt, double tol_frac,
                     uint64_t seed) {
  Rng rng(seed);
  const EventId k = 32;
  auto stream = MakeMixedStream(k, 20000, &rng);
  ExactBurstStore exact(k);
  ASSERT_TRUE(exact.AppendStream(stream).ok());

  CmPbeOptions grid;
  grid.depth = 5;
  grid.width = 128;
  CmPbe<PbeT> cm(grid, pbe_opt);
  for (const auto& r : stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();

  const Timestamp tau = 50;
  double total_err = 0.0;
  int queries = 0;
  Rng qrng(seed ^ 0xa1);
  for (int i = 0; i < 100; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(k));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    const double est = cm.EstimateBurstiness(e, t, tau);
    const double ref = static_cast<double>(exact.BurstinessAt(e, t, tau));
    total_err += std::abs(est - ref);
    ++queries;
  }
  // Mean additive error stays a small fraction of N (Lemma 5's eps*N
  // scale with generous slack — this is a statistical check).
  EXPECT_LT(total_err / queries,
            tol_frac * static_cast<double>(stream.size()));
}

TEST(CmPbeTest, BurstinessAccuracyCmPbe1) {
  RunAccuracyTest<Pbe1>(TightPbe1(), 0.02, 61);
}

TEST(CmPbeTest, BurstinessAccuracyCmPbe2) {
  Pbe2Options o;
  o.gamma = 4.0;
  RunAccuracyTest<Pbe2>(o, 0.02, 67);
}

TEST(CmPbeTest, MedianAndMinEstimatorsComparable) {
  // The per-cell PBEs underestimate their merged curves while
  // collisions overestimate the queried event; min keeps only the
  // collision bias, median balances both (Section IV). Which wins is
  // regime-dependent (see bench/ablation_median_vs_min); here we only
  // require the two to be in the same ballpark.
  Rng rng(71);
  const EventId k = 64;
  auto stream = MakeMixedStream(k, 30000, &rng);
  ExactBurstStore exact(k);
  ASSERT_TRUE(exact.AppendStream(stream).ok());

  Pbe1Options cell;
  cell.buffer_points = 64;
  cell.budget_points = 12;  // aggressive compression -> undershoot
  CmPbeOptions base;
  base.depth = 5;
  base.width = 32;

  CmPbeOptions median_opt = base;
  median_opt.estimator = CmEstimator::kMedian;
  CmPbeOptions min_opt = base;
  min_opt.estimator = CmEstimator::kMin;
  CmPbe<Pbe1> median(median_opt, cell);
  CmPbe<Pbe1> mins(min_opt, cell);
  for (const auto& r : stream.records()) {
    median.Append(r.id, r.time);
    mins.Append(r.id, r.time);
  }
  median.Finalize();
  mins.Finalize();

  double err_median = 0.0, err_min = 0.0;
  Rng qrng(73);
  const Timestamp tau = 40;
  for (int i = 0; i < 200; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(k));
    const Timestamp t =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    const double ref = static_cast<double>(exact.BurstinessAt(e, t, tau));
    err_median += std::abs(median.EstimateBurstiness(e, t, tau) - ref);
    err_min += std::abs(mins.EstimateBurstiness(e, t, tau) - ref);
  }
  EXPECT_LE(err_median, err_min * 2.0 + 1.0);
  EXPECT_LE(err_min, err_median * 2.0 + 1.0);
}

TEST(CmPbeTest, BreakpointsUnionSortedUnique) {
  Rng rng(79);
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 4;
  CmPbe<Pbe1> cm(grid, TightPbe1());
  auto stream = MakeMixedStream(8, 2000, &rng);
  for (const auto& r : stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();
  auto bps = cm.Breakpoints(3);
  ASSERT_FALSE(bps.empty());
  for (size_t i = 1; i < bps.size(); ++i) EXPECT_GT(bps[i], bps[i - 1]);
}

TEST(CmPbeTest, SizeBytesSumsCells) {
  CmPbeOptions grid;
  grid.depth = 2;
  grid.width = 3;
  CmPbe<Pbe1> cm(grid, TightPbe1());
  EXPECT_EQ(cm.SizeBytes(), 0u);
  cm.Append(1, 5);
  cm.Finalize();
  EXPECT_GT(cm.SizeBytes(), 0u);
}

TEST(CmPbeTest, SerializationRoundTripPbe1) {
  Rng rng(83);
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 16;
  CmPbe<Pbe1> cm(grid, TightPbe1());
  auto stream = MakeMixedStream(20, 5000, &rng);
  for (const auto& r : stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();

  BinaryWriter w;
  cm.Serialize(&w);
  CmPbe<Pbe1> back(grid, TightPbe1());
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  for (EventId e = 0; e < 20; ++e) {
    for (Timestamp t = 0; t <= stream.MaxTime(); t += 101) {
      EXPECT_DOUBLE_EQ(back.EstimateCumulative(e, t),
                       cm.EstimateCumulative(e, t));
    }
  }
}

TEST(CmPbeTest, SerializationRoundTripPbe2) {
  Rng rng(89);
  CmPbeOptions grid;
  grid.depth = 2;
  grid.width = 8;
  Pbe2Options cell;
  cell.gamma = 3.0;
  CmPbe<Pbe2> cm(grid, cell);
  auto stream = MakeMixedStream(10, 3000, &rng);
  for (const auto& r : stream.records()) cm.Append(r.id, r.time);
  cm.Finalize();

  BinaryWriter w;
  cm.Serialize(&w);
  CmPbe<Pbe2> back(grid, cell);
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  for (EventId e = 0; e < 10; ++e) {
    EXPECT_DOUBLE_EQ(back.EstimateCumulative(e, stream.MaxTime()),
                     cm.EstimateCumulative(e, stream.MaxTime()));
  }
}

}  // namespace
}  // namespace bursthist
