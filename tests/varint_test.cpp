// Unit tests for varint / zig-zag coding and the compact model
// serialization built on it.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "pla/staircase_model.h"
#include "util/random.h"
#include "util/varint.h"

namespace bursthist {
namespace {

TEST(ZigZagTest, RoundTripAndOrdering) {
  const int64_t cases[] = {0, -1, 1, -2, 2, 12345, -12345,
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min()};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes get small codes.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(VarintTest, KnownEncodings) {
  BinaryWriter w;
  PutVarint(&w, 0);
  PutVarint(&w, 127);
  PutVarint(&w, 128);
  PutVarint(&w, 300);
  EXPECT_EQ(w.bytes().size(), 1u + 1u + 2u + 2u);
  BinaryReader r(w.bytes());
  uint64_t a = 1, b = 0, c = 0, d = 0;
  ASSERT_TRUE(GetVarint(&r, &a).ok());
  ASSERT_TRUE(GetVarint(&r, &b).ok());
  ASSERT_TRUE(GetVarint(&r, &c).ok());
  ASSERT_TRUE(GetVarint(&r, &d).ok());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 127u);
  EXPECT_EQ(c, 128u);
  EXPECT_EQ(d, 300u);
}

TEST(VarintTest, RandomRoundTrip) {
  Rng rng(3);
  std::vector<uint64_t> values;
  BinaryWriter w;
  for (int i = 0; i < 2000; ++i) {
    // Mix of magnitudes across all byte lengths.
    const int bits = 1 + static_cast<int>(rng.NextBelow(64));
    const uint64_t v = rng.NextU64() >> (64 - bits);
    values.push_back(v);
    PutVarint(&w, v);
  }
  BinaryReader r(w.bytes());
  for (uint64_t expect : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint(&r, &got).ok());
    EXPECT_EQ(got, expect);
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(VarintTest, SignedRoundTrip) {
  Rng rng(5);
  BinaryWriter w;
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = static_cast<int64_t>(rng.NextU64());
    values.push_back(v);
    PutSignedVarint(&w, v);
  }
  BinaryReader r(w.bytes());
  for (int64_t expect : values) {
    int64_t got = 0;
    ASSERT_TRUE(GetSignedVarint(&r, &got).ok());
    EXPECT_EQ(got, expect);
  }
}

TEST(VarintTest, TruncationFails) {
  BinaryWriter w;
  PutVarint(&w, 1ULL << 40);  // multi-byte
  for (size_t cut = 0; cut < w.bytes().size(); ++cut) {
    BinaryReader r(w.bytes().data(), cut);
    uint64_t v = 0;
    EXPECT_FALSE(GetVarint(&r, &v).ok()) << cut;
  }
}

TEST(VarintTest, OverlongRejected) {
  BinaryWriter w;
  for (int i = 0; i < 11; ++i) w.Put<uint8_t>(0x80);
  w.Put<uint8_t>(0x00);
  BinaryReader r(w.bytes());
  uint64_t v = 0;
  EXPECT_EQ(GetVarint(&r, &v).code(), StatusCode::kCorruption);
}

TEST(CompactModelTest, StaircaseMuchSmallerThanFixedWidth) {
  // Typical model: unit-second deltas, small count jumps.
  std::vector<CurvePoint> pts;
  Timestamp t = 1'500'000'000;  // epoch-like origin
  Count c = 0;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBelow(30));
    c += 1 + static_cast<Count>(rng.NextBelow(4));
    pts.push_back(CurvePoint{t, c});
  }
  StaircaseModel m(pts);
  BinaryWriter w;
  m.Serialize(&w);
  const size_t fixed = pts.size() * sizeof(CurvePoint);
  EXPECT_LT(w.bytes().size(), fixed / 4) << "varint coding should be >4x "
                                            "smaller on unit-scale deltas";
  StaircaseModel back;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  EXPECT_EQ(back.points(), m.points());
}

TEST(CompactModelTest, RejectsNonIncreasingDeltas) {
  BinaryWriter w;
  PutVarint(&w, 2);        // two points
  PutSignedVarint(&w, 5);  // t0
  PutVarint(&w, 1);        // c0 delta
  PutVarint(&w, 0);        // dt == 0: invalid
  PutVarint(&w, 1);
  StaircaseModel m;
  BinaryReader r(w.bytes());
  EXPECT_EQ(m.Deserialize(&r).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace bursthist
