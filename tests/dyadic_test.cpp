// Unit tests for the dyadic BURSTY EVENT index (Section V,
// Algorithm 3).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/dyadic_index.h"
#include "core/exact_store.h"
#include "eval/metrics.h"
#include "stream/event_stream.h"
#include "util/random.h"

namespace bursthist {
namespace {

Pbe1Options AccuratePbe() {
  Pbe1Options o;
  o.buffer_points = 64;
  o.budget_points = 64;  // lossless cells: errors come from collisions only
  return o;
}

CmPbeOptions WideGrid() {
  CmPbeOptions o;
  o.depth = 4;
  o.width = 256;  // wide enough that collisions are rare at small K
  return o;
}

// Stream where a chosen subset of events bursts hard at a known time.
EventStream MakeBurstStream(EventId k, const std::vector<EventId>& bursty,
                            Timestamp burst_at, Rng* rng) {
  std::vector<SingleEventStream> per_event(k);
  for (EventId e = 0; e < k; ++e) {
    std::vector<Timestamp> times;
    Timestamp t = static_cast<Timestamp>(rng->NextBelow(5));
    while (t < 1000) {
      times.push_back(t);
      t += 20 + static_cast<Timestamp>(rng->NextBelow(10));
    }
    if (std::find(bursty.begin(), bursty.end(), e) != bursty.end()) {
      for (Timestamp bt = burst_at; bt < burst_at + 50; ++bt) {
        times.push_back(bt);
        times.push_back(bt);
      }
    }
    std::sort(times.begin(), times.end());
    per_event[e] = SingleEventStream(std::move(times));
  }
  return MergeStreams(per_event);
}

TEST(DyadicIndexTest, LevelCountPowersOfTwo) {
  DyadicBurstIndex<Pbe1> i1(1, WideGrid(), AccuratePbe());
  EXPECT_EQ(i1.levels(), 1u);
  DyadicBurstIndex<Pbe1> i2(2, WideGrid(), AccuratePbe());
  EXPECT_EQ(i2.levels(), 2u);
  DyadicBurstIndex<Pbe1> i8(8, WideGrid(), AccuratePbe());
  EXPECT_EQ(i8.levels(), 4u);
  DyadicBurstIndex<Pbe1> i9(9, WideGrid(), AccuratePbe());
  EXPECT_EQ(i9.levels(), 5u);  // padded to 16
}

TEST(DyadicIndexTest, FindsInjectedBurstyEvents) {
  Rng rng(91);
  const EventId k = 32;
  const std::vector<EventId> bursty = {3, 17, 30};
  auto stream = MakeBurstStream(k, bursty, 500, &rng);

  DyadicBurstIndex<Pbe1> index(k, WideGrid(), AccuratePbe());
  ExactBurstStore exact(k);
  ASSERT_TRUE(exact.AppendStream(stream).ok());
  for (const auto& r : stream.records()) index.Append(r.id, r.time);
  index.Finalize();

  const Timestamp t = 549, tau = 50;
  const double theta = 50.0;
  auto expect = exact.BurstyEvents(t, theta, tau);
  EXPECT_EQ(expect, bursty);  // sanity: ground truth sees exactly these

  auto got = index.BurstyEvents(t, theta, tau);
  EXPECT_EQ(got, bursty);
}

TEST(DyadicIndexTest, PruningSavesPointQueries) {
  Rng rng(93);
  const EventId k = 256;
  auto stream = MakeBurstStream(k, {100}, 500, &rng);
  DyadicBurstIndex<Pbe1> index(k, WideGrid(), AccuratePbe());
  for (const auto& r : stream.records()) index.Append(r.id, r.time);
  index.Finalize();

  auto got = index.BurstyEvents(549, 50.0, 50);
  EXPECT_EQ(got, (std::vector<EventId>{100}));
  // With one bursty event, far fewer than K point queries should run
  // (paper: ~O(log K) per level).
  EXPECT_LT(index.LastQueryPointQueries(), static_cast<size_t>(k) / 2);
}

TEST(DyadicIndexTest, NoBurstNoResults) {
  Rng rng(97);
  const EventId k = 64;
  auto stream = MakeBurstStream(k, {}, 500, &rng);
  DyadicBurstIndex<Pbe1> index(k, WideGrid(), AccuratePbe());
  for (const auto& r : stream.records()) index.Append(r.id, r.time);
  index.Finalize();
  EXPECT_TRUE(index.BurstyEvents(549, 80.0, 50).empty());
  // The root alone should be enough to prune everything.
  EXPECT_LE(index.LastQueryPointQueries(), 3u);
}

TEST(DyadicIndexTest, NonPowerOfTwoUniverse) {
  Rng rng(101);
  const EventId k = 37;
  const std::vector<EventId> bursty = {0, 36};
  auto stream = MakeBurstStream(k, bursty, 400, &rng);
  DyadicBurstIndex<Pbe2> index(k, WideGrid(), Pbe2Options{2.0, 0});
  ExactBurstStore exact(k);
  ASSERT_TRUE(exact.AppendStream(stream).ok());
  for (const auto& r : stream.records()) index.Append(r.id, r.time);
  index.Finalize();

  auto got = index.BurstyEvents(449, 50.0, 50);
  EXPECT_EQ(got, bursty);
}

TEST(DyadicIndexTest, LeafPointQueryTracksExact) {
  Rng rng(103);
  const EventId k = 16;
  auto stream = MakeBurstStream(k, {5}, 300, &rng);
  DyadicBurstIndex<Pbe1> index(k, WideGrid(), AccuratePbe());
  ExactBurstStore exact(k);
  ASSERT_TRUE(exact.AppendStream(stream).ok());
  for (const auto& r : stream.records()) index.Append(r.id, r.time);
  index.Finalize();
  for (EventId e = 0; e < k; ++e) {
    EXPECT_NEAR(index.EstimateBurstiness(e, 349, 50),
                static_cast<double>(exact.BurstinessAt(e, 349, 50)), 10.0);
  }
}

TEST(DyadicIndexTest, PrecisionRecallNearPerfectWithAccurateCells) {
  Rng rng(107);
  const EventId k = 128;
  const std::vector<EventId> bursty = {1, 64, 100, 127};
  auto stream = MakeBurstStream(k, bursty, 600, &rng);
  DyadicBurstIndex<Pbe1> index(k, WideGrid(), AccuratePbe());
  ExactBurstStore exact(k);
  ASSERT_TRUE(exact.AppendStream(stream).ok());
  for (const auto& r : stream.records()) index.Append(r.id, r.time);
  index.Finalize();

  const Timestamp t = 649, tau = 50;
  const double theta = 50.0;
  auto got = index.BurstyEvents(t, theta, tau);
  auto expect = exact.BurstyEvents(t, theta, tau);
  auto pr = CompareIdSets(got, expect);
  EXPECT_GE(pr.precision, 0.99);
  EXPECT_GE(pr.recall, 0.99);
}

TEST(DyadicIndexTest, SizeScalesWithLevels) {
  DyadicBurstIndex<Pbe1> small(4, WideGrid(), AccuratePbe());
  DyadicBurstIndex<Pbe1> large(1024, WideGrid(), AccuratePbe());
  Rng rng(109);
  for (int i = 0; i < 1000; ++i) {
    Timestamp t = static_cast<Timestamp>(i);
    small.Append(static_cast<EventId>(rng.NextBelow(4)), t);
    large.Append(static_cast<EventId>(rng.NextBelow(1024)), t);
  }
  small.Finalize();
  large.Finalize();
  EXPECT_GT(large.SizeBytes(), small.SizeBytes());
}

}  // namespace
}  // namespace bursthist
