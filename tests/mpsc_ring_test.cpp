// Concurrency contract of util/mpsc_ring.h: any number of producers,
// one consumer, bounded capacity. The tests assert the three
// invariants the ingest pipeline leans on — no lost records, no
// duplicated records, per-producer FIFO order — plus the full/empty
// boundary behavior and a shutdown-style drain. Runs under the `tsan`
// ctest label, where the acquire/release protocol is checked for
// real data races, not just logical ones.

#include "util/mpsc_ring.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace bursthist {
namespace {

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscRing<int>(65).capacity(), 128u);
}

TEST(MpscRingTest, PopOnEmptyFails) {
  MpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.Pop(&out));
  EXPECT_EQ(ring.ApproxSize(), 0u);
}

TEST(MpscRingTest, PushUntilFullThenPopUntilEmpty) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i)) << i;
  }
  // Full: the next push must refuse rather than overwrite.
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.ApproxSize(), 4u);
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, i);  // single-threaded FIFO
  }
  int out = -1;
  EXPECT_FALSE(ring.Pop(&out));
  // A drained ring accepts pushes again (cells were recycled).
  EXPECT_TRUE(ring.TryPush(7));
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 7);
}

TEST(MpscRingTest, WrapAroundManyTimes) {
  MpscRing<uint64_t> ring(8);
  uint64_t next_expected = 0;
  uint64_t next_pushed = 0;
  // 10k records through an 8-slot ring: every cell's sequence laps
  // the ring many times over.
  while (next_expected < 10000) {
    while (next_pushed < 10000 && ring.TryPush(next_pushed)) ++next_pushed;
    uint64_t out = 0;
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, next_expected);
    ++next_expected;
  }
}

TEST(MpscRingTest, MoveOnlyPayload) {
  MpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.Pop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// The core MPSC invariant: N producers each push an ordered sequence
// tagged with their id; the consumer must see every record exactly
// once, and each producer's records in their push order. Capacity is
// far below the record count, so producers constantly hit the full
// ring and retry — exercising the backpressure path too.
TEST(MpscRingTest, ConcurrentProducersNoLossNoDupPerProducerFifo) {
  constexpr uint32_t kProducers = 4;
  constexpr uint32_t kPerProducer = 20000;
  MpscRing<uint64_t> ring(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (uint32_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = (static_cast<uint64_t>(p) << 32) | i;
        while (!ring.TryPush(value)) std::this_thread::yield();
      }
    });
  }

  std::vector<uint32_t> next_seq(kProducers, 0);
  uint64_t received = 0;
  while (received < static_cast<uint64_t>(kProducers) * kPerProducer) {
    uint64_t value = 0;
    if (!ring.Pop(&value)) {
      std::this_thread::yield();
      continue;
    }
    const uint32_t p = static_cast<uint32_t>(value >> 32);
    const uint32_t seq = static_cast<uint32_t>(value);
    ASSERT_LT(p, kProducers);
    // Per-producer FIFO: the consumer sees producer p's i-th record
    // exactly when it expects sequence i — any loss, duplication, or
    // reorder within a producer trips this immediately.
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p;
    ++next_seq[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  for (uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
  uint64_t leftover = 0;
  EXPECT_FALSE(ring.Pop(&leftover));
}

// Shutdown drain: producers stop, the consumer must still be able to
// pop everything that was pushed (PopBatch form), ending exactly
// empty.
TEST(MpscRingTest, ShutdownDrainDeliversEverythingPushed) {
  constexpr uint32_t kProducers = 3;
  constexpr uint32_t kPerProducer = 5000;
  MpscRing<uint64_t> ring(1024);
  std::atomic<uint64_t> pushed{0};

  std::vector<std::thread> producers;
  std::atomic<bool> stop{false};
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint32_t i = 0; i < kPerProducer && !stop.load(); ++i) {
        const uint64_t value = (static_cast<uint64_t>(p) << 32) | i;
        if (!ring.TryPush(value)) break;  // full: drop and finish
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Consumer drains a little concurrently, then producers are told to
  // stop and joined — whatever made it into the ring must come out.
  std::vector<uint64_t> drained;
  ring.PopBatch(&drained, 64);
  stop.store(true);
  for (auto& t : producers) t.join();

  while (ring.PopBatch(&drained, 256) > 0) {
  }
  EXPECT_EQ(drained.size(), pushed.load());
  EXPECT_EQ(ring.ApproxSize(), 0u);
  uint64_t leftover = 0;
  EXPECT_FALSE(ring.Pop(&leftover));
}

}  // namespace
}  // namespace bursthist
