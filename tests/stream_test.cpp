// Unit tests for the event-stream model (Section II-A semantics).

#include <gtest/gtest.h>

#include <vector>

#include "stream/event_stream.h"
#include "stream/types.h"

namespace bursthist {
namespace {

SingleEventStream MakeStream(std::vector<Timestamp> t) {
  return SingleEventStream(std::move(t));
}

TEST(SingleEventStreamTest, CumulativeFrequency) {
  auto s = MakeStream({1, 3, 3, 7, 10});
  EXPECT_EQ(s.CumulativeFrequency(0), 0u);
  EXPECT_EQ(s.CumulativeFrequency(1), 1u);
  EXPECT_EQ(s.CumulativeFrequency(2), 1u);
  EXPECT_EQ(s.CumulativeFrequency(3), 3u);
  EXPECT_EQ(s.CumulativeFrequency(9), 4u);
  EXPECT_EQ(s.CumulativeFrequency(10), 5u);
  EXPECT_EQ(s.CumulativeFrequency(100), 5u);
}

TEST(SingleEventStreamTest, FrequencyClosedRange) {
  auto s = MakeStream({1, 3, 3, 7, 10});
  EXPECT_EQ(s.Frequency(1, 3), 3u);
  EXPECT_EQ(s.Frequency(2, 6), 2u);
  EXPECT_EQ(s.Frequency(4, 6), 0u);
  EXPECT_EQ(s.Frequency(5, 4), 0u);  // inverted range
  EXPECT_EQ(s.Frequency(0, 100), 5u);
}

TEST(SingleEventStreamTest, BurstFrequencyHalfOpen) {
  auto s = MakeStream({1, 3, 3, 7, 10});
  // bf(t) = F(t) - F(t - tau): occurrences in (t - tau, t].
  EXPECT_EQ(s.BurstFrequency(3, 2), 2u);   // (1, 3] -> {3, 3}
  EXPECT_EQ(s.BurstFrequency(10, 3), 1u);  // (7, 10] -> {10}
  EXPECT_EQ(s.BurstFrequency(7, 7), 4u);   // (0, 7] -> {1, 3, 3, 7}
}

TEST(SingleEventStreamTest, BurstFrequencyExactValues) {
  auto s = MakeStream({1, 3, 3, 7, 10});
  EXPECT_EQ(s.BurstFrequency(7, 7), s.CumulativeFrequency(7) -
                                        s.CumulativeFrequency(0));
}

TEST(SingleEventStreamTest, BurstinessIdentity) {
  auto s = MakeStream({1, 2, 2, 3, 5, 5, 5, 8, 9, 9});
  for (Timestamp t = 0; t <= 12; ++t) {
    for (Timestamp tau : {1, 2, 3}) {
      const Burstiness expect =
          static_cast<Burstiness>(s.BurstFrequency(t, tau)) -
          static_cast<Burstiness>(s.BurstFrequency(t - tau, tau));
      EXPECT_EQ(s.BurstinessAt(t, tau), expect) << "t=" << t << " tau=" << tau;
    }
  }
}

TEST(SingleEventStreamTest, BurstinessCanBeNegative) {
  // Many arrivals then silence: deceleration.
  auto s = MakeStream({1, 1, 1, 1, 2, 2, 2, 2});
  EXPECT_LT(s.BurstinessAt(4, 2), 0);
}

TEST(SingleEventStreamTest, AppendMatchesBatch) {
  SingleEventStream s;
  for (Timestamp t : {2, 2, 5, 9}) s.Append(t);
  auto batch = MakeStream({2, 2, 5, 9});
  EXPECT_EQ(s.times(), batch.times());
  EXPECT_EQ(s.SizeBytes(), 4 * sizeof(Timestamp));
}

TEST(SingleEventStreamTest, EmptyStream) {
  SingleEventStream s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.CumulativeFrequency(100), 0u);
  EXPECT_EQ(s.BurstinessAt(5, 2), 0);
}

TEST(EventStreamTest, AppendAndAccessors) {
  EventStream s;
  s.Append(3, 1);
  s.Append(1, 2);
  s.Append(3, 2);
  s.Append(0, 5);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.MinTime(), 1);
  EXPECT_EQ(s.MaxTime(), 5);
  EXPECT_EQ(s.MaxIdPlusOne(), 4u);
}

TEST(EventStreamTest, SliceInclusive) {
  EventStream s({{0, 1}, {1, 2}, {0, 2}, {2, 4}, {1, 7}});
  auto mid = s.Slice(2, 4);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.records().front().time, 2);
  EXPECT_EQ(mid.records().back().time, 4);
  EXPECT_EQ(s.Slice(10, 20).size(), 0u);
  EXPECT_EQ(s.Slice(0, 0).size(), 0u);
  EXPECT_EQ(s.Slice(1, 7).size(), 5u);
}

TEST(EventStreamTest, ProjectSingleEvent) {
  EventStream s({{0, 1}, {1, 2}, {0, 2}, {0, 2}, {1, 7}});
  auto e0 = s.Project(0);
  EXPECT_EQ(e0.times(), (std::vector<Timestamp>{1, 2, 2}));
  auto e2 = s.Project(2);
  EXPECT_TRUE(e2.empty());
}

TEST(EventStreamTest, SplitByIdRoundTripsThroughMerge) {
  EventStream s({{0, 1}, {1, 1}, {0, 2}, {2, 3}, {1, 3}, {0, 9}});
  auto split = s.SplitById(3);
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split.value().size(), 3u);
  EXPECT_EQ(split.value()[0].size(), 3u);
  EXPECT_EQ(split.value()[1].size(), 2u);
  EXPECT_EQ(split.value()[2].size(), 1u);

  EventStream merged = MergeStreams(split.value());
  ASSERT_EQ(merged.size(), s.size());
  // Timestamps must be the same multiset and ordered.
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged.records()[i - 1].time, merged.records()[i].time);
  }
  for (EventId e = 0; e < 3; ++e) {
    EXPECT_EQ(merged.Project(e).times(), s.Project(e).times());
  }
}

TEST(EventStreamTest, SplitByIdRejectsOutOfRange) {
  EventStream s({{5, 1}});
  auto split = s.SplitById(3);
  ASSERT_FALSE(split.ok());
  EXPECT_EQ(split.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeStreamsTest, EmptyInputs) {
  EXPECT_TRUE(MergeStreams({}).empty());
  std::vector<SingleEventStream> some(3);
  some[1] = SingleEventStream({4, 5});
  auto merged = MergeStreams(some);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.records()[0].id, 1u);
}

}  // namespace
}  // namespace bursthist
