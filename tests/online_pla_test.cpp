// Unit + property tests for the online PLA builder (Section III-B,
// Algorithm 2): the error-band invariant, augmentation behaviour, and
// the space-constrained variant.

#include <gtest/gtest.h>

#include <vector>

#include "pla/online_pla.h"
#include "pla/staircase_model.h"
#include "util/random.h"

namespace bursthist {
namespace {

FrequencyCurve RandomStaircase(size_t n, Rng* rng, Timestamp max_gap = 30,
                               Count max_jump = 12) {
  std::vector<CurvePoint> pts;
  pts.reserve(n);
  Timestamp t = 0;
  Count c = 0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<Timestamp>(rng->NextBelow(max_gap));
    c += 1 + static_cast<Count>(rng->NextBelow(max_jump));
    pts.push_back(CurvePoint{t, c});
  }
  return FrequencyCurve(std::move(pts));
}

// Checks F(t) - gamma <= F~(t) <= F(t) at every discrete t in the
// curve's support.
void ExpectWithinBand(const FrequencyCurve& exact, const LinearModel& model,
                      double gamma) {
  const Timestamp first = exact.points().front().time;
  const Timestamp last = exact.points().back().time;
  for (Timestamp t = first; t <= last + 3; ++t) {
    const double f = static_cast<double>(exact.Evaluate(t));
    const double est = model.Evaluate(t);
    EXPECT_LE(est, f + 1e-6) << "overestimate at t=" << t;
    EXPECT_GE(est, f - gamma - 1e-6) << "undershoot beyond gamma at t=" << t;
  }
}

TEST(OnlinePlaTest, SinglePointStream) {
  OnlinePlaBuilder b(4.0);
  b.AddPoint(10, 3);
  b.Finish();
  ASSERT_EQ(b.model().size(), 1u);
  EXPECT_NEAR(b.model().Evaluate(10), 1.0, 1e-9);  // 3 - gamma/2
  EXPECT_EQ(b.model().Evaluate(9), 0.0);
}

TEST(OnlinePlaTest, CollinearPointsMakeOneSegment) {
  OnlinePlaBuilder b(0.5);
  for (Timestamp t = 0; t < 50; ++t) b.AddPoint(t * 2, static_cast<Count>(t + 1));
  b.Finish();
  EXPECT_EQ(b.model().size(), 1u);
  // The single line must track the exact points within the band.
  for (Timestamp t = 0; t < 50; ++t) {
    const double f = static_cast<double>(t + 1);
    const double est = b.model().Evaluate(t * 2);
    EXPECT_LE(est, f + 1e-9);
    EXPECT_GE(est, f - 0.5 - 1e-9);
  }
}

TEST(OnlinePlaTest, BandInvariantOnRandomStaircases) {
  Rng rng(101);
  for (double gamma : {0.0, 1.0, 4.0, 16.0}) {
    FrequencyCurve curve = RandomStaircase(120, &rng);
    LinearModel model = BuildPla(curve, gamma);
    ExpectWithinBand(curve, model, gamma);
  }
}

TEST(OnlinePlaTest, GammaZeroIsExactAtCorners) {
  Rng rng(103);
  FrequencyCurve curve = RandomStaircase(60, &rng);
  LinearModel model = BuildPla(curve, 0.0);
  for (const auto& p : curve.points()) {
    EXPECT_NEAR(model.Evaluate(p.time), static_cast<double>(p.count), 1e-6);
  }
}

TEST(OnlinePlaTest, LargerGammaFewerSegments) {
  Rng rng(107);
  FrequencyCurve curve = RandomStaircase(300, &rng);
  size_t prev = ~size_t{0};
  for (double gamma : {0.5, 2.0, 8.0, 32.0, 128.0}) {
    LinearModel model = BuildPla(curve, gamma);
    EXPECT_LE(model.size(), prev) << "gamma=" << gamma;
    prev = model.size();
    ExpectWithinBand(curve, model, gamma);
  }
}

TEST(OnlinePlaTest, BurstinessErrorBounded4Gamma) {
  Rng rng(109);
  const double gamma = 6.0;
  FrequencyCurve curve = RandomStaircase(200, &rng);
  LinearModel model = BuildPla(curve, gamma);
  const Timestamp last = curve.points().back().time;
  for (Timestamp tau : {3, 10, 50}) {
    for (Timestamp t = 0; t <= last + 2 * tau; t += 7) {
      const double exact = static_cast<double>(curve.BurstinessAt(t, tau));
      const double est = model.EstimateBurstiness(t, tau);
      EXPECT_LE(std::abs(est - exact), 4.0 * gamma + 1e-6)
          << "t=" << t << " tau=" << tau;
    }
  }
}

TEST(OnlinePlaTest, NoAugmentationCanOverestimate) {
  // A staircase with a long flat stretch followed by a big jump: a
  // line through the raw corners overestimates the flat part. This is
  // exactly what the paper's extra points prevent.
  FrequencyCurve curve(
      std::vector<CurvePoint>{{0, 1}, {100, 2}, {101, 100}, {200, 101}});
  LinearModel without = BuildPlaNoAugmentation(curve, 1.0);
  bool overestimated = false;
  for (Timestamp t = 0; t <= 200; ++t) {
    if (without.Evaluate(t) >
        static_cast<double>(curve.Evaluate(t)) + 1e-6) {
      overestimated = true;
      break;
    }
  }
  EXPECT_TRUE(overestimated);

  LinearModel with = BuildPla(curve, 1.0);
  ExpectWithinBand(curve, with, 1.0);
}

TEST(OnlinePlaTest, PolygonVertexCapStillSound) {
  Rng rng(113);
  FrequencyCurve curve = RandomStaircase(150, &rng);
  const double gamma = 3.0;
  LinearModel capped = BuildPla(curve, gamma, /*max_polygon_vertices=*/4);
  LinearModel uncapped = BuildPla(curve, gamma);
  // Capping can only split windows more often.
  EXPECT_GE(capped.size(), uncapped.size());
  ExpectWithinBand(curve, capped, gamma);
}

TEST(OnlinePlaTest, SegmentsAreOrderedAndDisjoint) {
  Rng rng(127);
  FrequencyCurve curve = RandomStaircase(250, &rng);
  LinearModel model = BuildPla(curve, 2.0);
  const auto& segs = model.segments();
  ASSERT_FALSE(segs.empty());
  for (size_t i = 0; i < segs.size(); ++i) {
    EXPECT_LE(segs[i].start, segs[i].last);
    if (i > 0) {
      EXPECT_GT(segs[i].start, segs[i - 1].last);
    }
  }
}

TEST(OnlinePlaTest, EvaluateBeforeFirstSegmentIsZero) {
  FrequencyCurve curve(std::vector<CurvePoint>{{50, 5}, {60, 9}});
  LinearModel model = BuildPla(curve, 1.0);
  EXPECT_EQ(model.Evaluate(0), 0.0);
  EXPECT_EQ(model.Evaluate(49), 0.0);
}

TEST(LinearModelTest, SerializationRoundTrip) {
  Rng rng(131);
  FrequencyCurve curve = RandomStaircase(80, &rng);
  LinearModel model = BuildPla(curve, 2.5);
  BinaryWriter w;
  model.Serialize(&w);
  LinearModel back;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  ASSERT_EQ(back.size(), model.size());
  for (Timestamp t = 0; t <= curve.points().back().time; t += 3) {
    EXPECT_DOUBLE_EQ(back.Evaluate(t), model.Evaluate(t));
  }
}

TEST(StaircaseModelTest, SerializationRoundTrip) {
  StaircaseModel m({{1, 2}, {5, 7}, {9, 11}});
  BinaryWriter w;
  m.Serialize(&w);
  StaircaseModel back;
  BinaryReader r(w.bytes());
  ASSERT_TRUE(back.Deserialize(&r).ok());
  EXPECT_EQ(back.points(), m.points());
}

}  // namespace
}  // namespace bursthist
