// Unit tests for the uniform-subsampling staircase baseline.

#include <gtest/gtest.h>

#include "pla/uniform_staircase.h"
#include "util/random.h"

namespace bursthist {
namespace {

std::vector<CurvePoint> RandomCurve(size_t n, Rng* rng) {
  std::vector<CurvePoint> pts;
  Timestamp t = 0;
  Count c = 0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<Timestamp>(rng->NextBelow(20));
    c += 1 + static_cast<Count>(rng->NextBelow(15));
    pts.push_back(CurvePoint{t, c});
  }
  return pts;
}

TEST(UniformStaircaseTest, KeepsBoundaries) {
  Rng rng(1);
  auto pts = RandomCurve(40, &rng);
  auto fit = UniformStaircase(pts, 7);
  ASSERT_GE(fit.selected.size(), 2u);
  EXPECT_EQ(fit.selected.front(), 0u);
  EXPECT_EQ(fit.selected.back(), 39u);
  EXPECT_LE(fit.selected.size(), 7u);
}

TEST(UniformStaircaseTest, FullBudgetIsExact) {
  Rng rng(2);
  auto pts = RandomCurve(10, &rng);
  auto fit = UniformStaircase(pts, 10);
  EXPECT_EQ(fit.selected.size(), 10u);
  EXPECT_EQ(fit.error, 0.0);
}

TEST(UniformStaircaseTest, NeverBeatsOptimal) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    auto pts = RandomCurve(60, &rng);
    const size_t budget = 3 + rng.NextBelow(20);
    auto uniform = UniformStaircase(pts, budget);
    auto optimal = OptimalStaircase(pts, budget);
    EXPECT_GE(uniform.error + 1e-9, optimal.error)
        << "budget=" << budget << " trial=" << trial;
  }
}

TEST(UniformStaircaseTest, ErrorMatchesSelection) {
  Rng rng(4);
  auto pts = RandomCurve(30, &rng);
  auto fit = UniformStaircase(pts, 6);
  EXPECT_DOUBLE_EQ(fit.error, SelectionError(pts, fit.selected));
}

TEST(UniformStaircaseTest, DegenerateInputs) {
  EXPECT_TRUE(UniformStaircase({}, 4).selected.empty());
  auto one = UniformStaircase({{5, 1}}, 4);
  EXPECT_EQ(one.selected.size(), 1u);
  EXPECT_EQ(one.error, 0.0);
}

}  // namespace
}  // namespace bursthist
