// Deterministic overload matrix.
//
// The resource governor's contract under overload — hot-key skew, a
// stalled watermark filling the re-order buffer, memory budgets, and
// injected IO faults — is:
//
//   1. never abort: every Append returns OK, ResourceExhausted, or
//      OutOfRange; queries keep answering;
//   2. never exceed the hard byte budget by more than one arena block
//      (audits are amortized; kArenaBlockBytes states the overshoot);
//   3. stay honest: shed occurrences are counted, degraded accuracy
//      widens the *reported* effective bound, and every answer lands
//      within the bound actually reported;
//   4. recover: after an injected crash / fsync failure the directory
//      replays to a state byte-consistent with the accepted prefix.
//
// The governed differential family re-runs the harness's stream
// families against ExactBurstStore with the governor actively shedding
// (soft budget of one byte), asserting every POINT / TIME / EVENT
// answer satisfies the reported — widened — bound.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/burst_engine.h"
#include "core/exact_store.h"
#include "differential/diff_harness.h"
#include "governor/governed_engine.h"
#include "governor/resource_governor.h"
#include "recovery/durable_engine.h"
#include "recovery/fault_env.h"
#include "recovery/snapshot.h"
#include "recovery/wal.h"
#include "test_util.h"
#include "util/env.h"
#include "util/random.h"

namespace bursthist {
namespace {

using test::kAccumTol;

struct Arrival {
  EventId e;
  Timestamp t;
};

// Hot-key skew under a stalled watermark: only ~1/4 of arrivals advance
// time; the rest are late records landing within the lateness window,
// and half of everything hits event 0. This is the workload that grows
// an uncapped re-order buffer without bound.
std::vector<Arrival> OverloadArrivals(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Arrival> out;
  Timestamp wm = 100;
  for (size_t i = 0; i < n; ++i) {
    Timestamp t;
    if (rng.NextBelow(4) == 0) {
      t = ++wm;
    } else {
      t = wm - 1 - static_cast<Timestamp>(rng.NextBelow(3));
    }
    const EventId e = rng.NextBelow(2) == 0
                          ? 0
                          : static_cast<EventId>(rng.NextBelow(8));
    out.push_back({e, t});
  }
  return out;
}

GovernedEngineOptions<Pbe1> OverloadOptions(ReorderOverflowPolicy policy) {
  GovernedEngineOptions<Pbe1> opt;
  opt.engine.universe_size = 8;
  opt.engine.grid.depth = 1;
  opt.engine.grid.width = 8;
  opt.engine.grid.identity_hash = true;
  opt.engine.cell.buffer_points = 16;
  opt.engine.cell.budget_points = 4;
  opt.engine.max_lateness = 4;
  opt.engine.max_reorder_events = 8;
  opt.engine.overflow_policy = policy;
  opt.audit_every = 16;
  // Budgets are relative to the engine's empty footprint so the test
  // is insensitive to struct-size drift across platforms.
  const size_t initial = BurstEngine1(opt.engine).MemoryUsage();
  opt.budget.soft_bytes = initial + 2048;
  opt.budget.hard_bytes = initial + kArenaBlockBytes;
  return opt;
}

struct OverloadOutcome {
  std::vector<Arrival> accepted;
  size_t refused = 0;       // ResourceExhausted (governor or backpressure)
  size_t out_of_range = 0;  // beyond the (possibly advanced) watermark
};

// Runs the overload workload, asserting the never-abort and
// bounded-memory contracts on every single append.
OverloadOutcome RunOverload(GovernedBurstEngine<Pbe1>* governed, size_t n,
                            uint64_t seed) {
  OverloadOutcome out;
  const size_t hard = governed->governor().budget().hard_bytes;
  for (const Arrival& a : OverloadArrivals(n, seed)) {
    const Status s = governed->Append(a.e, a.t);
    if (s.ok()) {
      out.accepted.push_back(a);
    } else if (s.code() == StatusCode::kResourceExhausted) {
      ++out.refused;
    } else if (s.code() == StatusCode::kOutOfRange) {
      ++out.out_of_range;
    } else {
      ADD_FAILURE() << "unexpected status under overload: " << s.ToString();
    }
    EXPECT_LE(governed->governor().TotalUsage(), hard + kArenaBlockBytes);
  }
  return out;
}

// Every answer of the finalized engine must land within the bound the
// engine itself reports, measured against an oracle fed exactly the
// accepted records.
void ExpectAnswersWithinReportedBound(const GovernedBurstEngine<Pbe1>& governed,
                                      std::vector<Arrival> accepted) {
  std::stable_sort(
      accepted.begin(), accepted.end(),
      [](const Arrival& a, const Arrival& b) { return a.t < b.t; });
  ExactBurstStore oracle(8);
  Timestamp max_t = 0;
  for (const Arrival& a : accepted) {
    oracle.Append(a.e, a.t);
    max_t = std::max(max_t, a.t);
  }
  const EffectiveErrorBound bound = governed.effective_bound();
  // Identity-hashed leaf: the whole bound is deterministic.
  EXPECT_DOUBLE_EQ(bound.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(bound.point_bound, 4.0 * bound.cell_error);
  for (Timestamp t : {Timestamp{0}, Timestamp{100}, max_t / 2, max_t,
                      max_t + 5}) {
    for (Timestamp tau : {Timestamp{1}, Timestamp{3}, Timestamp{8}}) {
      for (EventId e = 0; e < 8; ++e) {
        const double exact =
            static_cast<double>(oracle.BurstinessAt(e, t, tau));
        const double est = governed.engine().PointQuery(e, t, tau);
        EXPECT_LE(std::abs(est - exact), bound.point_bound + kAccumTol)
            << "e=" << e << " t=" << t << " tau=" << tau;
      }
    }
  }
}

TEST(OverloadMatrixTest, RejectPolicyNeverAbortsAndStaysWithinBounds) {
  auto opt = OverloadOptions(ReorderOverflowPolicy::kReject);
  GovernedBurstEngine<Pbe1> governed(opt);
  const OverloadOutcome out = RunOverload(&governed, 1200, test::TestSeed());
  // The stalled watermark actually bound the buffer: refusals happened,
  // yet fresh (watermark-advancing) traffic kept recovering it.
  EXPECT_GT(out.refused, 0u);
  EXPECT_GT(out.accepted.size(), 0u);
  governed.Finalize();
  EXPECT_EQ(governed.engine().TotalCount(), out.accepted.size());
  EXPECT_EQ(governed.engine().DroppedCount(), 0u);
  ExpectAnswersWithinReportedBound(governed, out.accepted);
}

TEST(OverloadMatrixTest, DropOldestKeepsAccountingHonest) {
  auto opt = OverloadOptions(ReorderOverflowPolicy::kDropOldest);
  GovernedBurstEngine<Pbe1> governed(opt);
  const OverloadOutcome out = RunOverload(&governed, 1200, test::TestSeed());
  governed.Finalize();
  const BurstEngine1& engine = governed.engine();
  EXPECT_GT(engine.DroppedCount(), 0u);
  // Honest accounting: every accepted occurrence is either in the index
  // or counted as shed — nothing vanishes silently.
  EXPECT_EQ(engine.TotalCount() + engine.DroppedCount(),
            out.accepted.size());
}

TEST(OverloadMatrixTest, ForceDrainLosesNoDataAndStaysWithinBounds) {
  auto opt = OverloadOptions(ReorderOverflowPolicy::kForceDrain);
  GovernedBurstEngine<Pbe1> governed(opt);
  const OverloadOutcome out = RunOverload(&governed, 1200, test::TestSeed());
  EXPECT_GT(governed.engine().ForcedDrains(), 0u);
  governed.Finalize();
  // Force-drain sheds the lateness window, not data: every accepted
  // record is in the index.
  EXPECT_EQ(governed.engine().TotalCount(), out.accepted.size());
  EXPECT_EQ(governed.engine().DroppedCount(), 0u);
  ExpectAnswersWithinReportedBound(governed, out.accepted);
}

TEST(OverloadMatrixTest, SheddingEngagedUnderPressure) {
  auto opt = OverloadOptions(ReorderOverflowPolicy::kForceDrain);
  GovernedBurstEngine<Pbe1> governed(opt);
  RunOverload(&governed, 1200, test::TestSeed());
  // The soft budget is tight (empty footprint + 2KB): the governor must
  // have walked the ladder, and the audit trail shows it.
  EXPECT_GT(governed.governor().audits(), 0u);
  EXPECT_GT(governed.governor().shed_rounds(), 0u);
}

// ---------------------------------------------------------------------------
// Governed differential family: the reported (widened) bound holds
// against the exact oracle across the harness's stream families.
// ---------------------------------------------------------------------------

/// Differential-harness view over a finalized governed engine whose
/// leaf level is identity-hashed (no collisions): the uniform reported
/// bound EffectivePointBound().point_bound must cover every answer,
/// and the PBE no-overestimate invariant survives degradation (PBE-2's
/// band is one-sided, so widening never lifts F~ above F; PBE-1's
/// early compaction keeps the staircase under the curve).
template <typename PbeT>
struct GovernedView {
  static constexpr bool kPiecewiseConstant = PbeT::kPiecewiseConstant;
  static constexpr bool kExactIntervals = PbeT::kPiecewiseConstant;
  const BurstEngine<PbeT>* engine;  // finalized

  double Estimate(EventId e, Timestamp t, Timestamp tau) const {
    return engine->PointQuery(e, t, tau);
  }
  double EstimateCumulative(EventId e, Timestamp t) const {
    return engine->CumulativeQuery(e, t);
  }
  double Bound(EventId, Timestamp, Timestamp) const {
    return engine->EffectivePointBound().point_bound;
  }
  double CumUpper(EventId, Timestamp) const { return 0.0; }
  double CumLower(EventId) const {
    return engine->EffectivePointBound().cell_error;
  }
  std::vector<Timestamp> Breakpoints(EventId e) const {
    return engine->index().level(0).Breakpoints(e);
  }
  EventId universe() const { return engine->universe_size(); }
};

template <typename PbeT>
GovernedEngineOptions<PbeT> DifferentialGovernedOptions() {
  GovernedEngineOptions<PbeT> opt;
  opt.engine.universe_size = 8;
  opt.engine.grid.depth = 1;
  opt.engine.grid.width = 8;
  opt.engine.grid.identity_hash = true;
  opt.budget.soft_bytes = 1;  // always over: shed on every audit
  opt.audit_every = 64;
  return opt;
}

template <typename PbeT>
void RunGovernedDifferential(GovernedEngineOptions<PbeT> opt,
                             const std::string& structure) {
  for (const auto family :
       {test::StreamFamily::kUniform, test::StreamFamily::kBursty,
        test::StreamFamily::kStaircase, test::StreamFamily::kDuplicates,
        test::StreamFamily::kOutOfOrder}) {
    test::StreamSpec spec;
    spec.family = family;
    spec.universe = 8;
    spec.n = 256;
    spec.seed = test::CaseSeed(static_cast<uint64_t>(family) + 7);
    spec.max_lateness = 4;
    const EventStream stream =
        test::SortedStream(test::GenerateArrivals(spec));

    ExactBurstStore oracle(spec.universe);
    ASSERT_TRUE(oracle.AppendStream(stream).ok());
    GovernedBurstEngine<PbeT> governed(opt);
    for (const auto& r : stream.records()) {
      ASSERT_TRUE(governed.Append(r.id, r.time).ok());
    }
    governed.Finalize();
    ASSERT_GT(governed.governor().shed_rounds(), 0u)
        << structure << " " << spec.ToString();

    GovernedView<PbeT> view{&governed.engine()};
    const test::QueryPlan plan = test::MakeQueryPlan(oracle, spec.seed);
    test::Violations violations;
    test::CheckStructure(view, oracle, plan,
                         structure + " " + test::FamilyName(family),
                         &violations);
    for (const auto& v : violations) {
      ADD_FAILURE() << v << "\n  spec: " << spec.ToString();
    }
  }
}

TEST(GovernedDifferentialTest, Pbe1AnswersHonorReportedBound) {
  RunGovernedDifferential(DifferentialGovernedOptions<Pbe1>(), "gov-pbe1");
}

TEST(GovernedDifferentialTest, Pbe2AnswersHonorWidenedBound) {
  auto opt = DifferentialGovernedOptions<Pbe2>();
  opt.engine.cell.gamma = 0.5;
  RunGovernedDifferential(opt, "gov-pbe2");
}

// ---------------------------------------------------------------------------
// Injected IO faults: WAL retry, fsync poisoning, snapshot cleanup.
// ---------------------------------------------------------------------------

struct Record {
  EventId e;
  Timestamp t;
};

std::vector<Record> Workload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    out.push_back({static_cast<EventId>(rng.NextBelow(8)), t});
  }
  return out;
}

BurstEngineOptions<Pbe1> SmallOptions() {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 8;
  o.grid.depth = 1;
  o.grid.width = 8;
  o.cell.buffer_points = 16;
  o.cell.budget_points = 4;
  return o;
}

std::vector<uint8_t> Ser(const BurstEngine1& e) {
  BinaryWriter w;
  e.Serialize(&w);
  return w.TakeBytes();
}

void ExpectRecoversPrefix(Env* env, const std::string& dir,
                          const std::vector<Record>& workload,
                          size_t expected_count) {
  auto recovered = RecoverBurstEngine<Pbe1>(env, dir, SmallOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value().TotalCount(), expected_count);
  BurstEngine1 reference(SmallOptions());
  for (size_t i = 0; i < expected_count; ++i) {
    ASSERT_TRUE(reference.Append(workload[i].e, workload[i].t).ok());
  }
  EXPECT_EQ(Ser(recovered.value()), Ser(reference));
}

class OverloadFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = Env::Default();
    dir_ = testing::TempDir() + "/bursthist_overload_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    Clean();
    ASSERT_TRUE(base_->CreateDirIfMissing(dir_).ok());
  }
  void TearDown() override {
    Clean();
    ::rmdir(dir_.c_str());
  }
  void Clean() {
    auto names = base_->ListDir(dir_);
    if (!names.ok()) return;
    for (const auto& n : names.value()) (void)base_->DeleteFile(dir_ + "/" + n);
  }

  Env* base_ = nullptr;
  std::string dir_;
};

TEST_F(OverloadFaultTest, WalAppendRetriesThroughTransientOutage) {
  FaultInjectionEnv fault(base_);
  uint32_t backoffs = 0;
  uint64_t observed_writes = 0;
  fault.set_write_observer([&] { ++observed_writes; });  // slow-disk seam
  DurabilityOptions durability;
  durability.wal_append_retries = 3;
  durability.wal_retry_backoff = [&](uint32_t) { ++backoffs; };
  auto durable =
      DurableBurstEngine1::Open(&fault, dir_, SmallOptions(), durability);
  ASSERT_TRUE(durable.ok());

  const auto workload = Workload(8, test::TestSeed());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        durable.value()->Append(workload[i].e, workload[i].t).ok());
  }
  // One transient ENOSPC: the append retries onto a fresh, clean
  // segment and succeeds without the caller noticing.
  fault.FailWritesForNext(1);
  ASSERT_TRUE(durable.value()->Append(workload[4].e, workload[4].t).ok());
  EXPECT_EQ(backoffs, 1u);
  for (size_t i = 5; i < 8; ++i) {
    ASSERT_TRUE(
        durable.value()->Append(workload[i].e, workload[i].t).ok());
  }
  ASSERT_TRUE(durable.value()->Sync().ok());
  EXPECT_GT(observed_writes, 0u);
  durable.value().reset();
  // The retry's segment switcheroo is invisible to recovery: every
  // acknowledged record replays, byte-consistent with the reference.
  ExpectRecoversPrefix(base_, dir_, workload, 8);
}

TEST_F(OverloadFaultTest, WalRetryExhaustionSurfacesErrorKeepsPrefix) {
  FaultInjectionEnv fault(base_);
  DurabilityOptions durability;
  durability.wal_append_retries = 2;
  auto durable =
      DurableBurstEngine1::Open(&fault, dir_, SmallOptions(), durability);
  ASSERT_TRUE(durable.ok());

  const auto workload = Workload(6, test::TestSeed());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        durable.value()->Append(workload[i].e, workload[i].t).ok());
  }
  // A persistent outage outlasts the retries: the error surfaces (the
  // original IO error, not a cleanup side-effect) and the record is
  // NOT ingested.
  fault.FailWritesForNext(100);
  const Status s = durable.value()->Append(workload[4].e, workload[4].t);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(durable.value()->engine().TotalCount(), 4u);
  durable.value().reset();  // crash
  fault.Disarm();
  ExpectRecoversPrefix(base_, dir_, workload, 4);
}

TEST_F(OverloadFaultTest, FsyncFailurePoisonsToReadOnlyNeverRetries) {
  FaultInjectionEnv fault(base_);
  auto durable = DurableBurstEngine1::Open(&fault, dir_, SmallOptions());
  ASSERT_TRUE(durable.ok());

  const auto workload = Workload(5, test::TestSeed());
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        durable.value()->Append(workload[i].e, workload[i].t).ok());
  }
  ASSERT_FALSE(durable.value()->read_only());
  // The fsync fails once. The kernel may have dropped the dirty pages,
  // so a retry proving anything is impossible — the engine must fail
  // over to read-only degraded mode, not retry.
  fault.FailNthSync(1);
  const Status sync = durable.value()->Sync();
  EXPECT_EQ(sync.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(durable.value()->read_only());
  // Disarming proves the poisoning is sticky: the device is healthy
  // again, yet appends, syncs, and checkpoints all stay refused.
  fault.Disarm();
  EXPECT_EQ(durable.value()->Append(workload[3].e, workload[3].t).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(durable.value()->Sync().code(), StatusCode::kUnavailable);
  EXPECT_EQ(durable.value()->Checkpoint().code(), StatusCode::kUnavailable);
  EXPECT_EQ(durable.value()->engine().TotalCount(), 3u);
  // Queries still serve from the degraded engine.
  auto snapshot = durable.value()->engine();
  snapshot.set_append_observer(nullptr);
  snapshot.Finalize();
  (void)snapshot.PointQuery(0, workload[2].t, 1);
  durable.value().reset();
  // Restart is the recovery path: what reached disk replays.
  ExpectRecoversPrefix(base_, dir_, workload, 3);
}

TEST_F(OverloadFaultTest, SnapshotWriteFailureLeavesNoTempFile) {
  FaultInjectionEnv fault(base_);
  const std::vector<uint8_t> blob(256, 0xab);
  fault.FailWritesForNext(1);
  const Status s =
      WriteSnapshotFile(&fault, dir_, /*generation=*/1,
                        WalPosition{1, kWalHeaderSize}, blob);
  EXPECT_FALSE(s.ok());
  // The failed write's temp file is unlinked — a full disk is not made
  // fuller by checkpoint attempts — and no snapshot is visible.
  auto names = base_->ListDir(dir_);
  ASSERT_TRUE(names.ok());
  for (const auto& name : names.value()) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
  auto gens = ListSnapshots(base_, dir_);
  ASSERT_TRUE(gens.ok());
  EXPECT_TRUE(gens.value().empty());
  // The disk heals; the same write now lands and verifies.
  fault.Disarm();
  ASSERT_TRUE(WriteSnapshotFile(&fault, dir_, 1,
                                WalPosition{1, kWalHeaderSize}, blob)
                  .ok());
  auto snap = ReadSnapshotFile(base_, dir_, 1);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().blob, blob);
}

}  // namespace
}  // namespace bursthist
