// Tests for segment-parallel construction over mutually exclusive
// time ranges (parallel_ingest.h) and the AbsorbSuffix concatenation
// it is built on.
//
// With lossless cells (budget_points == buffer_points) the staircase
// DP keeps every corner, so a concatenated build is byte-identical to
// a serial one — those tests assert exact equality of serialized
// state. Lossy configurations change only where buffer resets fall,
// so there the tests assert the paper's guarantees instead (no
// overestimation, the 4*Delta / gamma bands).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/burst_engine.h"
#include "core/parallel_ingest.h"
#include "util/random.h"

namespace bursthist {
namespace {

EventStream RandomMix(EventId k, size_t n, uint64_t seed) {
  Rng rng(seed);
  EventStream s;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    s.Append(static_cast<EventId>(rng.NextBelow(k)), t);
  }
  return s;
}

Pbe1Options LosslessCell() {
  Pbe1Options o;
  o.buffer_points = 128;
  o.budget_points = 128;
  return o;
}

Pbe1Options LossyCell() {
  Pbe1Options o;
  o.buffer_points = 64;
  o.budget_points = 16;
  return o;
}

template <typename T>
std::vector<uint8_t> Bytes(const T& v) {
  BinaryWriter w;
  v.Serialize(&w);
  return w.TakeBytes();
}

TEST(SegmentRangesTest, CoversStreamAndRespectsTimestamps) {
  auto stream = RandomMix(8, 5000, 3);
  const auto& records = stream.records();
  for (size_t segments : {1, 2, 3, 7, 8, 16}) {
    auto ranges = SegmentRanges(records, segments);
    ASSERT_FALSE(ranges.empty());
    EXPECT_LE(ranges.size(), segments);
    EXPECT_EQ(ranges.front().first, 0u);
    EXPECT_EQ(ranges.back().second, records.size());
    for (size_t s = 1; s < ranges.size(); ++s) {
      EXPECT_EQ(ranges[s].first, ranges[s - 1].second);
      // Mutually exclusive time ranges: a timestamp never straddles a
      // boundary.
      EXPECT_GT(records[ranges[s].first].time,
                records[ranges[s].first - 1].time);
    }
  }
  EXPECT_TRUE(SegmentRanges(std::vector<EventRecord>{}, 4).empty());
}

TEST(SegmentRangesTest, AllRecordsShareOneTimestamp) {
  std::vector<EventRecord> records(100, EventRecord{1, 42});
  auto ranges = SegmentRanges(records, 8);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 100}));
}

TEST(Pbe1AbsorbTest, LosslessConcatIsByteIdentical) {
  Rng rng(19);
  std::vector<std::pair<Timestamp, Count>> arrivals;
  Timestamp t = 0;
  for (int i = 0; i < 700; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBelow(4));
    arrivals.emplace_back(t, 1 + rng.NextBelow(3));
  }

  Pbe1 serial(LosslessCell());
  for (const auto& [at, c] : arrivals) serial.Append(at, c);
  serial.Finalize();

  for (size_t cut : {1u, 350u, 699u}) {
    Pbe1 prefix(LosslessCell());
    for (size_t i = 0; i < cut; ++i) {
      prefix.Append(arrivals[i].first, arrivals[i].second);
    }
    Pbe1 suffix(LosslessCell());
    for (size_t i = cut; i < arrivals.size(); ++i) {
      suffix.Append(arrivals[i].first, arrivals[i].second);
    }
    suffix.Finalize();
    prefix.AbsorbSuffix(suffix);
    prefix.Finalize();
    EXPECT_EQ(prefix.TotalCount(), serial.TotalCount());
    EXPECT_EQ(Bytes(prefix), Bytes(serial)) << "cut=" << cut;
  }
}

TEST(Pbe1AbsorbTest, LossyConcatKeepsGuarantees) {
  Rng rng(23);
  SingleEventStream exact;
  Pbe1 prefix(LossyCell());
  Pbe1 suffix(LossyCell());
  Timestamp t = 0;
  std::vector<Timestamp> times;
  for (int i = 0; i < 900; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBelow(3));
    times.push_back(t);
  }
  const Timestamp cut_time = times[500];
  for (Timestamp at : times) {
    exact.Append(at);
    (at <= cut_time ? prefix : suffix).Append(at);
  }
  suffix.Finalize();
  const double prefix_err = prefix.TotalAreaError();
  prefix.AbsorbSuffix(suffix);
  prefix.Finalize();

  // Error statistics accumulate across the seam.
  EXPECT_GE(prefix.TotalAreaError(), prefix_err + suffix.TotalAreaError());
  EXPECT_GE(prefix.MaxBufferAreaError(), suffix.MaxBufferAreaError());

  const double band = 4.0 * prefix.MaxBufferAreaError();
  const Timestamp tau = 40;
  for (Timestamp q = 0; q <= t + 10; q += 7) {
    // The staircase never overestimates F, on either side of the seam.
    EXPECT_LE(prefix.EstimateCumulative(q),
              static_cast<double>(exact.CumulativeFrequency(q)));
    // Lemma 1's pointwise band survives the concatenation.
    EXPECT_LE(std::abs(prefix.EstimateBurstiness(q, tau) -
                       static_cast<double>(exact.BurstinessAt(q, tau))),
              band + 1e-9)
        << "q=" << q;
  }
}

TEST(Pbe2AbsorbTest, ConcatKeepsGammaBand) {
  Rng rng(29);
  SingleEventStream exact;
  Pbe2Options cell;
  cell.gamma = 4.0;
  Pbe2 prefix(cell);
  Pbe2 suffix(cell);
  Timestamp t = 0;
  std::vector<Timestamp> times;
  for (int i = 0; i < 800; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBelow(5));
    times.push_back(t);
  }
  const Timestamp cut_time = times[390];
  for (Timestamp at : times) {
    exact.Append(at);
    (at <= cut_time ? prefix : suffix).Append(at);
  }
  suffix.Finalize();
  prefix.AbsorbSuffix(suffix);
  prefix.Finalize();

  EXPECT_EQ(prefix.TotalCount(), exact.size());
  const double gamma = prefix.MaxGamma();
  for (Timestamp q = 0; q <= t + 10; ++q) {
    const double f = static_cast<double>(exact.CumulativeFrequency(q));
    const double est = prefix.EstimateCumulative(q);
    EXPECT_LE(est, f + 1e-9) << "q=" << q;
    EXPECT_GE(est, f - gamma - 1e-9) << "q=" << q;
  }
}

TEST(Pbe2AbsorbTest, StaysLiveAfterAbsorb) {
  Pbe2Options cell;
  cell.gamma = 2.0;
  Pbe2 prefix(cell);
  Pbe2 suffix(cell);
  SingleEventStream exact;
  for (Timestamp at = 0; at < 100; at += 2) {
    (at < 50 ? prefix : suffix).Append(at);
    exact.Append(at);
  }
  suffix.Finalize();
  prefix.AbsorbSuffix(suffix);
  // Keep appending after the splice: the pre-rise augmentation level
  // must continue from the suffix's (lifted) total.
  for (Timestamp at = 200; at < 260; at += 2) {
    prefix.Append(at);
    exact.Append(at);
  }
  prefix.Finalize();
  const double gamma = prefix.MaxGamma();
  for (Timestamp q = 0; q < 270; ++q) {
    const double f = static_cast<double>(exact.CumulativeFrequency(q));
    const double est = prefix.EstimateCumulative(q);
    EXPECT_LE(est, f + 1e-9) << "q=" << q;
    EXPECT_GE(est, f - gamma - 1e-9) << "q=" << q;
  }
}

TEST(SegmentParallelTest, CmPbeMatchesSerialBytes) {
  const EventId k = 32;
  auto stream = RandomMix(k, 20000, 7);
  CmPbeOptions grid;
  grid.depth = 4;
  grid.width = 64;

  CmPbe<Pbe1> serial(grid, LosslessCell());
  for (const auto& r : stream.records()) serial.Append(r.id, r.time);
  serial.Finalize();
  const auto serial_bytes = Bytes(serial);

  for (size_t threads : {2, 5, 8}) {
    auto parallel = BuildCmPbeSegmentParallel<Pbe1>(stream, grid,
                                                    LosslessCell(), threads);
    EXPECT_TRUE(parallel.finalized());
    EXPECT_EQ(parallel.TotalCount(), serial.TotalCount());
    EXPECT_EQ(Bytes(parallel), serial_bytes) << "threads=" << threads;
  }
}

TEST(SegmentParallelTest, CmPbe2SegmentsKeepGammaBand) {
  const EventId k = 16;
  auto stream = RandomMix(k, 12000, 11);
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 32;
  Pbe2Options cell;
  cell.gamma = 3.0;

  auto parallel =
      BuildCmPbeSegmentParallel<Pbe2>(stream, grid, cell, 6);
  auto split = stream.SplitById(k);
  ASSERT_TRUE(split.ok());
  Rng qrng(11);
  for (int i = 0; i < 300; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(k));
    const Timestamp q =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    const double f =
        static_cast<double>(split.value()[e].CumulativeFrequency(q));
    // Collisions only push estimates up; the cell's own undershoot is
    // bounded by gamma. Median keeps the lower bound.
    EXPECT_GE(parallel.EstimateCumulative(e, q), f - cell.gamma - 1e-9);
  }
}

TEST(SegmentParallelTest, DyadicMatchesSerialBytesAndQueries) {
  const EventId k = 100;
  auto stream = RandomMix(k, 15000, 13);
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 64;

  DyadicBurstIndex<Pbe1> serial(k, grid, LosslessCell());
  for (const auto& r : stream.records()) serial.Append(r.id, r.time);
  serial.Finalize();

  for (size_t threads : {2, 8}) {
    auto parallel = BuildDyadicSegmentParallel<Pbe1>(stream, k, grid,
                                                     LosslessCell(), threads);
    EXPECT_EQ(Bytes(parallel), Bytes(serial)) << "threads=" << threads;
    auto a = parallel.BurstyEvents(stream.MaxTime() / 2, 10.0, 100);
    auto b = serial.BurstyEvents(stream.MaxTime() / 2, 10.0, 100);
    EXPECT_EQ(a, b);
  }
}

TEST(SegmentParallelTest, WeightedRecordsMatchSerialWeightedAppends) {
  Rng rng(31);
  std::vector<WeightedRecord> records;
  Timestamp t = 0;
  for (int i = 0; i < 8000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    records.push_back(WeightedRecord{static_cast<EventId>(rng.NextBelow(24)),
                                     t, 1 + rng.NextBelow(5)});
  }
  CmPbeOptions grid;
  grid.depth = 3;
  grid.width = 48;

  CmPbe<Pbe1> serial(grid, LosslessCell());
  for (const auto& r : records) serial.Append(r.id, r.time, r.count);
  serial.Finalize();

  auto parallel =
      BuildCmPbeSegmentParallel<Pbe1>(records, grid, LosslessCell(), 7);
  EXPECT_EQ(parallel.TotalCount(), serial.TotalCount());
  EXPECT_EQ(Bytes(parallel), Bytes(serial));
}

BurstEngineOptions<Pbe1> EngineOptions(EventId k, size_t threads) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = k;
  o.grid.depth = 3;
  o.grid.width = 64;
  o.cell.buffer_points = 128;
  o.cell.budget_points = 128;  // lossless: parallel == serial exactly
  o.heavy_hitter_capacity = 8;
  o.ingest_threads = threads;
  return o;
}

TEST(SegmentParallelTest, EngineAnswersMatchSerialOnAllQueryTypes) {
  const EventId k = 64;
  auto stream = RandomMix(k, 20000, 37);

  BurstEngine1 serial(EngineOptions(k, 1));
  ASSERT_TRUE(serial.AppendStream(stream).ok());
  serial.Finalize();

  BurstEngine1 parallel(EngineOptions(k, 8));
  ASSERT_TRUE(parallel.AppendStream(stream).ok());
  parallel.Finalize();

  EXPECT_EQ(parallel.TotalCount(), serial.TotalCount());
  const Timestamp tau = 100;
  Rng qrng(37);
  for (int i = 0; i < 300; ++i) {
    const EventId e = static_cast<EventId>(qrng.NextBelow(k));
    const Timestamp q =
        static_cast<Timestamp>(qrng.NextBelow(stream.MaxTime() + 1));
    EXPECT_DOUBLE_EQ(parallel.PointQuery(e, q, tau),
                     serial.PointQuery(e, q, tau));
  }
  for (EventId e = 0; e < k; e += 9) {
    EXPECT_EQ(parallel.BurstyTimeQuery(e, 8.0, tau),
              serial.BurstyTimeQuery(e, 8.0, tau))
        << "e=" << e;
  }
  for (Timestamp q = 0; q <= stream.MaxTime(); q += stream.MaxTime() / 7) {
    EXPECT_EQ(parallel.BurstyEventQuery(q, 8.0, tau),
              serial.BurstyEventQuery(q, 8.0, tau))
        << "t=" << q;
  }
  // The whole persistent state agrees, heavy hitters included.
  EXPECT_EQ(Bytes(parallel), Bytes(serial));
}

TEST(SegmentParallelTest, EngineStaysLiveAfterParallelBulkLoad) {
  const EventId k = 24;
  auto stream = RandomMix(k, 6000, 41);
  // Live tail re-uses the bulk stream's final timestamp: equal-time
  // arrivals must keep merging, exactly as after serial ingestion.
  std::vector<EventRecord> tail;
  Timestamp t = stream.MaxTime();
  Rng rng(43);
  for (int i = 0; i < 3000; ++i) {
    tail.push_back(EventRecord{static_cast<EventId>(rng.NextBelow(k)), t});
    t += static_cast<Timestamp>(rng.NextBelow(3));
  }

  BurstEngine1 serial(EngineOptions(k, 1));
  ASSERT_TRUE(serial.AppendStream(stream).ok());
  for (const auto& r : tail) ASSERT_TRUE(serial.Append(r.id, r.time).ok());
  serial.Finalize();

  BurstEngine1 parallel(EngineOptions(k, 8));
  ASSERT_TRUE(parallel.AppendStream(stream).ok());
  for (const auto& r : tail) {
    ASSERT_TRUE(parallel.Append(r.id, r.time).ok());
  }
  parallel.Finalize();

  EXPECT_EQ(parallel.TotalCount(), serial.TotalCount());
  EXPECT_EQ(Bytes(parallel), Bytes(serial));
}

TEST(SegmentParallelTest, BatchedAppendMatchesParallelBulkLoad) {
  const EventId k = 48;
  auto stream = RandomMix(k, 18000, 53);
  const auto& records = stream.records();

  // Segment-parallel bulk build (8 threads) on one side...
  BurstEngine1 parallel(EngineOptions(k, 8));
  ASSERT_TRUE(parallel.AppendStream(stream).ok());
  parallel.Finalize();

  // ...chunked AppendBatch spans on the other: both funnel into the
  // same lossless cells, so the bytes must agree exactly.
  for (size_t batch_size : {size_t{1}, size_t{257}, records.size()}) {
    BurstEngine1 batched(EngineOptions(k, 1));
    std::vector<WeightedRecord> chunk;
    for (size_t begin = 0; begin < records.size(); begin += batch_size) {
      const size_t end = std::min(begin + batch_size, records.size());
      chunk.clear();
      for (size_t i = begin; i < end; ++i) {
        chunk.push_back(WeightedRecord{records[i].id, records[i].time, 1});
      }
      ASSERT_TRUE(batched.AppendBatch(chunk).ok());
    }
    batched.Finalize();
    EXPECT_EQ(Bytes(batched), Bytes(parallel)) << "batch_size=" << batch_size;
  }
}

TEST(SegmentParallelTest, EngineValidatesBeforeBulkLoad) {
  BurstEngine1 engine(EngineOptions(8, 4));
  EventStream bad;
  bad.Append(1, 10);
  bad.Append(9, 20);  // out of universe
  EXPECT_EQ(engine.AppendStream(bad).code(), StatusCode::kInvalidArgument);
  // All-or-nothing: the invalid stream left no trace.
  EXPECT_EQ(engine.TotalCount(), 0u);
  EventStream good;
  good.Append(1, 10);
  good.Append(2, 20);
  EXPECT_TRUE(engine.AppendStream(good).ok());
  EXPECT_EQ(engine.TotalCount(), 2u);
}

}  // namespace
}  // namespace bursthist
