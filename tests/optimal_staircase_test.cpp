// Unit + property tests for the PBE-1 optimal staircase dynamic
// program (Section III-A, Algorithm 1).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pla/optimal_staircase.h"
#include "pla/staircase_model.h"
#include "util/random.h"

namespace bursthist {
namespace {

std::vector<CurvePoint> RandomCurve(size_t n, Rng* rng) {
  std::vector<CurvePoint> pts;
  pts.reserve(n);
  Timestamp t = 0;
  Count c = 0;
  for (size_t i = 0; i < n; ++i) {
    t += 1 + static_cast<Timestamp>(rng->NextBelow(20));
    c += 1 + static_cast<Count>(rng->NextBelow(15));
    pts.push_back(CurvePoint{t, c});
  }
  return pts;
}

// Exhaustive optimum over all subsets that include both boundaries.
double BruteForceBest(const std::vector<CurvePoint>& pts, size_t budget,
                      std::vector<uint32_t>* best_sel = nullptr) {
  const size_t n = pts.size();
  double best = 1e300;
  const size_t interior = n - 2;
  std::vector<uint32_t> sel;
  for (uint64_t mask = 0; mask < (1ULL << interior); ++mask) {
    if (static_cast<size_t>(__builtin_popcountll(mask)) + 2 > budget) continue;
    sel.clear();
    sel.push_back(0);
    for (size_t i = 0; i < interior; ++i) {
      if (mask & (1ULL << i)) sel.push_back(static_cast<uint32_t>(i + 1));
    }
    sel.push_back(static_cast<uint32_t>(n - 1));
    const double err = SelectionError(pts, sel);
    if (err < best) {
      best = err;
      if (best_sel) *best_sel = sel;
    }
  }
  return best;
}

TEST(OptimalStaircaseTest, TrivialInputs) {
  EXPECT_TRUE(OptimalStaircase({}, 5).selected.empty());

  std::vector<CurvePoint> one = {{3, 2}};
  auto fit1 = OptimalStaircase(one, 5);
  EXPECT_EQ(fit1.selected, (std::vector<uint32_t>{0}));
  EXPECT_EQ(fit1.error, 0.0);

  std::vector<CurvePoint> two = {{3, 2}, {7, 9}};
  auto fit2 = OptimalStaircase(two, 2);
  EXPECT_EQ(fit2.selected, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(fit2.error, 0.0);
}

TEST(OptimalStaircaseTest, BudgetAtLeastNIsExact) {
  Rng rng(5);
  auto pts = RandomCurve(20, &rng);
  auto fit = OptimalStaircase(pts, 20);
  EXPECT_EQ(fit.selected.size(), 20u);
  EXPECT_EQ(fit.error, 0.0);
}

TEST(OptimalStaircaseTest, KnownSmallInstance) {
  // Points: (0,1), (2,2), (5,4), (8,5); budget 3. Dropping (2,2)
  // costs 1*(5-2)=3 over [2,5); dropping (5,4) costs (4-2)*(8-5)=6.
  std::vector<CurvePoint> pts = {{0, 1}, {2, 2}, {5, 4}, {8, 5}};
  auto fit = OptimalStaircase(pts, 3);
  EXPECT_EQ(fit.selected, (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(fit.error, 3.0);
}

TEST(OptimalStaircaseTest, SelectionErrorMatchesAreaAbove) {
  Rng rng(11);
  auto pts = RandomCurve(30, &rng);
  auto fit = OptimalStaircase(pts, 7);
  FrequencyCurve full(pts);
  FrequencyCurve approx(fit.Materialize(pts));
  EXPECT_NEAR(fit.error, full.AreaAbove(approx, pts.back().time), 1e-6);
  EXPECT_NEAR(fit.error, SelectionError(pts, fit.selected), 1e-9);
}

TEST(OptimalStaircaseTest, BoundariesAlwaysSelected) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    auto pts = RandomCurve(25, &rng);
    auto fit = OptimalStaircase(pts, 2 + rng.NextBelow(10));
    ASSERT_GE(fit.selected.size(), 2u);
    EXPECT_EQ(fit.selected.front(), 0u);
    EXPECT_EQ(fit.selected.back(), pts.size() - 1);
    EXPECT_TRUE(std::is_sorted(fit.selected.begin(), fit.selected.end()));
  }
}

TEST(OptimalStaircaseTest, NeverOverestimates) {
  Rng rng(17);
  auto pts = RandomCurve(40, &rng);
  auto fit = OptimalStaircase(pts, 8);
  FrequencyCurve full(pts);
  StaircaseModel approx(fit.Materialize(pts));
  for (Timestamp t = 0; t <= pts.back().time + 5; ++t) {
    EXPECT_LE(approx.Evaluate(t), full.Evaluate(t)) << "t=" << t;
  }
}

TEST(OptimalStaircaseTest, ErrorDecreasesWithBudget) {
  Rng rng(19);
  auto pts = RandomCurve(60, &rng);
  double prev = 1e300;
  for (size_t budget : {2, 4, 8, 16, 32, 60}) {
    auto fit = OptimalStaircase(pts, budget);
    EXPECT_LE(fit.error, prev + 1e-9) << "budget=" << budget;
    prev = fit.error;
  }
}

// --- Cross-validation sweeps -------------------------------------------

struct SweepParam {
  size_t n;
  size_t budget;
  uint64_t seed;
};

class StaircaseSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(StaircaseSweep, DncMatchesNaive) {
  const auto p = GetParam();
  Rng rng(p.seed);
  auto pts = RandomCurve(p.n, &rng);
  auto fast = OptimalStaircase(pts, p.budget);
  auto slow = OptimalStaircaseNaive(pts, p.budget);
  EXPECT_NEAR(fast.error, slow.error, 1e-6 * (1.0 + slow.error));
  // Errors recomputed from the selections must agree too.
  EXPECT_NEAR(SelectionError(pts, fast.selected),
              SelectionError(pts, slow.selected),
              1e-6 * (1.0 + slow.error));
}

TEST_P(StaircaseSweep, NaiveMatchesBruteForce) {
  const auto p = GetParam();
  if (p.n > 16) GTEST_SKIP() << "brute force only for tiny n";
  Rng rng(p.seed ^ 0xabcd);
  auto pts = RandomCurve(p.n, &rng);
  auto fit = OptimalStaircaseNaive(pts, p.budget);
  const double brute = BruteForceBest(pts, p.budget);
  EXPECT_NEAR(fit.error, brute, 1e-9 * (1.0 + brute));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaircaseSweep,
    ::testing::Values(SweepParam{8, 3, 1}, SweepParam{10, 4, 2},
                      SweepParam{12, 5, 3}, SweepParam{14, 6, 4},
                      SweepParam{16, 4, 5}, SweepParam{16, 8, 6},
                      SweepParam{40, 7, 7}, SweepParam{80, 12, 8},
                      SweepParam{150, 20, 9}, SweepParam{300, 30, 10},
                      SweepParam{300, 150, 11}, SweepParam{500, 50, 12}));

TEST(OptimalStaircaseErrorCappedTest, MeetsCapWithFewestPoints) {
  Rng rng(23);
  auto pts = RandomCurve(50, &rng);
  // Reference: full DP errors per budget.
  for (double cap : {0.0, 10.0, 100.0, 1000.0}) {
    auto fit = OptimalStaircaseErrorCapped(pts, cap);
    EXPECT_LE(fit.error, cap + 1e-9);
    // Minimality: one fewer point must violate the cap (unless the
    // selection is already the minimum size 2).
    if (fit.selected.size() > 2) {
      auto tighter = OptimalStaircase(pts, fit.selected.size() - 1);
      EXPECT_GT(tighter.error, cap);
    }
  }
}

TEST(OptimalStaircaseErrorCappedTest, ZeroCapKeepsEverything) {
  Rng rng(29);
  auto pts = RandomCurve(15, &rng);
  auto fit = OptimalStaircaseErrorCapped(pts, 0.0);
  EXPECT_DOUBLE_EQ(fit.error, 0.0);
}

TEST(OptimalStaircaseErrorCappedTest, HugeCapKeepsOnlyBoundaries) {
  Rng rng(31);
  auto pts = RandomCurve(15, &rng);
  auto fit = OptimalStaircaseErrorCapped(pts, 1e18);
  EXPECT_EQ(fit.selected.size(), 2u);
}

}  // namespace
}  // namespace bursthist
