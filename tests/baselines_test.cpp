// Unit tests for the Section VII comparator detectors: Kleinberg's
// 2-state automaton, the MACD trending score, and dyadic-window
// elevated-count detection.

#include <gtest/gtest.h>

#include <vector>

#include "baselines/kleinberg.h"
#include "baselines/macd.h"
#include "baselines/window_burst.h"
#include "util/random.h"

namespace bursthist {
namespace {

// Sparse background (one arrival / 100 time units) with a dense storm
// (one arrival / unit) in [5000, 5200).
SingleEventStream StormStream() {
  std::vector<Timestamp> times;
  for (Timestamp t = 0; t < 10000; t += 100) times.push_back(t);
  for (Timestamp t = 5000; t < 5200; ++t) times.push_back(t);
  std::sort(times.begin(), times.end());
  return SingleEventStream(std::move(times));
}

// A steady stream with no structure at all.
SingleEventStream SteadyStream(Timestamp gap, size_t n) {
  std::vector<Timestamp> times;
  for (size_t i = 0; i < n; ++i) {
    times.push_back(static_cast<Timestamp>(i) * gap);
  }
  return SingleEventStream(std::move(times));
}

// --- Kleinberg ----------------------------------------------------------

TEST(KleinbergTest, DetectsTheStorm) {
  auto s = StormStream();
  auto bursts = KleinbergBursts(s, KleinbergOptions{});
  ASSERT_FALSE(bursts.empty());
  EXPECT_TRUE(Covers(bursts, 5100));
  EXPECT_FALSE(Covers(bursts, 2000));
  EXPECT_FALSE(Covers(bursts, 8000));
}

TEST(KleinbergTest, SteadyStreamHasNoBursts) {
  auto s = SteadyStream(50, 200);
  EXPECT_TRUE(KleinbergBursts(s, KleinbergOptions{}).empty());
}

TEST(KleinbergTest, HigherGammaFewerBursts) {
  auto s = StormStream();
  KleinbergOptions cheap;
  cheap.gamma = 0.1;
  KleinbergOptions pricey;
  pricey.gamma = 20.0;
  size_t covered_cheap = 0, covered_pricey = 0;
  for (const auto& iv : KleinbergBursts(s, cheap)) {
    covered_cheap += static_cast<size_t>(iv.end - iv.begin + 1);
  }
  for (const auto& iv : KleinbergBursts(s, pricey)) {
    covered_pricey += static_cast<size_t>(iv.end - iv.begin + 1);
  }
  EXPECT_GE(covered_cheap, covered_pricey);
}

TEST(KleinbergTest, DegenerateStreams) {
  EXPECT_TRUE(KleinbergBursts(SingleEventStream{}, {}).empty());
  EXPECT_TRUE(KleinbergBursts(SingleEventStream({5}), {}).empty());
  EXPECT_TRUE(KleinbergStates(SingleEventStream({5, 5}), {}).size() == 1);
}

TEST(KleinbergTest, StatesAlignWithGaps) {
  auto s = StormStream();
  auto states = KleinbergStates(s, KleinbergOptions{});
  EXPECT_EQ(states.size(), s.size() - 1);
}

// --- MACD ---------------------------------------------------------------

TEST(MacdTest, SeriesCoversSupportAndCounts) {
  auto s = StormStream();
  MacdOptions o;
  o.bucket_width = 100;
  auto series = MacdSeries(s, o);
  ASSERT_EQ(series.size(), 100u);  // support [0, 10000) at width 100
  double total = 0.0;
  for (const auto& p : series) total += p.count;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(s.size()));
}

TEST(MacdTest, ScoreRisesAtTheStorm) {
  auto s = StormStream();
  MacdOptions o;
  o.bucket_width = 100;
  auto series = MacdSeries(s, o);
  double peak = 0.0;
  Timestamp peak_at = 0;
  for (const auto& p : series) {
    if (p.score > peak) {
      peak = p.score;
      peak_at = p.bucket_start;
    }
  }
  EXPECT_GE(peak_at, 4900);
  EXPECT_LE(peak_at, 5400);
  EXPECT_GT(peak, 1.0);
}

TEST(MacdTest, BurstsMatchThresholdedSeries) {
  auto s = StormStream();
  MacdOptions o;
  o.bucket_width = 100;
  const double threshold = 2.0;
  auto bursts = MacdBursts(s, o, threshold);
  for (const auto& p : MacdSeries(s, o)) {
    EXPECT_EQ(Covers(bursts, p.bucket_start), p.score >= threshold)
        << "bucket " << p.bucket_start;
  }
}

TEST(MacdTest, SteadyStreamScoresNearZero) {
  auto s = SteadyStream(10, 500);
  MacdOptions o;
  o.bucket_width = 100;  // exactly 10 per bucket
  for (const auto& p : MacdSeries(s, o)) {
    EXPECT_NEAR(p.score, 0.0, 1e-9);
  }
}

TEST(MacdTest, EmptyStream) {
  EXPECT_TRUE(MacdSeries(SingleEventStream{}, {}).empty());
  EXPECT_TRUE(MacdBursts(SingleEventStream{}, {}, 0.5).empty());
}

// --- Window bursts --------------------------------------------------------

TEST(WindowBurstTest, BucketCountsHelper) {
  SingleEventStream s({100, 150, 199, 200, 350});
  Timestamp origin = 0;
  auto counts = BucketCounts(s, 100, &origin);
  EXPECT_EQ(origin, 100);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_DOUBLE_EQ(counts[0], 3.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
}

TEST(WindowBurstTest, DetectsTheStorm) {
  auto s = StormStream();
  WindowBurstOptions o;
  o.bucket_width = 100;
  o.scales = 4;
  o.k_sigma = 3.0;
  auto bursts = WindowBursts(s, o);
  ASSERT_FALSE(bursts.empty());
  EXPECT_TRUE(Covers(bursts, 5100));
  EXPECT_FALSE(Covers(bursts, 1000));
}

TEST(WindowBurstTest, SteadyStreamClean) {
  auto s = SteadyStream(10, 1000);
  WindowBurstOptions o;
  o.bucket_width = 100;
  EXPECT_TRUE(WindowBursts(s, o).empty());
}

TEST(WindowBurstTest, VolumeNotAcceleration) {
  // High-but-stable plateau: elevated-volume detectors flag it even
  // though the paper's burstiness is ~0 inside the plateau (the
  // definitional difference Section II calls out).
  std::vector<Timestamp> times;
  for (Timestamp t = 0; t < 4000; t += 40) times.push_back(t);
  for (Timestamp t = 4000; t < 6000; t += 2) times.push_back(t);
  for (Timestamp t = 6000; t < 10000; t += 40) times.push_back(t);
  SingleEventStream s(std::move(times));

  WindowBurstOptions o;
  o.bucket_width = 100;
  o.scales = 3;
  // The plateau spans 20% of the stream, inflating the global stddev;
  // a softer bound keeps the detector sensitive to it.
  o.k_sigma = 1.5;
  auto flagged = WindowBursts(s, o);
  EXPECT_TRUE(Covers(flagged, 5000));  // mid-plateau: flagged

  // Exact burstiness mid-plateau with a window well inside it is ~0.
  EXPECT_NEAR(static_cast<double>(s.BurstinessAt(5500, 500)), 0.0, 15.0);
  // ... but is strongly positive at the plateau's onset.
  EXPECT_GT(s.BurstinessAt(4450, 450), 100);
}

TEST(WindowBurstTest, EmptyStream) {
  EXPECT_TRUE(WindowBursts(SingleEventStream{}, {}).empty());
}

}  // namespace
}  // namespace bursthist
