// Unit tests for the BURSTY TIME query machinery (Section V).

#include <gtest/gtest.h>

#include <vector>

#include "core/burst_queries.h"
#include "core/exact_store.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "stream/event_stream.h"
#include "util/random.h"

namespace bursthist {
namespace {

// Brute-force reference: evaluate the model at every timestamp.
template <typename Model>
std::vector<TimeInterval> BruteForceBurstyTimes(const Model& model,
                                                double theta, Timestamp tau,
                                                Timestamp lo, Timestamp hi) {
  std::vector<TimeInterval> out;
  for (Timestamp t = lo; t <= hi; ++t) {
    if (model.EstimateBurstiness(t, tau) >= theta) {
      internal::PushInterval(t, t, &out);
    }
  }
  return out;
}

SingleEventStream RandomStream(size_t n, Rng* rng, Timestamp max_gap = 6) {
  std::vector<Timestamp> times;
  Timestamp t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng->NextBelow(max_gap + 1));
    times.push_back(t);
  }
  return SingleEventStream(std::move(times));
}

TEST(BurstQueriesTest, PushIntervalMergesAdjacent) {
  std::vector<TimeInterval> out;
  internal::PushInterval(1, 3, &out);
  internal::PushInterval(4, 6, &out);  // adjacent -> merged
  internal::PushInterval(9, 9, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (TimeInterval{1, 6}));
  EXPECT_EQ(out[1], (TimeInterval{9, 9}));
}

TEST(BurstQueriesTest, BurstinessBreakpointsShifted) {
  auto bps = internal::BurstinessBreakpoints({10, 20}, 5);
  EXPECT_EQ(bps, (std::vector<Timestamp>{10, 15, 20, 25, 30}));
}

TEST(BurstQueriesTest, CoversHelper) {
  std::vector<TimeInterval> ivs = {{1, 3}, {8, 8}};
  EXPECT_TRUE(Covers(ivs, 2));
  EXPECT_TRUE(Covers(ivs, 8));
  EXPECT_FALSE(Covers(ivs, 5));
  EXPECT_FALSE(Covers(ivs, 0));
}

TEST(BurstQueriesTest, ExactStoreMatchesBruteForce) {
  Rng rng(41);
  ExactBurstStore store(1);
  auto s = RandomStream(200, &rng);
  for (Timestamp t : s.times()) store.Append(0, t);

  const Timestamp tau = 12;
  const Timestamp hi = s.times().back() + 2 * tau + 3;
  for (double theta : {1.0, 3.0, 8.0}) {
    auto fast = store.BurstyTimes(0, theta, tau);
    ExactEventModel model(&store.stream(0));
    auto brute = BruteForceBurstyTimes(model, theta, tau, 0, hi);
    EXPECT_EQ(fast, brute) << "theta=" << theta;
  }
}

TEST(BurstQueriesTest, Pbe1MatchesBruteForce) {
  Rng rng(43);
  auto s = RandomStream(600, &rng);
  Pbe1Options opt;
  opt.buffer_points = 60;
  opt.budget_points = 12;
  Pbe1 pbe(opt);
  for (Timestamp t : s.times()) pbe.Append(t);
  pbe.Finalize();

  const Timestamp tau = 15;
  const Timestamp hi = s.times().back() + 2 * tau + 3;
  for (double theta : {2.0, 6.0}) {
    auto fast = BurstyTimes(pbe, theta, tau);
    auto brute = BruteForceBurstyTimes(pbe, theta, tau, 0, hi);
    EXPECT_EQ(fast, brute) << "theta=" << theta;
  }
}

TEST(BurstQueriesTest, Pbe2MatchesBruteForce) {
  Rng rng(47);
  auto s = RandomStream(600, &rng);
  Pbe2Options opt;
  opt.gamma = 3.0;
  Pbe2 pbe(opt);
  for (Timestamp t : s.times()) pbe.Append(t);
  pbe.Finalize();

  const Timestamp tau = 10;
  const Timestamp hi = s.times().back() + 2 * tau + 3;
  for (double theta : {2.0, 10.0}) {
    auto fast = BurstyTimes(pbe, theta, tau);
    auto brute = BruteForceBurstyTimes(pbe, theta, tau, 0, hi);
    EXPECT_EQ(fast, brute) << "theta=" << theta;
  }
}

TEST(BurstQueriesTest, EmptyModelReportsNothing) {
  Pbe1 pbe;
  pbe.Finalize();
  EXPECT_TRUE(BurstyTimes(pbe, 1.0, 5).empty());
}

TEST(BurstQueriesTest, DetectsInjectedBurstWindow) {
  // One strong burst: the reported interval must cover its ramp.
  ExactBurstStore store(1);
  for (Timestamp t = 0; t < 200; t += 10) store.Append(0, t);
  for (Timestamp t = 200; t < 240; ++t) {
    store.Append(0, t);
    store.Append(0, t);
  }
  for (Timestamp t = 240; t < 400; t += 10) store.Append(0, t);

  auto intervals = store.BurstyTimes(0, /*theta=*/20.0, /*tau=*/40);
  ASSERT_FALSE(intervals.empty());
  // Peak acceleration is around t=239 (rate 2/s for 40s vs 0.1/s).
  EXPECT_TRUE(Covers(intervals, 239));
  // Quiet history is not reported.
  EXPECT_FALSE(Covers(intervals, 100));
}

}  // namespace
}  // namespace bursthist
