// Replication subsystem tests: WAL shipping, follower convergence,
// reconnect/resume, snapshot bootstrap, chaos-injected link abuse,
// and failover by promotion.
//
// The convergence oracle is byte identity: a follower that has
// applied the leader's full record sequence, in order, against the
// same options must serialize to exactly the leader's bytes — any
// divergence (lost record, duplicate, reordering, corrupted apply)
// shows up as a diff, with no tolerance to hide in.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/burst_engine.h"
#include "differential/diff_harness.h"
#include "recovery/durable_engine.h"
#include "replication/flaky_transport.h"
#include "replication/repl_wire.h"
#include "replication/replica_engine.h"
#include "replication/transport.h"
#include "replication/wal_shipper.h"
#include "test_util.h"
#include "util/env.h"

namespace bursthist {
namespace {

using repl::FlakyTransport;
using repl::ReplicaEngine;
using repl::ReplicaOptions;
using repl::ReplTransport;
using repl::WalShipper;
using repl::WalShipperOptions;
using test::StreamFamily;
using test::StreamSpec;

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = Env::Default(); }

  void TearDown() override {
    for (const std::string& dir : dirs_) {
      auto names = env_->ListDir(dir);
      if (names.ok()) {
        for (const auto& n : names.value()) {
          (void)env_->DeleteFile(dir + "/" + n);
        }
      }
      ::rmdir(dir.c_str());
    }
  }

  std::string NewDir(const std::string& tag) {
    std::string dir = testing::TempDir() + "/bursthist_repl_" + tag + "_" +
                      std::to_string(reinterpret_cast<uintptr_t>(this)) + "_" +
                      std::to_string(dirs_.size());
    EXPECT_TRUE(env_->CreateDirIfMissing(dir).ok());
    dirs_.push_back(dir);
    return dir;
  }

  Env* env_ = nullptr;
  std::vector<std::string> dirs_;
};

BurstEngineOptions<Pbe1> SmallOptions(Timestamp lateness = 0) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 16;
  o.grid.depth = 2;
  o.grid.width = 8;
  o.cell.buffer_points = 32;
  o.cell.budget_points = 8;
  o.heavy_hitter_capacity = 4;
  o.max_lateness = lateness;
  return o;
}

// Small segments so workloads cross rotations (and checkpoints can
// prune shipped history out from under a lagging follower).
DurabilityOptions SmallDurability() {
  DurabilityOptions d;
  d.wal_segment_bytes = 16 << 10;
  return d;
}

ReplicaOptions FastReplicaOptions(uint16_t port) {
  ReplicaOptions r;
  r.leader_port = port;
  r.recv_timeout_ms = 10;
  r.dead_after_ms = 1000;
  r.backoff_initial_ms = 2;
  r.backoff_max_ms = 40;
  return r;
}

WalShipperOptions FastShipperOptions() {
  WalShipperOptions s;
  s.poll_interval_ms = 2;
  s.heartbeat_interval_ms = 25;
  return s;
}

std::vector<uint8_t> EngineBytes(const BurstEngine<Pbe1>& engine) {
  BinaryWriter w;
  engine.FinalizedClone().Serialize(&w);
  return w.bytes();
}

// Leader-side state callback: reads position + watermark under the
// same mutex the appends hold.
WalShipper::LeaderStateFn StateOf(DurableBurstEngine<Pbe1>* leader,
                                  std::mutex* mu) {
  return [leader, mu] {
    std::lock_guard<std::mutex> lock(*mu);
    return repl::LeaderStatus{leader->wal_position(),
                              leader->engine().Watermark()};
  };
}

bool WaitUntil(const std::function<bool()>& done, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

// Generous wall-clock cap: these tests run under TSan in CI.
constexpr int kConvergeMs = 30000;

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

TEST(ReplWireTest, FramesRoundTripThroughTornFeeds) {
  repl::HelloFrame hello;
  hello.have_state = true;
  hello.resume = WalPosition{7, 1234};
  repl::RecordFrame rec;
  rec.end = WalPosition{9, 99};
  rec.e = 3;
  rec.t = -5;
  rec.count = 12;
  repl::HeartbeatFrame hb;
  hb.durable_end = WalPosition{2, 10};
  hb.watermark = 77;
  repl::SnapshotFrame snap;
  snap.generation = 4;
  snap.covered = WalPosition{5, 0};
  snap.blob = {1, 2, 3, 0xff, 0};
  repl::ErrorFrame err;
  err.code = 14;
  err.message = "go away";

  std::vector<uint8_t> stream;
  for (const auto& wire :
       {repl::EncodeHello(hello), repl::EncodeRecord(rec),
        repl::EncodeHeartbeat(hb), repl::EncodeSnapshot(snap),
        repl::EncodeError(err)}) {
    stream.insert(stream.end(), wire.begin(), wire.end());
  }

  // Feed one byte at a time: every frame must still come out whole.
  repl::FrameReader reader;
  std::vector<repl::ReplFrame> frames;
  for (uint8_t b : stream) {
    reader.Feed(&b, 1);
    repl::ReplFrame f;
    for (;;) {
      auto next = reader.Next(&f);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next.value()) break;
      frames.push_back(f);
    }
  }
  ASSERT_EQ(frames.size(), 5u);

  repl::HelloFrame hello2;
  ASSERT_TRUE(repl::DecodeHello(frames[0].payload, &hello2).ok());
  EXPECT_TRUE(hello2.have_state);
  EXPECT_EQ(hello2.resume, (WalPosition{7, 1234}));
  repl::RecordFrame rec2;
  ASSERT_TRUE(repl::DecodeRecord(frames[1].payload, &rec2).ok());
  EXPECT_EQ(rec2.end, (WalPosition{9, 99}));
  EXPECT_EQ(rec2.e, 3u);
  EXPECT_EQ(rec2.t, -5);
  EXPECT_EQ(rec2.count, 12u);
  repl::HeartbeatFrame hb2;
  ASSERT_TRUE(repl::DecodeHeartbeat(frames[2].payload, &hb2).ok());
  EXPECT_EQ(hb2.watermark, 77);
  repl::SnapshotFrame snap2;
  ASSERT_TRUE(repl::DecodeSnapshot(frames[3].payload, &snap2).ok());
  EXPECT_EQ(snap2.blob, snap.blob);
  EXPECT_EQ(snap2.covered, (WalPosition{5, 0}));
  repl::ErrorFrame err2;
  ASSERT_TRUE(repl::DecodeError(frames[4].payload, &err2).ok());
  EXPECT_EQ(err2.code, 14u);
  EXPECT_EQ(err2.message, "go away");
}

TEST(ReplWireTest, EveryFlippedBitIsRejected) {
  repl::RecordFrame rec;
  rec.end = WalPosition{1, 42};
  rec.e = 1;
  rec.t = 100;
  const std::vector<uint8_t> wire = repl::EncodeRecord(rec);
  for (size_t i = 0; i < wire.size(); ++i) {
    std::vector<uint8_t> bad = wire;
    bad[i] ^= 0x10;
    repl::FrameReader reader;
    reader.Feed(bad.data(), bad.size());
    repl::ReplFrame f;
    auto next = reader.Next(&f);
    if (next.ok() && next.value()) {
      // Only a length-field flip can "succeed" at the envelope level
      // by asking for more bytes — but then Next returns false, not a
      // frame. A returned frame with a flipped byte is a CRC escape.
      FAIL() << "flip at byte " << i << " produced a verified frame";
    }
  }
}

// ---------------------------------------------------------------------------
// Shipping + convergence
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, ShipAndConverge) {
  const std::string leader_dir = NewDir("leader");
  const std::string follower_dir = NewDir("follower");
  auto leader = DurableBurstEngine<Pbe1>::Open(env_, leader_dir,
                                               SmallOptions(),
                                               SmallDurability());
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  std::mutex mu;

  WalShipper shipper;
  ASSERT_TRUE(shipper
                  .Start(env_, leader_dir, FastShipperOptions(),
                         StateOf(leader.value().get(), &mu))
                  .ok());

  auto replica = ReplicaEngine<Pbe1>::Open(env_, follower_dir, SmallOptions(),
                                           SmallDurability(),
                                           FastReplicaOptions(shipper.port()));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE(replica.value()->Start().ok());

  const StreamSpec spec{StreamFamily::kUniform, 16, 1200, test::CaseSeed(1),
                        0};
  const auto arrivals = test::GenerateArrivals(spec);
  for (const auto& r : arrivals) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(leader.value()->Append(r.id, r.time).ok());
  }
  WalPosition end;
  {
    std::lock_guard<std::mutex> lock(mu);
    end = leader.value()->wal_position();
  }

  auto* rep = replica.value().get();
  ASSERT_TRUE(WaitUntil([rep, end] { return rep->applied_position() == end; },
                        kConvergeMs))
      << "applied " << rep->applied_records() << "/" << arrivals.size()
      << " last_error=" << rep->last_error().ToString();
  EXPECT_EQ(rep->applied_records(), arrivals.size());
  EXPECT_TRUE(rep->last_error().ok()) << rep->last_error().ToString();
  EXPECT_EQ(EngineBytes(leader.value()->engine()),
            EngineBytes(rep->durable()->engine()));

  // Heartbeats carry the leader watermark; with everything applied
  // the reported lag must settle to zero.
  EXPECT_TRUE(WaitUntil([rep] { return rep->connected() && rep->lag() == 0; },
                        kConvergeMs));

  rep->Stop();
  shipper.Stop();
}

TEST_F(ReplicationTest, BlankFollowerBootstrapsFromSnapshot) {
  const std::string leader_dir = NewDir("leader");
  const std::string follower_dir = NewDir("follower");
  auto leader = DurableBurstEngine<Pbe1>::Open(env_, leader_dir,
                                               SmallOptions(),
                                               SmallDurability());
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  std::mutex mu;

  const StreamSpec spec{StreamFamily::kBursty, 16, 1000, test::CaseSeed(2), 0};
  const auto arrivals = test::GenerateArrivals(spec);
  const size_t half = arrivals.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(
        leader.value()->Append(arrivals[i].id, arrivals[i].time)
            .ok());
  }
  // Checkpoint prunes the covered WAL: history before it now exists
  // only as the snapshot, so a blank follower MUST bootstrap.
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(leader.value()->Checkpoint().ok());
  }
  for (size_t i = half; i < arrivals.size(); ++i) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(
        leader.value()->Append(arrivals[i].id, arrivals[i].time)
            .ok());
  }

  WalShipper shipper;
  ASSERT_TRUE(shipper
                  .Start(env_, leader_dir, FastShipperOptions(),
                         StateOf(leader.value().get(), &mu))
                  .ok());
  auto replica = ReplicaEngine<Pbe1>::Open(env_, follower_dir, SmallOptions(),
                                           SmallDurability(),
                                           FastReplicaOptions(shipper.port()));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE(replica.value()->Start().ok());

  WalPosition end;
  {
    std::lock_guard<std::mutex> lock(mu);
    end = leader.value()->wal_position();
  }
  auto* rep = replica.value().get();
  ASSERT_TRUE(WaitUntil([rep, end] { return rep->applied_position() == end; },
                        kConvergeMs))
      << "applied " << rep->applied_records()
      << " last_error=" << rep->last_error().ToString();
  // Records up to the checkpoint arrived inside the snapshot blob,
  // not one by one.
  EXPECT_LE(rep->applied_records(), arrivals.size() - half);
  EXPECT_EQ(EngineBytes(leader.value()->engine()),
            EngineBytes(rep->durable()->engine()));

  rep->Stop();
  shipper.Stop();
}

TEST_F(ReplicationTest, RestartResumesWithoutDuplicates) {
  const std::string leader_dir = NewDir("leader");
  const std::string follower_dir = NewDir("follower");
  auto leader = DurableBurstEngine<Pbe1>::Open(env_, leader_dir,
                                               SmallOptions(),
                                               SmallDurability());
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  std::mutex mu;
  WalShipper shipper;
  ASSERT_TRUE(shipper
                  .Start(env_, leader_dir, FastShipperOptions(),
                         StateOf(leader.value().get(), &mu))
                  .ok());

  const StreamSpec spec{StreamFamily::kUniform, 16, 800, test::CaseSeed(3), 0};
  const auto arrivals = test::GenerateArrivals(spec);
  const size_t half = arrivals.size() / 2;

  {
    auto replica = ReplicaEngine<Pbe1>::Open(
        env_, follower_dir, SmallOptions(), SmallDurability(),
        FastReplicaOptions(shipper.port()));
    ASSERT_TRUE(replica.ok()) << replica.status().ToString();
    ASSERT_TRUE(replica.value()->Start().ok());
    for (size_t i = 0; i < half; ++i) {
      std::lock_guard<std::mutex> lock(mu);
      ASSERT_TRUE(leader.value()
                      ->Append(arrivals[i].id, arrivals[i].time)
                      .ok());
    }
    WalPosition end;
    {
      std::lock_guard<std::mutex> lock(mu);
      end = leader.value()->wal_position();
    }
    auto* rep = replica.value().get();
    ASSERT_TRUE(WaitUntil(
        [rep, end] { return rep->applied_position() == end; }, kConvergeMs));
    // Destructor stops the apply thread: an unclean-ish mid-stream
    // exit as far as the leader is concerned.
  }

  for (size_t i = half; i < arrivals.size(); ++i) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(leader.value()
                    ->Append(arrivals[i].id, arrivals[i].time)
                    .ok());
  }

  auto replica = ReplicaEngine<Pbe1>::Open(env_, follower_dir, SmallOptions(),
                                           SmallDurability(),
                                           FastReplicaOptions(shipper.port()));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE(replica.value()->Start().ok());
  WalPosition end;
  {
    std::lock_guard<std::mutex> lock(mu);
    end = leader.value()->wal_position();
  }
  auto* rep = replica.value().get();
  ASSERT_TRUE(WaitUntil([rep, end] { return rep->applied_position() == end; },
                        kConvergeMs))
      << "last_error=" << rep->last_error().ToString();
  // The reopened replica presented its durable position and received
  // ONLY the second half — exactly-once across the restart.
  EXPECT_EQ(rep->applied_records(), arrivals.size() - half);
  EXPECT_EQ(EngineBytes(leader.value()->engine()),
            EngineBytes(rep->durable()->engine()));

  rep->Stop();
  shipper.Stop();
}

TEST_F(ReplicationTest, LocalHistoryRefusesToFollow) {
  const std::string dir = NewDir("local");
  {
    auto durable = DurableBurstEngine<Pbe1>::Open(env_, dir, SmallOptions(),
                                                  SmallDurability());
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE(durable.value()->Append(1, 10).ok());
    ASSERT_TRUE(durable.value()->Sync().ok());
  }
  auto replica = ReplicaEngine<Pbe1>::Open(env_, dir, SmallOptions(),
                                           SmallDurability(),
                                           FastReplicaOptions(1));
  ASSERT_FALSE(replica.ok());
  EXPECT_EQ(replica.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Chaos: injected disconnects, torn frames, bit flips — per family
// ---------------------------------------------------------------------------

class ReplicationChaosTest
    : public ReplicationTest,
      public ::testing::WithParamInterface<StreamFamily> {};

TEST_P(ReplicationChaosTest, ConvergesThroughLinkAbuse) {
  const StreamFamily family = GetParam();
  const Timestamp lateness = family == StreamFamily::kOutOfOrder ? 6 : 0;
  const std::string leader_dir = NewDir("leader");
  const std::string follower_dir = NewDir("follower");
  auto leader = DurableBurstEngine<Pbe1>::Open(env_, leader_dir,
                                               SmallOptions(lateness),
                                               SmallDurability());
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  std::mutex mu;
  WalShipper shipper;
  ASSERT_TRUE(shipper
                  .Start(env_, leader_dir, FastShipperOptions(),
                         StateOf(leader.value().get(), &mu))
                  .ok());

  FlakyTransport flaky(ReplTransport::Default());
  flaky.FailNextConnects(1);  // first dial refused: backoff from breath one
  ReplicaOptions ropts = FastReplicaOptions(shipper.port());
  ropts.transport = &flaky;
  auto replica = ReplicaEngine<Pbe1>::Open(env_, follower_dir,
                                           SmallOptions(lateness),
                                           SmallDurability(), ropts);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE(replica.value()->Start().ok());
  auto* rep = replica.value().get();

  StreamSpec spec;
  spec.family = family;
  spec.universe = 16;
  spec.n = 1500;
  spec.seed = test::CaseSeed(10 + static_cast<uint64_t>(family));
  spec.max_lateness = lateness;
  const auto arrivals = test::GenerateArrivals(spec);

  // Rotate through the abuse menu as the stream flows: a hard cut
  // mid-frame, a flipped bit (CRC rejection), a refused reconnect,
  // and a leader checkpoint that prunes shipped history away.
  size_t abuse = 0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ASSERT_TRUE(leader.value()
                      ->Append(arrivals[i].id, arrivals[i].time)
                      .ok());
    }
    if (i % 200 == 199) {
      switch (abuse++ % 4) {
        case 0:
          flaky.CutRecvAt(flaky.bytes_delivered() + 64 + i);
          break;
        case 1:
          flaky.FlipBitAt(flaky.bytes_delivered() + 32 + i,
                          static_cast<int>(i) & 7);
          break;
        case 2:
          flaky.FailNextConnects(1);
          break;
        case 3: {
          std::lock_guard<std::mutex> lock(mu);
          ASSERT_TRUE(leader.value()->Checkpoint().ok());
          break;
        }
      }
    }
  }
  // Let armed faults fire while the tail drains, then clear them so
  // convergence is reachable.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  flaky.Disarm();

  WalPosition end;
  {
    std::lock_guard<std::mutex> lock(mu);
    end = leader.value()->wal_position();
  }
  ASSERT_TRUE(WaitUntil([rep, end] { return rep->applied_position() == end; },
                        kConvergeMs))
      << "family=" << test::FamilyName(family) << " applied "
      << rep->applied_records() << " reconnects=" << rep->reconnects()
      << " rejected=" << rep->frames_rejected()
      << " last_error=" << rep->last_error().ToString();

  EXPECT_EQ(EngineBytes(leader.value()->engine()),
            EngineBytes(rep->durable()->engine()))
      << "family=" << test::FamilyName(family)
      << " spec=" << spec.ToString();
  // The link was actually abused: at least the refused dials forced
  // reconnects.
  EXPECT_GE(rep->reconnects(), 1u) << test::FamilyName(family);

  rep->Stop();
  shipper.Stop();
}

INSTANTIATE_TEST_SUITE_P(Families, ReplicationChaosTest,
                         ::testing::Values(StreamFamily::kUniform,
                                           StreamFamily::kBursty,
                                           StreamFamily::kOutOfOrder),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case StreamFamily::kUniform:
                               return "Uniform";
                             case StreamFamily::kBursty:
                               return "Bursty";
                             default:
                               return "OutOfOrder";
                           }
                         });

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, PromotedFollowerMatchesNeverCrashedLeader) {
  const std::string leader_dir = NewDir("leader");
  const std::string follower_dir = NewDir("follower");
  auto leader = DurableBurstEngine<Pbe1>::Open(env_, leader_dir,
                                               SmallOptions(),
                                               SmallDurability());
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  std::mutex mu;
  WalShipper shipper;
  ASSERT_TRUE(shipper
                  .Start(env_, leader_dir, FastShipperOptions(),
                         StateOf(leader.value().get(), &mu))
                  .ok());
  auto replica = ReplicaEngine<Pbe1>::Open(env_, follower_dir, SmallOptions(),
                                           SmallDurability(),
                                           FastReplicaOptions(shipper.port()));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE(replica.value()->Start().ok());
  auto* rep = replica.value().get();

  const StreamSpec spec{StreamFamily::kBursty, 16, 1000, test::CaseSeed(4), 0};
  const auto arrivals = test::GenerateArrivals(spec);
  const size_t half = arrivals.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(leader.value()
                    ->Append(arrivals[i].id, arrivals[i].time)
                    .ok());
  }
  WalPosition end;
  {
    std::lock_guard<std::mutex> lock(mu);
    end = leader.value()->wal_position();
  }
  ASSERT_TRUE(WaitUntil([rep, end] { return rep->applied_position() == end; },
                        kConvergeMs));

  // Leader dies mid-deployment: shipper gone, process gone.
  shipper.Stop();
  leader.value().reset();

  EXPECT_TRUE(rep->follower());
  ASSERT_TRUE(rep->Promote().ok());
  EXPECT_FALSE(rep->follower());
  // Promoting twice is a refusal, not a no-op.
  EXPECT_EQ(rep->Promote().code(), StatusCode::kFailedPrecondition);

  // The promoted leader takes the writes the old leader never saw.
  for (size_t i = half; i < arrivals.size(); ++i) {
    std::lock_guard<std::mutex> lock(*rep->write_mu());
    ASSERT_TRUE(rep->durable()
                    ->Append(arrivals[i].id, arrivals[i].time)
                    .ok());
  }

  // Reference: a leader that never crashed, fed the same stream.
  BurstEngine<Pbe1> reference((SmallOptions()));
  for (const auto& r : arrivals) {
    ASSERT_TRUE(reference.Append(r.id, r.time).ok());
  }
  const BurstEngine<Pbe1> want = reference.FinalizedClone();
  const BurstEngine<Pbe1> got = rep->durable()->engine().FinalizedClone();

  // Byte identity implies identical answers; spot-check every query
  // type anyway so a serializer quirk can't mask a semantic drift.
  EXPECT_EQ(EngineBytes(reference), EngineBytes(rep->durable()->engine()));
  const Timestamp wm = want.Watermark();
  const Timestamp tau = 8;
  for (EventId e = 0; e < 16; ++e) {
    EXPECT_EQ(got.PointQuery(e, wm, tau), want.PointQuery(e, wm, tau)) << e;
    EXPECT_EQ(got.BurstyTimeQuery(e, 2.0, tau),
              want.BurstyTimeQuery(e, 2.0, tau))
        << e;
  }
  EXPECT_EQ(got.BurstyEventQuery(wm, 2.0, tau),
            want.BurstyEventQuery(wm, 2.0, tau));
  EXPECT_EQ(got.TopKBurstyEvents(wm, 4, tau), want.TopKBurstyEvents(wm, 4, tau));

  // The promoted directory reopens as a normal durable leader.
  rep->Stop();
}

// Cascading chain: leader → F1 → F2. F1's WAL holds kReplicated
// frames; its shipper must normalize them to wire records stamped
// with F1's OWN log positions, and F2 must still converge to the
// leader's bytes.
TEST_F(ReplicationTest, CascadedFollowerConverges) {
  const std::string leader_dir = NewDir("leader");
  const std::string f1_dir = NewDir("f1");
  const std::string f2_dir = NewDir("f2");
  auto leader = DurableBurstEngine<Pbe1>::Open(env_, leader_dir,
                                               SmallOptions(),
                                               SmallDurability());
  ASSERT_TRUE(leader.ok());
  std::mutex mu;
  WalShipper shipper;
  ASSERT_TRUE(shipper
                  .Start(env_, leader_dir, FastShipperOptions(),
                         StateOf(leader.value().get(), &mu))
                  .ok());

  auto f1 = ReplicaEngine<Pbe1>::Open(env_, f1_dir, SmallOptions(),
                                      SmallDurability(),
                                      FastReplicaOptions(shipper.port()));
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f1.value()->Start().ok());
  auto* rep1 = f1.value().get();

  WalShipper mid_shipper;
  ASSERT_TRUE(mid_shipper
                  .Start(env_, f1_dir, FastShipperOptions(),
                         StateOf(rep1->durable(), rep1->write_mu()))
                  .ok());
  auto f2 = ReplicaEngine<Pbe1>::Open(env_, f2_dir, SmallOptions(),
                                      SmallDurability(),
                                      FastReplicaOptions(mid_shipper.port()));
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(f2.value()->Start().ok());
  auto* rep2 = f2.value().get();

  const StreamSpec spec{StreamFamily::kUniform, 16, 600, test::CaseSeed(5), 0};
  const auto arrivals = test::GenerateArrivals(spec);
  for (const auto& r : arrivals) {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(leader.value()->Append(r.id, r.time).ok());
  }
  WalPosition end;
  {
    std::lock_guard<std::mutex> lock(mu);
    end = leader.value()->wal_position();
  }
  ASSERT_TRUE(WaitUntil(
      [rep1, end] { return rep1->applied_position() == end; }, kConvergeMs))
      << rep1->last_error().ToString();
  // F2 is converged when it has applied everything F1 has: their
  // engines serialize identically.
  ASSERT_TRUE(WaitUntil(
      [rep1, rep2] {
        return rep2->applied_records() == rep1->applied_records();
      },
      kConvergeMs))
      << "f2 applied " << rep2->applied_records() << "/"
      << rep1->applied_records()
      << " last_error=" << rep2->last_error().ToString();
  EXPECT_EQ(EngineBytes(leader.value()->engine()),
            EngineBytes(rep1->durable()->engine()));
  EXPECT_EQ(EngineBytes(leader.value()->engine()),
            EngineBytes(rep2->durable()->engine()));

  rep2->Stop();
  mid_shipper.Stop();
  rep1->Stop();
  shipper.Stop();
}

// Reconnect backoff jitter: deterministic in the seed, bounded in
// [base*(1-jitter), base], never below 1ms, and exactly base when
// disabled — the policy a fleet of orphaned followers relies on to
// avoid re-dialing a recovering leader in lockstep.
TEST(JitteredDelayTest, SeededDeterministicAndBounded) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int base : {2, 10, 50, 400, 2000}) {
    for (int i = 0; i < 64; ++i) {
      const int d1 = repl::JitteredDelay(base, 0.2, &a);
      const int d2 = repl::JitteredDelay(base, 0.2, &b);
      EXPECT_EQ(d1, d2) << "same seed must give the same delay sequence";
      EXPECT_GE(d1, std::max(1, static_cast<int>(base * 0.8) - 1));
      EXPECT_LE(d1, base);
      if (repl::JitteredDelay(base, 0.2, &c) != d1) diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << "different seeds should jitter differently";

  Rng r(7);
  EXPECT_EQ(repl::JitteredDelay(100, 0.0, &r), 100) << "jitter 0 = no jitter";
  EXPECT_EQ(repl::JitteredDelay(1, 0.9, &r), 1);
  EXPECT_EQ(repl::JitteredDelay(0, 0.9, &r), 1) << "delays clamp up to 1ms";
  for (int i = 0; i < 32; ++i) {
    const int d = repl::JitteredDelay(3, 5.0, &r);  // jitter clamped to 1
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 3);
  }
}

}  // namespace
}  // namespace bursthist
