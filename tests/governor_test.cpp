// Resource governor unit tests: status codes, the degradation ladder,
// per-structure memory accounting and degradation hooks, engine
// backpressure policies (with BENG v4 round-trips), admission control
// on the governed engine, and cold-curve spill/reload through the Env
// seam.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/burst_engine.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "governor/curve_cache.h"
#include "governor/governed_engine.h"
#include "governor/resource_governor.h"
#include "recovery/fault_env.h"
#include "test_util.h"
#include "util/env.h"
#include "util/status.h"

namespace bursthist {
namespace {

using test::kAccumTol;

TEST(StatusCodesTest, ResourceExhaustedAndUnavailable) {
  const Status exhausted = Status::ResourceExhausted("buffer full");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "ResourceExhausted: buffer full");
  const Status unavailable = Status::Unavailable("read-only");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: read-only");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

// ---------------------------------------------------------------------------
// ResourceGovernor ladder
// ---------------------------------------------------------------------------

TEST(ResourceGovernorTest, LadderWalk) {
  size_t usage = 100;
  int sheds = 0;
  ResourceGovernor gov(ResourceBudget{/*soft=*/150, /*hard=*/300});
  gov.RegisterComponent(
      "fake", [&] { return usage; }, [&](double) { ++sheds; });

  EXPECT_EQ(gov.Enforce(), DegradationLevel::kNormal);
  EXPECT_EQ(sheds, 0);
  EXPECT_EQ(gov.last_audit_bytes(), 100u);
  EXPECT_TRUE(gov.Admit().ok());

  // Soft crossed: exactly one shed round, still admitting.
  usage = 200;
  EXPECT_EQ(gov.Enforce(), DegradationLevel::kShedding);
  EXPECT_EQ(sheds, 1);
  EXPECT_TRUE(gov.Admit().ok());

  // Hard crossed but shedding recovers: rounds run until under hard.
  usage = 400;
  gov = ResourceGovernor(ResourceBudget{150, 300});
  gov.RegisterComponent(
      "fake", [&] { return usage; },
      [&](double) {
        ++sheds;
        usage = usage > 100 ? usage - 100 : usage;
      });
  sheds = 0;
  EXPECT_EQ(gov.Enforce(), DegradationLevel::kShedding);
  EXPECT_EQ(sheds, 1);
  EXPECT_EQ(gov.last_audit_bytes(), 300u);
  EXPECT_TRUE(gov.Admit().ok());
}

TEST(ResourceGovernorTest, SaturationRefusesAdmissionAndRecovers) {
  size_t usage = 1000;
  ResourceGovernor gov(ResourceBudget{150, 300});
  gov.RegisterComponent(
      "stuck", [&] { return usage; }, [&](double) { usage -= 50; });

  // 4 bounded rounds shed 200; 800 still exceeds hard -> saturated.
  EXPECT_EQ(gov.Enforce(), DegradationLevel::kSaturated);
  EXPECT_EQ(gov.shed_rounds(), 4u);
  const Status admit = gov.Admit();
  EXPECT_EQ(admit.code(), StatusCode::kResourceExhausted);

  // Load drops: the next audit re-admits.
  usage = 120;
  EXPECT_EQ(gov.Enforce(), DegradationLevel::kNormal);
  EXPECT_TRUE(gov.Admit().ok());

  const auto components = gov.AuditComponents();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].name, "stuck");
  EXPECT_EQ(components[0].bytes, 120u);
}

TEST(ResourceGovernorTest, ZeroBudgetsNeverTrip) {
  size_t usage = 1u << 30;
  ResourceGovernor gov(ResourceBudget{0, 0});
  gov.RegisterComponent(
      "huge", [&] { return usage; }, [](double) { FAIL() << "shed called"; });
  EXPECT_EQ(gov.Enforce(), DegradationLevel::kNormal);
  EXPECT_TRUE(gov.Admit().ok());
}

// ---------------------------------------------------------------------------
// Per-structure hooks
// ---------------------------------------------------------------------------

TEST(Pbe1GovernorHooksTest, CompactEarlyKeepsBoundAndMergeInvariant) {
  Pbe1Options opt;
  opt.buffer_points = 64;
  opt.budget_points = 8;
  Pbe1 pbe(opt);
  std::vector<std::pair<Timestamp, Count>> appended;
  Timestamp t = 0;
  for (int i = 0; i < 30; ++i) {
    t += 1 + (i % 3);
    pbe.Append(t, 1 + (i % 2));
    appended.push_back({t, static_cast<Count>(1 + (i % 2))});
  }
  const size_t before = pbe.MemoryUsage();
  EXPECT_GT(before, 0u);
  pbe.CompactEarly();
  // The last buffered point is retained, so a same-timestamp arrival
  // still merges instead of tripping the monotonicity assert.
  pbe.Append(t, 3);
  appended.back().second += 3;
  for (int i = 0; i < 10; ++i) {
    t += 2;
    pbe.Append(t, 1);
    appended.push_back({t, 1});
  }
  pbe.CompactEarly();
  pbe.Finalize();

  // Exact staircase for comparison.
  auto exact_cum = [&](Timestamp x) {
    double f = 0.0;
    for (const auto& [pt, c] : appended) {
      if (pt <= x) f += static_cast<double>(c);
    }
    return f;
  };
  const double bound = 4.0 * pbe.MaxBufferAreaError();
  for (Timestamp q = 0; q <= t + 4; ++q) {
    for (Timestamp tau : {Timestamp{1}, Timestamp{3}, Timestamp{7}}) {
      const double exact =
          exact_cum(q) - 2.0 * exact_cum(q - tau) + exact_cum(q - 2 * tau);
      const double est = pbe.EstimateBurstiness(q, tau);
      EXPECT_LE(std::abs(est - exact), bound + kAccumTol)
          << "t=" << q << " tau=" << tau;
    }
    // The compacted model must never overestimate F.
    EXPECT_LE(pbe.EstimateCumulative(q), exact_cum(q) + kAccumTol);
  }
}

TEST(Pbe2GovernorHooksTest, WidenGammaReportedHonoredAndSerialized) {
  Pbe2Options opt;
  opt.gamma = 1.0;
  Pbe2 pbe(opt);
  std::vector<std::pair<Timestamp, Count>> appended;
  Timestamp t = 0;
  for (int i = 0; i < 20; ++i) {
    t += 1 + (i % 2);
    pbe.Append(t, 1);
    appended.push_back({t, 1});
  }
  pbe.WidenGamma(4.0);  // mid-stream degradation
  for (int i = 0; i < 20; ++i) {
    t += 2;
    pbe.Append(t, 2);
    appended.push_back({t, 2});
  }
  pbe.Finalize();
  EXPECT_GE(pbe.MaxGamma(), 4.0);
  EXPECT_DOUBLE_EQ(pbe.PointErrorBound(), pbe.MaxGamma());

  auto exact_cum = [&](Timestamp x) {
    double f = 0.0;
    for (const auto& [pt, c] : appended) {
      if (pt <= x) f += static_cast<double>(c);
    }
    return f;
  };
  const double bound = 4.0 * pbe.MaxGamma();
  for (Timestamp q = 0; q <= t + 4; ++q) {
    const double exact =
        exact_cum(q) - 2.0 * exact_cum(q - 3) + exact_cum(q - 6);
    EXPECT_LE(std::abs(pbe.EstimateBurstiness(q, 3) - exact), bound + kAccumTol)
        << "t=" << q;
    EXPECT_LE(pbe.EstimateCumulative(q), exact_cum(q) + kAccumTol);
  }

  // The widened band must survive a round-trip (the restored estimator
  // keeps reporting the true, degraded guarantee).
  BinaryWriter w;
  pbe.Serialize(&w);
  Pbe2 restored(opt);
  BinaryReader r(w.bytes());
  ASSERT_TRUE(restored.Deserialize(&r).ok());
  EXPECT_DOUBLE_EQ(restored.MaxGamma(), pbe.MaxGamma());
}

TEST(MemoryUsageTest, CoversObjectAndGrowsWithState) {
  BurstEngineOptions<Pbe1> opt;
  opt.universe_size = 8;
  opt.grid.depth = 2;
  opt.grid.width = 8;
  opt.cell.buffer_points = 16;
  opt.cell.budget_points = 4;
  opt.heavy_hitter_capacity = 4;
  BurstEngine1 engine(opt);
  const size_t empty = engine.MemoryUsage();
  EXPECT_GT(empty, sizeof(BurstEngine1));
  for (Timestamp t = 0; t < 200; ++t) {
    ASSERT_TRUE(engine.Append(static_cast<EventId>(t % 8), t).ok());
  }
  EXPECT_GT(engine.MemoryUsage(), empty);
}

// ---------------------------------------------------------------------------
// Engine backpressure policies
// ---------------------------------------------------------------------------

BurstEngineOptions<Pbe1> BackpressureOptions(ReorderOverflowPolicy policy,
                                             size_t cap) {
  BurstEngineOptions<Pbe1> opt;
  opt.universe_size = 8;
  opt.grid.depth = 1;
  opt.grid.width = 8;
  opt.grid.identity_hash = true;
  opt.cell.buffer_points = 16;
  opt.cell.budget_points = 4;
  opt.max_lateness = 4;
  opt.max_reorder_events = cap;
  opt.overflow_policy = policy;
  return opt;
}

TEST(BackpressureTest, RejectPolicyRefusesAndRecoversOnFreshTraffic) {
  BurstEngine1 engine(BackpressureOptions(ReorderOverflowPolicy::kReject, 4));
  ASSERT_TRUE(engine.Append(0, 100).ok());
  ASSERT_TRUE(engine.Append(1, 99).ok());
  ASSERT_TRUE(engine.Append(2, 98).ok());
  ASSERT_TRUE(engine.Append(3, 97).ok());
  // Buffer at cap, watermark stalled at 100: a late record is refused
  // without side effects.
  const Status refused = engine.Append(4, 99);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.BufferedCount(), 4u);
  EXPECT_EQ(engine.TotalCount(), 0u);
  // A watermark-advancing record drains the ripe backlog and lands.
  ASSERT_TRUE(engine.Append(5, 105).ok());
  EXPECT_EQ(engine.TotalCount(), 4u);
  EXPECT_EQ(engine.BufferedCount(), 1u);
  EXPECT_EQ(engine.DroppedCount(), 0u);
  engine.Finalize();
  EXPECT_EQ(engine.TotalCount(), 5u);
}

TEST(BackpressureTest, DropOldestShedsMeasuredOccurrences) {
  BurstEngine1 engine(
      BackpressureOptions(ReorderOverflowPolicy::kDropOldest, 2));
  ASSERT_TRUE(engine.Append(0, 100).ok());
  ASSERT_TRUE(engine.Append(1, 99).ok());
  // Cap exceeded; the oldest buffered record (t=98, the new arrival
  // itself) is shed and counted.
  ASSERT_TRUE(engine.Append(2, 98).ok());
  EXPECT_EQ(engine.DroppedCount(), 1u);
  EXPECT_EQ(engine.BufferedCount(), 2u);
  EXPECT_EQ(engine.TotalCount(), 0u);
  engine.Finalize();
  // Accounting stays honest: ingested + dropped == accepted.
  EXPECT_EQ(engine.TotalCount() + engine.DroppedCount(), 3u);
}

TEST(BackpressureTest, ForceDrainBoundsMemoryWithoutDataLoss) {
  BurstEngine1 engine(
      BackpressureOptions(ReorderOverflowPolicy::kForceDrain, 2));
  ASSERT_TRUE(engine.Append(0, 100).ok());
  ASSERT_TRUE(engine.Append(1, 99).ok());
  ASSERT_TRUE(engine.Append(2, 98).ok());
  EXPECT_EQ(engine.ForcedDrains(), 1u);
  EXPECT_EQ(engine.DroppedCount(), 0u);
  EXPECT_EQ(engine.TotalCount(), 1u);    // t=98 force-drained
  EXPECT_EQ(engine.BufferedCount(), 2u);
  // The drained range is closed: arrivals older than the advanced
  // watermark window are ordinary late records now.
  EXPECT_EQ(engine.Append(3, 97).code(), StatusCode::kOutOfRange);
  engine.Finalize();
  EXPECT_EQ(engine.TotalCount(), 3u);  // nothing lost
}

TEST(BackpressureTest, V4RoundTripRestoresPolicyAndCounters) {
  BurstEngine1 engine(
      BackpressureOptions(ReorderOverflowPolicy::kDropOldest, 2));
  ASSERT_TRUE(engine.Append(0, 100).ok());
  ASSERT_TRUE(engine.Append(1, 99).ok());
  ASSERT_TRUE(engine.Append(2, 98).ok());  // drops one
  ASSERT_EQ(engine.DroppedCount(), 1u);
  BinaryWriter w;
  engine.Serialize(&w);

  // Restore into an engine constructed WITHOUT a cap: the v4 payload
  // carries the backpressure configuration and shed counters.
  BurstEngine1 restored(BackpressureOptions(ReorderOverflowPolicy::kReject, 0));
  BinaryReader r(w.bytes());
  ASSERT_TRUE(restored.Deserialize(&r).ok());
  EXPECT_EQ(restored.options().max_reorder_events, 2u);
  EXPECT_EQ(restored.options().overflow_policy,
            ReorderOverflowPolicy::kDropOldest);
  EXPECT_EQ(restored.DroppedCount(), 1u);
  EXPECT_EQ(restored.ForcedDrains(), 0u);
  BinaryWriter w2;
  restored.Serialize(&w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

// ---------------------------------------------------------------------------
// Governed engine
// ---------------------------------------------------------------------------

GovernedEngineOptions<Pbe2> SmallGovernedOptions() {
  GovernedEngineOptions<Pbe2> opt;
  opt.engine.universe_size = 4;
  opt.engine.grid.depth = 1;
  opt.engine.grid.width = 4;
  opt.engine.grid.identity_hash = true;
  opt.engine.cell.gamma = 1.0;
  opt.audit_every = 8;
  return opt;
}

TEST(GovernedEngineTest, SoftBudgetWidensReportedBound) {
  auto opt = SmallGovernedOptions();
  opt.budget.soft_bytes = 1;  // any usage crosses it: shed every audit
  GovernedBurstEngine<Pbe2> governed(opt);
  const double initial = governed.effective_bound().cell_error;
  for (Timestamp t = 0; t < 64; ++t) {
    ASSERT_TRUE(governed.Append(static_cast<EventId>(t % 4), t).ok());
  }
  EXPECT_EQ(governed.governor().level(), DegradationLevel::kShedding);
  EXPECT_GT(governed.governor().shed_rounds(), 0u);
  // Degradation is visible: the effective bound widened, and with an
  // identity-hashed leaf the whole bound is the 4 * cell_error term.
  const EffectiveErrorBound bound = governed.effective_bound();
  EXPECT_GT(bound.cell_error, initial);
  EXPECT_DOUBLE_EQ(bound.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(bound.point_bound, 4.0 * bound.cell_error);

  // Answers still honor the (widened) reported bound.
  const auto est = governed.PointQuery(0, 32, 4);
  EXPECT_GE(est.bound, 4.0 * bound.cell_error - kAccumTol);
  EXPECT_EQ(est.level, DegradationLevel::kShedding);
}

TEST(GovernedEngineTest, HardBudgetRefusesThenRecovers) {
  auto opt = SmallGovernedOptions();
  opt.budget.hard_bytes = 1u << 20;
  opt.audit_every = 1;
  GovernedBurstEngine<Pbe2> governed(opt);
  size_t pressure = 0;
  governed.governor_mutable()->RegisterComponent(
      "pressure", [&] { return pressure; }, [](double) {});
  for (Timestamp t = 0; t < 8; ++t) {
    ASSERT_TRUE(governed.Append(static_cast<EventId>(t % 4), t).ok());
  }
  // External pressure pushes past the hard budget; shedding cannot
  // reclaim it, so admission fails without aborting.
  pressure = 1u << 30;
  const Status refused = governed.Append(0, 8);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governed.governor().level(), DegradationLevel::kSaturated);
  // Pressure clears: the refused-append re-audit admits again.
  pressure = 0;
  EXPECT_TRUE(governed.Append(0, 8).ok());
}

// ---------------------------------------------------------------------------
// Cold-curve cache
// ---------------------------------------------------------------------------

class CurveCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    dir_ = testing::TempDir() + "/bursthist_curvecache_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    Clean();
    ASSERT_TRUE(env_->CreateDirIfMissing(dir_).ok());
  }
  void TearDown() override {
    Clean();
    ::rmdir(dir_.c_str());
  }
  void Clean() {
    auto names = env_->ListDir(dir_);
    if (!names.ok()) return;
    for (const auto& n : names.value()) (void)env_->DeleteFile(dir_ + "/" + n);
  }

  Env* env_ = nullptr;
  std::string dir_;
};

TEST_F(CurveCacheTest, SpillsColdCurvesAndReloadsTransparently) {
  PbeCurveCache<Pbe1>::Options opt;
  opt.env = env_;
  opt.dir = dir_;
  opt.max_resident = 2;
  opt.cell.buffer_points = 8;
  opt.cell.budget_points = 4;
  PbeCurveCache<Pbe1> cache(opt);
  ASSERT_TRUE(cache.Init().ok());
  for (EventId e = 0; e < 4; ++e) {
    for (Timestamp t = 0; t < 6; ++t) {
      ASSERT_TRUE(cache.Append(e, t, e + 1).ok());
    }
  }
  ASSERT_EQ(cache.resident(), 4u);
  ASSERT_TRUE(cache.ShedCold().ok());
  EXPECT_EQ(cache.resident(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  // The coldest ids (0, 1) were spilled to one file each.
  EXPECT_TRUE(env_->FileExists(cache.CurvePath(0)));
  EXPECT_TRUE(env_->FileExists(cache.CurvePath(1)));
  EXPECT_FALSE(env_->FileExists(cache.CurvePath(0) + ".tmp"));

  // Transparent reload: the curve comes back with its full state.
  auto curve = cache.Get(0);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve.value()->TotalCount(), 6u);
  EXPECT_EQ(cache.reloads(), 1u);
  // And it is appendable again.
  ASSERT_TRUE(cache.Append(0, 10).ok());
  EXPECT_EQ(cache.Get(0).value()->TotalCount(), 7u);
}

TEST_F(CurveCacheTest, SpillFailureKeepsCurveResidentAndCleansTemp) {
  FaultInjectionEnv fault(env_);
  PbeCurveCache<Pbe1>::Options opt;
  opt.env = &fault;
  opt.dir = dir_;
  opt.max_resident = 1;
  opt.cell.buffer_points = 8;
  opt.cell.budget_points = 4;
  PbeCurveCache<Pbe1> cache(opt);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Append(0, 1).ok());
  ASSERT_TRUE(cache.Append(1, 2).ok());

  fault.FailWritesForNext(100);  // dead disk
  const Status s = cache.ShedCold();
  EXPECT_FALSE(s.ok());
  // Eviction sheds bytes, never data: the curve stays resident and no
  // stranded temp file squats on the full disk.
  EXPECT_EQ(cache.resident(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_FALSE(env_->FileExists(cache.CurvePath(0) + ".tmp"));
  EXPECT_FALSE(env_->FileExists(cache.CurvePath(1) + ".tmp"));

  fault.Disarm();  // disk heals
  ASSERT_TRUE(cache.ShedCold().ok());
  EXPECT_EQ(cache.resident(), 1u);
  auto curve = cache.Get(0);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve.value()->TotalCount(), 1u);
}

TEST_F(CurveCacheTest, GovernedEngineShedsAttachedCache) {
  auto opt = SmallGovernedOptions();
  opt.budget.soft_bytes = 1;  // shed on every audit
  opt.audit_every = 4;
  GovernedBurstEngine<Pbe2> governed(opt);

  PbeCurveCache<Pbe1>::Options copt;
  copt.env = env_;
  copt.dir = dir_;
  copt.max_resident = 1;
  copt.cell.buffer_points = 8;
  copt.cell.budget_points = 4;
  PbeCurveCache<Pbe1> cache(copt);
  ASSERT_TRUE(cache.Init().ok());
  governed.AttachCurveCache(&cache);

  for (Timestamp t = 0; t < 16; ++t) {
    const EventId e = static_cast<EventId>(t % 4);
    ASSERT_TRUE(cache.Append(e, t).ok());
    ASSERT_TRUE(governed.Append(e, t).ok());
  }
  // The governor's shed rounds drive the cache down to its residency
  // target, spilling cold curves through the Env seam. (Appends since
  // the last periodic audit may have reloaded curves; one more audit
  // settles it.)
  governed.governor_mutable()->Enforce();
  EXPECT_LE(cache.resident(), 1u);
  EXPECT_GT(cache.evictions(), 0u);
}

}  // namespace
}  // namespace bursthist
