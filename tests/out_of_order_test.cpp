// Tests for the engine's bounded out-of-order tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/burst_engine.h"
#include "util/random.h"

namespace bursthist {
namespace {

BurstEngineOptions<Pbe1> Options(Timestamp lateness) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 16;
  o.grid.depth = 3;
  o.grid.width = 64;
  o.cell.buffer_points = 128;
  o.cell.budget_points = 128;
  o.max_lateness = lateness;
  return o;
}

TEST(OutOfOrderTest, ZeroLatenessRejectsRegressions) {
  BurstEngine1 engine(Options(0));
  ASSERT_TRUE(engine.Append(1, 100).ok());
  EXPECT_EQ(engine.Append(1, 99).code(), StatusCode::kOutOfRange);
}

TEST(OutOfOrderTest, ShuffledWithinWindowMatchesSorted) {
  // A stream shuffled within a +/-20 window, ingested with lateness
  // 40, must produce exactly the state of the sorted stream.
  Rng rng(5);
  std::vector<std::pair<EventId, Timestamp>> records;
  Timestamp t = 0;
  for (int i = 0; i < 4000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    records.emplace_back(static_cast<EventId>(rng.NextBelow(16)), t);
  }
  // Shuffle within disjoint 16-record blocks: displacement is bounded
  // by 16 positions (< 16 * 2 = 32 time units), safely inside the
  // lateness window. A sequential neighbour-swap would let records
  // cascade arbitrarily far.
  auto shuffled = records;
  for (size_t block = 0; block + 16 <= shuffled.size(); block += 16) {
    for (size_t i = 15; i > 0; --i) {
      std::swap(shuffled[block + i], shuffled[block + rng.NextBelow(i + 1)]);
    }
  }

  BurstEngine1 sorted_engine(Options(0));
  for (auto& [e, at] : records) ASSERT_TRUE(sorted_engine.Append(e, at).ok());
  sorted_engine.Finalize();

  BurstEngine1 lenient(Options(60));
  for (auto& [e, at] : shuffled) {
    ASSERT_TRUE(lenient.Append(e, at).ok()) << "t=" << at;
  }
  lenient.Finalize();

  EXPECT_EQ(lenient.TotalCount(), sorted_engine.TotalCount());
  for (EventId e = 0; e < 16; ++e) {
    for (Timestamp q = 0; q <= t; q += 113) {
      EXPECT_DOUBLE_EQ(lenient.CumulativeQuery(e, q),
                       sorted_engine.CumulativeQuery(e, q))
          << "e=" << e << " q=" << q;
    }
  }
}

TEST(OutOfOrderTest, BeyondLatenessRejected) {
  BurstEngine1 engine(Options(10));
  ASSERT_TRUE(engine.Append(1, 100).ok());
  ASSERT_TRUE(engine.Append(1, 95).ok());   // within window
  ASSERT_TRUE(engine.Append(1, 90).ok());   // boundary (100 - 10)
  EXPECT_EQ(engine.Append(1, 89).code(), StatusCode::kOutOfRange);
  // New high watermark shifts the window.
  ASSERT_TRUE(engine.Append(1, 200).ok());
  EXPECT_EQ(engine.Append(1, 150).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(engine.Append(1, 195).ok());
  engine.Finalize();
  EXPECT_EQ(engine.TotalCount(), 5u);
}

TEST(OutOfOrderTest, FinalizeDrainsBuffer) {
  BurstEngine1 engine(Options(1000));
  ASSERT_TRUE(engine.Append(2, 500).ok());
  ASSERT_TRUE(engine.Append(3, 100).ok());  // held in the buffer
  engine.Finalize();
  EXPECT_EQ(engine.TotalCount(), 2u);
  EXPECT_DOUBLE_EQ(engine.CumulativeQuery(3, 100), 1.0);
  EXPECT_DOUBLE_EQ(engine.CumulativeQuery(2, 500), 1.0);
}

TEST(OutOfOrderTest, EqualTimestampsAnyOrder) {
  BurstEngine1 engine(Options(5));
  ASSERT_TRUE(engine.Append(1, 10).ok());
  ASSERT_TRUE(engine.Append(2, 10).ok());
  ASSERT_TRUE(engine.Append(1, 10).ok());
  engine.Finalize();
  EXPECT_DOUBLE_EQ(engine.CumulativeQuery(1, 10), 2.0);
  EXPECT_DOUBLE_EQ(engine.CumulativeQuery(2, 10), 1.0);
}

}  // namespace
}  // namespace bursthist
