// Edge-case coverage across the stack: negative timestamps, extreme
// burst spans, weighted appends, degenerate universes, and query
// boundaries.

#include <gtest/gtest.h>

#include "core/burst_engine.h"
#include "core/cm_pbe.h"
#include "core/exact_store.h"
#include "core/pbe1.h"
#include "core/pbe2.h"
#include "stream/frequency_curve.h"

namespace bursthist {
namespace {

TEST(EdgeCaseTest, NegativeTimestampsSupported) {
  // Epoch-relative data can be negative; nothing in the stack assumes
  // t >= 0.
  SingleEventStream s({-100, -50, -50, -10, 0, 5});
  FrequencyCurve curve(s);
  EXPECT_EQ(curve.Evaluate(-101), 0u);
  EXPECT_EQ(curve.Evaluate(-50), 3u);
  EXPECT_EQ(curve.Evaluate(10), 6u);

  Pbe1Options o1;
  o1.buffer_points = 8;
  o1.budget_points = 8;
  Pbe1 p1(o1);
  Pbe2Options o2;
  o2.gamma = 0.0;
  Pbe2 p2(o2);
  for (Timestamp t : s.times()) {
    p1.Append(t);
    p2.Append(t);
  }
  p1.Finalize();
  p2.Finalize();
  for (Timestamp t = -120; t <= 20; ++t) {
    EXPECT_DOUBLE_EQ(p1.EstimateCumulative(t),
                     static_cast<double>(s.CumulativeFrequency(t)));
    EXPECT_NEAR(p2.EstimateCumulative(t),
                static_cast<double>(s.CumulativeFrequency(t)), 1e-6);
  }
}

TEST(EdgeCaseTest, TauLargerThanHistory) {
  SingleEventStream s({10, 20, 30});
  // With tau covering everything, b(t) = F(t) - 2*0 + 0 = F(t).
  EXPECT_EQ(s.BurstinessAt(30, 1000), 3);
  EXPECT_EQ(s.BurstinessAt(30, 15), 1);  // F(30)=3, F(15)=1, F(0)=0
}

TEST(EdgeCaseTest, TauOne) {
  SingleEventStream s({5, 5, 5, 6});
  // b(6) with tau=1: bf(6)=f(5,6]=1, bf(5)=f(4,5]=3 -> -2.
  EXPECT_EQ(s.BurstinessAt(6, 1), -2);
  EXPECT_EQ(s.BurstinessAt(5, 1), 3);
}

TEST(EdgeCaseTest, WeightedAppendsEquivalentToRepeats) {
  Pbe1Options o;
  o.buffer_points = 16;
  o.budget_points = 16;
  Pbe1 weighted(o), repeated(o);
  weighted.Append(3, 5);
  weighted.Append(7, 2);
  for (int i = 0; i < 5; ++i) repeated.Append(3);
  for (int i = 0; i < 2; ++i) repeated.Append(7);
  weighted.Finalize();
  repeated.Finalize();
  for (Timestamp t = 0; t <= 10; ++t) {
    EXPECT_DOUBLE_EQ(weighted.EstimateCumulative(t),
                     repeated.EstimateCumulative(t));
  }

  Pbe2Options o2;
  o2.gamma = 0.0;
  Pbe2 w2(o2), r2(o2);
  w2.Append(3, 5);
  w2.Append(7, 2);
  for (int i = 0; i < 5; ++i) r2.Append(3);
  for (int i = 0; i < 2; ++i) r2.Append(7);
  w2.Finalize();
  r2.Finalize();
  for (Timestamp t = 0; t <= 10; ++t) {
    EXPECT_NEAR(w2.EstimateCumulative(t), r2.EstimateCumulative(t), 1e-9);
  }
}

TEST(EdgeCaseTest, SingleEventUniverse) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = 1;
  o.cell.buffer_points = 16;
  o.cell.budget_points = 16;
  BurstEngine1 engine(o);
  for (Timestamp t = 0; t < 50; ++t) ASSERT_TRUE(engine.Append(0, t).ok());
  engine.Finalize();
  EXPECT_NEAR(engine.CumulativeQuery(0, 49), 50.0, 1e-9);
  auto bursty = engine.BurstyEventQuery(49, 0.5, 10);
  EXPECT_LE(bursty.size(), 1u);
}

TEST(EdgeCaseTest, QueryFarBeyondStreamEnd) {
  Pbe1Options o;
  o.buffer_points = 8;
  o.budget_points = 4;
  Pbe1 p(o);
  for (Timestamp t = 0; t < 100; t += 10) p.Append(t);
  p.Finalize();
  // Cumulative freezes; burstiness decays to zero once both windows
  // clear the history.
  const double final_f = p.EstimateCumulative(1'000'000);
  EXPECT_DOUBLE_EQ(final_f, p.EstimateCumulative(90));
  EXPECT_DOUBLE_EQ(p.EstimateBurstiness(1'000'000, 50), 0.0);
}

TEST(EdgeCaseTest, QueryBeforeStreamStart) {
  Pbe2Options o;
  o.gamma = 1.0;
  Pbe2 p(o);
  for (Timestamp t = 1000; t < 1100; ++t) p.Append(t);
  p.Finalize();
  EXPECT_DOUBLE_EQ(p.EstimateCumulative(0), 0.0);
  EXPECT_DOUBLE_EQ(p.EstimateBurstiness(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(p.EstimateBurstiness(500, 100), 0.0);
}

TEST(EdgeCaseTest, HugeCountsNoOverflow) {
  // Counts near 2^40 per append: doubles in the estimators must keep
  // integer fidelity well past 32 bits.
  Pbe1Options o;
  o.buffer_points = 8;
  o.budget_points = 8;
  Pbe1 p(o);
  const Count big = 1ULL << 40;
  p.Append(1, big);
  p.Append(2, big);
  p.Append(3, big);
  p.Finalize();
  EXPECT_DOUBLE_EQ(p.EstimateCumulative(3), static_cast<double>(3 * big));
  EXPECT_DOUBLE_EQ(p.EstimateBurstiness(3, 1),
                   0.0);  // constant rate: no acceleration
}

TEST(EdgeCaseTest, ExactStoreBurstyTimesEmptyEvent) {
  ExactBurstStore store(3);
  store.Append(0, 5);
  EXPECT_TRUE(store.BurstyTimes(1, 0.5, 2).empty());
}

TEST(EdgeCaseTest, CmPbeSingleCellGrid) {
  // depth=1, width=1: everything merges into one stream; estimates
  // equal the total curve (a pure upper bound per event).
  CmPbeOptions grid;
  grid.depth = 1;
  grid.width = 1;
  Pbe1Options cell;
  cell.buffer_points = 16;
  cell.budget_points = 16;
  CmPbe<Pbe1> cm(grid, cell);
  cm.Append(1, 10);
  cm.Append(2, 20);
  cm.Append(3, 30);
  cm.Finalize();
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(1, 30), 3.0);
  EXPECT_DOUBLE_EQ(cm.EstimateCumulative(999, 30), 3.0);
}

TEST(EdgeCaseTest, BurstEngineEmptyFinalize) {
  BurstEngineOptions<Pbe2> o;
  o.universe_size = 10;
  BurstEngine2 engine(o);
  engine.Finalize();
  EXPECT_EQ(engine.PointQuery(5, 100, 10), 0.0);
  EXPECT_TRUE(engine.BurstyTimeQuery(5, 1.0, 10).empty());
  EXPECT_TRUE(engine.BurstyEventQuery(100, 1.0, 10).empty());
}

TEST(EdgeCaseTest, BreakpointShiftOverflowSafety) {
  // Breakpoints near the top of the int64 range must not overflow
  // when shifted by 2*tau in BurstyTimes... use large-but-safe values.
  const Timestamp big = Timestamp{1} << 40;
  Pbe1Options o;
  o.buffer_points = 8;
  o.budget_points = 8;
  Pbe1 p(o);
  p.Append(big);
  p.Append(big + 1000, 5);
  p.Finalize();
  auto iv = BurstyTimes(p, 1.0, 100);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(Covers(iv, big + 1000));
}

}  // namespace
}  // namespace bursthist
