// Unit tests for the BurstEngine façade.

#include <gtest/gtest.h>

#include "core/burst_engine.h"
#include "eval/metrics.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "stream/text_pipeline.h"
#include "util/random.h"

namespace bursthist {
namespace {

BurstEngineOptions<Pbe1> SmallOptions(EventId k) {
  BurstEngineOptions<Pbe1> o;
  o.universe_size = k;
  o.grid.depth = 4;
  o.grid.width = 128;
  o.cell.buffer_points = 128;
  o.cell.budget_points = 64;
  return o;
}

TEST(BurstEngineTest, ValidatesAppends) {
  BurstEngine1 engine(SmallOptions(8));
  EXPECT_TRUE(engine.Append(0, 10).ok());
  EXPECT_EQ(engine.Append(8, 11).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Append(1, 5).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(engine.Append(1, 10).ok());  // equal time is fine
  engine.Finalize();
  EXPECT_EQ(engine.Append(1, 20).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.TotalCount(), 2u);
}

TEST(BurstEngineTest, ThreeQueryTypesEndToEnd) {
  const EventId k = 16;
  BurstEngine1 engine(SmallOptions(k));
  // Event 3 bursts at t in [500, 550); everything else trickles.
  Rng rng(5);
  EventStream stream;
  Timestamp t = 0;
  while (t < 1000) {
    stream.Append(static_cast<EventId>(rng.NextBelow(k)), t);
    t += 5 + static_cast<Timestamp>(rng.NextBelow(10));
  }
  std::vector<SingleEventStream> split = {};
  // Merge in the burst.
  EventStream merged;
  size_t si = 0;
  for (Timestamp bt = 0; bt < 1000; ++bt) {
    while (si < stream.size() && stream.records()[si].time <= bt) {
      merged.Append(stream.records()[si].id, stream.records()[si].time);
      ++si;
    }
    if (bt >= 500 && bt < 550) {
      merged.Append(3, bt);
      merged.Append(3, bt);
    }
  }
  ASSERT_TRUE(engine.AppendStream(merged).ok());
  engine.Finalize();

  const Timestamp tau = 50;
  // POINT: event 3 accelerates hard at t=549.
  EXPECT_GT(engine.PointQuery(3, 549, tau), 50.0);
  EXPECT_LT(engine.PointQuery(5, 549, tau), 20.0);

  // BURSTY TIME: the burst window is reported for event 3.
  auto when = engine.BurstyTimeQuery(3, 50.0, tau);
  ASSERT_FALSE(when.empty());
  EXPECT_TRUE(Covers(when, 549));
  EXPECT_FALSE(Covers(when, 300));

  // BURSTY EVENT: only event 3 at the burst peak.
  auto what = engine.BurstyEventQuery(549, 50.0, tau);
  EXPECT_EQ(what, (std::vector<EventId>{3}));
  EXPECT_GT(engine.LastQueryPointQueries(), 0u);
  (void)split;
}

TEST(BurstEngineTest, CumulativeQueryTracksTruth) {
  BurstEngine1 engine(SmallOptions(4));
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(engine.Append(2, t).ok());
  }
  engine.Finalize();
  EXPECT_NEAR(engine.CumulativeQuery(2, 99), 100.0, 1.0);
  EXPECT_NEAR(engine.CumulativeQuery(2, 49), 50.0, 1.0);
  EXPECT_EQ(engine.CumulativeQuery(1, 99), 0.0);
}

TEST(BurstEngineTest, FrequencyQueryRanges) {
  auto options = SmallOptions(4);
  options.cell.buffer_points = 256;
  options.cell.budget_points = 256;  // lossless: ranges are exact
  BurstEngine1 engine(options);
  // One arrival at each even timestamp in [0, 200).
  for (Timestamp t = 0; t < 200; t += 2) {
    ASSERT_TRUE(engine.Append(1, t).ok());
  }
  engine.Finalize();
  EXPECT_NEAR(engine.FrequencyQuery(1, 0, 199), 100.0, 1e-9);
  EXPECT_NEAR(engine.FrequencyQuery(1, 100, 199), 50.0, 1e-9);
  EXPECT_NEAR(engine.FrequencyQuery(1, 10, 10), 1.0, 1e-9);
  EXPECT_NEAR(engine.FrequencyQuery(1, 11, 11), 0.0, 1e-9);
  EXPECT_EQ(engine.FrequencyQuery(1, 50, 40), 0.0);  // inverted range
  EXPECT_EQ(engine.FrequencyQuery(3, 0, 199), 0.0);  // absent event
  // Consistency with the underlying burst frequency: bf(t) with span
  // tau equals f(t - tau + 1, t).
  EXPECT_NEAR(engine.FrequencyQuery(1, 101, 150),
              engine.CumulativeQuery(1, 150) - engine.CumulativeQuery(1, 100),
              1e-9);
}

TEST(BurstEngineTest, Pbe2VariantWorks) {
  BurstEngineOptions<Pbe2> o;
  o.universe_size = 8;
  o.grid.depth = 3;
  o.grid.width = 32;
  o.cell.gamma = 2.0;
  BurstEngine2 engine(o);
  for (Timestamp t = 0; t < 200; t += 2) {
    ASSERT_TRUE(engine.Append(1, t).ok());
  }
  engine.Finalize();
  EXPECT_NEAR(engine.CumulativeQuery(1, 199), 100.0, o.cell.gamma + 1e-6);
  auto when = engine.BurstyTimeQuery(1, 1000.0, 20);
  EXPECT_TRUE(when.empty());  // steady stream: no bursts
}

TEST(BurstEngineTest, SerializationRoundTrip) {
  const EventId k = 32;
  BurstEngine1 a(SmallOptions(k));
  Rng rng(9);
  Timestamp t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    ASSERT_TRUE(a.Append(static_cast<EventId>(rng.NextBelow(k)), t).ok());
  }
  a.Finalize();

  BinaryWriter w;
  a.Serialize(&w);
  BurstEngine1 b(SmallOptions(k));
  BinaryReader r(w.bytes());
  ASSERT_TRUE(b.Deserialize(&r).ok());
  EXPECT_EQ(b.TotalCount(), a.TotalCount());
  EXPECT_TRUE(b.finalized());
  for (EventId e = 0; e < k; ++e) {
    for (Timestamp q = 0; q <= t; q += 97) {
      EXPECT_DOUBLE_EQ(b.PointQuery(e, q, 50), a.PointQuery(e, q, 50));
    }
  }
}

TEST(BurstEngineTest, ReorderBufferSurvivesSerialization) {
  // Regression: v1 serialized neither the re-order buffer nor the
  // watermark, so snapshotting an unfinalized engine with
  // max_lateness > 0 silently dropped every pending record.
  const EventId k = 16;
  auto options = SmallOptions(k);
  options.max_lateness = 50;
  BurstEngine1 a(options);
  Rng rng(21);
  Timestamp t = 100;
  for (int i = 0; i < 2000; ++i) {
    const Timestamp late = t - static_cast<Timestamp>(rng.NextBelow(40));
    ASSERT_TRUE(a.Append(static_cast<EventId>(rng.NextBelow(k)), late).ok());
    t += static_cast<Timestamp>(rng.NextBelow(3));
  }
  // Records within the lateness window of the watermark are still
  // buffered, not ingested.
  ASSERT_LT(a.TotalCount(), 2000u);

  BinaryWriter w;
  a.Serialize(&w);
  BurstEngine1 b(options);
  BinaryReader r(w.bytes());
  ASSERT_TRUE(b.Deserialize(&r).ok());
  EXPECT_FALSE(b.finalized());
  // Lossless: re-serializing the restored engine reproduces the blob
  // (pending records and watermark included).
  BinaryWriter w2;
  b.Serialize(&w2);
  EXPECT_EQ(w2.bytes(), w.bytes());

  // Both copies accept the same continuation and end up identical.
  for (int i = 0; i < 500; ++i) {
    const Timestamp late = t - static_cast<Timestamp>(rng.NextBelow(40));
    const EventId e = static_cast<EventId>(rng.NextBelow(k));
    ASSERT_TRUE(a.Append(e, late).ok());
    ASSERT_TRUE(b.Append(e, late).ok());
    t += static_cast<Timestamp>(rng.NextBelow(3));
  }
  a.Finalize();
  b.Finalize();
  EXPECT_EQ(b.TotalCount(), a.TotalCount());
  for (EventId e = 0; e < k; ++e) {
    for (Timestamp q = 0; q <= t; q += 83) {
      EXPECT_DOUBLE_EQ(b.PointQuery(e, q, 50), a.PointQuery(e, q, 50));
    }
  }
}

TEST(BurstEngineTest, DeserializesLegacyV1Payloads) {
  const EventId k = 32;
  BurstEngine1 a(SmallOptions(k));
  Rng rng(9);
  Timestamp t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    ASSERT_TRUE(a.Append(static_cast<EventId>(rng.NextBelow(k)), t).ok());
  }
  a.Finalize();

  // A v1 blob as the old writer produced it: header without the
  // watermark / pending-record block, then index and hitters.
  BinaryWriter w;
  w.Put<uint32_t>(0x42454e47);  // "BENG"
  w.Put<uint32_t>(1);
  w.Put<uint64_t>(a.TotalCount());
  w.Put<int64_t>(t);
  w.Put<uint8_t>(1);  // started
  w.Put<uint8_t>(1);  // finalized
  a.index().Serialize(&w);
  a.heavy_hitters().Serialize(&w);

  BurstEngine1 b(SmallOptions(k));
  BinaryReader r(w.bytes());
  ASSERT_TRUE(b.Deserialize(&r).ok());
  EXPECT_TRUE(b.finalized());
  EXPECT_EQ(b.TotalCount(), a.TotalCount());
  for (EventId e = 0; e < k; ++e) {
    for (Timestamp q = 0; q <= t; q += 97) {
      EXPECT_DOUBLE_EQ(b.PointQuery(e, q, 50), a.PointQuery(e, q, 50));
    }
  }
}

TEST(BurstEngineTest, RejectsImplausiblePendingCount) {
  auto options = SmallOptions(8);
  options.max_lateness = 10;
  BurstEngine1 a(options);
  ASSERT_TRUE(a.Append(1, 100).ok());
  BinaryWriter w;
  a.Serialize(&w);
  auto bytes = w.bytes();
  // Offset of the u64 pending count in the v2 header: magic(4) +
  // version(4) + total_count(8) + last_time(8) + started(1) +
  // finalized(1) + watermark(8).
  const size_t off = 34;
  for (size_t i = 0; i < 8; ++i) bytes[off + i] = 0xff;
  BurstEngine1 b(options);
  BinaryReader r(bytes);
  EXPECT_EQ(b.Deserialize(&r).code(), StatusCode::kCorruption);
}

TEST(BurstEngineTest, DeserializeRejectsShapeMismatch) {
  BurstEngine1 a(SmallOptions(32));
  a.Finalize();
  BinaryWriter w;
  a.Serialize(&w);
  BurstEngine1 b(SmallOptions(64));  // different universe
  BinaryReader r(w.bytes());
  EXPECT_FALSE(b.Deserialize(&r).ok());
}

TEST(BurstEngineTest, TextPipelineToEngine) {
  // End-to-end from raw messages to a burst query.
  EventIdMapper mapper(64);
  ASSERT_TRUE(mapper.BindKeyword("#earthquake", 7).ok());
  std::vector<Message> messages;
  for (Timestamp t = 0; t < 300; t += 30) {
    messages.push_back({"quiet morning #coffee", t});
  }
  for (Timestamp t = 300; t < 330; ++t) {
    messages.push_back({"#earthquake just hit!", t});
    messages.push_back({"did you feel the #earthquake ?", t});
  }
  EventStream stream = ProcessMessages(mapper, messages);

  BurstEngine1 engine(SmallOptions(64));
  ASSERT_TRUE(engine.AppendStream(stream).ok());
  engine.Finalize();
  EXPECT_GT(engine.PointQuery(7, 329, 30), 30.0);
  auto what = engine.BurstyEventQuery(329, 30.0, 30);
  EXPECT_EQ(what, (std::vector<EventId>{7}));
}

// The fixed bug: a live engine with a lateness window holds recent
// records in the re-order buffer, and queries used to silently omit
// them. Every query type on a live engine must now match a finalized
// twin fed the same records — no Finalize() required.
TEST(BurstEngineTest, LiveQueriesCoverBufferedRecords) {
  auto options = SmallOptions(8);
  options.max_lateness = 1000;  // nothing ripens during the test
  BurstEngine1 live(options);
  BurstEngine1 twin(options);
  Rng rng(17);
  Timestamp t = 0;
  for (int i = 0; i < 300; ++i) {
    t += static_cast<Timestamp>(rng.NextBelow(3));
    const EventId e = static_cast<EventId>(rng.NextBelow(8));
    ASSERT_TRUE(live.Append(e, t).ok());
    ASSERT_TRUE(twin.Append(e, t).ok());
  }
  ASSERT_GT(live.BufferedCount(), 0u);
  twin.Finalize();

  for (EventId e = 0; e < 8; ++e) {
    for (Timestamp tau : {1, 8, 32}) {
      EXPECT_EQ(live.PointQuery(e, t, tau), twin.PointQuery(e, t, tau))
          << "e=" << e << " tau=" << tau;
      EXPECT_EQ(live.BurstyTimeQuery(e, 2.0, tau),
                twin.BurstyTimeQuery(e, 2.0, tau));
    }
    EXPECT_EQ(live.CumulativeQuery(e, t), twin.CumulativeQuery(e, t));
    EXPECT_EQ(live.FrequencyQuery(e, t / 4, t / 2),
              twin.FrequencyQuery(e, t / 4, t / 2));
  }
  EXPECT_EQ(live.BurstyEventQuery(t, 2.0, 8), twin.BurstyEventQuery(t, 2.0, 8));
  EXPECT_EQ(live.FrequentBurstyEventQuery(t, 2.0, 8, 3.0),
            twin.FrequentBurstyEventQuery(t, 2.0, 8, 3.0));
  EXPECT_EQ(live.TopKBurstyEvents(t, 3, 8), twin.TopKBurstyEvents(t, 3, 8));
  EXPECT_EQ(live.EffectiveAnswerBound().point_bound,
            twin.EffectivePointBound().point_bound);

  // Serving the queries left the live engine live.
  EXPECT_FALSE(live.finalized());
  EXPECT_TRUE(live.Append(0, t).ok());
}

// All three event-centric queries run through the same latency/
// point-query instrumentation, not just BurstyEventQuery.
TEST(BurstEngineTest, EventQueriesShareInstrumentation) {
  BurstEngine1 engine(SmallOptions(8));
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(engine.Append(static_cast<EventId>(t % 8), t).ok());
  }
  engine.Finalize();
#ifndef BURSTHIST_NO_METRICS
  auto& bursty_lat =
      obs::GetLatencyHistogram(obs::kQueryBurstyEventLatencySeconds);
  auto& frequent_lat =
      obs::GetLatencyHistogram(obs::kQueryFrequentBurstyEventLatencySeconds);
  auto& topk_lat = obs::GetLatencyHistogram(obs::kQueryTopkLatencySeconds);
  const uint64_t bursty_before = bursty_lat.Count();
  const uint64_t frequent_before = frequent_lat.Count();
  const uint64_t topk_before = topk_lat.Count();
  (void)engine.BurstyEventQuery(99, 2.0, 8);
  (void)engine.FrequentBurstyEventQuery(99, 2.0, 8, 1.0);
  (void)engine.TopKBurstyEvents(99, 3, 8);
  EXPECT_EQ(bursty_lat.Count(), bursty_before + 1);
  EXPECT_EQ(frequent_lat.Count(), frequent_before + 1);
  EXPECT_EQ(topk_lat.Count(), topk_before + 1);
  // Each records how many point queries its last evaluation needed.
  EXPECT_GT(obs::GetGauge(obs::kQueryBurstyEventPointQueries).Value(), 0.0);
#else
  (void)engine.FrequentBurstyEventQuery(99, 2.0, 8, 1.0);
  (void)engine.TopKBurstyEvents(99, 3, 8);
#endif
}

}  // namespace
}  // namespace bursthist
