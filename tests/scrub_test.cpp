// On-disk integrity scrubbing: bit-flip sweeps over WAL segments and
// snapshots must each be DETECTED and QUARANTINED without ever
// aborting the pass, torn tails on the newest segment must be
// tolerated, and recovery after a quarantine must come back with the
// longest contiguous good prefix.
//
// The sweep protocol per flipped bit: flip, scrub (expect exactly one
// corrupt file, renamed aside), un-quarantine by renaming back, flip
// the same bit again to restore the original bytes, and periodically
// re-verify the directory scrubs clean — so one prepared directory
// serves hundreds of independent corruption trials.

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "differential/torture_harness.h"
#include "recovery/durable_engine.h"
#include "recovery/fault_env.h"
#include "recovery/scrub.h"
#include "recovery/snapshot.h"
#include "recovery/wal.h"

#ifndef BURSTHIST_NO_FAULT
#include <sys/wait.h>

#include "fault/crashpoint.h"
#endif

namespace bursthist {
namespace test {
namespace {

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    dir_ = testing::TempDir() + "/bursthist_scrub_" +
           std::to_string(static_cast<unsigned long long>(::getpid())) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    Clean();
    ASSERT_TRUE(env_->CreateDirIfMissing(dir_).ok());
  }

  void TearDown() override {
    Clean();
    ::rmdir(dir_.c_str());
  }

  void Clean() {
    auto names = env_->ListDir(dir_);
    if (names.ok()) {
      for (const auto& n : names.value()) (void)env_->DeleteFile(dir_ + "/" + n);
    }
  }

  // A directory with several closed WAL segments and two snapshot
  // generations: the full torture workload over tiny segments, with
  // two mid-run checkpoints, engine closed at the end.
  void BuildDurableDir() {
    const auto workload = torture::TortureWorkload(torture::TortureSpec{});
    // Segments even smaller than the torture default: checkpoint
    // pruning drops everything older snapshots cover, and the scrub
    // sweeps want several CLOSED segments left after the last one.
    DurabilityOptions durability;
    durability.wal_segment_bytes = 1 << 10;
    auto durable = DurableBurstEngine<Pbe1>::Open(
        env_, dir_, torture::TortureEngineOptions(), durability);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    for (size_t i = 0; i < workload.size(); ++i) {
      ASSERT_TRUE(
          durable.value()->Append(workload[i].id, workload[i].time).ok());
      if (i == workload.size() / 3 || i == 2 * workload.size() / 3) {
        ASSERT_TRUE(durable.value()->Checkpoint().ok());
      }
    }
    ASSERT_TRUE(durable.value()->Sync().ok());
  }

  std::vector<uint64_t> WalSeqs() {
    auto seqs = ListWalSegments(env_, dir_);
    EXPECT_TRUE(seqs.ok());
    return seqs.ok() ? seqs.value() : std::vector<uint64_t>{};
  }

  // One corruption trial: flip, scrub, assert the single detection +
  // quarantine, then restore the file for the next trial.
  void ExpectFlipCaught(const std::string& path, uint64_t offset) {
    const unsigned bit = static_cast<unsigned>(offset % 8);
    ASSERT_TRUE(FlipBit(env_, path, offset, bit).ok());
    auto report = ScrubDurableDir(env_, dir_);
    ASSERT_TRUE(report.ok()) << "scrub aborted on flip at " << path << "+"
                             << offset << ": " << report.status().ToString();
    EXPECT_EQ(report.value().corrupt_files, 1u)
        << path << "+" << offset << " not detected";
    ASSERT_EQ(report.value().quarantined_now, 1u)
        << path << "+" << offset << " not quarantined";
    EXPECT_FALSE(env_->FileExists(path));
    ASSERT_TRUE(env_->FileExists(path + kQuarantineSuffix));
    ASSERT_TRUE(env_->RenameFile(path + kQuarantineSuffix, path).ok());
    ASSERT_TRUE(FlipBit(env_, path, offset, bit).ok());
  }

  Env* env_ = nullptr;
  std::string dir_;
};

TEST_F(ScrubTest, CleanDirectoryScrubsClean) {
  BuildDurableDir();
  auto report = ScrubDurableDir(env_, dir_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().clean());
  EXPECT_GE(report.value().wal_segments_checked, 3u)
      << "workload too small to exercise multi-segment scrubbing";
  EXPECT_GT(report.value().wal_records_checked, 0u);
  EXPECT_EQ(report.value().snapshots_checked, 2u);
  EXPECT_EQ(report.value().quarantined_present, 0u);
}

// Every flipped bit in a NON-final WAL segment must be caught: header
// damage (magic, version, sequence), frame-length damage, checksum
// damage, payload damage. The final segment is excluded — there a
// tail-touching flip is legitimately indistinguishable from the torn
// write recovery forgives (covered separately below).
TEST_F(ScrubTest, BitFlipSweepOverClosedWalSegments) {
  BuildDurableDir();
  const auto seqs = WalSeqs();
  ASSERT_GE(seqs.size(), 2u);
  size_t trials = 0;
  for (size_t si = 0; si + 1 < seqs.size(); ++si) {
    const std::string path = WalSegmentPath(dir_, seqs[si]);
    auto size = env_->FileSize(path);
    ASSERT_TRUE(size.ok());
    ASSERT_GT(size.value(), 16u);
    std::vector<uint64_t> offsets;
    for (uint64_t off = 0; off < 16; ++off) offsets.push_back(off);
    for (uint64_t off = 16; off < size.value(); off += 97) {
      offsets.push_back(off);
    }
    offsets.push_back(size.value() - 1);
    for (uint64_t off : offsets) {
      ExpectFlipCaught(path, off);
      ++trials;
    }
  }
  EXPECT_GE(trials, 40u);
  auto report = ScrubDurableDir(env_, dir_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean()) << "restore protocol left damage";
}

TEST_F(ScrubTest, BitFlipSweepOverSnapshots) {
  BuildDurableDir();
  auto gens = ListSnapshots(env_, dir_);
  ASSERT_TRUE(gens.ok());
  ASSERT_EQ(gens.value().size(), 2u);
  for (uint64_t gen : gens.value()) {
    const std::string path = SnapshotPath(dir_, gen);
    auto size = env_->FileSize(path);
    ASSERT_TRUE(size.ok());
    std::vector<uint64_t> offsets = {0, size.value() - 1};
    for (uint64_t off = 1; off + 1 < size.value(); off += 53) {
      offsets.push_back(off);
    }
    for (uint64_t off : offsets) ExpectFlipCaught(path, off);
  }
  auto report = ScrubDurableDir(env_, dir_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean());
}

// A torn tail on the NEWEST segment is the ordinary crash remnant:
// informational, never corruption, never quarantined.
TEST_F(ScrubTest, TornTailOnNewestSegmentTolerated) {
  BuildDurableDir();
  const auto seqs = WalSeqs();
  ASSERT_FALSE(seqs.empty());
  const std::string tail_path = WalSegmentPath(dir_, seqs.back());
  auto size = env_->FileSize(tail_path);
  ASSERT_TRUE(size.ok());
  ASSERT_GT(size.value(), 20u);
  ASSERT_TRUE(TruncateFileTo(env_, tail_path, size.value() - 3).ok());
  auto report = ScrubDurableDir(env_, dir_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().clean());
  EXPECT_TRUE(report.value().tail_torn);
  EXPECT_EQ(report.value().quarantined_now, 0u);

  // The same truncation on a non-final segment IS corruption.
  if (seqs.size() >= 2) {
    const std::string mid_path = WalSegmentPath(dir_, seqs[0]);
    auto mid_size = env_->FileSize(mid_path);
    ASSERT_TRUE(mid_size.ok());
    ASSERT_TRUE(TruncateFileTo(env_, mid_path, mid_size.value() - 3).ok());
    auto report2 = ScrubDurableDir(env_, dir_);
    ASSERT_TRUE(report2.ok());
    EXPECT_EQ(report2.value().corrupt_files, 1u);
    EXPECT_EQ(report2.value().quarantined_now, 1u);
  }
}

// Detection-only mode: report everything, rename nothing.
TEST_F(ScrubTest, DetectionOnlyModeLeavesFilesInPlace) {
  BuildDurableDir();
  const auto seqs = WalSeqs();
  ASSERT_GE(seqs.size(), 2u);
  const std::string path = WalSegmentPath(dir_, seqs[0]);
  ASSERT_TRUE(FlipBit(env_, path, 40, 2).ok());
  ScrubOptions opts;
  opts.quarantine = false;
  auto report = ScrubDurableDir(env_, dir_, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().corrupt_files, 1u);
  EXPECT_EQ(report.value().quarantined_now, 0u);
  EXPECT_TRUE(env_->FileExists(path));
  ASSERT_EQ(report.value().issues.size(), 1u);
  EXPECT_FALSE(report.value().issues[0].quarantined);
}

// After the scrubber quarantines a middle segment, recovery must come
// back with the longest contiguous good prefix — byte-identical to a
// reference fed that prefix — and never skip over the hole.
TEST_F(ScrubTest, RecoveryAfterQuarantineStopsAtGoodPrefix) {
  const auto workload = torture::TortureWorkload(torture::TortureSpec{});
  BuildDurableDir();
  const auto seqs = WalSeqs();
  ASSERT_GE(seqs.size(), 3u);
  // Damage the second-to-last segment: newer than both snapshots'
  // coverage or not, the recovered state must be a reference prefix.
  const uint64_t victim = seqs[seqs.size() - 2];
  ASSERT_TRUE(FlipBit(env_, WalSegmentPath(dir_, victim), 100, 5).ok());
  auto report = ScrubDurableDir(env_, dir_);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().quarantined_now, 1u);

  auto recovered =
      RecoverBurstEngine<Pbe1>(env_, dir_, torture::TortureEngineOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const uint64_t k = recovered.value().TotalCount();
  EXPECT_LT(k, workload.size()) << "quarantined segment was not dropped";
  EXPECT_EQ(torture::EngineBytes(recovered.value()),
            torture::ReferenceBytes(workload, static_cast<size_t>(k)));
}

// Scrubbing a LIVE directory through the engine handle skips the
// writer's current segment and still catches damage in closed ones.
TEST_F(ScrubTest, LiveEngineScrubSkipsActiveSegment) {
  const auto workload = torture::TortureWorkload(torture::TortureSpec{});
  auto durable = DurableBurstEngine<Pbe1>::Open(
      env_, dir_, torture::TortureEngineOptions(),
      torture::TortureDurability());
  ASSERT_TRUE(durable.ok());
  for (size_t i = 0; i < workload.size() / 2; ++i) {
    ASSERT_TRUE(
        durable.value()->Append(workload[i].id, workload[i].time).ok());
  }
  ASSERT_TRUE(durable.value()->Sync().ok());
  const auto seqs = WalSeqs();
  ASSERT_GE(seqs.size(), 2u);

  auto clean = durable.value()->Scrub();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean.value().clean());
  // The live segment must not have been visited.
  EXPECT_EQ(clean.value().wal_segments_checked, seqs.size() - 1);

  ASSERT_TRUE(FlipBit(env_, WalSegmentPath(dir_, seqs[0]), 30, 1).ok());
  auto report = durable.value()->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().corrupt_files, 1u);
  EXPECT_EQ(report.value().quarantined_now, 1u);

  // The engine itself is unharmed: it keeps accepting appends.
  for (size_t i = workload.size() / 2; i < workload.size(); ++i) {
    ASSERT_TRUE(
        durable.value()->Append(workload[i].id, workload[i].time).ok());
  }
  EXPECT_EQ(durable.value()->engine().TotalCount(), workload.size());
}

#ifndef BURSTHIST_NO_FAULT
// A crash between detection and the quarantine rename must leave the
// corrupt file in place for the NEXT scrub to quarantine — the pass
// is re-runnable after dying at its own crashpoint.
TEST_F(ScrubTest, KilledMidQuarantineIsRerunnable) {
  BuildDurableDir();
  const auto seqs = WalSeqs();
  ASSERT_GE(seqs.size(), 2u);
  const std::string path = WalSegmentPath(dir_, seqs[0]);
  ASSERT_TRUE(FlipBit(env_, path, 60, 3).ok());

  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    auto& sched = fault::FaultScheduler::Global();
    sched.Disarm();
    if (!sched.LoadSchedule("scrub.pre_quarantine=kill").ok()) ::_exit(43);
    (void)ScrubDurableDir(Env::Default(), dir_);
    ::_exit(0);  // unreachable: the schedule kills first
  }
  ASSERT_GT(pid, 0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  EXPECT_TRUE(env_->FileExists(path));
  EXPECT_FALSE(env_->FileExists(path + kQuarantineSuffix));

  auto report = ScrubDurableDir(env_, dir_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().corrupt_files, 1u);
  EXPECT_EQ(report.value().quarantined_now, 1u);
}
#endif  // !BURSTHIST_NO_FAULT

}  // namespace
}  // namespace test
}  // namespace bursthist
